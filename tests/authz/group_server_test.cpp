// Group server tests (§3.3): membership proxies, the group-membership
// restriction, nested groups, denial paths.
#include "authz/group_server.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class GroupServerTest : public ::testing::Test {
 protected:
  GroupServerTest() {
    world_.add_principal("alice");
    world_.add_principal("group-server");
    world_.add_principal("file-server");

    authz::GroupServer::Config config;
    config.name = "group-server";
    config.own_key = world_.principal("group-server").krb_key;
    config.net = &world_.net;
    config.clock = &world_.clock;
    config.kdc = World::kKdcName;
    config.resolver = &world_.resolver;
    config.pk_root = world_.name_server.root_key();
    server_ = std::make_unique<authz::GroupServer>(config);
    server_->add_member("staff", "alice");
    world_.net.attach("group-server", *server_);

    alice_kdc_ = std::make_unique<kdc::KdcClient>(world_.kdc_client("alice"));
    auto tgt = alice_kdc_->authenticate(4 * util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    tgt_ = tgt.value();
    auto creds =
        alice_kdc_->get_ticket(tgt_, "group-server", 4 * util::kHour);
    EXPECT_TRUE(creds.is_ok());
    creds_ = creds.value();
  }

  util::Result<core::Proxy> request(const std::string& group) {
    authz::GroupClient client(world_.net, world_.clock, *alice_kdc_);
    return client.request_membership(creds_, "group-server", group,
                                     "file-server", 30 * util::kMinute);
  }

  World world_;
  std::unique_ptr<authz::GroupServer> server_;
  std::unique_ptr<kdc::KdcClient> alice_kdc_;
  kdc::Credentials tgt_;
  kdc::Credentials creds_;
};

TEST_F(GroupServerTest, MemberReceivesMembershipProxy) {
  auto proxy = request("staff");
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();
  EXPECT_EQ(proxy.value().grantor, "group-server");

  // The proxy asserts exactly {staff} (§7.6) and names alice as grantee.
  const auto* membership = proxy.value()
                               .claimed_restrictions
                               .find<core::GroupMembershipRestriction>();
  ASSERT_NE(membership, nullptr);
  ASSERT_EQ(membership->groups.size(), 1u);
  EXPECT_EQ(membership->groups[0], (GroupName{"group-server", "staff"}));
  EXPECT_TRUE(proxy.value().is_delegate());
}

TEST_F(GroupServerTest, NonMemberDenied) {
  world_.add_principal("mallory");
  kdc::KdcClient mallory = world_.kdc_client("mallory");
  auto tgt = mallory.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = mallory.get_ticket(tgt.value(), "group-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());
  authz::GroupClient client(world_.net, world_.clock, mallory);
  EXPECT_EQ(client
                .request_membership(creds.value(), "group-server", "staff",
                                    "file-server", util::kMinute)
                .code(),
            util::ErrorCode::kPermissionDenied);
}

TEST_F(GroupServerTest, UnknownGroupDenied) {
  EXPECT_EQ(request("ghosts").code(), util::ErrorCode::kNotFound);
}

TEST_F(GroupServerTest, RemovedMemberDenied) {
  server_->remove_member("staff", "alice");
  EXPECT_EQ(request("staff").code(), util::ErrorCode::kPermissionDenied);
}

TEST_F(GroupServerTest, MembershipQueries) {
  EXPECT_TRUE(server_->is_member("staff", "alice"));
  EXPECT_FALSE(server_->is_member("staff", "bob"));
  EXPECT_FALSE(server_->is_member("nope", "alice"));
}

TEST_F(GroupServerTest, MembershipProxyVerifiesAtEndServer) {
  auto proxy = request("staff");
  ASSERT_TRUE(proxy.is_ok());
  core::ProxyVerifier::Config vc;
  vc.server_name = "file-server";
  vc.server_key = world_.principal("file-server").krb_key;
  core::ProxyVerifier verifier(std::move(vc));
  auto verified =
      verifier.verify_chain(proxy.value().chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok()) << verified.status();
  EXPECT_EQ(verified.value().grantor, "group-server");
}

TEST_F(GroupServerTest, NestedGroupMembershipViaSupportingProxy) {
  // admins contains the group "staff" (same server, for simplicity of the
  // fixture — the mechanism is identical across servers): alice is a staff
  // member, so presenting her staff proxy earns an admins proxy.
  server_->add_member(
      "admins",
      authz::acl_group_token(GroupName{"group-server", "staff"}));

  auto staff_proxy = request("staff");
  ASSERT_TRUE(staff_proxy.is_ok());

  authz::GroupClient client(world_.net, world_.clock, *alice_kdc_);
  // The supporting staff proxy must be issued for the *group server* (it
  // is presented there), so fetch one targeted at it.
  auto staff_for_gs = client.request_membership(
      creds_, "group-server", "staff", "group-server", 30 * util::kMinute);
  ASSERT_TRUE(staff_for_gs.is_ok());

  auto admins = client.request_membership(
      creds_, "group-server", "admins", "file-server", 30 * util::kMinute,
      [&](util::BytesView challenge)
          -> std::vector<core::PresentedCredential> {
        core::PresentedCredential cred;
        cred.chain = staff_for_gs.value().chain;
        // Delegate proxy: alice proves her identity to the group server.
        cred.proof = core::prove_delegate_krb(
            *alice_kdc_, creds_, challenge, "group-server",
            world_.clock.now(), {});
        return {cred};
      });
  ASSERT_TRUE(admins.is_ok()) << admins.status();
  const auto* membership = admins.value()
                               .claimed_restrictions
                               .find<core::GroupMembershipRestriction>();
  ASSERT_NE(membership, nullptr);
  EXPECT_EQ(membership->groups[0].group, "admins");
}

}  // namespace
}  // namespace rproxy
