// Restriction propagation (§7.9): "If a proxy is issued based upon a proxy
// that includes restrictions, those restrictions should be passed on to
// the proxy to be issued."
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class PropagationTest : public ::testing::Test {
 protected:
  PropagationTest() {
    world_.add_principal("alice");
    world_.add_principal("authz-server");
    world_.add_principal("group-server");
    world_.add_principal("file-server");

    authz::AuthorizationServer::Config ac;
    ac.name = "authz-server";
    ac.own_key = world_.principal("authz-server").krb_key;
    ac.net = &world_.net;
    ac.clock = &world_.clock;
    ac.kdc = World::kKdcName;
    ac.resolver = &world_.resolver;
    ac.pk_root = world_.name_server.root_key();
    authz_server_ = std::make_unique<authz::AuthorizationServer>(ac);
    world_.net.attach("authz-server", *authz_server_);

    authz::GroupServer::Config gc;
    gc.name = "group-server";
    gc.own_key = world_.principal("group-server").krb_key;
    gc.net = &world_.net;
    gc.clock = &world_.clock;
    gc.kdc = World::kKdcName;
    group_server_ = std::make_unique<authz::GroupServer>(gc);
    group_server_->add_member("staff", "alice");
    world_.net.attach("group-server", *group_server_);

    client_ = std::make_unique<kdc::KdcClient>(world_.kdc_client("alice"));
    auto tgt = client_->authenticate(4 * util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    tgt_ = tgt.value();
  }

  kdc::Credentials creds_for(const PrincipalName& server) {
    auto creds = client_->get_ticket(tgt_, server, util::kHour);
    EXPECT_TRUE(creds.is_ok());
    return creds.value();
  }

  World world_;
  std::unique_ptr<authz::AuthorizationServer> authz_server_;
  std::unique_ptr<authz::GroupServer> group_server_;
  std::unique_ptr<kdc::KdcClient> client_;
  kdc::Credentials tgt_;
};

TEST_F(PropagationTest, SupportingProxyRestrictionsPropagate) {
  // The group proxy alice presents carries a quota restriction (placed on
  // her membership grant); the authorization proxy issued on its basis
  // must carry it too (§7.9).
  authz::Acl db;
  db.add(authz::AclEntry{
      {authz::acl_group_token(GroupName{"group-server", "staff"})},
      {"read"},
      {"/doc"},
      {}});
  authz_server_->set_acl("file-server", db);

  // A membership proxy narrowed with an extra quota by cascading it.
  authz::GroupClient group_client(world_.net, world_.clock, *client_);
  const kdc::Credentials group_creds = creds_for("group-server");
  auto membership = group_client.request_membership(
      group_creds, "group-server", "staff", "authz-server",
      30 * util::kMinute);
  ASSERT_TRUE(membership.is_ok());
  core::RestrictionSet extra;
  extra.add(core::QuotaRestriction{"reads", 5});
  auto narrowed = core::extend_bearer(membership.value(), extra,
                                      world_.clock.now(), util::kHour);
  ASSERT_TRUE(narrowed.is_ok());

  const kdc::Credentials authz_creds = creds_for("authz-server");
  authz::AuthzClient authz_client(world_.net, world_.clock, *client_);
  auto proxy = authz_client.request_authorization(
      authz_creds, "authz-server", "file-server", {}, 30 * util::kMinute,
      [&](util::BytesView challenge)
          -> std::vector<core::PresentedCredential> {
        core::PresentedCredential cred;
        cred.chain = narrowed.value().chain;
        // Bearer proof with the cascaded proxy key (the membership's
        // grantee restriction is satisfied by alice's audit/identity —
        // here the original grantee proof): the narrowed link is bearer,
        // but the ROOT still requires alice; supply her identity too.
        cred.proof = core::prove_delegate_krb(*client_, authz_creds,
                                              challenge, "authz-server",
                                              world_.clock.now(), {});
        return {cred};
      });
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();

  // The issued authorization proxy carries the propagated quota.
  const auto* quota =
      proxy.value().claimed_restrictions.find<core::QuotaRestriction>();
  ASSERT_NE(quota, nullptr);
  EXPECT_EQ(quota->currency, "reads");
  EXPECT_EQ(quota->limit, 5u);
}

TEST_F(PropagationTest, GranteeAndMembershipRestrictionsNotPropagated) {
  // The presented proxy's grantee/group-membership restrictions bind ITS
  // use, not the re-granted rights; everything else propagates.
  authz::Acl db;
  db.add(authz::AclEntry{
      {authz::acl_group_token(GroupName{"group-server", "staff"})},
      {"read"},
      {"/doc"},
      {}});
  authz_server_->set_acl("file-server", db);

  authz::GroupClient group_client(world_.net, world_.clock, *client_);
  const kdc::Credentials group_creds = creds_for("group-server");
  auto membership = group_client.request_membership(
      group_creds, "group-server", "staff", "authz-server",
      30 * util::kMinute);
  ASSERT_TRUE(membership.is_ok());

  const kdc::Credentials authz_creds = creds_for("authz-server");
  authz::AuthzClient authz_client(world_.net, world_.clock, *client_);
  auto proxy = authz_client.request_authorization(
      authz_creds, "authz-server", "file-server", {}, 30 * util::kMinute,
      [&](util::BytesView challenge)
          -> std::vector<core::PresentedCredential> {
        core::PresentedCredential cred;
        cred.chain = membership.value().chain;
        cred.proof = core::prove_delegate_krb(*client_, authz_creds,
                                              challenge, "authz-server",
                                              world_.clock.now(), {});
        return {cred};
      });
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();

  // The issued proxy has ONE grantee restriction (alice, from the grant
  // itself) — the membership proxy's grantee/group-membership fields were
  // not copied over.
  int grantee_count = 0, membership_count = 0;
  for (const core::Restriction& r :
       proxy.value().claimed_restrictions.items()) {
    grantee_count += r.get_if<core::GranteeRestriction>() != nullptr;
    membership_count +=
        r.get_if<core::GroupMembershipRestriction>() != nullptr;
  }
  EXPECT_EQ(grantee_count, 1);
  EXPECT_EQ(membership_count, 0);
}

TEST_F(PropagationTest, TgsCarriesInitialRestrictionsToAllServers) {
  // The §6.3 composition: credentials restricted at login stay restricted
  // in every derived ticket — here via the normal TGS path.
  core::RestrictionSet initial;
  initial.add(core::QuotaRestriction{"usd", 1});
  kdc::KdcClient restricted = world_.kdc_client("alice");
  auto tgt = restricted.authenticate(util::kHour, initial.to_blobs());
  ASSERT_TRUE(tgt.is_ok());
  for (const PrincipalName server : {"file-server", "authz-server"}) {
    auto creds = restricted.get_ticket(tgt.value(), server, util::kHour);
    ASSERT_TRUE(creds.is_ok());
    auto body = kdc::open_ticket(creds.value().ticket,
                                 world_.principal(server).krb_key);
    ASSERT_TRUE(body.is_ok());
    auto restored =
        core::RestrictionSet::from_blobs(body.value().authorization_data);
    ASSERT_TRUE(restored.is_ok());
    EXPECT_EQ(restored.value(), initial);
  }
}

}  // namespace
}  // namespace rproxy
