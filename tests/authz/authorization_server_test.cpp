// Authorization server tests (Fig 3, §3.2): the grant protocol, database
// consultation, narrowing, restriction templates, and proxy usability.
#include "authz/authorization_server.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class AuthzServerTest : public ::testing::Test {
 protected:
  AuthzServerTest() {
    world_.add_principal("alice");
    world_.add_principal("authz-server");
    world_.add_principal("file-server");

    authz::AuthorizationServer::Config config;
    config.name = "authz-server";
    config.own_key = world_.principal("authz-server").krb_key;
    config.net = &world_.net;
    config.clock = &world_.clock;
    config.kdc = World::kKdcName;
    config.resolver = &world_.resolver;
    config.pk_root = world_.name_server.root_key();
    server_ = std::make_unique<authz::AuthorizationServer>(config);
    world_.net.attach("authz-server", *server_);

    authz::Acl acl;
    acl.add(authz::AclEntry{{"alice"}, {"read"}, {"/doc"}, {}});
    server_->set_acl("file-server", acl);

    alice_kdc_ = std::make_unique<kdc::KdcClient>(world_.kdc_client("alice"));
    auto tgt = alice_kdc_->authenticate(4 * util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    tgt_ = tgt.value();
    auto creds =
        alice_kdc_->get_ticket(tgt_, "authz-server", 4 * util::kHour);
    EXPECT_TRUE(creds.is_ok());
    creds_for_authz_ = creds.value();
  }

  util::Result<core::Proxy> request(
      std::vector<core::ObjectRights> rights = {},
      core::RestrictionSet extra = {}) {
    authz::AuthzClient client(world_.net, world_.clock, *alice_kdc_);
    return client.request_authorization(creds_for_authz_, "authz-server",
                                        "file-server", std::move(rights),
                                        30 * util::kMinute, nullptr,
                                        std::move(extra));
  }

  World world_;
  std::unique_ptr<authz::AuthorizationServer> server_;
  std::unique_ptr<kdc::KdcClient> alice_kdc_;
  kdc::Credentials tgt_;
  kdc::Credentials creds_for_authz_;
};

TEST_F(AuthzServerTest, GrantsProxyToAuthorizedClient) {
  auto proxy = request();
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();
  EXPECT_EQ(proxy.value().grantor, "authz-server");
  EXPECT_TRUE(proxy.value().is_delegate());  // grantee = alice

  // The granted restrictions authorize exactly the database rights.
  const auto* authorized =
      proxy.value().claimed_restrictions.find<core::AuthorizedRestriction>();
  ASSERT_NE(authorized, nullptr);
  ASSERT_EQ(authorized->rights.size(), 1u);
  EXPECT_EQ(authorized->rights[0].object, "/doc");
  EXPECT_EQ(authorized->rights[0].operations,
            std::vector<Operation>{"read"});
}

TEST_F(AuthzServerTest, GrantedProxyVerifiesAtEndServer) {
  auto proxy = request();
  ASSERT_TRUE(proxy.is_ok());

  core::ProxyVerifier::Config vc;
  vc.server_name = "file-server";
  vc.server_key = world_.principal("file-server").krb_key;
  core::ProxyVerifier verifier(std::move(vc));
  auto verified =
      verifier.verify_chain(proxy.value().chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok()) << verified.status();
  EXPECT_EQ(verified.value().grantor, "authz-server");

  // Alice (as the named grantee) can prove possession with the unsealed
  // proxy key... the proxy is a delegate proxy, so she authenticates
  // personally; but the proxy key she received must also match.
  EXPECT_TRUE(verified.value().sym_proxy_key ==
              crypto::SymmetricKey::from_bytes(proxy.value().secret));
}

TEST_F(AuthzServerTest, DeniesUnauthorizedClient) {
  world_.add_principal("mallory");
  kdc::KdcClient mallory = world_.kdc_client("mallory");
  auto tgt = mallory.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = mallory.get_ticket(tgt.value(), "authz-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());
  authz::AuthzClient client(world_.net, world_.clock, mallory);
  EXPECT_EQ(client
                .request_authorization(creds.value(), "authz-server",
                                       "file-server", {},
                                       30 * util::kMinute)
                .code(),
            util::ErrorCode::kPermissionDenied);
}

TEST_F(AuthzServerTest, DeniesUnknownEndServer) {
  authz::AuthzClient client(world_.net, world_.clock, *alice_kdc_);
  EXPECT_EQ(client
                .request_authorization(creds_for_authz_, "authz-server",
                                       "ghost-server", {},
                                       30 * util::kMinute)
                .code(),
            util::ErrorCode::kNotFound);
}

TEST_F(AuthzServerTest, NarrowingWithinDatabaseAllowed) {
  auto proxy =
      request({core::ObjectRights{"/doc", {"read"}}});
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();
}

TEST_F(AuthzServerTest, NarrowingBeyondDatabaseDenied) {
  EXPECT_EQ(request({core::ObjectRights{"/doc", {"write"}}}).code(),
            util::ErrorCode::kPermissionDenied);
  EXPECT_EQ(request({core::ObjectRights{"/secret", {"read"}}}).code(),
            util::ErrorCode::kPermissionDenied);
}

TEST_F(AuthzServerTest, EntryRestrictionTemplateCopiedIntoProxy) {
  // §3.5: "the restrictions field of a matching access-control-list entry
  // can be copied to the restrictions field of the resulting proxy."
  core::RestrictionSet template_rs;
  template_rs.add(core::QuotaRestriction{"reads", 10});
  authz::Acl acl;
  acl.add(authz::AclEntry{{"alice"}, {"read"}, {"/doc"}, template_rs});
  server_->set_acl("file-server", acl);

  auto proxy = request();
  ASSERT_TRUE(proxy.is_ok());
  const auto* quota =
      proxy.value().claimed_restrictions.find<core::QuotaRestriction>();
  ASSERT_NE(quota, nullptr);
  EXPECT_EQ(quota->currency, "reads");
  EXPECT_EQ(quota->limit, 10u);
}

TEST_F(AuthzServerTest, ClientExtraRestrictionsIncluded) {
  core::RestrictionSet extra;
  extra.add(core::AcceptOnceRestriction{99});
  auto proxy = request({}, extra);
  ASSERT_TRUE(proxy.is_ok());
  const auto* once =
      proxy.value().claimed_restrictions.find<core::AcceptOnceRestriction>();
  ASSERT_NE(once, nullptr);
  EXPECT_EQ(once->identifier, 99u);
}

TEST_F(AuthzServerTest, ReplayedRequestRejected) {
  net::RecordingTap tap;
  world_.net.add_tap(tap);
  ASSERT_TRUE(request().is_ok());
  const auto requests = tap.of_type(net::MsgType::kAuthzRequest);
  ASSERT_EQ(requests.size(), 1u);
  auto replayed = world_.net.inject(requests.front());
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(net::status_of(replayed.value()).code(),
            util::ErrorCode::kReplay);
}

TEST_F(AuthzServerTest, ProxySecretSealedFromEavesdropper) {
  // The reply's sealed_secret must not open without alice's session key.
  net::RecordingTap tap;
  world_.net.add_tap(tap);
  ASSERT_TRUE(request().is_ok());
  const auto replies = tap.of_type(net::MsgType::kAuthzReply);
  ASSERT_EQ(replies.size(), 1u);
  auto payload = wire::decode_from_bytes<authz::ProxyGrantReplyPayload>(
      replies.front().payload);
  ASSERT_TRUE(payload.is_ok());
  EXPECT_FALSE(crypto::aead_open(
                   crypto::SymmetricKey::generate().derive_subkey(
                       authz::kProxySecretSealPurpose),
                   payload.value().sealed_secret)
                   .is_ok());
}

TEST_F(AuthzServerTest, PkIssueModeProducesPkProxy) {
  authz::AuthorizationServer::Config config;
  config.name = "authz-server";
  config.own_key = world_.principal("authz-server").krb_key;
  config.net = &world_.net;
  config.clock = &world_.clock;
  config.kdc = World::kKdcName;
  config.issue_mode = core::ProxyMode::kPublicKey;
  config.identity_key = world_.principal("authz-server").identity;
  config.resolver = &world_.resolver;
  config.pk_root = world_.name_server.root_key();
  authz::AuthorizationServer pk_server(config);
  authz::Acl acl;
  acl.add(authz::AclEntry{{"alice"}, {"read"}, {"/doc"}, {}});
  pk_server.set_acl("file-server", acl);
  world_.net.attach("authz-server", pk_server);

  authz::AuthzClient client(world_.net, world_.clock, *alice_kdc_);
  auto proxy = client.request_authorization(
      creds_for_authz_, "authz-server", "file-server", {},
      30 * util::kMinute);
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();
  EXPECT_EQ(proxy.value().chain.mode, core::ProxyMode::kPublicKey);

  // Restore the original server for other tests.
  world_.net.attach("authz-server", *server_);
}

}  // namespace
}  // namespace rproxy
