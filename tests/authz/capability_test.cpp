// Capability helpers (§3.1) exercised end-to-end against a FileServer.
#include "authz/capability.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class CapabilityTest : public ::testing::Test {
 protected:
  CapabilityTest() {
    world_.add_principal("alice");
    world_.add_principal("bob");
    world_.add_principal("file-server");

    file_server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    file_server_->put_file("/doc", "paper draft");
    file_server_->put_file("/secret", "keys");
    // alice has full access; capabilities impersonate her.
    file_server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    world_.net.attach("file-server", *file_server_);
  }

  core::Proxy alice_read_capability_pk() {
    return authz::make_capability_pk(
        "alice", world_.principal("alice").identity, "file-server",
        {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
        util::kHour);
  }

  World world_;
  std::unique_ptr<server::FileServer> file_server_;
};

TEST_F(CapabilityTest, PkCapabilityGrantsExactlyTheRight) {
  const core::Proxy cap = alice_read_capability_pk();
  server::AppClient bob(world_.net, world_.clock, "bob");

  auto read = bob.invoke_with_proxy("file-server", cap, "read", "/doc");
  ASSERT_TRUE(read.is_ok()) << read.status();
  EXPECT_EQ(util::to_string(read.value()), "paper draft");

  // Same capability cannot write /doc or read /secret.
  EXPECT_EQ(bob.invoke_with_proxy("file-server", cap, "write", "/doc",
                                  {}, util::to_bytes(std::string_view("x")))
                .code(),
            util::ErrorCode::kRestrictionViolated);
  EXPECT_EQ(bob.invoke_with_proxy("file-server", cap, "read", "/secret")
                .code(),
            util::ErrorCode::kRestrictionViolated);
}

TEST_F(CapabilityTest, KrbCapabilityWorksToo) {
  kdc::KdcClient alice = world_.kdc_client("alice");
  auto tgt = alice.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = alice.get_ticket(tgt.value(), "file-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());
  const core::Proxy cap = authz::make_capability_krb(
      alice, creds.value(), {core::ObjectRights{"/doc", {"read"}}},
      world_.clock.now());

  server::AppClient bob(world_.net, world_.clock, "bob");
  auto read = bob.invoke_with_proxy("file-server", cap, "read", "/doc");
  ASSERT_TRUE(read.is_ok()) << read.status();
  EXPECT_EQ(util::to_string(read.value()), "paper draft");
}

TEST_F(CapabilityTest, CapabilityPassesFreelyBetweenBearers) {
  // "The capability is then passed to others who can themselves pass it
  // on" — transferring chain+key is all it takes.
  const core::Proxy cap = alice_read_capability_pk();
  core::Proxy carols_copy = cap;  // bob hands it to carol
  server::AppClient carol(world_.net, world_.clock, "carol");
  EXPECT_TRUE(
      carol.invoke_with_proxy("file-server", carols_copy, "read", "/doc")
          .is_ok());
}

TEST_F(CapabilityTest, NarrowedCapabilityOnlyShrinks) {
  // /doc read+write capability, narrowed to read-only before passing on.
  const core::Proxy broad = authz::make_capability_pk(
      "alice", world_.principal("alice").identity, "file-server",
      {core::ObjectRights{"/doc", {"read", "write"}}}, world_.clock.now(),
      util::kHour);
  auto narrow = authz::narrow_capability(
      broad, {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
      util::kHour);
  ASSERT_TRUE(narrow.is_ok());

  server::AppClient bob(world_.net, world_.clock, "bob");
  EXPECT_TRUE(bob.invoke_with_proxy("file-server", narrow.value(), "read",
                                    "/doc")
                  .is_ok());
  EXPECT_EQ(bob.invoke_with_proxy("file-server", narrow.value(), "write",
                                  "/doc", {},
                                  util::to_bytes(std::string_view("x")))
                .code(),
            util::ErrorCode::kRestrictionViolated);
  // The broad original still writes.
  EXPECT_TRUE(bob.invoke_with_proxy("file-server", broad, "write", "/doc",
                                    {},
                                    util::to_bytes(std::string_view("new")))
                  .is_ok());
}

TEST_F(CapabilityTest, RevocationViaGrantorRights) {
  // §3.1: "one can revoke a capability by changing the access rights
  // available to the grantor of the capability."
  const core::Proxy cap = alice_read_capability_pk();
  server::AppClient bob(world_.net, world_.clock, "bob");
  ASSERT_TRUE(
      bob.invoke_with_proxy("file-server", cap, "read", "/doc").is_ok());

  file_server_->acl().remove_principal("alice");
  EXPECT_EQ(bob.invoke_with_proxy("file-server", cap, "read", "/doc").code(),
            util::ErrorCode::kPermissionDenied);
}

TEST_F(CapabilityTest, CapabilityExpires) {
  // §3.1: "the resulting capability would have an expiration time.  This
  // is a feature."
  const core::Proxy cap = alice_read_capability_pk();
  world_.clock.advance(2 * util::kHour);
  server::AppClient bob(world_.net, world_.clock, "bob");
  EXPECT_EQ(bob.invoke_with_proxy("file-server", cap, "read", "/doc").code(),
            util::ErrorCode::kExpired);
}

TEST_F(CapabilityTest, CapabilityRestrictedToItsEndServer) {
  world_.add_principal("other-server");
  auto other = std::make_unique<server::FileServer>(
      world_.end_server_config("other-server"));
  other->put_file("/doc", "other contents");
  other->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
  world_.net.attach("other-server", *other);

  const core::Proxy cap = alice_read_capability_pk();  // for file-server
  server::AppClient bob(world_.net, world_.clock, "bob");
  EXPECT_EQ(
      bob.invoke_with_proxy("other-server", cap, "read", "/doc").code(),
      util::ErrorCode::kRestrictionViolated);  // issued-for mismatch (§7.3)
}

}  // namespace
}  // namespace rproxy
