// Privilege attribute server (§5's DCE paragraph): one PAC carries every
// membership; end-servers consume it like any group proxy.
#include "authz/privilege_attribute_server.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class PacTest : public ::testing::Test {
 protected:
  PacTest() {
    world_.add_principal("alice");
    world_.add_principal("pac-server");
    world_.add_principal("file-server");

    authz::PrivilegeAttributeServer::Config config;
    config.name = "pac-server";
    config.own_key = world_.principal("pac-server").krb_key;
    config.net = &world_.net;
    config.clock = &world_.clock;
    config.kdc = World::kKdcName;
    pac_server_ =
        std::make_unique<authz::PrivilegeAttributeServer>(config);
    pac_server_->add_member("staff", "alice");
    pac_server_->add_member("engineering", "alice");
    pac_server_->add_member("admins", "someone-else");
    world_.net.attach("pac-server", *pac_server_);

    file_server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    file_server_->put_file("/doc", "contents");
    world_.net.attach("file-server", *file_server_);

    alice_ = std::make_unique<kdc::KdcClient>(world_.kdc_client("alice"));
    auto tgt = alice_->authenticate(4 * util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    tgt_ = tgt.value();
  }

  util::Result<core::Proxy> get_pac() {
    auto creds = alice_->get_ticket(tgt_, "pac-server", util::kHour);
    EXPECT_TRUE(creds.is_ok());
    authz::PacClient client(world_.net, world_.clock, *alice_);
    return client.request_pac(creds.value(), "pac-server", "file-server",
                              30 * util::kMinute);
  }

  World world_;
  std::unique_ptr<authz::PrivilegeAttributeServer> pac_server_;
  std::unique_ptr<server::FileServer> file_server_;
  std::unique_ptr<kdc::KdcClient> alice_;
  kdc::Credentials tgt_;
};

TEST_F(PacTest, PacListsAllMemberships) {
  auto pac = get_pac();
  ASSERT_TRUE(pac.is_ok()) << pac.status();
  const auto* membership = pac.value()
                               .claimed_restrictions
                               .find<core::GroupMembershipRestriction>();
  ASSERT_NE(membership, nullptr);
  // alice is in staff + engineering, NOT admins.
  ASSERT_EQ(membership->groups.size(), 2u);
  EXPECT_EQ(membership->groups[0], (GroupName{"pac-server", "engineering"}));
  EXPECT_EQ(membership->groups[1], (GroupName{"pac-server", "staff"}));
}

TEST_F(PacTest, OnePacSatisfiesMultipleGroupEntries) {
  // The end-server has two group-gated entries; ONE PAC presentation
  // covers both (the round-trip economy vs per-group proxies).
  file_server_->acl().add(authz::AclEntry{
      {authz::acl_group_token(GroupName{"pac-server", "staff"})},
      {"read"},
      {"/doc"},
      {}});
  file_server_->acl().add(authz::AclEntry{
      {authz::acl_group_token(GroupName{"pac-server", "engineering"})},
      {"write"},
      {"/doc"},
      {}});

  auto pac = get_pac();
  ASSERT_TRUE(pac.is_ok());
  auto creds = alice_->get_ticket(tgt_, "file-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());
  server::AppClient app(world_.net, world_.clock, "alice");

  const auto with_pac = [&](const Operation& op, util::Bytes args) {
    return app.invoke(
        "file-server", op, "/doc", {}, std::move(args),
        [&](util::BytesView challenge, util::BytesView rdigest,
            server::AppRequestPayload& req) {
          core::PresentedCredential cred;
          cred.chain = pac.value().chain;
          cred.proof = core::prove_delegate_krb(*alice_, creds.value(),
                                                challenge, "file-server",
                                                world_.clock.now(), rdigest);
          req.group_credentials.push_back(cred);
        });
  };

  EXPECT_TRUE(with_pac("read", {}).is_ok());   // via staff entry
  EXPECT_TRUE(
      with_pac("write", util::to_bytes(std::string_view("v2"))).is_ok());
  EXPECT_EQ(with_pac("delete", {}).code(),
            util::ErrorCode::kPermissionDenied);  // no entry covers delete
}

TEST_F(PacTest, MemberOfNothingDenied) {
  world_.add_principal("stranger");
  kdc::KdcClient stranger = world_.kdc_client("stranger");
  auto tgt = stranger.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = stranger.get_ticket(tgt.value(), "pac-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());
  authz::PacClient client(world_.net, world_.clock, stranger);
  EXPECT_EQ(client
                .request_pac(creds.value(), "pac-server", "file-server",
                             util::kMinute)
                .code(),
            util::ErrorCode::kPermissionDenied);
}

TEST_F(PacTest, PacBoundToPrincipal) {
  // Mallory cannot present alice's PAC: its grantee restriction names
  // alice, and group assertions fail without her identity.
  world_.add_principal("mallory");
  file_server_->acl().add(authz::AclEntry{
      {authz::acl_group_token(GroupName{"pac-server", "staff"})},
      {"read"},
      {"/doc"},
      {}});
  auto pac = get_pac();
  ASSERT_TRUE(pac.is_ok());

  const testing::Principal& mallory = world_.principal("mallory");
  server::AppClient app(world_.net, world_.clock, "mallory");
  auto theft = app.invoke(
      "file-server", "read", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = pac.value().chain;
        cred.proof = core::prove_delegate_pk(mallory.cert, mallory.identity,
                                             challenge, "file-server",
                                             world_.clock.now(), rdigest);
        req.group_credentials.push_back(cred);
      });
  EXPECT_EQ(theft.code(), util::ErrorCode::kPermissionDenied);
}

TEST_F(PacTest, MembershipChangesAffectNewPacsOnly) {
  auto pac_before = get_pac();
  ASSERT_TRUE(pac_before.is_ok());
  pac_server_->remove_member("engineering", "alice");
  auto pac_after = get_pac();
  ASSERT_TRUE(pac_after.is_ok());
  EXPECT_EQ(pac_before.value()
                .claimed_restrictions
                .find<core::GroupMembershipRestriction>()
                ->groups.size(),
            2u);
  EXPECT_EQ(pac_after.value()
                .claimed_restrictions
                .find<core::GroupMembershipRestriction>()
                ->groups.size(),
            1u);
}

}  // namespace
}  // namespace rproxy
