// ACL semantics (§3.5): matching, wildcard objects, group tokens, compound
// principals, restriction templates, revocation.
#include "authz/acl.hpp"

#include <gtest/gtest.h>

#include "core/revocation.hpp"

namespace rproxy::authz {
namespace {

AuthorityContext authority_of(std::vector<PrincipalName> principals,
                              std::vector<GroupName> groups = {}) {
  AuthorityContext ctx;
  ctx.principals = std::move(principals);
  ctx.groups = std::move(groups);
  return ctx;
}

TEST(Acl, SimpleEntryMatches) {
  Acl acl;
  acl.add(AclEntry{{"alice"}, {"read"}, {"/doc"}, {}});
  EXPECT_TRUE(acl.match(authority_of({"alice"}), "read", "/doc").is_ok());
  EXPECT_EQ(acl.match(authority_of({"bob"}), "read", "/doc").code(),
            util::ErrorCode::kPermissionDenied);
  EXPECT_FALSE(acl.match(authority_of({"alice"}), "write", "/doc").is_ok());
  EXPECT_FALSE(acl.match(authority_of({"alice"}), "read", "/other").is_ok());
}

TEST(Acl, EmptyOperationsMeansAllOperations) {
  Acl acl;
  acl.add(AclEntry{{"alice"}, {}, {"/doc"}, {}});
  EXPECT_TRUE(acl.match(authority_of({"alice"}), "write", "/doc").is_ok());
}

TEST(Acl, EmptyObjectsMeansAllObjects) {
  Acl acl;
  acl.add(AclEntry{{"alice"}, {"read"}, {}, {}});
  EXPECT_TRUE(
      acl.match(authority_of({"alice"}), "read", "/anything").is_ok());
}

TEST(Acl, WildcardObject) {
  Acl acl;
  acl.add(AclEntry{{"alice"}, {"read"}, {"*"}, {}});
  EXPECT_TRUE(acl.match(authority_of({"alice"}), "read", "/x").is_ok());
}

TEST(Acl, WildcardOperation) {
  // "*" in the operation list matches every operation, exactly as it does
  // in the object list.
  Acl acl;
  acl.add(AclEntry{{"alice"}, {"*"}, {"/doc"}, {}});
  EXPECT_TRUE(acl.match(authority_of({"alice"}), "read", "/doc").is_ok());
  EXPECT_TRUE(acl.match(authority_of({"alice"}), "write", "/doc").is_ok());
  EXPECT_FALSE(acl.match(authority_of({"alice"}), "read", "/other").is_ok());
  EXPECT_FALSE(acl.match(authority_of({"bob"}), "read", "/doc").is_ok());
}

TEST(Acl, WildcardOperationAndObjectAgree) {
  // Both list kinds honor the wildcard the same way, alone or combined.
  Acl acl;
  acl.add(AclEntry{{"alice"}, {"*"}, {"*"}, {}});
  EXPECT_TRUE(acl.match(authority_of({"alice"}), "anything", "/x").is_ok());
  Acl mixed;
  mixed.add(AclEntry{{"alice"}, {"read", "*"}, {"/doc"}, {}});
  EXPECT_TRUE(mixed.match(authority_of({"alice"}), "purge", "/doc").is_ok());
}

TEST(Acl, GroupTokenMatchesAssertedGroup) {
  const GroupName staff{"group-server", "staff"};
  Acl acl;
  acl.add(AclEntry{{acl_group_token(staff)}, {"read"}, {"/doc"}, {}});
  EXPECT_TRUE(
      acl.match(authority_of({"alice"}, {staff}), "read", "/doc").is_ok());
  EXPECT_FALSE(
      acl.match(authority_of({"alice"}), "read", "/doc").is_ok());
  // A group with the same local name from a DIFFERENT server must not
  // match (§3.3: global names include the group server).
  const GroupName impostor{"other-server", "staff"};
  EXPECT_FALSE(acl.match(authority_of({"alice"}, {impostor}), "read", "/doc")
                   .is_ok());
}

TEST(Acl, CompoundEntryRequiresAllPrincipals) {
  // §3.5: concurrence of multiple principals.
  Acl acl;
  acl.add(AclEntry{{"alice", "host-trusted"}, {"admin"}, {}, {}});
  EXPECT_FALSE(acl.match(authority_of({"alice"}), "admin", "x").is_ok());
  EXPECT_FALSE(
      acl.match(authority_of({"host-trusted"}), "admin", "x").is_ok());
  EXPECT_TRUE(
      acl.match(authority_of({"alice", "host-trusted"}), "admin", "x")
          .is_ok());
}

TEST(Acl, EmptyPrincipalListNeverMatches) {
  Acl acl;
  acl.add(AclEntry{{}, {}, {}, {}});
  EXPECT_FALSE(acl.match(authority_of({"alice"}), "read", "x").is_ok());
}

TEST(Acl, FirstMatchingEntryWins) {
  core::RestrictionSet first_restrictions;
  first_restrictions.add(core::QuotaRestriction{"usd", 1});
  Acl acl;
  acl.add(AclEntry{{"alice"}, {"read"}, {"/doc"}, first_restrictions});
  acl.add(AclEntry{{"alice"}, {"read"}, {"/doc"}, {}});
  auto entry = acl.match(authority_of({"alice"}), "read", "/doc");
  ASSERT_TRUE(entry.is_ok());
  EXPECT_EQ(entry.value()->restrictions, first_restrictions);
}

TEST(Acl, MatchingEntriesEnumeratesAll) {
  Acl acl;
  acl.add(AclEntry{{"alice"}, {"read"}, {"/a"}, {}});
  acl.add(AclEntry{{"alice"}, {"write"}, {"/b"}, {}});
  acl.add(AclEntry{{"bob"}, {"read"}, {"/a"}, {}});
  EXPECT_EQ(acl.matching_entries(authority_of({"alice"})).size(), 2u);
  EXPECT_EQ(acl.matching_entries(authority_of({"carol"})).size(), 0u);
}

TEST(Acl, RemovePrincipalRevokes) {
  // §3.1: revoking the grantor's rights kills all capabilities it issued.
  Acl acl;
  acl.add(AclEntry{{"alice"}, {"read"}, {"/doc"}, {}});
  acl.add(AclEntry{{"alice", "bob"}, {"write"}, {"/doc"}, {}});
  acl.add(AclEntry{{"carol"}, {"read"}, {"/doc"}, {}});
  EXPECT_EQ(acl.remove_principal("alice"), 2u);
  EXPECT_FALSE(acl.match(authority_of({"alice"}), "read", "/doc").is_ok());
  EXPECT_TRUE(acl.match(authority_of({"carol"}), "read", "/doc").is_ok());
}

TEST(Acl, RemovePrincipalBumpsRevocationEpoch) {
  core::RevocationRegistry registry;
  Acl acl;
  acl.set_revocation(&registry);
  acl.add(AclEntry{{"alice"}, {"read"}, {"/doc"}, {}});
  acl.add(AclEntry{{"carol"}, {"read"}, {"/doc"}, {}});
  EXPECT_EQ(acl.remove_principal("alice"), 1u);
  EXPECT_EQ(registry.epoch_of("alice"), 1u);
  EXPECT_EQ(registry.epoch_of("carol"), 0u);
  // Removing a principal with no entries is not a revocation event.
  EXPECT_EQ(acl.remove_principal("nobody"), 0u);
  EXPECT_EQ(registry.epoch_of("nobody"), 0u);
}

TEST(Acl, CodecRoundTrip) {
  core::RestrictionSet rs;
  rs.add(core::QuotaRestriction{"pages", 3});
  Acl acl;
  acl.add(AclEntry{{"alice", "bob"}, {"read", "write"}, {"/a", "/b"}, rs});
  auto decoded = wire::decode_from_bytes<Acl>(wire::encode_to_bytes(acl));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().entries().size(), 1u);
  EXPECT_EQ(decoded.value().entries()[0].principals,
            acl.entries()[0].principals);
  EXPECT_EQ(decoded.value().entries()[0].restrictions, rs);
}

TEST(AuthorityContext, Covers) {
  const GroupName staff{"gs", "staff"};
  const AuthorityContext ctx = authority_of({"alice"}, {staff});
  EXPECT_TRUE(ctx.covers("alice"));
  EXPECT_TRUE(ctx.covers(acl_group_token(staff)));
  EXPECT_FALSE(ctx.covers("bob"));
  EXPECT_FALSE(ctx.covers("group:gs/other"));
}

}  // namespace
}  // namespace rproxy::authz
