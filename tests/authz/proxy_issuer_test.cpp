// ProxyIssuer: the minting machinery shared by authorization, group and
// accounting servers — ticket caching, issued-for injection, pk mode.
#include "authz/proxy_issuer.hpp"

#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class ProxyIssuerTest : public ::testing::Test {
 protected:
  ProxyIssuerTest() {
    world_.add_principal("issuer");
    world_.add_principal("target-a");
    world_.add_principal("target-b");
    world_.net.set_default_latency(0);
  }

  authz::ProxyIssuer make_issuer(core::ProxyMode mode) {
    authz::ProxyIssuer::Config config;
    config.self = "issuer";
    config.mode = mode;
    config.net = &world_.net;
    config.clock = &world_.clock;
    config.own_key = world_.principal("issuer").krb_key;
    config.kdc = World::kKdcName;
    config.identity_key = world_.principal("issuer").identity;
    return authz::ProxyIssuer(config);
  }

  World world_;
};

TEST_F(ProxyIssuerTest, KrbIssueProducesVerifiableProxy) {
  authz::ProxyIssuer issuer = make_issuer(core::ProxyMode::kSymmetric);
  auto proxy = issuer.issue("target-a", {}, 30 * util::kMinute);
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();
  EXPECT_EQ(proxy.value().chain.mode, core::ProxyMode::kSymmetric);

  core::ProxyVerifier::Config vc;
  vc.server_name = "target-a";
  vc.server_key = world_.principal("target-a").krb_key;
  core::ProxyVerifier verifier(std::move(vc));
  EXPECT_TRUE(
      verifier.verify_chain(proxy.value().chain, world_.clock.now()).is_ok());
}

TEST_F(ProxyIssuerTest, IssuedForAlwaysAdded) {
  authz::ProxyIssuer issuer = make_issuer(core::ProxyMode::kPublicKey);
  auto proxy = issuer.issue("target-a", {}, 30 * util::kMinute);
  ASSERT_TRUE(proxy.is_ok());
  const auto* issued_for = proxy.value()
                               .claimed_restrictions
                               .find<core::IssuedForRestriction>();
  ASSERT_NE(issued_for, nullptr);
  EXPECT_EQ(issued_for->servers, std::vector<PrincipalName>{"target-a"});
}

TEST_F(ProxyIssuerTest, TicketCacheAvoidsRepeatKdcTraffic) {
  authz::ProxyIssuer issuer = make_issuer(core::ProxyMode::kSymmetric);
  ASSERT_TRUE(issuer.issue("target-a", {}, util::kMinute).is_ok());
  world_.net.reset_stats();
  ASSERT_TRUE(issuer.issue("target-a", {}, util::kMinute).is_ok());
  EXPECT_EQ(world_.net.stats().rpcs, 0u);  // cached ticket, no KDC contact

  // A new target needs one TGS exchange (TGT already cached).
  ASSERT_TRUE(issuer.issue("target-b", {}, util::kMinute).is_ok());
  EXPECT_EQ(world_.net.stats().rpcs, 1u);
}

TEST_F(ProxyIssuerTest, CacheClearedForcesFreshExchange) {
  authz::ProxyIssuer issuer = make_issuer(core::ProxyMode::kSymmetric);
  ASSERT_TRUE(issuer.issue("target-a", {}, util::kMinute).is_ok());
  issuer.clear_ticket_cache();
  world_.net.reset_stats();
  ASSERT_TRUE(issuer.issue("target-a", {}, util::kMinute).is_ok());
  EXPECT_GE(world_.net.stats().rpcs, 2u);  // AS + TGS again
}

TEST_F(ProxyIssuerTest, ExpiredCacheRefetches) {
  authz::ProxyIssuer issuer = make_issuer(core::ProxyMode::kSymmetric);
  ASSERT_TRUE(issuer.issue("target-a", {}, util::kMinute).is_ok());
  world_.clock.advance(10 * util::kHour);  // everything expired
  world_.net.reset_stats();
  auto proxy = issuer.issue("target-a", {}, util::kMinute);
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();
  EXPECT_GE(world_.net.stats().rpcs, 2u);
  EXPECT_GT(proxy.value().expires_at, world_.clock.now());
}

TEST_F(ProxyIssuerTest, PkModeNeedsNoNetwork) {
  authz::ProxyIssuer issuer = make_issuer(core::ProxyMode::kPublicKey);
  world_.net.reset_stats();
  ASSERT_TRUE(issuer.issue("target-a", {}, util::kMinute).is_ok());
  EXPECT_EQ(world_.net.stats().rpcs, 0u);
}

TEST_F(ProxyIssuerTest, CallerRestrictionsPreserved) {
  authz::ProxyIssuer issuer = make_issuer(core::ProxyMode::kSymmetric);
  core::RestrictionSet set;
  set.add(core::QuotaRestriction{"usd", 9});
  auto proxy = issuer.issue("target-a", set, util::kMinute);
  ASSERT_TRUE(proxy.is_ok());
  const auto* quota =
      proxy.value().claimed_restrictions.find<core::QuotaRestriction>();
  ASSERT_NE(quota, nullptr);
  EXPECT_EQ(quota->limit, 9u);
}

}  // namespace
}  // namespace rproxy
