// Shared simulated deployment for tests and benches.
//
// Builds a complete world: simulated clock and network, a KDC, a public-key
// name server, and principals registered in both realizations.  Tests grab
// what they need; everything is deterministic except key material.
#pragma once

#include <memory>

#include "accounting/clearing.hpp"
#include "authz/authorization_server.hpp"
#include "authz/capability.hpp"
#include "authz/group_server.hpp"
#include "baseline/dssa_roles.hpp"
#include "baseline/plain_capability.hpp"
#include "baseline/prepaid_bank.hpp"
#include "baseline/pull_authorization.hpp"
#include "baseline/sollins.hpp"
#include "core/cascade.hpp"
#include "core/revocation.hpp"
#include "pki/name_server.hpp"
#include "server/app_client.hpp"
#include "server/file_server.hpp"
#include "server/print_server.hpp"

namespace rproxy::testing {

/// KeyResolver backed by the world's name server registry.
class NameServerResolver final : public core::KeyResolver {
 public:
  explicit NameServerResolver(const pki::NameServer& ns) : ns_(&ns) {}
  util::Result<crypto::VerifyKey> resolve(
      const PrincipalName& name) const override {
    return ns_->key_of(name);
  }

 private:
  const pki::NameServer* ns_;
};

struct Principal {
  PrincipalName name;
  crypto::SymmetricKey krb_key;       ///< long-term key shared with the KDC
  crypto::SigningKeyPair identity;    ///< public-key identity
  pki::IdentityCert cert;             ///< name-server-signed binding
};

class World {
 public:
  static constexpr const char* kKdcName = "kdc";
  static constexpr const char* kNameServerName = "name-server";

  World()
      : clock(),
        net(clock),
        name_server(kNameServerName, clock),
        resolver(name_server) {
    kdc::PrincipalDb db;
    db.register_with_password(kKdcName, "kdc-master-key");
    kdc_server = std::make_unique<kdc::KdcServer>(kKdcName, std::move(db),
                                                  clock);
    net.attach(kKdcName, *kdc_server);
    net.attach(kNameServerName, name_server);
    // One shared revocation registry, wired into the event sources; server
    // configs built below point their verifiers at it.
    name_server.set_revocation(&revocation);
    kdc_server->db().set_revocation(&revocation, &clock);
  }

  /// Registers a principal in both realizations and returns its secrets.
  Principal& add_principal(const PrincipalName& name) {
    Principal p;
    p.name = name;
    p.krb_key = kdc_server->db().register_with_password(name, name + "-pw");
    p.identity = crypto::SigningKeyPair::generate();
    name_server.register_key(name, p.identity.public_key());
    p.cert = name_server.issue_cert(name).value();
    principals[name] = std::move(p);
    return principals[name];
  }

  [[nodiscard]] Principal& principal(const PrincipalName& name) {
    return principals.at(name);
  }

  /// A KDC client driver for a registered principal.
  [[nodiscard]] kdc::KdcClient kdc_client(const PrincipalName& name) {
    return kdc::KdcClient(net, clock, name, principals.at(name).krb_key,
                          kKdcName);
  }

  /// Fresh identity certificate (e.g. after advancing the clock).
  [[nodiscard]] pki::IdentityCert fresh_cert(const PrincipalName& name) {
    return name_server.issue_cert(name).value();
  }

  /// End-server verifier/config accepting both realizations.
  [[nodiscard]] server::EndServer::Config end_server_config(
      const PrincipalName& name) {
    server::EndServer::Config config;
    config.name = name;
    config.server_key = principals.at(name).krb_key;
    config.resolver = &resolver;
    config.pk_root = name_server.root_key();
    config.clock = &clock;
    config.revocation = &revocation;
    return config;
  }

  /// Accounting-server config (public-key realization).
  [[nodiscard]] accounting::AccountingServer::Config accounting_config(
      const PrincipalName& name) {
    accounting::AccountingServer::Config config;
    config.name = name;
    config.clock = &clock;
    config.net = &net;
    config.resolver = &resolver;
    config.pk_root = name_server.root_key();
    config.identity_key = principals.at(name).identity;
    config.identity_cert = principals.at(name).cert;
    config.revocation = &revocation;
    return config;
  }

  /// Accounting client for a principal.
  [[nodiscard]] accounting::AccountingClient accounting_client(
      const PrincipalName& name) {
    const Principal& p = principals.at(name);
    return accounting::AccountingClient(net, clock, name, p.cert,
                                        p.identity);
  }

  util::SimClock clock;
  net::SimNet net;
  /// Shared by every revocation event source and every verifier in the
  /// world.  Declared before the servers that point at it.
  core::RevocationRegistry revocation;
  pki::NameServer name_server;
  NameServerResolver resolver;
  std::unique_ptr<kdc::KdcServer> kdc_server;
  std::map<PrincipalName, Principal> principals;

  /// Fetches a signed identity certificate over the network.
  [[nodiscard]] util::Result<pki::IdentityCert> lookup(
      const PrincipalName& requester, const PrincipalName& subject) {
    return pki::lookup_identity(net, requester, kNameServerName,
                                name_server.root_key(), subject, clock);
  }
};

}  // namespace rproxy::testing
