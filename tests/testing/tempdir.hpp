// RAII temporary directory for storage tests and benches.
#pragma once

#include <stdlib.h>

#include <filesystem>
#include <string>

namespace rproxy::testing {

/// mkdtemp-backed scratch directory, recursively removed on destruction.
class TempDir {
 public:
  TempDir() {
    std::string pattern =
        (std::filesystem::temp_directory_path() / "rproxy-test-XXXXXX")
            .string();
    char* made = ::mkdtemp(pattern.data());
    path_ = made != nullptr ? made : pattern;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  /// A path inside the directory (not created).
  [[nodiscard]] std::string sub(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

}  // namespace rproxy::testing
