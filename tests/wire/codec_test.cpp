#include <gtest/gtest.h>

#include "wire/decoder.hpp"
#include "wire/encoder.hpp"

namespace rproxy::wire {
namespace {

using util::Bytes;

TEST(Encoder, IntegersBigEndian) {
  Encoder enc;
  enc.u8(0x01);
  enc.u16(0x0203);
  enc.u32(0x04050607);
  enc.u64(0x08090a0b0c0d0e0fULL);
  EXPECT_EQ(util::to_hex(enc.view()), "01020304050607""08090a0b0c0d0e0f");
}

TEST(Codec, IntegerRoundTrip) {
  Encoder enc;
  enc.u8(255);
  enc.u16(65535);
  enc.u32(4294967295u);
  enc.u64(18446744073709551615ull);
  enc.i64(-42);
  enc.boolean(true);
  enc.boolean(false);

  Decoder dec(enc.view());
  EXPECT_EQ(dec.u8(), 255);
  EXPECT_EQ(dec.u16(), 65535);
  EXPECT_EQ(dec.u32(), 4294967295u);
  EXPECT_EQ(dec.u64(), 18446744073709551615ull);
  EXPECT_EQ(dec.i64(), -42);
  EXPECT_TRUE(dec.boolean());
  EXPECT_FALSE(dec.boolean());
  EXPECT_TRUE(dec.finish().is_ok());
}

TEST(Codec, BytesAndStrings) {
  Encoder enc;
  enc.bytes(Bytes{1, 2, 3});
  enc.str("hello");
  enc.bytes({});
  enc.str("");

  Decoder dec(enc.view());
  EXPECT_EQ(dec.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(dec.str(), "hello");
  EXPECT_TRUE(dec.bytes().empty());
  EXPECT_EQ(dec.str(), "");
  EXPECT_TRUE(dec.finish().is_ok());
}

TEST(Codec, RawHasNoPrefix) {
  Encoder enc;
  enc.raw(Bytes{9, 9});
  EXPECT_EQ(enc.size(), 2u);
  Decoder dec(enc.view());
  EXPECT_EQ(dec.raw(2), (Bytes{9, 9}));
  EXPECT_TRUE(dec.finish().is_ok());
}

TEST(Codec, SequenceRoundTrip) {
  Encoder enc;
  const std::vector<std::string> names = {"a", "bb", "ccc"};
  enc.seq(names, [](Encoder& e, const std::string& s) { e.str(s); });

  Decoder dec(enc.view());
  const auto decoded =
      dec.seq<std::string>([](Decoder& d) { return d.str(); });
  EXPECT_EQ(decoded, names);
  EXPECT_TRUE(dec.finish().is_ok());
}

TEST(Decoder, TruncatedIntegerFails) {
  const Bytes data = {0x01};
  Decoder dec(data);
  (void)dec.u32();
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), util::ErrorCode::kParseError);
}

TEST(Decoder, TruncatedBytesFails) {
  Encoder enc;
  enc.u32(100);  // claims 100 octets follow
  enc.raw(Bytes{1, 2, 3});
  Decoder dec(enc.view());
  (void)dec.bytes();
  EXPECT_FALSE(dec.ok());
}

TEST(Decoder, FailureLatches) {
  const Bytes data = {};
  Decoder dec(data);
  (void)dec.u8();
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.u64(), 0u);  // subsequent reads return zero values
  EXPECT_EQ(dec.str(), "");
  EXPECT_FALSE(dec.finish().is_ok());
}

TEST(Decoder, TrailingGarbageRejectedByFinish) {
  Encoder enc;
  enc.u8(1);
  enc.u8(2);
  Decoder dec(enc.view());
  (void)dec.u8();
  EXPECT_TRUE(dec.status().is_ok());
  EXPECT_FALSE(dec.finish().is_ok());
}

TEST(Decoder, BadBooleanOctet) {
  const Bytes data = {7};
  Decoder dec(data);
  (void)dec.boolean();
  EXPECT_FALSE(dec.ok());
}

TEST(Decoder, SequenceCountBomb) {
  Encoder enc;
  enc.u32(0xffffffffu);  // absurd element count
  Decoder dec(enc.view());
  const auto decoded = dec.seq<std::string>([](Decoder& d) { return d.str(); });
  EXPECT_TRUE(decoded.empty());
  EXPECT_FALSE(dec.ok());
}

struct Pair {
  std::uint32_t a = 0;
  std::string b;

  void encode(Encoder& enc) const {
    enc.u32(a);
    enc.str(b);
  }
  static Pair decode(Decoder& dec) {
    Pair p;
    p.a = dec.u32();
    p.b = dec.str();
    return p;
  }
};

TEST(Codec, StructHelpers) {
  const Pair p{7, "seven"};
  const Bytes encoded = encode_to_bytes(p);
  auto decoded = decode_from_bytes<Pair>(encoded);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().a, 7u);
  EXPECT_EQ(decoded.value().b, "seven");
}

TEST(Codec, StructHelperRejectsTrailing) {
  Bytes encoded = encode_to_bytes(Pair{1, "x"});
  encoded.push_back(0);
  EXPECT_EQ(decode_from_bytes<Pair>(encoded).code(),
            util::ErrorCode::kParseError);
}

TEST(Encoder, TakeResets) {
  Encoder enc;
  enc.u8(1);
  const Bytes first = enc.take();
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(enc.size(), 0u);
}

}  // namespace
}  // namespace rproxy::wire
