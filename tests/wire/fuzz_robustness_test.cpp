// Robustness: every decoder in the system must survive arbitrary attacker
// bytes — returning a parse error, never crashing, hanging, or silently
// succeeding on garbage.  Also mutation-fuzzes valid encodings.
#include <gtest/gtest.h>

#include "accounting/accounting_server.hpp"
#include "authz/authorization_server.hpp"
#include "baseline/dssa_roles.hpp"
#include "baseline/sollins.hpp"
#include "core/proxy_certificate.hpp"
#include "crypto/random.hpp"
#include "kdc/kdc_server.hpp"
#include "server/end_server.hpp"

namespace rproxy {
namespace {

using crypto::DeterministicRng;

template <typename T>
void expect_no_crash_on_random(DeterministicRng& rng, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const util::Bytes junk = rng.next_bytes(rng.next_below(512));
    auto result = wire::decode_from_bytes<T>(junk);
    // Either a parse error or, astronomically rarely, a structurally valid
    // decode — which is fine; it must simply not crash.  Decoding garbage
    // must never loop forever either (bounded by input size).
    (void)result;
  }
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, AllDecodersSurviveRandomBytes) {
  DeterministicRng rng(GetParam());
  expect_no_crash_on_random<core::Restriction>(rng, 50);
  expect_no_crash_on_random<core::RestrictionSet>(rng, 50);
  expect_no_crash_on_random<core::ProxyCertificate>(rng, 50);
  expect_no_crash_on_random<core::ProxyChain>(rng, 50);
  expect_no_crash_on_random<core::PossessionProof>(rng, 50);
  expect_no_crash_on_random<kdc::TicketBody>(rng, 50);
  expect_no_crash_on_random<kdc::ApRequest>(rng, 50);
  expect_no_crash_on_random<kdc::AsRequestPayload>(rng, 50);
  expect_no_crash_on_random<kdc::TgsRequestPayload>(rng, 50);
  expect_no_crash_on_random<authz::AuthzRequestPayload>(rng, 50);
  expect_no_crash_on_random<authz::ProxyGrantReplyPayload>(rng, 50);
  expect_no_crash_on_random<server::AppRequestPayload>(rng, 50);
  expect_no_crash_on_random<accounting::Check>(rng, 50);
  expect_no_crash_on_random<accounting::DepositPayload>(rng, 50);
  expect_no_crash_on_random<accounting::CertifyPayload>(rng, 50);
  expect_no_crash_on_random<baseline::SollinsPassport>(rng, 50);
  expect_no_crash_on_random<baseline::DssaRoleRecord>(rng, 50);
}

TEST_P(FuzzTest, MutatedValidChainNeverVerifies) {
  DeterministicRng rng(GetParam());
  const crypto::SigningKeyPair alice = crypto::SigningKeyPair::generate();
  core::RestrictionSet set;
  set.add(core::QuotaRestriction{"usd", 7});
  set.add(core::IssuedForRestriction{{"file-server"}});
  const core::Proxy proxy = core::grant_pk_proxy(
      "alice", alice, set, 1000 * util::kSecond, util::kHour);
  const util::Bytes valid = wire::encode_to_bytes(proxy.chain);

  core::MapKeyResolver resolver;
  resolver.add("alice", alice.public_key());
  core::ProxyVerifier::Config vc;
  vc.server_name = "file-server";
  vc.resolver = &resolver;
  const core::ProxyVerifier verifier(std::move(vc));

  // Sanity: the unmodified encoding verifies.
  {
    auto chain = wire::decode_from_bytes<core::ProxyChain>(valid);
    ASSERT_TRUE(chain.is_ok());
    ASSERT_TRUE(
        verifier.verify_chain(chain.value(), 1000 * util::kSecond).is_ok());
  }

  // Single-byte mutations: every decodable mutant must FAIL verification
  // (any bit of a signed certificate matters).
  for (int i = 0; i < 200; ++i) {
    util::Bytes mutated = valid;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    auto chain = wire::decode_from_bytes<core::ProxyChain>(mutated);
    if (!chain.is_ok()) continue;  // structural damage: fine
    auto verified =
        verifier.verify_chain(chain.value(), 1000 * util::kSecond);
    if (verified.is_ok()) {
      // The only benign mutations are within the holder-side cleartext the
      // signature does not cover — but ProxyChain has none: everything is
      // either signed or the signature itself.
      FAIL() << "mutation at some byte left the chain verifiable";
    }
  }
}

TEST_P(FuzzTest, TruncatedEnvelopesHandledByServers) {
  // Fire random payloads at a live KDC node: every reply must be a
  // well-formed error envelope, never a crash.
  DeterministicRng rng(GetParam());
  util::SimClock clock;
  net::SimNet net(clock);
  kdc::PrincipalDb db;
  db.register_with_password("kdc", "x");
  kdc::KdcServer kdc_server("kdc", std::move(db), clock);
  net.attach("kdc", kdc_server);

  for (int i = 0; i < 100; ++i) {
    const net::MsgType type = rng.next_below(2) == 0
                                  ? net::MsgType::kAsRequest
                                  : net::MsgType::kTgsRequest;
    auto reply = net.rpc("fuzzer", "kdc", type,
                         rng.next_bytes(rng.next_below(256)));
    ASSERT_TRUE(reply.is_ok());
    EXPECT_FALSE(net::status_of(reply.value()).is_ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(0xfeed, 0xbeef, 0xcafe, 0xf00d));

}  // namespace
}  // namespace rproxy
