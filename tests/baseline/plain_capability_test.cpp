// Traditional capability baseline, including the eavesdrop attack the
// proxy model defeats (§3.1).
#include "baseline/plain_capability.hpp"

#include <gtest/gtest.h>

#include "crypto/random.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using baseline::PlainCapabilityServer;
using testing::World;

class PlainCapTest : public ::testing::Test {
 protected:
  PlainCapTest() : server_("cap-server", world_.clock) {
    server_.put_file("/doc", "contents");
    world_.net.attach("cap-server", server_);
  }

  World world_;
  PlainCapabilityServer server_;
};

TEST_F(PlainCapTest, MintedCapabilityWorks) {
  const util::Bytes token = server_.mint("read", "/doc", util::kHour);
  auto result = baseline::plain_cap_invoke(world_.net, "alice", "cap-server",
                                           token, "read", "/doc");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(util::to_string(result.value()), "contents");
}

TEST_F(PlainCapTest, WrongOperationOrObjectDenied) {
  const util::Bytes token = server_.mint("read", "/doc", util::kHour);
  EXPECT_FALSE(baseline::plain_cap_invoke(world_.net, "alice", "cap-server",
                                          token, "write", "/doc")
                   .is_ok());
  EXPECT_FALSE(baseline::plain_cap_invoke(world_.net, "alice", "cap-server",
                                          token, "read", "/other")
                   .is_ok());
}

TEST_F(PlainCapTest, UnknownTokenDenied) {
  EXPECT_EQ(baseline::plain_cap_invoke(world_.net, "alice", "cap-server",
                                       crypto::random_bytes(16), "read",
                                       "/doc")
                .code(),
            util::ErrorCode::kPermissionDenied);
}

TEST_F(PlainCapTest, Expires) {
  const util::Bytes token = server_.mint("read", "/doc", util::kMinute);
  world_.clock.advance(2 * util::kMinute);
  EXPECT_EQ(baseline::plain_cap_invoke(world_.net, "alice", "cap-server",
                                       token, "read", "/doc")
                .code(),
            util::ErrorCode::kExpired);
}

TEST_F(PlainCapTest, RevocationIsPerToken) {
  const util::Bytes token = server_.mint("read", "/doc", util::kHour);
  const util::Bytes copy = server_.mint("read", "/doc", util::kHour);
  server_.revoke(token);
  EXPECT_FALSE(baseline::plain_cap_invoke(world_.net, "alice", "cap-server",
                                          token, "read", "/doc")
                   .is_ok());
  // The copy (a separately minted token for the same right) still works —
  // unlike proxy capabilities, revocation does not cover all copies.
  EXPECT_TRUE(baseline::plain_cap_invoke(world_.net, "alice", "cap-server",
                                         copy, "read", "/doc")
                  .is_ok());
}

TEST_F(PlainCapTest, EavesdropperStealsTheCapability) {
  // THE attack: a wiretap observes one legitimate use and extracts a fully
  // working capability.  Contrast with integration/attack_test.cpp where
  // the same tap against a restricted proxy yields nothing usable.
  net::RecordingTap tap;
  world_.net.add_tap(tap);

  const util::Bytes token = server_.mint("read", "/doc", util::kHour);
  ASSERT_TRUE(baseline::plain_cap_invoke(world_.net, "alice", "cap-server",
                                         token, "read", "/doc")
                  .is_ok());

  // Mallory parses the captured request and reuses the token.
  const auto captured = tap.of_type(net::MsgType::kAppRequest);
  ASSERT_EQ(captured.size(), 1u);
  auto payload = wire::decode_from_bytes<baseline::PlainCapRequestPayload>(
      captured.front().payload);
  ASSERT_TRUE(payload.is_ok());

  auto stolen_use = baseline::plain_cap_invoke(
      world_.net, "mallory", "cap-server", payload.value().token, "read",
      "/doc");
  ASSERT_TRUE(stolen_use.is_ok());  // the theft WORKS here
  EXPECT_EQ(util::to_string(stolen_use.value()), "contents");
}

}  // namespace
}  // namespace rproxy
