// DSSA-style role delegation baseline (§5): correctness, the fixed-rights
// property, and the costs the paper criticizes.
#include "baseline/dssa_roles.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using baseline::DssaRegistry;
using testing::World;

class DssaTest : public ::testing::Test {
 protected:
  DssaTest() : registry_("role-registry") {
    world_.net.attach("role-registry", registry_);
  }

  World world_;
  DssaRegistry registry_;
};

TEST_F(DssaTest, CreateDelegateVerify) {
  auto role = baseline::dssa_create_role(
      world_.net, "alice", "role-registry",
      {core::ObjectRights{"/doc", {"read"}}});
  ASSERT_TRUE(role.is_ok()) << role.status();

  const baseline::DssaDelegationCert cert = baseline::dssa_delegate(
      role.value().role, role.value().key, "bob", world_.clock.now(),
      util::kHour);

  auto owner = baseline::dssa_verify(world_.net, "file-server",
                                     "role-registry", cert, "bob", "read",
                                     "/doc", world_.clock.now());
  ASSERT_TRUE(owner.is_ok()) << owner.status();
  EXPECT_EQ(owner.value(), "alice");
}

TEST_F(DssaTest, RoleRightsAreFixed) {
  // The criticism: restricting differently means creating ANOTHER role.
  auto role = baseline::dssa_create_role(
      world_.net, "alice", "role-registry",
      {core::ObjectRights{"/doc", {"read"}}});
  ASSERT_TRUE(role.is_ok());
  const baseline::DssaDelegationCert cert = baseline::dssa_delegate(
      role.value().role, role.value().key, "bob", world_.clock.now(),
      util::kHour);

  EXPECT_EQ(baseline::dssa_verify(world_.net, "file-server",
                                  "role-registry", cert, "bob", "write",
                                  "/doc", world_.clock.now())
                .code(),
            util::ErrorCode::kRestrictionViolated);
  EXPECT_EQ(baseline::dssa_verify(world_.net, "file-server",
                                  "role-registry", cert, "bob", "read",
                                  "/other", world_.clock.now())
                .code(),
            util::ErrorCode::kRestrictionViolated);
}

TEST_F(DssaTest, EachDistinctRestrictionNeedsARoleCreation) {
  // Quantifies "cumbersome when delegating on the fly": N distinct
  // restriction sets -> N registry round trips.
  world_.net.reset_stats();
  for (int i = 0; i < 5; ++i) {
    auto role = baseline::dssa_create_role(
        world_.net, "alice", "role-registry",
        {core::ObjectRights{"/doc-" + std::to_string(i), {"read"}}});
    ASSERT_TRUE(role.is_ok());
  }
  EXPECT_EQ(registry_.roles_created(), 5u);
  EXPECT_EQ(world_.net.stats().rpcs, 5u);
}

TEST_F(DssaTest, VerificationNeedsTheRegistry) {
  auto role = baseline::dssa_create_role(
      world_.net, "alice", "role-registry",
      {core::ObjectRights{"/doc", {"read"}}});
  ASSERT_TRUE(role.is_ok());
  const baseline::DssaDelegationCert cert = baseline::dssa_delegate(
      role.value().role, role.value().key, "bob", world_.clock.now(),
      util::kHour);

  world_.net.fail_link("file-server", "role-registry");
  EXPECT_FALSE(baseline::dssa_verify(world_.net, "file-server",
                                     "role-registry", cert, "bob", "read",
                                     "/doc", world_.clock.now())
                   .is_ok());
}

TEST_F(DssaTest, WrongDelegateRejected) {
  auto role = baseline::dssa_create_role(
      world_.net, "alice", "role-registry",
      {core::ObjectRights{"/doc", {"read"}}});
  ASSERT_TRUE(role.is_ok());
  const baseline::DssaDelegationCert cert = baseline::dssa_delegate(
      role.value().role, role.value().key, "bob", world_.clock.now(),
      util::kHour);
  EXPECT_EQ(baseline::dssa_verify(world_.net, "file-server",
                                  "role-registry", cert, "mallory", "read",
                                  "/doc", world_.clock.now())
                .code(),
            util::ErrorCode::kNotGrantee);
}

TEST_F(DssaTest, ForgedDelegationRejected) {
  auto role = baseline::dssa_create_role(
      world_.net, "alice", "role-registry",
      {core::ObjectRights{"/doc", {"read"}}});
  ASSERT_TRUE(role.is_ok());
  const baseline::DssaDelegationCert cert = baseline::dssa_delegate(
      role.value().role, crypto::SigningKeyPair::generate(),  // wrong key
      "bob", world_.clock.now(), util::kHour);
  EXPECT_EQ(baseline::dssa_verify(world_.net, "file-server",
                                  "role-registry", cert, "bob", "read",
                                  "/doc", world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(DssaTest, ExpiredDelegationRejected) {
  auto role = baseline::dssa_create_role(
      world_.net, "alice", "role-registry",
      {core::ObjectRights{"/doc", {"read"}}});
  ASSERT_TRUE(role.is_ok());
  const baseline::DssaDelegationCert cert = baseline::dssa_delegate(
      role.value().role, role.value().key, "bob", world_.clock.now(),
      util::kMinute);
  world_.clock.advance(util::kHour);
  EXPECT_EQ(baseline::dssa_verify(world_.net, "file-server",
                                  "role-registry", cert, "bob", "read",
                                  "/doc", world_.clock.now())
                .code(),
            util::ErrorCode::kExpired);
}

TEST_F(DssaTest, UnknownRoleRejected) {
  baseline::DssaDelegationCert cert;
  cert.role = "ghost/role-1";
  cert.delegate = "bob";
  cert.expires_at = world_.clock.now() + util::kHour;
  EXPECT_EQ(baseline::dssa_verify(world_.net, "file-server",
                                  "role-registry", cert, "bob", "read",
                                  "/doc", world_.clock.now())
                .code(),
            util::ErrorCode::kNotFound);
}

}  // namespace
}  // namespace rproxy
