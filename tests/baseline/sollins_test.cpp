// Sollins cascaded-authentication baseline: correctness, and the defining
// property that verification requires contacting the auth server.
#include "baseline/sollins.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using baseline::SollinsAuthServer;
using baseline::SollinsPassport;
using testing::World;

class SollinsTest : public ::testing::Test {
 protected:
  SollinsTest() : auth_server_("sollins-auth", world_.clock) {
    world_.net.attach("sollins-auth", auth_server_);
    alice_secret_ = auth_server_.register_principal("alice");
    proxy_a_secret_ = auth_server_.register_principal("service-a");
    proxy_b_secret_ = auth_server_.register_principal("service-b");
  }

  SollinsPassport chain_of_two() {
    core::RestrictionSet first;
    first.add(core::QuotaRestriction{"usd", 100});
    SollinsPassport p = baseline::sollins_create(
        "alice", alice_secret_, "service-a", first, world_.clock.now(),
        util::kHour);
    core::RestrictionSet second;
    second.add(core::QuotaRestriction{"usd", 10});
    return baseline::sollins_extend(p, "service-a", proxy_a_secret_,
                                    "service-b", second,
                                    world_.clock.now(), util::kHour);
  }

  World world_;
  SollinsAuthServer auth_server_;
  crypto::SymmetricKey alice_secret_;
  crypto::SymmetricKey proxy_a_secret_;
  crypto::SymmetricKey proxy_b_secret_;
};

TEST_F(SollinsTest, ValidChainVerifies) {
  auto reply = auth_server_.verify(chain_of_two(), world_.clock.now());
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_TRUE(reply.value().valid);
  EXPECT_EQ(reply.value().origin, "alice");
  EXPECT_EQ(reply.value().holder, "service-b");
  EXPECT_EQ(reply.value().effective.size(), 2u);  // additive restrictions
}

TEST_F(SollinsTest, TamperedLinkRejected) {
  SollinsPassport p = chain_of_two();
  p.links[1].restrictions = core::RestrictionSet{};
  EXPECT_EQ(auth_server_.verify(p, world_.clock.now()).code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(SollinsTest, NonContiguousChainRejected) {
  SollinsPassport p = chain_of_two();
  p.links.erase(p.links.begin());  // drop the first hop
  EXPECT_EQ(auth_server_.verify(p, world_.clock.now()).code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(SollinsTest, ExpiredLinkRejected) {
  SollinsPassport p = chain_of_two();
  world_.clock.advance(2 * util::kHour);
  EXPECT_EQ(auth_server_.verify(p, world_.clock.now()).code(),
            util::ErrorCode::kExpired);
}

TEST_F(SollinsTest, UnregisteredPrincipalRejected) {
  const crypto::SymmetricKey ghost = crypto::SymmetricKey::generate();
  SollinsPassport p = baseline::sollins_create(
      "ghost", ghost, "service-a", {}, world_.clock.now(), util::kHour);
  EXPECT_EQ(auth_server_.verify(p, world_.clock.now()).code(),
            util::ErrorCode::kNotFound);
}

TEST_F(SollinsTest, ForgedMacRejected) {
  // service-a forges a link claiming to come from alice.
  SollinsPassport p = baseline::sollins_create(
      "alice", proxy_a_secret_ /* wrong secret */, "service-a", {},
      world_.clock.now(), util::kHour);
  EXPECT_EQ(auth_server_.verify(p, world_.clock.now()).code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(SollinsTest, RemoteVerificationCostsARoundTrip) {
  // The paper's point (§3.4): the END-SERVER cannot verify locally — it
  // holds no principal secrets — so it pays a network round trip.
  const SollinsPassport p = chain_of_two();
  world_.net.reset_stats();
  auto reply = baseline::sollins_verify_remote(world_.net, "end-server",
                                               "sollins-auth", p);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().valid);
  EXPECT_EQ(world_.net.stats().rpcs, 1u);
  EXPECT_EQ(world_.net.stats().messages, 2u);
}

TEST_F(SollinsTest, PassportCodecRoundTrip) {
  const SollinsPassport p = chain_of_two();
  auto decoded =
      wire::decode_from_bytes<SollinsPassport>(wire::encode_to_bytes(p));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().id, p.id);
  EXPECT_EQ(decoded.value().links.size(), 2u);
  EXPECT_EQ(decoded.value().links[1].mac, p.links[1].mac);
}

}  // namespace
}  // namespace rproxy
