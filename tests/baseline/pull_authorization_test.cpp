// Pull-model (Grapevine-style) authorization baseline.
#include "baseline/pull_authorization.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using baseline::PullAuthEndServer;
using baseline::RegistrationServer;
using testing::World;

class PullAuthTest : public ::testing::Test {
 protected:
  PullAuthTest()
      : registration_("registration"),
        end_server_("pull-server", "registration", world_.net,
                    world_.clock) {
    world_.net.attach("registration", registration_);
    world_.net.attach("pull-server", end_server_);
    registration_.grant("alice", "read", "/doc");
  }

  World world_;
  RegistrationServer registration_;
  PullAuthEndServer end_server_;
};

TEST_F(PullAuthTest, AuthorizedClientServed) {
  EXPECT_TRUE(baseline::pull_invoke(world_.net, "alice", "pull-server",
                                    "read", "/doc")
                  .is_ok());
  EXPECT_EQ(end_server_.operations_served(), 1u);
}

TEST_F(PullAuthTest, UnauthorizedClientDenied) {
  EXPECT_EQ(baseline::pull_invoke(world_.net, "bob", "pull-server", "read",
                                  "/doc")
                .code(),
            util::ErrorCode::kPermissionDenied);
}

TEST_F(PullAuthTest, EveryRequestCostsARegistrationQuery) {
  // The defining cost of the pull model (§5).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(baseline::pull_invoke(world_.net, "alice", "pull-server",
                                      "read", "/doc")
                    .is_ok());
  }
  EXPECT_EQ(end_server_.registration_queries(), 5u);
  EXPECT_EQ(registration_.queries_served(), 5u);
}

TEST_F(PullAuthTest, RevocationIsImmediate) {
  // The pull model's one advantage: central revocation takes effect on the
  // next request.
  ASSERT_TRUE(baseline::pull_invoke(world_.net, "alice", "pull-server",
                                    "read", "/doc")
                  .is_ok());
  registration_.revoke("alice", "read", "/doc");
  EXPECT_FALSE(baseline::pull_invoke(world_.net, "alice", "pull-server",
                                     "read", "/doc")
                   .is_ok());
}

TEST_F(PullAuthTest, CachingCutsQueriesButDelaysRevocation) {
  PullAuthEndServer cached("cached-server", "registration", world_.net,
                           world_.clock, 10 * util::kMinute);
  world_.net.attach("cached-server", cached);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(baseline::pull_invoke(world_.net, "alice", "cached-server",
                                      "read", "/doc")
                    .is_ok());
  }
  EXPECT_EQ(cached.registration_queries(), 1u);

  // Revocation does NOT take effect within the cache TTL — the classic
  // /etc/group staleness problem.
  registration_.revoke("alice", "read", "/doc");
  EXPECT_TRUE(baseline::pull_invoke(world_.net, "alice", "cached-server",
                                    "read", "/doc")
                  .is_ok());
  world_.clock.advance(11 * util::kMinute);
  EXPECT_FALSE(baseline::pull_invoke(world_.net, "alice", "cached-server",
                                     "read", "/doc")
                   .is_ok());
}

TEST_F(PullAuthTest, RegistrationServerDownBlocksAllRequests) {
  world_.net.detach("registration");
  EXPECT_FALSE(baseline::pull_invoke(world_.net, "alice", "pull-server",
                                     "read", "/doc")
                   .is_ok());
}

}  // namespace
}  // namespace rproxy
