// Amoeba-style prepaid bank baseline (§5).
#include "baseline/prepaid_bank.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using baseline::PrepaidBank;
using testing::World;

class PrepaidBankTest : public ::testing::Test {
 protected:
  PrepaidBankTest() : bank_("bank") {
    world_.net.attach("bank", bank_);
    bank_.open_account("client", accounting::Balances{{"usd", 100}});
    bank_.open_account("server", {});
  }

  World world_;
  PrepaidBank bank_;
};

TEST_F(PrepaidBankTest, PrepayMovesFunds) {
  auto reply =
      baseline::prepay(world_.net, "client", "bank", "server", "usd", 40);
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(reply.value().server_balance_for_client, 40);
  EXPECT_EQ(bank_.balance("client", "usd"), 60);
  EXPECT_EQ(bank_.prepaid("server", "client", "usd"), 40);
}

TEST_F(PrepaidBankTest, PrepayBeyondBalanceRejected) {
  EXPECT_EQ(baseline::prepay(world_.net, "client", "bank", "server", "usd",
                             101)
                .code(),
            util::ErrorCode::kInsufficientFunds);
}

TEST_F(PrepaidBankTest, ServiceDrawsDownPrepaidFunds) {
  ASSERT_TRUE(
      baseline::prepay(world_.net, "client", "bank", "server", "usd", 40)
          .is_ok());
  // "The server will then provide services until the pre-paid funds have
  // been exhausted."
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(bank_.draw_down("server", "client", "usd", 10).is_ok());
  }
  EXPECT_EQ(bank_.draw_down("server", "client", "usd", 10).code(),
            util::ErrorCode::kInsufficientFunds);
  EXPECT_EQ(bank_.balance("server", "usd"), 40);
}

TEST_F(PrepaidBankTest, UnspentFundsStrandedAtServer) {
  // The shape the check model avoids: the client over-provisions and the
  // remainder sits in the server's pool.
  ASSERT_TRUE(
      baseline::prepay(world_.net, "client", "bank", "server", "usd", 50)
          .is_ok());
  ASSERT_TRUE(bank_.draw_down("server", "client", "usd", 10).is_ok());
  EXPECT_EQ(bank_.prepaid("server", "client", "usd"), 40);  // stranded
  EXPECT_EQ(bank_.balance("client", "usd"), 50);
}

TEST_F(PrepaidBankTest, UnknownAccountRejected) {
  EXPECT_EQ(
      baseline::prepay(world_.net, "ghost", "bank", "server", "usd", 1)
          .code(),
      util::ErrorCode::kNotFound);
}

TEST_F(PrepaidBankTest, MultipleCurrencies) {
  bank_.open_account("client2", accounting::Balances{{"pages", 30}});
  ASSERT_TRUE(
      baseline::prepay(world_.net, "client2", "bank", "server", "pages", 30)
          .is_ok());
  EXPECT_EQ(bank_.prepaid("server", "client2", "pages"), 30);
  EXPECT_EQ(bank_.prepaid("server", "client2", "usd"), 0);
}

}  // namespace
}  // namespace rproxy
