// util::Rng: determinism is the contract everything in the chaos suite
// leans on — same seed, same sequence, on every platform.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace rproxy {
namespace {

TEST(Rng, SameSeedSameSequence) {
  util::Rng a(1234);
  util::Rng b(1234);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1);
  util::Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) differing += 1;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, ZeroSeedStillProducesASequence) {
  util::Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(rng.next_u64());
  EXPECT_GT(seen.size(), 1u);  // not stuck at a fixed point
}

TEST(Rng, ChanceBurnsExactlyOneDrawRegardlessOfProbability) {
  // Fault replay depends on a FIXED number of draws per decision: changing
  // a probability from 0 to 0.5 must not shift every later decision.
  util::Rng a(7);
  util::Rng b(7);
  (void)a.chance(0.0);   // always false...
  (void)b.chance(1.0);   // ...always true...
  EXPECT_EQ(a.next_u64(), b.next_u64());  // ...but both consumed one draw
}

TEST(Rng, ChanceRespectsExtremes) {
  util::Rng rng(99);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceTracksProbabilityRoughly) {
  util::Rng rng(42);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.25)) hits += 1;
  }
  EXPECT_GT(hits, 2200);
  EXPECT_LT(hits, 2800);
}

TEST(Rng, BelowAndRangeStayInBounds) {
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    const std::int64_t v = rng.range(-3, 11);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 11);
  }
  // Both endpoints of range() are actually reachable.
  util::Rng edge(6);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000 && !(lo && hi); ++i) {
    const std::int64_t v = edge.range(0, 3);
    lo = lo || v == 0;
    hi = hi || v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, SplitIsIndependentOfParent) {
  util::Rng parent_a(77);
  util::Rng parent_b(77);
  util::Rng child = parent_a.split();
  (void)parent_b.split();
  // Draining the child must not perturb the parent's sequence.
  std::vector<std::uint64_t> drained;
  for (int i = 0; i < 8; ++i) drained.push_back(child.next_u64());
  EXPECT_EQ(parent_a.next_u64(), parent_b.next_u64());
  // And the child's stream differs from the parent's.
  EXPECT_NE(drained.front(), parent_a.next_u64());
}

}  // namespace
}  // namespace rproxy
