#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace rproxy::util {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(b), "0001deadbeefff");
  EXPECT_EQ(from_hex("0001deadbeefff"), b);
  EXPECT_EQ(from_hex("0001DEADBEEFFF"), b);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, FromHexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, StringRoundTrip) {
  const std::string s = "hello\0world";  // embedded NUL cut by literal; use explicit
  const std::string with_nul("a\0b", 3);
  EXPECT_EQ(to_string(to_bytes(with_nul)), with_nul);
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {};
  const Bytes c = {3};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
  EXPECT_TRUE(concat({}).empty());
}

TEST(Bytes, Append) {
  Bytes dst = {1};
  append(dst, Bytes{2, 3});
  EXPECT_EQ(dst, (Bytes{1, 2, 3}));
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(Bytes, ToBytesFromView) {
  const Bytes a = {9, 8, 7};
  const Bytes copy = to_bytes(BytesView(a));
  EXPECT_EQ(copy, a);
}

}  // namespace
}  // namespace rproxy::util
