#include "util/clock.hpp"

#include <gtest/gtest.h>

namespace rproxy::util {
namespace {

TEST(SimClock, StartsAtGivenTime) {
  SimClock clock(123 * kSecond);
  EXPECT_EQ(clock.now(), 123 * kSecond);
}

TEST(SimClock, Advances) {
  SimClock clock(0);
  clock.advance(5 * kSecond);
  clock.advance(500 * kMillisecond);
  EXPECT_EQ(clock.now(), 5 * kSecond + 500 * kMillisecond);
}

TEST(SimClock, SetJumpsForward) {
  SimClock clock(0);
  clock.set(kHour);
  EXPECT_EQ(clock.now(), kHour);
}

TEST(SimClock, DefaultStartIsNonZero) {
  SimClock clock;
  EXPECT_GT(clock.now(), 0);
}

TEST(SystemClock, MonotonicEnough) {
  SystemClock& clock = SystemClock::instance();
  const TimePoint a = clock.now();
  const TimePoint b = clock.now();
  EXPECT_LE(a, b);
  EXPECT_GT(a, 0);
}

TEST(FormatTime, RendersSecondsAndMicros) {
  EXPECT_EQ(format_time(1 * kSecond + 250), "1.000250s");
  EXPECT_EQ(format_time(0), "0.000000s");
}

TEST(DurationConstants, Relationships) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
}

}  // namespace
}  // namespace rproxy::util
