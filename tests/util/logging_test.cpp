#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace rproxy::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  ~LoggingTest() override { set_log_level(LogLevel::kOff); }
};

TEST_F(LoggingTest, DefaultIsOff) {
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LoggingTest, LoggerStreamsDoNotCrashAtAnyLevel) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    Logger(LogLevel::kInfo, "test") << "value=" << 42 << " name=" << "x";
    log_line(LogLevel::kError, "test", "direct line");
  }
}

}  // namespace
}  // namespace rproxy::util
