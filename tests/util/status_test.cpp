#include "util/status.hpp"

#include <gtest/gtest.h>

namespace rproxy::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FailureCarriesCodeAndMessage) {
  Status s = fail(ErrorCode::kExpired, "ticket expired");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kExpired);
  EXPECT_EQ(s.message(), "ticket expired");
  EXPECT_EQ(s.to_string(), "Expired: ticket expired");
}

TEST(Status, EveryCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kInternal); ++code) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(code)), "Unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
}

TEST(Result, HoldsStatus) {
  Result<int> r = fail(ErrorCode::kNotFound, "nope");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

Status helper_propagates(bool ok) {
  RPROXY_RETURN_IF_ERROR(ok ? Status::ok()
                            : fail(ErrorCode::kInternal, "inner"));
  return Status::ok();
}

TEST(Macros, ReturnIfError) {
  EXPECT_TRUE(helper_propagates(true).is_ok());
  EXPECT_EQ(helper_propagates(false).code(), ErrorCode::kInternal);
}

Result<int> doubled(Result<int> in) {
  RPROXY_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Macros, AssignOrReturn) {
  EXPECT_EQ(doubled(21).value(), 42);
  EXPECT_EQ(doubled(fail(ErrorCode::kParseError, "bad")).code(),
            ErrorCode::kParseError);
}

}  // namespace
}  // namespace rproxy::util
