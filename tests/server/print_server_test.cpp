#include "server/print_server.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class PrintServerTest : public ::testing::Test {
 protected:
  PrintServerTest() {
    world_.add_principal("alice");
    world_.add_principal("print-server");
    server_ = std::make_unique<server::PrintServer>(
        world_.end_server_config("print-server"));
    server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    world_.net.attach("print-server", *server_);
  }

  core::Proxy capability(std::uint64_t page_quota) {
    core::RestrictionSet set;
    set.add(core::AuthorizedRestriction{
        {core::ObjectRights{"queue-a", {"print"}}}});
    set.add(core::IssuedForRestriction{{"print-server"}});
    set.add(core::QuotaRestriction{
        std::string(server::kPagesCurrency), page_quota});
    return core::grant_pk_proxy("alice", world_.principal("alice").identity,
                                std::move(set), world_.clock.now(),
                                util::kHour);
  }

  util::Result<util::Bytes> print(const core::Proxy& proxy,
                                  std::uint64_t pages) {
    server::AppClient client(world_.net, world_.clock, "alice");
    return client.invoke_with_proxy(
        "print-server", proxy, "print", "queue-a",
        {{std::string(server::kPagesCurrency), pages}},
        util::to_bytes(std::string_view("job body")));
  }

  World world_;
  std::unique_ptr<server::PrintServer> server_;
};

TEST_F(PrintServerTest, PrintWithinQuota) {
  auto result = print(capability(10), 5);
  ASSERT_TRUE(result.is_ok()) << result.status();
  ASSERT_EQ(server_->jobs().size(), 1u);
  EXPECT_EQ(server_->jobs()[0].pages, 5u);
  EXPECT_EQ(server_->jobs()[0].queue, "queue-a");
  EXPECT_EQ(server_->jobs()[0].authority, "alice");
  EXPECT_EQ(server_->pages_printed(), 5u);
}

TEST_F(PrintServerTest, QuotaExceededRejected) {
  EXPECT_EQ(print(capability(10), 11).code(),
            util::ErrorCode::kRestrictionViolated);
  EXPECT_TRUE(server_->jobs().empty());
}

TEST_F(PrintServerTest, PageCountRequired) {
  const core::Proxy proxy = capability(10);
  server::AppClient client(world_.net, world_.clock, "alice");
  EXPECT_EQ(client
                .invoke_with_proxy("print-server", proxy, "print", "queue-a",
                                   {},
                                   util::to_bytes(std::string_view("body")))
                .code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(PrintServerTest, WrongQueueRejected) {
  const core::Proxy proxy = capability(10);
  server::AppClient client(world_.net, world_.clock, "alice");
  EXPECT_EQ(client
                .invoke_with_proxy("print-server", proxy, "print", "queue-b",
                                   {{std::string(server::kPagesCurrency), 1}},
                                   util::to_bytes(std::string_view("body")))
                .code(),
            util::ErrorCode::kRestrictionViolated);
}

TEST_F(PrintServerTest, JobIdsIncrement) {
  ASSERT_TRUE(print(capability(10), 1).is_ok());
  auto second = print(capability(10), 1);
  ASSERT_TRUE(second.is_ok());
  wire::Decoder dec(second.value());
  EXPECT_EQ(dec.u64(), 2u);
}

TEST_F(PrintServerTest, LimitRestrictionScopesQuotaToPrintServer) {
  // §7.8: a quota wrapped in limit-restriction for the print server is
  // ignored elsewhere but enforced here.
  core::RestrictionSet set;
  set.add(core::AuthorizedRestriction{
      {core::ObjectRights{"queue-a", {"print"}}}});
  core::LimitRestriction limit;
  limit.servers = {"print-server"};
  limit.inner = {core::Restriction{
      core::QuotaRestriction{std::string(server::kPagesCurrency), 3}}};
  set.add(limit);
  const core::Proxy proxy =
      core::grant_pk_proxy("alice", world_.principal("alice").identity,
                           std::move(set), world_.clock.now(), util::kHour);

  EXPECT_TRUE(print(proxy, 3).is_ok());
  EXPECT_EQ(print(proxy, 4).code(), util::ErrorCode::kRestrictionViolated);
}

}  // namespace
}  // namespace rproxy
