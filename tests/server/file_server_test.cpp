#include "server/file_server.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class FileServerTest : public ::testing::Test {
 protected:
  FileServerTest() {
    world_.add_principal("alice");
    world_.add_principal("file-server");
    server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    server_->put_file("/a", "alpha");
    world_.net.attach("file-server", *server_);
    cap_ = authz::make_capability_pk(
        "alice", world_.principal("alice").identity, "file-server",
        {core::ObjectRights{"*", {}}}, world_.clock.now(), util::kHour);
  }

  util::Result<util::Bytes> invoke(const Operation& op,
                                   const ObjectName& object,
                                   util::Bytes args = {}) {
    server::AppClient client(world_.net, world_.clock, "alice");
    return client.invoke_with_proxy("file-server", cap_, op, object, {},
                                    std::move(args));
  }

  World world_;
  std::unique_ptr<server::FileServer> server_;
  core::Proxy cap_;
};

TEST_F(FileServerTest, Read) {
  auto result = invoke("read", "/a");
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(util::to_string(result.value()), "alpha");
}

TEST_F(FileServerTest, ReadMissingFileFails) {
  EXPECT_EQ(invoke("read", "/missing").code(), util::ErrorCode::kNotFound);
}

TEST_F(FileServerTest, WriteCreatesAndOverwrites) {
  ASSERT_TRUE(
      invoke("write", "/b", util::to_bytes(std::string_view("beta")))
          .is_ok());
  EXPECT_EQ(server_->file_contents("/b").value(), "beta");
  ASSERT_TRUE(
      invoke("write", "/b", util::to_bytes(std::string_view("BETA")))
          .is_ok());
  EXPECT_EQ(server_->file_contents("/b").value(), "BETA");
}

TEST_F(FileServerTest, Delete) {
  ASSERT_TRUE(invoke("delete", "/a").is_ok());
  EXPECT_FALSE(server_->has_file("/a"));
  EXPECT_EQ(invoke("delete", "/a").code(), util::ErrorCode::kNotFound);
}

TEST_F(FileServerTest, ListReturnsCount) {
  server_->put_file("/c", "x");
  auto result = invoke("list", "");
  ASSERT_TRUE(result.is_ok());
  wire::Decoder dec(result.value());
  EXPECT_EQ(dec.u32(), 2u);  // /a and /c
}

TEST_F(FileServerTest, UnknownOperationRejected) {
  EXPECT_EQ(invoke("chmod", "/a").code(), util::ErrorCode::kProtocolError);
}

TEST_F(FileServerTest, FailedPerformIsAudited) {
  ASSERT_FALSE(invoke("read", "/missing").is_ok());
  EXPECT_EQ(server_->audit().denied_count(), 1u);
}

}  // namespace
}  // namespace rproxy
