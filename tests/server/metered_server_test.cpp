// MeteredServer: the §4 pay-per-operation flow as a reusable server.
#include "server/metered_server.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class MeteredServerTest : public ::testing::Test {
 protected:
  MeteredServerTest() {
    world_.add_principal("client");
    world_.add_principal("compute");
    world_.add_principal("bank");

    bank_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank"));
    world_.net.attach("bank", *bank_);
    bank_->open_account("client-acct", "client",
                        accounting::Balances{{"usd", 100}});
    bank_->open_account("compute-revenue", "compute");

    server_accounting_ = std::make_unique<accounting::AccountingClient>(
        world_.accounting_client("compute"));

    server::MeteredServer::MeteredConfig config;
    config.base = world_.end_server_config("compute");
    config.prices["compute"] = {"usd", 10};
    config.bank = "bank";
    config.collect_account = "compute-revenue";
    config.accounting_client = server_accounting_.get();
    server_ = std::make_unique<server::MeteredComputeServer>(config);
    server_->acl().add(authz::AclEntry{{"client"}, {}, {}, {}});
    world_.net.attach("compute", *server_);
  }

  /// Runs one paid compute with a (certified) check for `amount`.
  util::Result<util::Bytes> paid_compute(std::uint64_t amount,
                                         std::uint64_t ckno,
                                         bool certify = true) {
    const testing::Principal& client = world_.principal("client");
    server::PaymentEnvelope payment;
    payment.check = accounting::write_check(
        "client", client.identity, AccountId{"bank", "client-acct"},
        "compute", "usd", amount, ckno, world_.clock.now(), util::kHour);
    if (certify) {
      auto client_acct = world_.accounting_client("client");
      auto certification = client_acct.certify(
          "bank", "client-acct", "compute", "usd", amount, ckno, "compute");
      if (!certification.is_ok()) return certification.status();
      payment.certification = certification.value().certification;
    }
    payment.inner_args = util::to_bytes(std::string_view("21*2"));

    server::AppClient app(world_.net, world_.clock, "client");
    return app.invoke(
        "compute", "compute", "job", {},
        wire::encode_to_bytes(payment),
        [&](util::BytesView challenge, util::BytesView rdigest,
            server::AppRequestPayload& req) {
          req.identity = core::prove_delegate_pk(client.cert,
                                                 client.identity, challenge,
                                                 "compute",
                                                 world_.clock.now(),
                                                 rdigest);
        });
  }

  World world_;
  std::unique_ptr<accounting::AccountingServer> bank_;
  std::unique_ptr<accounting::AccountingClient> server_accounting_;
  std::unique_ptr<server::MeteredComputeServer> server_;
};

TEST_F(MeteredServerTest, PaidOperationPerformsAndBanks) {
  auto result = paid_compute(10, 1);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(util::to_string(result.value()), "computed:21*2");
  EXPECT_EQ(server_->payments_banked(), 1u);
  EXPECT_EQ(bank_->account("compute-revenue")->balances().balance("usd"),
            10);
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 90);
}

TEST_F(MeteredServerTest, MissingPaymentRejected) {
  const testing::Principal& client = world_.principal("client");
  server::AppClient app(world_.net, world_.clock, "client");
  auto result = app.invoke(
      "compute", "compute", "job", {},
      util::to_bytes(std::string_view("21*2")),  // raw args, no payment
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        req.identity = core::prove_delegate_pk(client.cert, client.identity,
                                               challenge, "compute",
                                               world_.clock.now(), rdigest);
      });
  EXPECT_EQ(result.code(), util::ErrorCode::kInsufficientFunds);
  EXPECT_EQ(server_->payments_rejected(), 1u);
}

TEST_F(MeteredServerTest, UnderpaymentRejected) {
  EXPECT_EQ(paid_compute(5, 2).code(), util::ErrorCode::kInsufficientFunds);
  // Nothing was performed or banked; the hold from certification remains
  // until expiry but no funds moved.
  EXPECT_EQ(bank_->account("compute-revenue")->balances().balance("usd"),
            0);
}

TEST_F(MeteredServerTest, UncertifiedCheckRejectedWhenRequired) {
  EXPECT_EQ(paid_compute(10, 3, /*certify=*/false).code(),
            util::ErrorCode::kInsufficientFunds);
}

TEST_F(MeteredServerTest, ReusedCheckNumberFailsAtCertification) {
  ASSERT_TRUE(paid_compute(10, 4).is_ok());
  // Same check number again: the drawee refuses to certify a duplicate.
  EXPECT_EQ(paid_compute(10, 4).code(), util::ErrorCode::kReplay);
  EXPECT_EQ(server_->payments_banked(), 1u);
}

TEST_F(MeteredServerTest, FreeOperationNeedsNoPayment) {
  const testing::Principal& client = world_.principal("client");
  server::AppClient app(world_.net, world_.clock, "client");
  auto result = app.invoke(
      "compute", "ping", "job", {}, util::to_bytes(std::string_view("hi")),
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        req.identity = core::prove_delegate_pk(client.cert, client.identity,
                                               challenge, "compute",
                                               world_.clock.now(), rdigest);
      });
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(util::to_string(result.value()), "computed:hi");
}

}  // namespace
}  // namespace rproxy
