#include "server/audit_log.hpp"

#include <gtest/gtest.h>

namespace rproxy::server {
namespace {

AuditRecord record(bool allowed, const Operation& op = "read") {
  AuditRecord r;
  r.time = 1000;
  r.operation = op;
  r.object = "/doc";
  r.authority = "alice";
  r.allowed = allowed;
  r.detail = allowed ? "ok" : "denied";
  return r;
}

TEST(AuditLog, CountsOutcomes) {
  AuditLog log;
  log.append(record(true));
  log.append(record(false));
  log.append(record(true));
  EXPECT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.allowed_count(), 2u);
  EXPECT_EQ(log.denied_count(), 1u);
}

TEST(AuditLog, PreservesOrderAndFields) {
  AuditLog log;
  AuditRecord r = record(true, "write");
  r.identities = {"bob"};
  r.via = {"intermediate"};
  log.append(r);
  const AuditRecord& stored = log.records().front();
  EXPECT_EQ(stored.operation, "write");
  EXPECT_EQ(stored.identities, std::vector<PrincipalName>{"bob"});
  EXPECT_EQ(stored.via, std::vector<PrincipalName>{"intermediate"});
  EXPECT_EQ(stored.authority, "alice");
}

TEST(AuditLog, ClearResets) {
  AuditLog log;
  log.append(record(true));
  log.clear();
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.allowed_count(), 0u);
  EXPECT_EQ(log.denied_count(), 0u);
}

}  // namespace
}  // namespace rproxy::server
