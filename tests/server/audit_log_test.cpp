#include "server/audit_log.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "testing/tempdir.hpp"

namespace rproxy::server {
namespace {

using rproxy::testing::TempDir;

AuditRecord record(bool allowed, const Operation& op = "read") {
  AuditRecord r;
  r.time = 1000;
  r.operation = op;
  r.object = "/doc";
  r.authority = "alice";
  r.allowed = allowed;
  r.detail = allowed ? "ok" : "denied";
  return r;
}

TEST(AuditLog, CountsOutcomes) {
  AuditLog log;
  log.append(record(true));
  log.append(record(false));
  log.append(record(true));
  EXPECT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.allowed_count(), 2u);
  EXPECT_EQ(log.denied_count(), 1u);
}

TEST(AuditLog, PreservesOrderAndFields) {
  AuditLog log;
  AuditRecord r = record(true, "write");
  r.identities = {"bob"};
  r.via = {"intermediate"};
  log.append(r);
  const AuditRecord& stored = log.records().front();
  EXPECT_EQ(stored.operation, "write");
  EXPECT_EQ(stored.identities, std::vector<PrincipalName>{"bob"});
  EXPECT_EQ(stored.via, std::vector<PrincipalName>{"intermediate"});
  EXPECT_EQ(stored.authority, "alice");
}

TEST(AuditLog, ClearResets) {
  AuditLog log;
  log.append(record(true));
  log.clear();
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.allowed_count(), 0u);
  EXPECT_EQ(log.denied_count(), 0u);
}

TEST(AuditLog, SinkRoundTripsEveryField) {
  TempDir dir;
  const std::string path = dir.sub("audit.wal");
  AuditLog log;
  ASSERT_TRUE(log.open_sink(path).is_ok());
  AuditRecord r = record(true, "write");
  r.identities = {"bob", "carol"};
  r.via = {"intermediate"};
  log.append(r);
  log.append(record(false));
  ASSERT_TRUE(log.sync_sink().is_ok());
  EXPECT_EQ(log.sink_failures(), 0u);

  auto loaded = AuditLog::read_sink(path);
  ASSERT_TRUE(loaded.is_ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  const AuditRecord& first = loaded.value()[0];
  EXPECT_EQ(first.time, 1000);
  EXPECT_EQ(first.operation, "write");
  EXPECT_EQ(first.object, "/doc");
  EXPECT_EQ(first.authority, "alice");
  EXPECT_EQ(first.identities,
            (std::vector<PrincipalName>{"bob", "carol"}));
  EXPECT_EQ(first.via, std::vector<PrincipalName>{"intermediate"});
  EXPECT_TRUE(first.allowed);
  EXPECT_FALSE(loaded.value()[1].allowed);
  EXPECT_EQ(loaded.value()[1].detail, "denied");
}

TEST(AuditLog, SinkSurvivesReopenAndAppends) {
  TempDir dir;
  const std::string path = dir.sub("audit.wal");
  {
    AuditLog log;
    ASSERT_TRUE(log.open_sink(path).is_ok());
    log.append(record(true));
  }
  {
    // A "restarted" server appends to the same trail.
    AuditLog log;
    ASSERT_TRUE(log.open_sink(path).is_ok());
    log.append(record(false));
  }
  auto loaded = AuditLog::read_sink(path);
  ASSERT_TRUE(loaded.is_ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_TRUE(loaded.value()[0].allowed);
  EXPECT_FALSE(loaded.value()[1].allowed);
}

TEST(AuditLog, SinkTornTailIsDroppedOnRead) {
  TempDir dir;
  const std::string path = dir.sub("audit.wal");
  {
    AuditLog log;
    ASSERT_TRUE(log.open_sink(path).is_ok());
    log.append(record(true));
    log.append(record(false));
  }
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 4);
  auto loaded = AuditLog::read_sink(path);
  ASSERT_TRUE(loaded.is_ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_TRUE(loaded.value()[0].allowed);
}

TEST(AuditLog, SinkFailureNeverBlocksServing) {
  TempDir dir;
  const std::string path = dir.sub("audit.wal");
  AuditLog log;
  ASSERT_TRUE(log.open_sink(path).is_ok());
  // Nuke the directory out from under the sink; appends must still land
  // in memory and only bump the failure counter...
  log.append(record(true));
  std::filesystem::remove(path);
  std::filesystem::remove_all(dir.path());
  // ...though with the fd still open, plain appends keep succeeding; force
  // an oversized record to hit the error path deterministically.
  AuditRecord huge = record(true);
  huge.detail.assign(storage::kMaxJournalRecordBytes + 1, 'x');
  log.append(huge);
  EXPECT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.sink_failures(), 1u);
}

}  // namespace
}  // namespace rproxy::server
