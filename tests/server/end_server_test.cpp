// End-server framework tests: challenges, credential processing, ACL
// dispatch, identity access, group assertions, concurrence, audit.
#include "server/end_server.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class EndServerTest : public ::testing::Test {
 protected:
  EndServerTest() {
    world_.add_principal("alice");
    world_.add_principal("bob");
    world_.add_principal("file-server");
    server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    server_->put_file("/doc", "contents");
    world_.net.attach("file-server", *server_);
  }

  core::Proxy alice_capability() {
    return authz::make_capability_pk(
        "alice", world_.principal("alice").identity, "file-server",
        {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
        util::kHour);
  }

  World world_;
  std::unique_ptr<server::FileServer> server_;
};

TEST_F(EndServerTest, ChallengeIsSingleUse) {
  server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
  const core::Proxy cap = alice_capability();
  server::AppClient bob(world_.net, world_.clock, "bob");

  auto challenge = bob.get_challenge("file-server");
  ASSERT_TRUE(challenge.is_ok());

  const auto build = [&](server::AppRequestPayload& req) {
    req.operation = "read";
    req.object = "/doc";
    req.challenge_id = challenge.value().id;
    core::PresentedCredential cred;
    cred.chain = cap.chain;
    cred.proof =
        core::prove_bearer(cap, challenge.value().nonce, "file-server",
                           world_.clock.now(), req.digest());
    req.credentials.push_back(cred);
  };

  server::AppRequestPayload req;
  build(req);
  auto first = world_.net.rpc("bob", "file-server",
                              net::MsgType::kAppRequest,
                              wire::encode_to_bytes(req));
  ASSERT_TRUE(first.is_ok());
  EXPECT_TRUE(net::status_of(first.value()).is_ok());

  // Replaying the exact same request (same challenge) must fail.
  auto second = world_.net.rpc("bob", "file-server",
                               net::MsgType::kAppRequest,
                               wire::encode_to_bytes(req));
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(net::status_of(second.value()).code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(EndServerTest, ExpiredChallengeRejected) {
  server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
  const core::Proxy cap = alice_capability();
  server::AppClient bob(world_.net, world_.clock, "bob");
  auto challenge = bob.get_challenge("file-server");
  ASSERT_TRUE(challenge.is_ok());
  world_.clock.advance(util::kHour);

  server::AppRequestPayload req;
  req.operation = "read";
  req.object = "/doc";
  req.challenge_id = challenge.value().id;
  core::PresentedCredential cred;
  cred.chain = cap.chain;
  cred.proof = core::prove_bearer(cap, challenge.value().nonce,
                                  "file-server", world_.clock.now(),
                                  req.digest());
  req.credentials.push_back(cred);

  auto reply = world_.net.rpc("bob", "file-server",
                              net::MsgType::kAppRequest,
                              wire::encode_to_bytes(req));
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(net::status_of(reply.value()).code(), util::ErrorCode::kExpired);
}

TEST_F(EndServerTest, IdentityOnlyAccessForLocalUsers) {
  // §3.5: "local users might appear directly in the access-control-list".
  server_->acl().add(authz::AclEntry{{"bob"}, {"read"}, {"/doc"}, {}});
  server::AppClient bob(world_.net, world_.clock, "bob");
  const testing::Principal& bob_p = world_.principal("bob");

  auto result = bob.invoke(
      "file-server", "read", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        req.identity = core::prove_delegate_pk(bob_p.cert, bob_p.identity,
                                               challenge, "file-server",
                                               world_.clock.now(), rdigest);
      });
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(util::to_string(result.value()), "contents");
}

TEST_F(EndServerTest, NoCredentialsDenied) {
  server::AppClient bob(world_.net, world_.clock, "bob");
  auto result = bob.invoke("file-server", "read", "/doc", {}, {},
                           [](util::BytesView, util::BytesView,
                              server::AppRequestPayload&) {});
  EXPECT_EQ(result.code(), util::ErrorCode::kPermissionDenied);
}

TEST_F(EndServerTest, DelegateProxyRequiresNamedGrantee) {
  // alice grants a delegate proxy naming bob; carol cannot use it even
  // with the proxy key.
  world_.add_principal("carol");
  server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
  core::RestrictionSet set;
  set.add(core::GranteeRestriction{{"bob"}, 1});
  set.add(core::IssuedForRestriction{{"file-server"}});
  const core::Proxy proxy =
      core::grant_pk_proxy("alice", world_.principal("alice").identity, set,
                           world_.clock.now(), util::kHour);

  const auto present_as = [&](const PrincipalName& who) {
    const testing::Principal& p = world_.principal(who);
    server::AppClient client(world_.net, world_.clock, who);
    return client.invoke(
        "file-server", "read", "/doc", {}, {},
        [&](util::BytesView challenge, util::BytesView rdigest,
            server::AppRequestPayload& req) {
          core::PresentedCredential cred;
          cred.chain = proxy.chain;
          cred.proof = core::prove_delegate_pk(p.cert, p.identity, challenge,
                                               "file-server",
                                               world_.clock.now(), rdigest);
          req.credentials.push_back(cred);
        });
  };

  EXPECT_TRUE(present_as("bob").is_ok());
  EXPECT_EQ(present_as("carol").code(), util::ErrorCode::kNotGrantee);
}

TEST_F(EndServerTest, ConcurrenceViaTwoProxies) {
  // §3.5: compound entry requires proxies from two grantors.
  world_.add_principal("carol");
  server_->acl().add(
      authz::AclEntry{{"alice", "carol"}, {"read"}, {"/doc"}, {}});

  const core::Proxy from_alice = alice_capability();
  const core::Proxy from_carol = authz::make_capability_pk(
      "carol", world_.principal("carol").identity, "file-server",
      {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
      util::kHour);

  server::AppClient bob(world_.net, world_.clock, "bob");
  const auto with = [&](std::vector<const core::Proxy*> proxies) {
    return bob.invoke(
        "file-server", "read", "/doc", {}, {},
        [&](util::BytesView challenge, util::BytesView rdigest,
            server::AppRequestPayload& req) {
          for (const core::Proxy* p : proxies) {
            core::PresentedCredential cred;
            cred.chain = p->chain;
            cred.proof = core::prove_bearer(*p, challenge, "file-server",
                                            world_.clock.now(), rdigest);
            req.credentials.push_back(cred);
          }
        });
  };

  EXPECT_EQ(with({&from_alice}).code(), util::ErrorCode::kPermissionDenied);
  EXPECT_TRUE(with({&from_alice, &from_carol}).is_ok());
}

TEST_F(EndServerTest, AclEntryRestrictionsEnforcedLocally) {
  // §3.5: entries carry restrictions enforced on use.
  core::RestrictionSet entry_rs;
  entry_rs.add(core::QuotaRestriction{"pages", 2});
  server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, entry_rs});
  const core::Proxy cap = authz::make_capability_pk(
      "alice", world_.principal("alice").identity, "file-server",
      {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
      util::kHour);
  server::AppClient bob(world_.net, world_.clock, "bob");
  EXPECT_TRUE(bob.invoke_with_proxy("file-server", cap, "read", "/doc",
                                    {{"pages", 2}})
                  .is_ok());
  EXPECT_EQ(bob.invoke_with_proxy("file-server", cap, "read", "/doc",
                                  {{"pages", 3}})
                .code(),
            util::ErrorCode::kRestrictionViolated);
}

TEST_F(EndServerTest, AuditLogRecordsOutcomes) {
  server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
  const core::Proxy cap = alice_capability();
  server::AppClient bob(world_.net, world_.clock, "bob");
  ASSERT_TRUE(
      bob.invoke_with_proxy("file-server", cap, "read", "/doc").is_ok());
  ASSERT_FALSE(
      bob.invoke_with_proxy("file-server", cap, "read", "/secret").is_ok());

  EXPECT_EQ(server_->audit().allowed_count(), 1u);
  EXPECT_EQ(server_->audit().denied_count(), 1u);
  const server::AuditRecord& ok = server_->audit().records()[0];
  EXPECT_EQ(ok.operation, "read");
  EXPECT_EQ(ok.object, "/doc");
  EXPECT_EQ(ok.authority, "alice");
  EXPECT_TRUE(ok.allowed);
}

TEST_F(EndServerTest, MalformedRequestRejected) {
  auto reply = world_.net.rpc("bob", "file-server",
                              net::MsgType::kAppRequest,
                              util::Bytes{1, 2, 3});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(net::status_of(reply.value()).code(),
            util::ErrorCode::kParseError);
}

TEST_F(EndServerTest, UnknownMessageTypeRejected) {
  auto reply = world_.net.rpc("bob", "file-server",
                              net::MsgType::kAsRequest, {});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(net::status_of(reply.value()).code(),
            util::ErrorCode::kProtocolError);
}

}  // namespace
}  // namespace rproxy
