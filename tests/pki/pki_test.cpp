#include <gtest/gtest.h>

#include "crypto/random.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class PkiTest : public ::testing::Test {
 protected:
  PkiTest() { world_.add_principal("alice"); }
  World world_;
};

TEST_F(PkiTest, IdentityCertVerifies) {
  const testing::Principal& alice = world_.principal("alice");
  EXPECT_TRUE(pki::verify_identity_cert(alice.cert,
                                        world_.name_server.root_key(),
                                        world_.clock.now())
                  .is_ok());
}

TEST_F(PkiTest, CertRejectsWrongRoot) {
  const testing::Principal& alice = world_.principal("alice");
  EXPECT_EQ(
      pki::verify_identity_cert(alice.cert,
                                crypto::SigningKeyPair::generate()
                                    .public_key(),
                                world_.clock.now())
          .code(),
      util::ErrorCode::kBadSignature);
}

TEST_F(PkiTest, CertExpires) {
  const testing::Principal& alice = world_.principal("alice");
  world_.clock.advance(9 * util::kHour);
  EXPECT_EQ(pki::verify_identity_cert(alice.cert,
                                      world_.name_server.root_key(),
                                      world_.clock.now())
                .code(),
            util::ErrorCode::kExpired);
}

TEST_F(PkiTest, CertTamperedSubjectRejected) {
  pki::IdentityCert cert = world_.principal("alice").cert;
  cert.subject = "mallory";
  EXPECT_EQ(pki::verify_identity_cert(cert, world_.name_server.root_key(),
                                      world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(PkiTest, NetworkLookupReturnsVerifiedCert) {
  auto cert = world_.lookup("bob", "alice");
  ASSERT_TRUE(cert.is_ok()) << cert.status();
  EXPECT_EQ(cert.value().subject, "alice");
  EXPECT_TRUE(cert.value().public_key ==
              world_.principal("alice").identity.public_key());
}

TEST_F(PkiTest, LookupUnknownSubjectFails) {
  EXPECT_EQ(world_.lookup("bob", "ghost").code(),
            util::ErrorCode::kNotFound);
}

TEST_F(PkiTest, RemovedKeyNoLongerServed) {
  world_.name_server.remove("alice");
  EXPECT_EQ(world_.lookup("bob", "alice").code(),
            util::ErrorCode::kNotFound);
}

TEST_F(PkiTest, CertCodecRoundTrip) {
  const pki::IdentityCert cert = world_.principal("alice").cert;
  auto decoded =
      wire::decode_from_bytes<pki::IdentityCert>(wire::encode_to_bytes(cert));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().subject, cert.subject);
  EXPECT_TRUE(decoded.value().public_key == cert.public_key);
  EXPECT_EQ(decoded.value().signature, cert.signature);
}

class PkAuthTest : public PkiTest {
 protected:
  util::Bytes challenge_ = crypto::random_bytes(32);
};

TEST_F(PkAuthTest, ProofVerifies) {
  const testing::Principal& alice = world_.principal("alice");
  const pki::PkAuthProof proof =
      pki::pk_authenticate(alice.cert, alice.identity, challenge_,
                           "file-server", world_.clock.now());
  auto who = pki::verify_pk_auth(proof, world_.name_server.root_key(),
                                 challenge_, "file-server",
                                 world_.clock.now());
  ASSERT_TRUE(who.is_ok());
  EXPECT_EQ(who.value(), "alice");
}

TEST_F(PkAuthTest, ProofBoundToChallenge) {
  const testing::Principal& alice = world_.principal("alice");
  const pki::PkAuthProof proof =
      pki::pk_authenticate(alice.cert, alice.identity, challenge_,
                           "file-server", world_.clock.now());
  const util::Bytes other = crypto::random_bytes(32);
  EXPECT_EQ(pki::verify_pk_auth(proof, world_.name_server.root_key(), other,
                                "file-server", world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(PkAuthTest, ProofBoundToServer) {
  const testing::Principal& alice = world_.principal("alice");
  const pki::PkAuthProof proof =
      pki::pk_authenticate(alice.cert, alice.identity, challenge_,
                           "file-server", world_.clock.now());
  EXPECT_EQ(pki::verify_pk_auth(proof, world_.name_server.root_key(),
                                challenge_, "other-server",
                                world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(PkAuthTest, StaleProofRejected) {
  const testing::Principal& alice = world_.principal("alice");
  const pki::PkAuthProof proof =
      pki::pk_authenticate(alice.cert, alice.identity, challenge_,
                           "file-server", world_.clock.now());
  world_.clock.advance(10 * util::kMinute);
  EXPECT_EQ(pki::verify_pk_auth(proof, world_.name_server.root_key(),
                                challenge_, "file-server",
                                world_.clock.now())
                .code(),
            util::ErrorCode::kExpired);
}

TEST_F(PkAuthTest, ForeignKeyCannotImpersonate) {
  // Mallory signs with her own key but presents alice's certificate.
  const testing::Principal& alice = world_.principal("alice");
  const crypto::SigningKeyPair mallory = crypto::SigningKeyPair::generate();
  const pki::PkAuthProof proof = pki::pk_authenticate(
      alice.cert, mallory, challenge_, "file-server", world_.clock.now());
  EXPECT_EQ(pki::verify_pk_auth(proof, world_.name_server.root_key(),
                                challenge_, "file-server",
                                world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

}  // namespace
}  // namespace rproxy
