// Revocation semantics (§3.1): proxy capabilities are revoked by changing
// the grantor's rights, which kills ALL capabilities (and copies, and
// cascaded derivations) issued by that grantor — but not those issued by
// other grantors.
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class RevocationTest : public ::testing::Test {
 protected:
  RevocationTest() {
    world_.add_principal("alice");
    world_.add_principal("carol");
    world_.add_principal("file-server");
    server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    server_->put_file("/doc", "contents");
    server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    server_->acl().add(authz::AclEntry{{"carol"}, {}, {}, {}});
    world_.net.attach("file-server", *server_);
  }

  core::Proxy capability_from(const PrincipalName& grantor) {
    return authz::make_capability_pk(
        grantor, world_.principal(grantor).identity, "file-server",
        {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
        util::kHour);
  }

  World world_;
  std::unique_ptr<server::FileServer> server_;
};

TEST_F(RevocationTest, RevokingGrantorKillsAllItsCapabilities) {
  const core::Proxy cap1 = capability_from("alice");
  const core::Proxy cap2 = capability_from("alice");
  const core::Proxy copy_of_cap1 = cap1;

  server::AppClient bob(world_.net, world_.clock, "bob");
  ASSERT_TRUE(
      bob.invoke_with_proxy("file-server", cap1, "read", "/doc").is_ok());

  server_->acl().remove_principal("alice");

  for (const core::Proxy* cap : {&cap1, &cap2, &copy_of_cap1}) {
    EXPECT_EQ(
        bob.invoke_with_proxy("file-server", *cap, "read", "/doc").code(),
        util::ErrorCode::kPermissionDenied);
  }
}

TEST_F(RevocationTest, OtherGrantorsUnaffected) {
  // "...but not those that had been issued by others."
  const core::Proxy from_alice = capability_from("alice");
  const core::Proxy from_carol = capability_from("carol");
  server_->acl().remove_principal("alice");

  server::AppClient bob(world_.net, world_.clock, "bob");
  EXPECT_FALSE(
      bob.invoke_with_proxy("file-server", from_alice, "read", "/doc")
          .is_ok());
  EXPECT_TRUE(
      bob.invoke_with_proxy("file-server", from_carol, "read", "/doc")
          .is_ok());
}

TEST_F(RevocationTest, CascadedDerivationsAlsoRevoked) {
  const core::Proxy cap = capability_from("alice");
  auto derived =
      core::extend_bearer(cap, {}, world_.clock.now(), util::kHour);
  ASSERT_TRUE(derived.is_ok());

  server_->acl().remove_principal("alice");
  server::AppClient bob(world_.net, world_.clock, "bob");
  EXPECT_EQ(bob.invoke_with_proxy("file-server", derived.value(), "read",
                                  "/doc")
                .code(),
            util::ErrorCode::kPermissionDenied);
}

TEST_F(RevocationTest, ReinstatementRestoresCapabilities) {
  // The flip side of ACL-based revocation: restoring the grantor's entry
  // resurrects still-unexpired capabilities.
  const core::Proxy cap = capability_from("alice");
  server_->acl().remove_principal("alice");
  server::AppClient bob(world_.net, world_.clock, "bob");
  ASSERT_FALSE(
      bob.invoke_with_proxy("file-server", cap, "read", "/doc").is_ok());

  server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
  EXPECT_TRUE(
      bob.invoke_with_proxy("file-server", cap, "read", "/doc").is_ok());
}

TEST_F(RevocationTest, KrbRealizationRevokesTheSameWay) {
  kdc::KdcClient alice = world_.kdc_client("alice");
  auto tgt = alice.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = alice.get_ticket(tgt.value(), "file-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());
  const core::Proxy cap = authz::make_capability_krb(
      alice, creds.value(), {core::ObjectRights{"/doc", {"read"}}},
      world_.clock.now());

  server::AppClient bob(world_.net, world_.clock, "bob");
  ASSERT_TRUE(
      bob.invoke_with_proxy("file-server", cap, "read", "/doc").is_ok());
  server_->acl().remove_principal("alice");
  EXPECT_EQ(bob.invoke_with_proxy("file-server", cap, "read", "/doc").code(),
            util::ErrorCode::kPermissionDenied);
}

}  // namespace
}  // namespace rproxy
