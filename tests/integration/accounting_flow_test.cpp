// End-to-end accounting flows (§4): a client pays an application server by
// check for a quota-governed service; certified-check flow with the
// end-server verifying the certification before serving.
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using accounting::Check;
using testing::World;

class AccountingFlowTest : public ::testing::Test {
 protected:
  AccountingFlowTest() {
    world_.add_principal("client");
    world_.add_principal("print-server");
    world_.add_principal("bank1");  // print server's bank
    world_.add_principal("bank2");  // client's bank

    bank1_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank1"));
    bank2_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank2"));
    world_.net.attach("bank1", *bank1_);
    world_.net.attach("bank2", *bank2_);
    bank2_->open_account("client-account", "client",
                         accounting::Balances{{"usd", 100}});
    bank1_->open_account("print-revenue", "print-server");

    print_server_ = std::make_unique<server::PrintServer>(
        world_.end_server_config("print-server"));
    print_server_->acl().add(authz::AclEntry{{"client"}, {}, {}, {}});
    world_.net.attach("print-server", *print_server_);
  }

  World world_;
  std::unique_ptr<accounting::AccountingServer> bank1_;
  std::unique_ptr<accounting::AccountingServer> bank2_;
  std::unique_ptr<server::PrintServer> print_server_;
};

TEST_F(AccountingFlowTest, PayByCheckForService) {
  // 1. The client prints (authorized via its own identity on the ACL).
  const testing::Principal& client_p = world_.principal("client");
  server::AppClient app(world_.net, world_.clock, "client");
  auto printed = app.invoke(
      "print-server", "print", "jobs",
      {{std::string(server::kPagesCurrency), 3}},
      util::to_bytes(std::string_view("pages")),
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        req.identity = core::prove_delegate_pk(
            client_p.cert, client_p.identity, challenge, "print-server",
            world_.clock.now(), rdigest);
      });
  ASSERT_TRUE(printed.is_ok()) << printed.status();

  // 2. The client writes a check to the print server (Fig 5 message 1).
  const Check check = accounting::write_check(
      "client", client_p.identity, AccountId{"bank2", "client-account"},
      "print-server", "usd", 30, 555, world_.clock.now(), util::kHour);

  // 3. The print server endorses and deposits it (E1); bank1 collects from
  //    bank2 (E2).
  auto payee = world_.accounting_client("print-server");
  auto cleared = payee.endorse_and_deposit("bank1", check, "print-revenue");
  ASSERT_TRUE(cleared.is_ok()) << cleared.status();
  EXPECT_TRUE(cleared.value().cleared);

  EXPECT_EQ(bank2_->account("client-account")->balances().balance("usd"),
            70);
  EXPECT_EQ(bank1_->account("print-revenue")->balances().balance("usd"),
            30);
}

TEST_F(AccountingFlowTest, CertifiedCheckFlow) {
  // §4's second mechanism end to end: certify -> verify certification at
  // the end-server -> serve -> clear from the hold.
  const testing::Principal& client_p = world_.principal("client");

  // 1. The client certifies the check with its own accounting server.
  auto client_acct = world_.accounting_client("client");
  const std::uint64_t ckno = 777;
  auto certification =
      client_acct.certify("bank2", "client-account", "print-server", "usd",
                          40, ckno, "print-server");
  ASSERT_TRUE(certification.is_ok()) << certification.status();

  // 2. The client writes the matching check.
  const Check check = accounting::write_check(
      "client", client_p.identity, AccountId{"bank2", "client-account"},
      "print-server", "usd", 40, ckno, world_.clock.now(), util::kHour);

  // 3. The end-server verifies the certification before serving (a
  //    guarantee that sufficient resources are allocated).
  EXPECT_TRUE(accounting::verify_certification(
                  print_server_->verifier(),
                  certification.value().certification, check, "bank2",
                  "client", world_.clock.now())
                  .is_ok());

  // 4. Service happens (elided), then the check clears from the hold.
  auto payee = world_.accounting_client("print-server");
  auto cleared = payee.endorse_and_deposit("bank1", check, "print-revenue");
  ASSERT_TRUE(cleared.is_ok()) << cleared.status();
  EXPECT_EQ(bank2_->account("client-account")->balances().balance("usd"),
            60);
  EXPECT_EQ(bank2_->account("client-account")->held("usd"), 0);
}

TEST_F(AccountingFlowTest, UncertifiedCheckFailsCertificationCheck) {
  const testing::Principal& client_p = world_.principal("client");
  const Check check = accounting::write_check(
      "client", client_p.identity, AccountId{"bank2", "client-account"},
      "print-server", "usd", 40, 888, world_.clock.now(), util::kHour);

  // A certification for a DIFFERENT check number does not cover it.
  auto client_acct = world_.accounting_client("client");
  auto other = client_acct.certify("bank2", "client-account",
                                   "print-server", "usd", 40, 999,
                                   "print-server");
  ASSERT_TRUE(other.is_ok());
  EXPECT_FALSE(accounting::verify_certification(
                   print_server_->verifier(), other.value().certification,
                   check, "bank2", "client", world_.clock.now())
                   .is_ok());
}

TEST_F(AccountingFlowTest, QuotaViaFundsTransfer) {
  // §4: "Quotas are implemented by transferring funds of the appropriate
  // currency out of an account when the resource is allocated and
  // transferring the funds back when the resource is released."
  bank2_->open_account("disk-quota-pool", "file-service");
  bank2_->account("client-account")->credit("disk-blocks", 100);

  auto client_acct = world_.accounting_client("client");
  // Allocate 40 blocks.
  ASSERT_TRUE(client_acct
                  .transfer("bank2", "client-account", "disk-quota-pool",
                            "disk-blocks", 40)
                  .is_ok());
  EXPECT_EQ(
      bank2_->account("client-account")->balances().balance("disk-blocks"),
      60);
  // Allocation beyond the remaining quota fails.
  EXPECT_EQ(client_acct
                .transfer("bank2", "client-account", "disk-quota-pool",
                          "disk-blocks", 61)
                .code(),
            util::ErrorCode::kInsufficientFunds);
}

TEST_F(AccountingFlowTest, ConservationAcrossClearing) {
  // Total value across all accounts on both banks is unchanged by a
  // cross-server clearing.
  const auto total = [&] {
    std::int64_t sum = 0;
    for (const auto* bank : {bank1_.get(), bank2_.get()}) {
      for (const std::string account :
           {"client-account", "print-revenue", "peer:bank1"}) {
        if (const accounting::Account* a =
                const_cast<accounting::AccountingServer*>(bank)->account(
                    account)) {
          sum += a->balances().balance("usd");
        }
      }
    }
    return sum;
  };

  const std::int64_t before = total();
  const Check check = accounting::write_check(
      "client", world_.principal("client").identity,
      AccountId{"bank2", "client-account"}, "print-server", "usd", 25, 321,
      world_.clock.now(), util::kHour);
  auto payee = world_.accounting_client("print-server");
  ASSERT_TRUE(
      payee.endorse_and_deposit("bank1", check, "print-revenue").is_ok());
  // The drawee moved 25 from client-account to peer:bank1, and bank1
  // credited print-revenue with 25 backed by that settlement balance; the
  // global invariant we check is that client's loss equals the sum of
  // gains recorded at the two banks minus the settlement double-entry.
  EXPECT_EQ(total(), before + 25);  // +25 at bank1 backed by peer:bank1
  EXPECT_EQ(bank2_->account("peer:bank1")->balances().balance("usd"), 25);
}

}  // namespace
}  // namespace rproxy
