// Randomized whole-system soak: a mixed stream of grants, presentations,
// revocations, group operations and payments against every service at
// once, with global invariants re-checked after every step.  Think of it
// as a lightweight model checker for the deployment.
#include <gtest/gtest.h>

#include "crypto/random.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using crypto::DeterministicRng;
using testing::World;

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  SoakTest() {
    for (const char* name :
         {"alice", "bob", "carol", "group-server", "file-server", "bank"}) {
      world_.add_principal(name);
    }
    file_server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    file_server_->put_file("/doc", "contents");
    file_server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    world_.net.attach("file-server", *file_server_);

    authz::GroupServer::Config gc;
    gc.name = "group-server";
    gc.own_key = world_.principal("group-server").krb_key;
    gc.net = &world_.net;
    gc.clock = &world_.clock;
    gc.kdc = World::kKdcName;
    group_server_ = std::make_unique<authz::GroupServer>(gc);
    group_server_->add_member("staff", "bob");
    world_.net.attach("group-server", *group_server_);

    bank_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank"));
    world_.net.attach("bank", *bank_);
    bank_->open_account("alice-acct", "alice",
                        accounting::Balances{{"usd", 10'000}});
    bank_->open_account("bob-acct", "bob",
                        accounting::Balances{{"usd", 10'000}});
  }

  /// The global invariants that must hold after EVERY operation.
  void check_invariants() {
    // Conservation: no usd created or destroyed.
    std::int64_t total = 0;
    for (const char* account : {"alice-acct", "bob-acct"}) {
      const accounting::Account* a = bank_->account(account);
      ASSERT_NE(a, nullptr);
      ASSERT_GE(a->balances().balance("usd"), 0);
      ASSERT_GE(a->available("usd"), 0);
      total += a->balances().balance("usd");
    }
    ASSERT_EQ(total, 20'000);
    // Audit log is consistent.
    ASSERT_EQ(file_server_->audit().allowed_count() +
                  file_server_->audit().denied_count(),
              file_server_->audit().records().size());
    // No residual uncollected value.
    ASSERT_EQ(bank_->uncollected_total(), 0);
  }

  World world_;
  std::unique_ptr<server::FileServer> file_server_;
  std::unique_ptr<authz::GroupServer> group_server_;
  std::unique_ptr<accounting::AccountingServer> bank_;
};

TEST_P(SoakTest, MixedOperationsPreserveInvariants) {
  DeterministicRng rng(GetParam());
  std::vector<core::Proxy> live_capabilities;
  std::uint64_t next_ckno = 1;
  bool alice_revoked = false;

  for (int step = 0; step < 120; ++step) {
    switch (rng.next_below(8)) {
      case 0: {  // alice grants a capability
        live_capabilities.push_back(authz::make_capability_pk(
            "alice", world_.principal("alice").identity, "file-server",
            {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
            util::kHour));
        break;
      }
      case 1: {  // someone presents a random live capability
        if (live_capabilities.empty()) break;
        const core::Proxy& cap =
            live_capabilities[rng.next_below(live_capabilities.size())];
        server::AppClient client(world_.net, world_.clock, "bob");
        auto result =
            client.invoke_with_proxy("file-server", cap, "read", "/doc");
        // Allowed iff alice not revoked and the capability is unexpired.
        const bool expect_ok =
            !alice_revoked && cap.expires_at >= world_.clock.now();
        EXPECT_EQ(result.is_ok(), expect_ok)
            << "step " << step << ": " << result.status();
        break;
      }
      case 2: {  // revoke or reinstate alice
        if (alice_revoked) {
          file_server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
        } else {
          file_server_->acl().remove_principal("alice");
        }
        alice_revoked = !alice_revoked;
        break;
      }
      case 3: {  // alice pays bob by check (same bank, always clears)
        const std::uint64_t amount = 1 + rng.next_below(100);
        const accounting::Check check = accounting::write_check(
            "alice", world_.principal("alice").identity,
            AccountId{"bank", "alice-acct"}, "bob", "usd", amount,
            next_ckno++, world_.clock.now(), util::kHour);
        auto bob_acct = world_.accounting_client("bob");
        const std::int64_t before =
            bank_->account("alice-acct")->available("usd");
        auto cleared =
            bob_acct.endorse_and_deposit("bank", check, "bob-acct");
        EXPECT_EQ(cleared.is_ok(),
                  before >= static_cast<std::int64_t>(amount));
        break;
      }
      case 4: {  // duplicate deposit attempt of an OLD check number
        if (next_ckno <= 1) break;
        const accounting::Check dup = accounting::write_check(
            "alice", world_.principal("alice").identity,
            AccountId{"bank", "alice-acct"}, "bob", "usd", 1,
            rng.next_below(next_ckno - 1) + 1, world_.clock.now(),
            util::kHour);
        auto bob_acct = world_.accounting_client("bob");
        // May or may not have been spent; either way invariants hold.
        (void)bob_acct.endorse_and_deposit("bank", dup, "bob-acct");
        break;
      }
      case 5: {  // bob proves staff membership and reads via group entry
        file_server_->acl().add(authz::AclEntry{
            {authz::acl_group_token(GroupName{"group-server", "staff"})},
            {"read"},
            {"/doc"},
            {}});
        kdc::KdcClient bob = world_.kdc_client("bob");
        auto tgt = bob.authenticate(util::kHour);
        ASSERT_TRUE(tgt.is_ok());
        auto gcreds =
            bob.get_ticket(tgt.value(), "group-server", util::kHour);
        auto fcreds =
            bob.get_ticket(tgt.value(), "file-server", util::kHour);
        ASSERT_TRUE(gcreds.is_ok());
        ASSERT_TRUE(fcreds.is_ok());
        authz::GroupClient gc(world_.net, world_.clock, bob);
        auto membership = gc.request_membership(
            gcreds.value(), "group-server", "staff", "file-server",
            30 * util::kMinute);
        ASSERT_TRUE(membership.is_ok()) << membership.status();
        server::AppClient app(world_.net, world_.clock, "bob");
        auto result = app.invoke(
            "file-server", "read", "/doc", {}, {},
            [&](util::BytesView challenge, util::BytesView rdigest,
                server::AppRequestPayload& req) {
              core::PresentedCredential cred;
              cred.chain = membership.value().chain;
              cred.proof = core::prove_delegate_krb(
                  bob, fcreds.value(), challenge, "file-server",
                  world_.clock.now(), rdigest);
              req.group_credentials.push_back(cred);
            });
        EXPECT_TRUE(result.is_ok()) << result.status();
        break;
      }
      case 6: {  // time passes (expires old capabilities and holds)
        world_.clock.advance(
            static_cast<util::Duration>(rng.next_below(20)) * util::kMinute);
        break;
      }
      default: {  // carol tries to steal a random capability's chain
        if (live_capabilities.empty()) break;
        const core::Proxy& cap =
            live_capabilities[rng.next_below(live_capabilities.size())];
        core::Proxy forged = cap;
        forged.secret = crypto::SigningKeyPair::generate().private_bytes();
        server::AppClient carol(world_.net, world_.clock, "carol");
        EXPECT_FALSE(
            carol.invoke_with_proxy("file-server", forged, "read", "/doc")
                .is_ok());
        break;
      }
    }
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace rproxy
