// Attack suite: the adversary taps, replays, and tampers; the proxy model
// must hold where the paper claims it does (§2, §3.1, §6.2, §7.7).
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class AttackTest : public ::testing::Test {
 protected:
  AttackTest() {
    world_.add_principal("alice");
    world_.add_principal("bob");
    world_.add_principal("file-server");
    file_server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    file_server_->put_file("/doc", "contents");
    file_server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    world_.net.attach("file-server", *file_server_);
  }

  core::Proxy read_capability() {
    return authz::make_capability_pk(
        "alice", world_.principal("alice").identity, "file-server",
        {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
        util::kHour);
  }

  World world_;
  std::unique_ptr<server::FileServer> file_server_;
};

TEST_F(AttackTest, EavesdropperCannotUseObservedPresentation) {
  // §3.1: "an attacker can not obtain such a capability by tapping the
  // network to observe the presentation of capabilities by legitimate
  // users."  The wiretap sees the certificate but never the proxy key.
  net::RecordingTap tap;
  world_.net.add_tap(tap);

  const core::Proxy cap = read_capability();
  server::AppClient bob(world_.net, world_.clock, "bob");
  ASSERT_TRUE(
      bob.invoke_with_proxy("file-server", cap, "read", "/doc").is_ok());

  // Mallory extracts the chain from the observed request and tries to use
  // it with a fresh challenge.
  const auto captured = tap.of_type(net::MsgType::kAppRequest);
  ASSERT_EQ(captured.size(), 1u);
  auto observed = wire::decode_from_bytes<server::AppRequestPayload>(
      captured.front().payload);
  ASSERT_TRUE(observed.is_ok());
  const core::ProxyChain stolen_chain =
      observed.value().credentials[0].chain;

  server::AppClient mallory(world_.net, world_.clock, "mallory");
  auto theft = mallory.invoke(
      "file-server", "read", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = stolen_chain;
        // Mallory has no proxy key; best effort is signing with her own.
        core::Proxy fake;
        fake.chain = stolen_chain;
        fake.secret = crypto::SigningKeyPair::generate().private_bytes();
        cred.proof = core::prove_bearer(fake, challenge, "file-server",
                                        world_.clock.now(), rdigest);
        req.credentials.push_back(cred);
      });
  EXPECT_EQ(theft.code(), util::ErrorCode::kBadSignature);
}

TEST_F(AttackTest, ReplayedPresentationRejected) {
  // Replaying the entire observed request fails: the challenge was
  // consumed by the legitimate use.
  net::RecordingTap tap;
  world_.net.add_tap(tap);
  const core::Proxy cap = read_capability();
  server::AppClient bob(world_.net, world_.clock, "bob");
  ASSERT_TRUE(
      bob.invoke_with_proxy("file-server", cap, "read", "/doc").is_ok());

  const auto captured = tap.of_type(net::MsgType::kAppRequest);
  ASSERT_EQ(captured.size(), 1u);
  auto replayed = world_.net.inject(captured.front());
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(net::status_of(replayed.value()).code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(AttackTest, InFlightRestrictionStrippingDetected) {
  // A man-in-the-middle rewrites the presented chain to drop the
  // operations restriction; the signature no longer covers the content.
  const core::Proxy cap = read_capability();

  net::TamperTap tamper([](const net::Envelope& e)
                            -> std::optional<net::Envelope> {
    if (e.type != net::MsgType::kAppRequest) return std::nullopt;
    auto payload =
        wire::decode_from_bytes<server::AppRequestPayload>(e.payload);
    if (!payload.is_ok() || payload.value().credentials.empty()) {
      return std::nullopt;
    }
    server::AppRequestPayload changed = payload.value();
    changed.credentials[0].chain.certs[0].restrictions =
        core::RestrictionSet{};
    net::Envelope out = e;
    out.payload = wire::encode_to_bytes(changed);
    return out;
  });
  world_.net.add_tap(tamper);

  server::AppClient bob(world_.net, world_.clock, "bob");
  EXPECT_EQ(bob.invoke_with_proxy("file-server", cap, "read", "/doc").code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(AttackTest, GranteeCannotRemoveRestrictionsWhenCascading) {
  // §2: "it is not possible to remove restrictions."  A grantee extending
  // a chain chooses the NEW link's restrictions, but the parent link's
  // restrictions still bind because the whole chain is verified.
  const core::Proxy cap = read_capability();  // read /doc only
  auto widened = core::extend_bearer(cap, core::RestrictionSet{},
                                     world_.clock.now(), util::kHour);
  ASSERT_TRUE(widened.is_ok());

  server::AppClient bob(world_.net, world_.clock, "bob");
  // Still cannot write: the root's authorized(read /doc) applies.
  EXPECT_EQ(bob.invoke_with_proxy("file-server", widened.value(), "write",
                                  "/doc", {},
                                  util::to_bytes(std::string_view("x")))
                .code(),
            util::ErrorCode::kRestrictionViolated);
  // Read still works.
  EXPECT_TRUE(bob.invoke_with_proxy("file-server", widened.value(), "read",
                                    "/doc")
                  .is_ok());
}

TEST_F(AttackTest, ProofForOneOperationCannotAuthorizeAnother) {
  // Capture a read request in flight and rewrite it into a delete request;
  // the proof binds the request digest, so the rewrite must fail.
  core::Proxy cap = authz::make_capability_pk(
      "alice", world_.principal("alice").identity, "file-server",
      {core::ObjectRights{"/doc", {"read", "delete"}}}, world_.clock.now(),
      util::kHour);

  net::TamperTap tamper([](const net::Envelope& e)
                            -> std::optional<net::Envelope> {
    if (e.type != net::MsgType::kAppRequest) return std::nullopt;
    auto payload =
        wire::decode_from_bytes<server::AppRequestPayload>(e.payload);
    if (!payload.is_ok()) return std::nullopt;
    server::AppRequestPayload changed = payload.value();
    changed.operation = "delete";
    net::Envelope out = e;
    out.payload = wire::encode_to_bytes(changed);
    return out;
  });
  world_.net.add_tap(tamper);

  server::AppClient bob(world_.net, world_.clock, "bob");
  EXPECT_EQ(bob.invoke_with_proxy("file-server", cap, "read", "/doc").code(),
            util::ErrorCode::kBadSignature);
  EXPECT_TRUE(file_server_->has_file("/doc"));  // nothing was deleted
}

TEST_F(AttackTest, StolenDelegateProxyUselessWithoutIdentity) {
  // A delegate proxy names bob; mallory holding the chain AND the proxy
  // key still fails (she cannot authenticate as bob).
  core::RestrictionSet set;
  set.add(core::GranteeRestriction{{"bob"}, 1});
  set.add(core::IssuedForRestriction{{"file-server"}});
  const core::Proxy proxy =
      core::grant_pk_proxy("alice", world_.principal("alice").identity, set,
                           world_.clock.now(), util::kHour);

  world_.add_principal("mallory");
  const testing::Principal& mallory_p = world_.principal("mallory");
  server::AppClient mallory(world_.net, world_.clock, "mallory");
  auto theft = mallory.invoke(
      "file-server", "read", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = proxy.chain;
        cred.proof = core::prove_delegate_pk(
            mallory_p.cert, mallory_p.identity, challenge, "file-server",
            world_.clock.now(), rdigest);
        req.credentials.push_back(cred);
      });
  EXPECT_EQ(theft.code(), util::ErrorCode::kNotGrantee);
}

TEST_F(AttackTest, AcceptOnceBlocksDoubleUse) {
  // §7.7 at the end-server: a proxy marked accept-once works exactly once.
  core::RestrictionSet set;
  set.add(core::AuthorizedRestriction{
      {core::ObjectRights{"/doc", {"read"}}}});
  set.add(core::IssuedForRestriction{{"file-server"}});
  set.add(core::AcceptOnceRestriction{4242});
  const core::Proxy proxy =
      core::grant_pk_proxy("alice", world_.principal("alice").identity, set,
                           world_.clock.now(), util::kHour);

  server::AppClient bob(world_.net, world_.clock, "bob");
  EXPECT_TRUE(
      bob.invoke_with_proxy("file-server", proxy, "read", "/doc").is_ok());
  EXPECT_EQ(
      bob.invoke_with_proxy("file-server", proxy, "read", "/doc").code(),
      util::ErrorCode::kReplay);
}

TEST_F(AttackTest, StolenBearerChainWithOwnIdentityRejected) {
  // Subtle variant of the eavesdrop attack: instead of forging a bearer
  // proof (which fails on the key), Mallory presents the observed BEARER
  // chain with a perfectly valid personal authentication of HERSELF.  The
  // chain has no grantee restriction to stop her — the server must insist
  // on a proxy-key proof for bearer chains.
  world_.add_principal("mallory");
  const core::Proxy cap = read_capability();
  const testing::Principal& mallory_p = world_.principal("mallory");

  server::AppClient mallory(world_.net, world_.clock, "mallory");
  auto theft = mallory.invoke(
      "file-server", "read", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = cap.chain;  // observed on the wire
        cred.proof = core::prove_delegate_pk(
            mallory_p.cert, mallory_p.identity, challenge, "file-server",
            world_.clock.now(), rdigest);
        req.credentials.push_back(cred);
      });
  EXPECT_EQ(theft.code(), util::ErrorCode::kProtocolError);
}

TEST_F(AttackTest, KrbProxyEavesdropAlsoDefeated) {
  // Same eavesdrop attack against the conventional realization.
  kdc::KdcClient alice = world_.kdc_client("alice");
  auto tgt = alice.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = alice.get_ticket(tgt.value(), "file-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());
  const core::Proxy cap = authz::make_capability_krb(
      alice, creds.value(), {core::ObjectRights{"/doc", {"read"}}},
      world_.clock.now());

  net::RecordingTap tap;
  world_.net.add_tap(tap);
  server::AppClient bob(world_.net, world_.clock, "bob");
  ASSERT_TRUE(
      bob.invoke_with_proxy("file-server", cap, "read", "/doc").is_ok());

  const auto captured = tap.of_type(net::MsgType::kAppRequest);
  ASSERT_EQ(captured.size(), 1u);
  auto observed = wire::decode_from_bytes<server::AppRequestPayload>(
      captured.front().payload);
  ASSERT_TRUE(observed.is_ok());

  server::AppClient mallory(world_.net, world_.clock, "mallory");
  auto theft = mallory.invoke(
      "file-server", "read", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = observed.value().credentials[0].chain;
        core::Proxy fake;
        fake.chain = cred.chain;
        fake.secret = crypto::SymmetricKey::generate().bytes();
        cred.proof = core::prove_bearer(fake, challenge, "file-server",
                                        world_.clock.now(), rdigest);
        req.credentials.push_back(cred);
      });
  EXPECT_EQ(theft.code(), util::ErrorCode::kBadSignature);
}

}  // namespace
}  // namespace rproxy
