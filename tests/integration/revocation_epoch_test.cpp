// Revocation that takes effect on the NEXT presentation (§3.1), not the
// next cache TTL: every revocation event source — name-server removal and
// key rotation, KDC key rotation, local grantor revocation, authorization-
// server grantee revocation — must defeat a warm ChainVerifyCache entry.
// Cache capacity is generous and the TTL far exceeds the test duration
// throughout, so the registry (and nothing else) is what kills the chains.
// Also: cascaded revocation of one chain link, and persistence of
// revocation state across an accounting-server crash-restart.
#include <gtest/gtest.h>

#include <memory>

#include "authz/authorization_server.hpp"
#include "authz/capability.hpp"
#include "core/revocation_id.hpp"
#include "server/file_server.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"

namespace rproxy {
namespace {

using testing::TempDir;
using testing::World;

class RevocationEpochTest : public ::testing::Test {
 protected:
  RevocationEpochTest() {
    world_.add_principal("alice");
    world_.add_principal("carol");
    world_.add_principal("file-server");
    server::EndServer::Config config =
        world_.end_server_config("file-server");
    config.verify_cache_capacity = 1024;
    config.verify_cache_ttl = 8 * util::kHour;  // TTL ≫ test duration
    server_ = std::make_unique<server::FileServer>(std::move(config));
    server_->put_file("/doc", "contents");
    server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    server_->acl().add(authz::AclEntry{{"carol"}, {}, {}, {}});
    world_.net.attach("file-server", *server_);
  }

  core::Proxy pk_capability(const PrincipalName& grantor) {
    return authz::make_capability_pk(
        grantor, world_.principal(grantor).identity, "file-server",
        {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
        util::kHour);
  }

  core::Proxy krb_capability(const PrincipalName& grantor) {
    kdc::KdcClient client = world_.kdc_client(grantor);
    auto tgt = client.authenticate(util::kHour);
    EXPECT_TRUE(tgt.is_ok()) << tgt.status();
    auto creds = client.get_ticket(tgt.value(), "file-server", util::kHour);
    EXPECT_TRUE(creds.is_ok()) << creds.status();
    return authz::make_capability_krb(
        client, creds.value(), {core::ObjectRights{"/doc", {"read"}}},
        world_.clock.now());
  }

  /// Presents `cap` as bob and returns the outcome.
  util::Status present(const core::Proxy& cap) {
    server::AppClient bob(world_.net, world_.clock, "bob");
    return bob.invoke_with_proxy("file-server", cap, "read", "/doc")
        .status();
  }

  /// Presents once and requires success — the cache entry is now warm.
  void warm(const core::Proxy& cap) {
    const util::Status st = present(cap);
    ASSERT_TRUE(st.is_ok()) << st;
    ASSERT_GE(server_->verifier().cache_stats().size, 1u);
  }

  World world_;
  std::unique_ptr<server::FileServer> server_;
};

TEST_F(RevocationEpochTest, NameServerRemovalKillsWarmChain) {
  const core::Proxy from_alice = pk_capability("alice");
  const core::Proxy from_carol = pk_capability("carol");
  warm(from_alice);
  warm(from_carol);

  world_.name_server.remove("alice");

  // Very next presentation: the warm entry is unseated by alice's stale
  // epoch and full verification can no longer resolve her key.
  EXPECT_FALSE(present(from_alice).is_ok());
  EXPECT_EQ(server_->verifier().cache_stats().revocation_stale_drops, 1u);
  // Carol's warm entry is untouched by the targeted invalidation.
  EXPECT_TRUE(present(from_carol).is_ok());
  EXPECT_EQ(server_->verifier().cache_stats().revocation_stale_drops, 1u);
}

TEST_F(RevocationEpochTest, NameServerKeyRotationKillsOldChains) {
  const core::Proxy old_cap = pk_capability("alice");
  warm(old_cap);

  // Alice's identity key is replaced (compromise recovery).
  const crypto::SigningKeyPair fresh = crypto::SigningKeyPair::generate();
  world_.name_server.register_key("alice", fresh.public_key());

  // Chains signed with the old key die on their next presentation...
  EXPECT_FALSE(present(old_cap).is_ok());
  // ...and grants under the new key verify fine.
  const core::Proxy new_cap = authz::make_capability_pk(
      "alice", fresh, "file-server",
      {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
      util::kHour);
  EXPECT_TRUE(present(new_cap).is_ok());
}

TEST_F(RevocationEpochTest, KdcKeyRotationKillsWarmSymChain) {
  world_.net.set_default_latency(0);
  const core::Proxy cap = krb_capability("alice");
  warm(cap);

  // Rotate alice's KDC key.  The proxy ticket is sealed under the END
  // SERVER's key, so it still decrypts and every cryptographic check on
  // the chain still passes — only the registry cutoff can kill it.
  world_.clock.advance(util::kMinute);
  (void)world_.kdc_server->db().register_with_password("alice",
                                                       "alice-new-pw");

  EXPECT_EQ(present(cap).code(), util::ErrorCode::kRevoked);
  EXPECT_GE(server_->verifier().cache_stats().revocation_stale_drops, 1u);
}

TEST_F(RevocationEpochTest, RevokeGrantorKillsWarmChainAndAclEntry) {
  const core::Proxy cap = pk_capability("alice");
  warm(cap);

  world_.clock.advance(util::kMinute);
  EXPECT_EQ(server_->revoke_grantor("alice"), 1u);

  // Verification (not just the ACL) rejects: the grant predates the
  // cutoff, so even servers sharing the registry but not this ACL agree.
  EXPECT_EQ(present(cap).code(), util::ErrorCode::kRevoked);
  // And a brand-new grant is still dead at the ACL (entry removed).
  const core::Proxy fresh = pk_capability("alice");
  EXPECT_EQ(present(fresh).code(), util::ErrorCode::kPermissionDenied);
}

TEST_F(RevocationEpochTest, CascadedRevocationOfOneLink) {
  // Depth-4 bearer cascade: alice → d1 → d2 → d3.  Revoking link 1 (the
  // first extension) kills every chain CONTAINING it (depths 2-4) while
  // the prefix (depth 1, alice's original grant) survives.
  std::vector<core::Proxy> chain_at;  // chain_at[i] has i+1 certificates
  chain_at.push_back(core::grant_pk_proxy(
      "alice", world_.principal("alice").identity,
      core::RestrictionSet{}, world_.clock.now(), util::kHour));
  for (int i = 0; i < 3; ++i) {
    chain_at.push_back(core::extend_bearer(chain_at.back(), {},
                                           world_.clock.now(), util::kHour)
                           .value());
  }

  core::ProxyVerifier::Config vc;
  vc.server_name = "file-server";
  vc.resolver = &world_.resolver;
  vc.pk_root = world_.name_server.root_key();
  vc.verify_cache_capacity = 1024;
  vc.verify_cache_ttl = 8 * util::kHour;
  vc.revocation = &world_.revocation;
  const core::ProxyVerifier verifier(std::move(vc));

  for (const core::Proxy& p : chain_at) {
    auto v = verifier.verify_chain(p.chain, world_.clock.now());
    ASSERT_TRUE(v.is_ok()) << v.status();
  }

  world_.revocation.revoke_cert(
      "alice",
      core::revocation_id_of(chain_at[1].chain.certs[1]));

  // Deeper derivations all embed the revoked certificate: dead, even with
  // their entries warm.
  for (std::size_t depth = 2; depth <= 4; ++depth) {
    auto v = verifier.verify_chain(chain_at[depth - 1].chain,
                                   world_.clock.now());
    EXPECT_EQ(v.status().code(), util::ErrorCode::kRevoked)
        << "depth " << depth;
  }
  // The prefix chain never mentions link 1 and survives.
  auto prefix = verifier.verify_chain(chain_at[0].chain, world_.clock.now());
  EXPECT_TRUE(prefix.is_ok()) << prefix.status();
}

TEST_F(RevocationEpochTest, AuthzServerRevokeGranteeKillsIssuedProxy) {
  world_.add_principal("authz-server");
  authz::AuthorizationServer::Config config;
  config.name = "authz-server";
  config.own_key = world_.principal("authz-server").krb_key;
  config.net = &world_.net;
  config.clock = &world_.clock;
  config.kdc = World::kKdcName;
  config.resolver = &world_.resolver;
  config.pk_root = world_.name_server.root_key();
  config.revocation = &world_.revocation;
  authz::AuthorizationServer authz_server(config);
  world_.net.attach("authz-server", authz_server);

  authz::Acl acl;
  acl.add(authz::AclEntry{{"alice"}, {"read"}, {"/doc"}, {}});
  authz_server.set_acl("file-server", acl);

  kdc::KdcClient alice = world_.kdc_client("alice");
  auto tgt = alice.authenticate(4 * util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = alice.get_ticket(tgt.value(), "authz-server", 4 * util::kHour);
  ASSERT_TRUE(creds.is_ok());
  authz::AuthzClient client(world_.net, world_.clock, alice);
  auto proxy = client.request_authorization(
      creds.value(), "authz-server", "file-server", {}, 30 * util::kMinute);
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();

  core::ProxyVerifier::Config vc;
  vc.server_name = "file-server";
  vc.server_key = world_.principal("file-server").krb_key;
  vc.verify_cache_capacity = 1024;
  vc.verify_cache_ttl = 8 * util::kHour;
  vc.revocation = &world_.revocation;
  const core::ProxyVerifier verifier(std::move(vc));
  ASSERT_TRUE(
      verifier.verify_chain(proxy.value().chain, world_.clock.now())
          .is_ok());

  // Revoke alice as a grantee: she loses her database entries (no NEW
  // proxies) AND every still-live proxy already issued to her (no
  // continued use of the OLD ones) — without nuking proxies the server
  // issued to other grantees.
  world_.clock.advance(util::kMinute);
  EXPECT_EQ(authz_server.revoke_grantee("alice"), 1u);

  EXPECT_EQ(client
                .request_authorization(creds.value(), "authz-server",
                                       "file-server", {},
                                       30 * util::kMinute)
                .code(),
            util::ErrorCode::kPermissionDenied);
  EXPECT_EQ(verifier.verify_chain(proxy.value().chain, world_.clock.now())
                .status()
                .code(),
            util::ErrorCode::kRevoked);
}

TEST_F(RevocationEpochTest, RevocationStateSurvivesCrashRestart) {
  // Revocation events observed by a storage-backed accounting server are
  // journaled and folded into snapshots; a restart rebuilds them into a
  // FRESH registry, so revocation outlives the process.
  TempDir dir;
  const crypto::SymmetricKey storage_key = crypto::SymmetricKey::generate();
  world_.add_principal("bank");

  const core::RevocationId listed =
      core::revocation_id_of(pk_capability("alice").chain.certs[0]);
  {
    auto config = world_.accounting_config("bank");
    config.storage_dir = dir.sub("bank");
    config.storage_key = storage_key;
    accounting::AccountingServer bank(std::move(config));
    ASSERT_TRUE(bank.recover().is_ok());

    world_.revocation.bump("alice");
    world_.clock.advance(util::kMinute);
    world_.revocation.revoke_grants_before("carol", world_.clock.now());
    world_.revocation.revoke_cert("alice", listed);
  }

  // Journal-tail replay into a fresh registry.
  core::RevocationRegistry recovered;
  {
    auto config = world_.accounting_config("bank");
    config.storage_dir = dir.sub("bank");
    config.storage_key = storage_key;
    config.revocation = &recovered;
    accounting::AccountingServer bank(std::move(config));
    ASSERT_TRUE(bank.recover().is_ok());

    EXPECT_EQ(recovered.epoch_of("alice"),
              world_.revocation.epoch_of("alice"));
    EXPECT_EQ(recovered.epoch_of("carol"),
              world_.revocation.epoch_of("carol"));
    EXPECT_EQ(recovered
                  .check_link("carol", world_.clock.now() - util::kMinute,
                              std::nullopt)
                  .code(),
              util::ErrorCode::kRevoked);
    EXPECT_EQ(recovered.check_link("alice", 0, listed).code(),
              util::ErrorCode::kRevoked);

    // Fold everything into a snapshot for the next restart.
    ASSERT_TRUE(bank.checkpoint().is_ok());
  }

  // Snapshot-based recovery (post-checkpoint) restores the same state.
  core::RevocationRegistry from_snapshot;
  {
    auto config = world_.accounting_config("bank");
    config.storage_dir = dir.sub("bank");
    config.storage_key = storage_key;
    config.revocation = &from_snapshot;
    accounting::AccountingServer bank(std::move(config));
    ASSERT_TRUE(bank.recover().is_ok());
    EXPECT_EQ(from_snapshot.epoch_of("alice"),
              world_.revocation.epoch_of("alice"));
    EXPECT_EQ(from_snapshot.check_link("alice", 0, listed).code(),
              util::ErrorCode::kRevoked);
  }
}

}  // namespace
}  // namespace rproxy
