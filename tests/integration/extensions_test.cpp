// Extensions from the paper's discussion sections:
//  * TGS proxies (§6.3) — a proxy for the ticket-granting service lets the
//    grantee obtain equally-restricted tickets for further end-servers;
//  * timestamp-mode presentation (§2's "signed or encrypted timestamp") —
//    2-message presentations guarded by a replay cache;
//  * cashier's checks (§4, "left as an exercise for the reader").
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class TgsProxyTest : public ::testing::Test {
 protected:
  TgsProxyTest() {
    world_.add_principal("alice");
    world_.add_principal("bob");
    world_.add_principal("file-server");
    server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    server_->put_file("/doc", "contents");
    server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    world_.net.attach("file-server", *server_);
  }

  /// alice grants bob a proxy for the TGS, restricted as given.
  core::Proxy grant_tgs_proxy(core::RestrictionSet restrictions) {
    kdc::KdcClient alice = world_.kdc_client("alice");
    auto tgt = alice.authenticate(4 * util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    return core::grant_krb_proxy(alice, tgt.value(),
                                 std::move(restrictions),
                                 world_.clock.now());
  }

  World world_;
  std::unique_ptr<server::FileServer> server_;
};

TEST_F(TgsProxyTest, GranteeObtainsTicketsThroughProxy) {
  const core::Proxy proxy = grant_tgs_proxy({});
  auto creds = kdc::use_tgs_proxy(
      world_.net, "bob", World::kKdcName, *proxy.chain.krb_root,
      crypto::SymmetricKey::from_bytes(proxy.secret), "file-server",
      util::kHour);
  ASSERT_TRUE(creds.is_ok()) << creds.status();
  EXPECT_EQ(creds.value().server, "file-server");
  EXPECT_EQ(creds.value().client, "alice");  // bob acts AS alice

  // The derived credentials actually work at the end-server.
  kdc::KdcClient bob(world_.net, world_.clock, "bob",
                     world_.principal("bob").krb_key, World::kKdcName);
  server::AppClient app(world_.net, world_.clock, "bob");
  auto read = app.invoke(
      "file-server", "read", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        req.identity = core::prove_delegate_krb(bob, creds.value(),
                                                challenge, "file-server",
                                                world_.clock.now(), rdigest);
      });
  ASSERT_TRUE(read.is_ok()) << read.status();
  EXPECT_EQ(util::to_string(read.value()), "contents");
}

TEST_F(TgsProxyTest, RestrictionsSurviveIntoDerivedTickets) {
  // "Such a proxy allows the grantee to obtain proxies with IDENTICAL
  // RESTRICTIONS for additional end-servers as needed." (§6.3)
  core::RestrictionSet restrictions;
  restrictions.add(core::AuthorizedRestriction{
      {core::ObjectRights{"/doc", {"read"}}}});
  const core::Proxy proxy = grant_tgs_proxy(restrictions);

  auto creds = kdc::use_tgs_proxy(
      world_.net, "bob", World::kKdcName, *proxy.chain.krb_root,
      crypto::SymmetricKey::from_bytes(proxy.secret), "file-server",
      util::kHour);
  ASSERT_TRUE(creds.is_ok()) << creds.status();

  auto body = kdc::open_ticket(creds.value().ticket,
                               world_.principal("file-server").krb_key);
  ASSERT_TRUE(body.is_ok());
  auto restored =
      core::RestrictionSet::from_blobs(body.value().authorization_data);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), restrictions);

  // And they bind at the end-server: bob can read /doc but not delete it.
  kdc::KdcClient bob(world_.net, world_.clock, "bob",
                     world_.principal("bob").krb_key, World::kKdcName);
  server::AppClient app(world_.net, world_.clock, "bob");
  const auto use = [&](const Operation& op) {
    return app.invoke(
        "file-server", op, "/doc", {}, {},
        [&](util::BytesView challenge, util::BytesView rdigest,
            server::AppRequestPayload& req) {
          // The derived credentials ARE a proxy: present them as one (the
          // ticket carries the restrictions; bob proves possession of the
          // session key via a fresh authenticator inside the proof).
          core::PresentedCredential cred;
          cred.chain.mode = core::ProxyMode::kSymmetric;
          const crypto::SymmetricKey proxy_key =
              crypto::SymmetricKey::generate();
          cred.chain.krb_root = bob.make_ap_request(
              creds.value(), proxy_key.bytes(), {});
          core::Proxy as_proxy;
          as_proxy.chain = cred.chain;
          as_proxy.secret = proxy_key.bytes();
          cred.proof = core::prove_bearer(as_proxy, challenge, "file-server",
                                          world_.clock.now(), rdigest);
          req.credentials.push_back(std::move(cred));
        });
  };
  EXPECT_TRUE(use("read").is_ok());
  EXPECT_EQ(use("delete").code(), util::ErrorCode::kRestrictionViolated);
}

TEST_F(TgsProxyTest, GranteeCannotRemoveRestrictions) {
  core::RestrictionSet restrictions;
  restrictions.add(core::QuotaRestriction{"pages", 3});
  const core::Proxy proxy = grant_tgs_proxy(restrictions);

  // bob asks for a ticket with NO additional restrictions; the TGS still
  // copies the proxy's restrictions in.
  auto creds = kdc::use_tgs_proxy(
      world_.net, "bob", World::kKdcName, *proxy.chain.krb_root,
      crypto::SymmetricKey::from_bytes(proxy.secret), "file-server",
      util::kHour, {});
  ASSERT_TRUE(creds.is_ok());
  auto body = kdc::open_ticket(creds.value().ticket,
                               world_.principal("file-server").krb_key);
  ASSERT_TRUE(body.is_ok());
  EXPECT_FALSE(body.value().authorization_data.empty());
}

TEST_F(TgsProxyTest, WrongProxyKeyCannotReadReply) {
  const core::Proxy proxy = grant_tgs_proxy({});
  auto creds = kdc::use_tgs_proxy(
      world_.net, "bob", World::kKdcName, *proxy.chain.krb_root,
      crypto::SymmetricKey::generate(),  // not the proxy key
      "file-server", util::kHour);
  EXPECT_EQ(creds.code(), util::ErrorCode::kBadSignature);
}

TEST_F(TgsProxyTest, PlainTicketWithoutSubkeyNotAcceptedAsProxy) {
  // A replayed ORDINARY TGS request (no subkey) must still be rejected by
  // the replay cache — the proxy path only opens for subkey-bearing pairs.
  kdc::KdcClient alice = world_.kdc_client("alice");
  auto tgt = alice.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  net::RecordingTap tap;
  world_.net.add_tap(tap);
  ASSERT_TRUE(
      alice.get_ticket(tgt.value(), "file-server", util::kHour).is_ok());
  auto replayed =
      world_.net.inject(tap.of_type(net::MsgType::kTgsRequest).front());
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(net::status_of(replayed.value()).code(),
            util::ErrorCode::kReplay);
}

class TimestampModeTest : public ::testing::Test {
 protected:
  TimestampModeTest() {
    world_.add_principal("alice");
    world_.add_principal("file-server");
    server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    server_->put_file("/doc", "contents");
    server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    world_.net.attach("file-server", *server_);
    cap_ = authz::make_capability_pk(
        "alice", world_.principal("alice").identity, "file-server",
        {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
        util::kHour);
  }

  World world_;
  std::unique_ptr<server::FileServer> server_;
  core::Proxy cap_;
};

TEST_F(TimestampModeTest, TwoMessagePresentation) {
  server::AppClient bob(world_.net, world_.clock, "bob");
  world_.net.reset_stats();
  auto read = bob.invoke_with_proxy_timestamp("file-server", cap_, "read",
                                              "/doc");
  ASSERT_TRUE(read.is_ok()) << read.status();
  EXPECT_EQ(util::to_string(read.value()), "contents");
  EXPECT_EQ(world_.net.stats().messages, 2u);  // vs 4 in challenge mode
}

TEST_F(TimestampModeTest, ReplayOfTimestampProofRejected) {
  server::AppClient bob(world_.net, world_.clock, "bob");
  net::RecordingTap tap;
  world_.net.add_tap(tap);
  ASSERT_TRUE(bob.invoke_with_proxy_timestamp("file-server", cap_, "read",
                                              "/doc")
                  .is_ok());
  auto replayed =
      world_.net.inject(tap.of_type(net::MsgType::kAppRequest).front());
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(net::status_of(replayed.value()).code(),
            util::ErrorCode::kReplay);
}

TEST_F(TimestampModeTest, StaleTimestampProofRejected) {
  // Build a proof now, deliver it much later.
  server::AppRequestPayload req;
  req.operation = "read";
  req.object = "/doc";
  req.challenge_id = 0;
  core::PresentedCredential cred;
  cred.chain = cap_.chain;
  cred.proof = core::prove_bearer(cap_, {}, "file-server",
                                  world_.clock.now(), req.digest());
  req.credentials.push_back(cred);
  world_.clock.advance(10 * util::kMinute);

  auto reply = world_.net.rpc("bob", "file-server",
                              net::MsgType::kAppRequest,
                              wire::encode_to_bytes(req));
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(net::status_of(reply.value()).code(), util::ErrorCode::kExpired);
}

TEST_F(TimestampModeTest, FreshProofsKeepWorking) {
  server::AppClient bob(world_.net, world_.clock, "bob");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bob.invoke_with_proxy_timestamp("file-server", cap_, "read",
                                                "/doc")
                    .is_ok());
  }
}

class CashierCheckTest : public ::testing::Test {
 protected:
  CashierCheckTest() {
    world_.add_principal("client");
    world_.add_principal("merchant");
    world_.add_principal("bank1");
    world_.add_principal("bank2");
    bank1_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank1"));
    bank2_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank2"));
    world_.net.attach("bank1", *bank1_);
    world_.net.attach("bank2", *bank2_);
    bank2_->open_account("client-acct", "client",
                         accounting::Balances{{"usd", 100}});
    bank1_->open_account("merchant-acct", "merchant");
  }

  World world_;
  std::unique_ptr<accounting::AccountingServer> bank1_;
  std::unique_ptr<accounting::AccountingServer> bank2_;
};

TEST_F(CashierCheckTest, PurchaseMovesFundsImmediately) {
  auto client = world_.accounting_client("client");
  auto check = client.buy_cashier_check("bank2", "client-acct", "merchant",
                                        "usd", 40);
  ASSERT_TRUE(check.is_ok()) << check.status();
  EXPECT_EQ(bank2_->account("client-acct")->balances().balance("usd"), 60);
  EXPECT_EQ(bank2_->account(std::string(accounting::kCashierAccount))
                ->balances()
                .balance("usd"),
            40);
  // The check is drawn on the bank, not on the client.
  EXPECT_EQ(check.value().chain.certs[0].grantor, "bank2");
  EXPECT_EQ(check.value().payor_account.account,
            std::string(accounting::kCashierAccount));
}

TEST_F(CashierCheckTest, CashierCheckClearsAcrossServers) {
  auto client = world_.accounting_client("client");
  auto check = client.buy_cashier_check("bank2", "client-acct", "merchant",
                                        "usd", 40);
  ASSERT_TRUE(check.is_ok());

  auto merchant = world_.accounting_client("merchant");
  auto cleared =
      merchant.endorse_and_deposit("bank1", check.value(), "merchant-acct");
  ASSERT_TRUE(cleared.is_ok()) << cleared.status();
  EXPECT_EQ(bank1_->account("merchant-acct")->balances().balance("usd"),
            40);
  EXPECT_EQ(bank2_->account(std::string(accounting::kCashierAccount))
                ->balances()
                .balance("usd"),
            0);
}

TEST_F(CashierCheckTest, CannotBounce) {
  // Unlike a personal check, the funds were captured at purchase: there is
  // no insufficient-funds path at clearing time.
  auto client = world_.accounting_client("client");
  auto check = client.buy_cashier_check("bank2", "client-acct", "merchant",
                                        "usd", 100);  // entire balance
  ASSERT_TRUE(check.is_ok());
  // Client account is now empty; the check still clears.
  EXPECT_EQ(bank2_->account("client-acct")->balances().balance("usd"), 0);
  auto merchant = world_.accounting_client("merchant");
  EXPECT_TRUE(merchant
                  .endorse_and_deposit("bank1", check.value(),
                                       "merchant-acct")
                  .is_ok());
}

TEST_F(CashierCheckTest, InsufficientFundsAtPurchase) {
  auto client = world_.accounting_client("client");
  EXPECT_EQ(client
                .buy_cashier_check("bank2", "client-acct", "merchant", "usd",
                                   101)
                .code(),
            util::ErrorCode::kInsufficientFunds);
}

TEST_F(CashierCheckTest, OnlyAccountHolderCanBuy) {
  auto stranger = world_.accounting_client("merchant");
  EXPECT_EQ(stranger
                .buy_cashier_check("bank2", "client-acct", "merchant", "usd",
                                   10)
                .code(),
            util::ErrorCode::kPermissionDenied);
}

TEST_F(CashierCheckTest, DoubleDepositRepliesIdempotently) {
  auto client = world_.accounting_client("client");
  auto check = client.buy_cashier_check("bank2", "client-acct", "merchant",
                                        "usd", 10);
  ASSERT_TRUE(check.is_ok());
  auto merchant = world_.accounting_client("merchant");
  ASSERT_TRUE(merchant
                  .endorse_and_deposit("bank1", check.value(),
                                       "merchant-acct")
                  .is_ok());
  // Exactly-once clearing: the second deposit is answered from bank1's
  // dedup table — same reply, but the money moved only once.
  auto again =
      merchant.endorse_and_deposit("bank1", check.value(), "merchant-acct");
  ASSERT_TRUE(again.is_ok()) << again.status();
  EXPECT_EQ(bank1_->account("merchant-acct")->balances().balance("usd"),
            10);
  EXPECT_EQ(bank1_->deduped_replies(), 1u);
}

}  // namespace
}  // namespace rproxy
