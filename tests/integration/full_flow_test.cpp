// End-to-end flows across the whole stack: Fig 3's authorization protocol
// driving a real end-server, group-backed access (§3.3), and delegated
// authorization (§3.5).
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class FullFlowTest : public ::testing::Test {
 protected:
  FullFlowTest() {
    world_.add_principal("alice");
    world_.add_principal("authz-server");
    world_.add_principal("group-server");
    world_.add_principal("file-server");

    file_server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    file_server_->put_file("/doc", "quarterly report");
    world_.net.attach("file-server", *file_server_);

    authz::AuthorizationServer::Config ac;
    ac.name = "authz-server";
    ac.own_key = world_.principal("authz-server").krb_key;
    ac.net = &world_.net;
    ac.clock = &world_.clock;
    ac.kdc = World::kKdcName;
    ac.resolver = &world_.resolver;
    ac.pk_root = world_.name_server.root_key();
    authz_server_ = std::make_unique<authz::AuthorizationServer>(ac);
    world_.net.attach("authz-server", *authz_server_);

    authz::GroupServer::Config gc;
    gc.name = "group-server";
    gc.own_key = world_.principal("group-server").krb_key;
    gc.net = &world_.net;
    gc.clock = &world_.clock;
    gc.kdc = World::kKdcName;
    gc.resolver = &world_.resolver;
    gc.pk_root = world_.name_server.root_key();
    group_server_ = std::make_unique<authz::GroupServer>(gc);
    world_.net.attach("group-server", *group_server_);

    alice_kdc_ = std::make_unique<kdc::KdcClient>(world_.kdc_client("alice"));
    auto tgt = alice_kdc_->authenticate(4 * util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    tgt_ = tgt.value();
  }

  kdc::Credentials creds_for(const PrincipalName& server) {
    auto creds = alice_kdc_->get_ticket(tgt_, server, util::kHour);
    EXPECT_TRUE(creds.is_ok()) << creds.status();
    return creds.value();
  }

  World world_;
  std::unique_ptr<server::FileServer> file_server_;
  std::unique_ptr<authz::AuthorizationServer> authz_server_;
  std::unique_ptr<authz::GroupServer> group_server_;
  std::unique_ptr<kdc::KdcClient> alice_kdc_;
  kdc::Credentials tgt_;
};

TEST_F(FullFlowTest, Figure3AuthorizationProtocol) {
  // End-server delegates authorization for /doc to the authz server (§3.2:
  // "an end-server ... would grant full or the maximum desired access to
  // the authorization server") by putting it on the ACL.
  file_server_->acl().add(
      authz::AclEntry{{"authz-server"}, {}, {}, {}});
  authz::Acl db;
  db.add(authz::AclEntry{{"alice"}, {"read"}, {"/doc"}, {}});
  authz_server_->set_acl("file-server", db);

  // Message 1+2 (Fig 3): authenticated request, proxy grant.
  authz::AuthzClient authz_client(world_.net, world_.clock, *alice_kdc_);
  auto proxy = authz_client.request_authorization(
      creds_for("authz-server"), "authz-server", "file-server", {},
      30 * util::kMinute);
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();

  // Message 3: present the proxy.  The authorization proxy is a delegate
  // proxy naming alice, so she proves her identity to the end-server.
  const kdc::Credentials file_creds = creds_for("file-server");
  server::AppClient app(world_.net, world_.clock, "alice");
  auto result = app.invoke(
      "file-server", "read", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = proxy.value().chain;
        cred.proof = core::prove_delegate_krb(*alice_kdc_, file_creds,
                                              challenge, "file-server",
                                              world_.clock.now(), rdigest);
        req.credentials.push_back(cred);
      });
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(util::to_string(result.value()), "quarterly report");

  // The authorization was scoped: write is refused.
  auto write = app.invoke(
      "file-server", "write", "/doc", {},
      util::to_bytes(std::string_view("defaced")),
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = proxy.value().chain;
        cred.proof = core::prove_delegate_krb(*alice_kdc_, file_creds,
                                              challenge, "file-server",
                                              world_.clock.now(), rdigest);
        req.credentials.push_back(cred);
      });
  EXPECT_EQ(write.code(), util::ErrorCode::kRestrictionViolated);
}

TEST_F(FullFlowTest, GroupBackedAccess) {
  // §3.3: the end-server puts a group name on its ACL; the client obtains
  // a group proxy and presents it with the request.
  group_server_->add_member("staff", "alice");
  file_server_->acl().add(authz::AclEntry{
      {authz::acl_group_token(GroupName{"group-server", "staff"})},
      {"read"},
      {"/doc"},
      {}});

  authz::GroupClient group_client(world_.net, world_.clock, *alice_kdc_);
  auto group_proxy = group_client.request_membership(
      creds_for("group-server"), "group-server", "staff", "file-server",
      30 * util::kMinute);
  ASSERT_TRUE(group_proxy.is_ok()) << group_proxy.status();

  const kdc::Credentials file_creds = creds_for("file-server");
  server::AppClient app(world_.net, world_.clock, "alice");
  auto result = app.invoke(
      "file-server", "read", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = group_proxy.value().chain;
        cred.proof = core::prove_delegate_krb(*alice_kdc_, file_creds,
                                              challenge, "file-server",
                                              world_.clock.now(), rdigest);
        req.group_credentials.push_back(cred);
      });
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(util::to_string(result.value()), "quarterly report");
}

TEST_F(FullFlowTest, GroupProxyAloneDoesNotGrantUnlistedRights) {
  group_server_->add_member("staff", "alice");
  file_server_->acl().add(authz::AclEntry{
      {authz::acl_group_token(GroupName{"group-server", "staff"})},
      {"read"},
      {"/doc"},
      {}});
  authz::GroupClient group_client(world_.net, world_.clock, *alice_kdc_);
  auto group_proxy = group_client.request_membership(
      creds_for("group-server"), "group-server", "staff", "file-server",
      30 * util::kMinute);
  ASSERT_TRUE(group_proxy.is_ok());

  const kdc::Credentials file_creds = creds_for("file-server");
  server::AppClient app(world_.net, world_.clock, "alice");
  auto del = app.invoke(
      "file-server", "delete", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = group_proxy.value().chain;
        cred.proof = core::prove_delegate_krb(*alice_kdc_, file_creds,
                                              challenge, "file-server",
                                              world_.clock.now(), rdigest);
        req.group_credentials.push_back(cred);
      });
  EXPECT_EQ(del.code(), util::ErrorCode::kPermissionDenied);
}

TEST_F(FullFlowTest, GroupViaAuthorizationServer) {
  // §3.3 last paragraph: the group proxy is presented to the authorization
  // server, which returns an authorization proxy.
  group_server_->add_member("staff", "alice");
  file_server_->acl().add(authz::AclEntry{{"authz-server"}, {}, {}, {}});
  authz::Acl db;
  db.add(authz::AclEntry{
      {authz::acl_group_token(GroupName{"group-server", "staff"})},
      {"read"},
      {"/doc"},
      {}});
  authz_server_->set_acl("file-server", db);

  // Group proxy issued FOR the authorization server.
  authz::GroupClient group_client(world_.net, world_.clock, *alice_kdc_);
  auto group_proxy = group_client.request_membership(
      creds_for("group-server"), "group-server", "staff", "authz-server",
      30 * util::kMinute);
  ASSERT_TRUE(group_proxy.is_ok()) << group_proxy.status();

  const kdc::Credentials authz_creds = creds_for("authz-server");
  authz::AuthzClient authz_client(world_.net, world_.clock, *alice_kdc_);
  auto proxy = authz_client.request_authorization(
      authz_creds, "authz-server", "file-server", {}, 30 * util::kMinute,
      [&](util::BytesView challenge)
          -> std::vector<core::PresentedCredential> {
        core::PresentedCredential cred;
        cred.chain = group_proxy.value().chain;
        cred.proof = core::prove_delegate_krb(*alice_kdc_, authz_creds,
                                              challenge, "authz-server",
                                              world_.clock.now(), {});
        return {cred};
      });
  ASSERT_TRUE(proxy.is_ok()) << proxy.status();

  const kdc::Credentials file_creds = creds_for("file-server");
  server::AppClient app(world_.net, world_.clock, "alice");
  auto result = app.invoke(
      "file-server", "read", "/doc", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = proxy.value().chain;
        cred.proof = core::prove_delegate_krb(*alice_kdc_, file_creds,
                                              challenge, "file-server",
                                              world_.clock.now(), rdigest);
        req.credentials.push_back(cred);
      });
  ASSERT_TRUE(result.is_ok()) << result.status();
}

TEST_F(FullFlowTest, OfflineVerificationAfterGrant) {
  // The paper's efficiency claim: once the proxy is granted, presentations
  // involve ONLY client <-> end-server messages (no third party).
  file_server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
  const core::Proxy cap = authz::make_capability_pk(
      "alice", world_.principal("alice").identity, "file-server",
      {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
      util::kHour);

  net::RecordingTap tap;
  world_.net.add_tap(tap);
  server::AppClient bob(world_.net, world_.clock, "bob");
  ASSERT_TRUE(
      bob.invoke_with_proxy("file-server", cap, "read", "/doc").is_ok());
  for (const net::Envelope& e : tap.log()) {
    EXPECT_TRUE((e.from == "bob" && e.to == "file-server") ||
                (e.from == "file-server" && e.to == "bob"))
        << e.from << " -> " << e.to;
  }
}

}  // namespace
}  // namespace rproxy
