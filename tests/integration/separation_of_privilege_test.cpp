// Separation of privilege (§3.5, §7.1, §7.2) end to end:
//  * k-of-n grantee concurrence on a single delegate proxy;
//  * for-use-by-group requiring memberships in two disjoint groups;
//  * compound ACL entries combining a user and a host principal.
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class SeparationTest : public ::testing::Test {
 protected:
  SeparationTest() {
    world_.add_principal("alice");
    world_.add_principal("operator1");
    world_.add_principal("operator2");
    world_.add_principal("group-server");
    world_.add_principal("vault");

    vault_ = std::make_unique<server::FileServer>(
        world_.end_server_config("vault"));
    vault_->put_file("/master-key", "hunter2");
    vault_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    world_.net.attach("vault", *vault_);

    authz::GroupServer::Config gc;
    gc.name = "group-server";
    gc.own_key = world_.principal("group-server").krb_key;
    gc.net = &world_.net;
    gc.clock = &world_.clock;
    gc.kdc = World::kKdcName;
    group_server_ = std::make_unique<authz::GroupServer>(gc);
    group_server_->add_member("operators", "operator1");
    group_server_->add_member("auditors", "operator2");
    world_.net.attach("group-server", *group_server_);
  }

  /// Runs a vault read presented by `presenter` with the given credentials.
  util::Result<util::Bytes> read_vault(
      const PrincipalName& presenter,
      const std::vector<const core::Proxy*>& proxies,
      const std::vector<const core::Proxy*>& group_proxies,
      const std::vector<PrincipalName>& identities) {
    server::AppClient app(world_.net, world_.clock, presenter);
    return app.invoke(
        "vault", "read", "/master-key", {}, {},
        [&](util::BytesView challenge, util::BytesView rdigest,
            server::AppRequestPayload& req) {
          for (const core::Proxy* p : proxies) {
            core::PresentedCredential cred;
            cred.chain = p->chain;
            cred.proof = core::prove_bearer(*p, challenge, "vault",
                                            world_.clock.now(), rdigest);
            req.credentials.push_back(cred);
          }
          for (const core::Proxy* p : group_proxies) {
            core::PresentedCredential cred;
            cred.chain = p->chain;
            // Group proxies are delegate proxies; their proof comes from
            // the first identity below (tests use one presenter identity).
            const testing::Principal& who =
                world_.principal(identities.front());
            cred.proof = core::prove_delegate_pk(who.cert, who.identity,
                                                 challenge, "vault",
                                                 world_.clock.now(),
                                                 rdigest);
            req.group_credentials.push_back(cred);
          }
          if (!identities.empty()) {
            const testing::Principal& who =
                world_.principal(identities.front());
            req.identity = core::prove_delegate_pk(who.cert, who.identity,
                                                   challenge, "vault",
                                                   world_.clock.now(),
                                                   rdigest);
          }
        });
  }

  World world_;
  std::unique_ptr<server::FileServer> vault_;
  std::unique_ptr<authz::GroupServer> group_server_;
};

TEST_F(SeparationTest, TwoOfTwoGranteesRequired) {
  // alice's proxy requires BOTH operators to exercise it (§7.1's k-of-n).
  core::RestrictionSet set;
  set.add(core::GranteeRestriction{{"operator1", "operator2"}, 2});
  set.add(core::IssuedForRestriction{{"vault"}});
  const core::Proxy proxy =
      core::grant_pk_proxy("alice", world_.principal("alice").identity, set,
                           world_.clock.now(), util::kHour);

  // operator1 alone: refused.
  server::AppClient app(world_.net, world_.clock, "operator1");
  auto solo = app.invoke(
      "vault", "read", "/master-key", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = proxy.chain;
        const testing::Principal& op1 = world_.principal("operator1");
        cred.proof = core::prove_delegate_pk(op1.cert, op1.identity,
                                             challenge, "vault",
                                             world_.clock.now(), rdigest);
        req.credentials.push_back(cred);
      });
  EXPECT_EQ(solo.code(), util::ErrorCode::kNotGrantee);

  // Both operators authenticate on the same request: allowed.
  auto both = app.invoke(
      "vault", "read", "/master-key", {}, {},
      [&](util::BytesView challenge, util::BytesView rdigest,
          server::AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = proxy.chain;
        const testing::Principal& op1 = world_.principal("operator1");
        cred.proof = core::prove_delegate_pk(op1.cert, op1.identity,
                                             challenge, "vault",
                                             world_.clock.now(), rdigest);
        req.credentials.push_back(cred);
        // operator2's identity rides as the standalone identity proof.
        const testing::Principal& op2 = world_.principal("operator2");
        req.identity = core::prove_delegate_pk(op2.cert, op2.identity,
                                               challenge, "vault",
                                               world_.clock.now(), rdigest);
      });
  ASSERT_TRUE(both.is_ok()) << both.status();
}

TEST_F(SeparationTest, DisjointGroupConcurrence) {
  // §7.2: "require assertion of membership in multiple groups with
  // disjoint members."  The proxy demands operators AND auditors; no
  // single person is in both groups.
  core::RestrictionSet set;
  set.add(core::ForUseByGroupRestriction{
      {GroupName{"group-server", "operators"},
       GroupName{"group-server", "auditors"}},
      2});
  set.add(core::IssuedForRestriction{{"vault"}});
  const core::Proxy proxy =
      core::grant_pk_proxy("alice", world_.principal("alice").identity, set,
                           world_.clock.now(), util::kHour);

  // Build group proxies for each operator (issued for the vault).
  const auto group_proxy = [&](const PrincipalName& member,
                               const std::string& group) {
    kdc::KdcClient client = world_.kdc_client(member);
    auto tgt = client.authenticate(util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    auto creds =
        client.get_ticket(tgt.value(), "group-server", util::kHour);
    EXPECT_TRUE(creds.is_ok());
    authz::GroupClient gc(world_.net, world_.clock, client);
    auto proxy_result = gc.request_membership(creds.value(), "group-server",
                                              group, "vault", util::kHour);
    EXPECT_TRUE(proxy_result.is_ok()) << proxy_result.status();
    return proxy_result.value();
  };
  const core::Proxy op_membership = group_proxy("operator1", "operators");
  const core::Proxy aud_membership = group_proxy("operator2", "auditors");

  server::AppClient app(world_.net, world_.clock, "operator1");
  const auto attempt = [&](bool include_auditor) {
    return app.invoke(
        "vault", "read", "/master-key", {}, {},
        [&](util::BytesView challenge, util::BytesView rdigest,
            server::AppRequestPayload& req) {
          core::PresentedCredential main;
          main.chain = proxy.chain;
          main.proof = core::prove_bearer(proxy, challenge, "vault",
                                          world_.clock.now(), rdigest);
          req.credentials.push_back(main);

          const testing::Principal& op1 = world_.principal("operator1");
          core::PresentedCredential g1;
          g1.chain = op_membership.chain;
          g1.proof = core::prove_delegate_pk(op1.cert, op1.identity,
                                             challenge, "vault",
                                             world_.clock.now(), rdigest);
          req.group_credentials.push_back(g1);

          if (include_auditor) {
            const testing::Principal& op2 = world_.principal("operator2");
            core::PresentedCredential g2;
            g2.chain = aud_membership.chain;
            g2.proof = core::prove_delegate_pk(op2.cert, op2.identity,
                                               challenge, "vault",
                                               world_.clock.now(), rdigest);
            req.group_credentials.push_back(g2);
          }
        });
  };

  EXPECT_EQ(attempt(false).code(), util::ErrorCode::kRestrictionViolated);
  auto with_both = attempt(true);
  ASSERT_TRUE(with_both.is_ok()) << with_both.status();
}

TEST_F(SeparationTest, UserPlusHostCompoundEntry) {
  // §3.5: "the need for both user and host credentials for certain
  // operations."
  world_.add_principal("workstation-7");
  vault_->acl().add(authz::AclEntry{
      {"operator1", "workstation-7"}, {"read"}, {"/master-key"}, {}});

  const core::Proxy host_voucher = core::grant_pk_proxy(
      "workstation-7", world_.principal("workstation-7").identity,
      core::RestrictionSet{core::IssuedForRestriction{{"vault"}}},
      world_.clock.now(), util::kHour);

  // operator1's identity alone does not satisfy the compound entry...
  auto solo = read_vault("operator1", {}, {}, {"operator1"});
  EXPECT_EQ(solo.code(), util::ErrorCode::kPermissionDenied);
  // ...but identity + the host's proxy does.
  auto with_host =
      read_vault("operator1", {&host_voucher}, {}, {"operator1"});
  ASSERT_TRUE(with_host.is_ok()) << with_host.status();
}

}  // namespace
}  // namespace rproxy
