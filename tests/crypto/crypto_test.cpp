#include <gtest/gtest.h>

#include "crypto/aead.hpp"
#include "crypto/digest.hpp"
#include "crypto/hmac.hpp"
#include "crypto/random.hpp"
#include "crypto/signature.hpp"

namespace rproxy::crypto {
namespace {

using util::Bytes;
using util::to_bytes;
using util::to_hex;

TEST(Digest, KnownVector) {
  // SHA-256("abc")
  EXPECT_EQ(
      to_hex(sha256_bytes(to_bytes(std::string_view("abc")))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Digest, EmptyInput) {
  EXPECT_EQ(
      to_hex(sha256_bytes({})),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Digest, Deterministic) {
  const Bytes data = random_bytes(1024);
  EXPECT_EQ(sha256(data), sha256(data));
}

TEST(Random, DistinctDraws) {
  EXPECT_NE(random_bytes(32), random_bytes(32));
  EXPECT_NE(random_u64(), random_u64());  // astronomically unlikely to fail
}

TEST(Random, RequestedSizes) {
  EXPECT_EQ(random_bytes(0).size(), 0u);
  EXPECT_EQ(random_bytes(1).size(), 1u);
  EXPECT_EQ(random_bytes(1000).size(), 1000u);
}

TEST(DeterministicRng, Reproducible) {
  DeterministicRng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(DeterministicRng, BoundedDraw) {
  DeterministicRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
  }
}

TEST(SymmetricKey, GenerateDistinct) {
  EXPECT_FALSE(SymmetricKey::generate() == SymmetricKey::generate());
}

TEST(SymmetricKey, PasswordDerivationDeterministic) {
  const SymmetricKey a = SymmetricKey::derive_from_password("pw", "alice");
  const SymmetricKey b = SymmetricKey::derive_from_password("pw", "alice");
  const SymmetricKey c = SymmetricKey::derive_from_password("pw", "bob");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SymmetricKey, SubkeysDifferByPurpose) {
  const SymmetricKey k = SymmetricKey::generate();
  EXPECT_FALSE(k.derive_subkey("a") == k.derive_subkey("b"));
  EXPECT_TRUE(k.derive_subkey("a") == k.derive_subkey("a"));
  EXPECT_FALSE(k.derive_subkey("a") == k);
}

TEST(SymmetricKey, FingerprintStableAndShort) {
  const SymmetricKey k = SymmetricKey::generate();
  EXPECT_EQ(k.fingerprint(), k.fingerprint());
  EXPECT_EQ(k.fingerprint().size(), 8u);
}

TEST(Hmac, VerifyRoundTrip) {
  const SymmetricKey k = SymmetricKey::generate();
  const Bytes data = to_bytes(std::string_view("message"));
  const Bytes mac = hmac_sha256(k, data);
  EXPECT_EQ(mac.size(), kMacSize);
  EXPECT_TRUE(hmac_verify(k, data, mac));
}

TEST(Hmac, RejectsTamperedData) {
  const SymmetricKey k = SymmetricKey::generate();
  Bytes data = to_bytes(std::string_view("message"));
  const Bytes mac = hmac_sha256(k, data);
  data[0] ^= 1;
  EXPECT_FALSE(hmac_verify(k, data, mac));
}

TEST(Hmac, RejectsWrongKey) {
  const Bytes data = to_bytes(std::string_view("message"));
  const Bytes mac = hmac_sha256(SymmetricKey::generate(), data);
  EXPECT_FALSE(hmac_verify(SymmetricKey::generate(), data, mac));
}

TEST(Hmac, RejectsWrongLengthMac) {
  const SymmetricKey k = SymmetricKey::generate();
  const Bytes data = to_bytes(std::string_view("m"));
  Bytes mac = hmac_sha256(k, data);
  mac.pop_back();
  EXPECT_FALSE(hmac_verify(k, data, mac));
}

TEST(Aead, SealOpenRoundTrip) {
  const SymmetricKey k = SymmetricKey::generate();
  const Bytes plaintext = to_bytes(std::string_view("secret payload"));
  const Bytes box = aead_seal(k, plaintext);
  auto opened = aead_open(k, box);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(opened.value(), plaintext);
}

TEST(Aead, EmptyPlaintext) {
  const SymmetricKey k = SymmetricKey::generate();
  const Bytes box = aead_seal(k, {});
  auto opened = aead_open(k, box);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_TRUE(opened.value().empty());
}

TEST(Aead, AssociatedDataBinds) {
  const SymmetricKey k = SymmetricKey::generate();
  const Bytes aad = to_bytes(std::string_view("context"));
  const Bytes box = aead_seal(k, to_bytes(std::string_view("p")), aad);
  EXPECT_TRUE(aead_open(k, box, aad).is_ok());
  EXPECT_EQ(aead_open(k, box, to_bytes(std::string_view("other"))).code(),
            util::ErrorCode::kBadSignature);
  EXPECT_EQ(aead_open(k, box).code(), util::ErrorCode::kBadSignature);
}

TEST(Aead, RejectsWrongKey) {
  const Bytes box =
      aead_seal(SymmetricKey::generate(), to_bytes(std::string_view("p")));
  EXPECT_EQ(aead_open(SymmetricKey::generate(), box).code(),
            util::ErrorCode::kBadSignature);
}

TEST(Aead, RejectsTamperedCiphertext) {
  const SymmetricKey k = SymmetricKey::generate();
  Bytes box = aead_seal(k, to_bytes(std::string_view("payload")));
  box[box.size() / 2] ^= 1;
  EXPECT_FALSE(aead_open(k, box).is_ok());
}

TEST(Aead, RejectsTruncatedBox) {
  const SymmetricKey k = SymmetricKey::generate();
  Bytes box = aead_seal(k, to_bytes(std::string_view("payload")));
  box.resize(kNonceSize + kTagSize - 1);
  EXPECT_EQ(aead_open(k, box).code(), util::ErrorCode::kParseError);
}

TEST(Aead, NonDeterministic) {
  const SymmetricKey k = SymmetricKey::generate();
  const Bytes p = to_bytes(std::string_view("same"));
  EXPECT_NE(aead_seal(k, p), aead_seal(k, p));  // fresh nonce each time
}

TEST(Signature, SignVerifyRoundTrip) {
  const SigningKeyPair pair = SigningKeyPair::generate();
  const Bytes data = to_bytes(std::string_view("claim"));
  const Bytes sig = sign(pair, data);
  EXPECT_EQ(sig.size(), kSignatureSize);
  EXPECT_TRUE(verify(pair.public_key(), data, sig));
}

TEST(Signature, RejectsTamperedData) {
  const SigningKeyPair pair = SigningKeyPair::generate();
  Bytes data = to_bytes(std::string_view("claim"));
  const Bytes sig = sign(pair, data);
  data[0] ^= 1;
  EXPECT_FALSE(verify(pair.public_key(), data, sig));
}

TEST(Signature, RejectsWrongKey) {
  const SigningKeyPair pair = SigningKeyPair::generate();
  const Bytes data = to_bytes(std::string_view("claim"));
  const Bytes sig = sign(pair, data);
  EXPECT_FALSE(verify(SigningKeyPair::generate().public_key(), data, sig));
}

TEST(Signature, RejectsMalformedSignature) {
  const SigningKeyPair pair = SigningKeyPair::generate();
  const Bytes data = to_bytes(std::string_view("claim"));
  EXPECT_FALSE(verify(pair.public_key(), data, Bytes{1, 2, 3}));
}

TEST(Signature, KeyPairFromSeedIsStable) {
  const SigningKeyPair pair = SigningKeyPair::generate();
  const SigningKeyPair again =
      SigningKeyPair::from_private_bytes(pair.private_bytes());
  EXPECT_TRUE(pair.public_key() == again.public_key());
  const Bytes data = to_bytes(std::string_view("x"));
  EXPECT_TRUE(verify(again.public_key(), data, sign(pair, data)));
}

TEST(Signature, VerifyStatusMapsToBadSignature) {
  const SigningKeyPair pair = SigningKeyPair::generate();
  const Bytes data = to_bytes(std::string_view("x"));
  EXPECT_TRUE(
      verify_status(pair.public_key(), data, sign(pair, data), "t").is_ok());
  EXPECT_EQ(
      verify_status(pair.public_key(), data, Bytes(64, 0), "t").code(),
      util::ErrorCode::kBadSignature);
}

}  // namespace
}  // namespace rproxy::crypto
