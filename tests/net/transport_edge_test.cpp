// Persistent-connection edge cases BOTH transports must survive the same
// way: a client vanishing mid-frame, an oversized or garbage frame, a
// slow-loris peer dribbling header bytes, and a pipelined burst with a
// failing request in the middle.  The suite is value-parameterized over
// the thread-pool TcpServer and the epoll EventLoopServer — the wire
// contract (one frame per request, replies strictly in request order) is
// transport-independent, so every expectation here runs against both.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"

namespace rproxy {
namespace {

/// Echoes the payload back; a payload of "fail" provokes an error reply
/// (the failing-request-in-the-middle case).
class EchoNode final : public net::Node {
 public:
  net::Envelope handle(const net::Envelope& request) override {
    if (util::to_string(request.payload) == "fail") {
      return net::make_error_reply(
          request, util::fail(util::ErrorCode::kProtocolError,
                              "injected handler failure"));
    }
    net::Envelope reply = request;
    reply.type = net::MsgType::kAppReply;
    return reply;
  }
};

constexpr util::Duration kIdleTimeout = 150 * util::kMillisecond;

class TransportEdge : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "pool") {
      net::TcpServer::Options options;
      // The pool's slow-peer guard is a per-socket receive timeout.
      options.io_timeout = kIdleTimeout;
      pool_ = std::make_unique<net::TcpServer>(options);
      pool_->attach("echo", echo_);
      const util::Status started = pool_->start();
      ASSERT_TRUE(started.is_ok()) << started;
      port_ = pool_->port();
    } else {
      net::EventLoopServer::Options options;
      options.workers = 4;
      options.idle_timeout = kIdleTimeout;
      // Deliberately smaller than the bursts below so the backpressure
      // pause/resume path is exercised, not just configured.
      options.max_pipeline = 4;
      loop_ = std::make_unique<net::EventLoopServer>(options);
      loop_->attach("echo", echo_);
      const util::Status started = loop_->start();
      ASSERT_TRUE(started.is_ok()) << started;
      port_ = loop_->port();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] net::Envelope request(const std::string& payload) const {
    net::Envelope e;
    e.from = "client";
    e.to = "echo";
    e.type = net::MsgType::kAppRequest;
    e.payload = util::to_bytes(payload);
    return e;
  }

  /// Raw loopback socket with a 5 s receive timeout, so a server that
  /// wrongly keeps a connection open fails the test instead of hanging it.
  [[nodiscard]] static int raw_connect(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  static void raw_send(int fd, const util::Bytes& bytes) {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Frames `body` with the u32 length prefix both servers expect.
  [[nodiscard]] static util::Bytes frame(const util::Bytes& body) {
    const auto len = static_cast<std::uint32_t>(body.size());
    util::Bytes out;
    out.push_back(static_cast<std::uint8_t>(len >> 24));
    out.push_back(static_cast<std::uint8_t>(len >> 16));
    out.push_back(static_cast<std::uint8_t>(len >> 8));
    out.push_back(static_cast<std::uint8_t>(len));
    out.insert(out.end(), body.begin(), body.end());
    return out;
  }

  /// Reads one whole reply frame; fails the test on EOF or timeout.
  [[nodiscard]] static util::Bytes raw_read_frame(int fd) {
    auto read_exact = [fd](std::uint8_t* buffer, std::size_t n) {
      std::size_t done = 0;
      while (done < n) {
        const ssize_t got = ::recv(fd, buffer + done, n - done, 0);
        if (got <= 0) return false;
        done += static_cast<std::size_t>(got);
      }
      return true;
    };
    std::uint8_t header[4];
    EXPECT_TRUE(read_exact(header, 4));
    const std::uint32_t len = (std::uint32_t{header[0]} << 24) |
                              (std::uint32_t{header[1]} << 16) |
                              (std::uint32_t{header[2]} << 8) |
                              std::uint32_t{header[3]};
    util::Bytes body(len);
    if (len > 0) {
      EXPECT_TRUE(read_exact(body.data(), len));
    }
    return body;
  }

  /// True when the server closed its end: recv sees EOF before the 5 s
  /// socket timeout.
  [[nodiscard]] static bool server_closed(int fd) {
    std::uint8_t byte = 0;
    return ::recv(fd, &byte, 1, 0) == 0;
  }

  EchoNode echo_;
  std::unique_ptr<net::TcpServer> pool_;
  std::unique_ptr<net::EventLoopServer> loop_;
  std::uint16_t port_ = 0;
};

TEST_P(TransportEdge, PipelinedBurstRepliesArriveInOrder) {
  net::TcpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port()).is_ok());
  std::vector<net::Envelope> requests;
  for (int i = 0; i < 20; ++i) {
    requests.push_back(request("payload-" + std::to_string(i)));
  }
  auto replies = client.rpc_pipelined(requests);
  ASSERT_TRUE(replies.is_ok()) << replies.status();
  ASSERT_EQ(replies.value().size(), 20u);
  for (int i = 0; i < 20; ++i) {
    const net::Envelope& reply = replies.value()[static_cast<size_t>(i)];
    EXPECT_EQ(reply.type, net::MsgType::kAppReply);
    EXPECT_EQ(util::to_string(reply.payload),
              "payload-" + std::to_string(i))
        << "reply " << i << " out of order";
  }
}

TEST_P(TransportEdge, FailingMiddleRequestDoesNotDisturbLaterReplies) {
  net::TcpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port()).is_ok());
  std::vector<net::Envelope> requests;
  for (int i = 0; i < 15; ++i) {
    requests.push_back(request(i == 7 ? "fail" : std::to_string(i)));
  }
  auto replies = client.rpc_pipelined(requests);
  ASSERT_TRUE(replies.is_ok()) << replies.status();
  ASSERT_EQ(replies.value().size(), 15u);
  for (int i = 0; i < 15; ++i) {
    const net::Envelope& reply = replies.value()[static_cast<size_t>(i)];
    if (i == 7) {
      EXPECT_EQ(net::status_of(reply).code(),
                util::ErrorCode::kProtocolError);
    } else {
      EXPECT_EQ(reply.type, net::MsgType::kAppReply);
      EXPECT_EQ(util::to_string(reply.payload), std::to_string(i))
          << "reply " << i << " displaced by the failing request";
    }
  }
}

TEST_P(TransportEdge, MidFrameDisconnectLeavesServerServing) {
  const int fd = raw_connect(port());
  // Header promising 100 bytes, then 10, then gone.
  util::Bytes partial = frame(util::Bytes(100, 0x42));
  partial.resize(4 + 10);
  raw_send(fd, partial);
  ::close(fd);

  // The abandoned stub must not wedge, crash, or poison the server.
  net::TcpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port()).is_ok());
  auto reply = client.rpc(request("still alive?"));
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(util::to_string(reply.value().payload), "still alive?");
}

TEST_P(TransportEdge, OversizedFrameClosesTheConnection) {
  const int fd = raw_connect(port());
  // A length prefix past kMaxFrameBytes cannot be resynchronized — the
  // only safe answer is to drop the connection (and certainly not to
  // allocate what the prefix claims).
  const std::uint32_t huge =
      static_cast<std::uint32_t>(net::kMaxFrameBytes) + 1;
  util::Bytes header = {static_cast<std::uint8_t>(huge >> 24),
                        static_cast<std::uint8_t>(huge >> 16),
                        static_cast<std::uint8_t>(huge >> 8),
                        static_cast<std::uint8_t>(huge)};
  raw_send(fd, header);
  EXPECT_TRUE(server_closed(fd));
  ::close(fd);

  // Other connections are unaffected.
  net::TcpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port()).is_ok());
  EXPECT_TRUE(client.rpc(request("ok")).is_ok());
}

TEST_P(TransportEdge, GarbageFrameAnswersInSlotAndKeepsStreamAlive) {
  // A frame that is well-delimited but does not decode as an envelope:
  // the stream itself is intact, so the server answers kParseError in
  // the frame's slot and keeps serving the connection.
  const int fd = raw_connect(port());
  raw_send(fd, frame(util::Bytes{0xde, 0xad, 0xbe, 0xef}));
  wire::Encoder enc;
  net::encode_envelope(enc, request("after the garbage"));
  raw_send(fd, frame(util::Bytes(enc.view().begin(), enc.view().end())));

  const util::Bytes first_frame = raw_read_frame(fd);
  wire::Decoder first(first_frame);
  const net::Envelope error_reply = net::decode_envelope(first);
  ASSERT_TRUE(first.finish().is_ok());
  EXPECT_EQ(net::status_of(error_reply).code(),
            util::ErrorCode::kParseError);

  const util::Bytes second_frame = raw_read_frame(fd);
  wire::Decoder second(second_frame);
  const net::Envelope echo_reply = net::decode_envelope(second);
  ASSERT_TRUE(second.finish().is_ok());
  EXPECT_EQ(util::to_string(echo_reply.payload), "after the garbage");
  ::close(fd);
}

TEST_P(TransportEdge, SlowLorisPartialHeaderIsClosedByTheIdleGuard) {
  const int fd = raw_connect(port());
  // Two header bytes, then silence: never enough to parse a frame, so
  // nothing is ever in flight — exactly the state the idle guard exists
  // for.  The server must close within its timeout (well inside our 5 s
  // read deadline), not hold the stub open forever.
  raw_send(fd, util::Bytes{0x00, 0x00});
  EXPECT_TRUE(server_closed(fd));
  ::close(fd);
  if (loop_) {
    EXPECT_GE(loop_->idle_closed(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(BothTransports, TransportEdge,
                         ::testing::Values("pool", "loop"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace rproxy
