#include "net/simnet.hpp"

#include <gtest/gtest.h>

#include "net/rpc.hpp"

namespace rproxy::net {
namespace {

struct PingPayload {
  std::uint64_t value = 0;

  void encode(wire::Encoder& enc) const { enc.u64(value); }
  static PingPayload decode(wire::Decoder& dec) {
    return PingPayload{dec.u64()};
  }
};

/// Echo node: replies with value+1 on kAppRequest.
class EchoNode final : public Node {
 public:
  Envelope handle(const Envelope& request) override {
    handled += 1;
    auto parsed = wire::decode_from_bytes<PingPayload>(request.payload);
    if (!parsed.is_ok()) return make_error_reply(request, parsed.status());
    PingPayload reply;
    reply.value = parsed.value().value + 1;
    return make_reply(request, MsgType::kAppReply, reply);
  }

  int handled = 0;
};

class SimNetTest : public ::testing::Test {
 protected:
  util::SimClock clock_;
  SimNet net_{clock_};
  EchoNode echo_;
};

TEST_F(SimNetTest, RpcRoundTrip) {
  net_.attach("echo", echo_);
  auto reply = call<PingPayload>(net_, "client", "echo", MsgType::kAppRequest,
                                 MsgType::kAppReply, PingPayload{41});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().value, 42u);
  EXPECT_EQ(echo_.handled, 1);
}

TEST_F(SimNetTest, UnknownDestinationFails) {
  auto reply = net_.rpc("client", "ghost", MsgType::kAppRequest, {});
  EXPECT_EQ(reply.code(), util::ErrorCode::kNotFound);
}

TEST_F(SimNetTest, DetachedNodeUnreachable) {
  net_.attach("echo", echo_);
  net_.detach("echo");
  auto reply = net_.rpc("client", "echo", MsgType::kAppRequest, {});
  EXPECT_EQ(reply.code(), util::ErrorCode::kNotFound);
}

TEST_F(SimNetTest, StatsCountMessagesAndBytes) {
  net_.attach("echo", echo_);
  (void)call<PingPayload>(net_, "client", "echo", MsgType::kAppRequest,
                          MsgType::kAppReply, PingPayload{1});
  EXPECT_EQ(net_.stats().rpcs, 1u);
  EXPECT_EQ(net_.stats().messages, 2u);  // request + reply
  EXPECT_GT(net_.stats().bytes, 0u);
  net_.reset_stats();
  EXPECT_EQ(net_.stats().messages, 0u);
}

TEST_F(SimNetTest, LatencyAdvancesClock) {
  net_.attach("echo", echo_);
  net_.set_default_latency(1 * util::kMillisecond);
  const util::TimePoint before = clock_.now();
  (void)call<PingPayload>(net_, "client", "echo", MsgType::kAppRequest,
                          MsgType::kAppReply, PingPayload{1});
  EXPECT_EQ(clock_.now() - before, 2 * util::kMillisecond);
}

TEST_F(SimNetTest, PerLinkLatencyOverride) {
  net_.attach("echo", echo_);
  net_.set_default_latency(1 * util::kMillisecond);
  net_.set_link_latency("client", "echo", 10 * util::kMillisecond);
  const util::TimePoint before = clock_.now();
  (void)call<PingPayload>(net_, "client", "echo", MsgType::kAppRequest,
                          MsgType::kAppReply, PingPayload{1});
  EXPECT_EQ(clock_.now() - before, 20 * util::kMillisecond);
}

TEST_F(SimNetTest, RecordingTapSeesTraffic) {
  net_.attach("echo", echo_);
  RecordingTap tap;
  net_.add_tap(tap);
  (void)call<PingPayload>(net_, "client", "echo", MsgType::kAppRequest,
                          MsgType::kAppReply, PingPayload{1});
  ASSERT_EQ(tap.log().size(), 2u);
  EXPECT_EQ(tap.of_type(MsgType::kAppRequest).size(), 1u);
  EXPECT_EQ(tap.of_type(MsgType::kAppReply).size(), 1u);
}

TEST_F(SimNetTest, ReplayedEnvelopeIsDelivered) {
  net_.attach("echo", echo_);
  RecordingTap tap;
  net_.add_tap(tap);
  (void)call<PingPayload>(net_, "client", "echo", MsgType::kAppRequest,
                          MsgType::kAppReply, PingPayload{5});
  const Envelope captured = tap.of_type(MsgType::kAppRequest).front();
  auto replayed = net_.inject(captured);
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(echo_.handled, 2);  // the node cannot tell — defense is higher up
}

TEST_F(SimNetTest, TamperTapRewritesInFlight) {
  net_.attach("echo", echo_);
  TamperTap tap([](const Envelope& e) -> std::optional<Envelope> {
    if (e.type != MsgType::kAppRequest) return std::nullopt;
    Envelope changed = e;
    changed.payload = wire::encode_to_bytes(PingPayload{100});
    return changed;
  });
  net_.add_tap(tap);
  auto reply = call<PingPayload>(net_, "client", "echo", MsgType::kAppRequest,
                                 MsgType::kAppReply, PingPayload{1});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().value, 101u);  // tampered value went through
}

TEST_F(SimNetTest, ErrorEnvelopeSurfacesStatus) {
  net_.attach("echo", echo_);
  // Send garbage so the node replies with a parse error.
  Envelope bad;
  bad.from = "client";
  bad.to = "echo";
  bad.type = MsgType::kAppRequest;
  bad.payload = {1, 2};
  auto reply = net_.rpc(bad);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(status_of(reply.value()).code(), util::ErrorCode::kParseError);
}

TEST(MsgTypeNames, AllNamed) {
  EXPECT_EQ(msg_type_name(MsgType::kAsRequest), "AsRequest");
  EXPECT_EQ(msg_type_name(MsgType::kCheckDeposit), "CheckDeposit");
  EXPECT_EQ(msg_type_name(MsgType::kPrepayDepositReply),
            "PrepayDepositReply");
}

TEST(Envelope, WireSizeAccountsForHeaders) {
  Envelope e;
  e.from = "ab";
  e.to = "cde";
  e.payload = {1, 2, 3, 4};
  EXPECT_EQ(e.wire_size(), 4 + 2 + 4 + 3 + 2 + 4 + 4u);
}

}  // namespace
}  // namespace rproxy::net
