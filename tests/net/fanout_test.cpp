// FanoutClient: pipelined connections to several servers at once, where a
// slow server must not stall replies that fast servers already produced
// (the gap rpc_pipelined leaves — its collect loop blocks per connection).
#include "net/fanout.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "net/rpc.hpp"
#include "net/tcp_transport.hpp"

namespace rproxy::net {
namespace {

/// Echoes the payload back; sleeps `delay` first (a slow shard).
class EchoNode final : public Node {
 public:
  explicit EchoNode(std::chrono::milliseconds delay = {}) : delay_(delay) {}

  Envelope handle(const Envelope& request) override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    Envelope reply = request;
    reply.from = request.to;
    reply.to = request.from;
    reply.type = MsgType::kAppReply;
    return reply;
  }

 private:
  std::chrono::milliseconds delay_;
};

Envelope request_to(const std::string& server, std::uint8_t tag) {
  Envelope e;
  e.from = "client";
  e.to = server;
  e.type = MsgType::kAppRequest;
  e.payload = {tag};
  return e;
}

TEST(FanoutClient, CollectsFromSeveralServers) {
  EchoNode a, b;
  TcpServer server_a, server_b;
  server_a.attach("a", a);
  server_b.attach("b", b);
  ASSERT_TRUE(server_a.start().is_ok());
  ASSERT_TRUE(server_b.start().is_ok());

  FanoutClient fanout;
  ASSERT_TRUE(fanout.connect("a", "127.0.0.1", server_a.port()).is_ok());
  ASSERT_TRUE(fanout.connect("b", "127.0.0.1", server_b.port()).is_ok());
  ASSERT_TRUE(fanout.send("a", request_to("a", 1)).is_ok());
  ASSERT_TRUE(fanout.send("b", request_to("b", 2)).is_ok());
  ASSERT_TRUE(fanout.send("a", request_to("a", 3)).is_ok());
  EXPECT_EQ(fanout.inflight(), 3u);

  int got_a = 0, got_b = 0;
  std::uint8_t last_a_tag = 0;
  for (int i = 0; i < 3; ++i) {
    auto completion = fanout.next(/*timeout_ms=*/5000);
    ASSERT_TRUE(completion.is_ok()) << completion.status();
    if (completion.value().key == "a") {
      got_a += 1;
      // Per-connection ordering: a's replies arrive 1 then 3.
      EXPECT_GT(completion.value().reply.payload[0], last_a_tag);
      last_a_tag = completion.value().reply.payload[0];
    } else {
      got_b += 1;
      EXPECT_EQ(completion.value().reply.payload[0], 2);
    }
  }
  EXPECT_EQ(got_a, 2);
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(fanout.inflight(), 0u);
}

TEST(FanoutClient, SlowServerDoesNotStallFastReplies) {
  // The satellite's point: request 1 goes to a server that sleeps 300ms,
  // requests 2..4 to a fast server.  next() must hand back the fast
  // replies while the slow one is still cooking — under rpc_pipelined
  // semantics (collect in send order on one connection) they would wait.
  EchoNode slow(std::chrono::milliseconds(300));
  EchoNode fast;
  TcpServer slow_server, fast_server;
  slow_server.attach("slow", slow);
  fast_server.attach("fast", fast);
  ASSERT_TRUE(slow_server.start().is_ok());
  ASSERT_TRUE(fast_server.start().is_ok());

  FanoutClient fanout;
  ASSERT_TRUE(fanout.connect("slow", "127.0.0.1", slow_server.port()).is_ok());
  ASSERT_TRUE(fanout.connect("fast", "127.0.0.1", fast_server.port()).is_ok());
  ASSERT_TRUE(fanout.send("slow", request_to("slow", 1)).is_ok());
  for (std::uint8_t tag = 2; tag <= 4; ++tag) {
    ASSERT_TRUE(fanout.send("fast", request_to("fast", tag)).is_ok());
  }

  // All three fast replies must complete before the slow one.
  for (int i = 0; i < 3; ++i) {
    auto completion = fanout.next(/*timeout_ms=*/5000);
    ASSERT_TRUE(completion.is_ok()) << completion.status();
    EXPECT_EQ(completion.value().key, "fast") << "stalled behind slow server";
  }
  auto last = fanout.next(/*timeout_ms=*/5000);
  ASSERT_TRUE(last.is_ok()) << last.status();
  EXPECT_EQ(last.value().key, "slow");
}

TEST(FanoutClient, NextWithNothingInFlightIsAProtocolError) {
  FanoutClient fanout;
  auto completion = fanout.next(10);
  ASSERT_FALSE(completion.is_ok());
  EXPECT_EQ(completion.status().code(), util::ErrorCode::kProtocolError);
}

TEST(FanoutClient, TimeoutSurfacesWhenNoReplyArrives) {
  // A server that never answers within the window: next() must report
  // kTimeout, leaving the request in flight for a later next().
  EchoNode slow(std::chrono::milliseconds(500));
  TcpServer server;
  server.attach("slow", slow);
  ASSERT_TRUE(server.start().is_ok());

  FanoutClient fanout;
  ASSERT_TRUE(fanout.connect("slow", "127.0.0.1", server.port()).is_ok());
  ASSERT_TRUE(fanout.send("slow", request_to("slow", 1)).is_ok());
  auto timed_out = fanout.next(/*timeout_ms=*/20);
  ASSERT_FALSE(timed_out.is_ok());
  EXPECT_EQ(timed_out.status().code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(fanout.inflight(), 1u);

  auto eventually = fanout.next(/*timeout_ms=*/5000);
  ASSERT_TRUE(eventually.is_ok()) << eventually.status();
  EXPECT_EQ(eventually.value().key, "slow");
}

TEST(FanoutClient, SendToUnknownKeyFails) {
  FanoutClient fanout;
  EXPECT_FALSE(fanout.send("nope", request_to("nope", 1)).is_ok());
}

TEST(FanoutClient, PeerHangupWithRepliesOwedIsUnavailable) {
  EchoNode node;
  auto server = std::make_unique<TcpServer>();
  server->attach("a", node);
  ASSERT_TRUE(server->start().is_ok());

  FanoutClient fanout;
  ASSERT_TRUE(fanout.connect("a", "127.0.0.1", server->port()).is_ok());
  ASSERT_TRUE(fanout.send("a", request_to("a", 1)).is_ok());
  // Drain the first reply so the connection is quiescent, then kill the
  // server and queue another request.
  ASSERT_TRUE(fanout.next(5000).is_ok());
  server.reset();
  if (fanout.send("a", request_to("a", 2)).is_ok()) {
    auto completion = fanout.next(/*timeout_ms=*/5000);
    ASSERT_FALSE(completion.is_ok());
    EXPECT_EQ(completion.status().code(), util::ErrorCode::kUnavailable);
  }
  // Either the send already failed (connection reset) or next() reported
  // the hangup — both surface the dead peer instead of hanging.
}

}  // namespace
}  // namespace rproxy::net
