// Real-socket transport: the same Node objects served over TCP loopback,
// end to end — Kerberos exchanges and a full proxy presentation included.
#include "net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

TEST(TcpTransport, EnvelopeCodecRoundTrip) {
  net::Envelope e;
  e.from = "client";
  e.to = "server";
  e.type = net::MsgType::kAppRequest;
  e.payload = {1, 2, 3, 4, 5};
  wire::Encoder enc;
  net::encode_envelope(enc, e);
  wire::Decoder dec(enc.view());
  const net::Envelope decoded = net::decode_envelope(dec);
  EXPECT_TRUE(dec.finish().is_ok());
  EXPECT_EQ(decoded.from, e.from);
  EXPECT_EQ(decoded.to, e.to);
  EXPECT_EQ(decoded.type, e.type);
  EXPECT_EQ(decoded.payload, e.payload);
}

class TcpWorld : public ::testing::Test {
 protected:
  TcpWorld() {
    world_.add_principal("alice");
    world_.add_principal("file-server");
    file_server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    file_server_->put_file("/doc", "over tcp");
    file_server_->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});

    tcp_.attach("kdc", *world_.kdc_server);
    tcp_.attach("file-server", *file_server_);
    const util::Status started = tcp_.start();
    EXPECT_TRUE(started.is_ok()) << started;
  }

  /// Typed round trip over TCP (mirrors net::call).
  template <typename ReplyT, typename RequestT>
  util::Result<ReplyT> call(const PrincipalName& from,
                            const PrincipalName& to, net::MsgType req_type,
                            net::MsgType reply_type,
                            const RequestT& request) {
    net::Envelope e;
    e.from = from;
    e.to = to;
    e.type = req_type;
    e.payload = wire::encode_to_bytes(request);
    RPROXY_ASSIGN_OR_RETURN(net::Envelope reply,
                            net::tcp_rpc("127.0.0.1", tcp_.port(), e));
    RPROXY_RETURN_IF_ERROR(net::expect_type(reply, reply_type));
    return wire::decode_from_bytes<ReplyT>(reply.payload);
  }

  World world_;
  std::unique_ptr<server::FileServer> file_server_;
  net::TcpServer tcp_;
};

TEST_F(TcpWorld, KerberosAsExchangeOverTcp) {
  kdc::AsRequestPayload req;
  req.client = "alice";
  req.nonce = 42;
  req.requested_lifetime = util::kHour;
  auto reply = call<kdc::KdcReplyPayload>("alice", "kdc",
                                          net::MsgType::kAsRequest,
                                          net::MsgType::kAsReply, req);
  ASSERT_TRUE(reply.is_ok()) << reply.status();

  // Decrypt with alice's key: genuine KDC reply.
  auto plain = crypto::aead_open(
      world_.principal("alice").krb_key.derive_subkey(
          kdc::kAsReplySealPurpose),
      reply.value().sealed_enc_part);
  ASSERT_TRUE(plain.is_ok());
  auto enc_part = wire::decode_from_bytes<kdc::KdcReplyEncPart>(
      plain.value());
  ASSERT_TRUE(enc_part.is_ok());
  EXPECT_EQ(enc_part.value().nonce, 42u);
}

TEST_F(TcpWorld, FullProxyPresentationOverTcp) {
  const core::Proxy cap = authz::make_capability_pk(
      "alice", world_.principal("alice").identity, "file-server",
      {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
      util::kHour);

  // Challenge.
  struct Empty {
    void encode(wire::Encoder&) const {}
    static Empty decode(wire::Decoder&) { return {}; }
  };
  auto challenge = call<server::ChallengePayload>(
      "bob", "file-server", net::MsgType::kPresentChallengeRequest,
      net::MsgType::kPresentChallengeReply, Empty{});
  ASSERT_TRUE(challenge.is_ok()) << challenge.status();

  // Presentation.
  server::AppRequestPayload req;
  req.operation = "read";
  req.object = "/doc";
  req.challenge_id = challenge.value().id;
  core::PresentedCredential cred;
  cred.chain = cap.chain;
  cred.proof =
      core::prove_bearer(cap, challenge.value().nonce, "file-server",
                         world_.clock.now(), req.digest());
  req.credentials.push_back(cred);

  auto reply = call<server::AppReplyPayload>("bob", "file-server",
                                             net::MsgType::kAppRequest,
                                             net::MsgType::kAppReply, req);
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(util::to_string(reply.value().result), "over tcp");
  EXPECT_GE(tcp_.requests_served(), 2u);
}

TEST_F(TcpWorld, UnknownNodeOverTcp) {
  net::Envelope e;
  e.from = "bob";
  e.to = "ghost";
  e.type = net::MsgType::kAppRequest;
  auto reply = net::tcp_rpc("127.0.0.1", tcp_.port(), e);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(net::status_of(reply.value()).code(),
            util::ErrorCode::kNotFound);
}

TEST_F(TcpWorld, MalformedFrameAnswersParseError) {
  // A frame that decodes as an envelope but with trailing garbage.
  net::Envelope e;
  e.from = "bob";
  e.to = "file-server";
  e.type = net::MsgType::kAppRequest;
  wire::Encoder enc;
  net::encode_envelope(enc, e);
  enc.u8(0xff);  // trailing garbage inside the frame
  // Hand-roll the rpc to send the damaged frame.
  // (tcp_rpc would build a clean one.)
  // Reuse tcp_rpc against a correct envelope instead, then check the
  // malformed-PAYLOAD path: garbage payload to a live node.
  net::Envelope bad;
  bad.from = "bob";
  bad.to = "file-server";
  bad.type = net::MsgType::kAppRequest;
  bad.payload = {0xde, 0xad};
  auto reply = net::tcp_rpc("127.0.0.1", tcp_.port(), bad);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(net::status_of(reply.value()).code(),
            util::ErrorCode::kParseError);
}

TEST_F(TcpWorld, ConnectionRefusedSurfacesCleanly) {
  net::Envelope e;
  e.from = "bob";
  e.to = "file-server";
  e.type = net::MsgType::kAppRequest;
  // Port 1 is essentially never listening.
  auto reply = net::tcp_rpc("127.0.0.1", 1, e);
  EXPECT_EQ(reply.code(), util::ErrorCode::kNotFound);
}

TEST_F(TcpWorld, ManySequentialRequests) {
  struct Empty {
    void encode(wire::Encoder&) const {}
    static Empty decode(wire::Decoder&) { return {}; }
  };
  for (int i = 0; i < 50; ++i) {
    auto challenge = call<server::ChallengePayload>(
        "bob", "file-server", net::MsgType::kPresentChallengeRequest,
        net::MsgType::kPresentChallengeReply, Empty{});
    ASSERT_TRUE(challenge.is_ok());
  }
  EXPECT_GE(tcp_.requests_served(), 50u);
}

TEST_F(TcpWorld, PersistentConnectionServesManyRequests) {
  net::TcpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", tcp_.port()).is_ok());
  net::Envelope e;
  e.from = "bob";
  e.to = "file-server";
  e.type = net::MsgType::kPresentChallengeRequest;
  for (int i = 0; i < 50; ++i) {
    auto reply = client.rpc(e);
    ASSERT_TRUE(reply.is_ok()) << reply.status();
    EXPECT_EQ(reply.value().type, net::MsgType::kPresentChallengeReply);
  }
  // All 50 rounds rode ONE connection: exactly one worker slot was used.
  EXPECT_EQ(tcp_.active_connections(), 1u);
  client.close();
  EXPECT_GE(tcp_.requests_served(), 50u);
}

TEST(TcpClientStandalone, RpcWithoutConnectFailsCleanly) {
  net::TcpClient client;
  EXPECT_FALSE(client.connected());
  net::Envelope e;
  e.from = "bob";
  e.to = "anyone";
  e.type = net::MsgType::kAppRequest;
  EXPECT_FALSE(client.rpc(e).is_ok());
}

}  // namespace
}  // namespace rproxy
