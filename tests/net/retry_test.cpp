// RetryPolicy unit tests: the backoff schedule, the transport-error
// classification that decides WHAT gets retried, give-up behavior, and the
// end-to-end loop against a scripted flaky node.
#include <gtest/gtest.h>

#include <vector>

#include "net/retry.hpp"
#include "net/rpc.hpp"
#include "util/clock.hpp"

namespace rproxy {
namespace {

using util::ErrorCode;

TEST(RetryPolicy, BackoffScheduleDoublesAndCaps) {
  net::RetryPolicy p;
  p.initial_backoff = 5 * util::kMillisecond;
  p.multiplier = 2.0;
  p.max_backoff = 35 * util::kMillisecond;

  struct Row {
    int attempt;
    util::Duration expected;
  };
  const Row rows[] = {
      {2, 5 * util::kMillisecond},   // first retry waits the initial backoff
      {3, 10 * util::kMillisecond},  // then doubles
      {4, 20 * util::kMillisecond},
      {5, 35 * util::kMillisecond},  // 40ms clipped to max_backoff
      {6, 35 * util::kMillisecond},  // and stays clipped
  };
  for (const Row& row : rows) {
    SCOPED_TRACE("attempt " + std::to_string(row.attempt));
    EXPECT_EQ(p.backoff_before(row.attempt), row.expected);
  }
}

TEST(RetryPolicy, OnlyTransportErrorsAreRetryable) {
  struct Row {
    ErrorCode code;
    bool retryable;
  };
  const Row rows[] = {
      // Transport class: the outcome is unknown, a retry can fix it.
      {ErrorCode::kTimeout, true},
      {ErrorCode::kUnavailable, true},
      {ErrorCode::kNotFound, true},
      // Deterministic verdicts: retrying re-asks a question already
      // answered (and a retried transfer could move money twice).
      {ErrorCode::kPermissionDenied, false},
      {ErrorCode::kProtocolError, false},
      {ErrorCode::kBadSignature, false},
      {ErrorCode::kReplay, false},
      {ErrorCode::kInsufficientFunds, false},
      {ErrorCode::kExpired, false},
      {ErrorCode::kParseError, false},
      {ErrorCode::kInternal, false},
  };
  net::RetryPolicy p;
  p.max_attempts = 4;
  for (const Row& row : rows) {
    SCOPED_TRACE(util::error_code_name(row.code));
    const util::Status s = util::fail(row.code, "scripted");
    EXPECT_EQ(net::RetryPolicy::transport_error(s), row.retryable);
    EXPECT_EQ(p.should_retry(s, 1), row.retryable);
  }
}

TEST(RetryPolicy, ShouldRetryStopsAtMaxAttempts) {
  net::RetryPolicy p;
  p.max_attempts = 3;
  const util::Status timeout = util::fail(ErrorCode::kTimeout, "t");
  EXPECT_TRUE(p.should_retry(timeout, 1));
  EXPECT_TRUE(p.should_retry(timeout, 2));
  EXPECT_FALSE(p.should_retry(timeout, 3));  // attempt 3 was the last
  EXPECT_FALSE(net::RetryPolicy::none().should_retry(timeout, 1));
}

/// Scripted flaky node: fails with `fail_code` for the first
/// `failures_before_success` requests, then echoes successfully.
class FlakyNode final : public net::Node {
 public:
  FlakyNode(int failures_before_success, ErrorCode fail_code)
      : failures_(failures_before_success), fail_code_(fail_code) {}

  net::Envelope handle(const net::Envelope& request) override {
    attempts += 1;
    if (attempts <= failures_) {
      return net::make_error_reply(request,
                                   util::fail(fail_code_, "scripted fault"));
    }
    net::Envelope reply;
    reply.type = net::MsgType::kAppReply;
    reply.payload = request.payload;
    return reply;
  }

  int attempts = 0;

 private:
  int failures_;
  ErrorCode fail_code_;
};

struct EchoPayload {
  std::uint64_t n = 0;
  void encode(wire::Encoder& enc) const { enc.u64(n); }
  static EchoPayload decode(wire::Decoder& dec) {
    EchoPayload p;
    p.n = dec.u64();
    return p;
  }
};

TEST(RetryLoop, FlakyNodeSucceedsOnAttemptK) {
  util::SimClock clock;
  net::SimNet net(clock);
  net.set_default_latency(0);
  FlakyNode flaky(/*failures_before_success=*/2, ErrorCode::kUnavailable);
  net.attach("flaky", flaky);

  net::RetryPolicy p;
  p.max_attempts = 4;
  p.initial_backoff = 5 * util::kMillisecond;
  const util::TimePoint before = clock.now();
  auto reply = net::retry_call<EchoPayload>(
      net, p, "client", "flaky", net::MsgType::kAppRequest,
      net::MsgType::kAppReply, EchoPayload{99});
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(reply.value().n, 99u);
  EXPECT_EQ(flaky.attempts, 3);
  // Two waits were charged to the simulated clock: 5ms then 10ms.
  EXPECT_EQ(clock.now() - before, 15 * util::kMillisecond);
}

TEST(RetryLoop, GivesUpAfterMaxAttempts) {
  util::SimClock clock;
  net::SimNet net(clock);
  FlakyNode flaky(/*failures_before_success=*/100, ErrorCode::kTimeout);
  net.attach("flaky", flaky);

  net::RetryPolicy p;
  p.max_attempts = 3;
  auto reply = net::retry_call<EchoPayload>(
      net, p, "client", "flaky", net::MsgType::kAppRequest,
      net::MsgType::kAppReply, EchoPayload{1});
  EXPECT_EQ(reply.code(), ErrorCode::kTimeout);
  EXPECT_EQ(flaky.attempts, 3);
}

TEST(RetryLoop, ProtocolErrorsAreNeverRetried) {
  util::SimClock clock;
  net::SimNet net(clock);
  FlakyNode flaky(/*failures_before_success=*/100,
                  ErrorCode::kPermissionDenied);
  net.attach("flaky", flaky);

  net::RetryPolicy p;
  p.max_attempts = 8;
  auto reply = net::retry_call<EchoPayload>(
      net, p, "client", "flaky", net::MsgType::kAppRequest,
      net::MsgType::kAppReply, EchoPayload{1});
  EXPECT_EQ(reply.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(flaky.attempts, 1);  // the verdict is final, one attempt only
}

TEST(RetryLoop, WithRetriesWorksOverStatusReturningFn) {
  util::SimClock clock;
  net::SimNet net(clock);
  net::RetryPolicy p;
  p.max_attempts = 5;

  int calls = 0;
  auto result =
      net::with_retries(net, p, [&]() -> util::Result<int> {
        calls += 1;
        if (calls < 4) return util::fail(ErrorCode::kUnavailable, "down");
        return calls;
      });
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 4);
  EXPECT_EQ(calls, 4);
}

}  // namespace
}  // namespace rproxy
