// Failure injection: link cuts must fail operations cleanly — no double
// credits, no stuck state — and restored links must work again.
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

TEST(LinkFailure, RpcOverFailedLinkFails) {
  World world;
  world.add_principal("alice");
  kdc::KdcClient client = world.kdc_client("alice");
  world.net.fail_link("alice", World::kKdcName);
  EXPECT_EQ(client.authenticate(util::kHour).code(),
            util::ErrorCode::kNotFound);
  world.net.restore_link("alice", World::kKdcName);
  EXPECT_TRUE(client.authenticate(util::kHour).is_ok());
}

TEST(LinkFailure, OtherLinksUnaffected) {
  World world;
  world.add_principal("alice");
  world.add_principal("bob");
  world.net.fail_link("bob", World::kKdcName);
  kdc::KdcClient alice = world.kdc_client("alice");
  EXPECT_TRUE(alice.authenticate(util::kHour).is_ok());
}

TEST(LinkFailure, ClearingBouncesCleanlyWhenDraweeUnreachable) {
  // The payee's bank credits provisionally, cannot reach the drawee, and
  // must revert — no money is created.
  World world;
  world.add_principal("client");
  world.add_principal("merchant");
  world.add_principal("bank1");
  world.add_principal("bank2");
  accounting::AccountingServer bank1(world.accounting_config("bank1"));
  accounting::AccountingServer bank2(world.accounting_config("bank2"));
  world.net.attach("bank1", bank1);
  world.net.attach("bank2", bank2);
  bank2.open_account("client-acct", "client",
                     accounting::Balances{{"usd", 100}});
  bank1.open_account("merchant-acct", "merchant");

  const accounting::Check check = accounting::write_check(
      "client", world.principal("client").identity,
      AccountId{"bank2", "client-acct"}, "merchant", "usd", 10, 1,
      world.clock.now(), util::kHour);

  world.net.fail_link("bank1", "bank2");
  auto merchant = world.accounting_client("merchant");
  auto result = merchant.endorse_and_deposit("bank1", check,
                                             "merchant-acct");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(bank1.account("merchant-acct")->balances().balance("usd"), 0);
  EXPECT_EQ(bank1.uncollected_total(), 0);
  EXPECT_EQ(bank2.account("client-acct")->balances().balance("usd"), 100);

  // After the partition heals, the SAME check still clears (it never
  // reached the drawee, so the check number is unspent).
  world.net.restore_link("bank1", "bank2");
  auto retry =
      merchant.endorse_and_deposit("bank1", check, "merchant-acct");
  ASSERT_TRUE(retry.is_ok()) << retry.status();
  EXPECT_EQ(bank1.account("merchant-acct")->balances().balance("usd"), 10);
}

TEST(LinkFailure, ProxyPresentationsSurviveThirdPartyOutages) {
  // The paper's availability point: once granted, a proxy keeps working
  // even with the KDC and name server down — verification is offline.
  World world;
  world.add_principal("alice");
  world.add_principal("file-server");
  server::FileServer file_server(world.end_server_config("file-server"));
  file_server.put_file("/doc", "contents");
  file_server.acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
  world.net.attach("file-server", file_server);

  const core::Proxy cap = authz::make_capability_pk(
      "alice", world.principal("alice").identity, "file-server",
      {core::ObjectRights{"/doc", {"read"}}}, world.clock.now(),
      util::kHour);

  // Take the whole infrastructure down.
  world.net.detach(World::kKdcName);
  world.net.detach(World::kNameServerName);

  server::AppClient bob(world.net, world.clock, "bob");
  auto result = bob.invoke_with_proxy("file-server", cap, "read", "/doc");
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(util::to_string(result.value()), "contents");
}

}  // namespace
}  // namespace rproxy
