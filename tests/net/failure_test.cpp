// Failure injection: link cuts must fail operations cleanly — no double
// credits, no stuck state — and restored links must work again.  Fault-plan
// actions (transient windows, duplicates, drops) must be observable in
// NetStats and must map to the right error codes.
#include <gtest/gtest.h>

#include "net/fault.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

TEST(LinkFailure, RpcOverFailedLinkFails) {
  World world;
  world.add_principal("alice");
  kdc::KdcClient client = world.kdc_client("alice");
  world.net.fail_link("alice", World::kKdcName);
  // A cut link is an outage (kUnavailable), NOT kNotFound — that code is
  // reserved for "no such node was ever attached".
  EXPECT_EQ(client.authenticate(util::kHour).code(),
            util::ErrorCode::kUnavailable);
  world.net.restore_link("alice", World::kKdcName);
  EXPECT_TRUE(client.authenticate(util::kHour).is_ok());
}

TEST(LinkFailure, CutLinkDistinctFromUnknownNode) {
  World world;
  world.add_principal("alice");
  // Unknown destination: kNotFound.
  EXPECT_EQ(world.net.rpc("alice", "ghost", net::MsgType::kAppRequest, {})
                .code(),
            util::ErrorCode::kNotFound);
  // Cut link to a real node: kUnavailable.
  world.net.fail_link("alice", World::kKdcName);
  EXPECT_EQ(world.net
                .rpc("alice", World::kKdcName, net::MsgType::kAppRequest, {})
                .code(),
            util::ErrorCode::kUnavailable);
}

TEST(LinkFailure, OtherLinksUnaffected) {
  World world;
  world.add_principal("alice");
  world.add_principal("bob");
  world.net.fail_link("bob", World::kKdcName);
  kdc::KdcClient alice = world.kdc_client("alice");
  EXPECT_TRUE(alice.authenticate(util::kHour).is_ok());
}

TEST(LinkFailure, ClearingBouncesCleanlyWhenDraweeUnreachable) {
  // The payee's bank credits provisionally, cannot reach the drawee, and
  // must revert — no money is created.
  World world;
  world.add_principal("client");
  world.add_principal("merchant");
  world.add_principal("bank1");
  world.add_principal("bank2");
  accounting::AccountingServer bank1(world.accounting_config("bank1"));
  accounting::AccountingServer bank2(world.accounting_config("bank2"));
  world.net.attach("bank1", bank1);
  world.net.attach("bank2", bank2);
  bank2.open_account("client-acct", "client",
                     accounting::Balances{{"usd", 100}});
  bank1.open_account("merchant-acct", "merchant");

  const accounting::Check check = accounting::write_check(
      "client", world.principal("client").identity,
      AccountId{"bank2", "client-acct"}, "merchant", "usd", 10, 1,
      world.clock.now(), util::kHour);

  world.net.fail_link("bank1", "bank2");
  auto merchant = world.accounting_client("merchant");
  auto result = merchant.endorse_and_deposit("bank1", check,
                                             "merchant-acct");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(bank1.account("merchant-acct")->balances().balance("usd"), 0);
  EXPECT_EQ(bank1.uncollected_total(), 0);
  EXPECT_EQ(bank2.account("client-acct")->balances().balance("usd"), 100);

  // After the partition heals, the SAME check still clears (it never
  // reached the drawee, so the check number is unspent).
  world.net.restore_link("bank1", "bank2");
  auto retry =
      merchant.endorse_and_deposit("bank1", check, "merchant-acct");
  ASSERT_TRUE(retry.is_ok()) << retry.status();
  EXPECT_EQ(bank1.account("merchant-acct")->balances().balance("usd"), 10);
}

TEST(LinkFailure, ProxyPresentationsSurviveThirdPartyOutages) {
  // The paper's availability point: once granted, a proxy keeps working
  // even with the KDC and name server down — verification is offline.
  World world;
  world.add_principal("alice");
  world.add_principal("file-server");
  server::FileServer file_server(world.end_server_config("file-server"));
  file_server.put_file("/doc", "contents");
  file_server.acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
  world.net.attach("file-server", file_server);

  const core::Proxy cap = authz::make_capability_pk(
      "alice", world.principal("alice").identity, "file-server",
      {core::ObjectRights{"/doc", {"read"}}}, world.clock.now(),
      util::kHour);

  // Take the whole infrastructure down.
  world.net.detach(World::kKdcName);
  world.net.detach(World::kNameServerName);

  server::AppClient bob(world.net, world.clock, "bob");
  auto result = bob.invoke_with_proxy("file-server", cap, "read", "/doc");
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(util::to_string(result.value()), "contents");
}

/// Minimal node counting how many times it was invoked.
class CountingEchoNode final : public net::Node {
 public:
  net::Envelope handle(const net::Envelope& request) override {
    handled += 1;
    net::Envelope reply;
    reply.type = net::MsgType::kAppReply;
    reply.payload = request.payload;
    return reply;
  }
  int handled = 0;
};

TEST(FaultPlan, TransientUnreachableWindowClosesWithTime) {
  util::SimClock clock;
  net::SimNet net(clock);
  CountingEchoNode echo;
  net.attach("echo", echo);

  // Scripted window: deterministic, independent of plan probabilities.
  net.open_unreachable_window("client", "echo", 100 * util::kMillisecond);
  auto during = net.rpc("client", "echo", net::MsgType::kAppRequest, {});
  EXPECT_EQ(during.code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(net.stats().faults_unreachable, 1u);
  EXPECT_EQ(echo.handled, 0);

  // The window closes once simulated time passes it.
  clock.advance(101 * util::kMillisecond);
  auto after = net.rpc("client", "echo", net::MsgType::kAppRequest, {});
  EXPECT_TRUE(after.is_ok()) << after.status();
  EXPECT_EQ(echo.handled, 1);
  EXPECT_EQ(net.stats().faults_unreachable, 1u);
}

TEST(FaultPlan, UnreachableFaultOpensWindowAndCounts) {
  util::SimClock clock;
  net::SimNet net(clock);
  CountingEchoNode echo;
  net.attach("echo", echo);

  net::FaultSpec spec;
  spec.unreachable = 1.0;
  spec.unreachable_window = 50 * util::kMillisecond;
  net.set_fault_plan(net::FaultPlan::uniform(7, spec));

  EXPECT_EQ(net.rpc("client", "echo", net::MsgType::kAppRequest, {}).code(),
            util::ErrorCode::kUnavailable);
  EXPECT_GE(net.stats().faults_unreachable, 1u);
  EXPECT_EQ(echo.handled, 0);

  // Clearing the plan drops the open window.
  net.clear_fault_plan();
  EXPECT_TRUE(
      net.rpc("client", "echo", net::MsgType::kAppRequest, {}).is_ok());
  EXPECT_EQ(echo.handled, 1);
}

TEST(FaultPlan, DuplicateDeliveryInvokesHandlerTwice) {
  util::SimClock clock;
  net::SimNet net(clock);
  CountingEchoNode echo;
  net.attach("echo", echo);

  net::FaultSpec spec;
  spec.duplicate = 1.0;
  net.set_fault_plan(net::FaultPlan::uniform(7, spec));

  auto reply = net.rpc("client", "echo", net::MsgType::kAppRequest, {});
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(echo.handled, 2);  // original + duplicate
  EXPECT_EQ(net.stats().faults_duplicated, 1u);
  // Request, duplicate, and reply all crossed the wire.
  EXPECT_EQ(net.stats().messages, 3u);
}

TEST(FaultPlan, DropRequestSurfacesTimeoutWithoutInvokingHandler) {
  util::SimClock clock;
  net::SimNet net(clock);
  CountingEchoNode echo;
  net.attach("echo", echo);

  net::FaultSpec spec;
  spec.drop_request = 1.0;
  net.set_fault_plan(net::FaultPlan::uniform(7, spec));

  auto reply = net.rpc("client", "echo", net::MsgType::kAppRequest, {});
  EXPECT_EQ(reply.code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(echo.handled, 0);
  EXPECT_EQ(net.stats().faults_dropped_requests, 1u);
}

TEST(FaultPlan, DropReplyRunsHandlerButSurfacesTimeout) {
  util::SimClock clock;
  net::SimNet net(clock);
  CountingEchoNode echo;
  net.attach("echo", echo);

  net::FaultSpec spec;
  spec.drop_reply = 1.0;
  net.set_fault_plan(net::FaultPlan::uniform(7, spec));

  auto reply = net.rpc("client", "echo", net::MsgType::kAppRequest, {});
  EXPECT_EQ(reply.code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(echo.handled, 1);  // the dangerous case: state changed
  EXPECT_EQ(net.stats().faults_dropped_replies, 1u);
}

TEST(FaultPlan, ExtraDelayChargesClockAndCounts) {
  util::SimClock clock;
  net::SimNet net(clock);
  CountingEchoNode echo;
  net.attach("echo", echo);
  net.set_default_latency(0);

  net::FaultSpec spec;
  spec.extra_delay = 1.0;
  spec.extra_delay_max = 5 * util::kMillisecond;
  net.set_fault_plan(net::FaultPlan::uniform(7, spec));

  const util::TimePoint before = clock.now();
  auto reply = net.rpc("client", "echo", net::MsgType::kAppRequest, {});
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_GT(clock.now(), before);
  EXPECT_LE(clock.now() - before, 5 * util::kMillisecond);
  EXPECT_EQ(net.stats().faults_extra_delays, 1u);
}

TEST(FaultPlan, SameSeedSameFaultSequence) {
  net::FaultSpec spec;
  spec.drop_request = 0.3;
  spec.drop_reply = 0.3;
  spec.duplicate = 0.2;

  const auto run = [&](std::uint64_t seed) {
    util::SimClock clock;
    net::SimNet net(clock);
    CountingEchoNode echo;
    net.attach("echo", echo);
    net.set_fault_plan(net::FaultPlan::uniform(seed, spec));
    std::vector<util::ErrorCode> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(
          net.rpc("client", "echo", net::MsgType::kAppRequest, {}).code());
    }
    return outcomes;
  };

  EXPECT_EQ(run(42), run(42));    // replayable
  EXPECT_NE(run(42), run(1043));  // and actually seed-dependent
}

}  // namespace
}  // namespace rproxy
