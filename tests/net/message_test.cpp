#include "net/message.hpp"

#include <gtest/gtest.h>

namespace rproxy::net {
namespace {

TEST(ErrorPayload, RoundTripsStatus) {
  const util::Status original =
      util::fail(util::ErrorCode::kExpired, "the ticket expired");
  const ErrorPayload payload = ErrorPayload::from_status(original);
  auto decoded =
      wire::decode_from_bytes<ErrorPayload>(wire::encode_to_bytes(payload));
  ASSERT_TRUE(decoded.is_ok());
  const util::Status restored = decoded.value().to_status();
  EXPECT_EQ(restored.code(), util::ErrorCode::kExpired);
  EXPECT_EQ(restored.message(), "the ticket expired");
}

TEST(ErrorPayload, OkStatus) {
  const ErrorPayload payload = ErrorPayload::from_status(util::Status::ok());
  EXPECT_TRUE(payload.to_status().is_ok());
}

TEST(MakeErrorReply, SwapsEndpoints) {
  Envelope req;
  req.from = "client";
  req.to = "server";
  req.type = MsgType::kAppRequest;
  const Envelope reply = make_error_reply(
      req, util::fail(util::ErrorCode::kNotFound, "x"));
  EXPECT_EQ(reply.from, "server");
  EXPECT_EQ(reply.to, "client");
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(status_of(reply).code(), util::ErrorCode::kNotFound);
}

TEST(StatusOf, NonErrorEnvelopeIsOk) {
  Envelope e;
  e.type = MsgType::kAppReply;
  EXPECT_TRUE(status_of(e).is_ok());
}

TEST(StatusOf, MalformedErrorPayload) {
  Envelope e;
  e.type = MsgType::kError;
  e.payload = {0x01};  // truncated
  EXPECT_EQ(status_of(e).code(), util::ErrorCode::kParseError);
}

TEST(MsgTypeNames, NewTypesNamed) {
  EXPECT_EQ(msg_type_name(MsgType::kCashierRequest), "CashierRequest");
  EXPECT_EQ(msg_type_name(MsgType::kRoleCreate), "RoleCreate");
  EXPECT_EQ(msg_type_name(MsgType::kRoleLookupReply), "RoleLookupReply");
}

}  // namespace
}  // namespace rproxy::net
