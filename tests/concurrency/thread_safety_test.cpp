// Thread-safety of the stateful server caches: hammered from many threads,
// the single-use guarantees must hold EXACTLY (no double acceptance, no
// lost entries, no crashes under TSAN/ASAN).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/accept_once_cache.hpp"
#include "core/challenge_registry.hpp"
#include "crypto/random.hpp"
#include "kdc/replay_cache.hpp"
#include "wire/encoder.hpp"

namespace rproxy {
namespace {

constexpr int kThreads = 8;
constexpr int kPerThread = 200;

TEST(ThreadSafety, ReplayCacheAcceptsEachItemExactlyOnce) {
  kdc::ReplayCache cache;
  std::atomic<int> accepted{0};
  // All threads race to insert the SAME kPerThread items.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        wire::Encoder enc;
        enc.u32(static_cast<std::uint32_t>(i));
        if (cache.check_and_insert(enc.view(), 1000 * util::kSecond, 0)
                .is_ok()) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(accepted.load(), kPerThread);  // each item won exactly once
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kPerThread));
}

TEST(ThreadSafety, AcceptOnceCacheSingleWinnerPerIdentifier) {
  core::AcceptOnceCache cache;
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t id = 0; id < kPerThread; ++id) {
        if (cache.check_and_insert("grantor", id, 1000 * util::kSecond, 0)
                .is_ok()) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(accepted.load(), kPerThread);
  for (std::uint64_t id = 0; id < kPerThread; ++id) {
    EXPECT_TRUE(cache.seen("grantor", id, 0));
  }
}

TEST(ThreadSafety, ChallengeRegistrySingleUseUnderContention) {
  core::ChallengeRegistry registry;
  // Issue challenges from one thread while all threads race to take each.
  std::vector<core::ChallengeRegistry::Challenge> issued;
  for (int i = 0; i < kPerThread; ++i) issued.push_back(registry.issue(0));

  std::atomic<int> taken{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (const auto& challenge : issued) {
        if (registry.take(challenge.id, 0).is_ok()) taken.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(taken.load(), kPerThread);  // each challenge consumed once
  EXPECT_EQ(registry.outstanding(), 0u);
}

TEST(ThreadSafety, MixedIssueAndTake) {
  core::ChallengeRegistry registry;
  std::atomic<bool> stop{false};
  std::atomic<int> issued{0}, consumed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads / 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        const auto c = registry.issue(0);
        issued.fetch_add(1);
        if (registry.take(c.id, 0).is_ok()) consumed.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  // Every challenge issued by a thread was immediately consumable by it
  // regardless of interleaving with others.
  EXPECT_EQ(issued.load(), consumed.load());
  EXPECT_GT(issued.load(), 0);
}

}  // namespace
}  // namespace rproxy
