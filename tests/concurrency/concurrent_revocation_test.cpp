// Revocation registry under fire: verifier threads doing warm cache
// lookups race writer threads bumping epochs, advancing cutoffs, and
// listing certificates.  Run under -fsanitize=thread
// (RPROXY_SANITIZE=thread) to prove the lock-free version fast path and
// the mutation path are race-free.
//
// Functional invariants checked while racing:
//   * a verify never crashes or returns garbage — every outcome is either
//     kOk or kRevoked;
//   * once a grantor's cutoff is published, every LATER verify of its
//     pre-cutoff chain rejects (no resurrection);
//   * listener callbacks observe each event exactly once.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/revocation.hpp"
#include "core/verifier.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

TEST(ConcurrentRevocation, ReadersRaceWriters) {
  World world;
  world.add_principal("file-server");
  constexpr int kGrantors = 4;
  constexpr int kReaderThreads = 4;
  constexpr int kRoundsPerGrantor = 50;

  std::vector<PrincipalName> grantors;
  std::vector<core::Proxy> proxies;
  for (int i = 0; i < kGrantors; ++i) {
    const PrincipalName name = "grantor-" + std::to_string(i);
    grantors.push_back(name);
    world.add_principal(name);
    proxies.push_back(core::grant_pk_proxy(
        name, world.principal(name).identity, core::RestrictionSet{},
        world.clock.now(), 8 * util::kHour));
  }

  core::ProxyVerifier::Config vc;
  vc.server_name = "file-server";
  vc.resolver = &world.resolver;
  vc.pk_root = world.name_server.root_key();
  vc.verify_cache_capacity = 1024;
  vc.verify_cache_ttl = 8 * util::kHour;
  vc.revocation = &world.revocation;
  const core::ProxyVerifier verifier(std::move(vc));
  const util::TimePoint now = world.clock.now();
  for (const core::Proxy& p : proxies) {
    ASSERT_TRUE(verifier.verify_chain(p.chain, now).is_ok());
  }

  std::atomic<std::uint64_t> events{0};
  const std::uint64_t token = world.revocation.add_listener(
      [&events](const core::RevocationRegistry::Event&) {
        events.fetch_add(1, std::memory_order_relaxed);
      });

  // Writers advance each grantor's epoch; the LAST round publishes the
  // cutoff that kills the grantor's proxy.
  std::atomic<bool> stop{false};
  std::vector<std::atomic<bool>> cut(kGrantors);
  for (auto& c : cut) c.store(false);

  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> verifies{0};
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      int i = t % kGrantors;
      while (!stop.load(std::memory_order_acquire)) {
        i = (i + 1) % kGrantors;
        const bool was_cut = cut[static_cast<std::size_t>(i)].load(
            std::memory_order_acquire);
        auto result = verifier.verify_chain(proxies[static_cast<std::size_t>(i)].chain, now);
        verifies.fetch_add(1, std::memory_order_relaxed);
        if (result.is_ok()) {
          // Allowed only while the cutoff was not yet published when we
          // started the verify.
          EXPECT_FALSE(was_cut) << grantors[static_cast<std::size_t>(i)];
        } else {
          EXPECT_EQ(result.status().code(), util::ErrorCode::kRevoked);
        }
      }
    });
  }
  for (int g = 0; g < kGrantors; ++g) {
    threads.emplace_back([&, g] {
      for (int round = 0; round < kRoundsPerGrantor; ++round) {
        world.revocation.bump(grantors[static_cast<std::size_t>(g)]);
      }
      // Cut strictly after every grant (issued_at < now + 1), THEN raise
      // the flag: a reader that saw the flag before verifying must find
      // the cutoff already published.
      world.revocation.revoke_grants_before(
          grantors[static_cast<std::size_t>(g)], now + 1);
      cut[static_cast<std::size_t>(g)].store(true,
                                             std::memory_order_release);
    });
  }
  for (int g = 0; g < kGrantors; ++g) {
    threads[static_cast<std::size_t>(kReaderThreads + g)].join();
  }
  // Let readers observe the final state a little, then stop them.
  for (int i = 0; i < kGrantors; ++i) {
    EXPECT_EQ(verifier.verify_chain(proxies[static_cast<std::size_t>(i)].chain, now)
                  .status()
                  .code(),
              util::ErrorCode::kRevoked);
  }
  stop.store(true, std::memory_order_release);
  for (int t = 0; t < kReaderThreads; ++t) {
    threads[static_cast<std::size_t>(t)].join();
  }
  world.revocation.remove_listener(token);

  // Every mutation notified exactly once: kRoundsPerGrantor bumps plus one
  // cutoff per grantor.
  EXPECT_EQ(events.load(),
            static_cast<std::uint64_t>(kGrantors * (kRoundsPerGrantor + 1)));
  EXPECT_GT(verifies.load(), 0u);
  const core::RevocationStats stats = world.revocation.stats();
  EXPECT_EQ(stats.epoch_bumps,
            static_cast<std::uint64_t>(kGrantors * (kRoundsPerGrantor + 1)));
  EXPECT_EQ(stats.grantor_cuts, static_cast<std::uint64_t>(kGrantors));
}

TEST(ConcurrentRevocation, SnapshotsStayConsistentUnderMutation) {
  // snapshot_epochs/epochs_current racing writers: a snapshot taken while
  // nothing mutated must stay current; any bump of a recorded grantor must
  // eventually flip it stale, and it must never flip back.
  core::RevocationRegistry registry;
  const std::vector<PrincipalName> grantors{"a", "b", "c"};

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 2000 && !stop.load(); ++i) {
      registry.bump(grantors[static_cast<std::size_t>(i) % grantors.size()]);
    }
    stop.store(true);
  });

  while (!stop.load(std::memory_order_acquire)) {
    std::vector<std::pair<PrincipalName, std::uint64_t>> recorded;
    const std::uint64_t version = registry.snapshot_epochs(grantors, recorded);
    ASSERT_EQ(recorded.size(), grantors.size());
    if (registry.version() == version) {
      // No mutation since the snapshot ⇒ it must read as current.
      if (registry.epochs_current(recorded)) continue;
      // A mutation may have slipped between the two reads; only a version
      // change excuses staleness.
      EXPECT_NE(registry.version(), version);
    }
  }
  writer.join();
}

}  // namespace
}  // namespace rproxy
