// Failover re-provisioning under threads (TSan coverage, see
// .github/workflows/ci.yml): writers drive group commit — each acked reply
// passing through the swappable replication barrier — WHILE another thread
// keeps re-arming that barrier with fresh JournalShippers over changing
// standby sets (what every FailoverCoordinator heal does) and a third
// compacts the journal underneath them.  The shared_ptr barrier swap must
// be race-free and never strand an in-flight request on a freed shipper.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accounting/clearing.hpp"
#include "accounting/replication/journal_shipper.hpp"
#include "accounting/replication/standby.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"

namespace rproxy {
namespace {

using accounting::AccountingServer;
using accounting::Balances;
using accounting::replication::JournalShipper;
using accounting::replication::StandbyReplayer;
using rproxy::testing::World;

TEST(ConcurrentFailover, BarrierReArmRacesGroupCommitAndCheckpoints) {
  World world;
  rproxy::testing::TempDir tmp;
  const crypto::SymmetricKey key = crypto::SymmetricKey::generate();
  world.add_principal("bank");
  world.add_principal("bank-r1");
  world.add_principal("bank-r2");
  world.add_principal("alice");

  auto config = world.accounting_config("bank");
  config.storage_dir = tmp.sub("bank");
  config.storage_key = key;
  config.fsync_policy = storage::FsyncPolicy::kGroup;
  AccountingServer primary(std::move(config));
  ASSERT_TRUE(primary.recover().is_ok());
  world.net.attach("bank", primary);
  primary.open_account("a1", "alice", Balances{{"usd", 1'000'000}});
  primary.open_account("a2", "alice", Balances{{"usd", 1'000'000}});

  std::vector<std::unique_ptr<AccountingServer>> replicas;
  std::vector<std::unique_ptr<StandbyReplayer>> standbys;
  for (const char* name : {"bank-r1", "bank-r2"}) {
    replicas.push_back(
        std::make_unique<AccountingServer>(world.accounting_config(name)));
    StandbyReplayer::Config rc;
    rc.name = name;
    rc.primary = "bank";
    rc.server = replicas.back().get();
    rc.clock = &world.clock;
    rc.storage_key = key;
    standbys.push_back(std::make_unique<StandbyReplayer>(std::move(rc)));
    world.net.attach(name, *standbys.back());
  }
  const auto make_shipper = [&](std::vector<PrincipalName> names) {
    JournalShipper::Config sc;
    sc.primary = &primary;
    sc.net = &world.net;
    sc.standbys = std::move(names);
    return std::make_shared<JournalShipper>(std::move(sc));
  };
  const auto arm = [&](std::shared_ptr<JournalShipper> shipper) {
    // The heal-loop idiom: the barrier lambda OWNS its shipper, so a
    // request that loaded the old barrier keeps the old shipper alive
    // across the swap.
    primary.set_replication_barrier([shipper](std::uint64_t lsn) {
      return shipper->ship_until(lsn);
    });
  };
  arm(make_shipper({"bank-r1", "bank-r2"}));

  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 40;
  std::atomic<bool> done{false};
  std::atomic<int> transfer_failures{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto client = world.accounting_client("alice");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const bool forward = (w + i) % 2 == 0;
        if (!client
                 .transfer("bank", forward ? "a1" : "a2",
                           forward ? "a2" : "a1", "usd", 1)
                 .is_ok()) {
          transfer_failures.fetch_add(1);
        }
      }
    });
  }
  // Re-provisioning loop: every few milliseconds the barrier is re-armed
  // with a fresh shipper over a different standby set, racing the writers'
  // barrier loads and each other's shipper teardown.
  std::thread healer([&] {
    int round = 0;
    while (!done.load()) {
      switch (round++ % 3) {
        case 0: arm(make_shipper({"bank-r1"})); break;
        case 1: arm(make_shipper({"bank-r2"})); break;
        default: arm(make_shipper({"bank-r1", "bank-r2"})); break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Checkpoints compact the journal underneath whichever shipper is live,
  // forcing fresh shippers (acked 0) onto the snapshot-bootstrap path.
  std::thread checkpointer([&] {
    while (!done.load()) {
      (void)primary.checkpoint();
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  for (auto& writer : writers) writer.join();
  done.store(true);
  healer.join();
  checkpointer.join();
  EXPECT_EQ(transfer_failures.load(), 0);

  // Quiesced: one final full-set shipper converges both replicas on the
  // primary's durable state.
  auto final_shipper = make_shipper({"bank-r1", "bank-r2"});
  ASSERT_TRUE(
      final_shipper->ship_until(primary.journal_durable_lsn()).is_ok());
  for (const auto& standby : standbys) {
    EXPECT_EQ(standby->received_lsn(), primary.journal_durable_lsn());
    EXPECT_EQ(standby->apply_failures(), 0u);
  }
  for (const auto& replica : replicas) {
    const auto* a1 = replica->account("a1");
    const auto* a2 = replica->account("a2");
    ASSERT_NE(a1, nullptr);
    ASSERT_NE(a2, nullptr);
    EXPECT_EQ(a1->balances().balance("usd") + a2->balances().balance("usd"),
              2'000'000);
    EXPECT_EQ(a1->balances().balance("usd"),
              primary.account("a1")->balances().balance("usd"));
  }
}

}  // namespace
}  // namespace rproxy
