// Concurrent dispatch over real TCP: many client threads, many nodes, one
// server with no global dispatch lock — parameterized over BOTH transports
// (the thread-pool TcpServer and the epoll EventLoopServer), since the
// protocol invariants cannot depend on who schedules the handlers.
//
// The invariants under fire are the financial ones: concurrent authenticated
// transfers must neither lose nor duplicate postings (conservation), a
// single-use challenge must have exactly one winner no matter how many
// connections race it, and a check number must certify exactly once (§7.7).
// Run under -fsanitize=thread (RPROXY_SANITIZE=thread) to also prove the
// absence of data races in the per-node locking.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "accounting/accounting_server.hpp"
#include "core/request.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

struct Empty {
  void encode(wire::Encoder&) const {}
  static Empty decode(wire::Decoder&) { return {}; }
};

constexpr int kClients = 8;
constexpr int kTransfersPerClient = 25;
constexpr std::uint64_t kInitialBalance = 1'000;

class ConcurrentDispatch : public ::testing::TestWithParam<const char*> {
 protected:
  ConcurrentDispatch() {
    world_.add_principal("bank");
    world_.add_principal("file-server");
    for (int i = 0; i < kClients; ++i) {
      world_.add_principal(client_name(i));
    }

    bank_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank"));
    for (int i = 0; i < kClients; ++i) {
      bank_->open_account(client_name(i), client_name(i),
                          accounting::Balances{{{"credits", kInitialBalance}}});
    }
    bank_->open_account("pot", "bank");

    file_server_ = std::make_unique<server::FileServer>(
        world_.end_server_config("file-server"));
    file_server_->put_file("/doc", "concurrent");
    for (int i = 0; i < kClients; ++i) {
      file_server_->acl().add(authz::AclEntry{{client_name(i)}, {}, {}, {}});
    }

    if (std::string(GetParam()) == "pool") {
      tcp_.attach("kdc", *world_.kdc_server);
      tcp_.attach("bank", *bank_);
      tcp_.attach("file-server", *file_server_);
      const util::Status started = tcp_.start();
      EXPECT_TRUE(started.is_ok()) << started;
      port_ = tcp_.port();
    } else {
      loop_.attach("kdc", *world_.kdc_server);
      loop_.attach("bank", *bank_);
      loop_.attach("file-server", *file_server_);
      const util::Status started = loop_.start();
      EXPECT_TRUE(started.is_ok()) << started;
      port_ = loop_.port();
    }
  }

  [[nodiscard]] std::uint64_t served() const {
    return std::string(GetParam()) == "pool" ? tcp_.requests_served()
                                             : loop_.requests_served();
  }

  static std::string client_name(int i) {
    return "client-" + std::to_string(i);
  }

  /// Typed round trip over TCP (each call opens its own connection, so it
  /// is safe to issue from any thread).
  template <typename ReplyT, typename RequestT>
  util::Result<ReplyT> call(const PrincipalName& from,
                            const PrincipalName& to, net::MsgType req_type,
                            net::MsgType reply_type,
                            const RequestT& request) {
    net::Envelope e;
    e.from = from;
    e.to = to;
    e.type = req_type;
    e.payload = wire::encode_to_bytes(request);
    RPROXY_ASSIGN_OR_RETURN(net::Envelope reply,
                            net::tcp_rpc("127.0.0.1", port_, e));
    RPROXY_RETURN_IF_ERROR(net::expect_type(reply, reply_type));
    return wire::decode_from_bytes<ReplyT>(reply.payload);
  }

  /// One authenticated 1-credit transfer from `who`'s account to "pot",
  /// entirely over TCP: challenge round trip, then the signed transfer.
  util::Status transfer_one(int who) {
    const std::string name = client_name(who);
    RPROXY_ASSIGN_OR_RETURN(
        server::ChallengePayload challenge,
        (call<server::ChallengePayload>(
            name, "bank", net::MsgType::kPresentChallengeRequest,
            net::MsgType::kPresentChallengeReply, Empty{})));

    accounting::TransferPayload req;
    req.challenge_id = challenge.id;
    req.from_account = name;
    req.to_account = "pot";
    req.currency = "credits";
    req.amount = 1;
    const testing::Principal& p = world_.principal(name);
    req.identity = core::prove_delegate_pk(
        p.cert, p.identity, challenge.nonce, "bank", world_.clock.now(),
        core::request_digest("transfer", name + "->pot",
                             {{"credits", 1}}));
    RPROXY_ASSIGN_OR_RETURN(
        accounting::TransferReplyPayload reply,
        (call<accounting::TransferReplyPayload>(
            name, "bank", net::MsgType::kTransferRequest,
            net::MsgType::kTransferReply, req)));
    if (!reply.ok) {
      return util::fail(util::ErrorCode::kInternal, "transfer not ok");
    }
    return util::Status::ok();
  }

  World world_;
  std::unique_ptr<accounting::AccountingServer> bank_;
  std::unique_ptr<server::FileServer> file_server_;
  net::TcpServer tcp_;
  net::EventLoopServer loop_;
  std::uint16_t port_ = 0;
};

// Conservation under concurrency: kClients threads each post
// kTransfersPerClient 1-credit transfers into the shared pot.  Every
// posting must land exactly once.
TEST_P(ConcurrentDispatch, ConcurrentTransfersConserveBalances) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &failures] {
      for (int t = 0; t < kTransfersPerClient; ++t) {
        const util::Status posted = transfer_one(i);
        if (!posted.is_ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  const std::uint64_t expected_pot =
      static_cast<std::uint64_t>(kClients) * kTransfersPerClient;
  EXPECT_EQ(bank_->account("pot")->balances().balance("credits"),
            static_cast<std::int64_t>(expected_pot));
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(bank_->account(client_name(i))->balances().balance("credits"),
              static_cast<std::int64_t>(kInitialBalance -
                                        kTransfersPerClient));
  }
  EXPECT_GE(served(),
            2 * static_cast<std::uint64_t>(kClients) * kTransfersPerClient);
}

// A single-use challenge presented by many racing connections has exactly
// one winner: the replayed presentations must all be rejected.
TEST_P(ConcurrentDispatch, ChallengeReplayHasSingleWinner) {
  const core::Proxy cap = authz::make_capability_pk(
      "client-0", world_.principal("client-0").identity, "file-server",
      {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
      util::kHour);
  auto challenge = call<server::ChallengePayload>(
      "client-0", "file-server", net::MsgType::kPresentChallengeRequest,
      net::MsgType::kPresentChallengeReply, Empty{});
  ASSERT_TRUE(challenge.is_ok()) << challenge.status();

  server::AppRequestPayload req;
  req.operation = "read";
  req.object = "/doc";
  req.challenge_id = challenge.value().id;
  core::PresentedCredential cred;
  cred.chain = cap.chain;
  cred.proof =
      core::prove_bearer(cap, challenge.value().nonce, "file-server",
                         world_.clock.now(), req.digest());
  req.credentials.push_back(cred);

  net::Envelope e;
  e.from = "client-0";
  e.to = "file-server";
  e.type = net::MsgType::kAppRequest;
  e.payload = wire::encode_to_bytes(req);

  constexpr int kRacers = 8;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(kRacers);
  for (int i = 0; i < kRacers; ++i) {
    threads.emplace_back([this, &e, &successes] {
      auto reply = net::tcp_rpc("127.0.0.1", port_, e);
      if (reply.is_ok() && net::status_of(reply.value()).is_ok()) {
        successes.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(successes.load(), 1);
}

// The same check number certified by racing connections: exactly one hold
// may be placed (the accept-once discipline of §7.7 under concurrency).
// The exactly-once dedup table answers every loser with the WINNER's
// certification — identical terms are one logical certify, however many
// connections carry it — so all racers report success while the bank's
// state records a single hold.
TEST_P(ConcurrentDispatch, ConcurrentCertifySameCheckNumberSingleWinner) {
  constexpr int kRacers = 6;
  constexpr std::uint64_t kCheckNumber = 7;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(kRacers);
  for (int i = 0; i < kRacers; ++i) {
    threads.emplace_back([this, &successes] {
      auto challenge = call<server::ChallengePayload>(
          "client-0", "bank", net::MsgType::kPresentChallengeRequest,
          net::MsgType::kPresentChallengeReply, Empty{});
      if (!challenge.is_ok()) return;

      accounting::CertifyPayload req;
      req.challenge_id = challenge.value().id;
      req.account = "client-0";
      req.payee = "client-1";
      req.currency = "credits";
      req.amount = 10;
      req.check_number = kCheckNumber;
      req.target_server = "file-server";
      const testing::Principal& p = world_.principal("client-0");
      req.identity = core::prove_delegate_pk(
          p.cert, p.identity, challenge.value().nonce, "bank",
          world_.clock.now(),
          core::request_digest("certify", "client-0", {{"credits", 10}}));
      auto reply = call<accounting::CertifyReplyPayload>(
          "client-0", "bank", net::MsgType::kCertifyRequest,
          net::MsgType::kCertifyReply, req);
      if (reply.is_ok()) successes.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(successes.load(), kRacers);
  EXPECT_EQ(bank_->deduped_replies(), static_cast<std::uint64_t>(kRacers - 1));
  // Exactly one hold's worth of funds is encumbered.
  EXPECT_EQ(bank_->account("client-0")->held("credits"), 10);
}

// Different nodes exercised simultaneously through one transport: Kerberos
// AS exchanges against the KDC interleaved with capability presentations
// at the file server and transfers at the bank.
TEST_P(ConcurrentDispatch, MixedNodesServeConcurrently) {
  constexpr int kPerRole = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  for (int i = 0; i < kPerRole; ++i) {
    // KDC role.
    threads.emplace_back([this, i, &failures] {
      kdc::AsRequestPayload req;
      req.client = client_name(i);
      req.nonce = 1000 + static_cast<std::uint64_t>(i);
      req.requested_lifetime = util::kHour;
      auto reply = call<kdc::KdcReplyPayload>(
          client_name(i), "kdc", net::MsgType::kAsRequest,
          net::MsgType::kAsReply, req);
      if (!reply.is_ok()) failures.fetch_add(1);
    });
    // File-server role.
    threads.emplace_back([this, i, &failures] {
      const std::string name = client_name(i);
      const core::Proxy cap = authz::make_capability_pk(
          name, world_.principal(name).identity, "file-server",
          {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
          util::kHour);
      auto challenge = call<server::ChallengePayload>(
          name, "file-server", net::MsgType::kPresentChallengeRequest,
          net::MsgType::kPresentChallengeReply, Empty{});
      if (!challenge.is_ok()) {
        failures.fetch_add(1);
        return;
      }
      server::AppRequestPayload req;
      req.operation = "read";
      req.object = "/doc";
      req.challenge_id = challenge.value().id;
      core::PresentedCredential cred;
      cred.chain = cap.chain;
      cred.proof = core::prove_bearer(cap, challenge.value().nonce,
                                      "file-server", world_.clock.now(),
                                      req.digest());
      req.credentials.push_back(cred);
      auto reply = call<server::AppReplyPayload>(
          name, "file-server", net::MsgType::kAppRequest,
          net::MsgType::kAppReply, req);
      if (!reply.is_ok() ||
          util::to_string(reply.value().result) != "concurrent") {
        failures.fetch_add(1);
      }
    });
    // Bank role.
    threads.emplace_back([this, i, &failures] {
      if (!transfer_one(i).is_ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(bank_->account("pot")->balances().balance("credits"), kPerRole);
  EXPECT_EQ(file_server_->audit().allowed_count(),
            static_cast<std::size_t>(kPerRole));
}

INSTANTIATE_TEST_SUITE_P(BothTransports, ConcurrentDispatch,
                         ::testing::Values("pool", "loop"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// The bounded worker pool must not deadlock or drop connections when more
// clients arrive than there are slots.
TEST(ConcurrentDispatchLimits, MoreClientsThanWorkerSlots) {
  World world;
  world.add_principal("file-server");
  server::FileServer file_server(world.end_server_config("file-server"));

  net::TcpServer::Options options;
  options.max_connections = 2;
  net::TcpServer tcp(options);
  tcp.attach("file-server", file_server);
  ASSERT_TRUE(tcp.start().is_ok());

  constexpr int kRacers = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kRacers);
  for (int i = 0; i < kRacers; ++i) {
    threads.emplace_back([&tcp, &failures] {
      for (int t = 0; t < 5; ++t) {
        net::Envelope e;
        e.from = "bob";
        e.to = "file-server";
        e.type = net::MsgType::kPresentChallengeRequest;
        auto reply = net::tcp_rpc("127.0.0.1", tcp.port(), e);
        if (!reply.is_ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(tcp.requests_served(), 50u);
  tcp.stop();
  EXPECT_EQ(tcp.active_connections(), 0u);
}

// Verified-chain cache under concurrency: two file servers behind one
// transport, identical except that one has the chain-verification cache
// enabled and the other disabled.  Many threads hammer both with the same
// mix — one chain shared by every thread (maximum cache contention), one
// distinct chain per thread, and a tampered chain — and every decision
// must agree between the two servers.  Under TSan this also proves the
// cache's internal locking.
TEST(ConcurrentVerifyCache, CacheOnOffDecisionParityUnderLoad) {
  World world;
  world.add_principal("alice");
  world.add_principal("fs-cached");
  world.add_principal("fs-plain");

  server::EndServer::Config cached_config = world.end_server_config("fs-cached");
  cached_config.verify_cache_capacity = 1024;
  server::FileServer cached(std::move(cached_config));
  server::EndServer::Config plain_config = world.end_server_config("fs-plain");
  plain_config.verify_cache_capacity = 0;
  server::FileServer plain(std::move(plain_config));
  for (server::FileServer* fs : {&cached, &plain}) {
    fs->put_file("/doc", "parity");
    fs->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
  }

  net::TcpServer tcp;
  tcp.attach("fs-cached", cached);
  tcp.attach("fs-plain", plain);
  ASSERT_TRUE(tcp.start().is_ok());

  const auto make_chain = [&](std::size_t depth) {
    core::Proxy proxy = core::grant_pk_proxy(
        "alice", world.principal("alice").identity, {}, world.clock.now(),
        util::kHour);
    for (std::size_t i = 1; i < depth; ++i) {
      proxy = core::extend_bearer(proxy, {}, world.clock.now(), util::kHour)
                  .value();
    }
    return proxy;
  };

  constexpr int kThreads = 8;
  constexpr int kRounds = 15;
  const core::Proxy shared = make_chain(4);
  std::vector<core::Proxy> distinct;
  distinct.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) distinct.push_back(make_chain(2));
  core::ProxyChain tampered = shared.chain;
  tampered.certs[1].signature[3] ^= 0x40;

  // Timestamp-mode presentation of `chain` proved with `signer`'s secret;
  // returns the reply's error code (kOk on acceptance).
  const auto present = [&](const PrincipalName& to,
                           const core::ProxyChain& chain,
                           const core::Proxy& signer) {
    server::AppRequestPayload req;
    req.operation = "read";
    req.object = "/doc";
    req.credentials.push_back(core::PresentedCredential{
        chain, core::prove_bearer(signer, {}, to, world.clock.now(),
                                  req.digest())});
    net::Envelope e;
    e.from = "alice";
    e.to = to;
    e.type = net::MsgType::kAppRequest;
    e.payload = wire::encode_to_bytes(req);
    auto reply = net::tcp_rpc("127.0.0.1", tcp.port(), e);
    if (!reply.is_ok()) return reply.status().code();
    return net::status_of(reply.value()).code();
  };

  std::atomic<int> disagreements{0};
  std::atomic<int> accepted_pairs{0};
  std::atomic<int> rejected_pairs{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const struct {
          const core::ProxyChain* chain;
          const core::Proxy* signer;
          bool expect_ok;
        } cases[] = {
            {&shared.chain, &shared, true},
            {&distinct[static_cast<std::size_t>(t)].chain,
             &distinct[static_cast<std::size_t>(t)], true},
            {&tampered, &shared, false},
        };
        for (const auto& c : cases) {
          const util::ErrorCode with_cache =
              present("fs-cached", *c.chain, *c.signer);
          const util::ErrorCode without =
              present("fs-plain", *c.chain, *c.signer);
          if (with_cache != without) disagreements.fetch_add(1);
          const bool ok = with_cache == util::ErrorCode::kOk;
          if (ok != c.expect_ok) disagreements.fetch_add(1);
          (ok ? accepted_pairs : rejected_pairs).fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  tcp.stop();

  EXPECT_EQ(disagreements.load(), 0);
  EXPECT_EQ(accepted_pairs.load(), kThreads * kRounds * 2);
  EXPECT_EQ(rejected_pairs.load(), kThreads * kRounds);
  // The cached server actually took the fast path.
  EXPECT_GE(cached.verifier().cache_stats().hits, 1u);
  EXPECT_EQ(plain.verifier().cache_stats().hits, 0u);
}

}  // namespace
}  // namespace rproxy
