// ShardRouter + ShardDirectory under concurrent map refresh (TSan
// coverage, see .github/workflows/ci.yml): one thread drives transfers
// through the router while others hammer install/lookup on the shared
// directory and the router's own map.  Run under -fsanitize=thread this
// proves the snapshot/install paths are race-free; without TSan it still
// checks that routing never observes a torn or regressed map.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accounting/sharding/shard_router.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using accounting::sharding::ShardDirectory;
using accounting::sharding::ShardMap;
using accounting::sharding::ShardRouter;
using accounting::sharding::uniform_map;
using rproxy::testing::World;

TEST(ConcurrentShardRouter, TransfersRaceMapInstallsSafely) {
  World world;
  world.add_principal("router");
  world.add_principal("s1");
  world.add_principal("s2");
  ShardDirectory dir;
  ASSERT_TRUE(dir.install(uniform_map({"s1", "s2"}, 1)));
  const auto gated = [&](const char* name) {
    auto config = world.accounting_config(name);
    config.shard = &dir;
    return config;
  };
  accounting::AccountingServer s1(gated("s1"));
  accounting::AccountingServer s2(gated("s2"));
  world.net.attach("s1", s1);
  world.net.attach("s2", s2);

  // Two accounts per shard so both intra- and cross-shard paths run.
  std::vector<std::string> accounts;
  for (const char* shard : {"s1", "s2"}) {
    accounting::AccountingServer& server = shard == std::string("s1") ? s1 : s2;
    for (int i = 0, found = 0; found < 2; ++i) {
      const std::string name =
          std::string("acct-") + shard + "-" + std::to_string(i);
      if (dir.home(name) != shard) continue;
      server.open_account(name, "router",
                          accounting::Balances{{"usd", 1'000'000}});
      accounts.push_back(name);
      found += 1;
    }
  }

  ShardRouter::Config config;
  config.net = &world.net;
  config.clock = &world.clock;
  config.self = "router";
  config.identity_cert = world.principal("router").cert;
  config.identity_key = world.principal("router").identity;
  ShardRouter router(std::move(config), uniform_map({"s1", "s2"}, 1));

  constexpr int kTransfers = 60;
  constexpr int kInstalls = 200;
  std::atomic<bool> done{false};
  std::atomic<int> transfer_failures{0};

  // Driver: the router is single-caller for operations (like
  // AccountingClient), so exactly one thread transfers.
  std::thread driver([&] {
    for (int i = 0; i < kTransfers; ++i) {
      const std::string& from = accounts[i % accounts.size()];
      const std::string& to = accounts[(i + 1) % accounts.size()];
      if (!router.transfer(from, to, "usd", 1).is_ok()) {
        transfer_failures.fetch_add(1);
      }
    }
    done.store(true);
  });

  // Installer: newer equivalent maps keep arriving (a control plane
  // re-publishing), exercising install against concurrent snapshots.
  std::thread installer([&] {
    for (std::uint64_t v = 2; v <= kInstalls + 1; ++v) {
      router.install_map(uniform_map({"s1", "s2"}, v));
      dir.install(uniform_map({"s1", "s2"}, v));
    }
  });

  // Readers: route lookups and version reads race the installs.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!done.load()) {
        for (const auto& account : accounts) {
          const PrincipalName home = router.home(account);
          ASSERT_TRUE(home == "s1" || home == "s2") << home;
        }
        const std::uint64_t version = router.map_version();
        // Versions are monotone: install never regresses a reader.
        ASSERT_GE(version, last_version);
        last_version = version;
      }
    });
  }

  driver.join();
  installer.join();
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(transfer_failures.load(), 0);
  // All maps agree on placement throughout, so every transfer conserved
  // money: the named accounts sum to their initial total (the peer:*
  // settlement accounts only track inter-shard claims on top).
  std::int64_t total = 0;
  for (const auto& account : accounts) {
    const auto* acct = dir.home(account) == "s1" ? s1.account(account)
                                                 : s2.account(account);
    ASSERT_NE(acct, nullptr) << account;
    total += acct->balances().balance("usd");
  }
  EXPECT_EQ(total, 4 * 1'000'000);
}

}  // namespace
}  // namespace rproxy
