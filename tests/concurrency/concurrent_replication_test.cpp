// Replication under threads (TSan coverage, see .github/workflows/ci.yml):
// journal shipping streams concurrently with writers driving group commit,
// a checkpoint thread compacting underneath the shipper, and — at the end —
// two sibling standbys racing to promote against one shared directory
// (exactly one may win).  Run under -fsanitize=thread this proves the
// shipper/standby/promotion paths are race-free; without TSan it still
// checks convergence and single-winner promotion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accounting/clearing.hpp"
#include "accounting/replication/journal_shipper.hpp"
#include "accounting/replication/standby.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"

namespace rproxy {
namespace {

using accounting::AccountingServer;
using accounting::Balances;
using accounting::replication::JournalShipper;
using accounting::replication::StandbyReplayer;
using accounting::sharding::ShardDirectory;
using accounting::sharding::uniform_map;
using rproxy::testing::World;

TEST(ConcurrentReplication, ShippingRacesGroupCommitCheckpointAndPromotion) {
  World world;
  rproxy::testing::TempDir tmp;
  const crypto::SymmetricKey key = crypto::SymmetricKey::generate();
  world.add_principal("bank");
  world.add_principal("bank-r1");
  world.add_principal("bank-r2");
  world.add_principal("alice");
  ShardDirectory dir;
  ASSERT_TRUE(dir.install(uniform_map({"bank"}, 1)));

  auto config = world.accounting_config("bank");
  config.storage_dir = tmp.sub("bank");
  config.storage_key = key;
  config.fsync_policy = storage::FsyncPolicy::kGroup;
  AccountingServer primary(std::move(config));
  ASSERT_TRUE(primary.recover().is_ok());
  world.net.attach("bank", primary);
  primary.open_account("a1", "alice", Balances{{"usd", 1'000'000}});
  primary.open_account("a2", "alice", Balances{{"usd", 1'000'000}});

  std::vector<std::unique_ptr<AccountingServer>> replicas;
  std::vector<std::unique_ptr<StandbyReplayer>> standbys;
  for (const char* name : {"bank-r1", "bank-r2"}) {
    replicas.push_back(
        std::make_unique<AccountingServer>(world.accounting_config(name)));
    StandbyReplayer::Config rc;
    rc.name = name;
    rc.primary = "bank";
    rc.server = replicas.back().get();
    rc.clock = &world.clock;
    rc.storage_key = key;
    rc.directory = &dir;
    rc.jitter_seed = standbys.size() + 1;
    standbys.push_back(std::make_unique<StandbyReplayer>(std::move(rc)));
    world.net.attach(name, *standbys.back());
  }
  JournalShipper::Config sc;
  sc.primary = &primary;
  sc.net = &world.net;
  sc.standbys = {"bank-r1", "bank-r2"};
  JournalShipper shipper(std::move(sc));

  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 40;
  std::atomic<bool> done{false};
  std::atomic<int> transfer_failures{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto client = world.accounting_client("alice");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const bool forward = (w + i) % 2 == 0;
        if (!client
                 .transfer("bank", forward ? "a1" : "a2",
                           forward ? "a2" : "a1", "usd", 1)
                 .is_ok()) {
          transfer_failures.fetch_add(1);
        }
      }
    });
  }
  // The shipper streams the journal tail WHILE the writers drive group
  // commit — reads under the fsync watermark racing appends above it.
  std::thread ship_loop([&] {
    while (!done.load()) {
      (void)shipper.ship_once();
      std::this_thread::yield();
    }
  });
  // Checkpoints compact the journal underneath the shipper, forcing the
  // bootstrap path to race the tail-read path.
  std::thread checkpointer([&] {
    while (!done.load()) {
      (void)primary.checkpoint();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (auto& writer : writers) writer.join();
  done.store(true);
  ship_loop.join();
  checkpointer.join();
  EXPECT_EQ(transfer_failures.load(), 0);

  // Quiesced: one final shipped round must converge every replica.
  ASSERT_TRUE(shipper.ship_until(primary.journal_durable_lsn()).is_ok());
  for (const auto& standby : standbys) {
    EXPECT_EQ(standby->received_lsn(), primary.journal_durable_lsn());
    EXPECT_EQ(standby->apply_failures(), 0u);
  }
  for (const auto& replica : replicas) {
    const auto* a1 = replica->account("a1");
    const auto* a2 = replica->account("a2");
    ASSERT_NE(a1, nullptr);
    ASSERT_NE(a2, nullptr);
    EXPECT_EQ(a1->balances().balance("usd") + a2->balances().balance("usd"),
              2'000'000);
    EXPECT_EQ(a1->balances().balance("usd"),
              primary.account("a1")->balances().balance("usd"));
  }

  // Promotion race: both standbys promote at once against the shared
  // directory.  ShardDirectory::install is strictly-newer-only, so
  // exactly one must win; the loser stays a standby.
  std::atomic<int> winners{0};
  std::vector<std::thread> racers;
  for (const auto& standby : standbys) {
    racers.emplace_back([&, s = standby.get()] {
      if (s->promote().is_ok()) winners.fetch_add(1);
    });
  }
  for (auto& racer : racers) racer.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_NE(standbys[0]->promoted(), standbys[1]->promoted());
}

}  // namespace
}  // namespace rproxy
