#include "workload/workload.hpp"

#include <gtest/gtest.h>

namespace rproxy::workload {
namespace {

TEST(Workload, DeterministicFromSeed) {
  WorkloadSpec spec;
  spec.seed = 7;
  WorkloadGenerator a(spec), b(spec);
  const auto ea = a.generate(100);
  const auto eb = b.generate(100);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].user, eb[i].user);
    EXPECT_EQ(ea[i].object, eb[i].object);
    EXPECT_EQ(ea[i].is_write, eb[i].is_write);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadSpec a_spec, b_spec;
  a_spec.seed = 1;
  b_spec.seed = 2;
  WorkloadGenerator a(a_spec), b(b_spec);
  const auto ea = a.generate(100);
  const auto eb = b.generate(100);
  int differing = 0;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].user != eb[i].user || ea[i].object != eb[i].object) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 10);
}

TEST(Workload, EventsWithinBounds) {
  WorkloadSpec spec;
  spec.users = 5;
  spec.servers = 3;
  spec.objects_per_server = 7;
  WorkloadGenerator gen(spec);
  for (const RequestEvent& e : gen.generate(500)) {
    EXPECT_LT(e.user, spec.users);
    EXPECT_LT(e.server, spec.servers);
    EXPECT_LT(e.object, spec.objects_per_server);
  }
}

TEST(Workload, ZipfSkewsTowardTheHead) {
  WorkloadSpec skewed;
  skewed.zipf_s = 1.2;
  skewed.objects_per_server = 64;
  WorkloadGenerator gen(skewed);
  const auto events = gen.generate(5000);
  // Under uniform choice the head object would get ~1/64 ≈ 1.6% of draws;
  // under the skew it must get substantially more.
  EXPECT_GT(gen.head_share(events), 0.10);
}

TEST(Workload, ZeroSkewIsNearUniform) {
  WorkloadSpec uniform;
  uniform.zipf_s = 0.0;
  uniform.objects_per_server = 10;
  WorkloadGenerator gen(uniform);
  const auto events = gen.generate(5000);
  EXPECT_LT(gen.head_share(events), 0.2);  // ~0.1 expected
}

TEST(Workload, WriteFractionRoughlyHonored) {
  WorkloadSpec spec;
  spec.write_pct = 30;
  WorkloadGenerator gen(spec);
  const auto events = gen.generate(5000);
  std::size_t writes = 0;
  for (const RequestEvent& e : events) writes += e.is_write ? 1 : 0;
  const double frac = static_cast<double>(writes) / events.size();
  EXPECT_GT(frac, 0.2);
  EXPECT_LT(frac, 0.4);
}

TEST(Workload, MembershipStableAndSeedDependent) {
  WorkloadSpec spec;
  spec.users = 50;
  spec.groups = 4;
  spec.group_membership_pct = 40;
  WorkloadGenerator gen(spec);
  // Stable across calls.
  for (std::uint32_t g = 0; g < spec.groups; ++g) {
    EXPECT_EQ(gen.members_of(g), gen.members_of(g));
  }
  // Roughly the configured density.
  std::size_t members = 0;
  for (std::uint32_t g = 0; g < spec.groups; ++g) {
    members += gen.members_of(g).size();
  }
  const double density =
      static_cast<double>(members) / (spec.users * spec.groups);
  EXPECT_GT(density, 0.2);
  EXPECT_LT(density, 0.6);
}

TEST(Workload, NamesAreCanonical) {
  WorkloadGenerator gen(WorkloadSpec{});
  EXPECT_EQ(gen.user_name(3), "user-3");
  EXPECT_EQ(gen.server_name(0), "app-server-0");
  EXPECT_EQ(gen.object_name(12), "/obj/12");
  EXPECT_EQ(gen.group_name(1), "team-1");
}

}  // namespace
}  // namespace rproxy::workload
