// End-server chain verification (both realizations).
#include "core/verifier.hpp"

#include <gtest/gtest.h>

#include "core/proxy.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() {
    world_.add_principal("alice");
    world_.add_principal("file-server");
  }

  core::ProxyVerifier server_verifier() {
    core::ProxyVerifier::Config config;
    config.server_name = "file-server";
    config.server_key = world_.principal("file-server").krb_key;
    config.resolver = &world_.resolver;
    config.pk_root = world_.name_server.root_key();
    return core::ProxyVerifier(std::move(config));
  }

  core::Proxy pk_proxy(core::RestrictionSet set = {},
                       util::Duration lifetime = util::kHour) {
    return core::grant_pk_proxy("alice",
                                world_.principal("alice").identity,
                                std::move(set), world_.clock.now(),
                                lifetime);
  }

  core::Proxy krb_proxy(core::RestrictionSet set = {}) {
    kdc::KdcClient client = world_.kdc_client("alice");
    auto tgt = client.authenticate(util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    auto creds =
        client.get_ticket(tgt.value(), "file-server", util::kHour);
    EXPECT_TRUE(creds.is_ok());
    return core::grant_krb_proxy(client, creds.value(), std::move(set),
                                 world_.clock.now());
  }

  World world_;
};

TEST_F(VerifierTest, PkChainVerifies) {
  core::RestrictionSet set;
  set.add(core::QuotaRestriction{"usd", 5});
  const core::Proxy proxy = pk_proxy(set);
  auto verified = server_verifier().verify_chain(proxy.chain,
                                                 world_.clock.now());
  ASSERT_TRUE(verified.is_ok()) << verified.status();
  EXPECT_EQ(verified.value().grantor, "alice");
  EXPECT_EQ(verified.value().mode, core::ProxyMode::kPublicKey);
  EXPECT_EQ(verified.value().effective_restrictions, set);
  EXPECT_EQ(verified.value().chain_length, 1u);
  EXPECT_TRUE(verified.value().audit_trail.empty());
}

TEST_F(VerifierTest, KrbChainVerifies) {
  core::RestrictionSet set;
  set.add(core::QuotaRestriction{"usd", 5});
  const core::Proxy proxy = krb_proxy(set);
  auto verified = server_verifier().verify_chain(proxy.chain,
                                                 world_.clock.now());
  ASSERT_TRUE(verified.is_ok()) << verified.status();
  EXPECT_EQ(verified.value().grantor, "alice");
  EXPECT_EQ(verified.value().mode, core::ProxyMode::kSymmetric);
  EXPECT_EQ(verified.value().effective_restrictions, set);
  EXPECT_TRUE(verified.value().sym_proxy_key ==
              crypto::SymmetricKey::from_bytes(proxy.secret));
}

TEST_F(VerifierTest, ExpiredPkChainRejected) {
  const core::Proxy proxy = pk_proxy({}, util::kMinute);
  world_.clock.advance(2 * util::kMinute);
  EXPECT_EQ(server_verifier()
                .verify_chain(proxy.chain, world_.clock.now())
                .code(),
            util::ErrorCode::kExpired);
}

TEST_F(VerifierTest, ExpiredKrbChainRejected) {
  const core::Proxy proxy = krb_proxy();
  world_.clock.advance(2 * util::kHour);
  EXPECT_EQ(server_verifier()
                .verify_chain(proxy.chain, world_.clock.now())
                .code(),
            util::ErrorCode::kExpired);
}

TEST_F(VerifierTest, TamperedPkRestrictionsRejected) {
  core::RestrictionSet set;
  set.add(core::QuotaRestriction{"usd", 5});
  core::Proxy proxy = pk_proxy(set);
  // Attacker "removes" the quota restriction from the certificate.
  proxy.chain.certs[0].restrictions = core::RestrictionSet{};
  EXPECT_EQ(server_verifier()
                .verify_chain(proxy.chain, world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(VerifierTest, TamperedKrbAuthzDataRejected) {
  core::RestrictionSet set;
  set.add(core::QuotaRestriction{"usd", 5});
  core::Proxy proxy = krb_proxy(set);
  // AEAD protects the authenticator: flipping a bit breaks it.
  proxy.chain.krb_root->sealed_authenticator[20] ^= 1;
  EXPECT_EQ(server_verifier()
                .verify_chain(proxy.chain, world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(VerifierTest, UnknownGrantorRejected) {
  const crypto::SigningKeyPair ghost_key = crypto::SigningKeyPair::generate();
  const core::Proxy proxy = core::grant_pk_proxy(
      "ghost", ghost_key, {}, world_.clock.now(), util::kHour);
  EXPECT_EQ(server_verifier()
                .verify_chain(proxy.chain, world_.clock.now())
                .code(),
            util::ErrorCode::kNotFound);
}

TEST_F(VerifierTest, ForgedGrantorSignatureRejected) {
  // Mallory signs a certificate claiming to be alice.
  const crypto::SigningKeyPair mallory = crypto::SigningKeyPair::generate();
  const core::Proxy proxy = core::grant_pk_proxy(
      "alice", mallory, {}, world_.clock.now(), util::kHour);
  EXPECT_EQ(server_verifier()
                .verify_chain(proxy.chain, world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(VerifierTest, KrbProxyForOtherServerRejected) {
  world_.add_principal("other-server");
  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = client.get_ticket(tgt.value(), "other-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());
  const core::Proxy proxy =
      core::grant_krb_proxy(client, creds.value(), {}, world_.clock.now());
  // file-server cannot open a ticket sealed for other-server.
  EXPECT_EQ(server_verifier()
                .verify_chain(proxy.chain, world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(VerifierTest, SymOnlyServerRejectsPkChains) {
  core::ProxyVerifier::Config config;
  config.server_name = "file-server";
  config.server_key = world_.principal("file-server").krb_key;
  core::ProxyVerifier verifier(std::move(config));
  EXPECT_EQ(verifier.verify_chain(pk_proxy().chain, world_.clock.now())
                .code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(VerifierTest, PkOnlyServerRejectsSymChains) {
  core::ProxyVerifier::Config config;
  config.server_name = "file-server";
  config.resolver = &world_.resolver;
  core::ProxyVerifier verifier(std::move(config));
  EXPECT_EQ(verifier.verify_chain(krb_proxy().chain, world_.clock.now())
                .code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(VerifierTest, EmptyPkChainRejected) {
  core::ProxyChain chain;
  chain.mode = core::ProxyMode::kPublicKey;
  EXPECT_EQ(server_verifier().verify_chain(chain, world_.clock.now()).code(),
            util::ErrorCode::kParseError);
}

TEST_F(VerifierTest, KrbProxyWithoutSubkeyRejected) {
  // A plain AP request (no subkey) is personal authentication, not a proxy.
  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = client.get_ticket(tgt.value(), "file-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());
  core::ProxyChain chain;
  chain.mode = core::ProxyMode::kSymmetric;
  chain.krb_root = client.make_ap_request(creds.value());
  EXPECT_EQ(server_verifier().verify_chain(chain, world_.clock.now()).code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(VerifierTest, MapResolverResolves) {
  core::MapKeyResolver resolver;
  resolver.add("alice", world_.principal("alice").identity.public_key());
  EXPECT_TRUE(resolver.resolve("alice").is_ok());
  EXPECT_EQ(resolver.resolve("bob").code(), util::ErrorCode::kNotFound);
}

}  // namespace
}  // namespace rproxy
