// Evaluation semantics of each restriction type (§7) against a request
// context, including the conjunction rule (every restriction must pass).
#include <gtest/gtest.h>

#include "core/restriction_set.hpp"

namespace rproxy::core {
namespace {

using util::ErrorCode;

RequestContext base_context() {
  RequestContext ctx;
  ctx.end_server = "file-server";
  ctx.operation = "read";
  ctx.object = "/doc";
  ctx.now = 1000 * util::kSecond;
  ctx.grantor = "alice";
  ctx.credential_expiry = 2000 * util::kSecond;
  return ctx;
}

TEST(EvalGrantee, PassesWhenDelegateAuthenticated) {
  RequestContext ctx = base_context();
  ctx.effective_identities = {"bob"};
  EXPECT_TRUE(
      evaluate_restriction(GranteeRestriction{{"bob"}, 1}, ctx).is_ok());
}

TEST(EvalGrantee, FailsWithoutIdentity) {
  RequestContext ctx = base_context();
  EXPECT_EQ(
      evaluate_restriction(GranteeRestriction{{"bob"}, 1}, ctx).code(),
      ErrorCode::kNotGrantee);
}

TEST(EvalGrantee, FailsForWrongIdentity) {
  RequestContext ctx = base_context();
  ctx.effective_identities = {"mallory"};
  EXPECT_EQ(
      evaluate_restriction(GranteeRestriction{{"bob"}, 1}, ctx).code(),
      ErrorCode::kNotGrantee);
}

TEST(EvalGrantee, KOfNConcurrence) {
  // §7.1: "the number of principals from the list needed to exercise the
  // proxy".
  RequestContext ctx = base_context();
  ctx.effective_identities = {"bob"};
  EXPECT_FALSE(
      evaluate_restriction(GranteeRestriction{{"bob", "carol"}, 2}, ctx)
          .is_ok());
  ctx.effective_identities = {"bob", "carol"};
  EXPECT_TRUE(
      evaluate_restriction(GranteeRestriction{{"bob", "carol"}, 2}, ctx)
          .is_ok());
}

TEST(EvalGrantee, RequiredZeroTreatedAsOne) {
  RequestContext ctx = base_context();
  EXPECT_FALSE(
      evaluate_restriction(GranteeRestriction{{"bob"}, 0}, ctx).is_ok());
}

TEST(EvalForUseByGroup, RequiresAssertedMembership) {
  const GroupName staff{"gs", "staff"};
  RequestContext ctx = base_context();
  EXPECT_FALSE(
      evaluate_restriction(ForUseByGroupRestriction{{staff}, 1}, ctx)
          .is_ok());
  ctx.asserted_groups = {staff};
  EXPECT_TRUE(
      evaluate_restriction(ForUseByGroupRestriction{{staff}, 1}, ctx)
          .is_ok());
}

TEST(EvalForUseByGroup, SeparationOfPrivilege) {
  // §7.2: require membership in multiple groups with disjoint members.
  const GroupName a{"gs", "operators"}, b{"gs", "auditors"};
  RequestContext ctx = base_context();
  ctx.asserted_groups = {a};
  EXPECT_FALSE(
      evaluate_restriction(ForUseByGroupRestriction{{a, b}, 2}, ctx)
          .is_ok());
  ctx.asserted_groups = {a, b};
  EXPECT_TRUE(
      evaluate_restriction(ForUseByGroupRestriction{{a, b}, 2}, ctx)
          .is_ok());
}

TEST(EvalIssuedFor, MatchesServerList) {
  RequestContext ctx = base_context();
  EXPECT_TRUE(evaluate_restriction(
                  IssuedForRestriction{{"other", "file-server"}}, ctx)
                  .is_ok());
  EXPECT_EQ(
      evaluate_restriction(IssuedForRestriction{{"other"}}, ctx).code(),
      ErrorCode::kRestrictionViolated);
}

TEST(EvalQuota, BoundsAmounts) {
  RequestContext ctx = base_context();
  ctx.amounts = {{"pages", 5}};
  EXPECT_TRUE(
      evaluate_restriction(QuotaRestriction{"pages", 5}, ctx).is_ok());
  ctx.amounts = {{"pages", 6}};
  EXPECT_FALSE(
      evaluate_restriction(QuotaRestriction{"pages", 5}, ctx).is_ok());
}

TEST(EvalQuota, AbsentCurrencyIsZero) {
  RequestContext ctx = base_context();
  EXPECT_TRUE(
      evaluate_restriction(QuotaRestriction{"usd", 0}, ctx).is_ok());
}

TEST(EvalAuthorized, ExactObjectAndOperation) {
  RequestContext ctx = base_context();
  EXPECT_TRUE(evaluate_restriction(
                  AuthorizedRestriction{{ObjectRights{"/doc", {"read"}}}},
                  ctx)
                  .is_ok());
  EXPECT_FALSE(evaluate_restriction(
                   AuthorizedRestriction{{ObjectRights{"/doc", {"write"}}}},
                   ctx)
                   .is_ok());
  EXPECT_FALSE(evaluate_restriction(
                   AuthorizedRestriction{{ObjectRights{"/other", {"read"}}}},
                   ctx)
                   .is_ok());
}

TEST(EvalAuthorized, EmptyOperationsMeansAll) {
  RequestContext ctx = base_context();
  EXPECT_TRUE(evaluate_restriction(
                  AuthorizedRestriction{{ObjectRights{"/doc", {}}}}, ctx)
                  .is_ok());
}

TEST(EvalAuthorized, WildcardObject) {
  RequestContext ctx = base_context();
  EXPECT_TRUE(evaluate_restriction(
                  AuthorizedRestriction{{ObjectRights{"*", {"read"}}}}, ctx)
                  .is_ok());
}

TEST(EvalAuthorized, EmptyListDeniesEverything) {
  RequestContext ctx = base_context();
  EXPECT_FALSE(
      evaluate_restriction(AuthorizedRestriction{{}}, ctx).is_ok());
}

TEST(EvalGroupMembership, OnlyBindsAssertions) {
  const GroupName staff{"gs", "staff"}, admins{"gs", "admins"};
  RequestContext ctx = base_context();
  // Not asserting: passes trivially.
  EXPECT_TRUE(evaluate_restriction(GroupMembershipRestriction{{staff}}, ctx)
                  .is_ok());
  // Asserting a listed group: passes.
  ctx.asserting_group = staff;
  EXPECT_TRUE(evaluate_restriction(GroupMembershipRestriction{{staff}}, ctx)
                  .is_ok());
  // Asserting an unlisted group: fails (§7.6).
  ctx.asserting_group = admins;
  EXPECT_FALSE(
      evaluate_restriction(GroupMembershipRestriction{{staff}}, ctx)
          .is_ok());
}

TEST(EvalAcceptOnce, SecondUseRejected) {
  AcceptOnceCache cache;
  RequestContext ctx = base_context();
  ctx.accept_once = &cache;
  EXPECT_TRUE(
      evaluate_restriction(AcceptOnceRestriction{7}, ctx).is_ok());
  EXPECT_EQ(evaluate_restriction(AcceptOnceRestriction{7}, ctx).code(),
            ErrorCode::kReplay);
}

TEST(EvalAcceptOnce, ScopedByGrantor) {
  // §7.7: "any subsequent proxy FROM THE SAME GRANTOR bearing the same
  // identifier" — different grantors may reuse identifiers.
  AcceptOnceCache cache;
  RequestContext ctx = base_context();
  ctx.accept_once = &cache;
  ctx.grantor = "alice";
  EXPECT_TRUE(evaluate_restriction(AcceptOnceRestriction{7}, ctx).is_ok());
  ctx.grantor = "bob";
  EXPECT_TRUE(evaluate_restriction(AcceptOnceRestriction{7}, ctx).is_ok());
}

TEST(EvalAcceptOnce, AcceptedAgainAfterExpiry) {
  AcceptOnceCache cache;
  RequestContext ctx = base_context();
  ctx.accept_once = &cache;
  ctx.credential_expiry = ctx.now + 10 * util::kSecond;
  EXPECT_TRUE(evaluate_restriction(AcceptOnceRestriction{7}, ctx).is_ok());
  ctx.now = ctx.credential_expiry + util::kSecond;
  EXPECT_TRUE(evaluate_restriction(AcceptOnceRestriction{7}, ctx).is_ok());
}

TEST(EvalAcceptOnce, NoCacheFailsClosed) {
  RequestContext ctx = base_context();
  ctx.accept_once = nullptr;
  EXPECT_EQ(evaluate_restriction(AcceptOnceRestriction{7}, ctx).code(),
            ErrorCode::kRestrictionViolated);
}

TEST(EvalLimit, EnforcedOnlyOnNamedServers) {
  LimitRestriction limit;
  limit.servers = {"print-server"};
  limit.inner = {Restriction{QuotaRestriction{"pages", 1}}};

  RequestContext ctx = base_context();  // end_server = file-server
  ctx.amounts = {{"pages", 100}};
  // Not a named server: ignored (§7.8).
  EXPECT_TRUE(evaluate_restriction(Restriction{limit}, ctx).is_ok());
  // Named server: enforced.
  ctx.end_server = "print-server";
  EXPECT_FALSE(evaluate_restriction(Restriction{limit}, ctx).is_ok());
}

TEST(EvalSet, ConjunctionOverAllRestrictions) {
  RestrictionSet set;
  set.add(IssuedForRestriction{{"file-server"}});
  set.add(AuthorizedRestriction{{ObjectRights{"/doc", {"read"}}}});
  set.add(QuotaRestriction{"pages", 10});

  RequestContext ok = base_context();
  EXPECT_TRUE(set.evaluate(ok).is_ok());

  RequestContext bad_server = base_context();
  bad_server.end_server = "elsewhere";
  EXPECT_FALSE(set.evaluate(bad_server).is_ok());

  RequestContext bad_op = base_context();
  bad_op.operation = "write";
  EXPECT_FALSE(set.evaluate(bad_op).is_ok());
}

TEST(EvalSet, EmptySetPermitsEverything) {
  // An unrestricted proxy grants the grantor's full rights; restrictions
  // are what subtracts.
  RestrictionSet set;
  RequestContext ctx = base_context();
  EXPECT_TRUE(set.evaluate(ctx).is_ok());
}

TEST(EvalSet, AddingRestrictionsNeverWidens) {
  // Property spot-check: if a set denies, any superset denies too.
  RestrictionSet narrow;
  narrow.add(AuthorizedRestriction{{ObjectRights{"/other", {"read"}}}});
  RequestContext ctx = base_context();
  ASSERT_FALSE(narrow.evaluate(ctx).is_ok());

  RestrictionSet wider = narrow;
  wider.add(IssuedForRestriction{{"file-server"}});  // itself permissive
  RequestContext ctx2 = base_context();
  EXPECT_FALSE(wider.evaluate(ctx2).is_ok());
}

}  // namespace
}  // namespace rproxy::core
