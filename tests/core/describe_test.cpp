#include "core/describe.hpp"

#include <gtest/gtest.h>

#include "core/cascade.hpp"
#include "core/proxy.hpp"
#include "crypto/signature.hpp"

namespace rproxy::core {
namespace {

TEST(Describe, EachRestrictionType) {
  EXPECT_EQ(describe(Restriction{GranteeRestriction{{"alice", "bob"}, 2}}),
            "grantee{alice,bob;2}");
  EXPECT_EQ(describe(Restriction{ForUseByGroupRestriction{
                {GroupName{"gs", "staff"}}, 1}}),
            "for-use-by-group{gs/staff;1}");
  EXPECT_EQ(describe(Restriction{IssuedForRestriction{{"s1", "s2"}}}),
            "issued-for{s1,s2}");
  EXPECT_EQ(describe(Restriction{QuotaRestriction{"usd", 100}}),
            "quota{usd<=100}");
  EXPECT_EQ(describe(Restriction{AuthorizedRestriction{
                {ObjectRights{"/doc", {"read", "write"}},
                 ObjectRights{"/all", {}}}}}),
            "authorized{/doc:read,write,/all}");
  EXPECT_EQ(describe(Restriction{GroupMembershipRestriction{
                {GroupName{"gs", "staff"}}}}),
            "group-membership{gs/staff}");
  EXPECT_EQ(describe(Restriction{AcceptOnceRestriction{42}}),
            "accept-once{42}");
}

TEST(Describe, NestedLimit) {
  LimitRestriction limit;
  limit.servers = {"print-server"};
  limit.inner = {Restriction{QuotaRestriction{"pages", 5}}};
  EXPECT_EQ(describe(Restriction{limit}),
            "limit{print-server: quota{pages<=5}}");
}

TEST(Describe, Set) {
  RestrictionSet set;
  set.add(QuotaRestriction{"usd", 1});
  set.add(AcceptOnceRestriction{7});
  EXPECT_EQ(describe(set), "[quota{usd<=1}, accept-once{7}]");
  EXPECT_EQ(describe(RestrictionSet{}), "[]");
}

TEST(Describe, CertificateAndChain) {
  const crypto::SigningKeyPair key = crypto::SigningKeyPair::generate();
  RestrictionSet set;
  set.add(QuotaRestriction{"usd", 5});
  const Proxy proxy =
      grant_pk_proxy("alice", key, set, 1000 * util::kSecond, util::kHour);

  const std::string cert_text = describe(proxy.chain.certs[0]);
  EXPECT_NE(cert_text.find("grantor=alice"), std::string::npos);
  EXPECT_NE(cert_text.find("quota{usd<=5}"), std::string::npos);
  EXPECT_NE(cert_text.find("pk"), std::string::npos);

  auto extended = extend_bearer(proxy, RestrictionSet{},
                                1000 * util::kSecond, util::kHour);
  ASSERT_TRUE(extended.is_ok());
  const std::string chain_text = describe(extended.value().chain);
  EXPECT_NE(chain_text.find("public-key, 2 links"), std::string::npos);
  EXPECT_NE(chain_text.find("bearer-link"), std::string::npos);
}

}  // namespace
}  // namespace rproxy::core
