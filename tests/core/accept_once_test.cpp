#include "core/accept_once_cache.hpp"

#include <gtest/gtest.h>

namespace rproxy::core {
namespace {

using util::kSecond;

TEST(AcceptOnceCache, FirstUseAccepted) {
  AcceptOnceCache cache;
  EXPECT_TRUE(
      cache.check_and_insert("alice", 7, 100 * kSecond, 0).is_ok());
}

TEST(AcceptOnceCache, DuplicateRejected) {
  AcceptOnceCache cache;
  ASSERT_TRUE(
      cache.check_and_insert("alice", 7, 100 * kSecond, 0).is_ok());
  EXPECT_EQ(
      cache.check_and_insert("alice", 7, 100 * kSecond, kSecond).code(),
      util::ErrorCode::kReplay);
}

TEST(AcceptOnceCache, GrantorScoping) {
  AcceptOnceCache cache;
  ASSERT_TRUE(
      cache.check_and_insert("alice", 7, 100 * kSecond, 0).is_ok());
  EXPECT_TRUE(cache.check_and_insert("bob", 7, 100 * kSecond, 0).is_ok());
}

TEST(AcceptOnceCache, ExpiryReleasesIdentifier) {
  AcceptOnceCache cache;
  ASSERT_TRUE(cache.check_and_insert("alice", 7, 10 * kSecond, 0).is_ok());
  EXPECT_TRUE(
      cache.check_and_insert("alice", 7, 100 * kSecond, 20 * kSecond)
          .is_ok());
}

TEST(AcceptOnceCache, SeenQuery) {
  AcceptOnceCache cache;
  EXPECT_FALSE(cache.seen("alice", 7, 0));
  ASSERT_TRUE(cache.check_and_insert("alice", 7, 100 * kSecond, 0).is_ok());
  EXPECT_TRUE(cache.seen("alice", 7, 0));
  EXPECT_FALSE(cache.seen("alice", 7, 200 * kSecond));  // expired
  EXPECT_FALSE(cache.seen("bob", 7, 0));
}

}  // namespace
}  // namespace rproxy::core
