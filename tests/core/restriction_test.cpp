// Restriction type and codec tests (§7).
#include "core/restriction.hpp"

#include <gtest/gtest.h>

#include "core/restriction_set.hpp"

namespace rproxy::core {
namespace {

Restriction round_trip(const Restriction& r) {
  auto decoded =
      wire::decode_from_bytes<Restriction>(wire::encode_to_bytes(r));
  EXPECT_TRUE(decoded.is_ok()) << decoded.status();
  return decoded.is_ok() ? decoded.value() : Restriction{};
}

TEST(RestrictionCodec, Grantee) {
  const Restriction r = GranteeRestriction{{"alice", "bob"}, 2};
  EXPECT_EQ(round_trip(r), r);
  EXPECT_EQ(r.tag(), Restriction::Tag::kGrantee);
  EXPECT_EQ(r.type_name(), "grantee");
}

TEST(RestrictionCodec, ForUseByGroup) {
  const Restriction r = ForUseByGroupRestriction{
      {GroupName{"gs", "staff"}, GroupName{"gs2", "admins"}}, 1};
  EXPECT_EQ(round_trip(r), r);
  EXPECT_EQ(r.type_name(), "for-use-by-group");
}

TEST(RestrictionCodec, IssuedFor) {
  const Restriction r = IssuedForRestriction{{"s1", "s2"}};
  EXPECT_EQ(round_trip(r), r);
}

TEST(RestrictionCodec, Quota) {
  const Restriction r = QuotaRestriction{"pages", 1000};
  EXPECT_EQ(round_trip(r), r);
}

TEST(RestrictionCodec, Authorized) {
  const Restriction r = AuthorizedRestriction{
      {ObjectRights{"/etc/passwd", {"read"}},
       ObjectRights{"/tmp", {}}}};
  EXPECT_EQ(round_trip(r), r);
}

TEST(RestrictionCodec, GroupMembership) {
  const Restriction r =
      GroupMembershipRestriction{{GroupName{"gs", "staff"}}};
  EXPECT_EQ(round_trip(r), r);
}

TEST(RestrictionCodec, AcceptOnce) {
  const Restriction r = AcceptOnceRestriction{0xdeadbeefULL};
  EXPECT_EQ(round_trip(r), r);
}

TEST(RestrictionCodec, LimitRestrictionNested) {
  LimitRestriction limit;
  limit.servers = {"print-server"};
  limit.inner = {Restriction{QuotaRestriction{"pages", 5}},
                 Restriction{AuthorizedRestriction{
                     {ObjectRights{"queue-a", {"print"}}}}}};
  const Restriction r = limit;
  EXPECT_EQ(round_trip(r), r);
}

TEST(RestrictionCodec, DeeplyNestedLimit) {
  LimitRestriction inner;
  inner.servers = {"s2"};
  inner.inner = {Restriction{QuotaRestriction{"usd", 1}}};
  LimitRestriction outer;
  outer.servers = {"s1"};
  outer.inner = {Restriction{inner}};
  const Restriction r = outer;
  EXPECT_EQ(round_trip(r), r);
}

TEST(RestrictionCodec, UnknownTagFailsClosed) {
  wire::Encoder enc;
  enc.u16(999);  // no such restriction type
  enc.str("whatever");
  EXPECT_EQ(wire::decode_from_bytes<Restriction>(enc.view()).code(),
            util::ErrorCode::kParseError);
}

TEST(RestrictionSetCodec, RoundTrip) {
  RestrictionSet set;
  set.add(GranteeRestriction{{"alice"}, 1});
  set.add(QuotaRestriction{"usd", 100});
  set.add(AcceptOnceRestriction{7});
  auto decoded = wire::decode_from_bytes<RestrictionSet>(
      wire::encode_to_bytes(set));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), set);
}

TEST(RestrictionSet, BlobsRoundTrip) {
  RestrictionSet set;
  set.add(IssuedForRestriction{{"s"}});
  set.add(QuotaRestriction{"usd", 1});
  auto restored = RestrictionSet::from_blobs(set.to_blobs());
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), set);
}

TEST(RestrictionSet, MalformedBlobFailsClosed) {
  EXPECT_EQ(
      RestrictionSet::from_blobs({util::Bytes{0xff, 0xff}}).code(),
      util::ErrorCode::kParseError);
}

TEST(RestrictionSet, MergePreservesOrderAndEverything) {
  RestrictionSet a;
  a.add(QuotaRestriction{"usd", 1});
  RestrictionSet b;
  b.add(QuotaRestriction{"usd", 2});
  b.add(AcceptOnceRestriction{1});
  const RestrictionSet merged = a.merged(b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.items()[0], a.items()[0]);
  EXPECT_EQ(merged.items()[1], b.items()[0]);
  EXPECT_EQ(merged.items()[2], b.items()[1]);
}

TEST(RestrictionSet, IsDelegate) {
  RestrictionSet bearer;
  bearer.add(QuotaRestriction{"usd", 1});
  EXPECT_FALSE(bearer.is_delegate());
  bearer.add(GranteeRestriction{{"alice"}, 1});
  EXPECT_TRUE(bearer.is_delegate());
}

TEST(RestrictionSet, FindReturnsFirstOfType) {
  RestrictionSet set;
  set.add(QuotaRestriction{"usd", 1});
  set.add(QuotaRestriction{"pages", 2});
  const auto* q = set.find<QuotaRestriction>();
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->currency, "usd");
  EXPECT_EQ(set.find<GranteeRestriction>(), nullptr);
}

}  // namespace
}  // namespace rproxy::core
