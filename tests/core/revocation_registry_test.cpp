// RevocationRegistry semantics: epoch monotonicity, cutoffs, the
// certificate list, snapshot/current checks, persistence (encode/merge,
// events, apply idempotence), and listener plumbing.
#include "core/revocation.hpp"

#include <gtest/gtest.h>

#include "crypto/digest.hpp"
#include "util/clock.hpp"

namespace rproxy::core {
namespace {

using util::ErrorCode;
using util::kMinute;

RevocationId id_of(char fill) {
  RevocationId id{};
  id.fill(static_cast<unsigned char>(fill));
  return id;
}

TEST(RevocationRegistry, BumpAdvancesEpochAndVersion) {
  RevocationRegistry registry;
  EXPECT_EQ(registry.epoch_of("alice"), 0u);
  EXPECT_EQ(registry.version(), 0u);
  EXPECT_EQ(registry.bump("alice"), 1u);
  EXPECT_EQ(registry.bump("alice"), 2u);
  EXPECT_EQ(registry.epoch_of("alice"), 2u);
  EXPECT_EQ(registry.epoch_of("bob"), 0u);
  EXPECT_EQ(registry.version(), 2u);
}

TEST(RevocationRegistry, CheckLinkCleanByDefault) {
  RevocationRegistry registry;
  EXPECT_TRUE(registry.check_link("alice", kMinute, std::nullopt).is_ok());
  // Anonymous link (bearer cascade): no grantor record can apply.
  EXPECT_TRUE(
      registry.check_link(PrincipalName{}, kMinute, std::nullopt).is_ok());
}

TEST(RevocationRegistry, CutoffKillsOlderGrantsOnly) {
  RevocationRegistry registry;
  registry.revoke_grants_before("alice", 10 * kMinute);
  EXPECT_EQ(registry.check_link("alice", 5 * kMinute, std::nullopt).code(),
            ErrorCode::kRevoked);
  // Issued exactly at the cutoff or later: alive (cutoff is exclusive).
  EXPECT_TRUE(
      registry.check_link("alice", 10 * kMinute, std::nullopt).is_ok());
  EXPECT_TRUE(
      registry.check_link("alice", 11 * kMinute, std::nullopt).is_ok());
  // Other grantors untouched.
  EXPECT_TRUE(registry.check_link("bob", 5 * kMinute, std::nullopt).is_ok());
  // Cutoffs only advance: an earlier cutoff cannot resurrect grants.
  registry.revoke_grants_before("alice", 2 * kMinute);
  EXPECT_EQ(registry.check_link("alice", 5 * kMinute, std::nullopt).code(),
            ErrorCode::kRevoked);
}

TEST(RevocationRegistry, CertListKillsOneDelegation) {
  RevocationRegistry registry;
  EXPECT_FALSE(registry.has_cert_revocations());
  registry.revoke_cert("alice", id_of(0x41));
  EXPECT_TRUE(registry.has_cert_revocations());
  // A listed certificate is dead no matter who presents it (anonymous
  // cascade links carry no grantor name).
  EXPECT_EQ(registry.check_link(PrincipalName{}, kMinute, id_of(0x41)).code(),
            ErrorCode::kRevoked);
  EXPECT_EQ(registry.check_link("alice", kMinute, id_of(0x41)).code(),
            ErrorCode::kRevoked);
  // Unlisted certificates from the same grantor survive.
  EXPECT_TRUE(registry.check_link("alice", kMinute, id_of(0x42)).is_ok());
}

TEST(RevocationRegistry, EventsImplyBumps) {
  RevocationRegistry registry;
  registry.revoke_grants_before("alice", kMinute);
  EXPECT_EQ(registry.epoch_of("alice"), 1u);
  registry.revoke_cert("alice", id_of(1));
  EXPECT_EQ(registry.epoch_of("alice"), 2u);
  EXPECT_EQ(registry.version(), 2u);
}

TEST(RevocationRegistry, SnapshotAndCurrency) {
  RevocationRegistry registry;
  registry.bump("alice");
  std::vector<std::pair<PrincipalName, std::uint64_t>> recorded;
  const std::uint64_t version =
      registry.snapshot_epochs({"alice", "bob"}, recorded);
  EXPECT_EQ(version, registry.version());
  ASSERT_EQ(recorded.size(), 2u);
  EXPECT_TRUE(registry.epochs_current(recorded));

  registry.bump("carol");  // unrelated grantor: snapshot stays current
  EXPECT_TRUE(registry.epochs_current(recorded));

  registry.bump("bob");  // recorded grantor: snapshot goes stale
  EXPECT_FALSE(registry.epochs_current(recorded));
}

TEST(RevocationRegistry, StatsCount) {
  RevocationRegistry registry;
  registry.bump("alice");
  registry.revoke_grants_before("bob", kMinute);
  registry.revoke_cert("bob", id_of(7));
  (void)registry.check_link("alice", 0, std::nullopt);
  (void)registry.check_link("bob", 0, std::nullopt);  // rejected by cutoff
  const RevocationStats s = registry.stats();
  EXPECT_EQ(s.epoch_bumps, 3u);
  EXPECT_EQ(s.grantor_cuts, 1u);
  EXPECT_EQ(s.cert_revocations, 1u);
  EXPECT_EQ(s.link_checks, 2u);
  EXPECT_EQ(s.link_rejections, 1u);
  EXPECT_EQ(s.tracked_grantors, 2u);
  EXPECT_EQ(s.listed_certs, 1u);
}

TEST(RevocationRegistry, EventCodecRoundTrip) {
  RevocationRegistry::Event event;
  event.grantor = "alice";
  event.epoch = 7;
  event.cut_before = 3 * kMinute;
  event.cert = id_of(0x5a);
  wire::Encoder enc;
  event.encode(enc);
  wire::Decoder dec(enc.view());
  const auto decoded = RevocationRegistry::Event::decode(dec);
  ASSERT_TRUE(dec.finish().is_ok());
  EXPECT_EQ(decoded.grantor, event.grantor);
  EXPECT_EQ(decoded.epoch, event.epoch);
  EXPECT_EQ(decoded.cut_before, event.cut_before);
  ASSERT_TRUE(decoded.cert.has_value());
  EXPECT_EQ(*decoded.cert, *event.cert);
}

TEST(RevocationRegistry, ApplyIsIdempotent) {
  RevocationRegistry source;
  source.revoke_grants_before("alice", 5 * kMinute);
  source.revoke_cert("alice", id_of(3));

  RevocationRegistry replayed;
  std::vector<RevocationRegistry::Event> events;
  const std::uint64_t token = source.add_listener(
      [&events](const RevocationRegistry::Event& e) { events.push_back(e); });
  source.bump("alice");
  source.remove_listener(token);
  ASSERT_EQ(events.size(), 1u);

  // Replaying the same event twice (journal replay after a partial crash)
  // must not advance the epoch twice.
  replayed.apply(events[0]);
  const std::uint64_t once = replayed.epoch_of("alice");
  replayed.apply(events[0]);
  EXPECT_EQ(replayed.epoch_of("alice"), once);
  EXPECT_EQ(once, events[0].epoch);
}

TEST(RevocationRegistry, EncodeMergeRoundTrip) {
  RevocationRegistry source;
  source.bump("alice");
  source.revoke_grants_before("bob", 9 * kMinute);
  source.revoke_cert("bob", id_of(0x11));
  source.revoke_cert("carol", id_of(0x22));

  wire::Encoder enc;
  source.encode_state(enc);

  RevocationRegistry restored;
  {
    wire::Decoder dec(enc.view());
    ASSERT_TRUE(restored.merge_state(dec).is_ok());
    ASSERT_TRUE(dec.finish().is_ok());
  }
  EXPECT_EQ(restored.epoch_of("alice"), source.epoch_of("alice"));
  EXPECT_EQ(restored.epoch_of("bob"), source.epoch_of("bob"));
  EXPECT_EQ(restored.check_link("bob", kMinute, std::nullopt).code(),
            ErrorCode::kRevoked);
  EXPECT_EQ(
      restored.check_link(PrincipalName{}, kMinute, id_of(0x22)).code(),
      ErrorCode::kRevoked);

  // Merging the same state again changes nothing (idempotence).
  {
    wire::Decoder dec(enc.view());
    ASSERT_TRUE(restored.merge_state(dec).is_ok());
  }
  EXPECT_EQ(restored.epoch_of("bob"), source.epoch_of("bob"));
  EXPECT_EQ(restored.stats().listed_certs, 2u);

  // Merging keeps whatever the destination already had that is newer.
  restored.bump("alice");
  const std::uint64_t advanced = restored.epoch_of("alice");
  {
    wire::Decoder dec(enc.view());
    ASSERT_TRUE(restored.merge_state(dec).is_ok());
  }
  EXPECT_EQ(restored.epoch_of("alice"), advanced);
}

TEST(RevocationRegistry, ListenerSeesAbsoluteValuesOutsideLock) {
  RevocationRegistry registry;
  std::vector<RevocationRegistry::Event> events;
  const std::uint64_t token = registry.add_listener(
      [&](const RevocationRegistry::Event& e) {
        // Re-entering a reader from the listener must not deadlock: the
        // registry promises to invoke listeners outside its lock.
        EXPECT_EQ(registry.epoch_of(e.grantor), e.epoch);
        events.push_back(e);
      });
  registry.bump("alice");
  registry.revoke_grants_before("alice", 4 * kMinute);
  registry.revoke_cert("bob", id_of(9));
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].epoch, 1u);
  EXPECT_EQ(events[1].epoch, 2u);
  EXPECT_EQ(events[1].cut_before, 4 * kMinute);
  ASSERT_TRUE(events[2].cert.has_value());
  EXPECT_EQ(*events[2].cert, id_of(9));

  registry.remove_listener(token);
  registry.bump("alice");
  EXPECT_EQ(events.size(), 3u);  // removed listener no longer fires

  // apply() must NOT notify listeners (a journaling listener would echo
  // replayed records back into the journal).
  const std::uint64_t token2 = registry.add_listener(
      [&](const RevocationRegistry::Event& e) { events.push_back(e); });
  RevocationRegistry::Event replay;
  replay.grantor = "alice";
  replay.epoch = 99;
  registry.apply(replay);
  EXPECT_EQ(events.size(), 3u);
  registry.remove_listener(token2);
}

}  // namespace
}  // namespace rproxy::core
