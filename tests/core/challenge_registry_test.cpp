#include "core/challenge_registry.hpp"

#include <gtest/gtest.h>

namespace rproxy::core {
namespace {

using util::kMinute;
using util::kSecond;

TEST(ChallengeRegistry, IssueAndTake) {
  ChallengeRegistry registry;
  const auto c = registry.issue(0);
  EXPECT_EQ(c.nonce.size(), 32u);
  auto taken = registry.take(c.id, kSecond);
  ASSERT_TRUE(taken.is_ok());
  EXPECT_EQ(taken.value(), c.nonce);
}

TEST(ChallengeRegistry, SingleUse) {
  ChallengeRegistry registry;
  const auto c = registry.issue(0);
  ASSERT_TRUE(registry.take(c.id, 0).is_ok());
  EXPECT_EQ(registry.take(c.id, 0).code(), util::ErrorCode::kProtocolError);
}

TEST(ChallengeRegistry, UnknownIdRejected) {
  ChallengeRegistry registry;
  EXPECT_EQ(registry.take(12345, 0).code(), util::ErrorCode::kProtocolError);
}

TEST(ChallengeRegistry, ExpiryEnforced) {
  ChallengeRegistry registry(kMinute);
  const auto c = registry.issue(0);
  EXPECT_EQ(registry.take(c.id, 2 * kMinute).code(),
            util::ErrorCode::kExpired);
}

TEST(ChallengeRegistry, DistinctChallenges) {
  ChallengeRegistry registry;
  const auto a = registry.issue(0);
  const auto b = registry.issue(0);
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(a.nonce, b.nonce);
}

TEST(ChallengeRegistry, StaleChallengesPurgedOnIssue) {
  ChallengeRegistry registry(kMinute);
  for (int i = 0; i < 100; ++i) (void)registry.issue(0);
  EXPECT_EQ(registry.outstanding(), 100u);
  (void)registry.issue(10 * kMinute);  // everything older expired
  EXPECT_EQ(registry.outstanding(), 1u);
}

TEST(ChallengeRegistry, StaleChallengesPurgedOnTake) {
  // A server that stops issuing challenges (e.g. clients switched to
  // timestamp mode) must still shed abandoned ones: take() runs the same
  // amortized sweep as issue().
  ChallengeRegistry registry(kMinute);
  for (int i = 0; i < 100; ++i) (void)registry.issue(0);
  EXPECT_EQ(registry.outstanding(), 100u);
  // A failing take() long after expiry — with no further issues — drains
  // the registry rather than leaving 100 corpses forever.
  EXPECT_FALSE(registry.take(999999, 10 * kMinute).is_ok());
  EXPECT_EQ(registry.outstanding(), 0u);
}

TEST(ChallengeRegistry, TakeSweepIsAmortizedOncePerSecond) {
  ChallengeRegistry registry(kMinute);
  (void)registry.issue(0);
  const auto live = registry.issue(10 * kMinute);
  // First take at t=10min sweeps the stale challenge from t=0...
  EXPECT_FALSE(registry.take(999999, 10 * kMinute).is_ok());
  EXPECT_EQ(registry.outstanding(), 1u);
  // ...and the surviving challenge is still claimable.
  EXPECT_TRUE(registry.take(live.id, 10 * kMinute + kSecond).is_ok());
}

}  // namespace
}  // namespace rproxy::core
