// Chain-verification cache correctness.
//
// The cache may elide signature/MAC/ticket re-verification for
// byte-identical chains, and NOTHING else: expiry, proof freshness,
// challenge single-use, replay protection, accept-once and restriction
// evaluation must behave identically with the cache on or off.  Most tests
// here run the same scenario against a cached and an uncached verifier (or
// end-server) and assert the outcomes agree.
#include <gtest/gtest.h>

#include "authz/capability.hpp"
#include "core/revocation_id.hpp"
#include "core/verifier.hpp"
#include "server/file_server.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

core::RestrictionSet one_quota(std::uint64_t n) {
  core::RestrictionSet set;
  set.add(core::QuotaRestriction{"usd", n});
  return set;
}

class VerifyCacheTest : public ::testing::Test {
 protected:
  VerifyCacheTest() {
    world_.add_principal("alice");
    world_.add_principal("file-server");
  }

  core::ProxyVerifier make_verifier(std::size_t capacity,
                                    util::Duration ttl = 5 * util::kMinute,
                                    bool with_revocation = false) {
    core::ProxyVerifier::Config vc;
    vc.server_name = "file-server";
    vc.server_key = world_.principal("file-server").krb_key;
    vc.resolver = &world_.resolver;
    vc.pk_root = world_.name_server.root_key();
    vc.verify_cache_capacity = capacity;
    vc.verify_cache_ttl = ttl;
    if (with_revocation) vc.revocation = &world_.revocation;
    return core::ProxyVerifier(std::move(vc));
  }

  core::Proxy pk_chain(std::size_t depth, util::Duration lifetime) {
    core::Proxy proxy =
        core::grant_pk_proxy("alice", world_.principal("alice").identity,
                             one_quota(100), world_.clock.now(), lifetime);
    for (std::size_t i = 1; i < depth; ++i) {
      proxy = core::extend_bearer(proxy, one_quota(100 - i),
                                  world_.clock.now(), lifetime)
                  .value();
    }
    return proxy;
  }

  World world_;
};

TEST_F(VerifyCacheTest, WarmHitSkipsReverification) {
  const core::Proxy proxy = pk_chain(4, util::kHour);
  const core::ProxyVerifier verifier = make_verifier(1024);

  auto first = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(first.is_ok()) << first.status();
  auto second = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(second.is_ok()) << second.status();

  const core::ChainCacheStats stats = verifier.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.size, 1u);

  // The cached result is indistinguishable from the fresh one.
  EXPECT_EQ(first.value().grantor, second.value().grantor);
  EXPECT_EQ(first.value().expires_at, second.value().expires_at);
  EXPECT_EQ(first.value().chain_length, second.value().chain_length);
  EXPECT_EQ(wire::encode_to_bytes(first.value().effective_restrictions),
            wire::encode_to_bytes(second.value().effective_restrictions));
}

TEST_F(VerifyCacheTest, ExpiredChainRejectedAfterWarmHit) {
  const core::Proxy proxy = pk_chain(2, 10 * util::kMinute);
  // TTL longer than the chain lifetime so expiry, not the TTL, triggers.
  const core::ProxyVerifier cached = make_verifier(1024, util::kHour);
  const core::ProxyVerifier uncached = make_verifier(0);

  ASSERT_TRUE(cached.verify_chain(proxy.chain, world_.clock.now()).is_ok());
  ASSERT_TRUE(cached.verify_chain(proxy.chain, world_.clock.now()).is_ok());
  EXPECT_EQ(cached.cache_stats().hits, 1u);

  world_.clock.advance(util::kHour);
  auto with_cache = cached.verify_chain(proxy.chain, world_.clock.now());
  auto without = uncached.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_FALSE(with_cache.is_ok());
  ASSERT_FALSE(without.is_ok());
  EXPECT_EQ(with_cache.status().code(), util::ErrorCode::kExpired);
  // Exact parity: the cached path falls through to full verification, so
  // even the message matches the uncached verifier's.
  EXPECT_EQ(with_cache.status().to_string(), without.status().to_string());
  EXPECT_EQ(cached.cache_stats().expired_drops, 1u);
}

TEST_F(VerifyCacheTest, TamperedChainMissesCacheAndFails) {
  const core::Proxy proxy = pk_chain(3, util::kHour);
  const core::ProxyVerifier cached = make_verifier(1024);
  const core::ProxyVerifier uncached = make_verifier(0);

  ASSERT_TRUE(cached.verify_chain(proxy.chain, world_.clock.now()).is_ok());

  // Flip one bit of a middle certificate's signature.
  core::ProxyChain tampered = proxy.chain;
  tampered.certs[1].signature[5] ^= 0x01;
  auto with_cache = cached.verify_chain(tampered, world_.clock.now());
  auto without = uncached.verify_chain(tampered, world_.clock.now());
  ASSERT_FALSE(with_cache.is_ok());
  ASSERT_FALSE(without.is_ok());
  EXPECT_EQ(with_cache.status().code(), without.status().code());

  // The tampered bytes hash to a different key: a miss, never a hit, and
  // the failed verification is not cached afterwards.
  const core::ChainCacheStats stats = cached.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 1u);
}

TEST_F(VerifyCacheTest, TtlLapseForcesReverification) {
  const core::Proxy proxy = pk_chain(2, util::kHour);
  const core::ProxyVerifier verifier =
      make_verifier(1024, /*ttl=*/util::kMinute);

  ASSERT_TRUE(verifier.verify_chain(proxy.chain, world_.clock.now()).is_ok());
  world_.clock.advance(2 * util::kMinute);
  // Chain still valid but the reuse window lapsed: full re-verification.
  ASSERT_TRUE(verifier.verify_chain(proxy.chain, world_.clock.now()).is_ok());

  const core::ChainCacheStats stats = verifier.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.expired_drops, 1u);
}

TEST_F(VerifyCacheTest, CapacityBoundEvicts) {
  const core::ProxyVerifier verifier = make_verifier(2);
  std::vector<core::Proxy> proxies;
  for (int i = 0; i < 3; ++i) proxies.push_back(pk_chain(1, util::kHour));

  for (const core::Proxy& p : proxies) {
    ASSERT_TRUE(verifier.verify_chain(p.chain, world_.clock.now()).is_ok());
  }
  const core::ChainCacheStats stats = verifier.cache_stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // The evicted (least recently used) chain re-verifies fine — as a miss.
  ASSERT_TRUE(
      verifier.verify_chain(proxies[0].chain, world_.clock.now()).is_ok());
  EXPECT_EQ(verifier.cache_stats().misses, 4u);
}

TEST_F(VerifyCacheTest, SymmetricChainWarmHit) {
  world_.net.set_default_latency(0);
  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(8 * util::kHour);
  ASSERT_TRUE(tgt.is_ok()) << tgt.status();
  auto creds =
      client.get_ticket(tgt.value(), "file-server", 8 * util::kHour);
  ASSERT_TRUE(creds.is_ok()) << creds.status();
  const core::Proxy proxy = core::grant_krb_proxy(
      client, creds.value(), one_quota(7), world_.clock.now());

  const core::ProxyVerifier verifier = make_verifier(1024);
  auto first = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(first.is_ok()) << first.status();
  auto second = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(second.is_ok()) << second.status();
  EXPECT_EQ(verifier.cache_stats().hits, 1u);
  EXPECT_EQ(first.value().grantor, second.value().grantor);
}

TEST_F(VerifyCacheTest, ClearCacheDropsEntries) {
  const core::Proxy proxy = pk_chain(2, util::kHour);
  core::ProxyVerifier verifier = make_verifier(1024);
  ASSERT_TRUE(verifier.verify_chain(proxy.chain, world_.clock.now()).is_ok());
  verifier.clear_cache();
  EXPECT_EQ(verifier.cache_stats().size, 0u);
  ASSERT_TRUE(verifier.verify_chain(proxy.chain, world_.clock.now()).is_ok());
  EXPECT_EQ(verifier.cache_stats().misses, 2u);
}

TEST_F(VerifyCacheTest, DisabledCacheReportsZeroStats) {
  const core::Proxy proxy = pk_chain(2, util::kHour);
  const core::ProxyVerifier verifier = make_verifier(0);
  ASSERT_TRUE(verifier.verify_chain(proxy.chain, world_.clock.now()).is_ok());
  ASSERT_TRUE(verifier.verify_chain(proxy.chain, world_.clock.now()).is_ok());
  const core::ChainCacheStats stats = verifier.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.size, 0u);
}

// --- Revocation epochs: warm entries must not outlive ground truth ---

TEST_F(VerifyCacheTest, RevocationBumpDropsOnlyAffectedEntries) {
  world_.add_principal("carol");
  const core::Proxy from_alice = pk_chain(2, util::kHour);
  const core::Proxy from_carol =
      core::grant_pk_proxy("carol", world_.principal("carol").identity,
                           one_quota(5), world_.clock.now(), util::kHour);
  const core::ProxyVerifier verifier =
      make_verifier(1024, util::kHour, /*with_revocation=*/true);

  // Warm both grantors' entries.
  ASSERT_TRUE(
      verifier.verify_chain(from_alice.chain, world_.clock.now()).is_ok());
  ASSERT_TRUE(
      verifier.verify_chain(from_carol.chain, world_.clock.now()).is_ok());
  EXPECT_EQ(verifier.cache_stats().size, 2u);

  world_.revocation.bump("alice");

  // Alice's entry is dropped (stale epoch) and re-verified in full.  A
  // bare bump revokes nothing by itself, so the fresh verify still
  // succeeds and re-caches under the current epoch.
  auto realice = verifier.verify_chain(from_alice.chain, world_.clock.now());
  ASSERT_TRUE(realice.is_ok()) << realice.status();
  core::ChainCacheStats stats = verifier.cache_stats();
  EXPECT_EQ(stats.revocation_stale_drops, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // Carol's entry survived the targeted invalidation: a hit, not a drop.
  ASSERT_TRUE(
      verifier.verify_chain(from_carol.chain, world_.clock.now()).is_ok());
  stats = verifier.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.revocation_stale_drops, 1u);

  // And the refreshed alice entry hits again on the next presentation.
  ASSERT_TRUE(
      verifier.verify_chain(from_alice.chain, world_.clock.now()).is_ok());
  EXPECT_EQ(verifier.cache_stats().hits, 2u);
}

TEST_F(VerifyCacheTest, RevokedGrantorRejectedDespiteWarmCache) {
  const core::Proxy proxy = pk_chain(3, util::kHour);
  // TTL and capacity deliberately generous: the registry, not the TTL,
  // must be what unseats the warm entry.
  const core::ProxyVerifier cached =
      make_verifier(1024, util::kHour, /*with_revocation=*/true);
  const core::ProxyVerifier uncached =
      make_verifier(0, util::kHour, /*with_revocation=*/true);

  ASSERT_TRUE(cached.verify_chain(proxy.chain, world_.clock.now()).is_ok());
  ASSERT_TRUE(cached.verify_chain(proxy.chain, world_.clock.now()).is_ok());
  EXPECT_EQ(cached.cache_stats().hits, 1u);

  world_.clock.advance(util::kMinute);
  world_.revocation.revoke_grants_before("alice", world_.clock.now());

  // The very next presentation fails — warm cache included — and the
  // cached verifier's outcome is byte-identical to the uncached one's.
  auto with_cache = cached.verify_chain(proxy.chain, world_.clock.now());
  auto without = uncached.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_FALSE(with_cache.is_ok());
  ASSERT_FALSE(without.is_ok());
  EXPECT_EQ(with_cache.status().code(), util::ErrorCode::kRevoked);
  EXPECT_EQ(with_cache.status().to_string(), without.status().to_string());
  EXPECT_EQ(cached.cache_stats().revocation_stale_drops, 1u);
  // The failed re-verification must not be re-cached.
  EXPECT_EQ(cached.cache_stats().size, 0u);
}

TEST_F(VerifyCacheTest, CertRevocationKillsOneChainNotTheGrantor) {
  const core::Proxy narrow = pk_chain(1, util::kHour);
  const core::Proxy other = pk_chain(1, util::kHour);
  const core::ProxyVerifier verifier =
      make_verifier(1024, util::kHour, /*with_revocation=*/true);
  ASSERT_TRUE(
      verifier.verify_chain(narrow.chain, world_.clock.now()).is_ok());
  ASSERT_TRUE(verifier.verify_chain(other.chain, world_.clock.now()).is_ok());

  world_.revocation.revoke_cert(
      "alice", core::revocation_id_of(narrow.chain.certs[0]));

  auto revoked = verifier.verify_chain(narrow.chain, world_.clock.now());
  EXPECT_EQ(revoked.status().code(), util::ErrorCode::kRevoked);
  // The sibling grant re-verifies in full (same grantor ⇒ its entry also
  // went stale) but remains valid.
  auto alive = verifier.verify_chain(other.chain, world_.clock.now());
  ASSERT_TRUE(alive.is_ok()) << alive.status();
  EXPECT_EQ(verifier.cache_stats().revocation_stale_drops, 2u);
}

// --- End-server level: per-presentation checks still bite on cache hits ---

class VerifyCacheEndServerTest : public ::testing::Test {
 protected:
  VerifyCacheEndServerTest() {
    world_.add_principal("alice");
    world_.add_principal("bob");
    world_.add_principal("file-server");
  }

  std::unique_ptr<server::FileServer> make_server(std::size_t capacity) {
    server::EndServer::Config config =
        world_.end_server_config("file-server");
    config.verify_cache_capacity = capacity;
    auto server = std::make_unique<server::FileServer>(std::move(config));
    server->put_file("/doc", "contents");
    server->acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    return server;
  }

  core::Proxy alice_capability() {
    return authz::make_capability_pk(
        "alice", world_.principal("alice").identity, "file-server",
        {core::ObjectRights{"/doc", {"read"}}}, world_.clock.now(),
        util::kHour);
  }

  World world_;
};

TEST_F(VerifyCacheEndServerTest, ReplayedChallengeRejectedOnCacheHit) {
  auto server = make_server(1024);
  world_.net.attach("file-server", *server);
  const core::Proxy cap = alice_capability();
  server::AppClient bob(world_.net, world_.clock, "bob");

  // Warm the cache with a successful presentation.
  ASSERT_TRUE(
      bob.invoke_with_proxy("file-server", cap, "read", "/doc").is_ok());
  ASSERT_GE(server->verifier().cache_stats().size, 1u);

  // Replay an already-consumed challenge with the (cached) chain: the
  // single-use challenge check runs before and regardless of the cache.
  auto challenge = bob.get_challenge("file-server");
  ASSERT_TRUE(challenge.is_ok());
  server::AppRequestPayload req;
  req.operation = "read";
  req.object = "/doc";
  req.challenge_id = challenge.value().id;
  req.credentials.push_back(core::PresentedCredential{
      cap.chain, core::prove_bearer(cap, challenge.value().nonce,
                                    "file-server", world_.clock.now(),
                                    req.digest())});
  auto first = world_.net.rpc("bob", "file-server",
                              net::MsgType::kAppRequest,
                              wire::encode_to_bytes(req));
  ASSERT_TRUE(first.is_ok());
  EXPECT_TRUE(net::status_of(first.value()).is_ok());
  EXPECT_GE(server->verifier().cache_stats().hits, 1u);

  auto replayed = world_.net.rpc("bob", "file-server",
                                 net::MsgType::kAppRequest,
                                 wire::encode_to_bytes(req));
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(net::status_of(replayed.value()).code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(VerifyCacheEndServerTest, TimestampProofReplayRejectedOnCacheHit) {
  auto server = make_server(1024);
  world_.net.attach("file-server", *server);
  const core::Proxy cap = alice_capability();

  server::AppRequestPayload req;
  req.operation = "read";
  req.object = "/doc";
  req.credentials.push_back(core::PresentedCredential{
      cap.chain, core::prove_bearer(cap, {}, "file-server",
                                    world_.clock.now(), req.digest())});
  const util::Bytes encoded = wire::encode_to_bytes(req);

  auto first = world_.net.rpc("bob", "file-server",
                              net::MsgType::kAppRequest, encoded);
  ASSERT_TRUE(first.is_ok());
  EXPECT_TRUE(net::status_of(first.value()).is_ok());

  // Byte-identical re-presentation: chain would hit the cache, but the
  // replay cache rejects the reused proof first.
  auto replayed = world_.net.rpc("bob", "file-server",
                                 net::MsgType::kAppRequest, encoded);
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(net::status_of(replayed.value()).code(),
            util::ErrorCode::kReplay);
}

TEST_F(VerifyCacheEndServerTest, AcceptOnceSingleUseThroughCache) {
  // Identical scenario against a cached and an uncached server: an
  // accept-once credential works exactly once on both.
  for (const std::size_t capacity : {std::size_t{1024}, std::size_t{0}}) {
    World world;
    world.add_principal("alice");
    world.add_principal("bob");
    world.add_principal("file-server");
    server::EndServer::Config config = world.end_server_config("file-server");
    config.verify_cache_capacity = capacity;
    server::FileServer server(std::move(config));
    server.put_file("/doc", "contents");
    server.acl().add(authz::AclEntry{{"alice"}, {}, {}, {}});
    world.net.attach("file-server", server);

    core::RestrictionSet set;
    set.add(core::AuthorizedRestriction{
        {core::ObjectRights{"/doc", {"read"}}}});
    set.add(core::AcceptOnceRestriction{42});
    const core::Proxy proxy =
        core::grant_pk_proxy("alice", world.principal("alice").identity, set,
                             world.clock.now(), util::kHour);

    server::AppClient bob(world.net, world.clock, "bob");
    auto first = bob.invoke_with_proxy("file-server", proxy, "read", "/doc");
    ASSERT_TRUE(first.is_ok()) << "capacity=" << capacity << ": "
                               << first.status();
    // Fresh challenge and proof, same chain (cache hit when enabled): the
    // accept-once identifier is already burned.
    auto second = bob.invoke_with_proxy("file-server", proxy, "read", "/doc");
    ASSERT_FALSE(second.is_ok()) << "capacity=" << capacity;
    EXPECT_EQ(second.code(), util::ErrorCode::kReplay)
        << "capacity=" << capacity;
    if (capacity > 0) {
      EXPECT_GE(server.verifier().cache_stats().hits, 1u);
    }
  }
}

TEST_F(VerifyCacheEndServerTest, CacheOnOffDecisionParity) {
  // One scenario battery, two servers differing only in cache capacity;
  // every outcome must agree.
  auto cached = make_server(1024);
  auto uncached = make_server(0);
  // Distinct node names so both can live on one SimNet.
  world_.net.attach("file-server", *cached);

  const core::Proxy good = alice_capability();
  core::ProxyChain tampered_chain = good.chain;
  tampered_chain.certs[0].signature[0] ^= 0x80;

  const auto outcome = [&](server::EndServer& srv,
                           const core::ProxyChain& chain,
                           const Operation& op) {
    server::AppRequestPayload req;
    req.operation = op;
    req.object = "/doc";
    req.credentials.push_back(core::PresentedCredential{
        chain, core::prove_bearer(good, {}, "file-server",
                                  world_.clock.now(), req.digest())});
    net::Envelope env;
    env.from = "bob";
    env.to = "file-server";
    env.type = net::MsgType::kAppRequest;
    env.payload = wire::encode_to_bytes(req);
    return net::status_of(srv.handle(env)).code();
  };

  // Twice each so the second cached round goes through hits.
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(outcome(*cached, good.chain, "read"),
              outcome(*uncached, good.chain, "read"));
    EXPECT_EQ(outcome(*cached, tampered_chain, "read"),
              outcome(*uncached, tampered_chain, "read"));
    EXPECT_EQ(outcome(*cached, good.chain, "delete"),
              outcome(*uncached, good.chain, "delete"));
  }
  EXPECT_GE(cached->verifier().cache_stats().hits, 1u);
  EXPECT_EQ(uncached->verifier().cache_stats().hits, 0u);
}

}  // namespace
}  // namespace rproxy
