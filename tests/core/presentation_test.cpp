// Possession proofs (§2): bearer challenge-response and delegate personal
// authentication, with transcript binding.
#include "core/presentation.hpp"

#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "crypto/random.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class PresentationTest : public ::testing::Test {
 protected:
  PresentationTest() {
    world_.add_principal("alice");
    world_.add_principal("bob");
    world_.add_principal("file-server");
    challenge_ = crypto::random_bytes(32);
    rdigest_ = core::request_digest("read", "/doc", {});
  }

  core::ProxyVerifier server_verifier(kdc::ReplayCache* cache = nullptr) {
    core::ProxyVerifier::Config config;
    config.server_name = "file-server";
    config.server_key = world_.principal("file-server").krb_key;
    config.resolver = &world_.resolver;
    config.pk_root = world_.name_server.root_key();
    config.replay_cache = cache;
    return core::ProxyVerifier(std::move(config));
  }

  core::Proxy pk_proxy() {
    return core::grant_pk_proxy("alice",
                                world_.principal("alice").identity, {},
                                world_.clock.now(), util::kHour);
  }

  core::Proxy krb_proxy() {
    kdc::KdcClient client = world_.kdc_client("alice");
    auto tgt = client.authenticate(util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    auto creds = client.get_ticket(tgt.value(), "file-server", util::kHour);
    EXPECT_TRUE(creds.is_ok());
    return core::grant_krb_proxy(client, creds.value(), {},
                                 world_.clock.now());
  }

  World world_;
  util::Bytes challenge_;
  util::Bytes rdigest_;
};

TEST_F(PresentationTest, BearerSigProofVerifies) {
  const core::Proxy proxy = pk_proxy();
  const core::ProxyVerifier verifier = server_verifier();
  auto verified = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok());

  const core::PossessionProof proof = core::prove_bearer(
      proxy, challenge_, "file-server", world_.clock.now(), rdigest_);
  EXPECT_EQ(proof.kind, core::PossessionProof::Kind::kBearerSig);
  auto who = verifier.verify_possession(verified.value(), proof, challenge_,
                                        rdigest_, world_.clock.now());
  ASSERT_TRUE(who.is_ok()) << who.status();
  EXPECT_TRUE(who.value().empty());  // bearer: no identity proven
}

TEST_F(PresentationTest, BearerMacProofVerifies) {
  const core::Proxy proxy = krb_proxy();
  const core::ProxyVerifier verifier = server_verifier();
  auto verified = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok());

  const core::PossessionProof proof = core::prove_bearer(
      proxy, challenge_, "file-server", world_.clock.now(), rdigest_);
  EXPECT_EQ(proof.kind, core::PossessionProof::Kind::kBearerMac);
  EXPECT_TRUE(verifier
                  .verify_possession(verified.value(), proof, challenge_,
                                     rdigest_, world_.clock.now())
                  .is_ok());
}

TEST_F(PresentationTest, ProofBoundToChallenge) {
  const core::Proxy proxy = pk_proxy();
  const core::ProxyVerifier verifier = server_verifier();
  auto verified = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok());
  const core::PossessionProof proof = core::prove_bearer(
      proxy, challenge_, "file-server", world_.clock.now(), rdigest_);
  const util::Bytes other_challenge = crypto::random_bytes(32);
  EXPECT_EQ(verifier
                .verify_possession(verified.value(), proof, other_challenge,
                                   rdigest_, world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(PresentationTest, ProofBoundToRequestDigest) {
  // A proof for "read /doc" cannot authorize "delete /doc".
  const core::Proxy proxy = pk_proxy();
  const core::ProxyVerifier verifier = server_verifier();
  auto verified = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok());
  const core::PossessionProof proof = core::prove_bearer(
      proxy, challenge_, "file-server", world_.clock.now(), rdigest_);
  const util::Bytes other = core::request_digest("delete", "/doc", {});
  EXPECT_EQ(verifier
                .verify_possession(verified.value(), proof, challenge_,
                                   other, world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(PresentationTest, StaleProofRejected) {
  const core::Proxy proxy = pk_proxy();
  const core::ProxyVerifier verifier = server_verifier();
  auto verified = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok());
  const core::PossessionProof proof = core::prove_bearer(
      proxy, challenge_, "file-server", world_.clock.now(), rdigest_);
  world_.clock.advance(util::kHour / 2);
  EXPECT_EQ(verifier
                .verify_possession(verified.value(), proof, challenge_,
                                   rdigest_, world_.clock.now())
                .code(),
            util::ErrorCode::kExpired);
}

TEST_F(PresentationTest, WrongKeyCannotProve) {
  // Bob steals the chain (certificates only) but lacks the proxy key.
  const core::Proxy proxy = pk_proxy();
  core::Proxy stolen = proxy;
  stolen.secret = crypto::SigningKeyPair::generate().private_bytes();
  const core::ProxyVerifier verifier = server_verifier();
  auto verified = verifier.verify_chain(stolen.chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok());
  const core::PossessionProof proof = core::prove_bearer(
      stolen, challenge_, "file-server", world_.clock.now(), rdigest_);
  EXPECT_EQ(verifier
                .verify_possession(verified.value(), proof, challenge_,
                                   rdigest_, world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(PresentationTest, DelegateKrbProofAuthenticatesGrantee) {
  kdc::ReplayCache cache;
  const core::ProxyVerifier verifier = server_verifier(&cache);
  const core::Proxy proxy = pk_proxy();  // any chain; proof is what matters
  auto verified = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok());

  kdc::KdcClient bob = world_.kdc_client("bob");
  auto tgt = bob.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = bob.get_ticket(tgt.value(), "file-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());

  const core::PossessionProof proof = core::prove_delegate_krb(
      bob, creds.value(), challenge_, "file-server", world_.clock.now(),
      rdigest_);
  auto who = verifier.verify_possession(verified.value(), proof, challenge_,
                                        rdigest_, world_.clock.now());
  ASSERT_TRUE(who.is_ok()) << who.status();
  ASSERT_EQ(who.value().size(), 1u);
  EXPECT_EQ(who.value()[0], "bob");
}

TEST_F(PresentationTest, DelegatePkProofAuthenticatesGrantee) {
  const core::ProxyVerifier verifier = server_verifier();
  const core::Proxy proxy = pk_proxy();
  auto verified = verifier.verify_chain(proxy.chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok());

  const testing::Principal& bob = world_.principal("bob");
  const core::PossessionProof proof = core::prove_delegate_pk(
      bob.cert, bob.identity, challenge_, "file-server", world_.clock.now(),
      rdigest_);
  auto who = verifier.verify_possession(verified.value(), proof, challenge_,
                                        rdigest_, world_.clock.now());
  ASSERT_TRUE(who.is_ok()) << who.status();
  ASSERT_EQ(who.value().size(), 1u);
  EXPECT_EQ(who.value()[0], "bob");
}

TEST_F(PresentationTest, VerifyIdentityRejectsBearerProofs) {
  const core::ProxyVerifier verifier = server_verifier();
  const core::Proxy proxy = pk_proxy();
  const core::PossessionProof proof = core::prove_bearer(
      proxy, challenge_, "file-server", world_.clock.now(), rdigest_);
  EXPECT_EQ(verifier
                .verify_identity(proof, challenge_, rdigest_,
                                 world_.clock.now())
                .code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(PresentationTest, ProofCodecRoundTrip) {
  const core::Proxy proxy = pk_proxy();
  const core::PossessionProof proof = core::prove_bearer(
      proxy, challenge_, "file-server", world_.clock.now(), rdigest_);
  auto decoded = wire::decode_from_bytes<core::PossessionProof>(
      wire::encode_to_bytes(proof));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().kind, proof.kind);
  EXPECT_EQ(decoded.value().blob, proof.blob);
  EXPECT_EQ(decoded.value().timestamp, proof.timestamp);
}

}  // namespace
}  // namespace rproxy
