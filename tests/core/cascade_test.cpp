// Cascaded proxies (Fig 4, §3.4): bearer and delegate cascading, additive
// restrictions, lifetime clamping, audit trails.
#include "core/cascade.hpp"

#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class CascadeTest : public ::testing::Test {
 protected:
  CascadeTest() {
    world_.add_principal("alice");
    world_.add_principal("intermediate");
    world_.add_principal("file-server");
  }

  core::ProxyVerifier server_verifier() {
    core::ProxyVerifier::Config config;
    config.server_name = "file-server";
    config.server_key = world_.principal("file-server").krb_key;
    config.resolver = &world_.resolver;
    config.pk_root = world_.name_server.root_key();
    return core::ProxyVerifier(std::move(config));
  }

  core::Proxy root_pk(core::RestrictionSet set = {}) {
    return core::grant_pk_proxy("alice",
                                world_.principal("alice").identity,
                                std::move(set), world_.clock.now(),
                                util::kHour);
  }

  core::Proxy root_krb(core::RestrictionSet set = {}) {
    kdc::KdcClient client = world_.kdc_client("alice");
    auto tgt = client.authenticate(util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    auto creds =
        client.get_ticket(tgt.value(), "file-server", util::kHour);
    EXPECT_TRUE(creds.is_ok());
    return core::grant_krb_proxy(client, creds.value(), std::move(set),
                                 world_.clock.now());
  }

  World world_;
};

TEST_F(CascadeTest, PkBearerCascadeVerifies) {
  core::RestrictionSet root_set;
  root_set.add(core::QuotaRestriction{"usd", 100});
  core::RestrictionSet link_set;
  link_set.add(core::QuotaRestriction{"usd", 10});

  auto child = core::extend_bearer(root_pk(root_set), link_set,
                                   world_.clock.now(), util::kHour);
  ASSERT_TRUE(child.is_ok());
  EXPECT_EQ(child.value().chain.certs.size(), 2u);

  auto verified = server_verifier().verify_chain(child.value().chain,
                                                 world_.clock.now());
  ASSERT_TRUE(verified.is_ok()) << verified.status();
  EXPECT_EQ(verified.value().grantor, "alice");
  EXPECT_EQ(verified.value().chain_length, 2u);
  // Restrictions accumulate (Fig 4): both quotas present, conjunction
  // makes the tighter one binding.
  EXPECT_EQ(verified.value().effective_restrictions,
            root_set.merged(link_set));
}

TEST_F(CascadeTest, SymBearerCascadeVerifiesAndUnwrapsKeys) {
  core::RestrictionSet link_set;
  link_set.add(core::QuotaRestriction{"usd", 10});
  auto child = core::extend_bearer(root_krb(), link_set, world_.clock.now(),
                                   util::kHour);
  ASSERT_TRUE(child.is_ok());
  auto verified = server_verifier().verify_chain(child.value().chain,
                                                 world_.clock.now());
  ASSERT_TRUE(verified.is_ok()) << verified.status();
  // The server recovered the FINAL proxy key (§3.4: only the final proxy
  // key is given to the subordinate).
  EXPECT_TRUE(verified.value().sym_proxy_key ==
              crypto::SymmetricKey::from_bytes(child.value().secret));
}

TEST_F(CascadeTest, DeepChainsVerify) {
  for (const bool pk : {true, false}) {
    core::Proxy proxy = pk ? root_pk() : root_krb();
    for (int i = 0; i < 8; ++i) {
      core::RestrictionSet set;
      set.add(core::QuotaRestriction{"hop", static_cast<uint64_t>(100 - i)});
      auto next = core::extend_bearer(proxy, set, world_.clock.now(),
                                      util::kHour);
      ASSERT_TRUE(next.is_ok());
      proxy = std::move(next).value();
    }
    auto verified =
        server_verifier().verify_chain(proxy.chain, world_.clock.now());
    ASSERT_TRUE(verified.is_ok()) << verified.status();
    EXPECT_EQ(verified.value().chain_length, 9u);
    EXPECT_EQ(verified.value().effective_restrictions.size(), 8u);
  }
}

TEST_F(CascadeTest, LinkLifetimeClampedToParent) {
  const core::Proxy parent = root_pk();
  auto child = core::extend_bearer(parent, {}, world_.clock.now(),
                                   100 * util::kHour);
  ASSERT_TRUE(child.is_ok());
  EXPECT_EQ(child.value().expires_at, parent.expires_at);
}

TEST_F(CascadeTest, TamperedLinkRejected) {
  core::RestrictionSet link_set;
  link_set.add(core::QuotaRestriction{"usd", 10});
  auto child = core::extend_bearer(root_pk(), link_set, world_.clock.now(),
                                   util::kHour);
  ASSERT_TRUE(child.is_ok());
  core::Proxy tampered = child.value();
  tampered.chain.certs[1].restrictions = core::RestrictionSet{};
  EXPECT_EQ(server_verifier()
                .verify_chain(tampered.chain, world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(CascadeTest, DroppedMiddleLinkRejected) {
  // Chain a->b->c; presenting root+c without b must fail (the signature of
  // c verifies only under b's proxy key).
  auto b = core::extend_bearer(root_pk(), {}, world_.clock.now(),
                               util::kHour);
  ASSERT_TRUE(b.is_ok());
  auto c = core::extend_bearer(b.value(), {}, world_.clock.now(),
                               util::kHour);
  ASSERT_TRUE(c.is_ok());
  core::Proxy skipped = c.value();
  skipped.chain.certs.erase(skipped.chain.certs.begin() + 1);
  EXPECT_EQ(server_verifier()
                .verify_chain(skipped.chain, world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(CascadeTest, DelegateCascadeLeavesAuditTrail) {
  // Root names the intermediate as grantee; the intermediate extends with
  // its identity signature — "the use of a delegate proxy leaves an audit
  // trail since the new proxy identifies the intermediate server" (§3.4).
  core::RestrictionSet root_set;
  root_set.add(core::GranteeRestriction{{"intermediate"}, 1});
  auto child = core::extend_delegate(
      root_pk(root_set), "intermediate",
      world_.principal("intermediate").identity, {}, world_.clock.now(),
      util::kHour);
  ASSERT_TRUE(child.is_ok());

  auto verified = server_verifier().verify_chain(child.value().chain,
                                                 world_.clock.now());
  ASSERT_TRUE(verified.is_ok()) << verified.status();
  ASSERT_EQ(verified.value().audit_trail.size(), 1u);
  EXPECT_EQ(verified.value().audit_trail[0], "intermediate");
}

TEST_F(CascadeTest, UnnamedIntermediateRejected) {
  // An intermediate NOT named as grantee cannot extend delegate-style.
  core::RestrictionSet root_set;
  root_set.add(core::GranteeRestriction{{"someone-else"}, 1});
  auto child = core::extend_delegate(
      root_pk(root_set), "intermediate",
      world_.principal("intermediate").identity, {}, world_.clock.now(),
      util::kHour);
  ASSERT_TRUE(child.is_ok());  // construction succeeds...
  EXPECT_EQ(server_verifier()
                .verify_chain(child.value().chain, world_.clock.now())
                .code(),
            util::ErrorCode::kNotGrantee);  // ...verification refuses
}

TEST_F(CascadeTest, DelegateCascadeOnBearerProxyRejected) {
  // No grantee restriction at all: identity-signed links have nothing to
  // anchor to.
  auto child = core::extend_delegate(
      root_pk(), "intermediate", world_.principal("intermediate").identity,
      {}, world_.clock.now(), util::kHour);
  ASSERT_TRUE(child.is_ok());
  EXPECT_EQ(server_verifier()
                .verify_chain(child.value().chain, world_.clock.now())
                .code(),
            util::ErrorCode::kNotGrantee);
}

TEST_F(CascadeTest, SymDelegateCascadeUnsupported) {
  // §6.3: the conventional realization cascades bearer-style only.
  auto child = core::extend_delegate(
      root_krb(), "intermediate", world_.principal("intermediate").identity,
      {}, world_.clock.now(), util::kHour);
  EXPECT_EQ(child.code(), util::ErrorCode::kProtocolError);
}

TEST_F(CascadeTest, ForgedIntermediateSignatureRejected) {
  core::RestrictionSet root_set;
  root_set.add(core::GranteeRestriction{{"intermediate"}, 1});
  auto child = core::extend_delegate(
      root_pk(root_set), "intermediate",
      crypto::SigningKeyPair::generate(),  // not the intermediate's key
      {}, world_.clock.now(), util::kHour);
  ASSERT_TRUE(child.is_ok());
  EXPECT_EQ(server_verifier()
                .verify_chain(child.value().chain, world_.clock.now())
                .code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(CascadeTest, ExpiredLinkRejectedEvenIfRootValid) {
  auto child = core::extend_bearer(root_pk(), {}, world_.clock.now(),
                                   util::kMinute);
  ASSERT_TRUE(child.is_ok());
  world_.clock.advance(2 * util::kMinute);
  EXPECT_EQ(server_verifier()
                .verify_chain(child.value().chain, world_.clock.now())
                .code(),
            util::ErrorCode::kExpired);
}

}  // namespace
}  // namespace rproxy
