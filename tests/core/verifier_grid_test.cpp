// Parameterized sweep over the full presentation matrix:
//   realization  x  chain length  x  proxy kind  x  proof kind
// asserting, for every combination, exactly whether it must be accepted —
// the verifier's contract stated as a grid instead of anecdotes.
#include <gtest/gtest.h>

#include "authz/credential_eval.hpp"
#include "core/cascade.hpp"
#include "crypto/random.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

enum class Realization { kPk, kSym };
enum class ProxyKind { kBearer, kDelegate };  // grantee restriction or not
enum class ProofKind { kBearer, kDelegateAsGrantee, kDelegateAsStranger };

struct GridCase {
  Realization realization;
  int chain_length;  // 1..3
  ProxyKind proxy_kind;
  ProofKind proof_kind;
};

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  std::string name;
  name += c.realization == Realization::kPk ? "Pk" : "Sym";
  name += "Len" + std::to_string(c.chain_length);
  name += c.proxy_kind == ProxyKind::kBearer ? "Bearer" : "Delegate";
  switch (c.proof_kind) {
    case ProofKind::kBearer: name += "KeyProof"; break;
    case ProofKind::kDelegateAsGrantee: name += "GranteeProof"; break;
    case ProofKind::kDelegateAsStranger: name += "StrangerProof"; break;
  }
  return name;
}

/// The contract: which combinations must succeed.
bool expected_ok(const GridCase& c) {
  switch (c.proof_kind) {
    case ProofKind::kBearer:
      // Key possession satisfies bearer proxies; a delegate proxy's
      // grantee restriction then fails for lack of identity.
      return c.proxy_kind == ProxyKind::kBearer;
    case ProofKind::kDelegateAsGrantee:
      // Personal auth as the named grantee satisfies delegate proxies;
      // bearer chains REJECT identity-only proofs (anti-theft rule).
      return c.proxy_kind == ProxyKind::kDelegate;
    case ProofKind::kDelegateAsStranger:
      return false;  // never
  }
  return false;
}

class VerifierGridTest : public ::testing::TestWithParam<GridCase> {
 protected:
  VerifierGridTest() {
    world_.add_principal("alice");
    world_.add_principal("grantee");
    world_.add_principal("stranger");
    world_.add_principal("file-server");
    world_.net.set_default_latency(0);
  }

  World world_;
};

TEST_P(VerifierGridTest, MatrixContractHolds) {
  const GridCase c = GetParam();

  // --- Build the root proxy. -------------------------------------------
  core::RestrictionSet root_set;
  if (c.proxy_kind == ProxyKind::kDelegate) {
    root_set.add(core::GranteeRestriction{{"grantee"}, 1});
  }
  root_set.add(core::IssuedForRestriction{{"file-server"}});

  core::Proxy proxy;
  if (c.realization == Realization::kPk) {
    proxy = core::grant_pk_proxy("alice",
                                 world_.principal("alice").identity,
                                 root_set, world_.clock.now(), util::kHour);
  } else {
    kdc::KdcClient alice = world_.kdc_client("alice");
    auto tgt = alice.authenticate(util::kHour);
    ASSERT_TRUE(tgt.is_ok());
    auto creds = alice.get_ticket(tgt.value(), "file-server", util::kHour);
    ASSERT_TRUE(creds.is_ok());
    proxy = core::grant_krb_proxy(alice, creds.value(), root_set,
                                  world_.clock.now());
  }

  // --- Extend bearer-style to the requested length. --------------------
  for (int i = 1; i < c.chain_length; ++i) {
    auto extended = core::extend_bearer(proxy, {}, world_.clock.now(),
                                        util::kHour);
    ASSERT_TRUE(extended.is_ok());
    proxy = std::move(extended).value();
  }

  // --- Build the proof. --------------------------------------------------
  const util::Bytes challenge = crypto::random_bytes(32);
  const util::Bytes rdigest = core::request_digest("read", "/doc", {});
  core::PresentedCredential presented;
  presented.chain = proxy.chain;
  switch (c.proof_kind) {
    case ProofKind::kBearer:
      presented.proof = core::prove_bearer(proxy, challenge, "file-server",
                                           world_.clock.now(), rdigest);
      break;
    case ProofKind::kDelegateAsGrantee: {
      const testing::Principal& who = world_.principal("grantee");
      presented.proof = core::prove_delegate_pk(who.cert, who.identity,
                                                challenge, "file-server",
                                                world_.clock.now(), rdigest);
      break;
    }
    case ProofKind::kDelegateAsStranger: {
      const testing::Principal& who = world_.principal("stranger");
      presented.proof = core::prove_delegate_pk(who.cert, who.identity,
                                                challenge, "file-server",
                                                world_.clock.now(), rdigest);
      break;
    }
  }

  // --- Verify through the shared credential-evaluation path, then
  //     evaluate the chain's restrictions like an end-server would. ------
  core::ProxyVerifier::Config vc;
  vc.server_name = "file-server";
  vc.server_key = world_.principal("file-server").krb_key;
  vc.resolver = &world_.resolver;
  vc.pk_root = world_.name_server.root_key();
  const core::ProxyVerifier verifier(std::move(vc));

  auto evaluated = authz::evaluate_credentials(verifier, {presented}, {},
                                               challenge, rdigest,
                                               world_.clock.now());
  bool ok = evaluated.is_ok();
  if (ok) {
    const authz::VerifiedCredential& cred =
        evaluated.value().credentials.front();
    core::RequestContext ctx;
    ctx.end_server = "file-server";
    ctx.operation = "read";
    ctx.object = "/doc";
    ctx.now = world_.clock.now();
    ctx.effective_identities = evaluated.value().identities;
    ctx.grantor = cred.proxy.grantor;
    ctx.credential_expiry = cred.proxy.expires_at;
    ok = cred.proxy.effective_restrictions.evaluate(ctx).is_ok();
  }

  EXPECT_EQ(ok, expected_ok(c)) << case_name({GetParam(), 0});

  // Whatever else holds: a verified chain always reports alice as grantor.
  if (evaluated.is_ok()) {
    EXPECT_EQ(evaluated.value().credentials.front().proxy.grantor, "alice");
    EXPECT_EQ(evaluated.value().credentials.front().proxy.chain_length,
              static_cast<std::size_t>(c.chain_length));
  }
}

std::vector<GridCase> all_cases() {
  std::vector<GridCase> cases;
  for (Realization realization : {Realization::kPk, Realization::kSym}) {
    for (int length : {1, 2, 3}) {
      for (ProxyKind proxy_kind : {ProxyKind::kBearer, ProxyKind::kDelegate}) {
        for (ProofKind proof_kind :
             {ProofKind::kBearer, ProofKind::kDelegateAsGrantee,
              ProofKind::kDelegateAsStranger}) {
          cases.push_back({realization, length, proxy_kind, proof_kind});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, VerifierGridTest,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace rproxy
