// Granting proxies in both realizations (Fig 1, Fig 6, §6.2).
#include "core/proxy.hpp"

#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class PkProxyTest : public ::testing::Test {
 protected:
  PkProxyTest() { world_.add_principal("alice"); }

  core::RestrictionSet sample_restrictions() {
    core::RestrictionSet set;
    set.add(core::IssuedForRestriction{{"file-server"}});
    set.add(core::AuthorizedRestriction{
        {core::ObjectRights{"/doc", {"read"}}}});
    return set;
  }

  World world_;
};

TEST_F(PkProxyTest, GrantEmbedsCertificateAndSecret) {
  const testing::Principal& alice = world_.principal("alice");
  const core::Proxy proxy =
      core::grant_pk_proxy("alice", alice.identity, sample_restrictions(),
                           world_.clock.now(), util::kHour);

  EXPECT_EQ(proxy.chain.mode, core::ProxyMode::kPublicKey);
  ASSERT_EQ(proxy.chain.certs.size(), 1u);
  EXPECT_FALSE(proxy.chain.krb_root.has_value());
  EXPECT_EQ(proxy.chain.certs[0].grantor, "alice");
  EXPECT_EQ(proxy.chain.certs[0].signer,
            core::SignerKind::kGrantorIdentity);
  EXPECT_EQ(proxy.secret.size(), 32u);  // Ed25519 seed
  EXPECT_EQ(proxy.grantor, "alice");
  EXPECT_EQ(proxy.expires_at, world_.clock.now() + util::kHour);
  EXPECT_FALSE(proxy.is_delegate());
}

TEST_F(PkProxyTest, CertificateSignatureCoversRestrictions) {
  const testing::Principal& alice = world_.principal("alice");
  core::Proxy proxy =
      core::grant_pk_proxy("alice", alice.identity, sample_restrictions(),
                           world_.clock.now(), util::kHour);
  const core::ProxyCertificate& cert = proxy.chain.certs[0];
  EXPECT_TRUE(crypto::verify(alice.identity.public_key(),
                             cert.signed_bytes(), cert.signature));

  // Stripping a restriction invalidates the signature.
  core::ProxyCertificate tampered = cert;
  tampered.restrictions = core::RestrictionSet{};
  EXPECT_FALSE(crypto::verify(alice.identity.public_key(),
                              tampered.signed_bytes(), tampered.signature));
}

TEST_F(PkProxyTest, EmbeddedProxyKeyMatchesSecret) {
  const testing::Principal& alice = world_.principal("alice");
  const core::Proxy proxy =
      core::grant_pk_proxy("alice", alice.identity, {},
                           world_.clock.now(), util::kHour);
  const crypto::SigningKeyPair secret =
      crypto::SigningKeyPair::from_private_bytes(proxy.secret);
  EXPECT_EQ(proxy.chain.certs[0].proxy_key_material,
            secret.public_key().bytes());
}

TEST_F(PkProxyTest, ChainCodecRoundTrip) {
  const testing::Principal& alice = world_.principal("alice");
  const core::Proxy proxy =
      core::grant_pk_proxy("alice", alice.identity, sample_restrictions(),
                           world_.clock.now(), util::kHour);
  auto decoded = wire::decode_from_bytes<core::ProxyChain>(
      wire::encode_to_bytes(proxy.chain));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().certs.size(), 1u);
  EXPECT_EQ(decoded.value().certs[0].signature,
            proxy.chain.certs[0].signature);
  EXPECT_EQ(decoded.value().certs[0].restrictions,
            proxy.chain.certs[0].restrictions);
}

class KrbProxyTest : public ::testing::Test {
 protected:
  KrbProxyTest() {
    world_.add_principal("alice");
    world_.add_principal("file-server");
    client_ = std::make_unique<kdc::KdcClient>(world_.kdc_client("alice"));
    auto tgt = client_->authenticate(util::kHour);
    EXPECT_TRUE(tgt.is_ok());
    auto creds = client_->get_ticket(tgt.value(), "file-server", util::kHour);
    EXPECT_TRUE(creds.is_ok());
    creds_ = creds.value();
  }

  World world_;
  std::unique_ptr<kdc::KdcClient> client_;
  kdc::Credentials creds_;
};

TEST_F(KrbProxyTest, GrantPacksTicketAndAuthenticator) {
  core::RestrictionSet set;
  set.add(core::QuotaRestriction{"pages", 3});
  const core::Proxy proxy =
      core::grant_krb_proxy(*client_, creds_, set, world_.clock.now());

  EXPECT_EQ(proxy.chain.mode, core::ProxyMode::kSymmetric);
  ASSERT_TRUE(proxy.chain.krb_root.has_value());
  EXPECT_TRUE(proxy.chain.certs.empty());
  EXPECT_EQ(proxy.secret.size(), crypto::kSymmetricKeySize);
  EXPECT_EQ(proxy.grantor, "alice");
  EXPECT_EQ(proxy.expires_at, creds_.expires_at);

  // The end-server can unwrap it: ticket opens with its key; the
  // authenticator carries the subkey (= the proxy key) and restrictions.
  auto ticket = kdc::open_ticket(proxy.chain.krb_root->ticket,
                                 world_.principal("file-server").krb_key);
  ASSERT_TRUE(ticket.is_ok());
  auto auth = kdc::open_authenticator(
      proxy.chain.krb_root->sealed_authenticator,
      ticket.value().session_key);
  ASSERT_TRUE(auth.is_ok());
  EXPECT_EQ(auth.value().subkey, proxy.secret);
  auto restored =
      core::RestrictionSet::from_blobs(auth.value().authorization_data);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), set);
}

TEST_F(KrbProxyTest, ProxyBoundToEndServer) {
  // §6.3: "each proxy can be used at only a particular end-server" — the
  // ticket will not open with another server's key.
  world_.add_principal("other-server");
  const core::Proxy proxy =
      core::grant_krb_proxy(*client_, creds_, {}, world_.clock.now());
  EXPECT_FALSE(kdc::open_ticket(proxy.chain.krb_root->ticket,
                                world_.principal("other-server").krb_key)
                   .is_ok());
}

}  // namespace
}  // namespace rproxy
