// Seeded crash injection: determinism is the whole point.
#include <gtest/gtest.h>

#include <set>

#include "storage/crash_point.hpp"

namespace rproxy {
namespace {

using storage::CrashPlan;
using storage::CrashPoint;

TEST(CrashPointTest, InertByDefault) {
  CrashPoint crash;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(crash.admit(64), 64u);
  }
  EXPECT_FALSE(crash.dead());
  EXPECT_EQ(crash.kill_at(), 0u);
}

TEST(CrashPointTest, SameSeedSameSchedule) {
  CrashPlan plan;
  plan.seed = 1234;
  plan.min_appends = 1;
  plan.max_appends = 64;
  CrashPoint a(plan);
  CrashPoint b(plan);
  EXPECT_EQ(a.kill_at(), b.kill_at());
  for (int i = 0; i < 80; ++i) {
    EXPECT_EQ(a.admit(100), b.admit(100)) << "write " << i;
  }
  EXPECT_TRUE(a.dead());
  EXPECT_TRUE(b.dead());
}

TEST(CrashPointTest, SeedsSpreadAcrossTheRange) {
  std::set<std::uint64_t> kill_points;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    CrashPlan plan;
    plan.seed = seed;
    plan.min_appends = 1;
    plan.max_appends = 10;
    CrashPoint crash(plan);
    ASSERT_GE(crash.kill_at(), 1u);
    ASSERT_LE(crash.kill_at(), 10u);
    kill_points.insert(crash.kill_at());
  }
  // 40 seeds over 10 slots must not collapse onto a couple of values.
  EXPECT_GE(kill_points.size(), 5u);
}

TEST(CrashPointTest, TornWriteAdmitsAProperPrefix) {
  CrashPlan plan;
  plan.seed = 7;
  plan.min_appends = 1;
  plan.max_appends = 1;
  plan.tear_mid_write = true;
  CrashPoint crash(plan);
  const std::size_t admitted = crash.admit(1000);
  EXPECT_LT(admitted, 1000u);
  EXPECT_TRUE(crash.dead());
  EXPECT_EQ(crash.admit(1000), 0u);  // dead stays dead
}

TEST(CrashPointTest, CleanBoundaryKillAdmitsNothing) {
  CrashPlan plan;
  plan.seed = 7;
  plan.min_appends = 3;
  plan.max_appends = 3;
  plan.tear_mid_write = false;
  CrashPoint crash(plan);
  EXPECT_EQ(crash.admit(10), 10u);
  EXPECT_EQ(crash.admit(10), 10u);
  EXPECT_EQ(crash.admit(10), 0u);  // dies ON the boundary, nothing torn
  EXPECT_TRUE(crash.dead());
}

TEST(CrashPointTest, RearmRestartsTheClock) {
  CrashPlan plan;
  plan.seed = 11;
  plan.min_appends = 2;
  plan.max_appends = 2;
  CrashPoint crash(plan);
  EXPECT_EQ(crash.admit(8), 8u);
  (void)crash.admit(8);
  EXPECT_TRUE(crash.dead());
  crash.arm(plan);
  EXPECT_FALSE(crash.dead());
  EXPECT_EQ(crash.admit(8), 8u);
}

}  // namespace
}  // namespace rproxy
