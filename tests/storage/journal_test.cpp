// The write-ahead journal: framing, torn tails, fsync policies, crashes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/crc32c.hpp"
#include "storage/journal.hpp"
#include "testing/tempdir.hpp"

namespace rproxy {
namespace {

using storage::CrashPlan;
using storage::CrashPoint;
using storage::FsyncPolicy;
using storage::JournalReader;
using storage::JournalWriter;
using testing::TempDir;

util::Bytes payload(const std::string& text) { return util::to_bytes(text); }

util::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return util::Bytes(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const util::Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: crc32c("123456789") = 0xE3069283.
  EXPECT_EQ(storage::crc32c(util::to_bytes(std::string_view("123456789"))),
            0xE3069283u);
  EXPECT_EQ(storage::crc32c(util::Bytes{}), 0u);
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  const util::Bytes whole = payload("split me anywhere");
  const std::uint32_t one_shot = storage::crc32c(whole);
  for (std::size_t cut = 0; cut <= whole.size(); ++cut) {
    const std::uint32_t first =
        storage::crc32c({whole.data(), cut});
    const std::uint32_t chained =
        storage::crc32c({whole.data() + cut, whole.size() - cut}, first);
    EXPECT_EQ(chained, one_shot) << "cut at " << cut;
  }
}

TEST(JournalTest, EmptyJournalReadsNoRecords) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  auto writer = JournalWriter::create(path, 1, {});
  ASSERT_TRUE(writer.is_ok());
  auto scan = JournalReader::read(path);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_EQ(scan.value().base_lsn, 1u);
  EXPECT_TRUE(scan.value().records.empty());
  EXPECT_FALSE(scan.value().tail_truncated);
}

TEST(JournalTest, AppendReadRoundTrip) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  auto writer = JournalWriter::create(path, 10, {});
  ASSERT_TRUE(writer.is_ok());
  auto lsn1 = writer.value().append(7, payload("first"));
  auto lsn2 = writer.value().append(9, payload(""));
  auto lsn3 = writer.value().append(7, payload("third record"));
  ASSERT_TRUE(lsn1.is_ok());
  EXPECT_EQ(lsn1.value(), 10u);
  EXPECT_EQ(lsn2.value(), 11u);
  EXPECT_EQ(lsn3.value(), 12u);

  auto scan = JournalReader::read(path);
  ASSERT_TRUE(scan.is_ok());
  ASSERT_EQ(scan.value().records.size(), 3u);
  EXPECT_EQ(scan.value().records[0].lsn, 10u);
  EXPECT_EQ(scan.value().records[0].type, 7u);
  EXPECT_EQ(scan.value().records[0].payload, payload("first"));
  EXPECT_EQ(scan.value().records[1].payload, util::Bytes{});
  EXPECT_EQ(scan.value().records[2].payload, payload("third record"));
  EXPECT_FALSE(scan.value().tail_truncated);
}

TEST(JournalTest, SingleTornRecordIsDroppedNotFatal) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  {
    auto writer = JournalWriter::create(path, 1, {});
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(writer.value().append(1, payload("only record")).is_ok());
  }
  // Cut into the middle of the one-and-only frame.
  const util::Bytes whole = read_file(path);
  std::filesystem::resize_file(path, whole.size() - 5);

  auto scan = JournalReader::read(path);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_TRUE(scan.value().records.empty());
  EXPECT_TRUE(scan.value().tail_truncated);
}

TEST(JournalTest, TornTailAfterValidRecordsKeepsThePrefix) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  {
    auto writer = JournalWriter::create(path, 1, {});
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(writer.value().append(1, payload("alpha")).is_ok());
    ASSERT_TRUE(writer.value().append(2, payload("beta")).is_ok());
    ASSERT_TRUE(writer.value().append(3, payload("gamma")).is_ok());
  }
  // Tear three bytes off the final frame.
  const util::Bytes whole = read_file(path);
  std::filesystem::resize_file(path, whole.size() - 3);

  auto scan = JournalReader::read(path);
  ASSERT_TRUE(scan.is_ok());
  ASSERT_EQ(scan.value().records.size(), 2u);
  EXPECT_EQ(scan.value().records[1].payload, payload("beta"));
  EXPECT_TRUE(scan.value().tail_truncated);
}

TEST(JournalTest, BitFlipInvalidatesTheFrameAndEverythingAfter) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  {
    auto writer = JournalWriter::create(path, 1, {});
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(writer.value().append(1, payload("aaaaaaaa")).is_ok());
    ASSERT_TRUE(writer.value().append(2, payload("bbbbbbbb")).is_ok());
    ASSERT_TRUE(writer.value().append(3, payload("cccccccc")).is_ok());
  }
  util::Bytes whole = read_file(path);
  // Flip one payload bit in the SECOND frame (frames are 18 bytes here:
  // 10-byte frame header + 8-byte payload; the file header is 20 bytes).
  whole[20 + 18 + 10 + 3] ^= 0x10;
  write_file(path, whole);

  auto scan = JournalReader::read(path);
  ASSERT_TRUE(scan.is_ok());
  // First record survives; the corrupt frame and the (intact!) third frame
  // are both dropped — order is the only thing that makes torn-tail
  // truncation sound, so nothing after a bad frame can be trusted.
  ASSERT_EQ(scan.value().records.size(), 1u);
  EXPECT_EQ(scan.value().records[0].payload, payload("aaaaaaaa"));
  EXPECT_TRUE(scan.value().tail_truncated);
}

TEST(JournalTest, ReopenTruncatesTornTailAndContinuesLsns) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  {
    auto writer = JournalWriter::create(path, 1, {});
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(writer.value().append(1, payload("kept")).is_ok());
    ASSERT_TRUE(writer.value().append(1, payload("torn away")).is_ok());
  }
  const util::Bytes whole = read_file(path);
  std::filesystem::resize_file(path, whole.size() - 2);

  auto reopened = JournalWriter::open(path, {});
  ASSERT_TRUE(reopened.is_ok());
  // LSN 2 was torn, so the next append re-uses it.
  EXPECT_EQ(reopened.value().next_lsn(), 2u);
  ASSERT_TRUE(reopened.value().append(1, payload("replacement")).is_ok());

  auto scan = JournalReader::read(path);
  ASSERT_TRUE(scan.is_ok());
  ASSERT_EQ(scan.value().records.size(), 2u);
  EXPECT_EQ(scan.value().records[1].payload, payload("replacement"));
  EXPECT_FALSE(scan.value().tail_truncated);
}

TEST(JournalTest, FsyncPolicyMatrixProducesIdenticalContent) {
  TempDir dir;
  std::vector<util::Bytes> files;
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNever, FsyncPolicy::kBatch, FsyncPolicy::kEveryRecord}) {
    const std::string path =
        dir.sub(std::string(storage::fsync_policy_name(policy)) + ".wal");
    JournalWriter::Config config;
    config.fsync_policy = policy;
    config.batch_records = 3;
    auto writer = JournalWriter::create(path, 1, config);
    ASSERT_TRUE(writer.is_ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(writer.value()
                      .append(static_cast<std::uint16_t>(i),
                              payload("record " + std::to_string(i)))
                      .is_ok());
    }
    auto scan = JournalReader::read(path);
    ASSERT_TRUE(scan.is_ok());
    EXPECT_EQ(scan.value().records.size(), 10u);
    files.push_back(read_file(path));
  }
  // Durability policy must not change the on-disk format.
  EXPECT_EQ(files[0], files[1]);
  EXPECT_EQ(files[1], files[2]);
}

TEST(JournalTest, OversizedLengthPrefixIsATornTailNotAnAllocation) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  {
    auto writer = JournalWriter::create(path, 1, {});
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(writer.value().append(1, payload("good")).is_ok());
  }
  util::Bytes whole = read_file(path);
  // Append a frame header claiming a ~4 GiB payload.
  for (const std::uint8_t b : {0xFFu, 0xFFu, 0xFFu, 0xF0u, 0x00u, 0x01u,
                               0x12u, 0x34u, 0x56u, 0x78u}) {
    whole.push_back(b);
  }
  write_file(path, whole);

  auto scan = JournalReader::read(path);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_EQ(scan.value().records.size(), 1u);
  EXPECT_TRUE(scan.value().tail_truncated);
}

TEST(JournalTest, NotAJournalIsAnError) {
  TempDir dir;
  const std::string path = dir.sub("garbage.wal");
  write_file(path, payload("this is not a journal file at all........"));
  EXPECT_EQ(JournalReader::read(path).code(), util::ErrorCode::kParseError);
  EXPECT_EQ(JournalReader::read(dir.sub("missing.wal")).code(),
            util::ErrorCode::kUnavailable);
}

TEST(JournalTest, CrashPointTearsTheFatalWriteAndKillsTheWriter) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  CrashPoint crash;
  CrashPlan plan;
  plan.seed = 42;
  plan.min_appends = 3;
  plan.max_appends = 3;  // die on the 3rd frame, deterministically
  crash.arm(plan);

  JournalWriter::Config config;
  config.crash = &crash;
  auto writer = JournalWriter::create(path, 1, config);
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE(writer.value().append(1, payload("one")).is_ok());
  ASSERT_TRUE(writer.value().append(1, payload("two")).is_ok());
  const auto fatal = writer.value().append(1, payload("three"));
  EXPECT_EQ(fatal.code(), util::ErrorCode::kUnavailable);
  EXPECT_TRUE(crash.dead());
  // Dead means dead: no further appends.
  EXPECT_EQ(writer.value().append(1, payload("four")).code(),
            util::ErrorCode::kUnavailable);

  // Recovery sees the two durable records; the torn third is dropped.
  auto scan = JournalReader::read(path);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_EQ(scan.value().records.size(), 2u);
}

TEST(JournalTest, DuplicateFramesRoundTrip) {
  // The journal itself does not deduplicate — byte-identical frames are
  // legal and the APPLIER is responsible for idempotence (the accounting
  // recovery test exercises that side).
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  auto writer = JournalWriter::create(path, 1, {});
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE(writer.value().append(5, payload("same")).is_ok());
  ASSERT_TRUE(writer.value().append(5, payload("same")).is_ok());
  auto scan = JournalReader::read(path);
  ASSERT_TRUE(scan.is_ok());
  ASSERT_EQ(scan.value().records.size(), 2u);
  EXPECT_EQ(scan.value().records[0].payload,
            scan.value().records[1].payload);
  EXPECT_NE(scan.value().records[0].lsn, scan.value().records[1].lsn);
}

TEST(GroupCommitTest, OneBarrierCoversEveryRecordAppendedBeforeIt) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  CrashPoint crash;  // inert; only counts fsyncs
  JournalWriter::Config config;
  config.fsync_policy = FsyncPolicy::kGroup;
  config.crash = &crash;
  auto writer = JournalWriter::create(path, 1, config);
  ASSERT_TRUE(writer.is_ok());

  // All records land before anyone commits, so the first committer's one
  // fsync covers all of them and every later committer returns without
  // touching the disk — deterministically one barrier.
  constexpr int kThreads = 8;
  std::vector<std::uint64_t> lsns;
  for (int i = 0; i < kThreads; ++i) {
    auto lsn = writer.value().append(1, payload("r" + std::to_string(i)));
    ASSERT_TRUE(lsn.is_ok());
    lsns.push_back(lsn.value());
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      EXPECT_TRUE(writer.value().commit(lsns[static_cast<size_t>(i)]).is_ok());
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(crash.syncs_seen(), 1u);
  const JournalWriter::GroupStats stats = writer.value().group_stats();
  EXPECT_EQ(stats.fsyncs, 1u);
  EXPECT_EQ(stats.committed, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.max_group, static_cast<std::uint64_t>(kThreads));
}

TEST(GroupCommitTest, ConcurrentAppendCommitLoopsLoseNothing) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  JournalWriter::Config config;
  config.fsync_policy = FsyncPolicy::kGroup;
  auto writer = JournalWriter::create(path, 1, config);
  ASSERT_TRUE(writer.is_ok());

  // The accounting server's shape: appends serialized by a caller lock,
  // commits running free.  Every commit that returns OK promises its
  // record is on disk.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::mutex append_mutex;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        std::uint64_t lsn = 0;
        {
          std::lock_guard lock(append_mutex);
          auto appended = writer.value().append(1, payload("x"));
          ASSERT_TRUE(appended.is_ok());
          lsn = appended.value();
        }
        ASSERT_TRUE(writer.value().commit(lsn).is_ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const JournalWriter::GroupStats stats = writer.value().group_stats();
  EXPECT_EQ(stats.committed, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(stats.fsyncs, 1u);
  EXPECT_LE(stats.fsyncs, static_cast<std::uint64_t>(kThreads) * kPerThread);

  auto scan = JournalReader::read(path);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_EQ(scan.value().records.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(GroupCommitTest, FsyncFailureReachesEveryWaiterAndIsSticky) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  CrashPoint crash;
  crash.fail_fsync_at(1);  // the very first barrier dies
  JournalWriter::Config config;
  config.fsync_policy = FsyncPolicy::kGroup;
  config.crash = &crash;
  auto writer = JournalWriter::create(path, 1, config);
  ASSERT_TRUE(writer.is_ok());

  constexpr int kThreads = 6;
  std::vector<std::uint64_t> lsns;
  for (int i = 0; i < kThreads; ++i) {
    auto lsn = writer.value().append(1, payload("doomed"));
    ASSERT_TRUE(lsn.is_ok());
    lsns.push_back(lsn.value());
  }
  // Every committer — the leader AND everyone parked on its barrier —
  // must see the failure; a waiter that got OK would release a reply for
  // a record that never reached the disk.
  std::vector<util::Status> results(kThreads, util::Status::ok());
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<size_t>(i)] =
          writer.value().commit(lsns[static_cast<size_t>(i)]);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].code(),
              util::ErrorCode::kUnavailable)
        << "waiter " << i << " was not told about the failed fsync";
  }
  // Storage-dead semantics: the failure is sticky for later commits AND
  // appends — a log that cannot flush must stop accepting promises.
  EXPECT_EQ(writer.value().commit(lsns.back()).code(),
            util::ErrorCode::kUnavailable);
  EXPECT_EQ(writer.value().append(1, payload("after")).code(),
            util::ErrorCode::kUnavailable);
  EXPECT_TRUE(crash.dead());
}

TEST(GroupCommitTest, CommitIsANoOpUnderOtherPolicies) {
  TempDir dir;
  const std::string path = dir.sub("j.wal");
  JournalWriter::Config config;
  config.fsync_policy = FsyncPolicy::kEveryRecord;
  auto writer = JournalWriter::create(path, 1, config);
  ASSERT_TRUE(writer.is_ok());
  auto lsn = writer.value().append(1, payload("already durable"));
  ASSERT_TRUE(lsn.is_ok());
  // The guarantee held at append(); commit() just agrees.
  EXPECT_TRUE(writer.value().commit(lsn.value()).is_ok());
  EXPECT_EQ(writer.value().group_stats().fsyncs, 0u);
}

}  // namespace
}  // namespace rproxy
