// Snapshot persistence and the LogDir recovery protocol.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "storage/log_dir.hpp"
#include "storage/snapshot_store.hpp"
#include "testing/tempdir.hpp"

namespace rproxy {
namespace {

using storage::JournalWriter;
using storage::LogDir;
using storage::SnapshotStore;
using testing::TempDir;

util::Bytes blob(const std::string& text) { return util::to_bytes(text); }

TEST(SnapshotStoreTest, SaveAndLoadLatest) {
  TempDir dir;
  SnapshotStore store(dir.path());
  ASSERT_TRUE(store.save(5, blob("at five")).is_ok());
  ASSERT_TRUE(store.save(12, blob("at twelve")).is_ok());

  auto latest = store.load_latest();
  ASSERT_TRUE(latest.is_ok());
  ASSERT_TRUE(latest.value().has_value());
  EXPECT_EQ(latest.value()->lsn, 12u);
  EXPECT_EQ(latest.value()->sealed, blob("at twelve"));
  EXPECT_EQ(store.list(), (std::vector<std::uint64_t>{5, 12}));
}

TEST(SnapshotStoreTest, FreshDirectoryHasNoSnapshot) {
  TempDir dir;
  SnapshotStore store(dir.path());
  auto latest = store.load_latest();
  ASSERT_TRUE(latest.is_ok());
  EXPECT_FALSE(latest.value().has_value());
}

TEST(SnapshotStoreTest, StrayTmpFromACrashedSaveIsIgnoredAndPruned) {
  TempDir dir;
  SnapshotStore store(dir.path());
  ASSERT_TRUE(store.save(3, blob("real")).is_ok());
  {
    // A crash between write and rename leaves a `.tmp` behind.
    std::ofstream out(dir.sub("snapshot-00000000000000000009.snap.tmp"),
                      std::ios::binary);
    out << "half-written";
  }
  auto latest = store.load_latest();
  ASSERT_TRUE(latest.is_ok());
  ASSERT_TRUE(latest.value().has_value());
  EXPECT_EQ(latest.value()->lsn, 3u);

  store.prune_keep_latest();
  std::size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.path())) {
    (void)entry;
    files += 1;
  }
  EXPECT_EQ(files, 1u);  // only snapshot-3 survives
}

TEST(SnapshotStoreTest, PruneKeepsOnlyTheNewest) {
  TempDir dir;
  SnapshotStore store(dir.path());
  for (const std::uint64_t lsn : {1u, 2u, 3u, 4u}) {
    ASSERT_TRUE(store.save(lsn, blob("s")).is_ok());
  }
  store.prune_keep_latest();
  EXPECT_EQ(store.list(), (std::vector<std::uint64_t>{4}));
}

TEST(LogDirTest, FreshDirectoryStartsAtLsnOne) {
  TempDir dir;
  LogDir::Config config;
  config.dir = dir.sub("state");
  LogDir::Recovered recovered;
  auto log = LogDir::open(config, &recovered);
  ASSERT_TRUE(log.is_ok());
  EXPECT_FALSE(recovered.snapshot.has_value());
  EXPECT_TRUE(recovered.tail.empty());
  EXPECT_EQ(log.value().next_lsn(), 1u);
}

TEST(LogDirTest, ReopenReplaysTheTail) {
  TempDir dir;
  LogDir::Config config;
  config.dir = dir.sub("state");
  {
    LogDir::Recovered recovered;
    auto log = LogDir::open(config, &recovered);
    ASSERT_TRUE(log.is_ok());
    ASSERT_TRUE(log.value().append(1, blob("a")).is_ok());
    ASSERT_TRUE(log.value().append(2, blob("b")).is_ok());
  }
  LogDir::Recovered recovered;
  auto log = LogDir::open(config, &recovered);
  ASSERT_TRUE(log.is_ok());
  EXPECT_FALSE(recovered.snapshot.has_value());
  ASSERT_EQ(recovered.tail.size(), 2u);
  EXPECT_EQ(recovered.tail[0].lsn, 1u);
  EXPECT_EQ(recovered.tail[1].payload, blob("b"));
  EXPECT_EQ(log.value().next_lsn(), 3u);
}

TEST(LogDirTest, CheckpointRotatesCompactsAndSupersedesTheTail) {
  TempDir dir;
  LogDir::Config config;
  config.dir = dir.sub("state");
  {
    LogDir::Recovered recovered;
    auto log = LogDir::open(config, &recovered);
    ASSERT_TRUE(log.is_ok());
    ASSERT_TRUE(log.value().append(1, blob("a")).is_ok());
    ASSERT_TRUE(log.value().append(1, blob("b")).is_ok());
    ASSERT_TRUE(log.value().checkpoint(blob("sealed state at 2")).is_ok());
    // Records after the checkpoint form the new tail.
    ASSERT_TRUE(log.value().append(1, blob("c")).is_ok());
  }
  LogDir::Recovered recovered;
  auto log = LogDir::open(config, &recovered);
  ASSERT_TRUE(log.is_ok());
  ASSERT_TRUE(recovered.snapshot.has_value());
  EXPECT_EQ(recovered.snapshot->lsn, 2u);
  EXPECT_EQ(recovered.snapshot->sealed, blob("sealed state at 2"));
  ASSERT_EQ(recovered.tail.size(), 1u);
  EXPECT_EQ(recovered.tail[0].lsn, 3u);
  EXPECT_EQ(recovered.tail[0].payload, blob("c"));
  EXPECT_EQ(log.value().next_lsn(), 4u);

  // Compaction: exactly one journal and one snapshot on disk.
  std::size_t journals = 0, snapshots = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(config.dir)) {
    const std::string name = entry.path().filename().string();
    journals += name.find(".wal") != std::string::npos ? 1 : 0;
    snapshots += name.find(".snap") != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(journals, 1u);
  EXPECT_EQ(snapshots, 1u);
}

TEST(LogDirTest, BackToBackCheckpointsDoNotCollide) {
  TempDir dir;
  LogDir::Config config;
  config.dir = dir.sub("state");
  LogDir::Recovered recovered;
  auto log = LogDir::open(config, &recovered);
  ASSERT_TRUE(log.is_ok());
  ASSERT_TRUE(log.value().append(1, blob("a")).is_ok());
  ASSERT_TRUE(log.value().checkpoint(blob("s1")).is_ok());
  // Nothing appended since: the active journal is already positioned
  // right after the covered LSN and must be reused, not recreated.
  ASSERT_TRUE(log.value().checkpoint(blob("s2")).is_ok());
  ASSERT_TRUE(log.value().append(1, blob("b")).is_ok());
  ASSERT_TRUE(log.value().checkpoint(blob("s3")).is_ok());

  LogDir::Recovered again;
  auto reopened = LogDir::open(config, &again);
  ASSERT_TRUE(reopened.is_ok());
  ASSERT_TRUE(again.snapshot.has_value());
  EXPECT_EQ(again.snapshot->lsn, 2u);
  EXPECT_EQ(again.snapshot->sealed, blob("s3"));
  EXPECT_TRUE(again.tail.empty());
}

TEST(LogDirTest, TornTailInTheFinalJournalIsRecoverable) {
  TempDir dir;
  LogDir::Config config;
  config.dir = dir.sub("state");
  {
    LogDir::Recovered recovered;
    auto log = LogDir::open(config, &recovered);
    ASSERT_TRUE(log.is_ok());
    ASSERT_TRUE(log.value().append(1, blob("kept")).is_ok());
    ASSERT_TRUE(log.value().append(1, blob("torn")).is_ok());
  }
  const std::string journal =
      config.dir + "/journal-00000000000000000001.wal";
  std::filesystem::resize_file(
      journal, std::filesystem::file_size(journal) - 2);

  LogDir::Recovered recovered;
  auto log = LogDir::open(config, &recovered);
  ASSERT_TRUE(log.is_ok());
  EXPECT_TRUE(recovered.tail_truncated);
  ASSERT_EQ(recovered.tail.size(), 1u);
  EXPECT_EQ(recovered.tail[0].payload, blob("kept"));
  // The torn record's LSN is reused by the next append.
  EXPECT_EQ(log.value().next_lsn(), 2u);
}

TEST(LogDirTest, TornInteriorJournalIsFatal) {
  TempDir dir;
  const std::string state = dir.sub("state");
  std::filesystem::create_directories(state);
  // Hand-build a corrupt history: journal 1 with a torn tail, journal 4
  // after it.  Records 2..3 are unrecoverable, so refusing to serve beats
  // silently conjuring a gap into the account books.
  {
    auto first = JournalWriter::create(
        state + "/journal-00000000000000000001.wal", 1, {});
    ASSERT_TRUE(first.is_ok());
    ASSERT_TRUE(first.value().append(1, blob("a")).is_ok());
    ASSERT_TRUE(first.value().append(1, blob("b")).is_ok());
  }
  const std::string first_path = state + "/journal-00000000000000000001.wal";
  std::filesystem::resize_file(first_path,
                               std::filesystem::file_size(first_path) - 1);
  {
    auto second = JournalWriter::create(
        state + "/journal-00000000000000000004.wal", 4, {});
    ASSERT_TRUE(second.is_ok());
    ASSERT_TRUE(second.value().append(1, blob("d")).is_ok());
  }

  LogDir::Config config;
  config.dir = state;
  LogDir::Recovered recovered;
  EXPECT_EQ(LogDir::open(config, &recovered).code(),
            util::ErrorCode::kParseError);
}

TEST(LogDirTest, JournalsCoveredByTheSnapshotAreSwept) {
  TempDir dir;
  const std::string state = dir.sub("state");
  std::filesystem::create_directories(state);
  // A snapshot at LSN 2 plus the journal it superseded (base 1) and the
  // live journal (base 3) — the exact layout a crash between snapshot
  // publication and journal deletion leaves behind.
  SnapshotStore store(state);
  ASSERT_TRUE(store.save(2, blob("covers 1-2")).is_ok());
  {
    auto old_journal = JournalWriter::create(
        state + "/journal-00000000000000000001.wal", 1, {});
    ASSERT_TRUE(old_journal.is_ok());
    ASSERT_TRUE(old_journal.value().append(1, blob("superseded")).is_ok());
  }
  {
    auto live = JournalWriter::create(
        state + "/journal-00000000000000000003.wal", 3, {});
    ASSERT_TRUE(live.is_ok());
    ASSERT_TRUE(live.value().append(1, blob("fresh")).is_ok());
  }

  LogDir::Config config;
  config.dir = state;
  LogDir::Recovered recovered;
  auto log = LogDir::open(config, &recovered);
  ASSERT_TRUE(log.is_ok());
  ASSERT_TRUE(recovered.snapshot.has_value());
  ASSERT_EQ(recovered.tail.size(), 1u);
  EXPECT_EQ(recovered.tail[0].payload, blob("fresh"));
  EXPECT_FALSE(std::filesystem::exists(
      state + "/journal-00000000000000000001.wal"));
}

}  // namespace
}  // namespace rproxy
