// Seeded chaos runner for the clearing chain (Fig 5, three banks).
//
// A merchant banks at bank1; its customers bank at bank3; bank1 collects
// via bank2 (correspondent route).  Every link suffers seeded faults —
// lost requests, lost replies, duplicates, delay spikes, transient
// partitions — while the merchant deposits checks with a retrying client.
// Per seed we assert the money invariants the paper's accounting model
// promises: conservation, no double credit, and eventual convergence once
// the faults stop.  Any failure prints the seed; re-running the binary
// with CHAOS_SEED=<n> replays that exact schedule.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/crash_point.hpp"
#include "storage/snapshot_store.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"
#include "util/rng.hpp"

namespace rproxy {
namespace {

using testing::World;

constexpr std::int64_t kInitialBalance = 1000;
constexpr int kChecksPerPayor = 4;

/// Everything a seed's run produces; assertions live in the tests so the
/// same harness can both demand success (dedup on) and count violations
/// (dedup off).
struct Outcome {
  int protocol_errors = 0;   ///< non-transport deposit failures under faults
  int unconverged = 0;       ///< deposits still failing after faults stopped
  std::int64_t merchant = 0;
  std::int64_t expected_total = 0;
  int payor_mismatches = 0;  ///< payor accounts not at initial - spent
  std::int64_t uncollected = 0;          ///< bank1 + bank2 pending credits
  std::uint64_t drawee_cleared = 0;      ///< distinct settlements at bank3
  std::uint64_t deduped = 0;             ///< replies replayed from dedup
  std::uint64_t faults = 0;              ///< injected faults, all kinds
};

Outcome run_clearing_chaos(std::uint64_t seed, bool enable_dedup,
                           double drop_reply) {
  World world;
  const std::vector<std::string> payors = {"alice", "bob", "carol"};
  for (const auto& p : payors) world.add_principal(p);
  world.add_principal("merchant");
  world.add_principal("bank1");
  world.add_principal("bank2");
  world.add_principal("bank3");

  const auto config_for = [&](const char* name) {
    auto config = world.accounting_config(name);
    config.enable_dedup = enable_dedup;
    return config;
  };
  accounting::AccountingServer bank1(config_for("bank1"));
  accounting::AccountingServer bank2(config_for("bank2"));
  accounting::AccountingServer bank3(config_for("bank3"));
  world.net.attach("bank1", bank1);
  world.net.attach("bank2", bank2);
  world.net.attach("bank3", bank3);
  bank1.set_route("bank3", "bank2");  // bank1 -> bank2 -> bank3
  bank1.open_account("merchant-acct", "merchant");
  for (const auto& p : payors) {
    bank3.open_account(p + "-acct", p,
                       accounting::Balances{{"usd", kInitialBalance}});
  }

  // The checks to clear, amounts drawn from the seed.
  struct PendingCheck {
    accounting::Check check;
    std::uint64_t amount = 0;
  };
  util::Rng rng(seed);
  std::vector<PendingCheck> checks;
  std::map<std::string, std::int64_t> spent;
  Outcome out;
  std::uint64_t number = 1;
  for (const auto& p : payors) {
    for (int i = 0; i < kChecksPerPayor; ++i) {
      const auto amount = static_cast<std::uint64_t>(rng.range(1, 50));
      checks.push_back(
          {accounting::write_check(p, world.principal(p).identity,
                                   AccountId{"bank3", p + "-acct"},
                                   "merchant", "usd", amount, number++,
                                   world.clock.now(), util::kHour),
           amount});
      spent[p] += static_cast<std::int64_t>(amount);
      out.expected_total += static_cast<std::int64_t>(amount);
    }
  }

  net::FaultSpec spec;
  spec.drop_request = 0.06;
  spec.drop_reply = drop_reply;
  spec.duplicate = 0.06;
  spec.extra_delay = 0.10;
  spec.extra_delay_max = 5 * util::kMillisecond;
  spec.unreachable = 0.02;
  spec.unreachable_window = 40 * util::kMillisecond;
  world.net.set_fault_plan(net::FaultPlan::uniform(seed, spec));

  auto merchant = world.accounting_client("merchant");
  net::RetryPolicy retry;
  retry.max_attempts = 6;
  merchant.set_retry_policy(retry);

  // Faulty phase: several passes; transport failures stay pending, any
  // deterministic verdict under faults is a correctness violation (with
  // dedup on, a retried duplicate must never bounce as a replay).
  std::vector<bool> cleared(checks.size(), false);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < checks.size(); ++i) {
      if (cleared[i]) continue;
      auto result = merchant.endorse_and_deposit("bank1", checks[i].check,
                                                 "merchant-acct");
      if (result.is_ok()) {
        cleared[i] = true;
      } else if (!net::RetryPolicy::transport_error(result.status())) {
        out.protocol_errors += 1;
      }
    }
  }

  // Faults stop; every remaining check must clear (convergence).
  world.net.clear_fault_plan();
  for (std::size_t i = 0; i < checks.size(); ++i) {
    if (cleared[i]) continue;
    auto result = merchant.endorse_and_deposit("bank1", checks[i].check,
                                               "merchant-acct");
    if (result.is_ok()) {
      cleared[i] = true;
    } else {
      out.unconverged += 1;
    }
  }

  out.merchant = bank1.account("merchant-acct")->balances().balance("usd");
  for (const auto& p : payors) {
    if (bank3.account(p + "-acct")->balances().balance("usd") !=
        kInitialBalance - spent[p]) {
      out.payor_mismatches += 1;
    }
  }
  out.uncollected = bank1.uncollected_total() + bank2.uncollected_total();
  out.drawee_cleared = bank3.checks_cleared();
  out.deduped = bank1.deduped_replies() + bank2.deduped_replies() +
                bank3.deduped_replies();
  out.faults = world.net.stats().faults_total();
  return out;
}

TEST(ChaosClearing, SeededFaultsNeverBreakConservation) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 24; ++s) seeds.push_back(s);
  // CI adds one run-unique seed so the schedule space keeps being explored;
  // a failure names the seed for local replay.
  if (const char* env = std::getenv("CHAOS_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }

  std::uint64_t total_faults = 0;
  std::uint64_t total_deduped = 0;
  const std::uint64_t check_count =
      static_cast<std::uint64_t>(3 * kChecksPerPayor);
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed));
    const Outcome out = run_clearing_chaos(seed, /*enable_dedup=*/true,
                                           /*drop_reply=*/0.06);
    EXPECT_EQ(out.protocol_errors, 0);
    EXPECT_EQ(out.unconverged, 0);
    // No double credit, no lost money: the merchant holds exactly the
    // written total, every payor paid exactly what they spent, and no
    // provisional credit is left dangling.
    EXPECT_EQ(out.merchant, out.expected_total);
    EXPECT_EQ(out.payor_mismatches, 0);
    EXPECT_EQ(out.uncollected, 0);
    // Each check settled at the drawee exactly once (dedup replays do not
    // re-count).
    EXPECT_EQ(out.drawee_cleared, check_count);
    total_faults += out.faults;
    total_deduped += out.deduped;
  }
  // The suite must actually have been stressed: faults fired, and some
  // retried/duplicated operation was answered from a dedup table.
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(total_deduped, 0u);
}

TEST(ChaosClearing, DisablingDedupBreaksExactlyOnce) {
  // Teeth check: the same harness with dedup off must produce at least one
  // violation — a lost reply after settlement makes the retried deposit
  // bounce as a replay, leaving the check permanently unclearable (and the
  // books wrong).  If this test ever fails, the chaos suite has stopped
  // exercising the scenario dedup exists for.
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 10 && violations == 0; ++seed) {
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed));
    const Outcome out = run_clearing_chaos(seed, /*enable_dedup=*/false,
                                           /*drop_reply=*/0.2);
    if (out.protocol_errors > 0 || out.unconverged > 0 ||
        out.merchant != out.expected_total || out.payor_mismatches > 0) {
      violations += 1;
    }
  }
  EXPECT_GE(violations, 1)
      << "no seed produced a double-spend/lost-money violation with dedup "
         "disabled; the chaos schedule is too gentle to prove anything";
}

// ---- Crash-recovery matrix (storage-backed banks, seeded kills) ----------
//
// Same three-bank clearing chain, but every bank journals to disk and one
// seed-chosen bank is killed at a seeded journal offset MID-RUN, while the
// network faults are also firing.  The harness restarts the dead bank and
// keeps clearing; with the write-ahead journal the books must come out
// exactly as if the crash never happened.  The ablation restarts from the
// periodic snapshot alone (no tail replay) and must produce violations on
// the same schedules — proof the journal, not luck, carries the invariant.

struct CrashOutcome {
  int protocol_errors = 0;
  int unconverged = 0;
  std::int64_t merchant = 0;
  std::int64_t expected_total = 0;
  int payor_mismatches = 0;
  std::int64_t uncollected = 0;
  int restarts = 0;
  /// Retries answered from the restarted victim's RECOVERED dedup table.
  std::uint64_t victim_deduped_after_restart = 0;
};

CrashOutcome run_crash_recovery_chaos(std::uint64_t seed,
                                      bool replay_journal,
                                      const std::string& victim) {
  World world;
  rproxy::testing::TempDir tmp;
  const crypto::SymmetricKey storage_key = crypto::SymmetricKey::generate();
  const std::vector<std::string> payors = {"alice", "bob", "carol"};
  for (const auto& p : payors) world.add_principal(p);
  world.add_principal("merchant");
  world.add_principal("bank1");
  world.add_principal("bank2");
  world.add_principal("bank3");

  storage::CrashPoint crash;  // inert until armed below
  std::map<std::string, std::unique_ptr<accounting::AccountingServer>> banks;
  const auto boot = [&](const std::string& name, bool with_storage,
                        storage::CrashPoint* cp) {
    auto config = world.accounting_config(name);
    if (with_storage) {
      config.storage_dir = tmp.sub(name);
      config.storage_key = storage_key;
      config.crash_point = cp;
    }
    auto server =
        std::make_unique<accounting::AccountingServer>(std::move(config));
    EXPECT_TRUE(server->recover().is_ok());
    world.net.attach(name, *server);
    banks[name] = std::move(server);
  };
  for (const char* name : {"bank1", "bank2", "bank3"}) {
    boot(name, /*with_storage=*/true, name == victim ? &crash : nullptr);
  }
  banks["bank1"]->set_route("bank3", "bank2");
  banks["bank1"]->open_account("merchant-acct", "merchant");
  for (const auto& p : payors) {
    banks["bank3"]->open_account(
        p + "-acct", p, accounting::Balances{{"usd", kInitialBalance}});
  }
  // Periodic-snapshot point: everything after this lives only in the
  // journal tail until the next checkpoint (which never comes).
  for (auto& [name, bank] : banks) {
    EXPECT_TRUE(bank->checkpoint().is_ok()) << name;
  }

  util::Rng rng(seed);
  struct PendingCheck {
    accounting::Check check;
    std::uint64_t amount = 0;
  };
  std::vector<PendingCheck> checks;
  std::map<std::string, std::int64_t> spent;
  CrashOutcome out;
  std::uint64_t number = 1;
  for (const auto& p : payors) {
    for (int i = 0; i < kChecksPerPayor; ++i) {
      const auto amount = static_cast<std::uint64_t>(rng.range(1, 50));
      checks.push_back(
          {accounting::write_check(p, world.principal(p).identity,
                                   AccountId{"bank3", p + "-acct"},
                                   "merchant", "usd", amount, number++,
                                   world.clock.now(), util::kHour),
           amount});
      spent[p] += static_cast<std::int64_t>(amount);
      out.expected_total += static_cast<std::int64_t>(amount);
    }
  }

  // Arm the kill: the victim dies at a seeded append within the run.
  storage::CrashPlan plan;
  plan.seed = seed * 977 + 13;
  plan.min_appends = 1;
  plan.max_appends = 6;
  plan.tear_mid_write = (seed % 2) == 0;
  crash.arm(plan);

  net::FaultSpec spec;
  spec.drop_request = 0.05;
  spec.drop_reply = 0.08;
  spec.duplicate = 0.05;
  spec.extra_delay = 0.10;
  spec.extra_delay_max = 5 * util::kMillisecond;
  world.net.set_fault_plan(net::FaultPlan::uniform(seed, spec));

  auto merchant = world.accounting_client("merchant");
  net::RetryPolicy retry;
  retry.max_attempts = 6;
  merchant.set_retry_policy(retry);

  const auto restart_victim = [&] {
    out.restarts += 1;
    if (replay_journal) {
      // Real recovery: newest snapshot + journal tail.
      boot(victim, /*with_storage=*/true, nullptr);
    } else {
      // Ablation: pretend the journal does not exist — only the periodic
      // snapshot survives the crash, so every acknowledged mutation since
      // the last checkpoint is silently lost.
      storage::SnapshotStore store(tmp.sub(victim));
      auto latest = store.load_latest();
      EXPECT_TRUE(latest.is_ok() && latest.value().has_value());
      boot(victim, /*with_storage=*/false, nullptr);
      EXPECT_TRUE(
          banks[victim]
              ->restore(storage_key, latest.value()->sealed)
              .is_ok());
    }
  };

  std::vector<bool> cleared(checks.size(), false);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < checks.size(); ++i) {
      if (cleared[i]) continue;
      auto result = merchant.endorse_and_deposit("bank1", checks[i].check,
                                                 "merchant-acct");
      if (result.is_ok()) {
        cleared[i] = true;
      } else if (!net::RetryPolicy::transport_error(result.status())) {
        out.protocol_errors += 1;
      }
      if (banks[victim]->storage_dead()) restart_victim();
    }
  }

  // Faults stop; every remaining check must clear against the restarted
  // bank (extra attempts cover a kill that fires this late).
  world.net.clear_fault_plan();
  for (std::size_t i = 0; i < checks.size(); ++i) {
    if (cleared[i]) continue;
    for (int attempt = 0; attempt < 3 && !cleared[i]; ++attempt) {
      auto result = merchant.endorse_and_deposit("bank1", checks[i].check,
                                                 "merchant-acct");
      if (result.is_ok()) {
        cleared[i] = true;
      } else if (banks[victim]->storage_dead()) {
        restart_victim();
      } else {
        break;
      }
    }
    if (!cleared[i]) out.unconverged += 1;
  }

  out.merchant =
      banks["bank1"]->account("merchant-acct")->balances().balance("usd");
  for (const auto& p : payors) {
    if (banks["bank3"]->account(p + "-acct")->balances().balance("usd") !=
        kInitialBalance - spent[p]) {
      out.payor_mismatches += 1;
    }
  }
  out.uncollected = banks["bank1"]->uncollected_total() +
                    banks["bank2"]->uncollected_total();
  if (out.restarts > 0) {
    out.victim_deduped_after_restart = banks[victim]->deduped_replies();
  }
  return out;
}

TEST(ChaosClearing, KillAnyBankMidRunAndTheJournalPreservesTheBooks) {
  const std::vector<std::string> victims = {"bank1", "bank2", "bank3"};
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 12; ++s) seeds.push_back(s);
  if (const char* env = std::getenv("CHAOS_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }

  int total_restarts = 0;
  std::uint64_t recovered_dedup_replays = 0;
  for (const std::uint64_t seed : seeds) {
    const std::string victim = victims[seed % victims.size()];
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed) +
                 " (victim " + victim + ")");
    const CrashOutcome out =
        run_crash_recovery_chaos(seed, /*replay_journal=*/true, victim);
    EXPECT_EQ(out.protocol_errors, 0);
    EXPECT_EQ(out.unconverged, 0);
    EXPECT_EQ(out.merchant, out.expected_total);
    EXPECT_EQ(out.payor_mismatches, 0);
    EXPECT_EQ(out.uncollected, 0);
    // The kill must actually have fired: a matrix that never crashes
    // anyone proves nothing.
    EXPECT_GE(out.restarts, 1);
    total_restarts += out.restarts;
    recovered_dedup_replays += out.victim_deduped_after_restart;
  }
  EXPECT_GE(total_restarts, static_cast<int>(seeds.size()));
  // At least one retried in-flight operation must have been answered from
  // a RECOVERED dedup table — the exact state a journal-less restart loses.
  EXPECT_GT(recovered_dedup_replays, 0u);
}

TEST(ChaosClearing, SnapshotOnlyRestartLosesAcknowledgedState) {
  // Teeth: the identical harness, but the victim restarts from the
  // periodic snapshot alone.  Acknowledged settlements since the last
  // checkpoint vanish, so some seed must leave the books wrong — payors
  // refunded for cleared checks (victim bank3) or merchant credits gone
  // (victim bank1).  If every seed passes, the matrix has stopped testing
  // anything.
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 8 && violations == 0; ++seed) {
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed));
    const std::string victim = (seed % 2) == 0 ? "bank1" : "bank3";
    const CrashOutcome out =
        run_crash_recovery_chaos(seed, /*replay_journal=*/false, victim);
    if (out.restarts == 0) continue;  // kill never fired; seed proves nothing
    if (out.merchant != out.expected_total || out.payor_mismatches > 0 ||
        out.unconverged > 0 || out.protocol_errors > 0) {
      violations += 1;
    }
  }
  EXPECT_GE(violations, 1)
      << "snapshot-only restarts never corrupted the books; the crash "
         "schedule is too gentle to prove the journal matters";
}

TEST(ChaosClearing, CrashRestartFromSnapshotKeepsExactlyOnce) {
  // Crash-restart: detach the bank (crash), restore a sealed snapshot into
  // a fresh instance (restart), and verify the restored dedup table keeps
  // replaying pre-crash deposits instead of settling them twice.
  World world;
  world.add_principal("client");
  world.add_principal("merchant");
  world.add_principal("bank");
  auto bank = std::make_unique<accounting::AccountingServer>(
      world.accounting_config("bank"));
  world.net.attach("bank", *bank);
  bank->open_account("client-acct", "client",
                     accounting::Balances{{"usd", 100}});
  bank->open_account("merchant-acct", "merchant");

  auto merchant = world.accounting_client("merchant");
  net::RetryPolicy retry;
  retry.max_attempts = 4;
  merchant.set_retry_policy(retry);

  const accounting::Check check1 = accounting::write_check(
      "client", world.principal("client").identity,
      AccountId{"bank", "client-acct"}, "merchant", "usd", 30, 1,
      world.clock.now(), util::kHour);
  const accounting::Check check2 = accounting::write_check(
      "client", world.principal("client").identity,
      AccountId{"bank", "client-acct"}, "merchant", "usd", 20, 2,
      world.clock.now(), util::kHour);

  ASSERT_TRUE(
      merchant.endorse_and_deposit("bank", check1, "merchant-acct").is_ok());

  const crypto::SymmetricKey key = crypto::SymmetricKey::generate();
  const util::Bytes snap = bank->snapshot(key);

  // Crash.  Retries burn through their attempts and still fail.
  world.net.detach("bank");
  auto down = merchant.endorse_and_deposit("bank", check2, "merchant-acct");
  EXPECT_FALSE(down.is_ok());
  EXPECT_TRUE(net::RetryPolicy::transport_error(down.status()))
      << down.status();

  // Restart a FRESH instance from the snapshot (the crashed process is
  // gone; only the sealed snapshot survives).
  accounting::AccountingServer restarted(world.accounting_config("bank"));
  ASSERT_TRUE(restarted.restore(key, snap).is_ok());
  world.net.attach("bank", restarted);

  // The failed deposit now succeeds...
  ASSERT_TRUE(
      merchant.endorse_and_deposit("bank", check2, "merchant-acct").is_ok());
  EXPECT_EQ(restarted.account("merchant-acct")->balances().balance("usd"),
            50);
  EXPECT_EQ(restarted.account("client-acct")->balances().balance("usd"), 50);

  // ...and a retry of the PRE-crash deposit is answered from the restored
  // dedup table: same reply, no second settlement.
  ASSERT_TRUE(
      merchant.endorse_and_deposit("bank", check1, "merchant-acct").is_ok());
  EXPECT_EQ(restarted.deduped_replies(), 1u);
  EXPECT_EQ(restarted.account("merchant-acct")->balances().balance("usd"),
            50);
}

}  // namespace
}  // namespace rproxy
