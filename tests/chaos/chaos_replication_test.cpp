// Seeded failover chaos for journal-shipping replication: the collecting
// shard is killed mid-clearing (and the migration target mid-migration) at
// a seed-chosen journal append under network faults, its hot standby
// promotes, clients re-route, and the books must balance exactly — every
// acked reply present in the promoted state, nothing settled twice.  The
// fencing ablation proves split-brain corrupts the books without epoch
// fencing.  Any failure prints the seed; re-run with CHAOS_SEED=<n>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accounting/replication/failover.hpp"
#include "accounting/replication/journal_shipper.hpp"
#include "accounting/replication/standby.hpp"
#include "accounting/sharding/migration.hpp"
#include "storage/crash_point.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"
#include "util/rng.hpp"

namespace rproxy {
namespace {

using accounting::AccountingServer;
using accounting::MigrationSpec;
using accounting::replication::FailoverCoordinator;
using accounting::replication::JournalShipper;
using accounting::replication::StandbyReplayer;
using accounting::sharding::ShardDirectory;
using accounting::sharding::stable_hash64;
using accounting::sharding::uniform_map;
using rproxy::testing::World;

constexpr std::int64_t kInitialBalance = 1000;
const std::vector<std::string> kShards = {"s1", "s2", "s3"};

std::vector<std::uint64_t> seed_matrix(std::uint64_t upto) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= upto; ++s) seeds.push_back(s);
  if (const char* env = std::getenv("CHAOS_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }
  return seeds;
}

/// Sharded fleet where one seed-chosen shard (the victim) replicates its
/// journal to a hot standby through the semi-sync barrier.  The victim is
/// never rebooted: when its crash point fires, the standby takes over.
struct ReplicatedFleet {
  World world;
  rproxy::testing::TempDir tmp;
  crypto::SymmetricKey storage_key = crypto::SymmetricKey::generate();
  ShardDirectory dir;
  std::map<std::string, std::unique_ptr<AccountingServer>> shards;
  std::string victim;
  std::string standby_name;
  std::unique_ptr<AccountingServer> standby_server;
  std::unique_ptr<StandbyReplayer> standby;
  std::unique_ptr<JournalShipper> shipper;

  explicit ReplicatedFleet(const std::string& victim_shard) {
    victim = victim_shard;
    standby_name = victim + "b";
    world.add_principal("router");
    for (const auto& s : kShards) world.add_principal(s);
    world.add_principal(standby_name);
    EXPECT_TRUE(dir.install(uniform_map(kShards, 1)));
  }

  void boot(const std::string& name, storage::CrashPoint* crash) {
    auto config = world.accounting_config(name);
    config.shard = &dir;
    config.storage_dir = tmp.sub(name);
    config.storage_key = storage_key;
    config.crash_point = crash;
    if (name == victim) {
      // Semi-sync: no reply leaves the victim before its standby has the
      // records behind it (acked ⊆ replicated, the failover invariant).
      config.replication_barrier = [this](std::uint64_t lsn) {
        return shipper ? shipper->ship_until(lsn) : util::Status::ok();
      };
    }
    auto server = std::make_unique<AccountingServer>(std::move(config));
    EXPECT_TRUE(server->recover().is_ok()) << name;
    world.net.attach(name, *server);
    shards[name] = std::move(server);
  }

  void boot_standby(std::uint64_t seed, bool fencing) {
    // The replayer is the standby's shard gate, so the wrapped server runs
    // gate-open; it keeps its own journal (replication re-journals).
    auto config = world.accounting_config(standby_name);
    config.storage_dir = tmp.sub(standby_name);
    config.storage_key = storage_key;
    standby_server = std::make_unique<AccountingServer>(std::move(config));
    EXPECT_TRUE(standby_server->recover().is_ok());
    StandbyReplayer::Config rc;
    rc.name = standby_name;
    rc.primary = victim;
    rc.server = standby_server.get();
    rc.clock = &world.clock;
    rc.storage_key = storage_key;
    rc.jitter_seed = seed * 3 + 1;
    rc.enable_fencing = fencing;
    rc.directory = &dir;
    standby = std::make_unique<StandbyReplayer>(std::move(rc));
    world.net.attach(standby_name, *standby);
    JournalShipper::Config sc;
    sc.primary = shards[victim].get();
    sc.net = &world.net;
    sc.standbys = {standby_name};
    sc.fence_primary = fencing;
    shipper = std::make_unique<JournalShipper>(std::move(sc));
  }

  std::vector<std::string> open_on(const std::string& shard, int n) {
    std::vector<std::string> names;
    for (int i = 0; static_cast<int>(names.size()) < n; ++i) {
      const std::string name = "acct-" + shard + "-" + std::to_string(i);
      if (dir.home(name) != shard) continue;
      shards[shard]->open_account(name, "router",
                                  accounting::Balances{{"usd", kInitialBalance}});
      names.push_back(name);
    }
    return names;
  }

  /// Hard-down the victim and drive the standby's failure detector until
  /// it promotes (heartbeat timeout + jitter of simulated silence).
  void fail_over() {
    world.net.detach(victim);
    bool promoted = false;
    for (int i = 0; i < 12 && !promoted; ++i) {
      world.clock.advance(700 * util::kMillisecond);
      auto attempt = standby->maybe_promote();
      ASSERT_TRUE(attempt.is_ok()) << attempt.status();
      promoted = attempt.value();
    }
    ASSERT_TRUE(promoted) << "standby never promoted after primary silence";
    EXPECT_TRUE(standby->promoted());
    // Promotion re-homed the victim's ring arcs — nothing else — onto the
    // standby, so clients re-route without any other account moving.
    EXPECT_EQ(standby->epoch(), 2u);
  }

  /// Live-fleet balance of one account (dead victim excluded — its state
  /// survives only through replication).
  [[nodiscard]] std::int64_t balance(const std::string& account) {
    std::int64_t total = 0;
    for (auto& [name, shard] : shards) {
      if (name == victim) continue;
      if (const auto* acct = shard->account(account)) {
        total += acct->balances().balance("usd");
      }
    }
    if (const auto* acct = standby_server->account(account)) {
      total += acct->balances().balance("usd");
    }
    return total;
  }
};

struct FailoverOutcome {
  int protocol_errors = 0;
  int unconverged = 0;
  int failovers = 0;
  int acked_missing = 0;  ///< acked deposits absent from the promoted state
  std::int64_t named_total = 0;
  std::int64_t expected_named_total = 0;
  std::int64_t uncollected = 0;
  int ledger_mismatches = 0;
};

/// Cross-shard clearing INTO the victim under faults: every check is drawn
/// on a healthy shard and collected at the victim, whose crash point fires
/// at a seed-chosen append mid-clearing.  The standby promotes and the
/// remaining deposits re-drive against it.
FailoverOutcome run_failover_clearing_chaos(std::uint64_t seed) {
  ReplicatedFleet fleet(kShards[seed % kShards.size()]);
  storage::CrashPoint crash;
  for (const auto& s : kShards) {
    fleet.boot(s, s == fleet.victim ? &crash : nullptr);
  }
  fleet.boot_standby(seed, /*fencing=*/true);

  std::map<std::string, std::vector<std::string>> accounts;
  std::vector<std::string> all_accounts;
  for (const auto& s : kShards) {
    accounts[s] = fleet.open_on(s, 2);
    all_accounts.insert(all_accounts.end(), accounts[s].begin(),
                        accounts[s].end());
  }
  for (auto& [name, shard] : fleet.shards) {
    EXPECT_TRUE(shard->checkpoint().is_ok()) << name;
  }
  // Seed the standby from the victim's (just-compacted) snapshot, then
  // arm the kill: it fires inside the clearing workload below.
  EXPECT_TRUE(fleet.shipper
                  ->ship_until(fleet.shards[fleet.victim]->journal_durable_lsn())
                  .is_ok());

  struct PendingTransfer {
    accounting::Check check;
    std::string to_account;
    std::uint64_t amount = 0;
    std::string from_account;
  };
  util::Rng rng(seed);
  std::vector<PendingTransfer> transfers;
  std::map<std::string, std::int64_t> drawn;
  std::map<std::string, std::int64_t> credit;
  std::uint64_t number = 1;
  FailoverOutcome out;
  for (const auto& src : kShards) {
    if (src == fleet.victim) continue;
    for (int k = 0; k < 4; ++k) {
      const auto amount = static_cast<std::uint64_t>(rng.range(1, 40));
      const std::string& from = accounts[src][k % accounts[src].size()];
      const std::string& to =
          accounts[fleet.victim][(k + 1) % accounts[fleet.victim].size()];
      transfers.push_back(
          {accounting::write_check("router",
                                   fleet.world.principal("router").identity,
                                   AccountId{src, from}, "router", "usd",
                                   amount, number++,
                                   fleet.world.clock.now(), util::kHour),
           to, amount, from});
      drawn[from] += static_cast<std::int64_t>(amount);
      credit[to] += static_cast<std::int64_t>(amount);
    }
  }
  out.expected_named_total =
      static_cast<std::int64_t>(all_accounts.size()) * kInitialBalance;

  storage::CrashPlan plan;
  plan.seed = seed * 977 + 13;
  plan.min_appends = 1;
  plan.max_appends = 8;
  plan.tear_mid_write = (seed % 2) == 0;
  crash.arm(plan);

  net::FaultSpec spec;
  spec.drop_request = 0.05;
  spec.drop_reply = 0.08;
  spec.duplicate = 0.05;
  spec.extra_delay = 0.10;
  spec.extra_delay_max = 5 * util::kMillisecond;
  fleet.world.net.set_fault_plan(net::FaultPlan::uniform(seed, spec));

  auto client = fleet.world.accounting_client("router");
  net::RetryPolicy retry;
  retry.max_attempts = 6;
  client.set_retry_policy(retry);

  std::vector<bool> cleared(transfers.size(), false);
  const auto on_victim_death = [&] {
    out.failovers += 1;
    fleet.fail_over();
    // Acked ⊆ promoted-standby state: every deposit whose cleared reply
    // the client HOLDS must be visible in the standby's books.  (≥, not
    // =: un-acked settles may legitimately have replicated too.)
    std::map<std::string, std::int64_t> acked;
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      if (cleared[i]) acked[transfers[i].to_account] += transfers[i].amount;
    }
    for (const auto& [to, amt] : acked) {
      const auto* acct = fleet.standby_server->account(to);
      if (acct == nullptr ||
          acct->balances().balance("usd") < kInitialBalance + amt) {
        out.acked_missing += 1;
      }
    }
  };
  const auto drive = [&](std::size_t i) {
    // The shared directory is the routing truth: after promotion the
    // victim's accounts home on the standby (placement-aliased ring arcs).
    auto result = client.endorse_and_deposit(fleet.dir.home(transfers[i].to_account),
                                             transfers[i].check,
                                             transfers[i].to_account);
    if (result.is_ok()) {
      cleared[i] = true;
    } else if (!net::RetryPolicy::transport_error(result.status())) {
      out.protocol_errors += 1;
    }
    if (!fleet.standby->promoted() &&
        fleet.shards[fleet.victim]->storage_dead()) {
      on_victim_death();
    }
  };

  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      if (!cleared[i]) drive(i);
    }
  }
  fleet.world.net.clear_fault_plan();
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    for (int attempt = 0; attempt < 4 && !cleared[i]; ++attempt) {
      drive(i);
    }
    if (!cleared[i]) out.unconverged += 1;
  }

  for (const auto& account : all_accounts) {
    out.named_total += fleet.balance(account);
  }
  for (const auto& [account, total_drawn] : drawn) {
    if (fleet.balance(account) != kInitialBalance - total_drawn) {
      out.ledger_mismatches += 1;
    }
  }
  for (const auto& [account, total_credit] : credit) {
    if (fleet.balance(account) != kInitialBalance + total_credit) {
      out.ledger_mismatches += 1;
    }
  }
  for (auto& [name, shard] : fleet.shards) {
    if (name != fleet.victim) out.uncollected += shard->uncollected_total();
  }
  out.uncollected += fleet.standby_server->uncollected_total();
  EXPECT_EQ(fleet.standby->apply_failures(), 0u);
  return out;
}

TEST(ChaosReplication, PrimaryKilledMidClearingFailsOverWithExactBooks) {
  int total_failovers = 0;
  for (const std::uint64_t seed : seed_matrix(10)) {
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed));
    const FailoverOutcome out = run_failover_clearing_chaos(seed);
    EXPECT_EQ(out.protocol_errors, 0);
    EXPECT_EQ(out.unconverged, 0);
    EXPECT_EQ(out.acked_missing, 0);
    // Fleet-wide conservation across the failover: no deposit settled
    // twice (victim + standby), none lost, every ledger line exact.
    EXPECT_EQ(out.named_total, out.expected_named_total);
    EXPECT_EQ(out.ledger_mismatches, 0);
    EXPECT_EQ(out.uncollected, 0);
    total_failovers += out.failovers;
    // Each seed's workload outlives its crash budget: every run must
    // actually kill the primary and promote the standby.
    EXPECT_EQ(out.failovers, 1);
  }
  EXPECT_GE(total_failovers, 10);
}

// ---- Migration target killed mid-migration -------------------------------

TEST(ChaosReplication, MigrationTargetKilledFailsOverAndRedriveFinishes) {
  for (const std::uint64_t seed : seed_matrix(6)) {
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed));
    ReplicatedFleet fleet("s2");
    storage::CrashPoint crash;
    for (const auto& s : kShards) {
      fleet.boot(s, s == "s2" ? &crash : nullptr);
    }
    fleet.boot_standby(seed, /*fencing=*/true);
    const auto moved = fleet.open_on("s1", 2);
    const std::string sink = fleet.open_on("s2", 1)[0];
    const std::string fund = fleet.open_on("s3", 1)[0];
    for (auto& [name, shard] : fleet.shards) {
      EXPECT_TRUE(shard->checkpoint().is_ok()) << name;
    }
    ASSERT_TRUE(
        fleet.shipper->ship_until(fleet.shards["s2"]->journal_durable_lsn())
            .is_ok());

    // Exactly three appends follow at the victim (two foreign settles, one
    // migration import); the seeded kill lands on one of them — clearing
    // or import, the schedule decides.
    storage::CrashPlan plan;
    plan.seed = seed * 31 + 7;
    plan.min_appends = 1;
    plan.max_appends = 3;
    plan.tear_mid_write = (seed % 3) == 0;
    crash.arm(plan);

    auto client = fleet.world.accounting_client("router");
    net::RetryPolicy retry;
    retry.max_attempts = 4;
    client.set_retry_policy(retry);
    int failovers = 0;
    const auto maybe_fail_over = [&] {
      if (!fleet.standby->promoted() &&
          fleet.shards["s2"]->storage_dead()) {
        failovers += 1;
        fleet.fail_over();
      }
    };

    std::uint64_t number = 9000;
    for (const std::uint64_t amount : {10u, 20u}) {
      const accounting::Check check = accounting::write_check(
          "router", fleet.world.principal("router").identity,
          AccountId{"s3", fund}, "router", "usd", amount, number++,
          fleet.world.clock.now(), util::kHour);
      bool done = false;
      for (int attempt = 0; attempt < 5 && !done; ++attempt) {
        done = client.endorse_and_deposit(fleet.dir.home(sink), check, sink)
                   .is_ok();
        if (!done) maybe_fail_over();
      }
      ASSERT_TRUE(done) << "deposit never cleared";
    }

    MigrationSpec spec;
    spec.migration_id = 8000 + seed;
    spec.lo = std::min(stable_hash64(moved[0]), stable_hash64(moved[1]));
    spec.hi = std::max(stable_hash64(moved[0]), stable_hash64(moved[1]));
    spec.source = "s1";

    bool done = false;
    for (int attempt = 0; attempt < 5 && !done; ++attempt) {
      const bool promoted = fleet.standby->promoted();
      AccountingServer& target =
          promoted ? *fleet.standby_server : *fleet.shards["s2"];
      MigrationSpec cur = spec;
      cur.target = promoted ? fleet.standby_name : "s2";
      auto status =
          accounting::sharding::migrate_range(*fleet.shards["s1"], target,
                                              fleet.dir, cur);
      if (status.is_ok()) {
        done = true;
      } else {
        maybe_fail_over();
        ASSERT_TRUE(fleet.standby->promoted())
            << "migration failed without a victim crash: " << status;
      }
    }
    ASSERT_TRUE(done) << "migration never completed";
    EXPECT_EQ(failovers, 1) << "the seeded kill never fired";

    // Exactly-once across the failover: the moved range lives only at the
    // promoted target, the deposits cleared exactly once, nothing frozen.
    const std::string final_home = fleet.standby_name;
    for (const auto& account : moved) {
      EXPECT_EQ(fleet.shards["s1"]->account(account), nullptr);
      EXPECT_EQ(fleet.balance(account), kInitialBalance);
      EXPECT_EQ(fleet.dir.home(account), final_home) << account;
    }
    EXPECT_EQ(fleet.balance(sink), kInitialBalance + 30);
    EXPECT_EQ(fleet.balance(fund), kInitialBalance - 30);
    EXPECT_EQ(fleet.shards["s1"]->frozen_range_count(), 0u);
    EXPECT_TRUE(fleet.standby_server->migration_applied(spec.migration_id));
    EXPECT_EQ(fleet.standby->apply_failures(), 0u);
  }
}

// ---- Double failover: survive the second failure ---------------------------

/// Self-healing fleet (DESIGN.md §5h): the victim shard replicates to a
/// GENERATION CHAIN of standbys driven by a FailoverCoordinator.  The
/// gen-1 standby boots at construction carrying its own (still unarmed)
/// crash point; replacements come out of the coordinator's provision
/// factory, so the replication factor is back before the second kill.
struct SelfHealingFleet {
  World world;
  rproxy::testing::TempDir tmp;
  crypto::SymmetricKey storage_key = crypto::SymmetricKey::generate();
  ShardDirectory dir;
  std::map<std::string, std::unique_ptr<AccountingServer>> shards;
  std::string victim;
  storage::CrashPoint crash1;  ///< kills the born primary mid-clearing
  storage::CrashPoint crash2;  ///< kills the gen-1 winner, armed after heal 1
  std::vector<std::unique_ptr<AccountingServer>> gen_servers;
  std::vector<std::unique_ptr<StandbyReplayer>> gen_replayers;
  std::shared_ptr<JournalShipper> shipper;
  std::unique_ptr<FailoverCoordinator> coordinator;
  int generation = 1;

  SelfHealingFleet(const std::string& victim_shard, std::uint64_t seed) {
    victim = victim_shard;
    world.add_principal("router");
    for (const auto& s : kShards) world.add_principal(s);
    EXPECT_TRUE(dir.install(uniform_map(kShards, 1)));
    for (const auto& s : kShards) {
      auto config = world.accounting_config(s);
      config.shard = &dir;
      config.storage_dir = tmp.sub(s);
      config.storage_key = storage_key;
      if (s == victim) {
        config.crash_point = &crash1;
        config.replication_barrier = [this](std::uint64_t lsn) {
          return shipper ? shipper->ship_until(lsn) : util::Status::ok();
        };
      }
      auto server = std::make_unique<AccountingServer>(std::move(config));
      EXPECT_TRUE(server->recover().is_ok()) << s;
      world.net.attach(s, *server);
      shards[s] = std::move(server);
    }
    add_standby(victim + "g1", victim, /*epoch=*/1, seed, &crash2);
    JournalShipper::Config sc;
    sc.primary = shards[victim].get();
    sc.net = &world.net;
    sc.standbys = {victim + "g1"};
    shipper = std::make_shared<JournalShipper>(std::move(sc));

    FailoverCoordinator::Config cc;
    cc.net = &world.net;
    cc.clock = &world.clock;
    cc.provision = [this, seed](const PrincipalName& new_primary,
                                std::uint64_t epoch) {
      generation += 1;
      return add_standby(victim + "g" + std::to_string(generation),
                         new_primary, epoch, seed, nullptr);
    };
    coordinator = std::make_unique<FailoverCoordinator>(std::move(cc));
    coordinator->adopt_group(shards[victim].get(), shipper,
                             {gen_replayers[0].get()});
  }

  StandbyReplayer* add_standby(const std::string& name,
                               const PrincipalName& primary_name,
                               std::uint64_t epoch, std::uint64_t seed,
                               storage::CrashPoint* crash) {
    world.add_principal(name);
    auto config = world.accounting_config(name);
    config.storage_dir = tmp.sub(name);
    config.storage_key = storage_key;
    config.crash_point = crash;
    auto server = std::make_unique<AccountingServer>(std::move(config));
    EXPECT_TRUE(server->recover().is_ok()) << name;
    StandbyReplayer::Config rc;
    rc.name = name;
    rc.primary = primary_name;
    rc.server = server.get();
    rc.clock = &world.clock;
    rc.storage_key = storage_key;
    rc.epoch = epoch;
    rc.jitter_seed = seed * 5 + gen_replayers.size() + 1;
    rc.directory = &dir;
    auto replayer = std::make_unique<StandbyReplayer>(std::move(rc));
    world.net.attach(name, *replayer);
    gen_servers.push_back(std::move(server));
    gen_replayers.push_back(std::move(replayer));
    return gen_replayers.back().get();
  }

  /// The serving copy of the victim's state (the victim itself until the
  /// first heal, then whatever generation the coordinator promoted).
  [[nodiscard]] AccountingServer& primary_server() {
    for (auto& replayer : gen_replayers) {
      if (replayer->name() == coordinator->primary_name()) {
        return replayer->server();
      }
    }
    return *shards[victim];
  }

  /// Detaches the dead primary and ticks the coordinator (heartbeat gap +
  /// failure detector + heal) until generation `target` is serving.
  void heal_to(std::uint64_t target) {
    world.net.detach(coordinator->primary_name());
    for (int i = 0; i < 15 && coordinator->generations() < target; ++i) {
      world.clock.advance(700 * util::kMillisecond);
      auto tick = coordinator->tick();
      ASSERT_TRUE(tick.is_ok()) << tick.status();
    }
    ASSERT_EQ(coordinator->generations(), target)
        << "no standby promoted after primary silence";
  }

  std::vector<std::string> open_on(const std::string& shard, int n) {
    std::vector<std::string> names;
    for (int i = 0; static_cast<int>(names.size()) < n; ++i) {
      const std::string name = "acct-" + shard + "-" + std::to_string(i);
      if (dir.home(name) != shard) continue;
      shards[shard]->open_account(name, "router",
                                  accounting::Balances{{"usd", kInitialBalance}});
      names.push_back(name);
    }
    return names;
  }

  /// Live-fleet balance: healthy shards plus the CURRENT primary of the
  /// victim's generation chain.  Dead generations and the replica copies
  /// held by hot standbys are excluded — money must live exactly once in
  /// the serving fleet.
  [[nodiscard]] std::int64_t balance(const std::string& account) {
    std::int64_t total = 0;
    for (auto& [name, shard] : shards) {
      if (name == victim) continue;
      if (const auto* acct = shard->account(account)) {
        total += acct->balances().balance("usd");
      }
    }
    if (const auto* acct = primary_server().account(account)) {
      total += acct->balances().balance("usd");
    }
    return total;
  }
};

struct DoubleFailoverOutcome {
  int protocol_errors = 0;
  int unconverged = 0;
  int acked_missing = 0;  ///< acked deposits absent right after a heal
  std::uint64_t generations = 0;
  bool factor_restored = false;  ///< replacement caught up before kill #2
  bool dead_name_cleared = false;
  std::uint64_t final_epoch = 0;
  std::uint64_t apply_failures = 0;
  std::int64_t named_total = 0;
  std::int64_t expected_named_total = 0;
  std::int64_t uncollected = 0;
  int ledger_mismatches = 0;
};

/// Two successive primary failures mid-clearing under network faults.
/// Phase 1 kills the born primary at a seed-chosen append; the coordinator
/// promotes g1, re-provisions g2, and re-arms the barrier.  Once the
/// replacement holds g1's durable state the SECOND crash point is armed
/// and phase 2 kills g1 the same way — the heal must run again off the
/// re-provisioned standby.  A check drawn on the original victim's NAME
/// before any failure is presented only after both heals: identity
/// adoption has to chain victim → g1 → g2.
DoubleFailoverOutcome run_double_failover_chaos(std::uint64_t seed) {
  SelfHealingFleet fleet(kShards[seed % kShards.size()], seed);
  DoubleFailoverOutcome out;

  std::map<std::string, std::vector<std::string>> accounts;
  std::vector<std::string> all_accounts;
  for (const auto& s : kShards) {
    accounts[s] = fleet.open_on(s, 2);
    all_accounts.insert(all_accounts.end(), accounts[s].begin(),
                        accounts[s].end());
  }
  for (auto& [name, shard] : fleet.shards) {
    EXPECT_TRUE(shard->checkpoint().is_ok()) << name;
  }
  EXPECT_TRUE(fleet.shipper
                  ->ship_until(fleet.shards[fleet.victim]->journal_durable_lsn())
                  .is_ok());

  // Drawn on the victim's NAME before any failure, presented only after
  // BOTH failovers — the adoption chain's acid test.
  const accounting::Check dead_name_check = accounting::write_check(
      "router", fleet.world.principal("router").identity,
      AccountId{fleet.victim, accounts[fleet.victim][0]}, "router", "usd", 75,
      777777, fleet.world.clock.now(), util::kHour);

  struct PendingTransfer {
    accounting::Check check;
    std::string to_account;
    std::uint64_t amount = 0;
  };
  util::Rng rng(seed);
  std::vector<PendingTransfer> transfers;
  std::vector<bool> cleared;
  std::map<std::string, std::int64_t> delta;  ///< expected − kInitialBalance
  std::uint64_t number = 1;
  const auto make_batch = [&] {
    for (const auto& src : kShards) {
      if (src == fleet.victim) continue;
      for (int k = 0; k < 4; ++k) {
        const auto amount = static_cast<std::uint64_t>(rng.range(1, 40));
        const std::string& from = accounts[src][k % accounts[src].size()];
        const std::string& to =
            accounts[fleet.victim][(k + 1) % accounts[fleet.victim].size()];
        transfers.push_back(
            {accounting::write_check("router",
                                     fleet.world.principal("router").identity,
                                     AccountId{src, from}, "router", "usd",
                                     amount, number++,
                                     fleet.world.clock.now(), util::kHour),
             to, amount});
        cleared.push_back(false);
        delta[from] -= static_cast<std::int64_t>(amount);
        delta[to] += static_cast<std::int64_t>(amount);
      }
    }
  };

  auto client = fleet.world.accounting_client("router");
  net::RetryPolicy retry;
  retry.max_attempts = 6;
  client.set_retry_policy(retry);

  // Acked ⊆ promoted state, re-checked after EVERY heal: each credit the
  // client holds a cleared reply for must already be in the new primary's
  // books (≥, not =: un-acked settles may legitimately have replicated).
  const auto check_acked = [&] {
    std::map<std::string, std::int64_t> acked;
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      if (cleared[i]) acked[transfers[i].to_account] += transfers[i].amount;
    }
    for (const auto& [to, amt] : acked) {
      const auto* acct = fleet.primary_server().account(to);
      if (acct == nullptr ||
          acct->balances().balance("usd") < kInitialBalance + amt) {
        out.acked_missing += 1;
      }
    }
  };
  const auto drive = [&](std::size_t i, AccountingServer* mortal,
                         std::uint64_t heal_target) {
    auto result = client.endorse_and_deposit(
        fleet.dir.home(transfers[i].to_account), transfers[i].check,
        transfers[i].to_account);
    if (result.is_ok()) {
      cleared[i] = true;
    } else if (!net::RetryPolicy::transport_error(result.status())) {
      out.protocol_errors += 1;
    }
    if (fleet.coordinator->generations() < heal_target &&
        mortal->storage_dead()) {
      fleet.heal_to(heal_target);
      check_acked();
    }
  };
  const auto run_phase = [&](std::size_t begin, AccountingServer* mortal,
                             std::uint64_t heal_target,
                             std::uint64_t fault_seed) {
    net::FaultSpec spec;
    spec.drop_request = 0.05;
    spec.drop_reply = 0.08;
    spec.duplicate = 0.05;
    spec.extra_delay = 0.10;
    spec.extra_delay_max = 5 * util::kMillisecond;
    fleet.world.net.set_fault_plan(net::FaultPlan::uniform(fault_seed, spec));
    for (int pass = 0; pass < 3; ++pass) {
      for (std::size_t i = begin; i < transfers.size(); ++i) {
        if (!cleared[i]) drive(i, mortal, heal_target);
      }
    }
    fleet.world.net.clear_fault_plan();
    for (std::size_t i = begin; i < transfers.size(); ++i) {
      for (int attempt = 0; attempt < 4 && !cleared[i]; ++attempt) {
        drive(i, mortal, heal_target);
      }
      if (!cleared[i]) out.unconverged += 1;
    }
  };

  // Phase 1: kill the born primary mid-clearing.
  storage::CrashPlan plan1;
  plan1.seed = seed * 977 + 13;
  plan1.min_appends = 1;
  plan1.max_appends = 8;
  plan1.tear_mid_write = (seed % 2) == 0;
  fleet.crash1.arm(plan1);
  make_batch();
  run_phase(0, fleet.shards[fleet.victim].get(), /*heal_target=*/1, seed);

  // Factor-restored gate: before the second kill the coordinator must
  // have a live replacement standby holding the winner's durable state —
  // otherwise the second failure would have nothing to fail over TO and
  // the test would only re-prove single-failure survival.
  AccountingServer& gen1 = fleet.gen_replayers[0]->server();
  out.factor_restored =
      fleet.coordinator->generations() == 1 &&
      !fleet.coordinator->standbys().empty() &&
      fleet.coordinator->shipper()->ship_until(gen1.journal_durable_lsn())
          .is_ok();

  // Phase 2: the generation-1 winner dies the same way.
  storage::CrashPlan plan2;
  plan2.seed = seed * 31 + 7;
  plan2.min_appends = 1;
  plan2.max_appends = 6;
  plan2.tear_mid_write = (seed % 3) == 0;
  fleet.crash2.arm(plan2);
  const std::size_t phase2_begin = transfers.size();
  make_batch();
  run_phase(phase2_begin, &gen1, /*heal_target=*/2, seed * 131 + 1);

  out.generations = fleet.coordinator->generations();

  // The dead NAME still clears at the final survivor (adoption chained
  // victim → g1 → g2 through the bootstrap snapshots) and the retry is
  // deduped: the paper moves money exactly once.
  const PrincipalName survivor = fleet.coordinator->primary_name();
  const auto deposited =
      client.endorse_and_deposit(survivor, dead_name_check,
                                 accounts[fleet.victim][1]);
  const auto retried =
      client.endorse_and_deposit(survivor, dead_name_check,
                                 accounts[fleet.victim][1]);
  out.dead_name_cleared = deposited.is_ok() && retried.is_ok();
  if (out.dead_name_cleared) {
    delta[accounts[fleet.victim][0]] -= 75;
    delta[accounts[fleet.victim][1]] += 75;
  }

  for (auto& replayer : fleet.gen_replayers) {
    if (replayer->name() == survivor) out.final_epoch = replayer->epoch();
  }
  out.apply_failures += fleet.coordinator->standbys().empty()
                            ? 0
                            : fleet.coordinator->standbys()[0]->apply_failures();

  out.expected_named_total =
      static_cast<std::int64_t>(all_accounts.size()) * kInitialBalance;
  for (const auto& account : all_accounts) {
    out.named_total += fleet.balance(account);
    if (fleet.balance(account) != kInitialBalance + delta[account]) {
      out.ledger_mismatches += 1;
    }
  }
  for (auto& [name, shard] : fleet.shards) {
    if (name != fleet.victim) out.uncollected += shard->uncollected_total();
  }
  out.uncollected += fleet.primary_server().uncollected_total();
  return out;
}

TEST(ChaosReplication, SecondFailureHealsAndTheBooksStayExact) {
  for (const std::uint64_t seed : seed_matrix(6)) {
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed));
    const DoubleFailoverOutcome out = run_double_failover_chaos(seed);
    // Both seeded kills fired and both heals completed (epochs 1 → 2 → 3).
    EXPECT_EQ(out.generations, 2u);
    EXPECT_EQ(out.final_epoch, 3u);
    EXPECT_TRUE(out.factor_restored)
        << "replication factor was not back before the second kill";
    EXPECT_EQ(out.protocol_errors, 0);
    EXPECT_EQ(out.unconverged, 0);
    EXPECT_EQ(out.acked_missing, 0);
    EXPECT_TRUE(out.dead_name_cleared)
        << "check drawn on the original primary's name bounced at the "
           "final survivor";
    // Fleet-wide conservation across BOTH failovers: nothing settled
    // twice, nothing lost, every ledger line exact.
    EXPECT_EQ(out.named_total, out.expected_named_total);
    EXPECT_EQ(out.ledger_mismatches, 0);
    EXPECT_EQ(out.uncollected, 0);
    EXPECT_EQ(out.apply_failures, 0u);
  }
}

// ---- Fencing-off ablation (teeth) -----------------------------------------

struct SplitBrainBooks {
  std::int64_t a = 0;
  std::int64_t b = 0;
  bool primary_fenced = false;
};

/// Deterministic split-brain schedule: a transfer is applied on the
/// primary but its ack withheld (standby partitioned), the standby
/// promotes and the client retries the transfer there, then the partition
/// heals and the stale primary ships its fork.  With fencing the fork is
/// refused at the epoch boundary; without it the standby replays the
/// transfer ON TOP of the retried one — the books double-move money the
/// client was told failed once.
SplitBrainBooks run_split_brain(bool fencing) {
  ReplicatedFleet fleet("s1");
  for (const auto& s : kShards) fleet.boot(s, nullptr);
  fleet.boot_standby(/*seed=*/1, fencing);
  const auto accts = fleet.open_on("s1", 2);
  // Make the opens durable (kBatch would otherwise hold them below the
  // fsync watermark) and seed the standby through the bootstrap path.
  EXPECT_TRUE(fleet.shards["s1"]->checkpoint().is_ok());
  EXPECT_TRUE(fleet.shipper
                  ->ship_until(fleet.shards["s1"]->journal_durable_lsn())
                  .is_ok());

  auto client = fleet.world.accounting_client("router");
  // Partition primary from standby: the next write applies on the primary
  // but its ack is withheld at the replication barrier.
  fleet.world.net.fail_link("s1", fleet.standby_name);
  auto withheld = client.transfer("s1", accts[0], accts[1], "usd", 50);
  EXPECT_FALSE(withheld.is_ok());

  // The client treats the op as failed, the operator promotes the
  // standby, and the retry lands there — THE transfer, as acked history.
  const util::Status promoted = fleet.standby->promote();
  EXPECT_TRUE(promoted.is_ok()) << promoted;
  const util::Status retried =
      client.transfer(fleet.standby_name, accts[0], accts[1], "usd", 50);
  EXPECT_TRUE(retried.is_ok()) << retried;

  // Heal: the deposed primary's shipper pushes its forked journal tail.
  fleet.world.net.restore_link("s1", fleet.standby_name);
  (void)fleet.shipper->ship_once();

  SplitBrainBooks books;
  books.a = fleet.standby_server->account(accts[0])->balances().balance("usd");
  books.b = fleet.standby_server->account(accts[1])->balances().balance("usd");
  books.primary_fenced = fleet.shards["s1"]->fenced();
  return books;
}

TEST(ChaosReplication, FencingRefusesTheDeposedPrimarysFork) {
  const SplitBrainBooks books = run_split_brain(/*fencing=*/true);
  EXPECT_EQ(books.a, kInitialBalance - 50);
  EXPECT_EQ(books.b, kInitialBalance + 50);
  EXPECT_TRUE(books.primary_fenced);
}

TEST(ChaosReplication, FencingOffLetsTheForkCorruptTheBooks) {
  // Teeth: without fencing this schedule MUST double-apply the transfer.
  // If it stops doing so, the ablation no longer proves fencing matters.
  const SplitBrainBooks books = run_split_brain(/*fencing=*/false);
  EXPECT_EQ(books.a, kInitialBalance - 100)
      << "stale primary's fork was not applied; the ablation has lost its "
         "teeth";
  EXPECT_EQ(books.b, kInitialBalance + 100);
  EXPECT_FALSE(books.primary_fenced);
}

}  // namespace
}  // namespace rproxy
