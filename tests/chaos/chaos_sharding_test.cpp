// Seeded chaos for the sharded bank: network faults plus a shard killed
// mid-cross-shard-clearing and mid-migration, with global conservation
// asserted after recovery.  Any failure prints the seed; re-run with
// CHAOS_SEED=<n> to replay that exact schedule (CI injects a run-unique
// seed on top of the fixed matrix).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accounting/sharding/migration.hpp"
#include "accounting/sharding/shard_router.hpp"
#include "storage/crash_point.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"
#include "util/rng.hpp"

namespace rproxy {
namespace {

using accounting::AccountingServer;
using accounting::MigrationSpec;
using accounting::sharding::ShardDirectory;
using accounting::sharding::stable_hash64;
using accounting::sharding::uniform_map;
using rproxy::testing::World;

constexpr std::int64_t kInitialBalance = 1000;
const std::vector<std::string> kShards = {"s1", "s2", "s3"};

std::vector<std::uint64_t> seed_matrix(std::uint64_t upto) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= upto; ++s) seeds.push_back(s);
  if (const char* env = std::getenv("CHAOS_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }
  return seeds;
}

/// Sharded fleet with durable storage, a shared directory, and helpers to
/// boot/reboot shards (optionally with an armed crash point).
struct ShardedFleet {
  World world;
  rproxy::testing::TempDir tmp;
  crypto::SymmetricKey storage_key = crypto::SymmetricKey::generate();
  ShardDirectory dir;
  std::map<std::string, std::unique_ptr<AccountingServer>> shards;
  bool enable_dedup = true;

  ShardedFleet() {
    world.add_principal("router");
    for (const auto& s : kShards) world.add_principal(s);
    EXPECT_TRUE(dir.install(uniform_map(kShards, 1)));
  }

  void boot(const std::string& name, storage::CrashPoint* crash) {
    auto config = world.accounting_config(name);
    config.shard = &dir;
    config.enable_dedup = enable_dedup;
    config.storage_dir = tmp.sub(name);
    config.storage_key = storage_key;
    config.crash_point = crash;
    auto server = std::make_unique<AccountingServer>(std::move(config));
    EXPECT_TRUE(server->recover().is_ok()) << name;
    world.net.attach(name, *server);
    shards[name] = std::move(server);
  }

  /// Opens `n` router-owned accounts homed on `shard`.
  std::vector<std::string> open_on(const std::string& shard, int n) {
    std::vector<std::string> names;
    for (int i = 0; static_cast<int>(names.size()) < n; ++i) {
      const std::string name = "acct-" + shard + "-" + std::to_string(i);
      if (dir.home(name) != shard) continue;
      shards[shard]->open_account(name, "router",
                                  accounting::Balances{{"usd", kInitialBalance}});
      names.push_back(name);
    }
    return names;
  }

  /// Sum of every named (non-infrastructure) account across the fleet.
  [[nodiscard]] std::int64_t named_total(
      const std::vector<std::string>& accounts) {
    std::int64_t total = 0;
    for (const auto& account : accounts) {
      for (auto& [name, shard] : shards) {
        if (const auto* acct = shard->account(account)) {
          total += acct->balances().balance("usd");
        }
      }
    }
    return total;
  }
};

struct ClearingOutcome {
  int protocol_errors = 0;
  int unconverged = 0;
  int restarts = 0;
  std::int64_t named_total = 0;
  std::int64_t expected_named_total = 0;
  std::int64_t uncollected = 0;
  int payor_mismatches = 0;
};

/// Cross-shard clearing under faults with a seeded shard kill: checks are
/// pre-written (stable check numbers), deposits retried across passes, the
/// victim rebooted from its journal whenever the crash fires.
ClearingOutcome run_shard_clearing_chaos(std::uint64_t seed,
                                         bool enable_dedup) {
  ShardedFleet fleet;
  fleet.enable_dedup = enable_dedup;
  const std::string victim = kShards[seed % kShards.size()];
  storage::CrashPoint crash;
  for (const auto& s : kShards) {
    fleet.boot(s, s == victim ? &crash : nullptr);
  }
  std::map<std::string, std::vector<std::string>> accounts;
  std::vector<std::string> all_accounts;
  for (const auto& s : kShards) {
    accounts[s] = fleet.open_on(s, 2);
    all_accounts.insert(all_accounts.end(), accounts[s].begin(),
                        accounts[s].end());
  }
  for (auto& [name, shard] : fleet.shards) {
    EXPECT_TRUE(shard->checkpoint().is_ok()) << name;
  }

  // Every check is cross-shard: drawn on an account of one shard,
  // deposited at the next shard's account.
  struct PendingTransfer {
    accounting::Check check;
    std::string target_shard;
    std::string to_account;
    std::uint64_t amount = 0;
    std::string from_account;
  };
  util::Rng rng(seed);
  std::vector<PendingTransfer> transfers;
  std::map<std::string, std::int64_t> drawn;   // per from-account
  std::map<std::string, std::int64_t> credit;  // per to-account
  std::uint64_t number = 1;
  ClearingOutcome out;
  for (std::size_t i = 0; i < kShards.size(); ++i) {
    const std::string& src = kShards[i];
    const std::string& dst = kShards[(i + 1) % kShards.size()];
    for (int k = 0; k < 4; ++k) {
      const auto amount = static_cast<std::uint64_t>(rng.range(1, 40));
      const std::string& from = accounts[src][k % accounts[src].size()];
      const std::string& to = accounts[dst][(k + 1) % accounts[dst].size()];
      transfers.push_back(
          {accounting::write_check("router",
                                   fleet.world.principal("router").identity,
                                   AccountId{src, from}, "router", "usd",
                                   amount, number++,
                                   fleet.world.clock.now(), util::kHour),
           dst, to, amount, from});
      drawn[from] += static_cast<std::int64_t>(amount);
      credit[to] += static_cast<std::int64_t>(amount);
    }
  }
  out.expected_named_total =
      static_cast<std::int64_t>(all_accounts.size()) * kInitialBalance;

  storage::CrashPlan plan;
  plan.seed = seed * 977 + 13;
  plan.min_appends = 1;
  plan.max_appends = 8;
  plan.tear_mid_write = (seed % 2) == 0;
  crash.arm(plan);

  net::FaultSpec spec;
  spec.drop_request = 0.05;
  spec.drop_reply = enable_dedup ? 0.08 : 0.2;
  spec.duplicate = 0.05;
  spec.extra_delay = 0.10;
  spec.extra_delay_max = 5 * util::kMillisecond;
  fleet.world.net.set_fault_plan(net::FaultPlan::uniform(seed, spec));

  auto router_client = fleet.world.accounting_client("router");
  net::RetryPolicy retry;
  retry.max_attempts = 6;
  router_client.set_retry_policy(retry);

  const auto reboot_victim = [&] {
    out.restarts += 1;
    fleet.boot(victim, nullptr);  // journal replay; crash disarmed
  };

  std::vector<bool> cleared(transfers.size(), false);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      if (cleared[i]) continue;
      auto result = router_client.endorse_and_deposit(
          transfers[i].target_shard, transfers[i].check,
          transfers[i].to_account);
      if (result.is_ok()) {
        cleared[i] = true;
      } else if (!net::RetryPolicy::transport_error(result.status())) {
        out.protocol_errors += 1;
      }
      if (fleet.shards[victim]->storage_dead()) reboot_victim();
    }
  }

  fleet.world.net.clear_fault_plan();
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    if (cleared[i]) continue;
    for (int attempt = 0; attempt < 3 && !cleared[i]; ++attempt) {
      auto result = router_client.endorse_and_deposit(
          transfers[i].target_shard, transfers[i].check,
          transfers[i].to_account);
      if (result.is_ok()) {
        cleared[i] = true;
      } else if (fleet.shards[victim]->storage_dead()) {
        reboot_victim();
      } else {
        break;
      }
    }
    if (!cleared[i]) out.unconverged += 1;
  }

  out.named_total = fleet.named_total(all_accounts);
  for (const auto& [account, total_drawn] : drawn) {
    std::int64_t balance = 0;
    for (auto& [name, shard] : fleet.shards) {
      if (const auto* acct = shard->account(account)) {
        balance = acct->balances().balance("usd");
      }
    }
    if (balance != kInitialBalance - total_drawn + credit[account]) {
      out.payor_mismatches += 1;
    }
  }
  for (auto& [name, shard] : fleet.shards) {
    out.uncollected += shard->uncollected_total();
  }
  return out;
}

TEST(ChaosSharding, ShardKilledMidClearingPreservesConservation) {
  int total_restarts = 0;
  for (const std::uint64_t seed : seed_matrix(10)) {
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed));
    const ClearingOutcome out =
        run_shard_clearing_chaos(seed, /*enable_dedup=*/true);
    EXPECT_EQ(out.protocol_errors, 0);
    EXPECT_EQ(out.unconverged, 0);
    // Conservation across the whole fleet: no check settled twice, none
    // lost, every account at exactly initial - drawn + credited.
    EXPECT_EQ(out.named_total, out.expected_named_total);
    EXPECT_EQ(out.payor_mismatches, 0);
    EXPECT_EQ(out.uncollected, 0);
    total_restarts += out.restarts;
  }
  // The matrix must actually kill shards, or it proves nothing.
  EXPECT_GE(total_restarts, 3);
}

TEST(ChaosSharding, DedupOffBreaksCrossShardExactlyOnce) {
  // Teeth: with dedup disabled, a reply lost after settlement makes the
  // retried deposit bounce as a replay (or settle twice at the drawee),
  // so some seed must corrupt the books.
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 10 && violations == 0; ++seed) {
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed));
    const ClearingOutcome out =
        run_shard_clearing_chaos(seed, /*enable_dedup=*/false);
    if (out.protocol_errors > 0 || out.unconverged > 0 ||
        out.named_total != out.expected_named_total ||
        out.payor_mismatches > 0) {
      violations += 1;
    }
  }
  EXPECT_GE(violations, 1)
      << "no seed broke exactly-once with dedup off; the chaos schedule "
         "is too gentle to prove the dedup tables matter";
}

// ---- Migration under fire ------------------------------------------------

TEST(ChaosSharding, ShardKilledMidMigrationRecoversByRedrive) {
  // The victim (source or target, seed-chosen) dies at a seeded journal
  // append INSIDE the migration protocol.  Rebooting it from the journal
  // and re-driving the same spec must finish the move exactly once.
  for (const std::uint64_t seed : seed_matrix(8)) {
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed));
    ShardedFleet fleet;
    const std::string victim = (seed % 2) == 0 ? "s1" : "s2";
    storage::CrashPoint crash;
    for (const auto& s : kShards) {
      fleet.boot(s, s == victim ? &crash : nullptr);
    }
    const auto moved = fleet.open_on("s1", 2);
    // Put some pre-existing mutations in the journal tail.
    for (auto& [name, shard] : fleet.shards) {
      EXPECT_TRUE(shard->checkpoint().is_ok()) << name;
    }

    MigrationSpec spec;
    spec.migration_id = 7000 + seed;
    spec.lo = std::min(stable_hash64(moved[0]), stable_hash64(moved[1]));
    spec.hi = std::max(stable_hash64(moved[0]), stable_hash64(moved[1]));
    spec.source = "s1";
    spec.target = "s2";

    storage::CrashPlan plan;
    plan.seed = seed * 31 + 7;
    plan.min_appends = 1;
    plan.max_appends = 2;  // freeze/import/evacuate each append once
    plan.tear_mid_write = (seed % 3) == 0;
    crash.arm(plan);

    bool done = false;
    for (int attempt = 0; attempt < 5 && !done; ++attempt) {
      auto status = accounting::sharding::migrate_range(
          *fleet.shards["s1"], *fleet.shards["s2"], fleet.dir, spec);
      if (status.is_ok()) {
        done = true;
      } else if (fleet.shards[victim]->storage_dead()) {
        fleet.boot(victim, nullptr);  // reboot and re-drive
      } else {
        FAIL() << "migration failed without a crash: " << status;
      }
    }
    ASSERT_TRUE(done) << "migration never completed";

    // Exactly-once: both accounts live ONLY on s2 with their full balance;
    // the moved range routes to s2; no freeze left dangling.
    for (const auto& account : moved) {
      EXPECT_EQ(fleet.shards["s1"]->account(account), nullptr);
      ASSERT_NE(fleet.shards["s2"]->account(account), nullptr) << account;
      EXPECT_EQ(
          fleet.shards["s2"]->account(account)->balances().balance("usd"),
          kInitialBalance);
      EXPECT_EQ(fleet.dir.home(account), "s2");
    }
    EXPECT_EQ(fleet.shards["s1"]->frozen_range_count(), 0u);
    EXPECT_TRUE(fleet.shards["s2"]->migration_applied(spec.migration_id));
  }
}

TEST(ChaosSharding, DedupOffReimportClobbersPostCutoverState) {
  // Migration teeth: the driver dies AFTER import + map cutover but BEFORE
  // evacuating the source, so the source still holds a stale copy.  The
  // migrated account then takes a deposit at its new home, and the
  // amnesiac driver re-drives the whole migration.  With the
  // applied-migrations guard (dedup on) the re-import no-ops and the
  // deposit survives; with dedup off the stale export is re-applied over
  // the new state — acknowledged money vanishes.
  for (const bool dedup : {true, false}) {
    SCOPED_TRACE(dedup ? "guarded arm (dedup on)" : "ablation arm (dedup off)");
    ShardedFleet fleet;
    fleet.enable_dedup = dedup;
    for (const auto& s : kShards) fleet.boot(s, nullptr);
    const std::string acct = fleet.open_on("s1", 1)[0];
    const std::string funding = fleet.open_on("s3", 1)[0];

    MigrationSpec spec;
    spec.migration_id = 99;
    spec.lo = stable_hash64(acct);
    spec.hi = spec.lo;
    spec.source = "s1";
    spec.target = "s2";
    // Drive the protocol by hand up to (and including) cutover; the
    // driver "crashes" before the evacuate step.
    ASSERT_TRUE(fleet.shards["s1"]->migration_freeze(spec).is_ok());
    auto exported = fleet.shards["s1"]->migration_export(spec);
    ASSERT_TRUE(exported.is_ok()) << exported.status();
    ASSERT_TRUE(
        fleet.shards["s2"]->migration_import(spec, exported.value()).is_ok());
    accounting::sharding::ShardMap cutover = uniform_map(kShards, 2);
    cutover.overrides.push_back({spec.lo, spec.hi, spec.target});
    ASSERT_TRUE(fleet.dir.install(std::move(cutover)));

    // Post-cutover deposit at the new home: +50 from a third shard.
    auto client = fleet.world.accounting_client("router");
    const accounting::Check check = accounting::write_check(
        "router", fleet.world.principal("router").identity,
        AccountId{"s3", funding}, "router", "usd", 50, 424242,
        fleet.world.clock.now(), util::kHour);
    ASSERT_TRUE(client.endorse_and_deposit("s2", check, acct).is_ok());
    ASSERT_EQ(fleet.shards["s2"]->account(acct)->balances().balance("usd"),
              kInitialBalance + 50);

    // Driver crash-amnesia: the whole migration is re-driven.
    ASSERT_TRUE(accounting::sharding::migrate_range(
                    *fleet.shards["s1"], *fleet.shards["s2"], fleet.dir, spec)
                    .is_ok());
    const std::int64_t balance =
        fleet.shards["s2"]->account(acct)->balances().balance("usd");
    if (dedup) {
      EXPECT_EQ(balance, kInitialBalance + 50)
          << "guarded re-import must not clobber post-cutover deposits";
    } else {
      EXPECT_EQ(balance, kInitialBalance)
          << "dedup-off re-import unexpectedly preserved state; the "
             "ablation has stopped proving the guard matters";
    }
    // Either way the re-drive must finish the abandoned evacuation.
    EXPECT_EQ(fleet.shards["s1"]->account(acct), nullptr);
    EXPECT_EQ(fleet.shards["s1"]->frozen_range_count(), 0u);
  }
}

}  // namespace
}  // namespace rproxy
