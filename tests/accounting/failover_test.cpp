// Self-healing failover (DESIGN.md §5h): the FailoverCoordinator's full
// heal loop — identity takeover, loser re-subscription, automatic standby
// re-provisioning, barrier re-arm — plus the durable standby watermark
// that lets a RESTARTED standby resume shipping without a snapshot
// re-bootstrap (and the torn-append schedule the watermark guard heals).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "accounting/clearing.hpp"
#include "accounting/replication/failover.hpp"
#include "accounting/replication/journal_shipper.hpp"
#include "accounting/replication/standby.hpp"
#include "storage/crash_point.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"

namespace rproxy {
namespace {

using accounting::AccountingServer;
using accounting::Balances;
using accounting::replication::FailoverCoordinator;
using accounting::replication::JournalShipper;
using accounting::replication::StandbyReplayer;
using rproxy::testing::World;
using util::ErrorCode;

constexpr std::int64_t kInitial = 1000;

/// A durable primary ("bank") with one or two durable hot standbys, a
/// coordinator driving their failure detectors, and a provision factory
/// that boots replacements on demand.  Every server shares one storage key
/// so bootstrap snapshots unseal anywhere.
struct HealWorld {
  World world;
  rproxy::testing::TempDir tmp;
  crypto::SymmetricKey key = crypto::SymmetricKey::generate();
  storage::CrashPoint crash;
  std::unique_ptr<AccountingServer> primary;
  std::vector<std::unique_ptr<AccountingServer>> replica_servers;
  std::vector<std::unique_ptr<StandbyReplayer>> replayers;
  std::shared_ptr<JournalShipper> shipper;
  std::unique_ptr<FailoverCoordinator> coordinator;
  int provisioned = 0;

  explicit HealWorld(int standbys) {
    world.add_principal("bank");
    world.add_principal("alice");
    auto config = world.accounting_config("bank");
    config.storage_dir = tmp.sub("bank");
    config.storage_key = key;
    config.fsync_policy = storage::FsyncPolicy::kEveryRecord;
    config.crash_point = &crash;
    primary = std::make_unique<AccountingServer>(std::move(config));
    EXPECT_TRUE(primary->recover().is_ok());
    world.net.attach("bank", *primary);
    primary->open_account("a1", "alice", Balances{{"usd", kInitial}});
    primary->open_account("a2", "alice", Balances{{"usd", kInitial}});

    std::vector<PrincipalName> names;
    for (int i = 0; i < standbys; ++i) {
      const std::string name = "bank-s" + std::to_string(i + 1);
      add_standby(name, "bank", /*epoch=*/1);
      names.push_back(name);
    }
    JournalShipper::Config sc;
    sc.primary = primary.get();
    sc.net = &world.net;
    sc.standbys = names;
    shipper = std::make_shared<JournalShipper>(std::move(sc));
    auto barrier_shipper = shipper;
    primary->set_replication_barrier([barrier_shipper](std::uint64_t lsn) {
      return barrier_shipper->ship_until(lsn);
    });

    FailoverCoordinator::Config cc;
    cc.net = &world.net;
    cc.clock = &world.clock;
    cc.provision = [this](const PrincipalName& new_primary,
                          std::uint64_t epoch) {
      provisioned += 1;
      const std::string name = "bank-p" + std::to_string(provisioned);
      world.add_principal(name);
      return add_standby(name, new_primary, epoch);
    };
    coordinator = std::make_unique<FailoverCoordinator>(std::move(cc));
    std::vector<StandbyReplayer*> group;
    for (auto& r : replayers) group.push_back(r.get());
    coordinator->adopt_group(primary.get(), shipper, std::move(group));
  }

  StandbyReplayer* add_standby(const std::string& name,
                               const PrincipalName& primary_name,
                               std::uint64_t epoch) {
    world.add_principal(name);
    auto config = world.accounting_config(name);
    config.storage_dir = tmp.sub(name);
    config.storage_key = key;
    auto server = std::make_unique<AccountingServer>(std::move(config));
    EXPECT_TRUE(server->recover().is_ok());
    StandbyReplayer::Config rc;
    rc.name = name;
    rc.primary = primary_name;
    rc.server = server.get();
    rc.clock = &world.clock;
    rc.storage_key = key;
    rc.epoch = epoch;
    rc.jitter_seed = replayers.size() + 1;
    auto replayer = std::make_unique<StandbyReplayer>(std::move(rc));
    world.net.attach(name, *replayer);
    replica_servers.push_back(std::move(server));
    replayers.push_back(std::move(replayer));
    return replayers.back().get();
  }

  /// Kills the primary's journal on its next append (a transfer that then
  /// fails) and drives coordinator ticks until a standby takes over and
  /// the heal completes.
  void kill_primary_and_heal(std::uint64_t target_generation) {
    storage::CrashPlan plan;
    plan.seed = 7;
    plan.min_appends = 1;
    plan.max_appends = 1;
    crash.arm(plan);
    auto client = world.accounting_client("alice");
    EXPECT_FALSE(client.transfer("bank", "a1", "a2", "usd", 1).is_ok());
    EXPECT_TRUE(primary->storage_dead());

    for (int i = 0;
         i < 12 && coordinator->generations() < target_generation; ++i) {
      world.clock.advance(700 * util::kMillisecond);
      auto tick = coordinator->tick();
      ASSERT_TRUE(tick.is_ok()) << tick.status();
    }
    ASSERT_EQ(coordinator->generations(), target_generation)
        << "no standby promoted after primary silence";
  }

  [[nodiscard]] std::int64_t balance_at(AccountingServer& server,
                                        const std::string& account) {
    const auto* acct = server.account(account);
    return acct == nullptr ? -1 : acct->balances().balance("usd");
  }
};

TEST(Failover, HealReprovisionsAStandbyAndReArmsTheBarrier) {
  HealWorld w(/*standbys=*/1);
  auto client = w.world.accounting_client("alice");
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 100).is_ok());

  w.kill_primary_and_heal(1);
  EXPECT_EQ(w.coordinator->primary_name(), "bank-s1");
  EXPECT_EQ(w.provisioned, 1);
  ASSERT_EQ(w.coordinator->standbys().size(), 1u);
  EXPECT_EQ(w.coordinator->standbys()[0]->name(), "bank-p1");

  // The replacement bootstrapped from the winner's post-takeover snapshot:
  // the acked state (including the pre-failover transfer) is already there.
  AccountingServer& replacement = *w.replica_servers.back();
  EXPECT_EQ(w.balance_at(replacement, "a1"), kInitial - 100);

  // The re-armed semi-sync barrier makes the NEW primary's acks imply
  // replication: a transfer acked at bank-s1 must be visible at bank-p1.
  ASSERT_TRUE(client.transfer("bank-s1", "a1", "a2", "usd", 30).is_ok());
  EXPECT_EQ(w.balance_at(replacement, "a1"), kInitial - 130);
  EXPECT_EQ(w.balance_at(replacement, "a2"), kInitial + 130);

  // And the barrier has teeth: partition the replacement and the winner
  // withholds acks, exactly like the original primary did.
  w.world.net.fail_link("bank-s1", "bank-p1");
  auto held = client.transfer("bank-s1", "a1", "a2", "usd", 5);
  EXPECT_FALSE(held.is_ok());
  EXPECT_EQ(held.code(), ErrorCode::kUnavailable);
}

TEST(Failover, ChecksDrawnOnTheDeadPrimarysNameClearAtTheSuccessor) {
  HealWorld w(/*standbys=*/1);
  // Drawn on "bank" BEFORE the failure, never presented to it.
  const accounting::Check check = accounting::write_check(
      "alice", w.world.principal("alice").identity, AccountId{"bank", "a1"},
      "alice", "usd", 75, 4242, w.world.clock.now(), util::kHour);

  w.kill_primary_and_heal(1);
  EXPECT_TRUE(w.replayers[0]->server().identity_adopted("bank"));

  // The successor settles the dead name's paper locally — no clearing
  // chain toward a corpse — and the dedup table keeps a retry exactly-once.
  auto client = w.world.accounting_client("alice");
  auto cleared = client.endorse_and_deposit("bank-s1", check, "a2");
  ASSERT_TRUE(cleared.is_ok()) << cleared.status();
  auto retried = client.endorse_and_deposit("bank-s1", check, "a2");
  ASSERT_TRUE(retried.is_ok()) << retried.status();
  AccountingServer& winner = w.replayers[0]->server();
  EXPECT_EQ(w.balance_at(winner, "a1"), kInitial - 75);
  EXPECT_EQ(w.balance_at(winner, "a2"), kInitial + 75);
  EXPECT_EQ(winner.uncollected_total(), 0);
}

TEST(Failover, LoserOfThePromotionRaceResubscribesToTheWinner) {
  HealWorld w(/*standbys=*/2);
  auto client = w.world.accounting_client("alice");
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 200).is_ok());

  w.kill_primary_and_heal(1);
  StandbyReplayer* winner = nullptr;
  StandbyReplayer* loser = nullptr;
  for (int i = 0; i < 2; ++i) {
    (w.replayers[i]->promoted() ? winner : loser) = w.replayers[i].get();
  }
  ASSERT_NE(winner, nullptr);
  ASSERT_NE(loser, nullptr);
  EXPECT_EQ(w.coordinator->primary_name(), winner->name());

  // The loser follows the winner now, and the heal's seeding round already
  // answered its needs_bootstrap with a snapshot restore.
  EXPECT_EQ(loser->primary(), winner->name());
  EXPECT_FALSE(loser->needs_bootstrap());
  EXPECT_FALSE(loser->promoted());
  EXPECT_GE(loser->epoch(), winner->epoch());

  // Losers and the replacement both track the new primary's writes.
  ASSERT_TRUE(client.transfer(winner->name(), "a1", "a2", "usd", 40).is_ok());
  EXPECT_EQ(w.balance_at(loser->server(), "a1"), kInitial - 240);
  EXPECT_EQ(w.balance_at(*w.replica_servers.back(), "a1"), kInitial - 240);
  EXPECT_EQ(loser->apply_failures(), 0u);
}

// ---- Durable standby watermarks (restart without re-bootstrap) ------------

/// Primary + one durable standby, built so the standby can be torn down
/// and rebooted from its own journal.
struct RestartWorld {
  World world;
  rproxy::testing::TempDir tmp;
  crypto::SymmetricKey key = crypto::SymmetricKey::generate();
  std::unique_ptr<AccountingServer> primary;
  std::unique_ptr<AccountingServer> replica_server;
  std::unique_ptr<StandbyReplayer> standby;
  std::unique_ptr<JournalShipper> shipper;
  storage::CrashPoint replica_crash;

  RestartWorld() {
    world.add_principal("bank");
    world.add_principal("bankb");
    world.add_principal("alice");
    auto config = world.accounting_config("bank");
    config.storage_dir = tmp.sub("bank");
    config.storage_key = key;
    config.fsync_policy = storage::FsyncPolicy::kEveryRecord;
    primary = std::make_unique<AccountingServer>(std::move(config));
    EXPECT_TRUE(primary->recover().is_ok());
    world.net.attach("bank", *primary);
    primary->open_account("a1", "alice", Balances{{"usd", kInitial}});
    primary->open_account("a2", "alice", Balances{{"usd", kInitial}});
    boot_standby(/*with_crash=*/false);
  }

  /// (Re)boots the replica server from its storage dir and wraps a fresh
  /// replayer + shipper around it, as a standby restart would.
  void boot_standby(bool with_crash) {
    if (standby) world.net.detach("bankb");
    auto config = world.accounting_config("bankb");
    config.storage_dir = tmp.sub("bankb");
    config.storage_key = key;
    config.fsync_policy = storage::FsyncPolicy::kEveryRecord;
    if (with_crash) config.crash_point = &replica_crash;
    replica_server = std::make_unique<AccountingServer>(std::move(config));
    EXPECT_TRUE(replica_server->recover().is_ok());
    StandbyReplayer::Config rc;
    rc.name = "bankb";
    rc.primary = "bank";
    rc.server = replica_server.get();
    rc.clock = &world.clock;
    rc.storage_key = key;
    standby = std::make_unique<StandbyReplayer>(std::move(rc));
    world.net.attach("bankb", *standby);
    JournalShipper::Config sc;
    sc.primary = primary.get();
    sc.net = &world.net;
    sc.standbys = {"bankb"};
    shipper = std::make_unique<JournalShipper>(std::move(sc));
  }

  [[nodiscard]] std::int64_t replica_balance(const std::string& account) {
    const auto* acct = replica_server->account(account);
    return acct == nullptr ? -1 : acct->balances().balance("usd");
  }
};

TEST(Failover, RestartedStandbyResumesFromItsDurableWatermark) {
  RestartWorld rw;
  auto client = rw.world.accounting_client("alice");
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 150).is_ok());
  ASSERT_TRUE(
      rw.shipper->ship_until(rw.primary->journal_durable_lsn()).is_ok());
  const std::uint64_t mark = rw.standby->applied_lsn();
  ASSERT_GT(mark, 0u);

  // Restart: the new replayer seeds its watermark from the journaled
  // kReplApply frames, so shipping resumes mid-stream — the bootstrap
  // counter proves no snapshot restore happened.
  rw.boot_standby(/*with_crash=*/false);
  EXPECT_EQ(rw.standby->received_lsn(), mark);
  EXPECT_EQ(rw.standby->applied_lsn(), mark);
  EXPECT_EQ(rw.replica_balance("a1"), kInitial - 150);

  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 25).is_ok());
  ASSERT_TRUE(
      rw.shipper->ship_until(rw.primary->journal_durable_lsn()).is_ok());
  EXPECT_EQ(rw.replica_balance("a1"), kInitial - 175);
  EXPECT_EQ(rw.replica_balance("a2"), kInitial + 175);
  EXPECT_EQ(rw.replica_server->replica_bootstraps(), 0u);
  EXPECT_EQ(rw.standby->apply_failures(), 0u);
  // The fresh shipper re-sent the whole journal; every already-held frame
  // was skipped idempotently at the watermark, none re-applied.
  EXPECT_EQ(rw.standby->received_lsn(), rw.primary->journal_durable_lsn());
}

TEST(Failover, TornWatermarkAppendIsHealedByIdempotentResend) {
  RestartWorld rw;
  auto client = rw.world.accounting_client("alice");
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 60).is_ok());
  ASSERT_TRUE(
      rw.shipper->ship_until(rw.primary->journal_durable_lsn()).is_ok());

  // Reboot the standby with a crash point arming its NEXT local journal
  // append: the replicated effect and its watermark ride ONE kReplApply
  // frame, so the torn append loses both together — never the effect
  // without the mark.
  rw.boot_standby(/*with_crash=*/true);
  storage::CrashPlan plan;
  plan.seed = 11;
  plan.min_appends = 1;
  plan.max_appends = 1;
  plan.tear_mid_write = true;
  rw.replica_crash.arm(plan);
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 40).is_ok());
  (void)rw.shipper->ship_once();
  EXPECT_TRUE(rw.replica_server->storage_dead());

  // Restart again: recovery replays up to the torn frame, the watermark
  // sits just below the lost apply, and the resend applies it exactly
  // once — without any snapshot bootstrap.
  rw.boot_standby(/*with_crash=*/false);
  ASSERT_TRUE(
      rw.shipper->ship_until(rw.primary->journal_durable_lsn()).is_ok());
  EXPECT_EQ(rw.replica_balance("a1"), kInitial - 100);
  EXPECT_EQ(rw.replica_balance("a2"), kInitial + 100);
  EXPECT_EQ(rw.replica_server->replica_bootstraps(), 0u);
  EXPECT_EQ(rw.standby->apply_failures(), 0u);
}

}  // namespace
}  // namespace rproxy
