// Accounting server protocol tests (§4, Fig 5): queries, transfers,
// same-server clearing, cross-server clearing, certified checks,
// double-spend rejection, bounced checks.
#include "accounting/accounting_server.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using accounting::Check;
using testing::World;

class AccountingServerTest : public ::testing::Test {
 protected:
  AccountingServerTest() {
    world_.add_principal("client");
    world_.add_principal("app-server");
    world_.add_principal("bank1");
    world_.add_principal("bank2");

    bank1_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank1"));
    bank2_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank2"));
    world_.net.attach("bank1", *bank1_);
    world_.net.attach("bank2", *bank2_);

    bank2_->open_account("client-account", "client",
                         accounting::Balances{{"usd", 100}});
    bank1_->open_account("server-account", "app-server");
  }

  Check write_check(std::uint64_t amount, std::uint64_t number) {
    return accounting::write_check(
        "client", world_.principal("client").identity,
        AccountId{"bank2", "client-account"}, "app-server", "usd", amount,
        number, world_.clock.now(), util::kHour);
  }

  World world_;
  std::unique_ptr<accounting::AccountingServer> bank1_;
  std::unique_ptr<accounting::AccountingServer> bank2_;
};

TEST_F(AccountingServerTest, OwnerQueriesBalance) {
  auto client = world_.accounting_client("client");
  auto reply = client.query("bank2", "client-account");
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(reply.value().balances.balance("usd"), 100);
}

TEST_F(AccountingServerTest, StrangerCannotQuery) {
  auto stranger = world_.accounting_client("app-server");
  EXPECT_EQ(stranger.query("bank2", "client-account").code(),
            util::ErrorCode::kPermissionDenied);
}

TEST_F(AccountingServerTest, UnknownAccountQueryFails) {
  auto client = world_.accounting_client("client");
  EXPECT_EQ(client.query("bank2", "ghost").code(),
            util::ErrorCode::kNotFound);
}

TEST_F(AccountingServerTest, LocalTransfer) {
  bank2_->open_account("savings", "client");
  auto client = world_.accounting_client("client");
  ASSERT_TRUE(
      client.transfer("bank2", "client-account", "savings", "usd", 30)
          .is_ok());
  EXPECT_EQ(bank2_->account("client-account")->balances().balance("usd"),
            70);
  EXPECT_EQ(bank2_->account("savings")->balances().balance("usd"), 30);
}

TEST_F(AccountingServerTest, TransferRequiresDebitRight) {
  bank2_->open_account("other", "someone-else");
  auto client = world_.accounting_client("client");
  EXPECT_EQ(
      client.transfer("bank2", "other", "client-account", "usd", 1).code(),
      util::ErrorCode::kPermissionDenied);
}

TEST_F(AccountingServerTest, TransferInsufficientFunds) {
  bank2_->open_account("savings", "client");
  auto client = world_.accounting_client("client");
  EXPECT_EQ(client.transfer("bank2", "client-account", "savings", "usd", 101)
                .code(),
            util::ErrorCode::kInsufficientFunds);
}

TEST_F(AccountingServerTest, SameServerCheckClears) {
  // Payee also banks at bank2: single-server settlement, zero hops.
  bank2_->open_account("server-account", "app-server");
  const Check check = write_check(50, 1);
  auto payee = world_.accounting_client("app-server");
  auto reply = payee.endorse_and_deposit("bank2", check, "server-account");
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_TRUE(reply.value().cleared);
  EXPECT_EQ(reply.value().hops, 0u);
  EXPECT_EQ(bank2_->account("client-account")->balances().balance("usd"),
            50);
  EXPECT_EQ(bank2_->account("server-account")->balances().balance("usd"),
            50);
}

TEST_F(AccountingServerTest, CrossServerCheckClears) {
  // Fig 5 exactly: C banks at $2, S banks at $1, clearing crosses once.
  const Check check = write_check(50, 2);
  auto payee = world_.accounting_client("app-server");
  auto reply = payee.endorse_and_deposit("bank1", check, "server-account");
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_TRUE(reply.value().cleared);
  EXPECT_EQ(reply.value().hops, 1u);

  EXPECT_EQ(bank2_->account("client-account")->balances().balance("usd"),
            50);
  EXPECT_EQ(bank1_->account("server-account")->balances().balance("usd"),
            50);
  // bank1's settlement account at bank2 received the funds.
  ASSERT_NE(bank2_->account("peer:bank1"), nullptr);
  EXPECT_EQ(bank2_->account("peer:bank1")->balances().balance("usd"), 50);
  EXPECT_EQ(bank1_->uncollected_total(), 0);
}

TEST_F(AccountingServerTest, DuplicateCheckNumberRepliesIdempotently) {
  // §4: "If, within that period, another check with the same number is
  // seen, it is rejected."  With exactly-once clearing the rejection is
  // invisible to the payee — the dedup table replays the original reply —
  // but the money still moves exactly once.
  const Check check = write_check(10, 3);
  auto payee = world_.accounting_client("app-server");
  ASSERT_TRUE(
      payee.endorse_and_deposit("bank1", check, "server-account").is_ok());
  auto again = payee.endorse_and_deposit("bank1", check, "server-account");
  ASSERT_TRUE(again.is_ok()) << again.status();
  EXPECT_TRUE(again.value().cleared);
  EXPECT_EQ(bank1_->deduped_replies(), 1u);
  // The replayed duplicate did not double-credit.
  EXPECT_EQ(bank1_->account("server-account")->balances().balance("usd"),
            10);
  EXPECT_EQ(bank2_->account("client-account")->balances().balance("usd"),
            90);
}

TEST_F(AccountingServerTest, DuplicateCheckNumberRejectedWithoutDedup) {
  // The paper's own accept-once rejection is still underneath: disable the
  // dedup layer and the duplicate bounces as a replay.  Same-server settle
  // so no dedup-enabled peer can mask the rejection.
  auto config = world_.accounting_config("bank2");
  config.enable_dedup = false;
  accounting::AccountingServer plain_bank(std::move(config));
  world_.net.attach("bank2", plain_bank);
  plain_bank.open_account("client-account", "client",
                          accounting::Balances{{"usd", 100}});
  plain_bank.open_account("server-account", "app-server");

  const Check check = write_check(10, 3);
  auto payee = world_.accounting_client("app-server");
  ASSERT_TRUE(
      payee.endorse_and_deposit("bank2", check, "server-account").is_ok());
  auto again = payee.endorse_and_deposit("bank2", check, "server-account");
  EXPECT_EQ(again.code(), util::ErrorCode::kReplay);
  EXPECT_EQ(plain_bank.account("server-account")->balances().balance("usd"),
            10);
  EXPECT_EQ(plain_bank.account("client-account")->balances().balance("usd"),
            90);
  EXPECT_EQ(plain_bank.deduped_replies(), 0u);
}

TEST_F(AccountingServerTest, InsufficientFundsCheckBounces) {
  const Check check = write_check(500, 4);  // account holds only 100
  auto payee = world_.accounting_client("app-server");
  auto reply = payee.endorse_and_deposit("bank1", check, "server-account");
  EXPECT_EQ(reply.code(), util::ErrorCode::kInsufficientFunds);
  // The provisional uncollected credit was reverted.
  EXPECT_EQ(bank1_->account("server-account")->balances().balance("usd"), 0);
  EXPECT_EQ(bank1_->uncollected_total(), 0);
  EXPECT_EQ(bank1_->checks_bounced(), 1u);
}

TEST_F(AccountingServerTest, PartialDraw) {
  // "the payee transfers up to that limit" — draw 30 of a 50 check.
  const Check check = write_check(50, 5);
  auto payee = world_.accounting_client("app-server");
  auto endorsed = accounting::endorse_check(
      check, "app-server", world_.principal("app-server").identity, "bank1",
      world_.clock.now());
  ASSERT_TRUE(endorsed.is_ok());
  auto reply =
      payee.deposit("bank1", endorsed.value(), "server-account", 30);
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(bank2_->account("client-account")->balances().balance("usd"),
            70);
}

TEST_F(AccountingServerTest, DrawBeyondLimitRejected) {
  const Check check = write_check(50, 6);
  auto payee = world_.accounting_client("app-server");
  auto endorsed = accounting::endorse_check(
      check, "app-server", world_.principal("app-server").identity, "bank1",
      world_.clock.now());
  ASSERT_TRUE(endorsed.is_ok());
  EXPECT_EQ(
      payee.deposit("bank1", endorsed.value(), "server-account", 60).code(),
      util::ErrorCode::kRestrictionViolated);
}

TEST_F(AccountingServerTest, ExpiredCheckRejected) {
  const Check check = write_check(10, 7);
  world_.clock.advance(2 * util::kHour);
  auto payee = world_.accounting_client("app-server");
  // Re-issue the payee's identity cert (the old one also expired? no — 8h
  // lifetime; only the check's 1h lifetime passed).
  EXPECT_EQ(
      payee.endorse_and_deposit("bank1", check, "server-account").code(),
      util::ErrorCode::kExpired);
}

TEST_F(AccountingServerTest, MisdrawnCheckRejected) {
  // Mallory writes a check on client's account.
  world_.add_principal("mallory");
  const Check forged = accounting::write_check(
      "mallory", world_.principal("mallory").identity,
      AccountId{"bank2", "client-account"}, "app-server", "usd", 10, 8,
      world_.clock.now(), util::kHour);
  auto payee = world_.accounting_client("app-server");
  EXPECT_EQ(
      payee.endorse_and_deposit("bank1", forged, "server-account").code(),
      util::ErrorCode::kPermissionDenied);
}

TEST_F(AccountingServerTest, MultiHopClearingViaRoute) {
  // Three banks: payee at bank1, drawee bank3, routed via bank2.
  world_.add_principal("bank3");
  auto bank3 = std::make_unique<accounting::AccountingServer>(
      world_.accounting_config("bank3"));
  world_.net.attach("bank3", *bank3);
  bank3->open_account("client3", "client",
                      accounting::Balances{{"usd", 100}});
  bank1_->set_route("bank3", "bank2");

  const Check check = accounting::write_check(
      "client", world_.principal("client").identity,
      AccountId{"bank3", "client3"}, "app-server", "usd", 25, 9,
      world_.clock.now(), util::kHour);
  auto payee = world_.accounting_client("app-server");
  auto reply = payee.endorse_and_deposit("bank1", check, "server-account");
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(reply.value().hops, 2u);
  EXPECT_EQ(bank3->account("client3")->balances().balance("usd"), 75);
  EXPECT_EQ(bank1_->account("server-account")->balances().balance("usd"),
            25);
}

class CertifiedCheckTest : public AccountingServerTest {};

TEST_F(CertifiedCheckTest, CertificationPlacesHold) {
  auto client = world_.accounting_client("client");
  auto cert = client.certify("bank2", "client-account", "app-server", "usd",
                             40, 100, "app-server");
  ASSERT_TRUE(cert.is_ok()) << cert.status();
  EXPECT_EQ(bank2_->account("client-account")->held("usd"), 40);
  EXPECT_EQ(bank2_->account("client-account")->available("usd"), 60);
}

TEST_F(CertifiedCheckTest, CertificationVerifiableByEndServer) {
  auto client = world_.accounting_client("client");
  auto cert = client.certify("bank2", "client-account", "app-server", "usd",
                             40, 101, "app-server");
  ASSERT_TRUE(cert.is_ok());

  const Check check = write_check(40, 101);
  core::ProxyVerifier::Config vc;
  vc.server_name = "app-server";
  vc.resolver = &world_.resolver;
  vc.pk_root = world_.name_server.root_key();
  core::ProxyVerifier verifier(std::move(vc));
  EXPECT_TRUE(accounting::verify_certification(
                  verifier, cert.value().certification, check, "bank2",
                  "client", world_.clock.now())
                  .is_ok());
  // A different check number is not covered.
  const Check other = write_check(40, 999);
  EXPECT_FALSE(accounting::verify_certification(
                   verifier, cert.value().certification, other, "bank2",
                   "client", world_.clock.now())
                   .is_ok());
}

TEST_F(CertifiedCheckTest, CertifiedCheckSettlesFromHold) {
  auto client = world_.accounting_client("client");
  ASSERT_TRUE(client
                  .certify("bank2", "client-account", "app-server", "usd",
                           40, 102, "app-server")
                  .is_ok());
  // Further spending is limited by the hold...
  EXPECT_EQ(bank2_->account("client-account")->available("usd"), 60);

  const Check check = write_check(40, 102);
  auto payee = world_.accounting_client("app-server");
  auto reply = payee.endorse_and_deposit("bank1", check, "server-account");
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  // Hold consumed, funds moved.
  EXPECT_EQ(bank2_->account("client-account")->held("usd"), 0);
  EXPECT_EQ(bank2_->account("client-account")->balances().balance("usd"),
            60);
}

TEST_F(CertifiedCheckTest, DuplicateCertificationRepliesIdempotently) {
  // A re-certify of the same check number (a retry after a lost reply)
  // gets the ORIGINAL certification back; the hold is not doubled.
  auto client = world_.accounting_client("client");
  auto first = client.certify("bank2", "client-account", "app-server",
                              "usd", 10, 103, "app-server");
  ASSERT_TRUE(first.is_ok()) << first.status();
  auto again = client.certify("bank2", "client-account", "app-server",
                              "usd", 10, 103, "app-server");
  ASSERT_TRUE(again.is_ok()) << again.status();
  EXPECT_EQ(wire::encode_to_bytes(first.value()),
            wire::encode_to_bytes(again.value()));
  EXPECT_EQ(bank2_->deduped_replies(), 1u);
  EXPECT_EQ(bank2_->account("client-account")->held("usd"), 10);
}

TEST_F(CertifiedCheckTest, DuplicateCertificationRejectedWithoutDedup) {
  auto config = world_.accounting_config("bank2");
  config.enable_dedup = false;
  accounting::AccountingServer plain_bank(std::move(config));
  world_.net.attach("bank2", plain_bank);
  plain_bank.open_account("client-account", "client",
                          accounting::Balances{{"usd", 100}});

  auto client = world_.accounting_client("client");
  ASSERT_TRUE(client
                  .certify("bank2", "client-account", "app-server", "usd",
                           10, 103, "app-server")
                  .is_ok());
  EXPECT_EQ(client
                .certify("bank2", "client-account", "app-server", "usd", 10,
                         103, "app-server")
                .code(),
            util::ErrorCode::kReplay);
}

TEST_F(CertifiedCheckTest, CertificationBeyondFundsRejected) {
  auto client = world_.accounting_client("client");
  EXPECT_EQ(client
                .certify("bank2", "client-account", "app-server", "usd",
                         500, 104, "app-server")
                .code(),
            util::ErrorCode::kInsufficientFunds);
}

TEST_F(CertifiedCheckTest, ExpiredHoldReleased) {
  auto client = world_.accounting_client("client");
  ASSERT_TRUE(client
                  .certify("bank2", "client-account", "app-server", "usd",
                           40, 105, "app-server",
                           world_.clock.now() + 10 * util::kMinute)
                  .is_ok());
  EXPECT_EQ(bank2_->account("client-account")->available("usd"), 60);
  world_.clock.advance(20 * util::kMinute);
  // Any request triggers the purge; query our own account.
  ASSERT_TRUE(client.query("bank2", "client-account").is_ok());
  EXPECT_EQ(bank2_->account("client-account")->available("usd"), 100);
}

}  // namespace
}  // namespace rproxy
