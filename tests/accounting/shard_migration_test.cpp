// Range migration: freeze -> export -> import -> cutover -> evacuate,
// idempotent at every step, crash-recoverable from the journal, and
// invisible to clients beyond one kWrongShard redirect.
#include "accounting/sharding/migration.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "accounting/sharding/shard_router.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"

namespace rproxy {
namespace {

using accounting::AccountingServer;
using accounting::MigrationSpec;
using accounting::sharding::ShardDirectory;
using accounting::sharding::ShardMapService;
using accounting::sharding::ShardRouter;
using accounting::sharding::stable_hash64;
using accounting::sharding::uniform_map;
using rproxy::testing::World;

/// A spec that moves exactly `account` (lo == hi == its hash).
MigrationSpec spec_for(const std::string& account, std::uint64_t id,
                       PrincipalName source, PrincipalName target) {
  MigrationSpec spec;
  spec.migration_id = id;
  spec.lo = stable_hash64(account);
  spec.hi = spec.lo;
  spec.source = std::move(source);
  spec.target = std::move(target);
  return spec;
}

struct MigrationWorld {
  World world;
  ShardDirectory dir;
  std::unique_ptr<AccountingServer> s1;
  std::unique_ptr<AccountingServer> s2;
  std::string acct;  ///< an account homed on s1 under the v1 map

  MigrationWorld() {
    world.add_principal("router");
    world.add_principal("s1");
    world.add_principal("s2");
    EXPECT_TRUE(dir.install(uniform_map({"s1", "s2"}, 1)));
    const auto gated = [&](const char* name) {
      auto config = world.accounting_config(name);
      config.shard = &dir;
      return config;
    };
    s1 = std::make_unique<AccountingServer>(gated("s1"));
    s2 = std::make_unique<AccountingServer>(gated("s2"));
    world.net.attach("s1", *s1);
    world.net.attach("s2", *s2);
    for (int i = 0;; ++i) {
      const std::string name = "migr-acct-" + std::to_string(i);
      if (dir.home(name) == "s1") {
        acct = name;
        break;
      }
    }
    s1->open_account(acct, "router", accounting::Balances{{"usd", 500}});
  }
};

TEST(ShardMigration, MovesTheAccountAndReroutesClients) {
  MigrationWorld w;
  const MigrationSpec spec = spec_for(w.acct, 1, "s1", "s2");
  ASSERT_TRUE(
      accounting::sharding::migrate_range(*w.s1, *w.s2, w.dir, spec).is_ok());

  // Gone from the source, whole at the target, map bumped with an override.
  EXPECT_EQ(w.s1->account(w.acct), nullptr);
  ASSERT_NE(w.s2->account(w.acct), nullptr);
  EXPECT_EQ(w.s2->account(w.acct)->balances().balance("usd"), 500);
  EXPECT_EQ(w.dir.version(), 2u);
  EXPECT_EQ(w.dir.home(w.acct), "s2");
  EXPECT_EQ(w.s1->frozen_range_count(), 0u);
  EXPECT_TRUE(w.s2->migration_applied(1));

  // A client with the OLD map redirects once and lands on the target.
  ShardMapService map_service("shard-map", w.dir);
  w.world.net.attach("shard-map", map_service);
  ShardRouter::Config config;
  config.net = &w.world.net;
  config.clock = &w.world.clock;
  config.self = "router";
  config.identity_cert = w.world.principal("router").cert;
  config.identity_key = w.world.principal("router").identity;
  config.map_service = "shard-map";
  ShardRouter router(std::move(config), uniform_map({"s1", "s2"}, 1));
  auto reply = router.query(w.acct);
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(reply.value().balances.balance("usd"), 500);
  EXPECT_EQ(router.wrong_shard_redirects(), 1u);
  EXPECT_EQ(router.map_version(), 2u);
}

TEST(ShardMigration, FrozenRangeBouncesWritesUntilCutover) {
  MigrationWorld w;
  const MigrationSpec spec = spec_for(w.acct, 1, "s1", "s2");
  ASSERT_TRUE(w.s1->migration_freeze(spec).is_ok());
  EXPECT_EQ(w.s1->frozen_range_count(), 1u);

  // Mid-migration, the account is write-fenced at the source...
  auto client = w.world.accounting_client("router");
  auto frozen = client.query("s1", w.acct);
  ASSERT_FALSE(frozen.is_ok());
  EXPECT_EQ(frozen.status().code(), util::ErrorCode::kWrongShard);

  // ...and a check drawn on it bounces instead of debiting state the
  // evacuation is about to delete.
  const accounting::Check check = accounting::write_check(
      "router", w.world.principal("router").identity, AccountId{"s1", w.acct},
      "router", "usd", 10, 99, w.world.clock.now(), util::kHour);
  auto deposit = client.endorse_and_deposit("s1", check, "peer:test");
  ASSERT_FALSE(deposit.is_ok());
  EXPECT_EQ(deposit.status().code(), util::ErrorCode::kWrongShard);

  // Finishing the migration lifts the freeze and the account serves again
  // at the target.
  ASSERT_TRUE(
      accounting::sharding::migrate_range(*w.s1, *w.s2, w.dir, spec).is_ok());
  EXPECT_EQ(w.s1->frozen_range_count(), 0u);
  EXPECT_TRUE(client.query("s2", w.acct).is_ok());
}

TEST(ShardMigration, ReDrivingACompletedMigrationIsIdempotent) {
  MigrationWorld w;
  const MigrationSpec spec = spec_for(w.acct, 1, "s1", "s2");
  ASSERT_TRUE(
      accounting::sharding::migrate_range(*w.s1, *w.s2, w.dir, spec).is_ok());
  const std::uint64_t version_after = w.dir.version();
  // Crash-driver re-drive: every step no-ops; balances do not double and
  // the map is not churned with a new version.
  ASSERT_TRUE(
      accounting::sharding::migrate_range(*w.s1, *w.s2, w.dir, spec).is_ok());
  EXPECT_EQ(w.s2->account(w.acct)->balances().balance("usd"), 500);
  EXPECT_EQ(w.dir.version(), version_after);
  EXPECT_EQ(w.s1->account(w.acct), nullptr);
}

TEST(ShardMigration, CertifiedHoldsTravelWithTheAccount) {
  MigrationWorld w;
  auto client = w.world.accounting_client("router");
  // Certify a check on the account: places a hold of 200.
  auto certified = client.certify("s1", w.acct, "payee", "usd", 200,
                                  /*check_number=*/7, "s1");
  ASSERT_TRUE(certified.is_ok()) << certified.status();
  ASSERT_EQ(w.s1->account(w.acct)->available("usd"), 300);

  const MigrationSpec spec = spec_for(w.acct, 1, "s1", "s2");
  ASSERT_TRUE(
      accounting::sharding::migrate_range(*w.s1, *w.s2, w.dir, spec).is_ok());
  // The hold still fences the funds at the new home.
  ASSERT_NE(w.s2->account(w.acct), nullptr);
  EXPECT_EQ(w.s2->account(w.acct)->balances().balance("usd"), 500);
  EXPECT_EQ(w.s2->account(w.acct)->available("usd"), 300);
}

TEST(ShardMigration, SourceCrashAfterFreezeRecoversByRedrive) {
  // Storage-backed source: freeze is journaled, then the "process" dies.
  // The rebooted source still fences the range, and re-driving the same
  // spec completes the migration exactly once.
  MigrationWorld w;
  rproxy::testing::TempDir tmp;
  const crypto::SymmetricKey key = crypto::SymmetricKey::generate();
  auto config = w.world.accounting_config("s1");
  config.shard = &w.dir;
  config.storage_dir = tmp.sub("s1");
  config.storage_key = key;
  auto durable = std::make_unique<AccountingServer>(std::move(config));
  ASSERT_TRUE(durable->recover().is_ok());
  durable->open_account(w.acct, "router",
                        accounting::Balances{{"usd", 500}});
  w.world.net.attach("s1", *durable);

  const MigrationSpec spec = spec_for(w.acct, 1, "s1", "s2");
  ASSERT_TRUE(durable->migration_freeze(spec).is_ok());

  // Crash: drop the instance, reboot from the journal.
  durable.reset();
  auto reboot_config = w.world.accounting_config("s1");
  reboot_config.shard = &w.dir;
  reboot_config.storage_dir = tmp.sub("s1");
  reboot_config.storage_key = key;
  durable = std::make_unique<AccountingServer>(std::move(reboot_config));
  ASSERT_TRUE(durable->recover().is_ok());
  w.world.net.attach("s1", *durable);
  EXPECT_EQ(durable->frozen_range_count(), 1u) << "freeze lost in the crash";

  ASSERT_TRUE(accounting::sharding::migrate_range(*durable, *w.s2, w.dir, spec)
                  .is_ok());
  EXPECT_EQ(durable->account(w.acct), nullptr);
  EXPECT_EQ(w.s2->account(w.acct)->balances().balance("usd"), 500);
  EXPECT_EQ(durable->frozen_range_count(), 0u);
}

TEST(ShardMigration, SnapshotCarriesMigrationState) {
  // Snapshot v5 must round-trip the frozen set and the applied-migrations
  // guard: a restore that lost either would re-apply an import (double
  // money) or serve a range mid-migration.
  MigrationWorld w;
  const MigrationSpec spec = spec_for(w.acct, 42, "s1", "s2");
  ASSERT_TRUE(w.s1->migration_freeze(spec).is_ok());
  ASSERT_TRUE(w.s2->migration_import(spec, {}).is_ok());

  const crypto::SymmetricKey key = crypto::SymmetricKey::generate();
  AccountingServer restored_s1(w.world.accounting_config("s1"));
  ASSERT_TRUE(restored_s1.restore(key, w.s1->snapshot(key)).is_ok());
  EXPECT_EQ(restored_s1.frozen_range_count(), 1u);

  AccountingServer restored_s2(w.world.accounting_config("s2"));
  ASSERT_TRUE(restored_s2.restore(key, w.s2->snapshot(key)).is_ok());
  EXPECT_TRUE(restored_s2.migration_applied(42));
  EXPECT_FALSE(restored_s2.migration_applied(41));
}

TEST(ShardMigration, ExportRequiresAFreeze) {
  MigrationWorld w;
  const MigrationSpec spec = spec_for(w.acct, 1, "s1", "s2");
  auto exported = w.s1->migration_export(spec);
  ASSERT_FALSE(exported.is_ok());
  EXPECT_EQ(exported.status().code(), util::ErrorCode::kProtocolError);
}

TEST(ShardMigration, WrongServerRejectsMigrationSteps) {
  MigrationWorld w;
  const MigrationSpec spec = spec_for(w.acct, 1, "s1", "s2");
  // s2 is not the source; s1 is not the target.
  EXPECT_EQ(w.s2->migration_freeze(spec).code(),
            util::ErrorCode::kProtocolError);
  EXPECT_EQ(w.s1->migration_import(spec, {}).code(),
            util::ErrorCode::kProtocolError);
}

}  // namespace
}  // namespace rproxy
