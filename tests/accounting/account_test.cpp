#include "accounting/account.hpp"

#include <gtest/gtest.h>

namespace rproxy::accounting {
namespace {

authz::AuthorityContext who(const PrincipalName& name) {
  authz::AuthorityContext ctx;
  ctx.principals = {name};
  return ctx;
}

TEST(Account, OwnerAlwaysAuthorized) {
  Account acct("alice-account", "alice");
  EXPECT_TRUE(acct.authorizes(who("alice"), "debit"));
  EXPECT_TRUE(acct.authorizes(who("alice"), "query"));
  EXPECT_FALSE(acct.authorizes(who("bob"), "debit"));
}

TEST(Account, AclGrantsOthers) {
  Account acct("alice-account", "alice");
  acct.acl().add(
      authz::AclEntry{{"accountant"}, {"query"}, {"alice-account"}, {}});
  EXPECT_TRUE(acct.authorizes(who("accountant"), "query"));
  EXPECT_FALSE(acct.authorizes(who("accountant"), "debit"));
}

TEST(Account, HoldsReduceAvailability) {
  Account acct("a", "alice");
  acct.credit("usd", 100);
  ASSERT_TRUE(acct.place_hold("usd", 60).is_ok());
  EXPECT_EQ(acct.balances().balance("usd"), 100);  // funds stay
  EXPECT_EQ(acct.available("usd"), 40);
  EXPECT_EQ(acct.held("usd"), 60);
  // A debit beyond availability fails even though the balance covers it.
  EXPECT_EQ(acct.debit("usd", 50).code(),
            util::ErrorCode::kInsufficientFunds);
  EXPECT_TRUE(acct.debit("usd", 40).is_ok());
}

TEST(Account, HoldBeyondAvailableRejected) {
  Account acct("a", "alice");
  acct.credit("usd", 100);
  ASSERT_TRUE(acct.place_hold("usd", 80).is_ok());
  EXPECT_EQ(acct.place_hold("usd", 30).code(),
            util::ErrorCode::kInsufficientFunds);
}

TEST(Account, ReleaseHoldRestoresAvailability) {
  Account acct("a", "alice");
  acct.credit("usd", 100);
  ASSERT_TRUE(acct.place_hold("usd", 60).is_ok());
  acct.release_hold("usd", 60);
  EXPECT_EQ(acct.available("usd"), 100);
}

TEST(Account, DebitHeldSettlesFromHold) {
  Account acct("a", "alice");
  acct.credit("usd", 100);
  ASSERT_TRUE(acct.place_hold("usd", 60).is_ok());
  ASSERT_TRUE(acct.debit_held("usd", 60).is_ok());
  EXPECT_EQ(acct.balances().balance("usd"), 40);
  EXPECT_EQ(acct.held("usd"), 0);
}

TEST(Account, DebitHeldWithoutHoldFails) {
  Account acct("a", "alice");
  acct.credit("usd", 100);
  EXPECT_EQ(acct.debit_held("usd", 10).code(),
            util::ErrorCode::kInsufficientFunds);
}

TEST(Account, QuotaPattern) {
  // §4: quotas = transfer out on allocation, transfer back on release.
  Account user("alice-disk", "alice");
  Account pool("disk-pool", "file-server");
  user.credit("disk-blocks", 100);

  ASSERT_TRUE(user.debit("disk-blocks", 30).is_ok());  // allocate 30 blocks
  pool.credit("disk-blocks", 30);
  EXPECT_EQ(user.balances().balance("disk-blocks"), 70);

  ASSERT_TRUE(pool.debit("disk-blocks", 30).is_ok());  // release
  user.credit("disk-blocks", 30);
  EXPECT_EQ(user.balances().balance("disk-blocks"), 100);
}

}  // namespace
}  // namespace rproxy::accounting
