#include "accounting/currency.hpp"

#include <gtest/gtest.h>

namespace rproxy::accounting {
namespace {

TEST(Balances, StartsEmpty) {
  Balances b;
  EXPECT_EQ(b.balance("usd"), 0);
  EXPECT_EQ(b.total(), 0);
}

TEST(Balances, CreditAccumulates) {
  Balances b;
  b.credit("usd", 10);
  b.credit("usd", 5);
  b.credit("pages", 100);
  EXPECT_EQ(b.balance("usd"), 15);
  EXPECT_EQ(b.balance("pages"), 100);
  EXPECT_EQ(b.total(), 115);
}

TEST(Balances, DebitWithinFunds) {
  Balances b{{"usd", 10}};
  EXPECT_TRUE(b.debit("usd", 7).is_ok());
  EXPECT_EQ(b.balance("usd"), 3);
}

TEST(Balances, OverdraftRejectedAtomically) {
  Balances b{{"usd", 10}};
  EXPECT_EQ(b.debit("usd", 11).code(), util::ErrorCode::kInsufficientFunds);
  EXPECT_EQ(b.balance("usd"), 10);  // untouched
}

TEST(Balances, DebitUnknownCurrencyFails) {
  Balances b;
  EXPECT_EQ(b.debit("yen", 1).code(), util::ErrorCode::kInsufficientFunds);
}

TEST(Balances, CurrenciesIndependent) {
  // §4: "multiple currencies, either monetary ... or resource specific".
  Balances b{{"usd", 5}, {"disk-blocks", 100}};
  EXPECT_TRUE(b.debit("disk-blocks", 100).is_ok());
  EXPECT_EQ(b.balance("usd"), 5);
  EXPECT_EQ(b.balance("disk-blocks"), 0);
}

TEST(Balances, CodecRoundTrip) {
  Balances b{{"usd", 42}, {"pages", -0}};
  b.credit("cpu-cycles", 7);
  auto decoded =
      wire::decode_from_bytes<Balances>(wire::encode_to_bytes(b));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().balance("usd"), 42);
  EXPECT_EQ(decoded.value().balance("cpu-cycles"), 7);
}

}  // namespace
}  // namespace rproxy::accounting
