// ShardRouter: placement-aware routing, cross-shard clearing, and the
// kWrongShard refresh-and-re-route-once discipline (satellite: kWrongShard
// must never look like a transport error to the retry layer).
#include "accounting/sharding/shard_router.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "accounting/sharding/migration.hpp"
#include "net/retry.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using accounting::sharding::ShardDirectory;
using accounting::sharding::ShardMap;
using accounting::sharding::ShardMapService;
using accounting::sharding::ShardRouter;
using accounting::sharding::uniform_map;
using rproxy::testing::World;

/// Two gated shards, a map service, and a router for principal "router".
struct ShardedWorld {
  World world;
  ShardDirectory dir;
  std::unique_ptr<accounting::AccountingServer> s1;
  std::unique_ptr<accounting::AccountingServer> s2;
  std::unique_ptr<ShardMapService> map_service;

  ShardedWorld() {
    world.add_principal("router");
    world.add_principal("s1");
    world.add_principal("s2");
    EXPECT_TRUE(dir.install(uniform_map({"s1", "s2"}, 1)));
    const auto gated = [&](const char* name) {
      auto config = world.accounting_config(name);
      config.shard = &dir;
      return config;
    };
    s1 = std::make_unique<accounting::AccountingServer>(gated("s1"));
    s2 = std::make_unique<accounting::AccountingServer>(gated("s2"));
    world.net.attach("s1", *s1);
    world.net.attach("s2", *s2);
    map_service = std::make_unique<ShardMapService>("shard-map", dir);
    world.net.attach("shard-map", *map_service);
  }

  [[nodiscard]] accounting::AccountingServer& shard_of(
      const std::string& account) {
    return dir.home(account) == "s1" ? *s1 : *s2;
  }

  /// Finds `n` account names homed on `shard` under the current map and
  /// opens them there for "router" with the given balance.
  std::vector<std::string> open_on(const PrincipalName& shard, int n,
                                   std::int64_t balance) {
    std::vector<std::string> names;
    for (int i = 0; static_cast<int>(names.size()) < n; ++i) {
      const std::string name =
          "acct-" + std::string(shard) + "-" + std::to_string(i);
      if (dir.home(name) != shard) continue;
      shard_of(name).open_account(name, "router",
                                  accounting::Balances{{"usd", balance}});
      names.push_back(name);
    }
    return names;
  }

  [[nodiscard]] ShardRouter router(PrincipalName map_service_name,
                                   ShardMap initial) {
    ShardRouter::Config config;
    config.net = &world.net;
    config.clock = &world.clock;
    config.self = "router";
    config.identity_cert = world.principal("router").cert;
    config.identity_key = world.principal("router").identity;
    config.map_service = std::move(map_service_name);
    return ShardRouter(std::move(config), std::move(initial));
  }
};

TEST(ShardRouter, IntraShardTransferGoesDirect) {
  ShardedWorld w;
  const auto accts = w.open_on("s1", 2, 100);
  auto router = w.router("shard-map", uniform_map({"s1", "s2"}, 1));

  ASSERT_TRUE(router.transfer(accts[0], accts[1], "usd", 30).is_ok());
  EXPECT_EQ(router.intra_shard_transfers(), 1u);
  EXPECT_EQ(router.cross_shard_transfers(), 0u);
  EXPECT_EQ(w.s1->account(accts[0])->balances().balance("usd"), 70);
  EXPECT_EQ(w.s1->account(accts[1])->balances().balance("usd"), 130);
}

TEST(ShardRouter, CrossShardTransferClearsBetweenShards) {
  ShardedWorld w;
  const std::string from = w.open_on("s1", 1, 100)[0];
  const std::string to = w.open_on("s2", 1, 100)[0];
  auto router = w.router("shard-map", uniform_map({"s1", "s2"}, 1));

  ASSERT_TRUE(router.transfer(from, to, "usd", 40).is_ok());
  EXPECT_EQ(router.cross_shard_transfers(), 1u);
  EXPECT_EQ(w.s1->account(from)->balances().balance("usd"), 60);
  EXPECT_EQ(w.s2->account(to)->balances().balance("usd"), 140);
  // The source shard holds the inter-shard claim: its settlement account
  // for s2 carries what s2's depositors collected.
  EXPECT_EQ(w.s1->account("peer:s2")->balances().balance("usd"), 40);
  // Exactly one settlement at the drawee shard, nothing left provisional.
  EXPECT_EQ(w.s1->checks_cleared(), 1u);
  EXPECT_EQ(w.s2->uncollected_total(), 0);
}

TEST(ShardRouter, QueryRoutesToTheHomeShard) {
  ShardedWorld w;
  const std::string acct = w.open_on("s2", 1, 77)[0];
  auto router = w.router("shard-map", uniform_map({"s1", "s2"}, 1));
  auto reply = router.query(acct);
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(reply.value().balances.balance("usd"), 77);
}

TEST(ShardRouter, StaleMapRefreshesAndReRoutesOnce) {
  ShardedWorld w;
  const std::string acct = w.open_on("s2", 1, 50)[0];
  // The router boots with a stale map that predates s2: everything homes
  // on s1.  The fleet (shard gates + map service) has moved on to v2.
  auto router = w.router("shard-map", uniform_map({"s1"}, /*version=*/1));
  ASSERT_TRUE(w.dir.install(uniform_map({"s1", "s2"}, 2)));

  auto reply = router.query(acct);
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(reply.value().balances.balance("usd"), 50);
  EXPECT_EQ(router.wrong_shard_redirects(), 1u);
  EXPECT_EQ(router.map_refreshes(), 1u);
  EXPECT_EQ(router.map_version(), 2u);
}

TEST(ShardRouter, WrongShardIsNotATransportError) {
  // The load-bearing distinction (satellite 1): a retry policy treats
  // kTimeout/kUnavailable as transport failures worth re-sending, but
  // kWrongShard is a ROUTING verdict — re-sending the same request to the
  // same shard can only fail identically.
  const util::Status wrong =
      util::fail(util::ErrorCode::kWrongShard, "not homed here", 7);
  EXPECT_FALSE(net::RetryPolicy::transport_error(wrong));
  EXPECT_EQ(wrong.detail(), 7u);
  EXPECT_TRUE(net::RetryPolicy::transport_error(
      util::fail(util::ErrorCode::kUnavailable, "link down")));

  // Behavioral proof with a live shard: an aggressively retrying client
  // asking the wrong shard burns exactly ONE attempt (challenge + request
  // = 2 rpcs), not max_attempts.  query() retries as a whole unit on
  // transport errors, so a blind retry here would show up as extra rpcs.
  ShardedWorld w;
  const std::string acct = w.open_on("s2", 1, 10)[0];
  auto client = w.world.accounting_client("router");
  net::RetryPolicy retry;
  retry.max_attempts = 6;
  retry.initial_backoff = 0;
  client.set_retry_policy(retry);

  const std::uint64_t rpcs_before = w.world.net.stats().rpcs;
  auto reply = client.query("s1", acct);
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kWrongShard)
      << reply.status();
  // The shard reports which map version it decided with.
  EXPECT_EQ(reply.status().detail(), 1u);
  EXPECT_EQ(w.world.net.stats().rpcs - rpcs_before, 2u)
      << "kWrongShard was blind-retried";
}

TEST(ShardRouter, RedirectWithoutMapServiceSurfacesWrongShard) {
  // No map service configured: the router cannot refresh, so the caller
  // must see the original kWrongShard (NOT the refresh failure, which a
  // retry layer might mistake for a transport error).
  ShardedWorld w;
  const std::string acct = w.open_on("s2", 1, 10)[0];
  auto router = w.router(/*map_service_name=*/"", uniform_map({"s1"}, 1));
  auto reply = router.query(acct);
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kWrongShard);
  EXPECT_EQ(router.wrong_shard_redirects(), 1u);
  EXPECT_EQ(router.map_refreshes(), 0u);
}

TEST(ShardRouter, SecondWrongShardAfterRefreshIsSurfaced) {
  // The map service itself serves a stale map (it IS the fleet map here,
  // but the shards gate with a directory the test rolls forward without
  // bumping the service).  Refresh cannot help; the router must give up
  // after one redirect instead of looping.
  ShardedWorld w;
  const std::string acct = w.open_on("s2", 1, 10)[0];
  // Router and service both believe v1-single-shard; the shard gate uses
  // the real two-shard v1 directory, so s1 keeps answering kWrongShard.
  ShardDirectory stale;
  ASSERT_TRUE(stale.install(uniform_map({"s1"}, 1)));
  ShardMapService stale_service("stale-map", stale);
  w.world.net.attach("stale-map", stale_service);
  auto router = w.router("stale-map", uniform_map({"s1"}, 1));

  auto reply = router.query(acct);
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kWrongShard);
  EXPECT_EQ(router.wrong_shard_redirects(), 1u);
}

TEST(ShardRouter, InfrastructureAccountsAreNeverGated)  {
  // cashier and peer:* accounts are server-local plumbing: the gate must
  // ignore them no matter where the map places their names.
  ShardedWorld w;
  const std::string from = w.open_on("s1", 1, 100)[0];
  const std::string to = w.open_on("s2", 1, 100)[0];
  auto router = w.router("shard-map", uniform_map({"s1", "s2"}, 1));
  // Cross-shard clearing internally credits peer:s2 on s1 regardless of
  // where stable_hash64("peer:s2") lands; if the gate applied, some
  // placements would make every cross-shard transfer fail.
  ASSERT_TRUE(router.transfer(from, to, "usd", 5).is_ok());
  ASSERT_TRUE(router.transfer(from, to, "usd", 5).is_ok());
  EXPECT_EQ(w.s1->account("peer:s2")->balances().balance("usd"), 10);
}

}  // namespace
}  // namespace rproxy
