// ShardRouter over net::FanoutClient (PR 8 leftover): cross-shard clearing
// legs pipelined over real TCP connections, with per-op statuses and a
// sequential fallback for everything the fanout cannot carry.  The router
// builds each leg's challenge+deposit exchange from AccountingClient's
// envelope builders, so authorization stays challenge-bound per leg.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "accounting/sharding/migration.hpp"
#include "accounting/sharding/shard_router.hpp"
#include "net/tcp_transport.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using accounting::sharding::ShardDirectory;
using accounting::sharding::ShardMapService;
using accounting::sharding::ShardRouter;
using accounting::sharding::uniform_map;
using rproxy::testing::World;

/// Two gated shards on the SimNet (the inter-shard collection path), each
/// ALSO exposed over a TcpServer (the router's fanout deposit path), plus
/// a map service and a router.
struct FanoutWorld {
  World world;
  ShardDirectory dir;
  std::unique_ptr<accounting::AccountingServer> s1;
  std::unique_ptr<accounting::AccountingServer> s2;
  std::unique_ptr<ShardMapService> map_service;
  net::TcpServer tcp1;
  net::TcpServer tcp2;

  FanoutWorld() {
    world.add_principal("router");
    world.add_principal("s1");
    world.add_principal("s2");
    EXPECT_TRUE(dir.install(uniform_map({"s1", "s2"}, 1)));
    const auto gated = [&](const char* name) {
      auto config = world.accounting_config(name);
      config.shard = &dir;
      return config;
    };
    s1 = std::make_unique<accounting::AccountingServer>(gated("s1"));
    s2 = std::make_unique<accounting::AccountingServer>(gated("s2"));
    world.net.attach("s1", *s1);
    world.net.attach("s2", *s2);
    map_service = std::make_unique<ShardMapService>("shard-map", dir);
    world.net.attach("shard-map", *map_service);
    tcp1.attach("s1", *s1);
    tcp2.attach("s2", *s2);
    EXPECT_TRUE(tcp1.start().is_ok());
    EXPECT_TRUE(tcp2.start().is_ok());
  }

  [[nodiscard]] accounting::AccountingServer& shard_of(
      const std::string& account) {
    return dir.home(account) == "s1" ? *s1 : *s2;
  }

  std::vector<std::string> open_on(const PrincipalName& shard, int n,
                                   std::int64_t balance) {
    std::vector<std::string> names;
    for (int i = 0; static_cast<int>(names.size()) < n; ++i) {
      const std::string name =
          "acct-" + std::string(shard) + "-" + std::to_string(i);
      if (dir.home(name) != shard) continue;
      shard_of(name).open_account(name, "router",
                                  accounting::Balances{{"usd", balance}});
      names.push_back(name);
    }
    return names;
  }

  [[nodiscard]] ShardRouter router() {
    ShardRouter::Config config;
    config.net = &world.net;
    config.clock = &world.clock;
    config.self = "router";
    config.identity_cert = world.principal("router").cert;
    config.identity_key = world.principal("router").identity;
    config.map_service = "shard-map";
    return ShardRouter(std::move(config), uniform_map({"s1", "s2"}, 1));
  }
};

TEST(ShardRouterFanout, TransferManyPipelinesCrossShardLegs) {
  FanoutWorld w;
  const auto on_s1 = w.open_on("s1", 3, 100);
  const auto on_s2 = w.open_on("s2", 3, 100);
  auto router = w.router();
  ASSERT_TRUE(router.attach_fanout("s1", "127.0.0.1", w.tcp1.port()).is_ok());
  ASSERT_TRUE(router.attach_fanout("s2", "127.0.0.1", w.tcp2.port()).is_ok());

  // Four cross-shard legs (two per direction) plus one intra-shard op that
  // must take the sequential fallback.
  std::vector<ShardRouter::TransferOp> ops = {
      {on_s1[0], on_s2[0], "usd", 10},
      {on_s2[1], on_s1[1], "usd", 20},
      {on_s1[2], on_s2[2], "usd", 30},
      {on_s2[0], on_s1[0], "usd", 5},
      {on_s1[0], on_s1[1], "usd", 7},  // intra-shard: fallback path
  };
  const auto results = router.transfer_many(ops);
  ASSERT_EQ(results.size(), ops.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].is_ok()) << "op " << i << ": " << results[i];
  }
  EXPECT_EQ(router.pipelined_transfers(), 4u);
  EXPECT_EQ(router.cross_shard_transfers(), 4u);
  EXPECT_EQ(router.intra_shard_transfers(), 1u);

  // Balances land exactly as if each leg had been a sequential transfer.
  EXPECT_EQ(w.s1->account(on_s1[0])->balances().balance("usd"),
            100 - 10 + 5 - 7);
  EXPECT_EQ(w.s1->account(on_s1[1])->balances().balance("usd"), 100 + 20 + 7);
  EXPECT_EQ(w.s1->account(on_s1[2])->balances().balance("usd"), 100 - 30);
  EXPECT_EQ(w.s2->account(on_s2[0])->balances().balance("usd"),
            100 + 10 - 5);
  EXPECT_EQ(w.s2->account(on_s2[1])->balances().balance("usd"), 100 - 20);
  EXPECT_EQ(w.s2->account(on_s2[2])->balances().balance("usd"), 100 + 30);
  // Nothing stuck provisional on either shard.
  EXPECT_EQ(w.s1->uncollected_total(), 0);
  EXPECT_EQ(w.s2->uncollected_total(), 0);
}

TEST(ShardRouterFanout, UnattachedTargetShardFallsBack) {
  FanoutWorld w;
  const std::string from = w.open_on("s1", 1, 100)[0];
  const std::string to = w.open_on("s2", 1, 100)[0];
  auto router = w.router();
  // Only s1 is attached; a leg TARGETING s2 cannot ride the fanout.
  ASSERT_TRUE(router.attach_fanout("s1", "127.0.0.1", w.tcp1.port()).is_ok());

  const auto results =
      router.transfer_many({{from, to, "usd", 40}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].is_ok()) << results[0];
  EXPECT_EQ(router.cross_shard_transfers(), 1u);
  EXPECT_EQ(router.pipelined_transfers(), 0u);
  EXPECT_EQ(w.s2->account(to)->balances().balance("usd"), 140);
}

TEST(ShardRouterFanout, PerOpStatusIsolatesAFailedLeg) {
  FanoutWorld w;
  const auto on_s1 = w.open_on("s1", 2, 100);
  const auto on_s2 = w.open_on("s2", 2, 100);
  auto router = w.router();
  ASSERT_TRUE(router.attach_fanout("s2", "127.0.0.1", w.tcp2.port()).is_ok());

  // The middle leg draws on an account that does not exist: its collection
  // fails at the source shard, but the legs around it must clear.
  const auto results = router.transfer_many({
      {on_s1[0], on_s2[0], "usd", 10},
      {"acct-s1-missing", on_s2[1], "usd", 10},
      {on_s1[1], on_s2[1], "usd", 15},
  });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].is_ok()) << results[0];
  EXPECT_FALSE(results[1].is_ok());
  EXPECT_TRUE(results[2].is_ok()) << results[2];
  EXPECT_EQ(router.pipelined_transfers(), 2u);
  EXPECT_EQ(w.s2->account(on_s2[0])->balances().balance("usd"), 110);
  EXPECT_EQ(w.s2->account(on_s2[1])->balances().balance("usd"), 115);
}

}  // namespace
}  // namespace rproxy
