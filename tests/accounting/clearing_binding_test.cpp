// Deposit-request binding: a man-in-the-middle must not be able to redirect
// or inflate a deposit — the identity proof covers a digest of (operation,
// collection account, currency amounts).
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class ClearingBindingTest : public ::testing::Test {
 protected:
  ClearingBindingTest() {
    world_.add_principal("client");
    world_.add_principal("merchant");
    world_.add_principal("mallory");
    world_.add_principal("bank");
    bank_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank"));
    world_.net.attach("bank", *bank_);
    bank_->open_account("client-acct", "client",
                        accounting::Balances{{"usd", 100}});
    bank_->open_account("merchant-acct", "merchant");
    bank_->open_account("mallory-acct", "mallory");
  }

  accounting::Check check(std::uint64_t amount, std::uint64_t ckno) {
    return accounting::write_check(
        "client", world_.principal("client").identity,
        AccountId{"bank", "client-acct"}, "merchant", "usd", amount, ckno,
        world_.clock.now(), util::kHour);
  }

  World world_;
  std::unique_ptr<accounting::AccountingServer> bank_;
};

TEST_F(ClearingBindingTest, RedirectedCollectionAccountRejected) {
  // Mallory rewrites the deposit in flight to collect into her account.
  net::TamperTap tamper([](const net::Envelope& e)
                            -> std::optional<net::Envelope> {
    if (e.type != net::MsgType::kCheckDeposit) return std::nullopt;
    auto payload =
        wire::decode_from_bytes<accounting::DepositPayload>(e.payload);
    if (!payload.is_ok()) return std::nullopt;
    accounting::DepositPayload changed = payload.value();
    changed.collect_account = "mallory-acct";
    net::Envelope out = e;
    out.payload = wire::encode_to_bytes(changed);
    return out;
  });
  world_.net.add_tap(tamper);

  auto merchant = world_.accounting_client("merchant");
  auto result =
      merchant.endorse_and_deposit("bank", check(50, 1), "merchant-acct");
  EXPECT_EQ(result.code(), util::ErrorCode::kBadSignature);
  EXPECT_EQ(bank_->account("mallory-acct")->balances().balance("usd"), 0);
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 100);
}

TEST_F(ClearingBindingTest, InflatedAmountRejected) {
  // Mallory rewrites a partial draw (10 of a 50 check) up to the limit.
  net::TamperTap tamper([](const net::Envelope& e)
                            -> std::optional<net::Envelope> {
    if (e.type != net::MsgType::kCheckDeposit) return std::nullopt;
    auto payload =
        wire::decode_from_bytes<accounting::DepositPayload>(e.payload);
    if (!payload.is_ok()) return std::nullopt;
    accounting::DepositPayload changed = payload.value();
    changed.amount = 50;
    net::Envelope out = e;
    out.payload = wire::encode_to_bytes(changed);
    return out;
  });
  world_.net.add_tap(tamper);

  auto merchant = world_.accounting_client("merchant");
  auto endorsed = accounting::endorse_check(
      check(50, 2), "merchant", world_.principal("merchant").identity,
      "bank", world_.clock.now());
  ASSERT_TRUE(endorsed.is_ok());
  auto result = merchant.deposit("bank", endorsed.value(), "merchant-acct",
                                 10);
  EXPECT_EQ(result.code(), util::ErrorCode::kBadSignature);
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 100);
}

TEST_F(ClearingBindingTest, ReplayedDepositCannotDoubleCredit) {
  net::RecordingTap tap;
  world_.net.add_tap(tap);
  auto merchant = world_.accounting_client("merchant");
  ASSERT_TRUE(
      merchant.endorse_and_deposit("bank", check(25, 3), "merchant-acct")
          .is_ok());
  const auto deposits = tap.of_type(net::MsgType::kCheckDeposit);
  ASSERT_EQ(deposits.size(), 1u);
  auto replayed = world_.net.inject(deposits.front());
  ASSERT_TRUE(replayed.is_ok());
  // The dedup table answers the replay with the ORIGINAL reply — bytes the
  // wiretapper already saw — and moves no money.  (Without dedup the
  // consumed challenge would bounce it; either way Mallory gains nothing.)
  EXPECT_TRUE(net::status_of(replayed.value()).is_ok());
  EXPECT_EQ(bank_->deduped_replies(), 1u);
  EXPECT_EQ(bank_->account("merchant-acct")->balances().balance("usd"), 25);
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 75);
}

}  // namespace
}  // namespace rproxy
