// Versioned shard map + directory: codec, override precedence, and the
// install ordering that keeps every party monotonically up to date.
#include "accounting/sharding/shard_map.hpp"

#include <gtest/gtest.h>

#include "wire/decoder.hpp"
#include "wire/encoder.hpp"

namespace rproxy::accounting::sharding {
namespace {

ShardMap three_shard_map(std::uint64_t version) {
  return uniform_map({"s1", "s2", "s3"}, version, HashRing::kDefaultVnodes);
}

TEST(ShardMap, CodecRoundTrips) {
  ShardMap map = three_shard_map(7);
  map.overrides.push_back({100, 200, "s2"});
  map.overrides.push_back({150, 160, "s3"});

  const util::Bytes bytes = wire::encode_to_bytes(map);
  auto decoded = wire::decode_from_bytes<ShardMap>(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status();
  EXPECT_EQ(decoded.value().version, 7u);
  ASSERT_EQ(decoded.value().shards.size(), 3u);
  EXPECT_EQ(decoded.value().shards[0].shard, "s1");
  EXPECT_EQ(decoded.value().shards[0].vnodes, HashRing::kDefaultVnodes);
  ASSERT_EQ(decoded.value().overrides.size(), 2u);
  EXPECT_EQ(decoded.value().overrides[1].shard, "s3");
}

TEST(CompiledMap, OverridesBeatTheRingAndNewestOverrideWins) {
  ShardMap map = three_shard_map(1);
  const std::uint64_t h = stable_hash64("pinned-acct");
  // First migration sends the account's range to s2; a later one moves it
  // onward to s3.  Both overrides stay in the map; the newest must win.
  map.overrides.push_back({h, h, "s2"});
  const CompiledMap once(map);
  ASSERT_NE(once.home("pinned-acct"), nullptr);
  EXPECT_EQ(*once.home("pinned-acct"), "s2");

  map.version = 2;
  map.overrides.push_back({h, h, "s3"});
  const CompiledMap twice(map);
  EXPECT_EQ(*twice.home("pinned-acct"), "s3");

  // An account outside every override still follows the ring.
  const CompiledMap plain(three_shard_map(1));
  EXPECT_EQ(*twice.home("free-acct"), *plain.home("free-acct"));
}

TEST(ShardDirectory, InstallsOnlyStrictlyNewerMaps) {
  ShardDirectory dir;
  EXPECT_EQ(dir.version(), 0u);
  EXPECT_TRUE(dir.install(three_shard_map(3)));
  EXPECT_EQ(dir.version(), 3u);
  // Same version: rejected (ties would let two different maps with one
  // version number fight forever).
  EXPECT_FALSE(dir.install(three_shard_map(3)));
  EXPECT_FALSE(dir.install(three_shard_map(2)));
  EXPECT_TRUE(dir.install(three_shard_map(4)));
  EXPECT_EQ(dir.version(), 4u);
}

TEST(ShardDirectory, OwnsIsOpenInSingleBankMode) {
  // No map installed: every server owns every account, so a fleet of one
  // (or a pre-sharding deployment) needs no configuration at all.
  ShardDirectory dir;
  std::uint64_t version = 99;
  EXPECT_TRUE(dir.owns("anybody", "any-acct", &version));
  EXPECT_EQ(version, 0u);
  EXPECT_EQ(dir.home("any-acct"), PrincipalName{});
}

TEST(ShardDirectory, OwnsFollowsTheInstalledMap) {
  ShardDirectory dir;
  ASSERT_TRUE(dir.install(three_shard_map(1)));
  const PrincipalName home = dir.home("acct-1");
  ASSERT_FALSE(home.empty());
  std::uint64_t version = 0;
  EXPECT_TRUE(dir.owns(home, "acct-1", &version));
  EXPECT_EQ(version, 1u);
  for (const char* other : {"s1", "s2", "s3"}) {
    if (other == home) continue;
    EXPECT_FALSE(dir.owns(other, "acct-1", nullptr));
  }
}

TEST(ShardDirectory, SnapshotIsStableAcrossInstalls) {
  // A reader holding a snapshot keeps routing against it even while a new
  // map is installed (shared_ptr pin, no torn reads).
  ShardDirectory dir;
  ASSERT_TRUE(dir.install(three_shard_map(1)));
  const auto pinned = dir.snapshot();
  ASSERT_TRUE(dir.install(uniform_map({"s1"}, 2, HashRing::kDefaultVnodes)));
  EXPECT_EQ(pinned->version(), 1u);
  EXPECT_EQ(dir.snapshot()->version(), 2u);
}

}  // namespace
}  // namespace rproxy::accounting::sharding
