// Crash durability: kill-anywhere recovery from the write-ahead journal.
//
// These tests drive a storage-backed AccountingServer through real client
// operations, kill it at deterministic journal offsets (storage::CrashPoint),
// restart it from snapshot + journal tail, and check the recovered state
// against what the CLIENT was told.  The invariant under test is the one the
// journal exists for: an operation whose reply was sent survives the crash,
// an operation whose reply never left the server either never happened or is
// safely retryable — and money is conserved in every interleaving.
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/crash_point.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"

namespace rproxy {
namespace {

using testing::TempDir;
using testing::World;

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    world_.add_principal("alice");
    world_.add_principal("bob");
    world_.add_principal("bank");
  }

  /// Builds a storage-backed bank over `state_dir`; recover() has run.
  std::unique_ptr<accounting::AccountingServer> make_bank(
      const std::string& state_dir,
      storage::CrashPoint* crash = nullptr,
      const PrincipalName& name = "bank",
      std::optional<storage::FsyncPolicy> fsync_policy = std::nullopt) {
    auto config = world_.accounting_config(name);
    config.storage_dir = state_dir;
    config.storage_key = storage_key_;
    config.crash_point = crash;
    if (fsync_policy.has_value()) config.fsync_policy = *fsync_policy;
    auto bank =
        std::make_unique<accounting::AccountingServer>(std::move(config));
    EXPECT_TRUE(bank->recover().is_ok());
    world_.net.attach(name, *bank);
    return bank;
  }

  accounting::Check alice_check(std::uint64_t amount,
                                std::uint64_t check_number,
                                const PrincipalName& drawee = "bank",
                                const std::string& account = "payer-acct") {
    return accounting::write_check(
        "alice", world_.principal("alice").identity,
        AccountId{drawee, account}, "bob", "usd", amount, check_number,
        world_.clock.now(), util::kHour);
  }

  World world_;
  TempDir dir_;
  crypto::SymmetricKey storage_key_ = crypto::SymmetricKey::generate();
};

TEST_F(RecoveryTest, FreshDirectoryRecoversToEmptyAndJournalsFromLsnOne) {
  auto bank = make_bank(dir_.sub("bank"));
  EXPECT_EQ(bank->journal_next_lsn(), 1u);
  bank->open_account("payer-acct", "alice",
                     accounting::Balances{{"usd", 100}});
  EXPECT_EQ(bank->journal_next_lsn(), 2u);

  bank = make_bank(dir_.sub("bank"));
  ASSERT_NE(bank->account("payer-acct"), nullptr);
  EXPECT_EQ(bank->account("payer-acct")->balances().balance("usd"), 100);
  EXPECT_EQ(bank->journal_next_lsn(), 2u);
}

TEST_F(RecoveryTest, CleanRestartPreservesEverything) {
  auto bank = make_bank(dir_.sub("bank"));
  bank->open_account("payer-acct", "alice",
                     accounting::Balances{{"usd", 100}});
  bank->open_account("payee-acct", "bob");
  bank->set_route("far-bank", "near-bank");

  auto alice = world_.accounting_client("alice");
  auto bob = world_.accounting_client("bob");
  ASSERT_TRUE(
      alice.transfer("bank", "payer-acct", "payee-acct", "usd", 10).is_ok());
  ASSERT_TRUE(alice.certify("bank", "payer-acct", "bob", "usd", 20, 77,
                            "bank")
                  .is_ok());
  const accounting::Check plain = alice_check(15, 88);
  ASSERT_TRUE(bob.endorse_and_deposit("bank", plain, "payee-acct").is_ok());
  ASSERT_TRUE(
      alice.buy_cashier_check("bank", "payer-acct", "bob", "usd", 25)
          .is_ok());

  // Restart from disk.
  bank = make_bank(dir_.sub("bank"));
  EXPECT_EQ(bank->account("payer-acct")->balances().balance("usd"), 50);
  EXPECT_EQ(bank->account("payer-acct")->held("usd"), 20);
  EXPECT_EQ(bank->account("payee-acct")->balances().balance("usd"), 25);
  EXPECT_EQ(bank->account(std::string(accounting::kCashierAccount))
                ->balances()
                .balance("usd"),
            25);

  // The dedup tables came back too: re-depositing the same check replays
  // the original reply instead of moving money again.
  auto replay = bob.endorse_and_deposit("bank", plain, "payee-acct");
  ASSERT_TRUE(replay.is_ok());
  EXPECT_TRUE(replay.value().cleared);
  EXPECT_EQ(bank->deduped_replies(), 1u);
  EXPECT_EQ(bank->account("payee-acct")->balances().balance("usd"), 25);

  // And the recovered certified hold still settles check #77.
  ASSERT_TRUE(
      bob.endorse_and_deposit("bank", alice_check(20, 77), "payee-acct")
          .is_ok());
  EXPECT_EQ(bank->account("payer-acct")->held("usd"), 0);
  EXPECT_EQ(bank->account("payee-acct")->balances().balance("usd"), 45);
}

// The tentpole invariant, swept across every journal offset: kill the bank
// at append K for K = 1..7 (the fixed op sequence makes exactly 6 appends;
// K = 7 never fires), restart, and require the recovered state to match
// exactly what the client was told — every acknowledged op is present,
// every failed op is absent, and the books balance in between.
TEST_F(RecoveryTest, KillAnywhereSweepRecoversExactlyTheAcknowledgedOps) {
  for (std::uint64_t kill_at = 1; kill_at <= 7; ++kill_at) {
    SCOPED_TRACE("kill at append " + std::to_string(kill_at));
    const std::string state = dir_.sub("bank-k" + std::to_string(kill_at));
    storage::CrashPoint crash;  // inert during setup
    auto bank = make_bank(state, &crash);
    bank->open_account("payer-acct", "alice",
                       accounting::Balances{{"usd", 100}});
    bank->open_account("payee-acct", "bob");

    storage::CrashPlan plan;
    plan.seed = 42 + kill_at;
    plan.min_appends = kill_at;
    plan.max_appends = kill_at;
    plan.tear_mid_write = (kill_at % 2) == 0;  // alternate torn/clean kills
    crash.arm(plan);

    auto alice = world_.accounting_client("alice");
    auto bob = world_.accounting_client("bob");

    // Expected state, updated only when the client sees success.
    std::int64_t payer = 100, payee = 0, cashier = 0, held = 0;
    bool deposited_88 = false;
    const std::vector<std::function<bool()>> ops = {
        [&] {
          if (!alice.transfer("bank", "payer-acct", "payee-acct", "usd", 10)
                   .is_ok()) {
            return false;
          }
          payer -= 10;
          payee += 10;
          return true;
        },
        [&] {
          if (!alice.certify("bank", "payer-acct", "bob", "usd", 20, 77,
                             "bank")
                   .is_ok()) {
            return false;
          }
          held += 20;
          return true;
        },
        [&] {
          if (!bob.endorse_and_deposit("bank", alice_check(15, 88),
                                       "payee-acct")
                   .is_ok()) {
            return false;
          }
          payer -= 15;
          payee += 15;
          deposited_88 = true;
          return true;
        },
        [&] {
          if (!alice.buy_cashier_check("bank", "payer-acct", "bob", "usd",
                                       25)
                   .is_ok()) {
            return false;
          }
          payer -= 25;
          cashier += 25;
          return true;
        },
        [&] {
          if (!alice.transfer("bank", "payer-acct", "payee-acct", "usd", 5)
                   .is_ok()) {
            return false;
          }
          payer -= 5;
          payee += 5;
          return true;
        },
        [&] {
          if (!bob.endorse_and_deposit("bank", alice_check(20, 77),
                                       "payee-acct")
                   .is_ok()) {
            return false;
          }
          payer -= 20;
          held -= 20;
          payee += 20;
          return true;
        },
    };
    bool crashed = false;
    for (const auto& op : ops) {
      if (!op()) crashed = true;
    }
    EXPECT_EQ(crashed, kill_at <= 6);
    EXPECT_EQ(bank->storage_dead(), kill_at <= 6);
    if (crash.dead()) {
      // A dead bank refuses even reads: it can no longer stand behind its
      // in-memory state.
      EXPECT_FALSE(alice.query("bank", "payer-acct").is_ok());
    }

    // Restart from disk (no crash point this time) and compare against
    // exactly what the clients were told.
    bank = make_bank(state);
    const auto balance = [&](const std::string& account) {
      const auto* a = bank->account(account);
      return a == nullptr ? 0 : a->balances().balance("usd");
    };
    EXPECT_EQ(balance("payer-acct"), payer);
    EXPECT_EQ(balance("payee-acct"), payee);
    EXPECT_EQ(balance(std::string(accounting::kCashierAccount)), cashier);
    EXPECT_EQ(bank->account("payer-acct")->held("usd"), held);
    // Conservation: no interleaving of crash and recovery mints or burns.
    EXPECT_EQ(balance("payer-acct") + balance("payee-acct") +
                  balance(std::string(accounting::kCashierAccount)),
              100);

    // Retrying check #88 against the recovered bank converges to
    // exactly-once either way: replayed from the durable dedup table if
    // the original deposit was acknowledged, settled fresh if it died.
    auto retry =
        bob.endorse_and_deposit("bank", alice_check(15, 88), "payee-acct");
    ASSERT_TRUE(retry.is_ok());
    EXPECT_TRUE(retry.value().cleared);
    if (!deposited_88) {
      payer -= 15;
      payee += 15;
    } else {
      EXPECT_GE(bank->deduped_replies(), 1u);
    }
    EXPECT_EQ(balance("payer-acct"), payer);
    EXPECT_EQ(balance("payee-acct"), payee);
  }
}

TEST_F(RecoveryTest, CheckpointCompactsAndRestartUsesTheSnapshot) {
  auto bank = make_bank(dir_.sub("bank"));
  bank->open_account("payer-acct", "alice",
                     accounting::Balances{{"usd", 100}});
  bank->open_account("payee-acct", "bob");
  auto alice = world_.accounting_client("alice");
  ASSERT_TRUE(
      alice.transfer("bank", "payer-acct", "payee-acct", "usd", 30).is_ok());

  ASSERT_TRUE(bank->checkpoint().is_ok());
  // Post-checkpoint mutations land in the rotated journal.
  ASSERT_TRUE(
      alice.transfer("bank", "payer-acct", "payee-acct", "usd", 7).is_ok());

  // Compaction held: one snapshot, one journal.
  std::size_t journals = 0, snapshots = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_.sub("bank"))) {
    const std::string name = entry.path().filename().string();
    journals += name.find(".wal") != std::string::npos ? 1 : 0;
    snapshots += name.find(".snap") != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(journals, 1u);
  EXPECT_EQ(snapshots, 1u);

  bank = make_bank(dir_.sub("bank"));
  EXPECT_EQ(bank->account("payer-acct")->balances().balance("usd"), 63);
  EXPECT_EQ(bank->account("payee-acct")->balances().balance("usd"), 37);
}

TEST_F(RecoveryTest, RepeatedRestartsAreIdempotent) {
  {
    auto bank = make_bank(dir_.sub("bank"));
    bank->open_account("payer-acct", "alice",
                       accounting::Balances{{"usd", 100}});
    bank->open_account("payee-acct", "bob");
    auto alice = world_.accounting_client("alice");
    ASSERT_TRUE(alice.transfer("bank", "payer-acct", "payee-acct", "usd", 40)
                    .is_ok());
  }
  for (int round = 0; round < 3; ++round) {
    auto bank = make_bank(dir_.sub("bank"));
    EXPECT_EQ(bank->account("payer-acct")->balances().balance("usd"), 60);
    EXPECT_EQ(bank->account("payee-acct")->balances().balance("usd"), 40);
    EXPECT_EQ(bank->journal_next_lsn(), 4u);
  }
}

TEST_F(RecoveryTest, ForeignCollectionCrashThenRetryConvergesExactlyOnce) {
  world_.add_principal("bank-a");
  world_.add_principal("bank-b");
  auto bank_a = make_bank(dir_.sub("bank-a"), nullptr, "bank-a");
  storage::CrashPoint crash_b;
  auto bank_b = make_bank(dir_.sub("bank-b"), &crash_b, "bank-b");
  bank_a->open_account("payer-acct", "alice",
                       accounting::Balances{{"usd", 100}});
  bank_b->open_account("payee-acct", "bob");

  // Kill B on its next journal append — the ForeignSettled record it
  // writes AFTER the drawee has already settled.  The worst spot: money
  // has moved at A, and B dies before it can remember why.
  storage::CrashPlan plan;
  plan.seed = 7;
  plan.min_appends = 1;
  plan.max_appends = 1;
  crash_b.arm(plan);

  auto bob = world_.accounting_client("bob");
  const accounting::Check check = alice_check(30, 500, "bank-a");
  EXPECT_FALSE(
      bob.endorse_and_deposit("bank-b", check, "payee-acct").is_ok());
  EXPECT_TRUE(bank_b->storage_dead());
  // A settled durably; B rolled back its provisional credit and died.
  EXPECT_EQ(bank_a->account("payer-acct")->balances().balance("usd"), 70);

  // Restart B and retry.  A replays the settlement from its dedup table
  // (no second debit); B credits bob and journals it this time.
  bank_b = make_bank(dir_.sub("bank-b"), nullptr, "bank-b");
  EXPECT_EQ(bank_b->account("payee-acct")->balances().balance("usd"), 0);
  auto retry = bob.endorse_and_deposit("bank-b", check, "payee-acct");
  ASSERT_TRUE(retry.is_ok());
  EXPECT_TRUE(retry.value().cleared);
  EXPECT_EQ(bank_a->deduped_replies(), 1u);
  EXPECT_EQ(bank_a->account("payer-acct")->balances().balance("usd"), 70);
  EXPECT_EQ(bank_b->account("payee-acct")->balances().balance("usd"), 30);

  // And the outcome survives yet another restart of B.
  bank_b = make_bank(dir_.sub("bank-b"), nullptr, "bank-b");
  EXPECT_EQ(bank_b->account("payee-acct")->balances().balance("usd"), 30);
}

// Group commit under a dying disk, swept across fsync barriers: with
// FsyncPolicy::kGroup a reply leaves only after the fsync covering its
// record, so when barrier K fails the client has acknowledgments for
// exactly the ops whose barriers completed — and the recovered state
// must contain AT LEAST those ops (the write-ahead invariant: successful
// replies are a subset of recovered records; the op in flight at the
// failure may or may not have reached the disk, and its reply was
// withheld either way).
TEST_F(RecoveryTest, GroupCommitFsyncFailureWithholdsTheUncoveredReply) {
  constexpr int kTransfers = 5;
  for (std::uint64_t fail_at = 1; fail_at <= 3; ++fail_at) {
    SCOPED_TRACE("fsync barrier " + std::to_string(fail_at) + " fails");
    const std::string state = dir_.sub("bank-g" + std::to_string(fail_at));
    storage::CrashPoint crash;
    crash.fail_fsync_at(fail_at);
    auto bank = make_bank(state, &crash, "bank",
                          storage::FsyncPolicy::kGroup);
    bank->open_account("payer-acct", "alice",
                       accounting::Balances{{"usd", 100}});
    bank->open_account("payee-acct", "bob");

    // Sequential clients: every transfer is its own commit barrier, so
    // the first fail_at-1 are acknowledged and transfer fail_at gets the
    // "group fsync failed" refusal.
    auto alice = world_.accounting_client("alice");
    int acked = 0;
    for (int i = 0; i < kTransfers; ++i) {
      if (alice.transfer("bank", "payer-acct", "payee-acct", "usd", 10)
              .is_ok()) {
        acked += 1;
      }
    }
    EXPECT_EQ(acked, static_cast<int>(fail_at) - 1);
    EXPECT_TRUE(bank->storage_dead());
    // Dead means dead: even queries are refused from here on.
    EXPECT_FALSE(alice.query("bank", "payer-acct").is_ok());

    // Restart and check the write-ahead invariant.
    bank = make_bank(state);
    const std::int64_t payer =
        bank->account("payer-acct")->balances().balance("usd");
    const std::int64_t payee =
        bank->account("payee-acct")->balances().balance("usd");
    EXPECT_LE(payer, 100 - 10 * acked) << "an acknowledged transfer is gone";
    EXPECT_GE(payer, 100 - 10 * (acked + 1))
        << "more than the in-flight op leaked past the failed barrier";
    EXPECT_EQ(payer + payee, 100) << "money minted or burned";
  }
}

TEST_F(RecoveryTest, GroupCommitCleanRunMatchesEveryRecordState) {
  // Without failures, kGroup must be invisible: same recovered state as
  // the strict policy, same replies — only fewer fsyncs.
  const std::string state = dir_.sub("bank-group-clean");
  auto bank =
      make_bank(state, nullptr, "bank", storage::FsyncPolicy::kGroup);
  bank->open_account("payer-acct", "alice",
                     accounting::Balances{{"usd", 100}});
  bank->open_account("payee-acct", "bob");
  auto alice = world_.accounting_client("alice");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        alice.transfer("bank", "payer-acct", "payee-acct", "usd", 10)
            .is_ok());
  }
  const auto stats = bank->journal_group_stats();
  EXPECT_EQ(stats.fsyncs, 4u);  // one barrier per sequential transfer
  // Each barrier covered its transfer (plus setup records on the first).
  EXPECT_GE(stats.committed, 4u);

  bank = make_bank(state, nullptr, "bank", storage::FsyncPolicy::kGroup);
  EXPECT_EQ(bank->account("payer-acct")->balances().balance("usd"), 60);
  EXPECT_EQ(bank->account("payee-acct")->balances().balance("usd"), 40);
}

TEST_F(RecoveryTest, RecoverWithoutKeyFails) {
  auto config = world_.accounting_config("bank");
  config.storage_dir = dir_.sub("bank");
  accounting::AccountingServer bank(std::move(config));
  EXPECT_FALSE(bank.recover().is_ok());
}

}  // namespace
}  // namespace rproxy
