// Journal-shipping replication (DESIGN.md §5h): shipping + replay, the
// semi-synchronous barrier, snapshot bootstrap after compaction, epoch
// fencing, read-replica staleness, and the promotion ordering guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "accounting/clearing.hpp"
#include "accounting/replication/journal_shipper.hpp"
#include "accounting/replication/standby.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"

namespace rproxy {
namespace {

using accounting::AccountingServer;
using accounting::Balances;
using accounting::replication::JournalShipper;
using accounting::replication::StandbyReplayer;
using rproxy::testing::World;
using util::ErrorCode;

constexpr std::int64_t kInitial = 1000;

/// A primary with durable storage, one standby replaying into a
/// memory-only replica server, and the shipper wired into the primary's
/// semi-sync barrier (a no-op until make_standby() creates the shipper).
struct ReplicaWorld {
  World world;
  rproxy::testing::TempDir tmp;
  crypto::SymmetricKey storage_key = crypto::SymmetricKey::generate();
  std::unique_ptr<AccountingServer> primary;
  std::unique_ptr<AccountingServer> replica_server;
  std::unique_ptr<StandbyReplayer> standby;
  std::unique_ptr<JournalShipper> shipper;
  bool semi_sync = false;

  explicit ReplicaWorld(bool with_barrier = false) : semi_sync(with_barrier) {
    world.add_principal("bank");
    world.add_principal("bankb");
    world.add_principal("alice");
    auto config = world.accounting_config("bank");
    config.storage_dir = tmp.sub("bank");
    config.storage_key = storage_key;
    config.fsync_policy = storage::FsyncPolicy::kEveryRecord;
    if (semi_sync) {
      config.replication_barrier = [this](std::uint64_t lsn) {
        return shipper ? shipper->ship_until(lsn) : util::Status::ok();
      };
    }
    primary = std::make_unique<AccountingServer>(std::move(config));
    EXPECT_TRUE(primary->recover().is_ok());
    world.net.attach("bank", *primary);
  }

  void make_standby(
      const std::function<void(StandbyReplayer::Config&)>& tweak = {}) {
    replica_server =
        std::make_unique<AccountingServer>(world.accounting_config("bankb"));
    StandbyReplayer::Config rc;
    rc.name = "bankb";
    rc.primary = "bank";
    rc.server = replica_server.get();
    rc.clock = &world.clock;
    rc.storage_key = storage_key;
    if (tweak) tweak(rc);
    standby = std::make_unique<StandbyReplayer>(std::move(rc));
    world.net.attach("bankb", *standby);
    JournalShipper::Config sc;
    sc.primary = primary.get();
    sc.net = &world.net;
    sc.standbys = {"bankb"};
    shipper = std::make_unique<JournalShipper>(std::move(sc));
  }

  void open(const std::string& account) {
    primary->open_account(account, "alice", Balances{{"usd", kInitial}});
  }

  [[nodiscard]] std::int64_t replica_balance(const std::string& account) {
    const auto* acct = replica_server->account(account);
    return acct == nullptr ? -1 : acct->balances().balance("usd");
  }
};

TEST(Replication, ShipsFramesAndReplaysThemThroughRecoveryAppliers) {
  ReplicaWorld rw;
  rw.open("a1");
  rw.open("a2");
  auto client = rw.world.accounting_client("alice");
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 150).is_ok());

  rw.make_standby();
  const JournalShipper::Progress progress = rw.shipper->ship_once();
  EXPECT_TRUE(progress.all_reachable);
  EXPECT_FALSE(progress.fenced);
  EXPECT_EQ(progress.min_acked_lsn, rw.primary->journal_durable_lsn());
  EXPECT_EQ(rw.standby->received_lsn(), rw.primary->journal_durable_lsn());
  EXPECT_EQ(rw.standby->applied_lsn(), rw.standby->received_lsn());
  EXPECT_EQ(rw.standby->apply_failures(), 0u);
  // The replayed state matches the primary's, mutation for mutation.
  EXPECT_EQ(rw.replica_balance("a1"), kInitial - 150);
  EXPECT_EQ(rw.replica_balance("a2"), kInitial + 150);
}

TEST(Replication, ShippedNeverExceedsDurableAndResendIsIdempotent) {
  ReplicaWorld rw;
  rw.open("a1");
  rw.open("a2");
  rw.make_standby();
  (void)rw.shipper->ship_once();
  ASSERT_GT(rw.standby->received_lsn(), 0u);
  EXPECT_LE(rw.standby->received_lsn(), rw.primary->journal_durable_lsn());

  // Rewind the shipper's watermark: the next round re-sends frames the
  // standby already holds, which it must skip without re-applying.
  const std::int64_t before = rw.replica_balance("a1");
  rw.shipper->rewind("bankb", 0);
  (void)rw.shipper->ship_once();
  EXPECT_EQ(rw.replica_balance("a1"), before);
  EXPECT_EQ(rw.standby->apply_failures(), 0u);
  EXPECT_EQ(rw.standby->received_lsn(), rw.primary->journal_durable_lsn());
}

TEST(Replication, SemiSyncBarrierWithholdsAcksWhileStandbyUnreachable) {
  ReplicaWorld rw(/*with_barrier=*/true);
  rw.open("a1");
  rw.open("a2");
  rw.make_standby();
  auto client = rw.world.accounting_client("alice");
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 10).is_ok());
  EXPECT_EQ(rw.replica_balance("a1"), kInitial - 10);

  // Partition the standby: the primary still applies, but no reply may be
  // acked until the records behind it replicate — the client sees failure.
  rw.world.net.fail_link("bank", "bankb");
  auto held = client.transfer("bank", "a1", "a2", "usd", 20);
  EXPECT_FALSE(held.is_ok());
  EXPECT_EQ(held.code(), ErrorCode::kUnavailable);
  // Reads are withheld too: an acked reply of any kind implies replication.
  EXPECT_FALSE(client.query("bank", "a1").is_ok());

  // Heal: shipping resumes and the standby converges on the un-acked
  // transfer, which was applied exactly once.
  rw.world.net.restore_link("bank", "bankb");
  (void)rw.shipper->ship_once();
  EXPECT_EQ(rw.replica_balance("a1"), kInitial - 30);
  auto ok = client.query("bank", "a1");
  ASSERT_TRUE(ok.is_ok()) << ok.status();
  EXPECT_EQ(ok.value().balances.balance("usd"), kInitial - 30);
}

TEST(Replication, BootstrapReseedsStandbyPastCompactedJournal) {
  ReplicaWorld rw;
  rw.open("a1");
  rw.open("a2");
  auto client = rw.world.accounting_client("alice");
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 100).is_ok());
  // Checkpoint compacts the journal: the records a fresh standby needs are
  // gone, so shipping must fall back to the sealed snapshot.
  ASSERT_TRUE(rw.primary->checkpoint().is_ok());
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 25).is_ok());

  rw.make_standby();
  ASSERT_TRUE(
      rw.shipper->ship_until(rw.primary->journal_durable_lsn()).is_ok());
  EXPECT_EQ(rw.standby->received_lsn(), rw.primary->journal_durable_lsn());
  EXPECT_EQ(rw.replica_balance("a1"), kInitial - 125);
  EXPECT_EQ(rw.replica_balance("a2"), kInitial + 125);
}

TEST(Replication, PromotionFencesTheOldPrimary) {
  ReplicaWorld rw(/*with_barrier=*/true);
  rw.open("a1");
  rw.open("a2");
  rw.make_standby();
  auto client = rw.world.accounting_client("alice");
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 40).is_ok());

  ASSERT_TRUE(rw.standby->promote().is_ok());
  EXPECT_TRUE(rw.standby->promoted());
  EXPECT_EQ(rw.standby->epoch(), 2u);

  // The deposed primary's next barrier hits kFenced: the reply is
  // withheld, the primary fences itself, and every later request bounces.
  auto fenced = client.transfer("bank", "a1", "a2", "usd", 5);
  EXPECT_FALSE(fenced.is_ok());
  EXPECT_EQ(fenced.code(), ErrorCode::kFenced);
  EXPECT_TRUE(rw.primary->fenced());
  EXPECT_TRUE(rw.shipper->fenced());
  auto after = client.transfer("bank", "a1", "a2", "usd", 5);
  EXPECT_EQ(after.code(), ErrorCode::kUnavailable);

  // The promoted standby serves the replicated state under its own name.
  auto reply = client.query("bankb", "a1");
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(reply.value().balances.balance("usd"), kInitial - 40);
}

TEST(Replication, ReplicatedDedupMakesFailoverExactlyOnce) {
  ReplicaWorld rw(/*with_barrier=*/true);
  rw.open("a1");
  rw.open("a2");
  rw.make_standby();

  // Settle a check at the primary; the dedup entry rides the journal.
  const accounting::Check check = accounting::write_check(
      "alice", rw.world.principal("alice").identity, AccountId{"bank", "a1"},
      "alice", "usd", 60, 31337, rw.world.clock.now(), util::kHour);
  auto client = rw.world.accounting_client("alice");
  ASSERT_TRUE(client.endorse_and_deposit("bank", check, "a2").is_ok());

  ASSERT_TRUE(rw.standby->promote().is_ok());
  // A client that never saw the ack retries the SAME numbered check at the
  // promoted standby: the replicated dedup table replays the original
  // settlement instead of moving the money twice.
  auto retried = client.endorse_and_deposit("bankb", check, "a2");
  ASSERT_TRUE(retried.is_ok()) << retried.status();
  EXPECT_EQ(rw.replica_balance("a1"), kInitial - 60);
  EXPECT_EQ(rw.replica_balance("a2"), kInitial + 60);
}

TEST(Replication, HeartbeatTimeoutPromotesOnlyAfterSilence) {
  ReplicaWorld rw;
  rw.open("a1");
  rw.make_standby();
  (void)rw.shipper->ship_once();

  // Heard from the primary just now: no promotion within the window.
  auto early = rw.standby->maybe_promote();
  ASSERT_TRUE(early.is_ok());
  EXPECT_FALSE(early.value());
  rw.world.clock.advance(1 * util::kSecond);
  auto still = rw.standby->maybe_promote();
  ASSERT_TRUE(still.is_ok());
  EXPECT_FALSE(still.value());

  // Silence past timeout + jitter: the standby takes over.
  rw.world.clock.advance(5 * util::kSecond);
  auto promoted = rw.standby->maybe_promote();
  ASSERT_TRUE(promoted.is_ok());
  EXPECT_TRUE(promoted.value());
  EXPECT_TRUE(rw.standby->promoted());
}

// ---- Read replicas (staleness bound) --------------------------------------

TEST(Replication, ReadReplicaServesQueriesButRefusesWrites) {
  ReplicaWorld rw;
  rw.open("a1");
  rw.open("a2");
  rw.make_standby();
  ASSERT_TRUE(
      rw.shipper->ship_until(rw.primary->journal_durable_lsn()).is_ok());

  auto client = rw.world.accounting_client("alice");
  auto reply = client.query("bankb", "a1");
  ASSERT_TRUE(reply.is_ok()) << reply.status();
  EXPECT_EQ(reply.value().balances.balance("usd"), kInitial);

  auto write = client.transfer("bankb", "a1", "a2", "usd", 10);
  EXPECT_FALSE(write.is_ok());
  EXPECT_EQ(write.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(rw.replica_balance("a1"), kInitial);
}

TEST(Replication, LaggingReplicaReturnsAnswerTrueAtItsWatermark) {
  ReplicaWorld rw;
  rw.open("a1");
  rw.open("a2");
  rw.make_standby();
  ASSERT_TRUE(
      rw.shipper->ship_until(rw.primary->journal_durable_lsn()).is_ok());

  // Mutate the primary WITHOUT shipping: the replica lags, and (within its
  // staleness bound) answers with the balance that was true at its applied
  // LSN — a consistent prefix, never an invented value.
  auto client = rw.world.accounting_client("alice");
  ASSERT_TRUE(client.transfer("bank", "a1", "a2", "usd", 500).is_ok());
  auto stale = client.query("bankb", "a1");
  ASSERT_TRUE(stale.is_ok()) << stale.status();
  EXPECT_EQ(stale.value().balances.balance("usd"), kInitial);

  (void)rw.shipper->ship_once();
  auto fresh = client.query("bankb", "a1");
  ASSERT_TRUE(fresh.is_ok()) << fresh.status();
  EXPECT_EQ(fresh.value().balances.balance("usd"), kInitial - 500);
}

TEST(Replication, StalenessBoundRefusesReadsPastTheLimit) {
  ReplicaWorld rw;
  rw.open("a1");
  rw.open("a2");
  // Warm standby (queues frames, never applies) with a zero-lag bound:
  // the received/applied gap is fully observable.
  rw.make_standby([](StandbyReplayer::Config& rc) {
    rc.apply_on_receive = false;
    rc.staleness_limit_records = 0;
  });
  (void)rw.shipper->ship_once();
  ASSERT_GT(rw.standby->received_lsn(), 0u);
  ASSERT_EQ(rw.standby->applied_lsn(), 0u);

  auto client = rw.world.accounting_client("alice");
  auto refused = client.query("bankb", "a1");
  EXPECT_FALSE(refused.is_ok());
  EXPECT_EQ(refused.code(), ErrorCode::kUnavailable);

  // Catching up re-opens the replica for reads.
  ASSERT_TRUE(rw.standby->apply_pending().is_ok());
  auto served = client.query("bankb", "a1");
  ASSERT_TRUE(served.is_ok()) << served.status();
  EXPECT_EQ(served.value().balances.balance("usd"), kInitial);
}

TEST(Replication, PromotedReplicaRefusesAllTrafficUntilCaughtUp) {
  ReplicaWorld rw;
  rw.open("a1");
  rw.open("a2");
  rw.make_standby(
      [](StandbyReplayer::Config& rc) { rc.apply_on_receive = false; });
  (void)rw.shipper->ship_once();
  ASSERT_GT(rw.standby->received_lsn(), rw.standby->applied_lsn());

  // Promotion ordering guarantee: with frames received but unapplied,
  // even reads are refused — nothing served may predate the promoted
  // state.
  ASSERT_TRUE(rw.standby->promote().is_ok());
  auto client = rw.world.accounting_client("alice");
  auto read = client.query("bankb", "a1");
  EXPECT_FALSE(read.is_ok());
  EXPECT_EQ(read.code(), ErrorCode::kUnavailable);
  auto write = client.transfer("bankb", "a1", "a2", "usd", 10);
  EXPECT_FALSE(write.is_ok());

  ASSERT_TRUE(rw.standby->apply_pending().is_ok());
  auto served = client.query("bankb", "a1");
  ASSERT_TRUE(served.is_ok()) << served.status();
  EXPECT_EQ(served.value().balances.balance("usd"), kInitial);
  ASSERT_TRUE(client.transfer("bankb", "a1", "a2", "usd", 10).is_ok());
  EXPECT_EQ(rw.replica_balance("a1"), kInitial - 10);
}

TEST(Replication, StaleEpochShipIsFencedOff) {
  ReplicaWorld rw;
  rw.open("a1");
  rw.make_standby([](StandbyReplayer::Config& rc) { rc.epoch = 2; });
  // The shipper still believes epoch 1; the standby already moved on.
  const JournalShipper::Progress progress = rw.shipper->ship_once();
  EXPECT_TRUE(progress.fenced);
  EXPECT_TRUE(rw.shipper->fenced());
  EXPECT_TRUE(rw.primary->fenced());
}

}  // namespace
}  // namespace rproxy
