// Checks as numbered delegate proxies (§4): structure, endorsement chains,
// term parsing, tamper detection.
#include "accounting/check.hpp"

#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using accounting::Check;
using testing::World;

class CheckTest : public ::testing::Test {
 protected:
  CheckTest() {
    world_.add_principal("client");        // C in Fig 5
    world_.add_principal("app-server");    // S in Fig 5
    world_.add_principal("bank1");         // $1
    world_.add_principal("bank2");         // $2
  }

  Check write() {
    return accounting::write_check(
        "client", world_.principal("client").identity,
        AccountId{"bank2", "client-account"}, "app-server", "usd", 50, 7001,
        world_.clock.now(), util::kHour);
  }

  core::ProxyVerifier verifier_at(const PrincipalName& server) {
    core::ProxyVerifier::Config config;
    config.server_name = server;
    config.resolver = &world_.resolver;
    config.pk_root = world_.name_server.root_key();
    return core::ProxyVerifier(std::move(config));
  }

  World world_;
};

TEST_F(CheckTest, CheckStructureMatchesFig5) {
  const Check check = write();
  EXPECT_EQ(check.payor_account.to_string(), "bank2/client-account");
  EXPECT_EQ(check.payee, "app-server");
  EXPECT_EQ(check.amount, 50u);
  EXPECT_EQ(check.check_number, 7001u);
  ASSERT_EQ(check.chain.certs.size(), 1u);
  EXPECT_EQ(check.chain.certs[0].grantor, "client");
  // A check is a delegate proxy (§4): grantee restriction present.
  EXPECT_TRUE(check.chain.certs[0].restrictions.is_delegate());
}

TEST_F(CheckTest, TermsParseAndCrossCheck) {
  const Check check = write();
  auto verified =
      verifier_at("bank2").verify_chain(check.chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok()) << verified.status();
  auto terms = accounting::parse_check_terms(check, verified.value());
  ASSERT_TRUE(terms.is_ok()) << terms.status();
  EXPECT_EQ(terms.value().currency, "usd");
  EXPECT_EQ(terms.value().limit, 50u);
  EXPECT_EQ(terms.value().check_number, 7001u);
  EXPECT_EQ(terms.value().drawee_server, "bank2");
  EXPECT_EQ(terms.value().payor_local_account, "client-account");
}

TEST_F(CheckTest, TamperedCleartextAmountDetected) {
  Check check = write();
  check.amount = 5000;  // routing metadata inflated
  auto verified =
      verifier_at("bank2").verify_chain(check.chain, world_.clock.now());
  ASSERT_TRUE(verified.is_ok());
  EXPECT_EQ(
      accounting::parse_check_terms(check, verified.value()).code(),
      util::ErrorCode::kProtocolError);
}

TEST_F(CheckTest, EndorsementExtendsChainWithAuditTrail) {
  // Fig 5: E1 = check + [dep ckno to $1]_S.
  const Check check = write();
  auto endorsed = accounting::endorse_check(
      check, "app-server", world_.principal("app-server").identity, "bank1",
      world_.clock.now());
  ASSERT_TRUE(endorsed.is_ok()) << endorsed.status();
  ASSERT_EQ(endorsed.value().chain.certs.size(), 2u);
  EXPECT_EQ(endorsed.value().chain.certs[1].grantor, "app-server");
  EXPECT_EQ(endorsed.value().chain.certs[1].signer,
            core::SignerKind::kIntermediateIdentity);

  auto verified = verifier_at("bank1").verify_chain(endorsed.value().chain,
                                                    world_.clock.now());
  ASSERT_TRUE(verified.is_ok()) << verified.status();
  EXPECT_EQ(verified.value().audit_trail,
            std::vector<PrincipalName>{"app-server"});
}

TEST_F(CheckTest, DoubleEndorsement) {
  // Fig 5: E2 adds [dep ckno to $2]_$1.
  const Check check = write();
  auto e1 = accounting::endorse_check(
      check, "app-server", world_.principal("app-server").identity, "bank1",
      world_.clock.now());
  ASSERT_TRUE(e1.is_ok());
  auto e2 = accounting::endorse_check(
      e1.value(), "bank1", world_.principal("bank1").identity, "bank2",
      world_.clock.now());
  ASSERT_TRUE(e2.is_ok());

  auto verified = verifier_at("bank2").verify_chain(e2.value().chain,
                                                    world_.clock.now());
  ASSERT_TRUE(verified.is_ok()) << verified.status();
  EXPECT_EQ(verified.value().audit_trail,
            (std::vector<PrincipalName>{"app-server", "bank1"}));
}

TEST_F(CheckTest, NonPayeeEndorsementRejected) {
  // Someone who is not the payee (nor a later endorsee) cannot endorse.
  const Check check = write();
  auto endorsed = accounting::endorse_check(
      check, "bank1", world_.principal("bank1").identity, "bank2",
      world_.clock.now());
  ASSERT_TRUE(endorsed.is_ok());  // constructible...
  EXPECT_EQ(verifier_at("bank2")
                .verify_chain(endorsed.value().chain, world_.clock.now())
                .code(),
            util::ErrorCode::kNotGrantee);  // ...but not verifiable
}

TEST_F(CheckTest, CheckCodecRoundTrip) {
  const Check check = write();
  auto decoded =
      wire::decode_from_bytes<Check>(wire::encode_to_bytes(check));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().payee, check.payee);
  EXPECT_EQ(decoded.value().check_number, check.check_number);
  EXPECT_EQ(decoded.value().chain.certs.size(), 1u);
}

TEST_F(CheckTest, AccountObjectNaming) {
  EXPECT_EQ(accounting::account_object("x"), "account:x");
}

}  // namespace
}  // namespace rproxy
