// Consistent-hash ring: the placement function every shard and every
// client must agree on.  Determinism is therefore load-bearing — the
// golden values pin the hash across processes, compilers, and future
// refactors; if one ever changes, every deployed shard map is invalid.
#include "accounting/sharding/hash_ring.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace rproxy::accounting::sharding {
namespace {

TEST(StableHash, GoldenValuesPinCrossProcessPlacement) {
  // Computed once from the FNV-1a/SplitMix64 definition; a client built
  // tomorrow on another machine must place accounts identically.
  EXPECT_EQ(stable_hash64("alice-acct"), 0xe4ebee4ce121053fULL);
  EXPECT_EQ(stable_hash64("bob-acct"), 0x60830e75d36d9884ULL);
  EXPECT_EQ(stable_hash64("acct-000042"), 0x966a4bb29533ddc3ULL);
  // Vnode labels go through the same function.
  EXPECT_EQ(stable_hash64("shard-a#0"), 0xf96244b156d20022ULL);
  EXPECT_NE(stable_hash64(""), 0u);
}

TEST(StableHash, GoldenRingPlacement) {
  HashRing ring;
  ring.add_shard("shard-a", 64);
  ring.add_shard("shard-b", 64);
  ring.add_shard("shard-c", 64);
  EXPECT_EQ(*ring.shard_for("alice-acct"), "shard-a");
  EXPECT_EQ(*ring.shard_for("bob-acct"), "shard-b");
  EXPECT_EQ(*ring.shard_for("acct-000042"), "shard-b");
}

TEST(HashRing, IndependentlyBuiltRingsAgree) {
  // Same membership, different insertion order: identical placement.
  HashRing a;
  a.add_shard("s1", HashRing::kDefaultVnodes);
  a.add_shard("s2", HashRing::kDefaultVnodes);
  a.add_shard("s3", HashRing::kDefaultVnodes);
  HashRing b;
  b.add_shard("s3", HashRing::kDefaultVnodes);
  b.add_shard("s1", HashRing::kDefaultVnodes);
  b.add_shard("s2", HashRing::kDefaultVnodes);
  for (int i = 0; i < 10000; ++i) {
    const std::string key = "acct-" + std::to_string(i);
    ASSERT_EQ(*a.shard_for(key), *b.shard_for(key)) << key;
  }
}

TEST(HashRing, EmptyRingPlacesNothing) {
  HashRing ring;
  EXPECT_EQ(ring.shard_for("anything"), nullptr);
  ring.add_shard("only", 8);
  ring.remove_shard("only");
  EXPECT_EQ(ring.shard_for("anything"), nullptr);
}

TEST(HashRing, LoadIsBalancedAcrossAMillionKeys) {
  // 8 shards x 128 vnodes: per-shard share of 1M keys must be within
  // ±35% of fair (the standard-deviation bound for 128 vnodes is ~10%,
  // so this has slack without letting a placement bug through).
  constexpr int kShards = 8;
  constexpr int kKeys = 1'000'000;
  HashRing ring;
  for (int s = 0; s < kShards; ++s) {
    ring.add_shard("shard-" + std::to_string(s), HashRing::kDefaultVnodes);
  }
  std::map<PrincipalName, int> counts;
  for (int i = 0; i < kKeys; ++i) {
    counts[*ring.shard_for("acct-" + std::to_string(i))] += 1;
  }
  ASSERT_EQ(counts.size(), static_cast<std::size_t>(kShards));
  const int fair = kKeys / kShards;
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, fair * 65 / 100) << shard << " underloaded";
    EXPECT_LT(count, fair * 135 / 100) << shard << " overloaded";
  }
}

TEST(HashRing, AddingAShardMovesOnlyItsShareOfKeys) {
  constexpr int kKeys = 100'000;
  HashRing before;
  for (int s = 0; s < 4; ++s) {
    before.add_shard("shard-" + std::to_string(s), HashRing::kDefaultVnodes);
  }
  HashRing after = before;
  after.add_shard("shard-4", HashRing::kDefaultVnodes);

  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "acct-" + std::to_string(i);
    const PrincipalName& dst = *after.shard_for(key);
    if (dst != *before.shard_for(key)) {
      moved += 1;
      // Consistent hashing's whole point: keys only ever move TO the new
      // shard, never between the old ones.
      EXPECT_EQ(dst, "shard-4") << key;
    }
  }
  // The new shard's fair share is 1/5; allow up to 1.6x fair, and require
  // that a meaningful share actually moved (an all-or-nothing rehash
  // would fail one of the two).
  EXPECT_GT(moved, kKeys / 10);
  EXPECT_LT(moved, kKeys * 32 / 100);
}

TEST(HashRing, RemovingAShardStrandsNoKeysAndMovesOnlyItsKeys) {
  constexpr int kKeys = 100'000;
  HashRing before;
  for (int s = 0; s < 5; ++s) {
    before.add_shard("shard-" + std::to_string(s), HashRing::kDefaultVnodes);
  }
  HashRing after = before;
  after.remove_shard("shard-2");

  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "acct-" + std::to_string(i);
    const PrincipalName& src = *before.shard_for(key);
    const PrincipalName& dst = *after.shard_for(key);
    ASSERT_NE(dst, "shard-2") << key << " still placed on removed shard";
    if (src != "shard-2") {
      // Keys not on the removed shard must not move at all.
      ASSERT_EQ(src, dst) << key;
    }
  }
}

TEST(HashRing, ShardsListsSortedMembership) {
  HashRing ring;
  ring.add_shard("zeta", 8);
  ring.add_shard("alpha", 8);
  EXPECT_EQ(ring.shards(), (std::vector<PrincipalName>{"alpha", "zeta"}));
  ring.remove_shard("zeta");
  EXPECT_EQ(ring.shards(), (std::vector<PrincipalName>{"alpha"}));
}

}  // namespace
}  // namespace rproxy::accounting::sharding
