// Sealed accounting snapshots: durability without trusting the storage.
#include <gtest/gtest.h>

#include "crypto/aead.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

/// Seals raw plaintext exactly as AccountingServer::snapshot does, so the
/// negative-path tests can hand the server structurally-corrupt payloads
/// that pass the AEAD check (storage tampering is caught by the seal; the
/// decoder must survive everything else).
util::Bytes seal_as_snapshot(const crypto::SymmetricKey& key,
                             util::BytesView plaintext) {
  return crypto::aead_seal(key.derive_subkey("accounting:snapshot"),
                           plaintext);
}

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() {
    world_.add_principal("client");
    world_.add_principal("merchant");
    world_.add_principal("bank");
    bank_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank"));
    world_.net.attach("bank", *bank_);
    bank_->open_account("client-acct", "client",
                        accounting::Balances{{"usd", 100}, {"pages", 7}});
    bank_->open_account("merchant-acct", "merchant");
  }

  World world_;
  std::unique_ptr<accounting::AccountingServer> bank_;
  crypto::SymmetricKey snapshot_key_ = crypto::SymmetricKey::generate();
};

TEST_F(SnapshotTest, RoundTripPreservesBalancesAndHolds) {
  // Put some state in: a transfer and a certified hold.
  auto client = world_.accounting_client("client");
  ASSERT_TRUE(client
                  .transfer("bank", "client-acct", "merchant-acct", "usd",
                            30)
                  .is_ok());
  ASSERT_TRUE(client
                  .certify("bank", "client-acct", "merchant", "usd", 20,
                           900, "merchant")
                  .is_ok());

  const util::Bytes saved = bank_->snapshot(snapshot_key_);

  // Wreck the live state, then restore.
  bank_->open_account("client-acct", "client", {});
  bank_->open_account("merchant-acct", "merchant", {});
  ASSERT_TRUE(bank_->restore(snapshot_key_, saved).is_ok());

  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 70);
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("pages"), 7);
  EXPECT_EQ(bank_->account("client-acct")->held("usd"), 20);
  EXPECT_EQ(bank_->account("client-acct")->available("usd"), 50);
  EXPECT_EQ(bank_->account("merchant-acct")->balances().balance("usd"), 30);

  // The restored certified hold still settles the matching check.
  const accounting::Check check = accounting::write_check(
      "client", world_.principal("client").identity,
      AccountId{"bank", "client-acct"}, "merchant", "usd", 20, 900,
      world_.clock.now(), util::kHour);
  auto merchant = world_.accounting_client("merchant");
  ASSERT_TRUE(
      merchant.endorse_and_deposit("bank", check, "merchant-acct").is_ok());
  EXPECT_EQ(bank_->account("client-acct")->held("usd"), 0);
}

TEST_F(SnapshotTest, WrongKeyRejected) {
  const util::Bytes saved = bank_->snapshot(snapshot_key_);
  EXPECT_EQ(
      bank_->restore(crypto::SymmetricKey::generate(), saved).code(),
      util::ErrorCode::kBadSignature);
  // State untouched.
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 100);
}

TEST_F(SnapshotTest, TamperedSnapshotRejected) {
  util::Bytes saved = bank_->snapshot(snapshot_key_);
  saved[saved.size() / 2] ^= 1;
  EXPECT_FALSE(bank_->restore(snapshot_key_, saved).is_ok());
}

TEST_F(SnapshotTest, ForeignSnapshotRejected) {
  world_.add_principal("other-bank");
  accounting::AccountingServer other(
      world_.accounting_config("other-bank"));
  other.open_account("x", "client", accounting::Balances{{"usd", 5}});
  const util::Bytes saved = other.snapshot(snapshot_key_);
  EXPECT_EQ(bank_->restore(snapshot_key_, saved).code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(SnapshotTest, TruncatedSealedBlobRejected) {
  util::Bytes saved = bank_->snapshot(snapshot_key_);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, saved.size() / 2,
        saved.size() - 1}) {
    util::Bytes cut(saved.begin(),
                    saved.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(bank_->restore(snapshot_key_, cut).is_ok())
        << "kept " << keep << " bytes";
  }
  // State untouched through all of it.
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 100);
}

TEST_F(SnapshotTest, UnknownVersionRejectedCleanly) {
  wire::Encoder enc;
  enc.str("accounting-snapshot-v9");
  enc.str("bank");
  const util::Status st =
      bank_->restore(snapshot_key_, seal_as_snapshot(snapshot_key_,
                                                     enc.view()));
  EXPECT_EQ(st.code(), util::ErrorCode::kParseError);
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 100);
}

TEST_F(SnapshotTest, TruncatedPlaintextNeverHalfApplies) {
  // A structurally valid prefix — correct version, server name, and an
  // account count promising more data than exists.  The decoder must
  // latch, restore must fail, and NO account may have been replaced.
  wire::Encoder enc;
  enc.str("accounting-snapshot-v3");
  enc.str("bank");
  enc.u32(7);  // seven accounts allegedly follow; none do
  const util::Status st =
      bank_->restore(snapshot_key_, seal_as_snapshot(snapshot_key_,
                                                     enc.view()));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 100);
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("pages"), 7);
}

TEST_F(SnapshotTest, GarbageHoldAmountsNeverHalfApply) {
  // One full account whose hold exceeds its balance — place_hold must
  // refuse, and the failure must not leave the decoded prefix applied.
  wire::Encoder enc;
  enc.str("accounting-snapshot-v3");
  enc.str("bank");
  enc.u32(1);
  enc.str("client-acct");
  enc.str("client");
  accounting::Balances{{"usd", 10}}.encode(enc);
  enc.u32(1);
  enc.str("usd");
  enc.i64(10'000);  // hold far beyond the balance
  const util::Status st =
      bank_->restore(snapshot_key_, seal_as_snapshot(snapshot_key_,
                                                     enc.view()));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 100);
  EXPECT_EQ(bank_->account("client-acct")->held("usd"), 0);
}

TEST_F(SnapshotTest, V2SnapshotStillRestores) {
  // Hand-built previous-generation snapshot (no routes section): upgrade
  // compatibility — a server must come back from a pre-upgrade file.
  wire::Encoder enc;
  enc.str("accounting-snapshot-v2");
  enc.str("bank");
  enc.u32(1);
  enc.str("client-acct");
  enc.str("client");
  accounting::Balances{{"usd", 62}}.encode(enc);
  enc.u32(1);
  enc.str("usd");
  enc.i64(12);
  enc.u32(0);  // no certified holds
  enc.u32(0);  // no completed deposits
  enc.u32(0);  // no completed certifies
  ASSERT_TRUE(bank_
                  ->restore(snapshot_key_,
                            seal_as_snapshot(snapshot_key_, enc.view()))
                  .is_ok());
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 62);
  EXPECT_EQ(bank_->account("client-acct")->held("usd"), 12);
  EXPECT_EQ(bank_->account("client-acct")->available("usd"), 50);
  // v2 predates route persistence: accounts it does not mention are gone
  // (restore replaces), and the restore reports success.
  EXPECT_EQ(bank_->account("merchant-acct"), nullptr);
}

TEST_F(SnapshotTest, TrailingGarbageRejected) {
  util::Bytes saved = bank_->snapshot(snapshot_key_);
  // Re-seal the valid plaintext plus trailing junk: dec.finish() must
  // refuse bytes the decoder did not consume.
  auto plain = crypto::aead_open(
      snapshot_key_.derive_subkey("accounting:snapshot"), saved);
  ASSERT_TRUE(plain.is_ok());
  util::Bytes padded = plain.value();
  padded.push_back(0xAB);
  EXPECT_FALSE(
      bank_->restore(snapshot_key_, seal_as_snapshot(snapshot_key_, padded))
          .is_ok());
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 100);
}

TEST_F(SnapshotTest, ConservationAcrossSnapshotRestore) {
  const auto total = [&] {
    return bank_->account("client-acct")->balances().balance("usd") +
           bank_->account("merchant-acct")->balances().balance("usd");
  };
  const std::int64_t before = total();
  const util::Bytes saved = bank_->snapshot(snapshot_key_);
  ASSERT_TRUE(bank_->restore(snapshot_key_, saved).is_ok());
  EXPECT_EQ(total(), before);
}

}  // namespace
}  // namespace rproxy
