// Sealed accounting snapshots: durability without trusting the storage.
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() {
    world_.add_principal("client");
    world_.add_principal("merchant");
    world_.add_principal("bank");
    bank_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank"));
    world_.net.attach("bank", *bank_);
    bank_->open_account("client-acct", "client",
                        accounting::Balances{{"usd", 100}, {"pages", 7}});
    bank_->open_account("merchant-acct", "merchant");
  }

  World world_;
  std::unique_ptr<accounting::AccountingServer> bank_;
  crypto::SymmetricKey snapshot_key_ = crypto::SymmetricKey::generate();
};

TEST_F(SnapshotTest, RoundTripPreservesBalancesAndHolds) {
  // Put some state in: a transfer and a certified hold.
  auto client = world_.accounting_client("client");
  ASSERT_TRUE(client
                  .transfer("bank", "client-acct", "merchant-acct", "usd",
                            30)
                  .is_ok());
  ASSERT_TRUE(client
                  .certify("bank", "client-acct", "merchant", "usd", 20,
                           900, "merchant")
                  .is_ok());

  const util::Bytes saved = bank_->snapshot(snapshot_key_);

  // Wreck the live state, then restore.
  bank_->open_account("client-acct", "client", {});
  bank_->open_account("merchant-acct", "merchant", {});
  ASSERT_TRUE(bank_->restore(snapshot_key_, saved).is_ok());

  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 70);
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("pages"), 7);
  EXPECT_EQ(bank_->account("client-acct")->held("usd"), 20);
  EXPECT_EQ(bank_->account("client-acct")->available("usd"), 50);
  EXPECT_EQ(bank_->account("merchant-acct")->balances().balance("usd"), 30);

  // The restored certified hold still settles the matching check.
  const accounting::Check check = accounting::write_check(
      "client", world_.principal("client").identity,
      AccountId{"bank", "client-acct"}, "merchant", "usd", 20, 900,
      world_.clock.now(), util::kHour);
  auto merchant = world_.accounting_client("merchant");
  ASSERT_TRUE(
      merchant.endorse_and_deposit("bank", check, "merchant-acct").is_ok());
  EXPECT_EQ(bank_->account("client-acct")->held("usd"), 0);
}

TEST_F(SnapshotTest, WrongKeyRejected) {
  const util::Bytes saved = bank_->snapshot(snapshot_key_);
  EXPECT_EQ(
      bank_->restore(crypto::SymmetricKey::generate(), saved).code(),
      util::ErrorCode::kBadSignature);
  // State untouched.
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("usd"), 100);
}

TEST_F(SnapshotTest, TamperedSnapshotRejected) {
  util::Bytes saved = bank_->snapshot(snapshot_key_);
  saved[saved.size() / 2] ^= 1;
  EXPECT_FALSE(bank_->restore(snapshot_key_, saved).is_ok());
}

TEST_F(SnapshotTest, ForeignSnapshotRejected) {
  world_.add_principal("other-bank");
  accounting::AccountingServer other(
      world_.accounting_config("other-bank"));
  other.open_account("x", "client", accounting::Balances{{"usd", 5}});
  const util::Bytes saved = other.snapshot(snapshot_key_);
  EXPECT_EQ(bank_->restore(snapshot_key_, saved).code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(SnapshotTest, ConservationAcrossSnapshotRestore) {
  const auto total = [&] {
    return bank_->account("client-acct")->balances().balance("usd") +
           bank_->account("merchant-acct")->balances().balance("usd");
  };
  const std::int64_t before = total();
  const util::Bytes saved = bank_->snapshot(snapshot_key_);
  ASSERT_TRUE(bank_->restore(snapshot_key_, saved).is_ok());
  EXPECT_EQ(total(), before);
}

}  // namespace
}  // namespace rproxy
