// Multi-currency accounting (§4: "monetary (dollars, pounds, or yen) or
// resource specific (disk blocks, cpu cycles, or printer pages)").
#include <gtest/gtest.h>

#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class MultiCurrencyTest : public ::testing::Test {
 protected:
  MultiCurrencyTest() {
    world_.add_principal("client");
    world_.add_principal("merchant");
    world_.add_principal("bank");
    bank_ = std::make_unique<accounting::AccountingServer>(
        world_.accounting_config("bank"));
    world_.net.attach("bank", *bank_);
    bank_->open_account(
        "client-acct", "client",
        accounting::Balances{
            {"usd", 100}, {"pages", 500}, {"cpu-cycles", 1'000'000}});
    bank_->open_account("merchant-acct", "merchant");
  }

  accounting::Check write_check(const accounting::Currency& currency,
                                std::uint64_t amount, std::uint64_t ckno) {
    return accounting::write_check(
        "client", world_.principal("client").identity,
        AccountId{"bank", "client-acct"}, "merchant", currency, amount,
        ckno, world_.clock.now(), util::kHour);
  }

  World world_;
  std::unique_ptr<accounting::AccountingServer> bank_;
};

TEST_F(MultiCurrencyTest, ChecksInDifferentCurrenciesIndependent) {
  auto merchant = world_.accounting_client("merchant");
  ASSERT_TRUE(merchant
                  .endorse_and_deposit("bank", write_check("usd", 50, 1),
                                       "merchant-acct")
                  .is_ok());
  ASSERT_TRUE(merchant
                  .endorse_and_deposit("bank", write_check("pages", 200, 2),
                                       "merchant-acct")
                  .is_ok());

  const accounting::Account* client = bank_->account("client-acct");
  EXPECT_EQ(client->balances().balance("usd"), 50);
  EXPECT_EQ(client->balances().balance("pages"), 300);
  EXPECT_EQ(client->balances().balance("cpu-cycles"), 1'000'000);
  const accounting::Account* merchant_acct = bank_->account("merchant-acct");
  EXPECT_EQ(merchant_acct->balances().balance("usd"), 50);
  EXPECT_EQ(merchant_acct->balances().balance("pages"), 200);
}

TEST_F(MultiCurrencyTest, RichInOneCurrencyPoorInAnother) {
  auto merchant = world_.accounting_client("merchant");
  // Plenty of cpu-cycles cannot cover a usd check.
  EXPECT_EQ(merchant
                .endorse_and_deposit("bank", write_check("usd", 101, 3),
                                     "merchant-acct")
                .code(),
            util::ErrorCode::kInsufficientFunds);
  EXPECT_TRUE(merchant
                  .endorse_and_deposit(
                      "bank", write_check("cpu-cycles", 999'999, 4),
                      "merchant-acct")
                  .is_ok());
}

TEST_F(MultiCurrencyTest, HoldsArePerCurrency) {
  auto client = world_.accounting_client("client");
  ASSERT_TRUE(client
                  .certify("bank", "client-acct", "merchant", "usd", 90,
                           100, "merchant")
                  .is_ok());
  accounting::Account* acct = bank_->account("client-acct");
  EXPECT_EQ(acct->available("usd"), 10);
  EXPECT_EQ(acct->available("pages"), 500);  // untouched
}

TEST_F(MultiCurrencyTest, QuotaRestrictionIsCurrencyScoped) {
  // A quota on "pages" does not bound "usd" amounts and vice versa.
  core::AcceptOnceCache cache;
  core::RequestContext ctx;
  ctx.end_server = "print-server";
  ctx.amounts = {{"usd", 1000}, {"pages", 2}};
  ctx.now = world_.clock.now();
  EXPECT_TRUE(core::evaluate_restriction(
                  core::QuotaRestriction{"pages", 5}, ctx)
                  .is_ok());
  EXPECT_FALSE(core::evaluate_restriction(
                   core::QuotaRestriction{"usd", 5}, ctx)
                   .is_ok());
}

TEST_F(MultiCurrencyTest, SameCheckNumberDifferentCurrencySpent) {
  // The accept-once identifier is scoped per grantor, NOT per currency —
  // a check number reused in another currency is already spent (§7.7).
  // The exactly-once dedup table shares that scope, so the duplicate is
  // answered with the ORIGINAL deposit's reply and no pages move.
  auto merchant = world_.accounting_client("merchant");
  ASSERT_TRUE(merchant
                  .endorse_and_deposit("bank", write_check("usd", 10, 7),
                                       "merchant-acct")
                  .is_ok());
  auto reused = merchant.endorse_and_deposit(
      "bank", write_check("pages", 10, 7), "merchant-acct");
  ASSERT_TRUE(reused.is_ok()) << reused.status();
  EXPECT_EQ(bank_->deduped_replies(), 1u);
  EXPECT_EQ(bank_->account("merchant-acct")->balances().balance("pages"), 0);
  EXPECT_EQ(bank_->account("client-acct")->balances().balance("pages"), 500);
  EXPECT_EQ(bank_->account("merchant-acct")->balances().balance("usd"), 10);
}

}  // namespace
}  // namespace rproxy
