// AS/TGS exchange tests (§6.2): initial authentication, ticket issuance,
// and the additive-restriction rule on re-issued tickets.
#include <gtest/gtest.h>

#include "core/restriction_set.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using testing::World;

class KdcTest : public ::testing::Test {
 protected:
  KdcTest() {
    world_.add_principal("alice");
    world_.add_principal("file-server");
  }

  World world_;
};

TEST_F(KdcTest, AsExchangeYieldsTgt) {
  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok()) << tgt.status();
  EXPECT_EQ(tgt.value().server, World::kKdcName);
  EXPECT_GT(tgt.value().expires_at, world_.clock.now());
}

TEST_F(KdcTest, UnknownPrincipalRejected) {
  kdc::KdcClient client(world_.net, world_.clock, "mallory",
                        crypto::SymmetricKey::generate(), World::kKdcName);
  EXPECT_EQ(client.authenticate(util::kHour).code(),
            util::ErrorCode::kNotFound);
}

TEST_F(KdcTest, WrongPasswordCannotDecryptReply) {
  kdc::KdcClient client(world_.net, world_.clock, "alice",
                        crypto::SymmetricKey::generate(), World::kKdcName);
  EXPECT_EQ(client.authenticate(util::kHour).code(),
            util::ErrorCode::kBadSignature);
}

TEST_F(KdcTest, TgsExchangeYieldsServiceTicket) {
  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = client.get_ticket(tgt.value(), "file-server", util::kHour);
  ASSERT_TRUE(creds.is_ok()) << creds.status();
  EXPECT_EQ(creds.value().server, "file-server");

  // The file server can open the ticket and sees alice.
  auto body = kdc::open_ticket(creds.value().ticket,
                               world_.principal("file-server").krb_key);
  ASSERT_TRUE(body.is_ok());
  EXPECT_EQ(body.value().client, "alice");
  EXPECT_TRUE(body.value().session_key == creds.value().session_key);
}

TEST_F(KdcTest, TicketForUnknownServerRejected) {
  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  EXPECT_EQ(client.get_ticket(tgt.value(), "ghost", util::kHour).code(),
            util::ErrorCode::kNotFound);
}

TEST_F(KdcTest, ServiceTicketLifetimeClampedToTgt) {
  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(30 * util::kMinute);
  ASSERT_TRUE(tgt.is_ok());
  auto creds = client.get_ticket(tgt.value(), "file-server", 8 * util::kHour);
  ASSERT_TRUE(creds.is_ok());
  EXPECT_LE(creds.value().expires_at, tgt.value().expires_at);
}

TEST_F(KdcTest, InitialRestrictionsCarryIntoTickets) {
  core::RestrictionSet initial;
  initial.add(core::IssuedForRestriction{{"file-server"}});

  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(util::kHour, initial.to_blobs());
  ASSERT_TRUE(tgt.is_ok());
  auto creds = client.get_ticket(tgt.value(), "file-server", util::kHour);
  ASSERT_TRUE(creds.is_ok());

  auto body = kdc::open_ticket(creds.value().ticket,
                               world_.principal("file-server").krb_key);
  ASSERT_TRUE(body.is_ok());
  auto restored =
      core::RestrictionSet::from_blobs(body.value().authorization_data);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), initial);
}

TEST_F(KdcTest, TgsAddsButNeverRemovesRestrictions) {
  core::RestrictionSet initial;
  initial.add(core::QuotaRestriction{"pages", 10});

  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(util::kHour, initial.to_blobs());
  ASSERT_TRUE(tgt.is_ok());

  core::RestrictionSet added;
  added.add(core::AuthorizedRestriction{
      {core::ObjectRights{"/tmp/report", {"read"}}}});
  auto creds = client.get_ticket(tgt.value(), "file-server", util::kHour,
                                 added.to_blobs());
  ASSERT_TRUE(creds.is_ok());

  auto body = kdc::open_ticket(creds.value().ticket,
                               world_.principal("file-server").krb_key);
  ASSERT_TRUE(body.is_ok());
  // Both the TGT's restriction and the addition must be present.
  EXPECT_EQ(body.value().authorization_data.size(), 2u);
  auto restored =
      core::RestrictionSet::from_blobs(body.value().authorization_data);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), initial.merged(added));
}

TEST_F(KdcTest, TgsRejectsNonTgtTicket) {
  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());
  auto file_creds =
      client.get_ticket(tgt.value(), "file-server", util::kHour);
  ASSERT_TRUE(file_creds.is_ok());
  // Presenting a file-server ticket to the TGS must fail: the KDC cannot
  // even open it (sealed under the file server's key).
  EXPECT_FALSE(
      client.get_ticket(file_creds.value(), "file-server", util::kHour)
          .is_ok());
}

TEST_F(KdcTest, ExpiredTgtRejectedByTgs) {
  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(util::kMinute);
  ASSERT_TRUE(tgt.is_ok());
  world_.clock.advance(2 * util::kHour);
  EXPECT_EQ(
      client.get_ticket(tgt.value(), "file-server", util::kHour).code(),
      util::ErrorCode::kExpired);
}

TEST_F(KdcTest, TgsReplayRejected) {
  kdc::KdcClient client = world_.kdc_client("alice");
  auto tgt = client.authenticate(util::kHour);
  ASSERT_TRUE(tgt.is_ok());

  // Capture the TGS request and replay it verbatim.
  net::RecordingTap tap;
  world_.net.add_tap(tap);
  ASSERT_TRUE(
      client.get_ticket(tgt.value(), "file-server", util::kHour).is_ok());
  const auto requests = tap.of_type(net::MsgType::kTgsRequest);
  ASSERT_EQ(requests.size(), 1u);
  auto replayed = world_.net.inject(requests.front());
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(net::status_of(replayed.value()).code(),
            util::ErrorCode::kReplay);
}

TEST_F(KdcTest, AsReplyNonceBindsRequest) {
  // A captured AS reply for a different request must be rejected by the
  // client (nonce mismatch).  We simulate by answering with a stale reply.
  kdc::KdcClient client = world_.kdc_client("alice");
  net::RecordingTap tap;
  world_.net.add_tap(tap);
  ASSERT_TRUE(client.authenticate(util::kHour).is_ok());
  const auto replies = tap.of_type(net::MsgType::kAsReply);
  ASSERT_EQ(replies.size(), 1u);
  world_.net.clear_taps();

  // Replay the old reply in response to a new request.
  net::TamperTap replayer(
      [captured = replies.front()](
          const net::Envelope& e) -> std::optional<net::Envelope> {
        if (e.type != net::MsgType::kAsReply) return std::nullopt;
        net::Envelope old = captured;
        old.from = e.from;
        old.to = e.to;
        return old;
      });
  world_.net.add_tap(replayer);
  EXPECT_EQ(client.authenticate(util::kHour).code(),
            util::ErrorCode::kProtocolError);
}

}  // namespace
}  // namespace rproxy
