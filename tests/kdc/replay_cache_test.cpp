#include "kdc/replay_cache.hpp"

#include <gtest/gtest.h>

namespace rproxy::kdc {
namespace {

using util::kSecond;

TEST(ReplayCache, FirstUseAccepted) {
  ReplayCache cache;
  EXPECT_TRUE(cache
                  .check_and_insert(util::Bytes{1, 2, 3}, 100 * kSecond,
                                    10 * kSecond)
                  .is_ok());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplayCache, RepeatRejectedWithinWindow) {
  ReplayCache cache;
  const util::Bytes item = {1, 2, 3};
  ASSERT_TRUE(cache.check_and_insert(item, 100 * kSecond, 10 * kSecond)
                  .is_ok());
  EXPECT_EQ(cache.check_and_insert(item, 100 * kSecond, 20 * kSecond).code(),
            util::ErrorCode::kReplay);
}

TEST(ReplayCache, RepeatAcceptedAfterExpiry) {
  ReplayCache cache;
  const util::Bytes item = {1, 2, 3};
  ASSERT_TRUE(
      cache.check_and_insert(item, 100 * kSecond, 10 * kSecond).is_ok());
  EXPECT_TRUE(
      cache.check_and_insert(item, 300 * kSecond, 200 * kSecond).is_ok());
}

TEST(ReplayCache, DistinctItemsIndependent) {
  ReplayCache cache;
  EXPECT_TRUE(cache.check_and_insert(util::Bytes{1}, 100 * kSecond, 0)
                  .is_ok());
  EXPECT_TRUE(cache.check_and_insert(util::Bytes{2}, 100 * kSecond, 0)
                  .is_ok());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ReplayCache, PurgeDropsExpired) {
  ReplayCache cache;
  ASSERT_TRUE(cache.check_and_insert(util::Bytes{1}, 10 * kSecond, 0)
                  .is_ok());
  ASSERT_TRUE(cache.check_and_insert(util::Bytes{2}, 100 * kSecond, 0)
                  .is_ok());
  cache.purge(50 * kSecond);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplayCache, AmortizedPurgeKeepsCacheBounded) {
  ReplayCache cache;
  // Insert many short-lived items over advancing time; the opportunistic
  // purge inside check_and_insert must keep old ones from accumulating.
  for (int i = 0; i < 1000; ++i) {
    const util::TimePoint now = i * 2 * kSecond;
    ASSERT_TRUE(cache
                    .check_and_insert(util::Bytes{static_cast<uint8_t>(i),
                                                  static_cast<uint8_t>(i >> 8)},
                                      now + kSecond, now)
                    .is_ok());
  }
  EXPECT_LT(cache.size(), 10u);
}

}  // namespace
}  // namespace rproxy::kdc
