#include "kdc/principal_db.hpp"

#include <gtest/gtest.h>

namespace rproxy::kdc {
namespace {

TEST(PrincipalDb, RegisterAndLookup) {
  PrincipalDb db;
  const crypto::SymmetricKey key = crypto::SymmetricKey::generate();
  db.register_principal("alice", key);
  ASSERT_TRUE(db.exists("alice"));
  auto found = db.key_of("alice");
  ASSERT_TRUE(found.is_ok());
  EXPECT_TRUE(found.value() == key);
}

TEST(PrincipalDb, UnknownPrincipal) {
  PrincipalDb db;
  EXPECT_FALSE(db.exists("ghost"));
  EXPECT_EQ(db.key_of("ghost").code(), util::ErrorCode::kNotFound);
}

TEST(PrincipalDb, PasswordDerivationIsSalted) {
  PrincipalDb db;
  const crypto::SymmetricKey a = db.register_with_password("alice", "pw");
  const crypto::SymmetricKey b = db.register_with_password("bob", "pw");
  // Same password, different principals -> different keys (name salts).
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(db.key_of("alice").value() == a);
}

TEST(PrincipalDb, ReRegistrationReplaces) {
  PrincipalDb db;
  db.register_with_password("alice", "old");
  const crypto::SymmetricKey fresh =
      db.register_with_password("alice", "new");
  EXPECT_TRUE(db.key_of("alice").value() == fresh);
  EXPECT_EQ(db.size(), 1u);
}

TEST(PrincipalDb, RemoveRevokes) {
  PrincipalDb db;
  db.register_with_password("alice", "pw");
  db.remove("alice");
  EXPECT_FALSE(db.exists("alice"));
  EXPECT_EQ(db.size(), 0u);
}

}  // namespace
}  // namespace rproxy::kdc
