#include "kdc/ticket.hpp"

#include <gtest/gtest.h>

#include "kdc/authenticator.hpp"

namespace rproxy::kdc {
namespace {

TicketBody sample_body() {
  TicketBody body;
  body.client = "alice";
  body.server = "file-server";
  body.session_key = crypto::SymmetricKey::generate();
  body.auth_time = 100 * util::kSecond;
  body.expires_at = 200 * util::kSecond;
  body.authorization_data = {util::Bytes{1, 2}, util::Bytes{3}};
  return body;
}

TEST(Ticket, SealOpenRoundTrip) {
  const crypto::SymmetricKey server_key = crypto::SymmetricKey::generate();
  const TicketBody body = sample_body();
  const Ticket ticket = seal_ticket(body, server_key);
  EXPECT_EQ(ticket.server, "file-server");

  auto opened = open_ticket(ticket, server_key);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(opened.value().client, "alice");
  EXPECT_EQ(opened.value().server, "file-server");
  EXPECT_TRUE(opened.value().session_key == body.session_key);
  EXPECT_EQ(opened.value().expires_at, body.expires_at);
  EXPECT_EQ(opened.value().authorization_data, body.authorization_data);
}

TEST(Ticket, WrongServerKeyFails) {
  const Ticket ticket =
      seal_ticket(sample_body(), crypto::SymmetricKey::generate());
  EXPECT_EQ(open_ticket(ticket, crypto::SymmetricKey::generate()).code(),
            util::ErrorCode::kBadSignature);
}

TEST(Ticket, TamperedSealedBodyFails) {
  const crypto::SymmetricKey key = crypto::SymmetricKey::generate();
  Ticket ticket = seal_ticket(sample_body(), key);
  ticket.sealed_body[ticket.sealed_body.size() / 2] ^= 1;
  EXPECT_FALSE(open_ticket(ticket, key).is_ok());
}

TEST(Ticket, RelabeledOuterServerNameRejected) {
  // An attacker cannot redirect a ticket by editing the cleartext server
  // name: the sealed body's copy is authoritative.
  const crypto::SymmetricKey key = crypto::SymmetricKey::generate();
  Ticket ticket = seal_ticket(sample_body(), key);
  ticket.server = "other-server";
  EXPECT_EQ(open_ticket(ticket, key).code(),
            util::ErrorCode::kProtocolError);
}

TEST(Authenticator, SealOpenRoundTrip) {
  const crypto::SymmetricKey session = crypto::SymmetricKey::generate();
  AuthenticatorBody body;
  body.client = "alice";
  body.timestamp = 42 * util::kSecond;
  body.nonce = 7;
  body.subkey = crypto::SymmetricKey::generate().bytes();
  body.authorization_data = {util::Bytes{9}};

  const util::Bytes sealed = seal_authenticator(body, session);
  auto opened = open_authenticator(sealed, session);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(opened.value().client, "alice");
  EXPECT_EQ(opened.value().timestamp, 42 * util::kSecond);
  EXPECT_EQ(opened.value().nonce, 7u);
  EXPECT_EQ(opened.value().subkey, body.subkey);
}

TEST(Authenticator, WrongSessionKeyFails) {
  AuthenticatorBody body;
  body.client = "alice";
  const util::Bytes sealed =
      seal_authenticator(body, crypto::SymmetricKey::generate());
  EXPECT_FALSE(
      open_authenticator(sealed, crypto::SymmetricKey::generate()).is_ok());
}

class ApRequestTest : public ::testing::Test {
 protected:
  ApRequestTest() {
    body_ = sample_body();
    ticket_ = seal_ticket(body_, server_key_);
  }

  ApRequest make_request(util::TimePoint timestamp,
                         const PrincipalName& client = "alice") {
    AuthenticatorBody auth;
    auth.client = client;
    auth.timestamp = timestamp;
    auth.nonce = next_nonce_++;
    ApRequest req;
    req.ticket = ticket_;
    req.sealed_authenticator = seal_authenticator(auth, body_.session_key);
    return req;
  }

  crypto::SymmetricKey server_key_ = crypto::SymmetricKey::generate();
  TicketBody body_;
  Ticket ticket_;
  std::uint64_t next_nonce_ = 1;
};

TEST_F(ApRequestTest, ValidRequestAccepted) {
  const util::TimePoint now = 150 * util::kSecond;
  auto verified =
      verify_ap_request(make_request(now), server_key_, now, {});
  ASSERT_TRUE(verified.is_ok());
  EXPECT_EQ(verified.value().ticket.client, "alice");
  EXPECT_EQ(verified.value().authenticator.client, "alice");
}

TEST_F(ApRequestTest, ExpiredTicketRejected) {
  const util::TimePoint now = 201 * util::kSecond;
  EXPECT_EQ(
      verify_ap_request(make_request(now), server_key_, now, {}).code(),
      util::ErrorCode::kExpired);
}

TEST_F(ApRequestTest, StaleAuthenticatorRejected) {
  const util::TimePoint now = 150 * util::kSecond;
  const ApRequest req = make_request(now - 10 * util::kMinute);
  EXPECT_EQ(verify_ap_request(req, server_key_, now, {}).code(),
            util::ErrorCode::kExpired);
}

TEST_F(ApRequestTest, ClientMismatchRejected) {
  const util::TimePoint now = 150 * util::kSecond;
  const ApRequest req = make_request(now, "mallory");
  EXPECT_EQ(verify_ap_request(req, server_key_, now, {}).code(),
            util::ErrorCode::kProtocolError);
}

TEST_F(ApRequestTest, ReplayRejected) {
  const util::TimePoint now = 150 * util::kSecond;
  ReplayCache cache;
  ApVerifyOptions options;
  options.replay_cache = &cache;
  const ApRequest req = make_request(now);
  EXPECT_TRUE(verify_ap_request(req, server_key_, now, options).is_ok());
  EXPECT_EQ(verify_ap_request(req, server_key_, now, options).code(),
            util::ErrorCode::kReplay);
}

TEST_F(ApRequestTest, DistinctRequestsNotFlaggedAsReplay) {
  const util::TimePoint now = 150 * util::kSecond;
  ReplayCache cache;
  ApVerifyOptions options;
  options.replay_cache = &cache;
  EXPECT_TRUE(
      verify_ap_request(make_request(now), server_key_, now, options)
          .is_ok());
  EXPECT_TRUE(
      verify_ap_request(make_request(now), server_key_, now, options)
          .is_ok());
}

}  // namespace
}  // namespace rproxy::kdc
