// Property: accounting conserves value (§4).  Random mixes of transfers,
// checks (valid, duplicate, overdrawn) and certifications never create or
// destroy funds: on a single server totals are exactly constant; across
// servers every payor debit is matched by a settlement credit.
#include <gtest/gtest.h>

#include "crypto/random.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using accounting::AccountingServer;
using crypto::DeterministicRng;
using testing::World;

class ConservationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ConservationProperty, SingleServerTotalInvariant) {
  DeterministicRng rng(GetParam());
  World world;
  world.add_principal("alice");
  world.add_principal("bob");
  world.add_principal("bank");

  AccountingServer bank(world.accounting_config("bank"));
  world.net.attach("bank", bank);
  bank.open_account("alice-acct", "alice",
                    accounting::Balances{{"usd", 1000}});
  bank.open_account("bob-acct", "bob", accounting::Balances{{"usd", 500}});

  auto alice = world.accounting_client("alice");
  auto bob = world.accounting_client("bob");

  const auto total = [&] {
    return bank.account("alice-acct")->balances().balance("usd") +
           bank.account("bob-acct")->balances().balance("usd");
  };
  const std::int64_t initial = total();

  std::uint64_t next_ckno = 1;
  for (int op = 0; op < 40; ++op) {
    switch (rng.next_below(4)) {
      case 0: {  // transfer (may fail on funds; either way conserves)
        (void)alice.transfer("bank", "alice-acct", "bob-acct", "usd",
                             rng.next_below(400));
        break;
      }
      case 1: {  // reverse transfer
        (void)bob.transfer("bank", "bob-acct", "alice-acct", "usd",
                           rng.next_below(400));
        break;
      }
      case 2: {  // check alice -> bob, sometimes duplicate number
        const std::uint64_t ckno =
            rng.next_below(4) == 0 && next_ckno > 1
                ? rng.next_below(next_ckno)  // deliberate duplicate
                : next_ckno++;
        const accounting::Check check = accounting::write_check(
            "alice", world.principal("alice").identity,
            AccountId{"bank", "alice-acct"}, "bob", "usd",
            rng.next_below(300), ckno, world.clock.now(), util::kHour);
        (void)bob.endorse_and_deposit("bank", check, "bob-acct");
        break;
      }
      default: {  // certification hold (no value moves, only availability)
        (void)alice.certify("bank", "alice-acct", "bob", "usd",
                            rng.next_below(200), 1'000'000 + next_ckno++,
                            "bob");
        break;
      }
    }
    ASSERT_EQ(total(), initial) << "op " << op << " violated conservation";
    ASSERT_GE(bank.account("alice-acct")->balances().balance("usd"), 0);
    ASSERT_GE(bank.account("bob-acct")->balances().balance("usd"), 0);
  }
}

TEST_P(ConservationProperty, CrossServerFlowsMatch) {
  DeterministicRng rng(GetParam());
  World world;
  world.add_principal("client");
  world.add_principal("merchant");
  world.add_principal("bankA");
  world.add_principal("bankB");

  AccountingServer bankA(world.accounting_config("bankA"));
  AccountingServer bankB(world.accounting_config("bankB"));
  world.net.attach("bankA", bankA);
  world.net.attach("bankB", bankB);
  bankB.open_account("client-acct", "client",
                     accounting::Balances{{"usd", 1000}});
  bankA.open_account("merchant-acct", "merchant");

  auto merchant = world.accounting_client("merchant");

  std::int64_t expected_cleared = 0;
  std::uint64_t ckno = 1;
  for (int op = 0; op < 25; ++op) {
    const std::uint64_t amount = rng.next_below(150);
    const accounting::Check check = accounting::write_check(
        "client", world.principal("client").identity,
        AccountId{"bankB", "client-acct"}, "merchant", "usd", amount,
        ckno++, world.clock.now(), util::kHour);
    auto result =
        merchant.endorse_and_deposit("bankA", check, "merchant-acct");
    if (result.is_ok()) {
      expected_cleared += static_cast<std::int64_t>(amount);
    }

    // Invariants after every operation:
    //  * client's losses equal total cleared;
    //  * merchant's gains equal total cleared;
    //  * bankA's settlement asset at bankB equals total cleared;
    //  * nothing is left provisionally credited (no uncollected residue).
    ASSERT_EQ(bankB.account("client-acct")->balances().balance("usd"),
              1000 - expected_cleared);
    ASSERT_EQ(bankA.account("merchant-acct")->balances().balance("usd"),
              expected_cleared);
    const accounting::Account* peer = bankB.account("peer:bankA");
    ASSERT_EQ(peer == nullptr ? 0 : peer->balances().balance("usd"),
              expected_cleared);
    ASSERT_EQ(bankA.uncollected_total(), 0);
  }
  // With 25 draws of up to 150 against 1000, some checks must have
  // bounced; make sure the property covered both outcomes.
  EXPECT_GT(bankA.checks_bounced() + bankA.checks_cleared(), 0u);
}

TEST_P(ConservationProperty, HoldsNeverExceedBalances) {
  DeterministicRng rng(GetParam());
  World world;
  world.add_principal("client");
  world.add_principal("bank");
  AccountingServer bank(world.accounting_config("bank"));
  world.net.attach("bank", bank);
  bank.open_account("acct", "client", accounting::Balances{{"usd", 300}});
  auto client = world.accounting_client("client");

  for (int i = 0; i < 30; ++i) {
    (void)client.certify("bank", "acct", "payee", "usd",
                         rng.next_below(200), 5000 + i, "payee",
                         world.clock.now() +
                             static_cast<util::Duration>(
                                 rng.next_below(30)) * util::kMinute);
    if (rng.next_below(3) == 0) world.clock.advance(10 * util::kMinute);
    const accounting::Account* acct = bank.account("acct");
    ASSERT_LE(acct->held("usd"), acct->balances().balance("usd"));
    ASSERT_GE(acct->available("usd"), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace rproxy
