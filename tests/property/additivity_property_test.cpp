// Property: restrictions are ADDITIVE (§2, §6.2).  For any chain of
// cascaded proxies and any request, if a prefix of the chain denies the
// request, every extension of the chain denies it too — extending a chain
// can never widen what it permits.  Parameterized over PRNG seeds.
#include <gtest/gtest.h>

#include "core/cascade.hpp"
#include "core/verifier.hpp"
#include "crypto/random.hpp"
#include "testing/env.hpp"

namespace rproxy {
namespace {

using crypto::DeterministicRng;
using testing::World;

core::RestrictionSet random_link_restrictions(DeterministicRng& rng) {
  core::RestrictionSet set;
  if (rng.next_below(3) == 0) {
    set.add(core::QuotaRestriction{"usd", rng.next_below(100)});
  }
  if (rng.next_below(3) == 0) {
    std::vector<core::ObjectRights> rights;
    if (rng.next_below(4) != 0) {
      rights.push_back(core::ObjectRights{
          "/" + std::to_string(rng.next_below(3)),
          rng.next_below(2) == 0 ? std::vector<Operation>{"read"}
                                 : std::vector<Operation>{}});
    }
    set.add(core::AuthorizedRestriction{std::move(rights)});
  }
  if (rng.next_below(4) == 0) {
    set.add(core::IssuedForRestriction{
        {rng.next_below(2) == 0 ? "file-server" : "other-server"}});
  }
  return set;
}

core::RequestContext random_context(DeterministicRng& rng,
                                    util::TimePoint now) {
  core::RequestContext ctx;
  ctx.end_server = "file-server";
  ctx.operation = rng.next_below(2) == 0 ? "read" : "write";
  ctx.object = "/" + std::to_string(rng.next_below(3));
  ctx.amounts = {{"usd", rng.next_below(120)}};
  ctx.now = now;
  ctx.grantor = "alice";
  ctx.credential_expiry = now + util::kHour;
  return ctx;
}

class AdditivityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdditivityProperty, ExtensionNeverWidensPermissions) {
  DeterministicRng rng(GetParam());
  World world;
  world.add_principal("alice");
  world.add_principal("file-server");

  core::ProxyVerifier::Config vc;
  vc.server_name = "file-server";
  vc.server_key = world.principal("file-server").krb_key;
  vc.resolver = &world.resolver;
  vc.pk_root = world.name_server.root_key();
  const core::ProxyVerifier verifier(std::move(vc));

  for (int trial = 0; trial < 10; ++trial) {
    // Build a random chain of 1..5 links; evaluate the same random
    // requests against every prefix.
    core::Proxy proxy = core::grant_pk_proxy(
        "alice", world.principal("alice").identity,
        random_link_restrictions(rng), world.clock.now(), util::kHour);
    std::vector<core::RestrictionSet> prefix_sets;
    {
      auto verified = verifier.verify_chain(proxy.chain, world.clock.now());
      ASSERT_TRUE(verified.is_ok());
      prefix_sets.push_back(verified.value().effective_restrictions);
    }
    const auto links = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < links; ++i) {
      auto extended =
          core::extend_bearer(proxy, random_link_restrictions(rng),
                              world.clock.now(), util::kHour);
      ASSERT_TRUE(extended.is_ok());
      proxy = std::move(extended).value();
      auto verified = verifier.verify_chain(proxy.chain, world.clock.now());
      ASSERT_TRUE(verified.is_ok()) << verified.status();
      prefix_sets.push_back(verified.value().effective_restrictions);
    }

    for (int req = 0; req < 20; ++req) {
      const core::RequestContext base =
          random_context(rng, world.clock.now());
      bool denied_so_far = false;
      for (std::size_t len = 0; len < prefix_sets.size(); ++len) {
        core::RequestContext ctx = base;  // fresh copy per evaluation
        const bool allowed = prefix_sets[len].evaluate(ctx).is_ok();
        if (denied_so_far) {
          EXPECT_FALSE(allowed)
              << "chain extension WIDENED permissions at prefix " << len;
        }
        denied_so_far = denied_so_far || !allowed;
      }
    }
  }
}

TEST_P(AdditivityProperty, EffectiveSetIsConcatenationOfLinks) {
  DeterministicRng rng(GetParam());
  World world;
  world.add_principal("alice");
  world.add_principal("file-server");

  core::ProxyVerifier::Config vc;
  vc.server_name = "file-server";
  vc.server_key = world.principal("file-server").krb_key;
  vc.resolver = &world.resolver;
  vc.pk_root = world.name_server.root_key();
  const core::ProxyVerifier verifier(std::move(vc));

  core::RestrictionSet expected = random_link_restrictions(rng);
  core::Proxy proxy =
      core::grant_pk_proxy("alice", world.principal("alice").identity,
                           expected, world.clock.now(), util::kHour);
  for (int i = 0; i < 4; ++i) {
    const core::RestrictionSet added = random_link_restrictions(rng);
    expected = expected.merged(added);
    auto extended = core::extend_bearer(proxy, added, world.clock.now(),
                                        util::kHour);
    ASSERT_TRUE(extended.is_ok());
    proxy = std::move(extended).value();
  }
  auto verified = verifier.verify_chain(proxy.chain, world.clock.now());
  ASSERT_TRUE(verified.is_ok());
  EXPECT_EQ(verified.value().effective_restrictions, expected);
}

TEST_P(AdditivityProperty, MergedSetEvaluationEqualsConjunction) {
  // evaluate(A merged B) == evaluate(A) && evaluate(B) for contexts
  // without stateful restrictions (no accept-once in generated sets).
  DeterministicRng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const core::RestrictionSet a = random_link_restrictions(rng);
    const core::RestrictionSet b = random_link_restrictions(rng);
    const core::RequestContext base = random_context(rng, 0);

    core::RequestContext ctx_a = base;
    core::RequestContext ctx_b = base;
    core::RequestContext ctx_ab = base;
    const bool allowed_a = a.evaluate(ctx_a).is_ok();
    const bool allowed_b = b.evaluate(ctx_b).is_ok();
    const bool allowed_ab = a.merged(b).evaluate(ctx_ab).is_ok();
    EXPECT_EQ(allowed_ab, allowed_a && allowed_b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdditivityProperty,
                         ::testing::Values(7, 11, 13, 17, 19, 23, 29, 31));

}  // namespace
}  // namespace rproxy
