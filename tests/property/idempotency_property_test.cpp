// Property: delivering the SAME kCheckDeposit envelope twice (a network
// duplicate — same challenge, same proof, same bytes) yields byte-identical
// replies and moves money exactly once.  Randomized over seeds so the
// property holds across amounts and check numbers, not one lucky example.
#include <gtest/gtest.h>

#include "core/request.hpp"
#include "testing/env.hpp"
#include "util/rng.hpp"

namespace rproxy {
namespace {

using testing::World;

struct EmptyPayload {
  void encode(wire::Encoder&) const {}
  static EmptyPayload decode(wire::Decoder&) { return {}; }
};

struct ChallengeReply {
  std::uint64_t id = 0;
  util::Bytes nonce;

  void encode(wire::Encoder& enc) const {
    enc.u64(id);
    enc.bytes(nonce);
  }
  static ChallengeReply decode(wire::Decoder& dec) {
    ChallengeReply c;
    c.id = dec.u64();
    c.nonce = dec.bytes();
    return c;
  }
};

/// Builds the exact kCheckDeposit envelope AccountingClient would send —
/// fresh challenge, possession proof bound to it — so the test controls
/// redelivery at the byte level.
net::Envelope build_deposit_envelope(World& world,
                                     accounting::AccountingServer& bank,
                                     const PrincipalName& depositor,
                                     const accounting::Check& endorsed,
                                     const std::string& collect_account) {
  auto challenge = net::call<ChallengeReply>(
      world.net, depositor, bank.name(),
      net::MsgType::kPresentChallengeRequest,
      net::MsgType::kPresentChallengeReply, EmptyPayload{});
  EXPECT_TRUE(challenge.is_ok()) << challenge.status();

  accounting::DepositPayload req;
  req.challenge_id = challenge.value().id;
  req.check = endorsed;
  req.collect_account = collect_account;
  req.amount = endorsed.amount;
  req.identity = core::prove_delegate_pk(
      world.principal(depositor).cert, world.principal(depositor).identity,
      challenge.value().nonce, bank.name(), world.clock.now(),
      core::request_digest("deposit", collect_account,
                           {{endorsed.currency, endorsed.amount}}));

  net::Envelope env;
  env.from = depositor;
  env.to = bank.name();
  env.type = net::MsgType::kCheckDeposit;
  env.payload = wire::encode_to_bytes(req);
  return env;
}

TEST(IdempotencyProperty, VerbatimDuplicateDepositsReplayByteIdentically) {
  World world;
  world.add_principal("client");
  world.add_principal("merchant");
  world.add_principal("bank");
  accounting::AccountingServer bank(world.accounting_config("bank"));
  world.net.attach("bank", bank);
  bank.open_account("client-acct", "client",
                    accounting::Balances{{"usd", 100000}});
  bank.open_account("merchant-acct", "merchant");

  util::Rng rng(20260806);
  std::int64_t expected_merchant = 0;
  for (int i = 0; i < 12; ++i) {
    SCOPED_TRACE("check " + std::to_string(i + 1));
    const auto amount = static_cast<std::uint64_t>(rng.range(1, 500));
    const accounting::Check check = accounting::write_check(
        "client", world.principal("client").identity,
        AccountId{"bank", "client-acct"}, "merchant", "usd", amount,
        /*check_number=*/static_cast<std::uint64_t>(i + 1),
        world.clock.now(), util::kHour);
    auto endorsed =
        accounting::endorse_check(check, "merchant",
                                  world.principal("merchant").identity,
                                  "bank", world.clock.now());
    ASSERT_TRUE(endorsed.is_ok()) << endorsed.status();

    const net::Envelope env = build_deposit_envelope(
        world, bank, "merchant", endorsed.value(), "merchant-acct");

    const net::Envelope first = bank.handle(env);
    ASSERT_EQ(first.type, net::MsgType::kDepositReply)
        << net::status_of(first);
    expected_merchant += static_cast<std::int64_t>(amount);
    EXPECT_EQ(bank.account("merchant-acct")->balances().balance("usd"),
              expected_merchant);

    // Redeliver the identical bytes a random 1..3 more times.
    const auto dups = static_cast<std::uint64_t>(rng.range(1, 3));
    for (std::uint64_t d = 0; d < dups; ++d) {
      const net::Envelope again = bank.handle(env);
      EXPECT_EQ(again.type, first.type);
      EXPECT_EQ(again.payload, first.payload);  // byte-identical replay
    }
    // No double credit, no double debit.
    EXPECT_EQ(bank.account("merchant-acct")->balances().balance("usd"),
              expected_merchant);
    EXPECT_EQ(bank.account("client-acct")->balances().balance("usd"),
              100000 - expected_merchant);
  }
  EXPECT_EQ(bank.checks_cleared(), 12u);
  EXPECT_GE(bank.deduped_replies(), 12u);
}

TEST(IdempotencyProperty, RetriedCertifyReplaysWithoutDoubleHold) {
  World world;
  world.add_principal("client");
  world.add_principal("bank");
  accounting::AccountingServer bank(world.accounting_config("bank"));
  world.net.attach("bank", bank);
  bank.open_account("client-acct", "client",
                    accounting::Balances{{"usd", 100}});

  // A retried certify uses a FRESH challenge (single-use), so idempotency
  // must come from the server's certify dedup table, keyed on the
  // authenticated payor + check number.
  auto client = world.accounting_client("client");
  auto first = client.certify("bank", "client-acct", "merchant", "usd", 40,
                              /*check_number=*/7, "shop");
  ASSERT_TRUE(first.is_ok()) << first.status();
  auto second = client.certify("bank", "client-acct", "merchant", "usd", 40,
                               /*check_number=*/7, "shop");
  ASSERT_TRUE(second.is_ok()) << second.status();

  EXPECT_EQ(wire::encode_to_bytes(first.value()),
            wire::encode_to_bytes(second.value()));
  EXPECT_EQ(bank.deduped_replies(), 1u);
  // The hold was placed once: 100 - 40 leaves 60 spendable.
  auto query = client.query("bank", "client-acct");
  ASSERT_TRUE(query.is_ok()) << query.status();
  EXPECT_EQ(query.value().held.balance("usd"), 40);
  EXPECT_EQ(query.value().balances.balance("usd"), 100);
}

TEST(IdempotencyProperty, DedupDisabledRejectsDuplicateAsReplay) {
  // Control: with dedup off, the second delivery must NOT clear again —
  // the accept-once check number still protects the money — but the
  // caller gets an error instead of its answer.
  World world;
  world.add_principal("client");
  world.add_principal("merchant");
  world.add_principal("bank");
  auto config = world.accounting_config("bank");
  config.enable_dedup = false;
  accounting::AccountingServer bank(std::move(config));
  world.net.attach("bank", bank);
  bank.open_account("client-acct", "client",
                    accounting::Balances{{"usd", 100}});
  bank.open_account("merchant-acct", "merchant");

  const accounting::Check check = accounting::write_check(
      "client", world.principal("client").identity,
      AccountId{"bank", "client-acct"}, "merchant", "usd", 25, 1,
      world.clock.now(), util::kHour);
  auto endorsed = accounting::endorse_check(
      check, "merchant", world.principal("merchant").identity, "bank",
      world.clock.now());
  ASSERT_TRUE(endorsed.is_ok()) << endorsed.status();

  const net::Envelope env = build_deposit_envelope(
      world, bank, "merchant", endorsed.value(), "merchant-acct");
  EXPECT_EQ(bank.handle(env).type, net::MsgType::kDepositReply);
  EXPECT_EQ(bank.handle(env).type, net::MsgType::kError);
  EXPECT_EQ(bank.account("merchant-acct")->balances().balance("usd"), 25);
  EXPECT_EQ(bank.deduped_replies(), 0u);
}

}  // namespace
}  // namespace rproxy
