// Property: every codec in the system round-trips arbitrary values, and
// encoding is deterministic (same value -> same octets), which the
// signature scheme depends on.  Parameterized over PRNG seeds.
#include <gtest/gtest.h>

#include "accounting/check.hpp"
#include "core/restriction_set.hpp"
#include "crypto/random.hpp"
#include "kdc/ticket.hpp"
#include "server/end_server.hpp"

namespace rproxy {
namespace {

using crypto::DeterministicRng;

std::string random_name(DeterministicRng& rng) {
  static constexpr const char* kNames[] = {
      "alice", "bob", "carol", "file-server", "print-server",
      "authz",  "gs",  "bank1", "bank2",       "kdc"};
  return kNames[rng.next_below(std::size(kNames))];
}

core::Restriction random_restriction(DeterministicRng& rng, int depth = 0) {
  switch (rng.next_below(depth > 1 ? 7 : 8)) {
    case 0: {
      core::GranteeRestriction r;
      const auto n = 1 + rng.next_below(3);
      for (std::uint64_t i = 0; i < n; ++i) r.delegates.push_back(random_name(rng));
      r.required = 1 + static_cast<std::uint32_t>(rng.next_below(n));
      return r;
    }
    case 1: {
      core::ForUseByGroupRestriction r;
      const auto n = 1 + rng.next_below(3);
      for (std::uint64_t i = 0; i < n; ++i) {
        r.groups.push_back(GroupName{random_name(rng), random_name(rng)});
      }
      r.required = 1;
      return r;
    }
    case 2: {
      core::IssuedForRestriction r;
      r.servers.push_back(random_name(rng));
      return r;
    }
    case 3:
      return core::QuotaRestriction{random_name(rng), rng.next_u64()};
    case 4: {
      core::AuthorizedRestriction r;
      const auto n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        core::ObjectRights rights;
        rights.object = "/" + random_name(rng);
        if (rng.next_below(2) == 0) rights.operations = {"read", "write"};
        r.rights.push_back(rights);
      }
      return r;
    }
    case 5: {
      core::GroupMembershipRestriction r;
      r.groups.push_back(GroupName{random_name(rng), random_name(rng)});
      return r;
    }
    case 6:
      return core::AcceptOnceRestriction{rng.next_u64()};
    default: {
      core::LimitRestriction r;
      r.servers.push_back(random_name(rng));
      const auto n = 1 + rng.next_below(2);
      for (std::uint64_t i = 0; i < n; ++i) {
        r.inner.push_back(random_restriction(rng, depth + 1));
      }
      return r;
    }
  }
}

core::RestrictionSet random_set(DeterministicRng& rng) {
  core::RestrictionSet set;
  const auto n = rng.next_below(6);
  for (std::uint64_t i = 0; i < n; ++i) set.add(random_restriction(rng));
  return set;
}

class RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripProperty, RestrictionSet) {
  DeterministicRng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const core::RestrictionSet set = random_set(rng);
    const util::Bytes encoded = wire::encode_to_bytes(set);
    auto decoded = wire::decode_from_bytes<core::RestrictionSet>(encoded);
    ASSERT_TRUE(decoded.is_ok()) << decoded.status();
    EXPECT_EQ(decoded.value(), set);
    // Determinism: re-encoding yields identical octets.
    EXPECT_EQ(wire::encode_to_bytes(decoded.value()), encoded);
  }
}

TEST_P(RoundTripProperty, TicketBody) {
  DeterministicRng rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    kdc::TicketBody body;
    body.client = random_name(rng);
    body.server = random_name(rng);
    body.session_key = crypto::SymmetricKey::generate();
    body.auth_time = static_cast<util::TimePoint>(rng.next_below(1u << 30));
    body.expires_at = body.auth_time +
                      static_cast<util::TimePoint>(rng.next_below(1u << 30));
    body.authorization_data = random_set(rng).to_blobs();

    const util::Bytes encoded = wire::encode_to_bytes(body);
    auto decoded = wire::decode_from_bytes<kdc::TicketBody>(encoded);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value().client, body.client);
    EXPECT_EQ(decoded.value().authorization_data, body.authorization_data);
    EXPECT_EQ(wire::encode_to_bytes(decoded.value()), encoded);
  }
}

TEST_P(RoundTripProperty, ProxyCertificate) {
  DeterministicRng rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    core::ProxyCertificate cert;
    cert.grantor = random_name(rng);
    cert.serial = rng.next_u64();
    cert.issued_at = static_cast<util::TimePoint>(rng.next_below(1u << 30));
    cert.expires_at = cert.issued_at + 1000;
    cert.restrictions = random_set(rng);
    cert.mode = rng.next_below(2) == 0 ? core::ProxyMode::kPublicKey
                                       : core::ProxyMode::kSymmetric;
    cert.proxy_key_material = rng.next_bytes(32);
    cert.signer = core::SignerKind::kGrantorIdentity;
    cert.signature = rng.next_bytes(64);

    const util::Bytes encoded = wire::encode_to_bytes(cert);
    auto decoded = wire::decode_from_bytes<core::ProxyCertificate>(encoded);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(wire::encode_to_bytes(decoded.value()), encoded);
    EXPECT_EQ(decoded.value().restrictions, cert.restrictions);
  }
}

TEST_P(RoundTripProperty, AppRequestPayload) {
  DeterministicRng rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    server::AppRequestPayload req;
    req.operation = random_name(rng);
    req.object = "/" + random_name(rng);
    req.amounts[random_name(rng)] = rng.next_u64();
    req.args = rng.next_bytes(rng.next_below(64));
    req.challenge_id = rng.next_u64();

    const util::Bytes encoded = wire::encode_to_bytes(req);
    auto decoded =
        wire::decode_from_bytes<server::AppRequestPayload>(encoded);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value().operation, req.operation);
    EXPECT_EQ(decoded.value().amounts, req.amounts);
    EXPECT_EQ(wire::encode_to_bytes(decoded.value()), encoded);
    // Request digests agree between the two sides.
    EXPECT_EQ(decoded.value().digest(), req.digest());
  }
}

TEST_P(RoundTripProperty, Check) {
  DeterministicRng rng(GetParam());
  const crypto::SigningKeyPair key = crypto::SigningKeyPair::generate();
  for (int i = 0; i < 5; ++i) {
    const accounting::Check check = accounting::write_check(
        random_name(rng), key,
        AccountId{random_name(rng), random_name(rng)}, random_name(rng),
        random_name(rng), rng.next_u64() % 100000, rng.next_u64(),
        static_cast<util::TimePoint>(rng.next_below(1u << 30)),
        util::kHour);
    const util::Bytes encoded = wire::encode_to_bytes(check);
    auto decoded = wire::decode_from_bytes<accounting::Check>(encoded);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(wire::encode_to_bytes(decoded.value()), encoded);
    EXPECT_EQ(decoded.value().check_number, check.check_number);
  }
}

TEST_P(RoundTripProperty, DecodedSetEvaluatesIdentically) {
  // Semantic round trip: a decoded restriction set must make exactly the
  // same decisions as the original on arbitrary requests.
  DeterministicRng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const core::RestrictionSet original = random_set(rng);
    auto decoded = wire::decode_from_bytes<core::RestrictionSet>(
        wire::encode_to_bytes(original));
    ASSERT_TRUE(decoded.is_ok());

    for (int req = 0; req < 20; ++req) {
      core::RequestContext a;
      a.end_server = random_name(rng);
      a.operation = rng.next_below(2) == 0 ? "read" : "write";
      a.object = "/" + random_name(rng);
      a.amounts = {{random_name(rng), rng.next_below(1000)}};
      a.now = 1000;
      a.effective_identities = {random_name(rng)};
      a.asserted_groups = {GroupName{random_name(rng), random_name(rng)}};
      a.grantor = "alice";
      a.credential_expiry = 2000;
      core::RequestContext b = a;
      // accept-once needs a cache; give each side its own fresh one so
      // statefulness cannot couple the two evaluations.
      core::AcceptOnceCache cache_a, cache_b;
      a.accept_once = &cache_a;
      b.accept_once = &cache_b;
      EXPECT_EQ(original.evaluate(a).is_ok(),
                decoded.value().evaluate(b).is_ok());
    }
  }
}

TEST_P(RoundTripProperty, TruncationAlwaysFailsCleanly) {
  // Any truncation of a valid encoding must produce a parse error, never a
  // crash or a silently different value.
  DeterministicRng rng(GetParam());
  const core::RestrictionSet set = random_set(rng);
  const util::Bytes encoded = wire::encode_to_bytes(set);
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    const util::BytesView prefix(encoded.data(), cut);
    auto decoded = wire::decode_from_bytes<core::RestrictionSet>(prefix);
    if (decoded.is_ok()) {
      // Only acceptable if the prefix re-encodes to itself (e.g. empty set
      // prefix of something beginning identically) — which cannot happen
      // for a strict prefix of a deterministic encoding with trailing
      // checks, so:
      ADD_FAILURE() << "truncated decode unexpectedly succeeded at " << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace rproxy
