// Property: shipped ⊆ fsynced.  For every seeded crash point in the
// primary's append path, the standby's replicated watermark never exceeds
// the primary's durable LSN — at every step, including the step the
// primary dies — and re-shipping from an older watermark is idempotent.
// Failures print the seed; replay with CHAOS_SEED=<n>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "accounting/clearing.hpp"
#include "accounting/replication/journal_shipper.hpp"
#include "accounting/replication/standby.hpp"
#include "storage/crash_point.hpp"
#include "testing/env.hpp"
#include "testing/tempdir.hpp"
#include "util/rng.hpp"

namespace rproxy {
namespace {

using accounting::AccountingServer;
using accounting::Balances;
using accounting::replication::JournalShipper;
using accounting::replication::StandbyReplayer;
using rproxy::testing::World;

std::vector<std::uint64_t> seed_matrix(std::uint64_t upto) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= upto; ++s) seeds.push_back(s);
  if (const char* env = std::getenv("CHAOS_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }
  return seeds;
}

std::int64_t replica_balance(const AccountingServer& server,
                             const std::string& account) {
  const auto* acct = server.account(account);
  return acct == nullptr ? -1 : acct->balances().balance("usd");
}

TEST(ReplicationLsnProperty, ReplicatedWatermarkNeverPassesDurable) {
  int crashes = 0;
  for (const std::uint64_t seed : seed_matrix(24)) {
    SCOPED_TRACE("replay with CHAOS_SEED=" + std::to_string(seed));
    World world;
    rproxy::testing::TempDir tmp;
    const crypto::SymmetricKey key = crypto::SymmetricKey::generate();
    world.add_principal("bank");
    world.add_principal("bankb");
    world.add_principal("alice");

    storage::CrashPoint crash;
    auto config = world.accounting_config("bank");
    config.storage_dir = tmp.sub("bank");
    config.storage_key = key;
    // Batched fsync keeps a live gap between appended and durable, so the
    // "never ship past the fsync watermark" half of the property has
    // something to bite on.
    config.fsync_policy = storage::FsyncPolicy::kBatch;
    config.fsync_batch_records = 3;
    config.crash_point = &crash;
    AccountingServer primary(std::move(config));
    ASSERT_TRUE(primary.recover().is_ok());
    world.net.attach("bank", primary);
    primary.open_account("a1", "alice", Balances{{"usd", 100000}});
    primary.open_account("a2", "alice", Balances{{"usd", 100000}});
    if (seed % 3 == 0) {
      // Compacted prefix: the standby must bootstrap from the snapshot.
      ASSERT_TRUE(primary.checkpoint().is_ok());
    }

    AccountingServer replica(world.accounting_config("bankb"));
    StandbyReplayer::Config rc;
    rc.name = "bankb";
    rc.primary = "bank";
    rc.server = &replica;
    rc.clock = &world.clock;
    rc.storage_key = key;
    StandbyReplayer standby(std::move(rc));
    world.net.attach("bankb", standby);
    JournalShipper::Config sc;
    sc.primary = &primary;
    sc.net = &world.net;
    sc.standbys = {"bankb"};
    JournalShipper shipper(std::move(sc));

    storage::CrashPlan plan;
    plan.seed = seed * 17 + 3;
    plan.min_appends = 1;
    plan.max_appends = 12;
    plan.tear_mid_write = (seed % 2) == 0;
    crash.arm(plan);

    auto client = world.accounting_client("alice");
    util::Rng rng(seed);
    const auto check_invariant = [&] {
      const std::uint64_t durable = primary.journal_durable_lsn();
      ASSERT_LE(standby.received_lsn(), durable);
      ASSERT_LE(standby.applied_lsn(), standby.received_lsn());
      ASSERT_LE(standby.primary_durable_lsn(), durable);
    };
    for (int i = 0; i < 40 && !primary.storage_dead(); ++i) {
      const auto amount = static_cast<std::uint64_t>(rng.range(1, 9));
      // The crash point fires inside these appends; outcomes don't matter,
      // the invariant below does.
      (void)client.transfer("bank", i % 2 == 0 ? "a1" : "a2",
                            i % 2 == 0 ? "a2" : "a1", "usd", amount);
      (void)shipper.ship_once();
      check_invariant();
    }
    if (primary.storage_dead()) crashes += 1;
    // One more round after the (possible) crash: the committed tail can
    // still drain, but never past what was fsynced before death.
    (void)shipper.ship_once();
    check_invariant();

    // Resend idempotence: forget half the acked prefix and re-ship.  The
    // standby skips every frame at or below its watermark — state and
    // watermark end exactly where they were.
    const std::uint64_t received_before = standby.received_lsn();
    const std::int64_t a1 = replica_balance(replica, "a1");
    const std::int64_t a2 = replica_balance(replica, "a2");
    shipper.rewind("bankb", received_before / 2);
    (void)shipper.ship_once();
    (void)shipper.ship_once();
    EXPECT_EQ(standby.received_lsn(), received_before);
    EXPECT_EQ(replica_balance(replica, "a1"), a1);
    EXPECT_EQ(replica_balance(replica, "a2"), a2);
    EXPECT_EQ(standby.apply_failures(), 0u);
  }
  // The matrix must actually kill primaries mid-shipping, or the property
  // was never tested at a crash point.
  EXPECT_GE(crashes, 8);
}

}  // namespace
}  // namespace rproxy
