file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_workload.dir/bench_t5_workload.cpp.o"
  "CMakeFiles/bench_t5_workload.dir/bench_t5_workload.cpp.o.d"
  "bench_t5_workload"
  "bench_t5_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
