# Empty dependencies file for bench_t5_workload.
# This may be replaced when dependencies are built.
