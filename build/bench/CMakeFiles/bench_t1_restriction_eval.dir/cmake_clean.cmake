file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_restriction_eval.dir/bench_t1_restriction_eval.cpp.o"
  "CMakeFiles/bench_t1_restriction_eval.dir/bench_t1_restriction_eval.cpp.o.d"
  "bench_t1_restriction_eval"
  "bench_t1_restriction_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_restriction_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
