# Empty dependencies file for bench_t1_restriction_eval.
# This may be replaced when dependencies are built.
