# Empty dependencies file for bench_fig4_cascaded_proxies.
# This may be replaced when dependencies are built.
