file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cascaded_proxies.dir/bench_fig4_cascaded_proxies.cpp.o"
  "CMakeFiles/bench_fig4_cascaded_proxies.dir/bench_fig4_cascaded_proxies.cpp.o.d"
  "bench_fig4_cascaded_proxies"
  "bench_fig4_cascaded_proxies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cascaded_proxies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
