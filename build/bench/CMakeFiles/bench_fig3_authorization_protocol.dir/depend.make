# Empty dependencies file for bench_fig3_authorization_protocol.
# This may be replaced when dependencies are built.
