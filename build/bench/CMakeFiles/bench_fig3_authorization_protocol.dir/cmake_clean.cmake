file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_authorization_protocol.dir/bench_fig3_authorization_protocol.cpp.o"
  "CMakeFiles/bench_fig3_authorization_protocol.dir/bench_fig3_authorization_protocol.cpp.o.d"
  "bench_fig3_authorization_protocol"
  "bench_fig3_authorization_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_authorization_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
