file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_service_layering.dir/bench_fig2_service_layering.cpp.o"
  "CMakeFiles/bench_fig2_service_layering.dir/bench_fig2_service_layering.cpp.o.d"
  "bench_fig2_service_layering"
  "bench_fig2_service_layering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_service_layering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
