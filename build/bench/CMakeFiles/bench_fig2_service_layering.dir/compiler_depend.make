# Empty compiler generated dependencies file for bench_fig2_service_layering.
# This may be replaced when dependencies are built.
