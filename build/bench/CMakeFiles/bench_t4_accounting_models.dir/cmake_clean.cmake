file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_accounting_models.dir/bench_t4_accounting_models.cpp.o"
  "CMakeFiles/bench_t4_accounting_models.dir/bench_t4_accounting_models.cpp.o.d"
  "bench_t4_accounting_models"
  "bench_t4_accounting_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_accounting_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
