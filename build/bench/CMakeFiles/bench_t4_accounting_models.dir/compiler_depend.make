# Empty compiler generated dependencies file for bench_t4_accounting_models.
# This may be replaced when dependencies are built.
