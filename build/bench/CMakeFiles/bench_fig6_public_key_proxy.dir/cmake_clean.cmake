file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_public_key_proxy.dir/bench_fig6_public_key_proxy.cpp.o"
  "CMakeFiles/bench_fig6_public_key_proxy.dir/bench_fig6_public_key_proxy.cpp.o.d"
  "bench_fig6_public_key_proxy"
  "bench_fig6_public_key_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_public_key_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
