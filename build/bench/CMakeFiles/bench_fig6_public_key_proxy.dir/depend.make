# Empty dependencies file for bench_fig6_public_key_proxy.
# This may be replaced when dependencies are built.
