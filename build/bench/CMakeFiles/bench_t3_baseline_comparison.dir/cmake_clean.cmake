file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_baseline_comparison.dir/bench_t3_baseline_comparison.cpp.o"
  "CMakeFiles/bench_t3_baseline_comparison.dir/bench_t3_baseline_comparison.cpp.o.d"
  "bench_t3_baseline_comparison"
  "bench_t3_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
