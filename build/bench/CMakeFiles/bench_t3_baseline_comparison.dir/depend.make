# Empty dependencies file for bench_t3_baseline_comparison.
# This may be replaced when dependencies are built.
