# Empty dependencies file for bench_fig1_restricted_proxy.
# This may be replaced when dependencies are built.
