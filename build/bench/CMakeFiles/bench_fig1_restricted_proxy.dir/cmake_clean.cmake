file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_restricted_proxy.dir/bench_fig1_restricted_proxy.cpp.o"
  "CMakeFiles/bench_fig1_restricted_proxy.dir/bench_fig1_restricted_proxy.cpp.o.d"
  "bench_fig1_restricted_proxy"
  "bench_fig1_restricted_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_restricted_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
