
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_t6_concurrent_dispatch.cpp" "bench/CMakeFiles/bench_t6_concurrent_dispatch.dir/bench_t6_concurrent_dispatch.cpp.o" "gcc" "bench/CMakeFiles/bench_t6_concurrent_dispatch.dir/bench_t6_concurrent_dispatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rproxy_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_authz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_kdc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
