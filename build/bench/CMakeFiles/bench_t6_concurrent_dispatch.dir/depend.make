# Empty dependencies file for bench_t6_concurrent_dispatch.
# This may be replaced when dependencies are built.
