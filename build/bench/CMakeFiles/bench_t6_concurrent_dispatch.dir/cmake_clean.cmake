file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_concurrent_dispatch.dir/bench_t6_concurrent_dispatch.cpp.o"
  "CMakeFiles/bench_t6_concurrent_dispatch.dir/bench_t6_concurrent_dispatch.cpp.o.d"
  "bench_t6_concurrent_dispatch"
  "bench_t6_concurrent_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_concurrent_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
