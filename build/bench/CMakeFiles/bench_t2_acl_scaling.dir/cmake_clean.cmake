file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_acl_scaling.dir/bench_t2_acl_scaling.cpp.o"
  "CMakeFiles/bench_t2_acl_scaling.dir/bench_t2_acl_scaling.cpp.o.d"
  "bench_t2_acl_scaling"
  "bench_t2_acl_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_acl_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
