# Empty dependencies file for bench_t2_acl_scaling.
# This may be replaced when dependencies are built.
