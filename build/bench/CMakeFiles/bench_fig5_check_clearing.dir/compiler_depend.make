# Empty compiler generated dependencies file for bench_fig5_check_clearing.
# This may be replaced when dependencies are built.
