file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_check_clearing.dir/bench_fig5_check_clearing.cpp.o"
  "CMakeFiles/bench_fig5_check_clearing.dir/bench_fig5_check_clearing.cpp.o.d"
  "bench_fig5_check_clearing"
  "bench_fig5_check_clearing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_check_clearing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
