# Empty dependencies file for rproxy_wire.
# This may be replaced when dependencies are built.
