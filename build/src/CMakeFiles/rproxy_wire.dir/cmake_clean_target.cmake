file(REMOVE_RECURSE
  "librproxy_wire.a"
)
