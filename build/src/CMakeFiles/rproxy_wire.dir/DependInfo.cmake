
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/decoder.cpp" "src/CMakeFiles/rproxy_wire.dir/wire/decoder.cpp.o" "gcc" "src/CMakeFiles/rproxy_wire.dir/wire/decoder.cpp.o.d"
  "/root/repo/src/wire/encoder.cpp" "src/CMakeFiles/rproxy_wire.dir/wire/encoder.cpp.o" "gcc" "src/CMakeFiles/rproxy_wire.dir/wire/encoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rproxy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
