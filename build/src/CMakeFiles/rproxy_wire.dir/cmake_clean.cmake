file(REMOVE_RECURSE
  "CMakeFiles/rproxy_wire.dir/wire/decoder.cpp.o"
  "CMakeFiles/rproxy_wire.dir/wire/decoder.cpp.o.d"
  "CMakeFiles/rproxy_wire.dir/wire/encoder.cpp.o"
  "CMakeFiles/rproxy_wire.dir/wire/encoder.cpp.o.d"
  "librproxy_wire.a"
  "librproxy_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
