# Empty compiler generated dependencies file for rproxy_baseline.
# This may be replaced when dependencies are built.
