file(REMOVE_RECURSE
  "librproxy_baseline.a"
)
