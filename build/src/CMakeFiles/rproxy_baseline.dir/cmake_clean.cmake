file(REMOVE_RECURSE
  "CMakeFiles/rproxy_baseline.dir/baseline/dssa_roles.cpp.o"
  "CMakeFiles/rproxy_baseline.dir/baseline/dssa_roles.cpp.o.d"
  "CMakeFiles/rproxy_baseline.dir/baseline/plain_capability.cpp.o"
  "CMakeFiles/rproxy_baseline.dir/baseline/plain_capability.cpp.o.d"
  "CMakeFiles/rproxy_baseline.dir/baseline/prepaid_bank.cpp.o"
  "CMakeFiles/rproxy_baseline.dir/baseline/prepaid_bank.cpp.o.d"
  "CMakeFiles/rproxy_baseline.dir/baseline/pull_authorization.cpp.o"
  "CMakeFiles/rproxy_baseline.dir/baseline/pull_authorization.cpp.o.d"
  "CMakeFiles/rproxy_baseline.dir/baseline/sollins.cpp.o"
  "CMakeFiles/rproxy_baseline.dir/baseline/sollins.cpp.o.d"
  "librproxy_baseline.a"
  "librproxy_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
