file(REMOVE_RECURSE
  "librproxy_kdc.a"
)
