# Empty dependencies file for rproxy_kdc.
# This may be replaced when dependencies are built.
