file(REMOVE_RECURSE
  "CMakeFiles/rproxy_kdc.dir/kdc/authenticator.cpp.o"
  "CMakeFiles/rproxy_kdc.dir/kdc/authenticator.cpp.o.d"
  "CMakeFiles/rproxy_kdc.dir/kdc/kdc_client.cpp.o"
  "CMakeFiles/rproxy_kdc.dir/kdc/kdc_client.cpp.o.d"
  "CMakeFiles/rproxy_kdc.dir/kdc/kdc_server.cpp.o"
  "CMakeFiles/rproxy_kdc.dir/kdc/kdc_server.cpp.o.d"
  "CMakeFiles/rproxy_kdc.dir/kdc/principal_db.cpp.o"
  "CMakeFiles/rproxy_kdc.dir/kdc/principal_db.cpp.o.d"
  "CMakeFiles/rproxy_kdc.dir/kdc/replay_cache.cpp.o"
  "CMakeFiles/rproxy_kdc.dir/kdc/replay_cache.cpp.o.d"
  "CMakeFiles/rproxy_kdc.dir/kdc/ticket.cpp.o"
  "CMakeFiles/rproxy_kdc.dir/kdc/ticket.cpp.o.d"
  "librproxy_kdc.a"
  "librproxy_kdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_kdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
