
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kdc/authenticator.cpp" "src/CMakeFiles/rproxy_kdc.dir/kdc/authenticator.cpp.o" "gcc" "src/CMakeFiles/rproxy_kdc.dir/kdc/authenticator.cpp.o.d"
  "/root/repo/src/kdc/kdc_client.cpp" "src/CMakeFiles/rproxy_kdc.dir/kdc/kdc_client.cpp.o" "gcc" "src/CMakeFiles/rproxy_kdc.dir/kdc/kdc_client.cpp.o.d"
  "/root/repo/src/kdc/kdc_server.cpp" "src/CMakeFiles/rproxy_kdc.dir/kdc/kdc_server.cpp.o" "gcc" "src/CMakeFiles/rproxy_kdc.dir/kdc/kdc_server.cpp.o.d"
  "/root/repo/src/kdc/principal_db.cpp" "src/CMakeFiles/rproxy_kdc.dir/kdc/principal_db.cpp.o" "gcc" "src/CMakeFiles/rproxy_kdc.dir/kdc/principal_db.cpp.o.d"
  "/root/repo/src/kdc/replay_cache.cpp" "src/CMakeFiles/rproxy_kdc.dir/kdc/replay_cache.cpp.o" "gcc" "src/CMakeFiles/rproxy_kdc.dir/kdc/replay_cache.cpp.o.d"
  "/root/repo/src/kdc/ticket.cpp" "src/CMakeFiles/rproxy_kdc.dir/kdc/ticket.cpp.o" "gcc" "src/CMakeFiles/rproxy_kdc.dir/kdc/ticket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rproxy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
