file(REMOVE_RECURSE
  "librproxy_crypto.a"
)
