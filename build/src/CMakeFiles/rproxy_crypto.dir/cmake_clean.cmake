file(REMOVE_RECURSE
  "CMakeFiles/rproxy_crypto.dir/crypto/aead.cpp.o"
  "CMakeFiles/rproxy_crypto.dir/crypto/aead.cpp.o.d"
  "CMakeFiles/rproxy_crypto.dir/crypto/digest.cpp.o"
  "CMakeFiles/rproxy_crypto.dir/crypto/digest.cpp.o.d"
  "CMakeFiles/rproxy_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/rproxy_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/rproxy_crypto.dir/crypto/keys.cpp.o"
  "CMakeFiles/rproxy_crypto.dir/crypto/keys.cpp.o.d"
  "CMakeFiles/rproxy_crypto.dir/crypto/random.cpp.o"
  "CMakeFiles/rproxy_crypto.dir/crypto/random.cpp.o.d"
  "CMakeFiles/rproxy_crypto.dir/crypto/signature.cpp.o"
  "CMakeFiles/rproxy_crypto.dir/crypto/signature.cpp.o.d"
  "librproxy_crypto.a"
  "librproxy_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
