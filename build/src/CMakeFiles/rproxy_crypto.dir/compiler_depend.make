# Empty compiler generated dependencies file for rproxy_crypto.
# This may be replaced when dependencies are built.
