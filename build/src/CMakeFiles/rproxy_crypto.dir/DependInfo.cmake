
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cpp" "src/CMakeFiles/rproxy_crypto.dir/crypto/aead.cpp.o" "gcc" "src/CMakeFiles/rproxy_crypto.dir/crypto/aead.cpp.o.d"
  "/root/repo/src/crypto/digest.cpp" "src/CMakeFiles/rproxy_crypto.dir/crypto/digest.cpp.o" "gcc" "src/CMakeFiles/rproxy_crypto.dir/crypto/digest.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/rproxy_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/rproxy_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/keys.cpp" "src/CMakeFiles/rproxy_crypto.dir/crypto/keys.cpp.o" "gcc" "src/CMakeFiles/rproxy_crypto.dir/crypto/keys.cpp.o.d"
  "/root/repo/src/crypto/random.cpp" "src/CMakeFiles/rproxy_crypto.dir/crypto/random.cpp.o" "gcc" "src/CMakeFiles/rproxy_crypto.dir/crypto/random.cpp.o.d"
  "/root/repo/src/crypto/signature.cpp" "src/CMakeFiles/rproxy_crypto.dir/crypto/signature.cpp.o" "gcc" "src/CMakeFiles/rproxy_crypto.dir/crypto/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rproxy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
