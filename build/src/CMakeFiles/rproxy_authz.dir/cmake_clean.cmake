file(REMOVE_RECURSE
  "CMakeFiles/rproxy_authz.dir/authz/acl.cpp.o"
  "CMakeFiles/rproxy_authz.dir/authz/acl.cpp.o.d"
  "CMakeFiles/rproxy_authz.dir/authz/authorization_server.cpp.o"
  "CMakeFiles/rproxy_authz.dir/authz/authorization_server.cpp.o.d"
  "CMakeFiles/rproxy_authz.dir/authz/capability.cpp.o"
  "CMakeFiles/rproxy_authz.dir/authz/capability.cpp.o.d"
  "CMakeFiles/rproxy_authz.dir/authz/credential_eval.cpp.o"
  "CMakeFiles/rproxy_authz.dir/authz/credential_eval.cpp.o.d"
  "CMakeFiles/rproxy_authz.dir/authz/group_server.cpp.o"
  "CMakeFiles/rproxy_authz.dir/authz/group_server.cpp.o.d"
  "CMakeFiles/rproxy_authz.dir/authz/privilege_attribute_server.cpp.o"
  "CMakeFiles/rproxy_authz.dir/authz/privilege_attribute_server.cpp.o.d"
  "CMakeFiles/rproxy_authz.dir/authz/proxy_issuer.cpp.o"
  "CMakeFiles/rproxy_authz.dir/authz/proxy_issuer.cpp.o.d"
  "librproxy_authz.a"
  "librproxy_authz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_authz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
