
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authz/acl.cpp" "src/CMakeFiles/rproxy_authz.dir/authz/acl.cpp.o" "gcc" "src/CMakeFiles/rproxy_authz.dir/authz/acl.cpp.o.d"
  "/root/repo/src/authz/authorization_server.cpp" "src/CMakeFiles/rproxy_authz.dir/authz/authorization_server.cpp.o" "gcc" "src/CMakeFiles/rproxy_authz.dir/authz/authorization_server.cpp.o.d"
  "/root/repo/src/authz/capability.cpp" "src/CMakeFiles/rproxy_authz.dir/authz/capability.cpp.o" "gcc" "src/CMakeFiles/rproxy_authz.dir/authz/capability.cpp.o.d"
  "/root/repo/src/authz/credential_eval.cpp" "src/CMakeFiles/rproxy_authz.dir/authz/credential_eval.cpp.o" "gcc" "src/CMakeFiles/rproxy_authz.dir/authz/credential_eval.cpp.o.d"
  "/root/repo/src/authz/group_server.cpp" "src/CMakeFiles/rproxy_authz.dir/authz/group_server.cpp.o" "gcc" "src/CMakeFiles/rproxy_authz.dir/authz/group_server.cpp.o.d"
  "/root/repo/src/authz/privilege_attribute_server.cpp" "src/CMakeFiles/rproxy_authz.dir/authz/privilege_attribute_server.cpp.o" "gcc" "src/CMakeFiles/rproxy_authz.dir/authz/privilege_attribute_server.cpp.o.d"
  "/root/repo/src/authz/proxy_issuer.cpp" "src/CMakeFiles/rproxy_authz.dir/authz/proxy_issuer.cpp.o" "gcc" "src/CMakeFiles/rproxy_authz.dir/authz/proxy_issuer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rproxy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_kdc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
