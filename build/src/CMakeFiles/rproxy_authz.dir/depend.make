# Empty dependencies file for rproxy_authz.
# This may be replaced when dependencies are built.
