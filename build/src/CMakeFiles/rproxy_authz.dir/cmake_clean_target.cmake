file(REMOVE_RECURSE
  "librproxy_authz.a"
)
