# Empty compiler generated dependencies file for rproxy_workload.
# This may be replaced when dependencies are built.
