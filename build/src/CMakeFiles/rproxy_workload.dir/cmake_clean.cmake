file(REMOVE_RECURSE
  "CMakeFiles/rproxy_workload.dir/workload/workload.cpp.o"
  "CMakeFiles/rproxy_workload.dir/workload/workload.cpp.o.d"
  "librproxy_workload.a"
  "librproxy_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
