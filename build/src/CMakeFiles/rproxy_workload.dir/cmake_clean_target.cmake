file(REMOVE_RECURSE
  "librproxy_workload.a"
)
