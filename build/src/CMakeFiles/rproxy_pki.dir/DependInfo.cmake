
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pki/identity_cert.cpp" "src/CMakeFiles/rproxy_pki.dir/pki/identity_cert.cpp.o" "gcc" "src/CMakeFiles/rproxy_pki.dir/pki/identity_cert.cpp.o.d"
  "/root/repo/src/pki/name_server.cpp" "src/CMakeFiles/rproxy_pki.dir/pki/name_server.cpp.o" "gcc" "src/CMakeFiles/rproxy_pki.dir/pki/name_server.cpp.o.d"
  "/root/repo/src/pki/pk_auth.cpp" "src/CMakeFiles/rproxy_pki.dir/pki/pk_auth.cpp.o" "gcc" "src/CMakeFiles/rproxy_pki.dir/pki/pk_auth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rproxy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
