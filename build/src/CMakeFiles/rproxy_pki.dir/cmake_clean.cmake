file(REMOVE_RECURSE
  "CMakeFiles/rproxy_pki.dir/pki/identity_cert.cpp.o"
  "CMakeFiles/rproxy_pki.dir/pki/identity_cert.cpp.o.d"
  "CMakeFiles/rproxy_pki.dir/pki/name_server.cpp.o"
  "CMakeFiles/rproxy_pki.dir/pki/name_server.cpp.o.d"
  "CMakeFiles/rproxy_pki.dir/pki/pk_auth.cpp.o"
  "CMakeFiles/rproxy_pki.dir/pki/pk_auth.cpp.o.d"
  "librproxy_pki.a"
  "librproxy_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
