# Empty dependencies file for rproxy_pki.
# This may be replaced when dependencies are built.
