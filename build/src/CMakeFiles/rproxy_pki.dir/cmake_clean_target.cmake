file(REMOVE_RECURSE
  "librproxy_pki.a"
)
