# Empty compiler generated dependencies file for rproxy_server.
# This may be replaced when dependencies are built.
