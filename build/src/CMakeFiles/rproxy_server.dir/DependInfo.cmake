
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/app_client.cpp" "src/CMakeFiles/rproxy_server.dir/server/app_client.cpp.o" "gcc" "src/CMakeFiles/rproxy_server.dir/server/app_client.cpp.o.d"
  "/root/repo/src/server/audit_log.cpp" "src/CMakeFiles/rproxy_server.dir/server/audit_log.cpp.o" "gcc" "src/CMakeFiles/rproxy_server.dir/server/audit_log.cpp.o.d"
  "/root/repo/src/server/end_server.cpp" "src/CMakeFiles/rproxy_server.dir/server/end_server.cpp.o" "gcc" "src/CMakeFiles/rproxy_server.dir/server/end_server.cpp.o.d"
  "/root/repo/src/server/file_server.cpp" "src/CMakeFiles/rproxy_server.dir/server/file_server.cpp.o" "gcc" "src/CMakeFiles/rproxy_server.dir/server/file_server.cpp.o.d"
  "/root/repo/src/server/metered_server.cpp" "src/CMakeFiles/rproxy_server.dir/server/metered_server.cpp.o" "gcc" "src/CMakeFiles/rproxy_server.dir/server/metered_server.cpp.o.d"
  "/root/repo/src/server/print_server.cpp" "src/CMakeFiles/rproxy_server.dir/server/print_server.cpp.o" "gcc" "src/CMakeFiles/rproxy_server.dir/server/print_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rproxy_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_authz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_kdc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
