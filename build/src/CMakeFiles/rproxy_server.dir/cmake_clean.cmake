file(REMOVE_RECURSE
  "CMakeFiles/rproxy_server.dir/server/app_client.cpp.o"
  "CMakeFiles/rproxy_server.dir/server/app_client.cpp.o.d"
  "CMakeFiles/rproxy_server.dir/server/audit_log.cpp.o"
  "CMakeFiles/rproxy_server.dir/server/audit_log.cpp.o.d"
  "CMakeFiles/rproxy_server.dir/server/end_server.cpp.o"
  "CMakeFiles/rproxy_server.dir/server/end_server.cpp.o.d"
  "CMakeFiles/rproxy_server.dir/server/file_server.cpp.o"
  "CMakeFiles/rproxy_server.dir/server/file_server.cpp.o.d"
  "CMakeFiles/rproxy_server.dir/server/metered_server.cpp.o"
  "CMakeFiles/rproxy_server.dir/server/metered_server.cpp.o.d"
  "CMakeFiles/rproxy_server.dir/server/print_server.cpp.o"
  "CMakeFiles/rproxy_server.dir/server/print_server.cpp.o.d"
  "librproxy_server.a"
  "librproxy_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
