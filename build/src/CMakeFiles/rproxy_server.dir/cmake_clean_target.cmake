file(REMOVE_RECURSE
  "librproxy_server.a"
)
