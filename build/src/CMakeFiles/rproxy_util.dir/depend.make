# Empty dependencies file for rproxy_util.
# This may be replaced when dependencies are built.
