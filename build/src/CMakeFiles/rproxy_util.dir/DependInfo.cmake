
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/rproxy_util.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/rproxy_util.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/clock.cpp" "src/CMakeFiles/rproxy_util.dir/util/clock.cpp.o" "gcc" "src/CMakeFiles/rproxy_util.dir/util/clock.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/rproxy_util.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/rproxy_util.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/CMakeFiles/rproxy_util.dir/util/status.cpp.o" "gcc" "src/CMakeFiles/rproxy_util.dir/util/status.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
