file(REMOVE_RECURSE
  "librproxy_util.a"
)
