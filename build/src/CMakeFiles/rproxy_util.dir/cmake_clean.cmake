file(REMOVE_RECURSE
  "CMakeFiles/rproxy_util.dir/util/bytes.cpp.o"
  "CMakeFiles/rproxy_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/rproxy_util.dir/util/clock.cpp.o"
  "CMakeFiles/rproxy_util.dir/util/clock.cpp.o.d"
  "CMakeFiles/rproxy_util.dir/util/logging.cpp.o"
  "CMakeFiles/rproxy_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/rproxy_util.dir/util/status.cpp.o"
  "CMakeFiles/rproxy_util.dir/util/status.cpp.o.d"
  "librproxy_util.a"
  "librproxy_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
