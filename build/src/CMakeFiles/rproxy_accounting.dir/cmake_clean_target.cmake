file(REMOVE_RECURSE
  "librproxy_accounting.a"
)
