# Empty compiler generated dependencies file for rproxy_accounting.
# This may be replaced when dependencies are built.
