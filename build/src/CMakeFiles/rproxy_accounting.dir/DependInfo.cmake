
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accounting/account.cpp" "src/CMakeFiles/rproxy_accounting.dir/accounting/account.cpp.o" "gcc" "src/CMakeFiles/rproxy_accounting.dir/accounting/account.cpp.o.d"
  "/root/repo/src/accounting/accounting_server.cpp" "src/CMakeFiles/rproxy_accounting.dir/accounting/accounting_server.cpp.o" "gcc" "src/CMakeFiles/rproxy_accounting.dir/accounting/accounting_server.cpp.o.d"
  "/root/repo/src/accounting/check.cpp" "src/CMakeFiles/rproxy_accounting.dir/accounting/check.cpp.o" "gcc" "src/CMakeFiles/rproxy_accounting.dir/accounting/check.cpp.o.d"
  "/root/repo/src/accounting/clearing.cpp" "src/CMakeFiles/rproxy_accounting.dir/accounting/clearing.cpp.o" "gcc" "src/CMakeFiles/rproxy_accounting.dir/accounting/clearing.cpp.o.d"
  "/root/repo/src/accounting/currency.cpp" "src/CMakeFiles/rproxy_accounting.dir/accounting/currency.cpp.o" "gcc" "src/CMakeFiles/rproxy_accounting.dir/accounting/currency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rproxy_authz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_kdc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
