file(REMOVE_RECURSE
  "CMakeFiles/rproxy_accounting.dir/accounting/account.cpp.o"
  "CMakeFiles/rproxy_accounting.dir/accounting/account.cpp.o.d"
  "CMakeFiles/rproxy_accounting.dir/accounting/accounting_server.cpp.o"
  "CMakeFiles/rproxy_accounting.dir/accounting/accounting_server.cpp.o.d"
  "CMakeFiles/rproxy_accounting.dir/accounting/check.cpp.o"
  "CMakeFiles/rproxy_accounting.dir/accounting/check.cpp.o.d"
  "CMakeFiles/rproxy_accounting.dir/accounting/clearing.cpp.o"
  "CMakeFiles/rproxy_accounting.dir/accounting/clearing.cpp.o.d"
  "CMakeFiles/rproxy_accounting.dir/accounting/currency.cpp.o"
  "CMakeFiles/rproxy_accounting.dir/accounting/currency.cpp.o.d"
  "librproxy_accounting.a"
  "librproxy_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
