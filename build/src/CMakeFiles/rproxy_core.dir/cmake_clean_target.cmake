file(REMOVE_RECURSE
  "librproxy_core.a"
)
