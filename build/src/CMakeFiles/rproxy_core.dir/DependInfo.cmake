
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accept_once_cache.cpp" "src/CMakeFiles/rproxy_core.dir/core/accept_once_cache.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/accept_once_cache.cpp.o.d"
  "/root/repo/src/core/cascade.cpp" "src/CMakeFiles/rproxy_core.dir/core/cascade.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/cascade.cpp.o.d"
  "/root/repo/src/core/challenge_registry.cpp" "src/CMakeFiles/rproxy_core.dir/core/challenge_registry.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/challenge_registry.cpp.o.d"
  "/root/repo/src/core/describe.cpp" "src/CMakeFiles/rproxy_core.dir/core/describe.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/describe.cpp.o.d"
  "/root/repo/src/core/presentation.cpp" "src/CMakeFiles/rproxy_core.dir/core/presentation.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/presentation.cpp.o.d"
  "/root/repo/src/core/proxy.cpp" "src/CMakeFiles/rproxy_core.dir/core/proxy.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/proxy.cpp.o.d"
  "/root/repo/src/core/proxy_certificate.cpp" "src/CMakeFiles/rproxy_core.dir/core/proxy_certificate.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/proxy_certificate.cpp.o.d"
  "/root/repo/src/core/request.cpp" "src/CMakeFiles/rproxy_core.dir/core/request.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/request.cpp.o.d"
  "/root/repo/src/core/restriction.cpp" "src/CMakeFiles/rproxy_core.dir/core/restriction.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/restriction.cpp.o.d"
  "/root/repo/src/core/restriction_set.cpp" "src/CMakeFiles/rproxy_core.dir/core/restriction_set.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/restriction_set.cpp.o.d"
  "/root/repo/src/core/verifier.cpp" "src/CMakeFiles/rproxy_core.dir/core/verifier.cpp.o" "gcc" "src/CMakeFiles/rproxy_core.dir/core/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rproxy_kdc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
