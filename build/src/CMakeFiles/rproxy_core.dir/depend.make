# Empty dependencies file for rproxy_core.
# This may be replaced when dependencies are built.
