file(REMOVE_RECURSE
  "CMakeFiles/rproxy_core.dir/core/accept_once_cache.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/accept_once_cache.cpp.o.d"
  "CMakeFiles/rproxy_core.dir/core/cascade.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/cascade.cpp.o.d"
  "CMakeFiles/rproxy_core.dir/core/challenge_registry.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/challenge_registry.cpp.o.d"
  "CMakeFiles/rproxy_core.dir/core/describe.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/describe.cpp.o.d"
  "CMakeFiles/rproxy_core.dir/core/presentation.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/presentation.cpp.o.d"
  "CMakeFiles/rproxy_core.dir/core/proxy.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/proxy.cpp.o.d"
  "CMakeFiles/rproxy_core.dir/core/proxy_certificate.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/proxy_certificate.cpp.o.d"
  "CMakeFiles/rproxy_core.dir/core/request.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/request.cpp.o.d"
  "CMakeFiles/rproxy_core.dir/core/restriction.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/restriction.cpp.o.d"
  "CMakeFiles/rproxy_core.dir/core/restriction_set.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/restriction_set.cpp.o.d"
  "CMakeFiles/rproxy_core.dir/core/verifier.cpp.o"
  "CMakeFiles/rproxy_core.dir/core/verifier.cpp.o.d"
  "librproxy_core.a"
  "librproxy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
