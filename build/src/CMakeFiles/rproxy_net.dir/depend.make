# Empty dependencies file for rproxy_net.
# This may be replaced when dependencies are built.
