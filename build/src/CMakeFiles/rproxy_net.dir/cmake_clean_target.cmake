file(REMOVE_RECURSE
  "librproxy_net.a"
)
