# Empty compiler generated dependencies file for rproxy_net.
# This may be replaced when dependencies are built.
