file(REMOVE_RECURSE
  "CMakeFiles/rproxy_net.dir/net/adversary.cpp.o"
  "CMakeFiles/rproxy_net.dir/net/adversary.cpp.o.d"
  "CMakeFiles/rproxy_net.dir/net/message.cpp.o"
  "CMakeFiles/rproxy_net.dir/net/message.cpp.o.d"
  "CMakeFiles/rproxy_net.dir/net/rpc.cpp.o"
  "CMakeFiles/rproxy_net.dir/net/rpc.cpp.o.d"
  "CMakeFiles/rproxy_net.dir/net/simnet.cpp.o"
  "CMakeFiles/rproxy_net.dir/net/simnet.cpp.o.d"
  "CMakeFiles/rproxy_net.dir/net/tcp_transport.cpp.o"
  "CMakeFiles/rproxy_net.dir/net/tcp_transport.cpp.o.d"
  "librproxy_net.a"
  "librproxy_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rproxy_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
