
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/adversary.cpp" "src/CMakeFiles/rproxy_net.dir/net/adversary.cpp.o" "gcc" "src/CMakeFiles/rproxy_net.dir/net/adversary.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/rproxy_net.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/rproxy_net.dir/net/message.cpp.o.d"
  "/root/repo/src/net/rpc.cpp" "src/CMakeFiles/rproxy_net.dir/net/rpc.cpp.o" "gcc" "src/CMakeFiles/rproxy_net.dir/net/rpc.cpp.o.d"
  "/root/repo/src/net/simnet.cpp" "src/CMakeFiles/rproxy_net.dir/net/simnet.cpp.o" "gcc" "src/CMakeFiles/rproxy_net.dir/net/simnet.cpp.o.d"
  "/root/repo/src/net/tcp_transport.cpp" "src/CMakeFiles/rproxy_net.dir/net/tcp_transport.cpp.o" "gcc" "src/CMakeFiles/rproxy_net.dir/net/tcp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rproxy_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rproxy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
