file(REMOVE_RECURSE
  "CMakeFiles/accounting_multicurrency_test.dir/accounting/multicurrency_test.cpp.o"
  "CMakeFiles/accounting_multicurrency_test.dir/accounting/multicurrency_test.cpp.o.d"
  "accounting_multicurrency_test"
  "accounting_multicurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accounting_multicurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
