# Empty dependencies file for accounting_multicurrency_test.
# This may be replaced when dependencies are built.
