# Empty dependencies file for authz_group_server_test.
# This may be replaced when dependencies are built.
