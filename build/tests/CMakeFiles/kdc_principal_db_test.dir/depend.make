# Empty dependencies file for kdc_principal_db_test.
# This may be replaced when dependencies are built.
