file(REMOVE_RECURSE
  "CMakeFiles/kdc_principal_db_test.dir/kdc/principal_db_test.cpp.o"
  "CMakeFiles/kdc_principal_db_test.dir/kdc/principal_db_test.cpp.o.d"
  "kdc_principal_db_test"
  "kdc_principal_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdc_principal_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
