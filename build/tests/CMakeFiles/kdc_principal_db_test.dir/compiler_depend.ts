# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for kdc_principal_db_test.
