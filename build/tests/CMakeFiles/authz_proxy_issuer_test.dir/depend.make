# Empty dependencies file for authz_proxy_issuer_test.
# This may be replaced when dependencies are built.
