file(REMOVE_RECURSE
  "CMakeFiles/authz_proxy_issuer_test.dir/authz/proxy_issuer_test.cpp.o"
  "CMakeFiles/authz_proxy_issuer_test.dir/authz/proxy_issuer_test.cpp.o.d"
  "authz_proxy_issuer_test"
  "authz_proxy_issuer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_proxy_issuer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
