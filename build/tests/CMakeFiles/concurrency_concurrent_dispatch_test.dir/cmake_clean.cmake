file(REMOVE_RECURSE
  "CMakeFiles/concurrency_concurrent_dispatch_test.dir/concurrency/concurrent_dispatch_test.cpp.o"
  "CMakeFiles/concurrency_concurrent_dispatch_test.dir/concurrency/concurrent_dispatch_test.cpp.o.d"
  "concurrency_concurrent_dispatch_test"
  "concurrency_concurrent_dispatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_concurrent_dispatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
