# Empty dependencies file for concurrency_concurrent_dispatch_test.
# This may be replaced when dependencies are built.
