# Empty dependencies file for authz_authorization_server_test.
# This may be replaced when dependencies are built.
