file(REMOVE_RECURSE
  "CMakeFiles/authz_authorization_server_test.dir/authz/authorization_server_test.cpp.o"
  "CMakeFiles/authz_authorization_server_test.dir/authz/authorization_server_test.cpp.o.d"
  "authz_authorization_server_test"
  "authz_authorization_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_authorization_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
