# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for integration_separation_of_privilege_test.
