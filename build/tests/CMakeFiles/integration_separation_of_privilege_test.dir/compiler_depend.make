# Empty compiler generated dependencies file for integration_separation_of_privilege_test.
# This may be replaced when dependencies are built.
