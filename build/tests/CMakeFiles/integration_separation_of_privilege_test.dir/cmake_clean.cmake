file(REMOVE_RECURSE
  "CMakeFiles/integration_separation_of_privilege_test.dir/integration/separation_of_privilege_test.cpp.o"
  "CMakeFiles/integration_separation_of_privilege_test.dir/integration/separation_of_privilege_test.cpp.o.d"
  "integration_separation_of_privilege_test"
  "integration_separation_of_privilege_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_separation_of_privilege_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
