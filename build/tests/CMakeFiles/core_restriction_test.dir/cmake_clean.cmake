file(REMOVE_RECURSE
  "CMakeFiles/core_restriction_test.dir/core/restriction_test.cpp.o"
  "CMakeFiles/core_restriction_test.dir/core/restriction_test.cpp.o.d"
  "core_restriction_test"
  "core_restriction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_restriction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
