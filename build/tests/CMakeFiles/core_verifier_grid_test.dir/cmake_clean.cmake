file(REMOVE_RECURSE
  "CMakeFiles/core_verifier_grid_test.dir/core/verifier_grid_test.cpp.o"
  "CMakeFiles/core_verifier_grid_test.dir/core/verifier_grid_test.cpp.o.d"
  "core_verifier_grid_test"
  "core_verifier_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_verifier_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
