# Empty dependencies file for core_verifier_grid_test.
# This may be replaced when dependencies are built.
