file(REMOVE_RECURSE
  "CMakeFiles/kdc_kdc_test.dir/kdc/kdc_test.cpp.o"
  "CMakeFiles/kdc_kdc_test.dir/kdc/kdc_test.cpp.o.d"
  "kdc_kdc_test"
  "kdc_kdc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdc_kdc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
