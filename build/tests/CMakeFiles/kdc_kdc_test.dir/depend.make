# Empty dependencies file for kdc_kdc_test.
# This may be replaced when dependencies are built.
