# Empty compiler generated dependencies file for accounting_check_test.
# This may be replaced when dependencies are built.
