file(REMOVE_RECURSE
  "CMakeFiles/accounting_check_test.dir/accounting/check_test.cpp.o"
  "CMakeFiles/accounting_check_test.dir/accounting/check_test.cpp.o.d"
  "accounting_check_test"
  "accounting_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accounting_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
