# Empty compiler generated dependencies file for kdc_replay_cache_test.
# This may be replaced when dependencies are built.
