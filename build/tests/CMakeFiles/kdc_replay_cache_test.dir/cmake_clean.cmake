file(REMOVE_RECURSE
  "CMakeFiles/kdc_replay_cache_test.dir/kdc/replay_cache_test.cpp.o"
  "CMakeFiles/kdc_replay_cache_test.dir/kdc/replay_cache_test.cpp.o.d"
  "kdc_replay_cache_test"
  "kdc_replay_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdc_replay_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
