file(REMOVE_RECURSE
  "CMakeFiles/kdc_ticket_test.dir/kdc/ticket_test.cpp.o"
  "CMakeFiles/kdc_ticket_test.dir/kdc/ticket_test.cpp.o.d"
  "kdc_ticket_test"
  "kdc_ticket_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdc_ticket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
