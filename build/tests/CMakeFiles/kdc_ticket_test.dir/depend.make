# Empty dependencies file for kdc_ticket_test.
# This may be replaced when dependencies are built.
