file(REMOVE_RECURSE
  "CMakeFiles/server_audit_log_test.dir/server/audit_log_test.cpp.o"
  "CMakeFiles/server_audit_log_test.dir/server/audit_log_test.cpp.o.d"
  "server_audit_log_test"
  "server_audit_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_audit_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
