# Empty compiler generated dependencies file for server_audit_log_test.
# This may be replaced when dependencies are built.
