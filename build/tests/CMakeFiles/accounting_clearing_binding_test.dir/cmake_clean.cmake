file(REMOVE_RECURSE
  "CMakeFiles/accounting_clearing_binding_test.dir/accounting/clearing_binding_test.cpp.o"
  "CMakeFiles/accounting_clearing_binding_test.dir/accounting/clearing_binding_test.cpp.o.d"
  "accounting_clearing_binding_test"
  "accounting_clearing_binding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accounting_clearing_binding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
