# Empty compiler generated dependencies file for accounting_clearing_binding_test.
# This may be replaced when dependencies are built.
