file(REMOVE_RECURSE
  "CMakeFiles/workload_workload_test.dir/workload/workload_test.cpp.o"
  "CMakeFiles/workload_workload_test.dir/workload/workload_test.cpp.o.d"
  "workload_workload_test"
  "workload_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
