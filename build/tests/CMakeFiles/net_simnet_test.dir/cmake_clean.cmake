file(REMOVE_RECURSE
  "CMakeFiles/net_simnet_test.dir/net/simnet_test.cpp.o"
  "CMakeFiles/net_simnet_test.dir/net/simnet_test.cpp.o.d"
  "net_simnet_test"
  "net_simnet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_simnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
