file(REMOVE_RECURSE
  "CMakeFiles/net_tcp_transport_test.dir/net/tcp_transport_test.cpp.o"
  "CMakeFiles/net_tcp_transport_test.dir/net/tcp_transport_test.cpp.o.d"
  "net_tcp_transport_test"
  "net_tcp_transport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tcp_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
