# Empty compiler generated dependencies file for concurrency_thread_safety_test.
# This may be replaced when dependencies are built.
