file(REMOVE_RECURSE
  "CMakeFiles/concurrency_thread_safety_test.dir/concurrency/thread_safety_test.cpp.o"
  "CMakeFiles/concurrency_thread_safety_test.dir/concurrency/thread_safety_test.cpp.o.d"
  "concurrency_thread_safety_test"
  "concurrency_thread_safety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_thread_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
