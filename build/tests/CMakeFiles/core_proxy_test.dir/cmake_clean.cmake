file(REMOVE_RECURSE
  "CMakeFiles/core_proxy_test.dir/core/proxy_test.cpp.o"
  "CMakeFiles/core_proxy_test.dir/core/proxy_test.cpp.o.d"
  "core_proxy_test"
  "core_proxy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
