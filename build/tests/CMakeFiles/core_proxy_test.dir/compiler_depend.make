# Empty compiler generated dependencies file for core_proxy_test.
# This may be replaced when dependencies are built.
