file(REMOVE_RECURSE
  "CMakeFiles/accounting_balances_test.dir/accounting/balances_test.cpp.o"
  "CMakeFiles/accounting_balances_test.dir/accounting/balances_test.cpp.o.d"
  "accounting_balances_test"
  "accounting_balances_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accounting_balances_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
