# Empty dependencies file for accounting_balances_test.
# This may be replaced when dependencies are built.
