# Empty compiler generated dependencies file for baseline_pull_authorization_test.
# This may be replaced when dependencies are built.
