file(REMOVE_RECURSE
  "CMakeFiles/baseline_pull_authorization_test.dir/baseline/pull_authorization_test.cpp.o"
  "CMakeFiles/baseline_pull_authorization_test.dir/baseline/pull_authorization_test.cpp.o.d"
  "baseline_pull_authorization_test"
  "baseline_pull_authorization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_pull_authorization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
