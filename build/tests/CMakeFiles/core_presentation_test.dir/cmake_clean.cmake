file(REMOVE_RECURSE
  "CMakeFiles/core_presentation_test.dir/core/presentation_test.cpp.o"
  "CMakeFiles/core_presentation_test.dir/core/presentation_test.cpp.o.d"
  "core_presentation_test"
  "core_presentation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_presentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
