# Empty dependencies file for core_presentation_test.
# This may be replaced when dependencies are built.
