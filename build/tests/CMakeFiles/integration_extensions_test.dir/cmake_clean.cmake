file(REMOVE_RECURSE
  "CMakeFiles/integration_extensions_test.dir/integration/extensions_test.cpp.o"
  "CMakeFiles/integration_extensions_test.dir/integration/extensions_test.cpp.o.d"
  "integration_extensions_test"
  "integration_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
