# Empty compiler generated dependencies file for core_verifier_test.
# This may be replaced when dependencies are built.
