# Empty dependencies file for server_end_server_test.
# This may be replaced when dependencies are built.
