file(REMOVE_RECURSE
  "CMakeFiles/authz_capability_test.dir/authz/capability_test.cpp.o"
  "CMakeFiles/authz_capability_test.dir/authz/capability_test.cpp.o.d"
  "authz_capability_test"
  "authz_capability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_capability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
