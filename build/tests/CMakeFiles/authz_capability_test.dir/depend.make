# Empty dependencies file for authz_capability_test.
# This may be replaced when dependencies are built.
