# Empty dependencies file for wire_codec_test.
# This may be replaced when dependencies are built.
