file(REMOVE_RECURSE
  "CMakeFiles/wire_codec_test.dir/wire/codec_test.cpp.o"
  "CMakeFiles/wire_codec_test.dir/wire/codec_test.cpp.o.d"
  "wire_codec_test"
  "wire_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
