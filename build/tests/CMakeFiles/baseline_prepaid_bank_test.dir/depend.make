# Empty dependencies file for baseline_prepaid_bank_test.
# This may be replaced when dependencies are built.
