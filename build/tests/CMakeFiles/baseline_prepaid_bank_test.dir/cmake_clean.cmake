file(REMOVE_RECURSE
  "CMakeFiles/baseline_prepaid_bank_test.dir/baseline/prepaid_bank_test.cpp.o"
  "CMakeFiles/baseline_prepaid_bank_test.dir/baseline/prepaid_bank_test.cpp.o.d"
  "baseline_prepaid_bank_test"
  "baseline_prepaid_bank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_prepaid_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
