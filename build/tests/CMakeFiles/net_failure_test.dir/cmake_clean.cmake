file(REMOVE_RECURSE
  "CMakeFiles/net_failure_test.dir/net/failure_test.cpp.o"
  "CMakeFiles/net_failure_test.dir/net/failure_test.cpp.o.d"
  "net_failure_test"
  "net_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
