# Empty compiler generated dependencies file for core_accept_once_test.
# This may be replaced when dependencies are built.
