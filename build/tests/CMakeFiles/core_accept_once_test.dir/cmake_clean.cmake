file(REMOVE_RECURSE
  "CMakeFiles/core_accept_once_test.dir/core/accept_once_test.cpp.o"
  "CMakeFiles/core_accept_once_test.dir/core/accept_once_test.cpp.o.d"
  "core_accept_once_test"
  "core_accept_once_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_accept_once_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
