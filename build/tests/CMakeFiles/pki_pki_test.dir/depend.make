# Empty dependencies file for pki_pki_test.
# This may be replaced when dependencies are built.
