file(REMOVE_RECURSE
  "CMakeFiles/pki_pki_test.dir/pki/pki_test.cpp.o"
  "CMakeFiles/pki_pki_test.dir/pki/pki_test.cpp.o.d"
  "pki_pki_test"
  "pki_pki_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pki_pki_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
