file(REMOVE_RECURSE
  "CMakeFiles/accounting_accounting_server_test.dir/accounting/accounting_server_test.cpp.o"
  "CMakeFiles/accounting_accounting_server_test.dir/accounting/accounting_server_test.cpp.o.d"
  "accounting_accounting_server_test"
  "accounting_accounting_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accounting_accounting_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
