# Empty compiler generated dependencies file for accounting_accounting_server_test.
# This may be replaced when dependencies are built.
