# Empty dependencies file for accounting_account_test.
# This may be replaced when dependencies are built.
