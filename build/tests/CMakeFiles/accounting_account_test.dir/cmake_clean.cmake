file(REMOVE_RECURSE
  "CMakeFiles/accounting_account_test.dir/accounting/account_test.cpp.o"
  "CMakeFiles/accounting_account_test.dir/accounting/account_test.cpp.o.d"
  "accounting_account_test"
  "accounting_account_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accounting_account_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
