# Empty compiler generated dependencies file for integration_accounting_flow_test.
# This may be replaced when dependencies are built.
