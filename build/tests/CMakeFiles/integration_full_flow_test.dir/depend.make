# Empty dependencies file for integration_full_flow_test.
# This may be replaced when dependencies are built.
