file(REMOVE_RECURSE
  "CMakeFiles/integration_full_flow_test.dir/integration/full_flow_test.cpp.o"
  "CMakeFiles/integration_full_flow_test.dir/integration/full_flow_test.cpp.o.d"
  "integration_full_flow_test"
  "integration_full_flow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_full_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
