# Empty dependencies file for integration_soak_test.
# This may be replaced when dependencies are built.
