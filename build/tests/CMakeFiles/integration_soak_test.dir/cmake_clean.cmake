file(REMOVE_RECURSE
  "CMakeFiles/integration_soak_test.dir/integration/soak_test.cpp.o"
  "CMakeFiles/integration_soak_test.dir/integration/soak_test.cpp.o.d"
  "integration_soak_test"
  "integration_soak_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
