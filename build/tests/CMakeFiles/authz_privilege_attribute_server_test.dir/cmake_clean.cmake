file(REMOVE_RECURSE
  "CMakeFiles/authz_privilege_attribute_server_test.dir/authz/privilege_attribute_server_test.cpp.o"
  "CMakeFiles/authz_privilege_attribute_server_test.dir/authz/privilege_attribute_server_test.cpp.o.d"
  "authz_privilege_attribute_server_test"
  "authz_privilege_attribute_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_privilege_attribute_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
