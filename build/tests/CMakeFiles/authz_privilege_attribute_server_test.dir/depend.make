# Empty dependencies file for authz_privilege_attribute_server_test.
# This may be replaced when dependencies are built.
