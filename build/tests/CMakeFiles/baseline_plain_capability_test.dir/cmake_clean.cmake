file(REMOVE_RECURSE
  "CMakeFiles/baseline_plain_capability_test.dir/baseline/plain_capability_test.cpp.o"
  "CMakeFiles/baseline_plain_capability_test.dir/baseline/plain_capability_test.cpp.o.d"
  "baseline_plain_capability_test"
  "baseline_plain_capability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_plain_capability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
