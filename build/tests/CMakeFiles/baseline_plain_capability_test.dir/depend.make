# Empty dependencies file for baseline_plain_capability_test.
# This may be replaced when dependencies are built.
