file(REMOVE_RECURSE
  "CMakeFiles/integration_attack_test.dir/integration/attack_test.cpp.o"
  "CMakeFiles/integration_attack_test.dir/integration/attack_test.cpp.o.d"
  "integration_attack_test"
  "integration_attack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
