# Empty dependencies file for integration_attack_test.
# This may be replaced when dependencies are built.
