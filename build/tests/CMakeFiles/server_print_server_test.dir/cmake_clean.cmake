file(REMOVE_RECURSE
  "CMakeFiles/server_print_server_test.dir/server/print_server_test.cpp.o"
  "CMakeFiles/server_print_server_test.dir/server/print_server_test.cpp.o.d"
  "server_print_server_test"
  "server_print_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_print_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
