# Empty compiler generated dependencies file for server_print_server_test.
# This may be replaced when dependencies are built.
