# Empty compiler generated dependencies file for authz_propagation_test.
# This may be replaced when dependencies are built.
