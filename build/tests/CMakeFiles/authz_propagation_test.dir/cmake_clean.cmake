file(REMOVE_RECURSE
  "CMakeFiles/authz_propagation_test.dir/authz/propagation_test.cpp.o"
  "CMakeFiles/authz_propagation_test.dir/authz/propagation_test.cpp.o.d"
  "authz_propagation_test"
  "authz_propagation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
