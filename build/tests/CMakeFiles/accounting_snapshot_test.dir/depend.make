# Empty dependencies file for accounting_snapshot_test.
# This may be replaced when dependencies are built.
