file(REMOVE_RECURSE
  "CMakeFiles/accounting_snapshot_test.dir/accounting/snapshot_test.cpp.o"
  "CMakeFiles/accounting_snapshot_test.dir/accounting/snapshot_test.cpp.o.d"
  "accounting_snapshot_test"
  "accounting_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accounting_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
