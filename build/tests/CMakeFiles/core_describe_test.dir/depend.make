# Empty dependencies file for core_describe_test.
# This may be replaced when dependencies are built.
