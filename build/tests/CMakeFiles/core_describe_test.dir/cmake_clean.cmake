file(REMOVE_RECURSE
  "CMakeFiles/core_describe_test.dir/core/describe_test.cpp.o"
  "CMakeFiles/core_describe_test.dir/core/describe_test.cpp.o.d"
  "core_describe_test"
  "core_describe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_describe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
