# Empty dependencies file for baseline_dssa_roles_test.
# This may be replaced when dependencies are built.
