file(REMOVE_RECURSE
  "CMakeFiles/baseline_dssa_roles_test.dir/baseline/dssa_roles_test.cpp.o"
  "CMakeFiles/baseline_dssa_roles_test.dir/baseline/dssa_roles_test.cpp.o.d"
  "baseline_dssa_roles_test"
  "baseline_dssa_roles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_dssa_roles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
