file(REMOVE_RECURSE
  "CMakeFiles/core_challenge_registry_test.dir/core/challenge_registry_test.cpp.o"
  "CMakeFiles/core_challenge_registry_test.dir/core/challenge_registry_test.cpp.o.d"
  "core_challenge_registry_test"
  "core_challenge_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_challenge_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
