# Empty dependencies file for core_challenge_registry_test.
# This may be replaced when dependencies are built.
