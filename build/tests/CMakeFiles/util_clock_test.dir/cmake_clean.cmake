file(REMOVE_RECURSE
  "CMakeFiles/util_clock_test.dir/util/clock_test.cpp.o"
  "CMakeFiles/util_clock_test.dir/util/clock_test.cpp.o.d"
  "util_clock_test"
  "util_clock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
