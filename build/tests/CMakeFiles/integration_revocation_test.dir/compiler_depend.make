# Empty compiler generated dependencies file for integration_revocation_test.
# This may be replaced when dependencies are built.
