file(REMOVE_RECURSE
  "CMakeFiles/integration_revocation_test.dir/integration/revocation_test.cpp.o"
  "CMakeFiles/integration_revocation_test.dir/integration/revocation_test.cpp.o.d"
  "integration_revocation_test"
  "integration_revocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_revocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
