# Empty dependencies file for authz_acl_test.
# This may be replaced when dependencies are built.
