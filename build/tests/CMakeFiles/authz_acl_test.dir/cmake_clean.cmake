file(REMOVE_RECURSE
  "CMakeFiles/authz_acl_test.dir/authz/acl_test.cpp.o"
  "CMakeFiles/authz_acl_test.dir/authz/acl_test.cpp.o.d"
  "authz_acl_test"
  "authz_acl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_acl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
