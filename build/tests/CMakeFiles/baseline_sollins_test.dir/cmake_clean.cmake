file(REMOVE_RECURSE
  "CMakeFiles/baseline_sollins_test.dir/baseline/sollins_test.cpp.o"
  "CMakeFiles/baseline_sollins_test.dir/baseline/sollins_test.cpp.o.d"
  "baseline_sollins_test"
  "baseline_sollins_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sollins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
