# Empty dependencies file for baseline_sollins_test.
# This may be replaced when dependencies are built.
