file(REMOVE_RECURSE
  "CMakeFiles/property_additivity_property_test.dir/property/additivity_property_test.cpp.o"
  "CMakeFiles/property_additivity_property_test.dir/property/additivity_property_test.cpp.o.d"
  "property_additivity_property_test"
  "property_additivity_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_additivity_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
