file(REMOVE_RECURSE
  "CMakeFiles/net_message_test.dir/net/message_test.cpp.o"
  "CMakeFiles/net_message_test.dir/net/message_test.cpp.o.d"
  "net_message_test"
  "net_message_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
