# Empty dependencies file for net_message_test.
# This may be replaced when dependencies are built.
