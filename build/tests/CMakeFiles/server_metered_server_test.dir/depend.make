# Empty dependencies file for server_metered_server_test.
# This may be replaced when dependencies are built.
