# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for server_metered_server_test.
