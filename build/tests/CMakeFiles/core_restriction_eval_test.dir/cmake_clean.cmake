file(REMOVE_RECURSE
  "CMakeFiles/core_restriction_eval_test.dir/core/restriction_eval_test.cpp.o"
  "CMakeFiles/core_restriction_eval_test.dir/core/restriction_eval_test.cpp.o.d"
  "core_restriction_eval_test"
  "core_restriction_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_restriction_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
