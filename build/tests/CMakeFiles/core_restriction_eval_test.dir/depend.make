# Empty dependencies file for core_restriction_eval_test.
# This may be replaced when dependencies are built.
