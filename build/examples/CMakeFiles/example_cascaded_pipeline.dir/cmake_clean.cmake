file(REMOVE_RECURSE
  "CMakeFiles/example_cascaded_pipeline.dir/cascaded_pipeline.cpp.o"
  "CMakeFiles/example_cascaded_pipeline.dir/cascaded_pipeline.cpp.o.d"
  "example_cascaded_pipeline"
  "example_cascaded_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cascaded_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
