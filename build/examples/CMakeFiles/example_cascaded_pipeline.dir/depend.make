# Empty dependencies file for example_cascaded_pipeline.
# This may be replaced when dependencies are built.
