# Empty compiler generated dependencies file for example_file_capability.
# This may be replaced when dependencies are built.
