file(REMOVE_RECURSE
  "CMakeFiles/example_file_capability.dir/file_capability.cpp.o"
  "CMakeFiles/example_file_capability.dir/file_capability.cpp.o.d"
  "example_file_capability"
  "example_file_capability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_file_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
