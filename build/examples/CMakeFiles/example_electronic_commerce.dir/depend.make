# Empty dependencies file for example_electronic_commerce.
# This may be replaced when dependencies are built.
