file(REMOVE_RECURSE
  "CMakeFiles/example_electronic_commerce.dir/electronic_commerce.cpp.o"
  "CMakeFiles/example_electronic_commerce.dir/electronic_commerce.cpp.o.d"
  "example_electronic_commerce"
  "example_electronic_commerce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_electronic_commerce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
