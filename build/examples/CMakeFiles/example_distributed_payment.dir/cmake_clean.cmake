file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_payment.dir/distributed_payment.cpp.o"
  "CMakeFiles/example_distributed_payment.dir/distributed_payment.cpp.o.d"
  "example_distributed_payment"
  "example_distributed_payment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_payment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
