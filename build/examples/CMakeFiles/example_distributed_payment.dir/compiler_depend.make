# Empty compiler generated dependencies file for example_distributed_payment.
# This may be replaced when dependencies are built.
