file(REMOVE_RECURSE
  "CMakeFiles/example_print_quota.dir/print_quota.cpp.o"
  "CMakeFiles/example_print_quota.dir/print_quota.cpp.o.d"
  "example_print_quota"
  "example_print_quota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_print_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
