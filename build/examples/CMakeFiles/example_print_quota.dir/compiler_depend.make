# Empty compiler generated dependencies file for example_print_quota.
# This may be replaced when dependencies are built.
