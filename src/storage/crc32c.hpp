// CRC32C (Castagnoli) checksum.
//
// The journal frames every record with a CRC32C so recovery can tell a
// torn tail (a write cut short by a crash) from valid data.  CRC32C is the
// storage-industry convention for this job (ext4, btrfs, LevelDB/RocksDB
// logs, iSCSI) because the Castagnoli polynomial detects all the small
// burst errors a half-written sector produces.  This is the portable
// table-driven form — journal appends are I/O-bound, not checksum-bound,
// so hardware CRC instructions are not worth a platform dependency.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace rproxy::storage {

/// CRC32C of `data`, seeded with `init` (pass a previous result to chain
/// checksums over discontiguous buffers).
[[nodiscard]] std::uint32_t crc32c(util::BytesView data,
                                   std::uint32_t init = 0);

}  // namespace rproxy::storage
