// Persistent snapshot files with atomic replacement.
//
// A snapshot is an opaque sealed blob (the accounting server AEAD-seals
// its state, so storage is untrusted) named by the journal LSN it covers:
// `snapshot-<lsn>.snap` supersedes every journal record with LSN <= lsn.
// Writes are crash-atomic the classic way: write to a `.tmp`, fsync the
// file, rename(2) into place, fsync the directory.  A crash leaves either
// the old snapshot set or the new one, never a half-written `.snap`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace rproxy::storage {

class SnapshotStore {
 public:
  explicit SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

  /// Atomically publishes `sealed` as the snapshot covering `lsn`.
  [[nodiscard]] util::Status save(std::uint64_t lsn,
                                  util::BytesView sealed) const;

  struct Loaded {
    std::uint64_t lsn = 0;
    util::Bytes sealed;
  };

  /// The newest snapshot, or nullopt on a fresh directory.  Stray `.tmp`
  /// files (a crash mid-save) are ignored.
  [[nodiscard]] util::Result<std::optional<Loaded>> load_latest() const;

  /// LSNs of every published snapshot, ascending.
  [[nodiscard]] std::vector<std::uint64_t> list() const;

  /// Deletes every snapshot except the newest, plus leftover `.tmp` files.
  void prune_keep_latest() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  [[nodiscard]] std::string path_for_(std::uint64_t lsn) const;

  std::string dir_;
};

}  // namespace rproxy::storage
