#include "storage/log_dir.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

namespace rproxy::storage {

using util::ErrorCode;

namespace {

constexpr std::string_view kJournalPrefix = "journal-";
constexpr std::string_view kJournalSuffix = ".wal";

std::string journal_name(std::uint64_t base_lsn) {
  std::string digits = std::to_string(base_lsn);
  return std::string(kJournalPrefix) +
         std::string(20 - std::min<std::size_t>(digits.size(), 20), '0') +
         digits + std::string(kJournalSuffix);
}

std::optional<std::uint64_t> parse_journal_name(const std::string& name) {
  if (name.size() <= kJournalPrefix.size() + kJournalSuffix.size() ||
      name.compare(0, kJournalPrefix.size(), kJournalPrefix) != 0 ||
      name.compare(name.size() - kJournalSuffix.size(),
                   kJournalSuffix.size(), kJournalSuffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(kJournalPrefix.size(),
                  name.size() - kJournalPrefix.size() - kJournalSuffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::vector<std::uint64_t> list_journals(const std::string& dir) {
  std::vector<std::uint64_t> bases;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const auto base = parse_journal_name(entry.path().filename().string());
    if (base.has_value()) bases.push_back(*base);
  }
  std::sort(bases.begin(), bases.end());
  return bases;
}

}  // namespace

std::string LogDir::journal_path_(std::uint64_t base_lsn) const {
  return config_.dir + "/" + journal_name(base_lsn);
}

util::Result<LogDir> LogDir::open(const Config& config,
                                  Recovered* recovered) {
  std::error_code ec;
  std::filesystem::create_directories(config.dir, ec);
  if (ec) {
    return util::fail(ErrorCode::kUnavailable,
                      "cannot create storage dir '" + config.dir +
                          "': " + ec.message());
  }

  LogDir log(config);
  Recovered rec;
  RPROXY_ASSIGN_OR_RETURN(rec.snapshot, log.snapshots_.load_latest());
  const std::uint64_t covered =
      rec.snapshot.has_value() ? rec.snapshot->lsn : 0;

  // Replay every journal above the snapshot (normally exactly one; more
  // only if a crash interrupted compaction).  A torn tail is legal only
  // in the final file — anything cut short earlier would orphan the
  // records that follow it.
  std::vector<std::uint64_t> bases = list_journals(log.config_.dir);
  std::vector<std::uint64_t> live;
  for (const std::uint64_t base : bases) {
    if (base > covered) live.push_back(base);
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    RPROXY_ASSIGN_OR_RETURN(JournalReader::Scan scan,
                            JournalReader::read(log.journal_path_(live[i])));
    if (scan.tail_truncated && i + 1 < live.size()) {
      return util::fail(ErrorCode::kParseError,
                        "journal '" + log.journal_path_(live[i]) +
                            "' is corrupt mid-sequence (torn tail with "
                            "later journals present)");
    }
    rec.tail_truncated = rec.tail_truncated || scan.tail_truncated;
    for (JournalRecord& record : scan.records) {
      rec.tail.push_back(std::move(record));
    }
  }

  if (live.empty()) {
    // Fresh directory, or a crash landed between snapshot publication and
    // journal rotation: start a new journal right after the snapshot.
    RPROXY_ASSIGN_OR_RETURN(
        JournalWriter journal,
        JournalWriter::create(log.journal_path_(covered + 1), covered + 1,
                              log.config_.journal));
    log.journal_ = std::move(journal);
  } else {
    RPROXY_ASSIGN_OR_RETURN(
        JournalWriter journal,
        JournalWriter::open(log.journal_path_(live.back()),
                            log.config_.journal));
    log.journal_ = std::move(journal);
  }

  // Journals fully covered by the snapshot are garbage; sweep them (and
  // any stray .tmp) now that recovery no longer needs the directory
  // listing to be stable.
  for (const std::uint64_t base : bases) {
    if (base <= covered) {
      std::error_code rm_ec;
      std::filesystem::remove(log.journal_path_(base), rm_ec);
    }
  }
  log.snapshots_.prune_keep_latest();

  if (recovered != nullptr) *recovered = std::move(rec);
  return log;
}

util::Result<std::uint64_t> LogDir::append(std::uint16_t type,
                                           util::BytesView payload) {
  return journal_->append(type, payload);
}

util::Status LogDir::sync() { return journal_->sync(); }

util::Status LogDir::commit(std::uint64_t lsn) {
  std::shared_lock lock(*rotate_lock_);
  return journal_->commit(lsn);
}

JournalWriter::GroupStats LogDir::group_stats() const {
  std::shared_lock lock(*rotate_lock_);
  return journal_->group_stats();
}

std::uint64_t LogDir::durable_lsn() const {
  std::shared_lock lock(*rotate_lock_);
  return journal_->durable_lsn();
}

util::Result<LogDir::TailRead> LogDir::read_committed(
    std::uint64_t from_lsn, std::size_t max_records) const {
  // Shared rotation lock: a concurrent checkpoint() must not delete a
  // journal file out from under the scan.  Appends need no coordination —
  // the cap at durable_lsn keeps the scan inside the fully-written,
  // fsynced prefix.
  std::shared_lock lock(*rotate_lock_);
  TailRead out;
  out.durable_lsn = journal_->durable_lsn();
  if (from_lsn == 0) from_lsn = 1;
  if (from_lsn > out.durable_lsn) return out;  // caught up (or ahead)
  const std::vector<std::uint64_t> bases = list_journals(config_.dir);
  if (bases.empty() || bases.front() > from_lsn) {
    return util::fail(ErrorCode::kNotFound,
                      "journal records below LSN " +
                          std::to_string(bases.empty() ? out.durable_lsn + 1
                                                       : bases.front()) +
                          " were compacted; bootstrap from the snapshot");
  }
  for (std::size_t i = 0; i < bases.size(); ++i) {
    if (out.records.size() >= max_records) break;
    // File i covers [bases[i], bases[i+1]); skip files entirely below the
    // requested start.
    if (i + 1 < bases.size() && bases[i + 1] <= from_lsn) continue;
    RPROXY_ASSIGN_OR_RETURN(JournalReader::Scan scan,
                            JournalReader::read(journal_path_(bases[i])));
    for (JournalRecord& record : scan.records) {
      if (record.lsn < from_lsn) continue;
      if (record.lsn > out.durable_lsn ||
          out.records.size() >= max_records) {
        break;
      }
      out.records.push_back(std::move(record));
    }
  }
  return out;
}

util::Status LogDir::checkpoint(util::BytesView sealed_snapshot) {
  // Exclude committers for the whole rotation: a thread parked on the old
  // journal's barrier must not see its writer destroyed underneath it.
  // Their records are covered either way — the snapshot published below
  // includes everything appended so far.
  std::unique_lock rotation(*rotate_lock_);
  // Make everything the snapshot covers durable before publishing it —
  // the snapshot asserts "state through LSN N", so N must be on disk.
  RPROXY_RETURN_IF_ERROR(journal_->sync());
  const std::uint64_t covered = journal_->next_lsn() - 1;
  RPROXY_RETURN_IF_ERROR(snapshots_.save(covered, sealed_snapshot));
  // An empty active journal is already positioned right after `covered`
  // (e.g. two checkpoints in a row); rotating would collide with itself.
  const bool already_rotated =
      journal_->path() == journal_path_(covered + 1);
  if (!already_rotated) {
    // Rotate: new journal starting after the snapshot, then drop the old
    // file (every record in it is <= covered).
    const std::string old_path = journal_->path();
    RPROXY_ASSIGN_OR_RETURN(
        JournalWriter journal,
        JournalWriter::create(journal_path_(covered + 1), covered + 1,
                              config_.journal));
    journal_ = std::move(journal);
    std::error_code ec;
    std::filesystem::remove(old_path, ec);
  }
  snapshots_.prune_keep_latest();
  return util::Status::ok();
}

}  // namespace rproxy::storage
