#include "storage/crc32c.hpp"

#include <array>

namespace rproxy::storage {

namespace {

/// Castagnoli polynomial, reflected form.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(util::BytesView data, std::uint32_t init) {
  std::uint32_t crc = ~init;
  for (const std::uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace rproxy::storage
