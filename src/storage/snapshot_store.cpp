#include "storage/snapshot_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace rproxy::storage {

using util::ErrorCode;

namespace {

constexpr std::string_view kPrefix = "snapshot-";
constexpr std::string_view kSuffix = ".snap";

/// snapshot-<20-digit lsn>.snap, zero-padded so lexical order = LSN order.
std::string snapshot_name(std::uint64_t lsn) {
  std::string digits = std::to_string(lsn);
  return std::string(kPrefix) +
         std::string(20 - std::min<std::size_t>(digits.size(), 20), '0') +
         digits + std::string(kSuffix);
}

std::optional<std::uint64_t> parse_snapshot_name(const std::string& name) {
  if (name.size() <= kPrefix.size() + kSuffix.size() ||
      name.compare(0, kPrefix.size(), kPrefix) != 0 ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return std::nullopt;
  }
  const std::string digits = name.substr(
      kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

util::Status io_fail(const std::string& what, const std::string& path) {
  return util::fail(ErrorCode::kUnavailable,
                    what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

std::string SnapshotStore::path_for_(std::uint64_t lsn) const {
  return dir_ + "/" + snapshot_name(lsn);
}

util::Status SnapshotStore::save(std::uint64_t lsn,
                                 util::BytesView sealed) const {
  const std::string final_path = path_for_(lsn);
  const std::string tmp_path = final_path + ".tmp";
  const int fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
             0644);
  if (fd < 0) return io_fail("snapshot create", tmp_path);
  std::size_t off = 0;
  while (off < sealed.size()) {
    const ssize_t n = ::write(fd, sealed.data() + off, sealed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const util::Status st = io_fail("snapshot write", tmp_path);
      ::close(fd);
      return st;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const util::Status st = io_fail("snapshot fsync", tmp_path);
    ::close(fd);
    return st;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return io_fail("snapshot rename", final_path);
  }
  // fsync the directory so the rename itself is durable.
  const int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return util::Status::ok();
}

util::Result<std::optional<SnapshotStore::Loaded>>
SnapshotStore::load_latest() const {
  const std::vector<std::uint64_t> lsns = list();
  if (lsns.empty()) return std::optional<Loaded>{};
  const std::uint64_t lsn = lsns.back();
  const std::string path = path_for_(lsn);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::fail(ErrorCode::kUnavailable,
                      "cannot read snapshot '" + path + "'");
  }
  Loaded loaded;
  loaded.lsn = lsn;
  loaded.sealed.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  return std::optional<Loaded>{std::move(loaded)};
}

std::vector<std::uint64_t> SnapshotStore::list() const {
  std::vector<std::uint64_t> lsns;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const auto lsn = parse_snapshot_name(entry.path().filename().string());
    if (lsn.has_value()) lsns.push_back(*lsn);
  }
  std::sort(lsns.begin(), lsns.end());
  return lsns;
}

void SnapshotStore::prune_keep_latest() const {
  const std::vector<std::uint64_t> lsns = list();
  std::error_code ec;
  for (std::size_t i = 0; i + 1 < lsns.size(); ++i) {
    std::filesystem::remove(path_for_(lsns[i]), ec);
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code rm_ec;
      std::filesystem::remove(entry.path(), rm_ec);
    }
  }
}

}  // namespace rproxy::storage
