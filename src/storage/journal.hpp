// CRC32C-framed, length-prefixed append-only journal.
//
// The write-ahead log under the accounting durability layer (DESIGN.md
// §5e).  A journal file is a fixed header (magic, format version, the LSN
// of its first record) followed by frames:
//
//   [u32 payload length][u16 record type][u32 crc32c][payload ...]
//
// with the CRC computed over length, type and payload, so any torn byte —
// in the header or the body — fails the check.  Each frame is issued as a
// single write; a crash can therefore leave at most one partial frame, at
// the tail.  Recovery truncates that torn tail and resumes appending
// instead of failing: losing the record whose reply was never sent is the
// correct outcome, the client retries it.
//
// Durability is a policy knob: `kNever` trusts the OS page cache (fastest,
// loses the tail on power failure), `kBatch` fsyncs every N appends,
// `kEveryRecord` fsyncs per append (the strict write-ahead guarantee), and
// `kGroup` amortizes the strict guarantee across concurrent appenders:
// append() only buffers, and commit(lsn) parks the caller on a committing
// leader whose single fsync covers every record appended since the last
// barrier.  With N writers in flight one disk flush makes N records
// durable, so durable throughput grows with concurrency instead of
// serializing on the disk.  bench_t9_journal / bench_t11_event_loop
// measure the spread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storage/crash_point.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace rproxy::storage {

/// When appends reach stable storage.
enum class FsyncPolicy {
  kNever,        ///< never fsync; the OS decides
  kBatch,        ///< fsync every `batch_records` appends
  kEveryRecord,  ///< fsync after every append
  kGroup,        ///< fsync on commit(); one barrier covers all appenders
};

[[nodiscard]] std::string_view fsync_policy_name(FsyncPolicy policy);

/// One recovered record.
struct JournalRecord {
  std::uint64_t lsn = 0;  ///< 1-based, file base + position
  std::uint16_t type = 0;
  util::Bytes payload;
};

/// Sequentially scans a journal file, validating every frame.
class JournalReader {
 public:
  struct Scan {
    std::uint64_t base_lsn = 0;          ///< from the file header
    std::vector<JournalRecord> records;  ///< every intact record, in order
    /// True when a partial or corrupt final frame was dropped; the valid
    /// prefix ends at `valid_bytes`.
    bool tail_truncated = false;
    std::uint64_t valid_bytes = 0;  ///< header + intact frames
  };

  /// Reads the whole file.  A torn tail is NOT an error (see Scan); a
  /// missing file or bad header is.
  [[nodiscard]] static util::Result<Scan> read(const std::string& path);
};

/// Appender.  append() is not thread-safe; callers serialize (the
/// accounting server appends under its state mutex).  commit() IS
/// thread-safe — under FsyncPolicy::kGroup many threads park on it
/// concurrently, each outside whatever lock serialized its append.
class JournalWriter {
 public:
  struct Config {
    FsyncPolicy fsync_policy = FsyncPolicy::kBatch;
    std::size_t batch_records = 8;
    /// Test-only kill injection; not owned.  When the crash point fires,
    /// the fatal frame lands torn on disk and append() reports
    /// kUnavailable — the caller must treat the process as dead.
    CrashPoint* crash = nullptr;
  };

  /// Creates a fresh journal whose first record will carry `base_lsn`.
  /// Fails if the file already exists.
  [[nodiscard]] static util::Result<JournalWriter> create(
      const std::string& path, std::uint64_t base_lsn, Config config);

  /// Opens an existing journal for appending: scans it, truncates a torn
  /// tail, and positions at the end of the valid prefix.
  [[nodiscard]] static util::Result<JournalWriter> open(
      const std::string& path, Config config);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Group-commit counters (populated under FsyncPolicy::kGroup).
  struct GroupStats {
    std::uint64_t fsyncs = 0;     ///< commit barriers completed
    std::uint64_t committed = 0;  ///< records those barriers covered
    std::uint64_t waits = 0;      ///< commit() calls that parked on a leader
    std::uint64_t max_group = 0;  ///< most records one barrier covered
  };

  /// Appends one record and applies the fsync policy; returns its LSN.
  /// kUnavailable after a crash-point kill (the frame may be torn on
  /// disk; the caller must not send the reply the record covers).  Under
  /// kGroup the record is NOT durable until a commit() at or above its
  /// LSN returns OK.
  [[nodiscard]] util::Result<std::uint64_t> append(std::uint16_t type,
                                                   util::BytesView payload);

  /// Blocks until every record up to `lsn` is covered by a completed
  /// fsync.  Thread-safe.  Under kGroup the first arrival becomes the
  /// commit leader (one fsync covering everything appended so far) and
  /// later arrivals park on its barrier; under kEveryRecord the guarantee
  /// already held at append() and this returns immediately.  kNever /
  /// kBatch make no per-record promise, so commit() is a no-op there too.
  /// A failed group fsync is STICKY: the failure is reported to every
  /// parked appender — not just the leader — and to every later call, and
  /// the journal is dead from then on (storage-dead semantics; a log that
  /// cannot flush must stop accepting promises).
  [[nodiscard]] util::Status commit(std::uint64_t lsn);

  /// Forces an fsync regardless of policy.
  [[nodiscard]] util::Status sync();

  [[nodiscard]] GroupStats group_stats() const;

  /// LSN the next append will return.
  [[nodiscard]] std::uint64_t next_lsn() const { return next_lsn_; }

  /// Highest LSN covered by a completed fsync.  This is the replication
  /// shipping watermark (DESIGN.md §5h): a record above it could still be
  /// lost to a power failure, so it must never leave the primary.
  /// Thread-safe.
  [[nodiscard]] std::uint64_t durable_lsn() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  /// Shared barrier state for commit(); heap-allocated so the writer
  /// stays movable (mutexes are not).
  struct CommitState {
    std::mutex mutex;
    std::condition_variable cv;
    bool sync_in_progress = false;
    /// Highest LSN covered by a completed fsync.
    std::uint64_t durable_lsn = 0;
    /// Sticky first fsync failure; every waiter and later caller sees it.
    util::Status error = util::Status::ok();
    GroupStats stats;
  };

  JournalWriter() = default;

  /// fsync(fd_) with crash-point gating; marks the writer dead on failure.
  [[nodiscard]] util::Status fsync_now_();

  std::string path_;
  int fd_ = -1;
  std::uint64_t next_lsn_ = 1;
  Config config_;
  std::size_t unsynced_records_ = 0;
  /// Crash point fired or unrecoverable I/O error.  Atomic because a
  /// group-commit leader can mark the writer dead while another thread is
  /// mid-append.
  std::atomic<bool> dead_{false};
  /// Highest LSN whose frame is fully written to the fd.  Guarded by
  /// commit_->mutex (the commit leader reads it from another thread).
  std::uint64_t appended_lsn_ = 0;
  std::unique_ptr<CommitState> commit_;
};

/// Largest accepted record payload.  A corrupt length prefix must not make
/// recovery attempt a multi-gigabyte allocation; anything above this is
/// treated as a torn tail.
inline constexpr std::uint32_t kMaxJournalRecordBytes = 64u << 20;

}  // namespace rproxy::storage
