// CRC32C-framed, length-prefixed append-only journal.
//
// The write-ahead log under the accounting durability layer (DESIGN.md
// §5e).  A journal file is a fixed header (magic, format version, the LSN
// of its first record) followed by frames:
//
//   [u32 payload length][u16 record type][u32 crc32c][payload ...]
//
// with the CRC computed over length, type and payload, so any torn byte —
// in the header or the body — fails the check.  Each frame is issued as a
// single write; a crash can therefore leave at most one partial frame, at
// the tail.  Recovery truncates that torn tail and resumes appending
// instead of failing: losing the record whose reply was never sent is the
// correct outcome, the client retries it.
//
// Durability is a policy knob: `kNever` trusts the OS page cache (fastest,
// loses the tail on power failure), `kBatch` fsyncs every N appends, and
// `kEveryRecord` fsyncs per append (the strict write-ahead guarantee).
// bench_t9_journal measures the spread.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/crash_point.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace rproxy::storage {

/// When appends reach stable storage.
enum class FsyncPolicy {
  kNever,        ///< never fsync; the OS decides
  kBatch,        ///< fsync every `batch_records` appends
  kEveryRecord,  ///< fsync after every append
};

[[nodiscard]] std::string_view fsync_policy_name(FsyncPolicy policy);

/// One recovered record.
struct JournalRecord {
  std::uint64_t lsn = 0;  ///< 1-based, file base + position
  std::uint16_t type = 0;
  util::Bytes payload;
};

/// Sequentially scans a journal file, validating every frame.
class JournalReader {
 public:
  struct Scan {
    std::uint64_t base_lsn = 0;          ///< from the file header
    std::vector<JournalRecord> records;  ///< every intact record, in order
    /// True when a partial or corrupt final frame was dropped; the valid
    /// prefix ends at `valid_bytes`.
    bool tail_truncated = false;
    std::uint64_t valid_bytes = 0;  ///< header + intact frames
  };

  /// Reads the whole file.  A torn tail is NOT an error (see Scan); a
  /// missing file or bad header is.
  [[nodiscard]] static util::Result<Scan> read(const std::string& path);
};

/// Appender.  Not thread-safe; callers serialize (the accounting server
/// appends under its state mutex).
class JournalWriter {
 public:
  struct Config {
    FsyncPolicy fsync_policy = FsyncPolicy::kBatch;
    std::size_t batch_records = 8;
    /// Test-only kill injection; not owned.  When the crash point fires,
    /// the fatal frame lands torn on disk and append() reports
    /// kUnavailable — the caller must treat the process as dead.
    CrashPoint* crash = nullptr;
  };

  /// Creates a fresh journal whose first record will carry `base_lsn`.
  /// Fails if the file already exists.
  [[nodiscard]] static util::Result<JournalWriter> create(
      const std::string& path, std::uint64_t base_lsn, Config config);

  /// Opens an existing journal for appending: scans it, truncates a torn
  /// tail, and positions at the end of the valid prefix.
  [[nodiscard]] static util::Result<JournalWriter> open(
      const std::string& path, Config config);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one record and applies the fsync policy; returns its LSN.
  /// kUnavailable after a crash-point kill (the frame may be torn on
  /// disk; the caller must not send the reply the record covers).
  [[nodiscard]] util::Result<std::uint64_t> append(std::uint16_t type,
                                                   util::BytesView payload);

  /// Forces an fsync regardless of policy.
  [[nodiscard]] util::Status sync();

  /// LSN the next append will return.
  [[nodiscard]] std::uint64_t next_lsn() const { return next_lsn_; }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  JournalWriter() = default;

  std::string path_;
  int fd_ = -1;
  std::uint64_t next_lsn_ = 1;
  Config config_;
  std::size_t unsynced_records_ = 0;
  bool dead_ = false;  ///< crash point fired or unrecoverable I/O error
};

/// Largest accepted record payload.  A corrupt length prefix must not make
/// recovery attempt a multi-gigabyte allocation; anything above this is
/// treated as a torn tail.
inline constexpr std::uint32_t kMaxJournalRecordBytes = 64u << 20;

}  // namespace rproxy::storage
