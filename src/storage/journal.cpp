#include "storage/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "storage/crc32c.hpp"

namespace rproxy::storage {

using util::ErrorCode;

namespace {

/// "RPJ1": rproxy journal, format 1.
constexpr std::uint32_t kMagic = 0x52504A31u;
constexpr std::size_t kFileHeaderSize = 4 + 4 + 8 + 4;  // magic ver lsn crc
constexpr std::size_t kFrameHeaderSize = 4 + 2 + 4;     // len type crc

void put_u32(util::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u16(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(util::Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) |
                                    std::uint16_t{p[1]});
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return (std::uint64_t{get_u32(p)} << 32) | std::uint64_t{get_u32(p + 4)};
}

util::Bytes encode_file_header(std::uint64_t base_lsn) {
  util::Bytes header;
  header.reserve(kFileHeaderSize);
  put_u32(header, kMagic);
  put_u32(header, 1);  // format version
  put_u64(header, base_lsn);
  put_u32(header, crc32c({header.data(), header.size()}));
  return header;
}

/// CRC input of a frame: the length and type octets followed by the
/// payload, i.e. everything except the CRC field itself.
std::uint32_t frame_crc(std::uint32_t len, std::uint16_t type,
                        util::BytesView payload) {
  util::Bytes head;
  head.reserve(6);
  put_u32(head, len);
  put_u16(head, type);
  return crc32c(payload, crc32c({head.data(), head.size()}));
}

util::Bytes encode_frame(std::uint16_t type, util::BytesView payload) {
  util::Bytes frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  put_u32(frame, len);
  put_u16(frame, type);
  put_u32(frame, frame_crc(len, type, payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

util::Status io_fail(const std::string& what, const std::string& path) {
  return util::fail(ErrorCode::kUnavailable,
                    what + " '" + path + "': " + std::strerror(errno));
}

/// write(2) with EINTR retry and short-write continuation.
util::Status write_all(int fd, util::BytesView data,
                       const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_fail("journal write", path);
    }
    off += static_cast<std::size_t>(n);
  }
  return util::Status::ok();
}

util::Result<util::Bytes> read_whole_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return io_fail("journal open", path);
  util::Bytes data;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return io_fail("journal read", path);
    }
    if (n == 0) break;
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);
  return data;
}

}  // namespace

std::string_view fsync_policy_name(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kEveryRecord:
      return "every_record";
    case FsyncPolicy::kGroup:
      return "group";
  }
  return "?";
}

util::Result<JournalReader::Scan> JournalReader::read(
    const std::string& path) {
  RPROXY_ASSIGN_OR_RETURN(util::Bytes data, read_whole_file(path));
  if (data.size() < kFileHeaderSize) {
    return util::fail(ErrorCode::kParseError,
                      "journal '" + path + "' shorter than its header");
  }
  if (get_u32(data.data()) != kMagic) {
    return util::fail(ErrorCode::kParseError,
                      "'" + path + "' is not a journal (bad magic)");
  }
  const std::uint32_t version = get_u32(data.data() + 4);
  if (version != 1) {
    return util::fail(ErrorCode::kParseError,
                      "journal '" + path + "' has unknown format version " +
                          std::to_string(version));
  }
  if (crc32c({data.data(), kFileHeaderSize - 4}) !=
      get_u32(data.data() + kFileHeaderSize - 4)) {
    return util::fail(ErrorCode::kParseError,
                      "journal '" + path + "' header checksum mismatch");
  }

  Scan scan;
  scan.base_lsn = get_u64(data.data() + 8);
  std::size_t pos = kFileHeaderSize;
  // Walk frames until the data runs out or a frame fails its CRC.  Either
  // way the rest of the file is a torn tail: frames are appended in order
  // and each is a single write, so nothing after a bad frame can be
  // trusted (its very length prefix may be garbage).
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeaderSize) {
      scan.tail_truncated = true;
      break;
    }
    const std::uint32_t len = get_u32(data.data() + pos);
    const std::uint16_t type = get_u16(data.data() + pos + 4);
    const std::uint32_t crc = get_u32(data.data() + pos + 6);
    if (len > kMaxJournalRecordBytes ||
        len > data.size() - pos - kFrameHeaderSize) {
      scan.tail_truncated = true;
      break;
    }
    const util::BytesView payload{data.data() + pos + kFrameHeaderSize, len};
    if (frame_crc(len, type, payload) != crc) {
      scan.tail_truncated = true;
      break;
    }
    JournalRecord record;
    record.lsn = scan.base_lsn + scan.records.size();
    record.type = type;
    record.payload = util::to_bytes(payload);
    scan.records.push_back(std::move(record));
    pos += kFrameHeaderSize + len;
  }
  scan.valid_bytes = scan.tail_truncated
                         ? static_cast<std::uint64_t>(pos)
                         : static_cast<std::uint64_t>(data.size());
  return scan;
}

util::Result<JournalWriter> JournalWriter::create(const std::string& path,
                                                  std::uint64_t base_lsn,
                                                  Config config) {
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return io_fail("journal create", path);
  const util::Bytes header = encode_file_header(base_lsn);
  util::Status written = write_all(fd, header, path);
  if (written.is_ok() && config.fsync_policy != FsyncPolicy::kNever &&
      ::fsync(fd) != 0) {
    written = io_fail("journal fsync", path);
  }
  if (!written.is_ok()) {
    ::close(fd);
    return written;
  }
  JournalWriter writer;
  writer.path_ = path;
  writer.fd_ = fd;
  writer.next_lsn_ = base_lsn;
  writer.config_ = config;
  writer.appended_lsn_ = base_lsn - 1;
  writer.commit_ = std::make_unique<CommitState>();
  writer.commit_->durable_lsn = base_lsn - 1;
  return writer;
}

util::Result<JournalWriter> JournalWriter::open(const std::string& path,
                                                Config config) {
  RPROXY_ASSIGN_OR_RETURN(JournalReader::Scan scan,
                          JournalReader::read(path));
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return io_fail("journal open", path);
  // Truncate the torn tail (if any) so new frames start on a clean
  // boundary, then append from there.
  if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
    const util::Status st = io_fail("journal truncate", path);
    ::close(fd);
    return st;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const util::Status st = io_fail("journal seek", path);
    ::close(fd);
    return st;
  }
  JournalWriter writer;
  writer.path_ = path;
  writer.fd_ = fd;
  writer.next_lsn_ = scan.base_lsn + scan.records.size();
  writer.config_ = config;
  // Records that survived the reopen scan count as durable: they were on
  // disk before this process existed.
  writer.appended_lsn_ = writer.next_lsn_ - 1;
  writer.commit_ = std::make_unique<CommitState>();
  writer.commit_->durable_lsn = writer.next_lsn_ - 1;
  return writer;
}

// Moves are only legal while no commit() is in flight (construction and
// LogDir rotation, both of which exclude concurrent committers).
JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      next_lsn_(other.next_lsn_),
      config_(other.config_),
      unsynced_records_(other.unsynced_records_),
      dead_(other.dead_.load()),
      appended_lsn_(other.appended_lsn_),
      commit_(std::move(other.commit_)) {
  other.fd_ = -1;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    next_lsn_ = other.next_lsn_;
    config_ = other.config_;
    unsynced_records_ = other.unsynced_records_;
    dead_.store(other.dead_.load());
    appended_lsn_ = other.appended_lsn_;
    commit_ = std::move(other.commit_);
    other.fd_ = -1;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) {
    if (!dead_.load() && config_.fsync_policy != FsyncPolicy::kNever) {
      ::fsync(fd_);
    }
    ::close(fd_);
  }
}

util::Result<std::uint64_t> JournalWriter::append(std::uint16_t type,
                                                  util::BytesView payload) {
  if (dead_.load() || fd_ < 0) {
    return util::fail(ErrorCode::kUnavailable,
                      "journal '" + path_ + "' is dead (crashed)");
  }
  if (payload.size() > kMaxJournalRecordBytes) {
    return util::fail(ErrorCode::kInternal, "journal record too large");
  }
  const util::Bytes frame = encode_frame(type, payload);
  std::size_t admitted = frame.size();
  if (config_.crash != nullptr) {
    admitted = config_.crash->admit(frame.size());
  }
  RPROXY_RETURN_IF_ERROR(
      write_all(fd_, {frame.data(), admitted}, path_));
  if (admitted < frame.size()) {
    // Simulated kill mid-write: the torn frame is on disk, the record is
    // NOT durable, and this "process" no longer accepts work.
    dead_.store(true);
    return util::fail(ErrorCode::kUnavailable,
                      "journal '" + path_ + "' crashed mid-append (write " +
                          std::to_string(config_.crash->writes_seen()) +
                          ")");
  }
  const std::uint64_t lsn = next_lsn_;
  next_lsn_ += 1;
  unsynced_records_ += 1;
  {
    // The commit leader reads appended_lsn_ from another thread; publish
    // the fully-written frame under the barrier mutex.
    std::lock_guard lock(commit_->mutex);
    appended_lsn_ = lsn;
  }
  const bool want_sync =
      config_.fsync_policy == FsyncPolicy::kEveryRecord ||
      (config_.fsync_policy == FsyncPolicy::kBatch &&
       unsynced_records_ >= std::max<std::size_t>(config_.batch_records, 1));
  if (want_sync) RPROXY_RETURN_IF_ERROR(sync());
  return lsn;
}

util::Status JournalWriter::fsync_now_() {
  if (config_.crash != nullptr && !config_.crash->admit_fsync()) {
    dead_.store(true);
    return util::fail(ErrorCode::kUnavailable,
                      "journal '" + path_ + "' fsync failed (crash point, "
                      "sync " + std::to_string(config_.crash->syncs_seen()) +
                          ")");
  }
  if (::fsync(fd_) != 0) {
    dead_.store(true);
    return io_fail("journal fsync", path_);
  }
  return util::Status::ok();
}

util::Status JournalWriter::sync() {
  if (dead_.load() || fd_ < 0) {
    return util::fail(ErrorCode::kUnavailable,
                      "journal '" + path_ + "' is dead (crashed)");
  }
  RPROXY_RETURN_IF_ERROR(fsync_now_());
  unsynced_records_ = 0;
  std::lock_guard lock(commit_->mutex);
  commit_->durable_lsn = std::max(commit_->durable_lsn, appended_lsn_);
  return util::Status::ok();
}

util::Status JournalWriter::commit(std::uint64_t lsn) {
  if (fd_ < 0) {
    return util::fail(ErrorCode::kUnavailable,
                      "journal '" + path_ + "' is dead (crashed)");
  }
  if (config_.fsync_policy != FsyncPolicy::kGroup) {
    // kEveryRecord already flushed in append(); kNever/kBatch make no
    // per-record promise for commit() to wait on.
    return dead_.load()
               ? util::fail(ErrorCode::kUnavailable,
                            "journal '" + path_ + "' is dead (crashed)")
               : util::Status::ok();
  }
  CommitState& cs = *commit_;
  std::unique_lock lock(cs.mutex);
  for (;;) {
    // Sticky failure first: once any barrier's fsync failed, EVERY parked
    // appender and every later arrival gets the error, because none of
    // their records can be promised durable any more.
    if (!cs.error.is_ok()) return cs.error;
    if (dead_.load()) {
      return util::fail(ErrorCode::kUnavailable,
                        "journal '" + path_ + "' is dead (crashed)");
    }
    if (cs.durable_lsn >= lsn) return util::Status::ok();
    if (!cs.sync_in_progress) break;
    cs.stats.waits += 1;
    cs.cv.wait(lock);
  }
  // Become the leader: one fsync covers every record fully appended
  // before it starts — ours included, since our append() returned before
  // this call.
  cs.sync_in_progress = true;
  std::uint64_t target = appended_lsn_;
  lock.unlock();
  // Bounded accumulation: appenders already racing toward their own
  // commit() get a moment to land so this flush covers them too (on a
  // loaded single core they otherwise never run before the leader
  // reaches the disk, and groups stay small).  Exits the moment the
  // append stream quiesces — a lone committer pays a few yields (~µs)
  // against the fsync it was about to do anyway.
  for (int round = 0; round < 4; ++round) {
    std::this_thread::yield();
    std::uint64_t now = 0;
    {
      std::lock_guard relock(cs.mutex);
      now = appended_lsn_;
    }
    if (now == target) break;
    target = now;
  }
  const util::Status synced = fsync_now_();
  lock.lock();
  cs.sync_in_progress = false;
  if (!synced.is_ok()) {
    cs.error = synced;
  } else {
    cs.stats.fsyncs += 1;
    const std::uint64_t covered = target - cs.durable_lsn;
    cs.stats.committed += covered;
    cs.stats.max_group = std::max(cs.stats.max_group, covered);
    cs.durable_lsn = std::max(cs.durable_lsn, target);
  }
  cs.cv.notify_all();
  return synced;
}

JournalWriter::GroupStats JournalWriter::group_stats() const {
  std::lock_guard lock(commit_->mutex);
  return commit_->stats;
}

std::uint64_t JournalWriter::durable_lsn() const {
  std::lock_guard lock(commit_->mutex);
  return commit_->durable_lsn;
}

}  // namespace rproxy::storage
