// Deterministic crash-point injection for the storage layer.
//
// The durability contract is "a process may be killed at ANY byte and
// recovery still reaches exactly-once state", which is untestable with
// real kill(2) — the schedule is not reproducible.  A CrashPoint instead
// simulates the kill inside the journal's write path: the K-th admitted
// write is cut short at a seeded byte offset (a torn record on disk,
// exactly what a mid-write power loss leaves) and every write after it is
// refused, as a dead process would.  K and the tear offset are drawn from
// a util::Rng, so a failing crash-recovery run replays from its seed just
// like a net::FaultPlan schedule does.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace rproxy::storage {

/// Seeded description of one simulated kill.
struct CrashPlan {
  std::uint64_t seed = 1;
  /// The fatal write index K is drawn uniformly from [min, max].
  std::uint64_t min_appends = 1;
  std::uint64_t max_appends = 32;
  /// True: the K-th write lands partially (torn record at a seeded byte).
  /// False: the process dies just before the K-th write (clean boundary).
  bool tear_mid_write = true;
};

/// Gate the journal writer routes every frame write through.  Inert until
/// arm()ed, so a server can journal its setup traffic (account creation,
/// an initial checkpoint) and only then start the doomsday clock.
class CrashPoint {
 public:
  /// Inert: admits everything, never dies.
  CrashPoint() = default;

  explicit CrashPoint(const CrashPlan& plan) { arm(plan); }

  /// Draws the kill write index and tear fraction from the plan's seed.
  void arm(const CrashPlan& plan);

  /// Called once per frame write with the frame's size; returns how many
  /// bytes actually reach the file.  Returns `size` while alive, a seeded
  /// partial count on the fatal write, and 0 forever after.
  [[nodiscard]] std::size_t admit(std::size_t size);

  /// Arms fsync-failure injection: the k-th admit_fsync() call (1-based)
  /// and every one after it reports failure — the disk is gone, not just
  /// one write.  Independent of the write-kill plan; 0 disables.  Models
  /// the group-commit failure mode where ONE failed fsync must surface to
  /// every appender parked on the barrier, not only the leader.
  void fail_fsync_at(std::uint64_t k) { fsync_fail_at_ = k; }

  /// Called once per fsync; false = the fsync "failed".
  [[nodiscard]] bool admit_fsync();

  /// fsyncs admitted or failed so far.
  [[nodiscard]] std::uint64_t syncs_seen() const { return syncs_; }

  /// True once the kill point has fired.
  [[nodiscard]] bool dead() const { return dead_; }

  /// The fatal write index (0 while unarmed).
  [[nodiscard]] std::uint64_t kill_at() const { return kill_at_; }

  /// Writes admitted so far (including the torn one).
  [[nodiscard]] std::uint64_t writes_seen() const { return writes_; }

 private:
  std::uint64_t kill_at_ = 0;  ///< 0 = inert
  double tear_fraction_ = 0.0;
  bool tear_ = false;
  std::uint64_t writes_ = 0;
  std::uint64_t fsync_fail_at_ = 0;  ///< 0 = inert
  std::uint64_t syncs_ = 0;
  bool dead_ = false;
};

}  // namespace rproxy::storage
