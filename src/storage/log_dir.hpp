// One durable state directory: snapshots + the active journal.
//
// LogDir ties the two primitives into the recovery protocol the
// accounting server relies on (DESIGN.md §5e):
//
//   * open():  load the newest sealed snapshot (LSN N), replay the
//     journal records with LSN > N, truncate a torn tail, resume
//     appending.  A crash at ANY byte of any prior write lands in one of
//     these cases.
//   * checkpoint(): publish a snapshot at the current LSN, rotate to a
//     fresh journal starting at LSN+1, and delete the superseded journal
//     and snapshot files (log compaction — snapshot N supersedes every
//     record <= N).
//
// Journal files are `journal-<base LSN>.wal`; by construction at most one
// has a base above the newest snapshot (rotation only happens inside
// checkpoint), and files at or below it contain only superseded records.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "storage/journal.hpp"
#include "storage/snapshot_store.hpp"

namespace rproxy::storage {

class LogDir {
 public:
  struct Config {
    std::string dir;
    JournalWriter::Config journal;
  };

  /// What open() recovered; the caller restores the snapshot and replays
  /// the tail into its in-memory state.
  struct Recovered {
    std::optional<SnapshotStore::Loaded> snapshot;
    std::vector<JournalRecord> tail;  ///< records with LSN > snapshot LSN
    bool tail_truncated = false;      ///< a torn final record was dropped
  };

  /// Opens (creating the directory if needed) and recovers.
  [[nodiscard]] static util::Result<LogDir> open(const Config& config,
                                                 Recovered* recovered);

  LogDir(LogDir&&) = default;
  LogDir& operator=(LogDir&&) = default;

  /// Appends one typed record; returns its LSN.
  [[nodiscard]] util::Result<std::uint64_t> append(std::uint16_t type,
                                                   util::BytesView payload);

  /// Group commit (FsyncPolicy::kGroup): blocks until every record up to
  /// `lsn` is covered by a completed fsync; see JournalWriter::commit.
  /// Unlike append()/checkpoint(), callers invoke this OUTSIDE whatever
  /// lock serializes their appends — parking many threads on one fsync is
  /// the whole point.  Safe against a concurrent checkpoint(): commit
  /// holds the rotation lock shared, checkpoint holds it exclusive.
  [[nodiscard]] util::Status commit(std::uint64_t lsn);

  /// Group-commit counters of the ACTIVE journal (reset at rotation).
  [[nodiscard]] JournalWriter::GroupStats group_stats() const;

  /// Forces the journal to stable storage.
  [[nodiscard]] util::Status sync();

  /// Publishes `sealed_snapshot` as covering everything appended so far,
  /// rotates the journal, and compacts superseded files.
  [[nodiscard]] util::Status checkpoint(util::BytesView sealed_snapshot);

  /// LSN the next append will return.
  [[nodiscard]] std::uint64_t next_lsn() const {
    return journal_->next_lsn();
  }

  /// Highest LSN covered by a completed fsync of the active journal (the
  /// replication shipping watermark).  Thread-safe.
  [[nodiscard]] std::uint64_t durable_lsn() const;

  /// One journal-tailing read for replication (DESIGN.md §5h).
  struct TailRead {
    std::vector<JournalRecord> records;  ///< LSNs in [from_lsn, durable_lsn]
    std::uint64_t durable_lsn = 0;       ///< watermark at read time
  };

  /// Committed records with LSN >= `from_lsn`, capped at the durable
  /// watermark (shipped ⊆ fsynced) and at `max_records`.  Safe against a
  /// concurrent append or checkpoint: files are scanned under the
  /// rotation lock, and a frame the appender is mid-way through writing
  /// reads as a torn tail — which is above the watermark anyway, since
  /// every frame at or below it was fully written before its fsync.
  /// Fails kNotFound when `from_lsn` predates the oldest journal on disk
  /// (compacted away by a checkpoint); the caller bootstraps the follower
  /// from latest_snapshot() instead.
  [[nodiscard]] util::Result<TailRead> read_committed(
      std::uint64_t from_lsn, std::size_t max_records) const;

  /// The newest sealed snapshot (a standby's bootstrap payload), or
  /// nullopt for a directory that has never checkpointed.
  [[nodiscard]] util::Result<std::optional<SnapshotStore::Loaded>>
  latest_snapshot() const {
    return snapshots_.load_latest();
  }

  [[nodiscard]] const std::string& dir() const { return config_.dir; }

 private:
  explicit LogDir(Config config)
      : config_(std::move(config)),
        snapshots_(config_.dir),
        rotate_lock_(std::make_unique<std::shared_mutex>()) {}

  [[nodiscard]] std::string journal_path_(std::uint64_t base_lsn) const;

  Config config_;
  SnapshotStore snapshots_;
  /// optional<> only for two-phase construction; always set after open().
  std::optional<JournalWriter> journal_;
  /// checkpoint() replaces journal_ while commit() may be parked on it
  /// from threads that do not hold the owner's append lock; heap-held so
  /// LogDir stays movable.
  std::unique_ptr<std::shared_mutex> rotate_lock_;
};

}  // namespace rproxy::storage
