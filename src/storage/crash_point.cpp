#include "storage/crash_point.hpp"

namespace rproxy::storage {

void CrashPoint::arm(const CrashPlan& plan) {
  util::Rng rng(plan.seed);
  kill_at_ = static_cast<std::uint64_t>(
      rng.range(static_cast<std::int64_t>(plan.min_appends),
                static_cast<std::int64_t>(
                    plan.max_appends < plan.min_appends ? plan.min_appends
                                                        : plan.max_appends)));
  tear_fraction_ = rng.next_double();
  tear_ = plan.tear_mid_write;
  writes_ = 0;
  dead_ = false;
}

bool CrashPoint::admit_fsync() {
  syncs_ += 1;
  if (fsync_fail_at_ == 0) return true;
  if (syncs_ < fsync_fail_at_) return true;
  dead_ = true;
  return false;
}

std::size_t CrashPoint::admit(std::size_t size) {
  if (dead_) return 0;
  if (kill_at_ == 0) return size;  // inert
  writes_ += 1;
  if (writes_ < kill_at_) return size;
  dead_ = true;
  if (!tear_) return 0;
  // Torn write: a seeded prefix of the frame reaches the file.  The
  // fraction was fixed at arm() time so the byte offset is a pure function
  // of the seed and the frame being written.
  return static_cast<std::size_t>(tear_fraction_ *
                                  static_cast<double>(size));
}

}  // namespace rproxy::storage
