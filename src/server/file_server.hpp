// File server: the end-server of the paper's capability example (§3.1).
//
// "To create a read capability for a particular file, a user authorized to
// read that file requests a restricted proxy for use at the file server
// containing the file, but with the restriction that it can only be used
// to read the named file."
//
// Operations: "read", "write", "delete", "list".
#pragma once

#include <map>
#include <mutex>

#include "server/end_server.hpp"

namespace rproxy::server {

class FileServer final : public EndServer {
 public:
  using EndServer::EndServer;

  /// Direct (out-of-band) content manipulation for setup in tests/examples.
  void put_file(const ObjectName& path, std::string contents);
  [[nodiscard]] bool has_file(const ObjectName& path) const;
  [[nodiscard]] util::Result<std::string> file_contents(
      const ObjectName& path) const;
  [[nodiscard]] std::size_t file_count() const {
    std::lock_guard lock(files_mutex_);
    return files_.size();
  }

 protected:
  util::Result<util::Bytes> perform(const AppRequestPayload& request,
                                    const AuthorizedRequest& info) override;

 private:
  /// Guards files_: perform() runs on concurrent transport threads.
  mutable std::mutex files_mutex_;
  std::map<ObjectName, std::string> files_;
};

}  // namespace rproxy::server
