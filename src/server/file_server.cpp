#include "server/file_server.hpp"

namespace rproxy::server {

using util::ErrorCode;

void FileServer::put_file(const ObjectName& path, std::string contents) {
  std::lock_guard lock(files_mutex_);
  files_[path] = std::move(contents);
}

bool FileServer::has_file(const ObjectName& path) const {
  std::lock_guard lock(files_mutex_);
  return files_.contains(path);
}

util::Result<std::string> FileServer::file_contents(
    const ObjectName& path) const {
  std::lock_guard lock(files_mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return util::fail(ErrorCode::kNotFound, "no such file '" + path + "'");
  }
  return it->second;
}

util::Result<util::Bytes> FileServer::perform(const AppRequestPayload& request,
                                              const AuthorizedRequest& info) {
  (void)info;
  std::lock_guard lock(files_mutex_);
  if (request.operation == "read") {
    auto it = files_.find(request.object);
    if (it == files_.end()) {
      return util::fail(ErrorCode::kNotFound,
                        "no such file '" + request.object + "'");
    }
    return util::to_bytes(it->second);
  }
  if (request.operation == "write") {
    files_[request.object] = util::to_string(request.args);
    return util::Bytes{};
  }
  if (request.operation == "delete") {
    if (files_.erase(request.object) == 0) {
      return util::fail(ErrorCode::kNotFound,
                        "no such file '" + request.object + "'");
    }
    return util::Bytes{};
  }
  if (request.operation == "list") {
    wire::Encoder enc;
    enc.u32(static_cast<std::uint32_t>(files_.size()));
    for (const auto& [path, contents] : files_) {
      enc.str(path);
    }
    return enc.take();
  }
  return util::fail(ErrorCode::kProtocolError,
                    "file server does not implement operation '" +
                        request.operation + "'");
}

}  // namespace rproxy::server
