// Print server: a quota-governed resource (the paper's "printer pages"
// currency, §4).
//
// Operation "print" on a queue consumes {"pages": n}; quota restrictions in
// presented proxies bound per-job consumption, and examples pair this
// server with an accounting server that maintains the cumulative page
// balance.
#pragma once

#include <mutex>
#include <vector>

#include "server/end_server.hpp"

namespace rproxy::server {

/// The currency print jobs consume.
inline constexpr std::string_view kPagesCurrency = "pages";

struct PrintJob {
  PrincipalName authority;
  ObjectName queue;
  std::uint64_t pages = 0;
  std::string body;
};

class PrintServer final : public EndServer {
 public:
  using EndServer::EndServer;

  /// For inspection after the server has quiesced; do not call while
  /// requests are in flight (returns a reference to the live queue).
  [[nodiscard]] const std::vector<PrintJob>& jobs() const { return jobs_; }
  [[nodiscard]] std::uint64_t pages_printed() const {
    std::lock_guard lock(jobs_mutex_);
    return pages_printed_;
  }

 protected:
  util::Result<util::Bytes> perform(const AppRequestPayload& request,
                                    const AuthorizedRequest& info) override;

 private:
  /// Guards jobs_ and pages_printed_ against concurrent perform() calls.
  mutable std::mutex jobs_mutex_;
  std::vector<PrintJob> jobs_;
  std::uint64_t pages_printed_ = 0;
};

}  // namespace rproxy::server
