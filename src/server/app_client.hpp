// Client-side driver for the application protocol.
//
// Wraps the two round trips of a presented operation: fetch a single-use
// challenge, then send the request with possession proofs bound to that
// challenge and to the request digest.
#pragma once

#include "core/presentation.hpp"
#include "server/end_server.hpp"

namespace rproxy::server {

class AppClient {
 public:
  AppClient(net::SimNet& net, const util::Clock& clock, PrincipalName self)
      : net_(net), clock_(clock), self_(std::move(self)) {}

  /// Fetches a fresh challenge from `end_server`.
  [[nodiscard]] util::Result<ChallengePayload> get_challenge(
      const PrincipalName& end_server);

  /// How the caller supplies proofs: invoked once the challenge and request
  /// digest are known; fills the credential/group/identity fields.
  using ProofBuilder = std::function<void(
      util::BytesView challenge, util::BytesView request_digest,
      AppRequestPayload& request)>;

  /// Runs the full presented-operation flow and returns the app result.
  [[nodiscard]] util::Result<util::Bytes> invoke(
      const PrincipalName& end_server, const Operation& operation,
      const ObjectName& object,
      std::map<std::string, std::uint64_t> amounts, util::Bytes args,
      const ProofBuilder& proofs);

  /// Common case: one bearer proxy backs the operation.
  [[nodiscard]] util::Result<util::Bytes> invoke_with_proxy(
      const PrincipalName& end_server, const core::Proxy& proxy,
      const Operation& operation, const ObjectName& object,
      std::map<std::string, std::uint64_t> amounts = {},
      util::Bytes args = {});

  /// Timestamp-mode presentation (§2's "signed or encrypted timestamp"):
  /// skips the challenge round trip — 2 messages instead of 4 — relying on
  /// proof freshness plus the server's replay cache.
  [[nodiscard]] util::Result<util::Bytes> invoke_timestamp(
      const PrincipalName& end_server, const Operation& operation,
      const ObjectName& object,
      std::map<std::string, std::uint64_t> amounts, util::Bytes args,
      const ProofBuilder& proofs);

  /// Timestamp-mode counterpart of invoke_with_proxy.
  [[nodiscard]] util::Result<util::Bytes> invoke_with_proxy_timestamp(
      const PrincipalName& end_server, const core::Proxy& proxy,
      const Operation& operation, const ObjectName& object,
      std::map<std::string, std::uint64_t> amounts = {},
      util::Bytes args = {});

  [[nodiscard]] const PrincipalName& self() const { return self_; }
  [[nodiscard]] net::SimNet& net() { return net_; }
  [[nodiscard]] const util::Clock& clock() const { return clock_; }

 private:
  net::SimNet& net_;
  const util::Clock& clock_;
  PrincipalName self_;
};

}  // namespace rproxy::server
