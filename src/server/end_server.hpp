// Generic proxy-verifying application server.
//
// Ties everything together on the server side of the model:
//   1. issues single-use challenges (the "authentication exchange" of §2);
//   2. verifies every presented chain and possession proof;
//   3. derives asserted group memberships (§3.3);
//   4. consults its local ACL — entries may name users, proxy grantors,
//      authorization servers, or groups (§3.5), including compound entries
//      requiring concurrence;
//   5. enforces every restriction of every presented chain plus the
//      matched ACL entry's own restrictions;
//   6. performs the operation (subclass hook) and writes an audit record.
#pragma once

#include "authz/credential_eval.hpp"
#include "core/challenge_registry.hpp"
#include "server/audit_log.hpp"

namespace rproxy::server {

/// Challenge reply payload.
struct ChallengePayload {
  std::uint64_t id = 0;
  util::Bytes nonce;

  void encode(wire::Encoder& enc) const;
  static ChallengePayload decode(wire::Decoder& dec);
};

/// Application request payload.
struct AppRequestPayload {
  Operation operation;
  ObjectName object;
  /// Resource consumption (e.g. {"pages", 3}); evaluated against quota
  /// restrictions.
  std::map<std::string, std::uint64_t> amounts;
  /// Operation-specific arguments (file contents, job body, ...).
  util::Bytes args;
  /// Which outstanding challenge the proofs are bound to.
  std::uint64_t challenge_id = 0;
  /// Main credentials: proxies whose rights back the request.  More than
  /// one implements concurrence (§3.5).
  std::vector<core::PresentedCredential> credentials;
  /// Group proxies asserting memberships (§3.3).
  std::vector<core::PresentedCredential> group_credentials;
  /// Personal authentication with no proxy (direct ACL users).  Optional.
  std::optional<core::PossessionProof> identity;

  void encode(wire::Encoder& enc) const;
  static AppRequestPayload decode(wire::Decoder& dec);

  /// The digest possession proofs must bind (client and server compute it
  /// identically).
  [[nodiscard]] util::Bytes digest() const;
};

/// Application reply payload.
struct AppReplyPayload {
  util::Bytes result;

  void encode(wire::Encoder& enc) const { enc.bytes(result); }
  static AppReplyPayload decode(wire::Decoder& dec) {
    return AppReplyPayload{dec.bytes()};
  }
};

/// What a subclass's perform() learns about an authorized request.
struct AuthorizedRequest {
  authz::EvaluatedCredentials credentials;
  /// The ACL entry that authorized the request.
  const authz::AclEntry* entry = nullptr;
  /// Authority recorded in the audit log (first matched entry principal).
  PrincipalName authority;
};

class EndServer : public net::Node {
 public:
  struct Config {
    PrincipalName name;
    /// Long-term Kerberos key; required to accept symmetric credentials.
    std::optional<crypto::SymmetricKey> server_key;
    /// Identity-key resolver; required to accept public-key credentials.
    const core::KeyResolver* resolver = nullptr;
    std::optional<crypto::VerifyKey> pk_root;
    const util::Clock* clock = nullptr;
    /// Unclaimed challenges expire after this long.
    util::Duration challenge_ttl = 2 * util::kMinute;
    /// Verified-chain cache (see core::ProxyVerifier::Config); 0 disables.
    std::size_t verify_cache_capacity = 1024;
    util::Duration verify_cache_ttl = 5 * util::kMinute;
    /// Shared revocation registry: verification checks it, local ACL edits
    /// and revoke_grantor report into it.  nullptr disables revocation.
    core::RevocationRegistry* revocation = nullptr;
  };

  explicit EndServer(Config config);

  /// Local access-control list (§3.5).  Edit at setup time only: handle()
  /// reads it without a lock, so mutating while requests are in flight is
  /// a race.  The per-request state (challenges, replay caches, audit log)
  /// is internally synchronized; see DESIGN.md "Concurrency model".
  [[nodiscard]] authz::Acl& acl() { return acl_; }
  [[nodiscard]] const authz::Acl& acl() const { return acl_; }

  /// Local revocation of a grantor (§3.1): removes every ACL entry naming
  /// it AND kills all grants it issued before now, so chains rooted at the
  /// grantor are rejected on their very next presentation — warm verify
  /// cache included.  Returns the number of ACL entries removed.  Without
  /// Config::revocation only the ACL half happens.
  std::size_t revoke_grantor(const PrincipalName& grantor);

  [[nodiscard]] AuditLog& audit() { return audit_; }
  [[nodiscard]] core::AcceptOnceCache& accept_once() { return accept_once_; }
  [[nodiscard]] const PrincipalName& name() const { return config_.name; }
  [[nodiscard]] const core::ProxyVerifier& verifier() const {
    return verifier_;
  }

  net::Envelope handle(const net::Envelope& request) override;

 protected:
  /// Performs an authorized operation.  The request has already passed
  /// chain verification, possession, ACL, and restriction checks.
  [[nodiscard]] virtual util::Result<util::Bytes> perform(
      const AppRequestPayload& request, const AuthorizedRequest& info) = 0;

 private:
  [[nodiscard]] net::Envelope handle_challenge_(const net::Envelope& request);
  [[nodiscard]] net::Envelope handle_app_(const net::Envelope& request);
  [[nodiscard]] util::Result<AppReplyPayload> process_(
      const AppRequestPayload& req);

  Config config_;
  core::ProxyVerifier verifier_;
  kdc::ReplayCache replay_cache_;
  core::AcceptOnceCache accept_once_;
  authz::Acl acl_;
  AuditLog audit_;
  core::ChallengeRegistry challenges_;
};

}  // namespace rproxy::server
