#include "server/print_server.hpp"

namespace rproxy::server {

util::Result<util::Bytes> PrintServer::perform(
    const AppRequestPayload& request, const AuthorizedRequest& info) {
  if (request.operation != "print") {
    return util::fail(util::ErrorCode::kProtocolError,
                      "print server only implements 'print'");
  }
  auto it = request.amounts.find(std::string(kPagesCurrency));
  const std::uint64_t pages = it == request.amounts.end() ? 0 : it->second;
  if (pages == 0) {
    return util::fail(util::ErrorCode::kProtocolError,
                      "print request must declare its page count");
  }

  PrintJob job;
  job.authority = info.authority;
  job.queue = request.object;
  job.pages = pages;
  job.body = util::to_string(request.args);
  std::lock_guard lock(jobs_mutex_);
  jobs_.push_back(std::move(job));
  pages_printed_ += pages;

  wire::Encoder enc;
  enc.u64(jobs_.size());  // job id
  return enc.take();
}

}  // namespace rproxy::server
