// Audit log.
//
// Delegate-style cascading "leaves an audit trail since the new proxy
// identifies the intermediate server" (§3.4); end-servers record who acted,
// under whose authority, through whom.
//
// The log is in-memory by default; open_sink() additionally streams every
// record into a CRC-framed journal file (storage/journal) so the trail
// survives a crash — an audit trail that dies with the process cannot
// support after-the-fact accounting disputes.  read_sink() loads a file
// back, truncating a torn tail exactly like accounting recovery does.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/journal.hpp"
#include "util/clock.hpp"
#include "util/names.hpp"
#include "wire/decoder.hpp"
#include "wire/encoder.hpp"

namespace rproxy::server {

struct AuditRecord {
  util::TimePoint time = 0;
  Operation operation;
  ObjectName object;
  /// Principal whose rights authorized the operation (proxy grantor or the
  /// directly authenticated client).
  PrincipalName authority;
  /// Identities proven by the presenter.
  std::vector<PrincipalName> identities;
  /// Intermediates that identity-signed cascade links.
  std::vector<PrincipalName> via;
  bool allowed = false;
  std::string detail;  ///< denial reason or operation summary

  void encode(wire::Encoder& enc) const;
  static AuditRecord decode(wire::Decoder& dec);
};

/// The single frame type audit sinks use (the journal's framing already
/// carries the CRC and torn-tail semantics).
inline constexpr std::uint16_t kAuditSinkRecordType = 1;

/// Appends and counters are thread-safe (concurrently dispatched handlers
/// audit every decision).  records() hands out a reference to the live
/// vector and is for inspection only after the server has quiesced — it
/// must not be called while requests are still in flight.
class AuditLog {
 public:
  void append(AuditRecord record);

  /// Attaches a file-backed sink at `path` (created if absent, appended
  /// to — after torn-tail truncation — if present).  Every subsequent
  /// append() is also journaled.  Auditing never blocks serving: a sink
  /// write failure is counted in sink_failures(), not surfaced to the
  /// request path.
  [[nodiscard]] util::Status open_sink(
      const std::string& path,
      storage::FsyncPolicy policy = storage::FsyncPolicy::kBatch);

  /// Forces buffered sink records to stable storage.
  [[nodiscard]] util::Status sync_sink();

  /// Loads a sink file back.  A torn final record is dropped, not an
  /// error; unknown frame types are skipped (sink format growth).
  [[nodiscard]] static util::Result<std::vector<AuditRecord>> read_sink(
      const std::string& path);

  [[nodiscard]] const std::vector<AuditRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t allowed_count() const;
  [[nodiscard]] std::size_t denied_count() const;
  [[nodiscard]] std::size_t sink_failures() const {
    std::lock_guard lock(mutex_);
    return sink_failures_;
  }
  /// Clears the in-memory records (the sink file keeps its history).
  void clear() {
    std::lock_guard lock(mutex_);
    records_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<AuditRecord> records_;
  std::optional<storage::JournalWriter> sink_;
  std::size_t sink_failures_ = 0;
};

}  // namespace rproxy::server
