// Audit log.
//
// Delegate-style cascading "leaves an audit trail since the new proxy
// identifies the intermediate server" (§3.4); end-servers record who acted,
// under whose authority, through whom.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/names.hpp"

namespace rproxy::server {

struct AuditRecord {
  util::TimePoint time = 0;
  Operation operation;
  ObjectName object;
  /// Principal whose rights authorized the operation (proxy grantor or the
  /// directly authenticated client).
  PrincipalName authority;
  /// Identities proven by the presenter.
  std::vector<PrincipalName> identities;
  /// Intermediates that identity-signed cascade links.
  std::vector<PrincipalName> via;
  bool allowed = false;
  std::string detail;  ///< denial reason or operation summary
};

/// Appends and counters are thread-safe (concurrently dispatched handlers
/// audit every decision).  records() hands out a reference to the live
/// vector and is for inspection only after the server has quiesced — it
/// must not be called while requests are still in flight.
class AuditLog {
 public:
  void append(AuditRecord record) {
    std::lock_guard lock(mutex_);
    records_.push_back(std::move(record));
  }

  [[nodiscard]] const std::vector<AuditRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t allowed_count() const;
  [[nodiscard]] std::size_t denied_count() const;
  void clear() {
    std::lock_guard lock(mutex_);
    records_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<AuditRecord> records_;
};

}  // namespace rproxy::server
