#include "server/metered_server.hpp"

namespace rproxy::server {

using util::ErrorCode;

void PaymentEnvelope::encode(wire::Encoder& enc) const {
  check.encode(enc);
  enc.boolean(certification.has_value());
  if (certification.has_value()) certification->encode(enc);
  enc.bytes(inner_args);
}

PaymentEnvelope PaymentEnvelope::decode(wire::Decoder& dec) {
  PaymentEnvelope p;
  p.check = accounting::Check::decode(dec);
  if (dec.boolean()) {
    p.certification = core::ProxyChain::decode(dec);
  }
  p.inner_args = dec.bytes();
  return p;
}

MeteredServer::MeteredServer(MeteredConfig config)
    : EndServer(config.base), config_(std::move(config)) {}

util::Result<util::Bytes> MeteredServer::perform(
    const AppRequestPayload& request, const AuthorizedRequest& info) {
  auto price = config_.prices.find(request.operation);
  if (price == config_.prices.end()) {
    return perform_paid(request, info, request.args);  // free operation
  }
  const accounting::Currency& currency = price->second.first;
  const std::uint64_t amount = price->second.second;

  auto payment = wire::decode_from_bytes<PaymentEnvelope>(request.args);
  if (!payment.is_ok()) {
    payments_rejected_ += 1;
    return util::fail(ErrorCode::kInsufficientFunds,
                      "operation '" + request.operation +
                          "' costs " + std::to_string(amount) + " " +
                          currency + " and no payment was attached");
  }
  const PaymentEnvelope& envelope = payment.value();

  // The check must be payable to us, in the right currency, for at least
  // the price (the signed terms are cross-checked at the bank; here we
  // check the cleartext so an obviously-wrong payment fails fast).
  if (envelope.check.payee != name() ||
      envelope.check.currency != currency ||
      envelope.check.amount < amount) {
    payments_rejected_ += 1;
    return util::fail(ErrorCode::kInsufficientFunds,
                      "payment does not cover " + std::to_string(amount) +
                          " " + currency + " payable to " + name());
  }

  // Guaranteed funds: verify the drawee's certification OFFLINE (§4's
  // second mechanism) before doing any work.
  if (config_.require_certification) {
    if (!envelope.certification.has_value()) {
      payments_rejected_ += 1;
      return util::fail(ErrorCode::kInsufficientFunds,
                        "this server requires certified checks");
    }
    const PrincipalName presenter =
        info.credentials.identities.empty()
            ? envelope.check.payor_account.server
            : info.credentials.identities.front();
    const util::Status certified = accounting::verify_certification(
        verifier(), *envelope.certification, envelope.check,
        envelope.check.payor_account.server, presenter,
        config_.base.clock->now());
    if (!certified.is_ok()) {
      payments_rejected_ += 1;
      return certified;
    }
  }

  // Reserve the check's accept-once identifier before doing any work: a
  // number this server already banked buys nothing a second time, and the
  // single-winner insert handles concurrent duplicates.
  const auto check_key =
      std::make_pair(envelope.check.chain.certs.empty()
                         ? envelope.check.payor_account.server + "/" +
                               envelope.check.payor_account.account
                         : envelope.check.chain.certs.front().grantor,
                     envelope.check.check_number);
  {
    std::lock_guard lock(banked_mutex_);
    if (!banked_checks_.insert(check_key).second) {
      payments_rejected_ += 1;
      return util::fail(ErrorCode::kReplay,
                        "check #" +
                            std::to_string(envelope.check.check_number) +
                            " was already used to pay for an operation");
    }
  }

  // Perform first, then bank the check (Fig 5: "Upon completion of C's
  // request, S endorses the check and deposits it").
  auto result = perform_paid(request, info, envelope.inner_args);
  util::Status banked_status = util::Status::ok();
  if (result.is_ok() && config_.accounting_client != nullptr) {
    auto banked = config_.accounting_client->endorse_and_deposit(
        config_.bank, envelope.check, config_.collect_account);
    banked_status = banked.status();
  }
  if (!result.is_ok() || !banked_status.is_ok()) {
    // The operation failed or the check bounced: release the reservation
    // so the client can retry with the same (still-unspent) check.
    std::lock_guard lock(banked_mutex_);
    banked_checks_.erase(check_key);
  }
  RPROXY_RETURN_IF_ERROR(result.status());
  if (!banked_status.is_ok()) {
    // The work is done but the check bounced: surface it (out-of-band
    // recovery per §4); the audit log records the denial reason.
    payments_rejected_ += 1;
    return util::fail(ErrorCode::kInsufficientFunds,
                      "service performed but payment bounced: " +
                          banked_status.to_string());
  }
  if (config_.accounting_client != nullptr) payments_banked_ += 1;
  return result;
}

util::Result<util::Bytes> MeteredComputeServer::perform_paid(
    const AppRequestPayload& request, const AuthorizedRequest& info,
    util::BytesView inner_args) {
  (void)info;
  if (request.operation != "compute" && request.operation != "ping") {
    return util::fail(ErrorCode::kProtocolError,
                      "unknown operation '" + request.operation + "'");
  }
  return util::concat({util::to_bytes(std::string_view("computed:")),
                       inner_args});
}

}  // namespace rproxy::server
