#include "server/metered_server.hpp"

namespace rproxy::server {

using util::ErrorCode;

void PaymentEnvelope::encode(wire::Encoder& enc) const {
  check.encode(enc);
  enc.boolean(certification.has_value());
  if (certification.has_value()) certification->encode(enc);
  enc.bytes(inner_args);
}

PaymentEnvelope PaymentEnvelope::decode(wire::Decoder& dec) {
  PaymentEnvelope p;
  p.check = accounting::Check::decode(dec);
  if (dec.boolean()) {
    p.certification = core::ProxyChain::decode(dec);
  }
  p.inner_args = dec.bytes();
  return p;
}

MeteredServer::MeteredServer(MeteredConfig config)
    : EndServer(config.base), config_(std::move(config)) {}

util::Result<util::Bytes> MeteredServer::perform(
    const AppRequestPayload& request, const AuthorizedRequest& info) {
  auto price = config_.prices.find(request.operation);
  if (price == config_.prices.end()) {
    return perform_paid(request, info, request.args);  // free operation
  }
  const accounting::Currency& currency = price->second.first;
  const std::uint64_t amount = price->second.second;

  auto payment = wire::decode_from_bytes<PaymentEnvelope>(request.args);
  if (!payment.is_ok()) {
    payments_rejected_ += 1;
    return util::fail(ErrorCode::kInsufficientFunds,
                      "operation '" + request.operation +
                          "' costs " + std::to_string(amount) + " " +
                          currency + " and no payment was attached");
  }
  const PaymentEnvelope& envelope = payment.value();

  // The check must be payable to us, in the right currency, for at least
  // the price (the signed terms are cross-checked at the bank; here we
  // check the cleartext so an obviously-wrong payment fails fast).
  if (envelope.check.payee != name() ||
      envelope.check.currency != currency ||
      envelope.check.amount < amount) {
    payments_rejected_ += 1;
    return util::fail(ErrorCode::kInsufficientFunds,
                      "payment does not cover " + std::to_string(amount) +
                          " " + currency + " payable to " + name());
  }

  // Guaranteed funds: verify the drawee's certification OFFLINE (§4's
  // second mechanism) before doing any work.
  if (config_.require_certification) {
    if (!envelope.certification.has_value()) {
      payments_rejected_ += 1;
      return util::fail(ErrorCode::kInsufficientFunds,
                        "this server requires certified checks");
    }
    const PrincipalName presenter =
        info.credentials.identities.empty()
            ? envelope.check.payor_account.server
            : info.credentials.identities.front();
    const util::Status certified = accounting::verify_certification(
        verifier(), *envelope.certification, envelope.check,
        envelope.check.payor_account.server, presenter,
        config_.base.clock->now());
    if (!certified.is_ok()) {
      payments_rejected_ += 1;
      return certified;
    }
  }

  // Perform first, then bank the check (Fig 5: "Upon completion of C's
  // request, S endorses the check and deposits it").
  RPROXY_ASSIGN_OR_RETURN(util::Bytes result,
                          perform_paid(request, info, envelope.inner_args));

  if (config_.accounting_client != nullptr) {
    auto banked = config_.accounting_client->endorse_and_deposit(
        config_.bank, envelope.check, config_.collect_account);
    if (!banked.is_ok()) {
      // The work is done but the check bounced: surface it (out-of-band
      // recovery per §4); the audit log records the denial reason.
      payments_rejected_ += 1;
      return util::fail(ErrorCode::kInsufficientFunds,
                        "service performed but payment bounced: " +
                            banked.status().to_string());
    }
    payments_banked_ += 1;
  }
  return result;
}

util::Result<util::Bytes> MeteredComputeServer::perform_paid(
    const AppRequestPayload& request, const AuthorizedRequest& info,
    util::BytesView inner_args) {
  (void)info;
  if (request.operation != "compute" && request.operation != "ping") {
    return util::fail(ErrorCode::kProtocolError,
                      "unknown operation '" + request.operation + "'");
  }
  return util::concat({util::to_bytes(std::string_view("computed:")),
                       inner_args});
}

}  // namespace rproxy::server
