#include "server/end_server.hpp"

#include <algorithm>

#include "core/request.hpp"
#include "core/revocation.hpp"
#include "crypto/random.hpp"

namespace rproxy::server {

using util::ErrorCode;

void ChallengePayload::encode(wire::Encoder& enc) const {
  enc.u64(id);
  enc.bytes(nonce);
}

ChallengePayload ChallengePayload::decode(wire::Decoder& dec) {
  ChallengePayload p;
  p.id = dec.u64();
  p.nonce = dec.bytes();
  return p;
}

void AppRequestPayload::encode(wire::Encoder& enc) const {
  enc.str(operation);
  enc.str(object);
  enc.u32(static_cast<std::uint32_t>(amounts.size()));
  for (const auto& [currency, amount] : amounts) {
    enc.str(currency);
    enc.u64(amount);
  }
  enc.bytes(args);
  enc.u64(challenge_id);
  enc.seq(credentials,
          [](wire::Encoder& e, const core::PresentedCredential& c) {
            c.encode(e);
          });
  enc.seq(group_credentials,
          [](wire::Encoder& e, const core::PresentedCredential& c) {
            c.encode(e);
          });
  enc.boolean(identity.has_value());
  if (identity.has_value()) identity->encode(enc);
}

AppRequestPayload AppRequestPayload::decode(wire::Decoder& dec) {
  AppRequestPayload p;
  p.operation = dec.str();
  p.object = dec.str();
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n && dec.ok(); ++i) {
    std::string currency = dec.str();
    p.amounts[currency] = dec.u64();
  }
  p.args = dec.bytes();
  p.challenge_id = dec.u64();
  p.credentials = dec.seq<core::PresentedCredential>([](wire::Decoder& d) {
    return core::PresentedCredential::decode(d);
  });
  p.group_credentials =
      dec.seq<core::PresentedCredential>([](wire::Decoder& d) {
        return core::PresentedCredential::decode(d);
      });
  if (dec.boolean()) {
    p.identity = core::PossessionProof::decode(dec);
  }
  return p;
}

util::Bytes AppRequestPayload::digest() const {
  return core::request_digest(operation, object, amounts);
}

EndServer::EndServer(Config config)
    : config_(std::move(config)),
      verifier_(core::ProxyVerifier::Config{
          .server_name = config_.name,
          .server_key = config_.server_key,
          .resolver = config_.resolver,
          .pk_root = config_.pk_root,
          .replay_cache = &replay_cache_,
          .verify_cache_capacity = config_.verify_cache_capacity,
          .verify_cache_ttl = config_.verify_cache_ttl,
          .revocation = config_.revocation,
      }),
      challenges_(config_.challenge_ttl) {
  acl_.set_revocation(config_.revocation);
}

std::size_t EndServer::revoke_grantor(const PrincipalName& grantor) {
  const std::size_t removed = acl_.remove_principal(grantor);
  if (config_.revocation != nullptr) {
    // The cutoff (not just the ACL edit) is what kills chains whose root
    // does not appear on our ACL by name — e.g. symmetric proxies from a
    // grantor the ACL covers via a group.
    config_.revocation->revoke_grants_before(grantor,
                                             config_.clock->now());
  }
  return removed;
}

net::Envelope EndServer::handle(const net::Envelope& request) {
  switch (request.type) {
    case net::MsgType::kPresentChallengeRequest:
      return handle_challenge_(request);
    case net::MsgType::kAppRequest:
      return handle_app_(request);
    default:
      return net::make_error_reply(
          request, util::fail(ErrorCode::kProtocolError,
                              "end-server cannot handle this message type"));
  }
}

net::Envelope EndServer::handle_challenge_(const net::Envelope& request) {
  const core::ChallengeRegistry::Challenge issued =
      challenges_.issue(config_.clock->now());
  ChallengePayload challenge;
  challenge.id = issued.id;
  challenge.nonce = issued.nonce;
  return net::make_reply(request, net::MsgType::kPresentChallengeReply,
                         challenge);
}

net::Envelope EndServer::handle_app_(const net::Envelope& request) {
  auto parsed = wire::decode_from_bytes<AppRequestPayload>(request.payload);
  if (!parsed.is_ok()) return net::make_error_reply(request, parsed.status());
  auto reply = process_(parsed.value());
  if (!reply.is_ok()) return net::make_error_reply(request, reply.status());
  return net::make_reply(request, net::MsgType::kAppReply, reply.value());
}

util::Result<AppReplyPayload> EndServer::process_(
    const AppRequestPayload& req) {
  const util::TimePoint now = config_.clock->now();
  // Two presentation styles (§2: "a signed or encrypted timestamp or
  // server challenge"):
  //  * challenge mode — the proof binds a single-use nonce we issued;
  //  * timestamp mode (challenge_id == 0) — no extra round trip; proofs
  //    must be fresh (verify_possession enforces max_skew) and are
  //    remembered in the replay cache until they age out.
  util::Bytes challenge;
  if (req.challenge_id != 0) {
    RPROXY_ASSIGN_OR_RETURN(challenge,
                            challenges_.take(req.challenge_id, now));
  } else {
    const auto replay_guard = [&](const core::PossessionProof& proof) {
      return replay_cache_.check_and_insert(
          proof.blob, proof.timestamp + 2 * config_.challenge_ttl, now);
    };
    for (const core::PresentedCredential& cred : req.credentials) {
      RPROXY_RETURN_IF_ERROR(replay_guard(cred.proof));
    }
    for (const core::PresentedCredential& cred : req.group_credentials) {
      RPROXY_RETURN_IF_ERROR(replay_guard(cred.proof));
    }
    if (req.identity.has_value()) {
      RPROXY_RETURN_IF_ERROR(replay_guard(*req.identity));
    }
  }
  const util::Bytes rdigest = req.digest();

  AuditRecord record;
  record.time = now;
  record.operation = req.operation;
  record.object = req.object;

  // A helper so every denial is audited uniformly.
  const auto deny = [&](util::Status status) -> util::Result<AppReplyPayload> {
    record.allowed = false;
    record.detail = status.to_string();
    audit_.append(record);
    return status;
  };

  // 1-3. Verify chains, possession proofs and group assertions.
  auto evaluated = authz::evaluate_credentials(
      verifier_, req.credentials, req.group_credentials, challenge, rdigest,
      now);
  if (!evaluated.is_ok()) return deny(evaluated.status());
  authz::EvaluatedCredentials creds = std::move(evaluated).value();

  // Optional bare identity (direct ACL users, §3.5).
  if (req.identity.has_value()) {
    auto who =
        verifier_.verify_identity(*req.identity, challenge, rdigest, now);
    if (!who.is_ok()) return deny(who.status());
    for (const PrincipalName& id : who.value()) {
      if (std::find(creds.identities.begin(), creds.identities.end(), id) ==
          creds.identities.end()) {
        creds.identities.push_back(id);
      }
    }
  }

  record.identities = creds.identities;
  for (const authz::VerifiedCredential& cred : creds.credentials) {
    for (const PrincipalName& via : cred.proxy.audit_trail) {
      record.via.push_back(via);
    }
  }

  // 4. ACL.
  const authz::AuthorityContext authority = creds.authority();
  auto entry = acl_.match(authority, req.operation, req.object);
  if (!entry.is_ok()) return deny(entry.status());
  record.authority = entry.value()->principals.front();

  // 5. Restrictions: every presented chain's effective set must permit the
  //    request (restrictions are additive across the credentials backing
  //    it), and so must the ACL entry's own restrictions.
  for (const authz::VerifiedCredential& cred : creds.credentials) {
    core::RequestContext ctx;
    ctx.end_server = config_.name;
    ctx.operation = req.operation;
    ctx.object = req.object;
    ctx.amounts = req.amounts;
    ctx.now = now;
    ctx.effective_identities = creds.identities;
    ctx.asserted_groups = creds.asserted_groups;
    ctx.grantor = cred.proxy.grantor;
    ctx.credential_expiry = cred.proxy.expires_at;
    ctx.accept_once = &accept_once_;
    util::Status st = cred.proxy.effective_restrictions.evaluate(ctx);
    if (!st.is_ok()) return deny(std::move(st));
  }
  {
    core::RequestContext ctx;
    ctx.end_server = config_.name;
    ctx.operation = req.operation;
    ctx.object = req.object;
    ctx.amounts = req.amounts;
    ctx.now = now;
    ctx.effective_identities = creds.identities;
    ctx.asserted_groups = creds.asserted_groups;
    ctx.grantor = record.authority;
    ctx.credential_expiry = now + config_.challenge_ttl;
    ctx.accept_once = &accept_once_;
    util::Status st = entry.value()->restrictions.evaluate(ctx);
    if (!st.is_ok()) return deny(std::move(st));
  }

  // 6. Perform.
  AuthorizedRequest info;
  info.credentials = std::move(creds);
  info.entry = entry.value();
  info.authority = record.authority;
  auto result = perform(req, info);
  if (!result.is_ok()) return deny(result.status());

  record.allowed = true;
  record.detail = "ok";
  audit_.append(record);
  return AppReplyPayload{std::move(result).value()};
}

}  // namespace rproxy::server
