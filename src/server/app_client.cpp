#include "server/app_client.hpp"

namespace rproxy::server {

namespace {
/// Empty payload for challenge requests.
struct EmptyPayload {
  void encode(wire::Encoder&) const {}
  static EmptyPayload decode(wire::Decoder&) { return {}; }
};
}  // namespace

util::Result<ChallengePayload> AppClient::get_challenge(
    const PrincipalName& end_server) {
  return net::call<ChallengePayload>(
      net_, self_, end_server, net::MsgType::kPresentChallengeRequest,
      net::MsgType::kPresentChallengeReply, EmptyPayload{});
}

util::Result<util::Bytes> AppClient::invoke(
    const PrincipalName& end_server, const Operation& operation,
    const ObjectName& object, std::map<std::string, std::uint64_t> amounts,
    util::Bytes args, const ProofBuilder& proofs) {
  RPROXY_ASSIGN_OR_RETURN(ChallengePayload challenge,
                          get_challenge(end_server));

  AppRequestPayload req;
  req.operation = operation;
  req.object = object;
  req.amounts = std::move(amounts);
  req.args = std::move(args);
  req.challenge_id = challenge.id;
  proofs(challenge.nonce, req.digest(), req);

  RPROXY_ASSIGN_OR_RETURN(
      AppReplyPayload reply,
      (net::call<AppReplyPayload>(net_, self_, end_server,
                                  net::MsgType::kAppRequest,
                                  net::MsgType::kAppReply, req)));
  return std::move(reply.result);
}

util::Result<util::Bytes> AppClient::invoke_with_proxy(
    const PrincipalName& end_server, const core::Proxy& proxy,
    const Operation& operation, const ObjectName& object,
    std::map<std::string, std::uint64_t> amounts, util::Bytes args) {
  return invoke(
      end_server, operation, object, std::move(amounts), std::move(args),
      [&](util::BytesView challenge, util::BytesView rdigest,
          AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = proxy.chain;
        cred.proof = core::prove_bearer(proxy, challenge, end_server,
                                        clock_.now(), rdigest);
        req.credentials.push_back(std::move(cred));
      });
}

util::Result<util::Bytes> AppClient::invoke_timestamp(
    const PrincipalName& end_server, const Operation& operation,
    const ObjectName& object, std::map<std::string, std::uint64_t> amounts,
    util::Bytes args, const ProofBuilder& proofs) {
  AppRequestPayload req;
  req.operation = operation;
  req.object = object;
  req.amounts = std::move(amounts);
  req.args = std::move(args);
  req.challenge_id = 0;  // timestamp mode
  proofs({}, req.digest(), req);

  RPROXY_ASSIGN_OR_RETURN(
      AppReplyPayload reply,
      (net::call<AppReplyPayload>(net_, self_, end_server,
                                  net::MsgType::kAppRequest,
                                  net::MsgType::kAppReply, req)));
  return std::move(reply.result);
}

util::Result<util::Bytes> AppClient::invoke_with_proxy_timestamp(
    const PrincipalName& end_server, const core::Proxy& proxy,
    const Operation& operation, const ObjectName& object,
    std::map<std::string, std::uint64_t> amounts, util::Bytes args) {
  return invoke_timestamp(
      end_server, operation, object, std::move(amounts), std::move(args),
      [&](util::BytesView challenge, util::BytesView rdigest,
          AppRequestPayload& req) {
        core::PresentedCredential cred;
        cred.chain = proxy.chain;
        cred.proof = core::prove_bearer(proxy, challenge, end_server,
                                        clock_.now(), rdigest);
        req.credentials.push_back(std::move(cred));
      });
}

}  // namespace rproxy::server
