#include "server/audit_log.hpp"

#include <algorithm>

namespace rproxy::server {

std::size_t AuditLog::allowed_count() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const AuditRecord& r) { return r.allowed; }));
}

std::size_t AuditLog::denied_count() const {
  std::lock_guard lock(mutex_);
  std::size_t allowed = 0;
  for (const AuditRecord& r : records_) allowed += r.allowed ? 1 : 0;
  return records_.size() - allowed;
}

}  // namespace rproxy::server
