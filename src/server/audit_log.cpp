#include "server/audit_log.hpp"

#include <algorithm>

namespace rproxy::server {

std::size_t AuditLog::allowed_count() const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const AuditRecord& r) { return r.allowed; }));
}

std::size_t AuditLog::denied_count() const {
  return records_.size() - allowed_count();
}

}  // namespace rproxy::server
