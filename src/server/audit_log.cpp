#include "server/audit_log.hpp"

#include <algorithm>
#include <filesystem>

namespace rproxy::server {

void AuditRecord::encode(wire::Encoder& enc) const {
  enc.i64(time);
  enc.str(operation);
  enc.str(object);
  enc.str(authority);
  enc.u32(static_cast<std::uint32_t>(identities.size()));
  for (const PrincipalName& p : identities) enc.str(p);
  enc.u32(static_cast<std::uint32_t>(via.size()));
  for (const PrincipalName& p : via) enc.str(p);
  enc.boolean(allowed);
  enc.str(detail);
}

AuditRecord AuditRecord::decode(wire::Decoder& dec) {
  AuditRecord r;
  r.time = dec.i64();
  r.operation = dec.str();
  r.object = dec.str();
  r.authority = dec.str();
  const std::uint32_t identity_count = dec.u32();
  for (std::uint32_t i = 0; i < identity_count && dec.ok(); ++i) {
    r.identities.push_back(dec.str());
  }
  const std::uint32_t via_count = dec.u32();
  for (std::uint32_t i = 0; i < via_count && dec.ok(); ++i) {
    r.via.push_back(dec.str());
  }
  r.allowed = dec.boolean();
  r.detail = dec.str();
  return r;
}

void AuditLog::append(AuditRecord record) {
  std::lock_guard lock(mutex_);
  if (sink_.has_value()) {
    const util::Bytes payload = wire::encode_to_bytes(record);
    if (!sink_->append(kAuditSinkRecordType, payload).is_ok()) {
      sink_failures_ += 1;
    }
  }
  records_.push_back(std::move(record));
}

util::Status AuditLog::open_sink(const std::string& path,
                                 storage::FsyncPolicy policy) {
  storage::JournalWriter::Config config;
  config.fsync_policy = policy;
  std::lock_guard lock(mutex_);
  auto writer = std::filesystem::exists(path)
                    ? storage::JournalWriter::open(path, config)
                    : storage::JournalWriter::create(path, 1, config);
  RPROXY_RETURN_IF_ERROR(writer.status());
  sink_.emplace(std::move(writer.value()));
  return util::Status::ok();
}

util::Status AuditLog::sync_sink() {
  std::lock_guard lock(mutex_);
  if (!sink_.has_value()) return util::Status::ok();
  return sink_->sync();
}

util::Result<std::vector<AuditRecord>> AuditLog::read_sink(
    const std::string& path) {
  RPROXY_ASSIGN_OR_RETURN(storage::JournalReader::Scan scan,
                          storage::JournalReader::read(path));
  std::vector<AuditRecord> records;
  for (const storage::JournalRecord& record : scan.records) {
    if (record.type != kAuditSinkRecordType) continue;
    RPROXY_ASSIGN_OR_RETURN(AuditRecord decoded,
                            wire::decode_from_bytes<AuditRecord>(
                                record.payload));
    records.push_back(std::move(decoded));
  }
  return records;
}

std::size_t AuditLog::allowed_count() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const AuditRecord& r) { return r.allowed; }));
}

std::size_t AuditLog::denied_count() const {
  std::lock_guard lock(mutex_);
  std::size_t allowed = 0;
  for (const AuditRecord& r : records_) allowed += r.allowed ? 1 : 0;
  return records_.size() - allowed;
}

}  // namespace rproxy::server
