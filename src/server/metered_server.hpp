// Metered end-server: the §4 payment flow packaged as a server mixin.
//
// "Authorization depends on accounting when a server verifies that a
// client has been allocated sufficient resources to perform an operation."
// A MeteredServer prices each operation in a currency, requires the
// request to carry payment — a check for the price, plus (optionally) its
// certification by the drawee bank — verifies the certification OFFLINE
// before performing, and banks the check afterwards (Fig 5's E1).
#pragma once

#include <atomic>
#include <mutex>
#include <set>

#include "accounting/clearing.hpp"
#include "server/end_server.hpp"

namespace rproxy::server {

/// Payment attached to a metered request (rides in AppRequestPayload.args
/// alongside the operation's own arguments).
struct PaymentEnvelope {
  accounting::Check check;
  /// Present when the server demands guaranteed funds.
  std::optional<core::ProxyChain> certification;
  /// The operation's own arguments.
  util::Bytes inner_args;

  void encode(wire::Encoder& enc) const;
  static PaymentEnvelope decode(wire::Decoder& dec);
};

/// An end-server that charges per operation.
class MeteredServer : public EndServer {
 public:
  struct MeteredConfig {
    EndServer::Config base;
    /// Price list: operation -> (currency, amount).  Unlisted operations
    /// are free.
    std::map<Operation, std::pair<accounting::Currency, std::uint64_t>>
        prices;
    /// Require certified checks (guaranteed funds) instead of trusting
    /// uncertified paper.
    bool require_certification = true;
    /// This server's own bank and collection account, used to deposit
    /// received checks after service.
    PrincipalName bank;
    std::string collect_account;
    /// Client for the deposits (the server's accounting identity).
    accounting::AccountingClient* accounting_client = nullptr;
  };

  explicit MeteredServer(MeteredConfig config);

  [[nodiscard]] std::uint64_t payments_banked() const {
    return payments_banked_.load();
  }
  [[nodiscard]] std::uint64_t payments_rejected() const {
    return payments_rejected_.load();
  }

 protected:
  /// Subclasses implement the actual (paid) operation.
  [[nodiscard]] virtual util::Result<util::Bytes> perform_paid(
      const AppRequestPayload& request, const AuthorizedRequest& info,
      util::BytesView inner_args) = 0;

  util::Result<util::Bytes> perform(const AppRequestPayload& request,
                                    const AuthorizedRequest& info) final;

 private:
  MeteredConfig config_;
  /// Atomic: perform() runs on concurrent transport threads and the price
  /// list is the only other state (read-only after construction).
  std::atomic<std::uint64_t> payments_banked_{0};
  std::atomic<std::uint64_t> payments_rejected_{0};
  /// Payee-side accept-once (§7.7): the bank answers a duplicate deposit
  /// idempotently, so deposit success no longer proves NEW funds arrived —
  /// this server must itself refuse a check it already banked, or one
  /// payment would buy two operations.  Reserved before performing (so
  /// concurrent duplicates race to a single winner), released on bounce.
  std::mutex banked_mutex_;
  std::set<std::pair<PrincipalName, std::uint64_t>> banked_checks_;
};

/// A metered echo service used by tests and the examples: operation
/// "compute" costs whatever the price list says and echoes its arguments.
class MeteredComputeServer final : public MeteredServer {
 public:
  using MeteredServer::MeteredServer;

 protected:
  util::Result<util::Bytes> perform_paid(const AppRequestPayload& request,
                                         const AuthorizedRequest& info,
                                         util::BytesView inner_args) override;
};

}  // namespace rproxy::server
