#include "crypto/random.hpp"

#include <openssl/rand.h>

#include <cassert>
#include <stdexcept>

namespace rproxy::crypto {

util::Bytes random_bytes(std::size_t n) {
  util::Bytes out(n);
  if (n > 0 && RAND_bytes(out.data(), static_cast<int>(n)) != 1) {
    throw std::runtime_error("system CSPRNG failure");
  }
  return out;
}

std::uint64_t random_u64() {
  const util::Bytes b = random_bytes(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t DeterministicRng::next_u64() {
  // SplitMix64 (public domain, Sebastiano Vigna).
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t DeterministicRng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  return next_u64() % bound;
}

util::Bytes DeterministicRng::next_bytes(std::size_t n) {
  util::Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t v = next_u64();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(v & 0xff));
      v >>= 8;
    }
  }
  return out;
}

}  // namespace rproxy::crypto
