// Cryptographically secure randomness (OpenSSL RAND) plus a deterministic
// PRNG for workload generation in tests and benches.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace rproxy::crypto {

/// Fills a fresh buffer with `n` cryptographically secure random octets.
/// Throws std::runtime_error if the system RNG fails (unrecoverable).
[[nodiscard]] util::Bytes random_bytes(std::size_t n);

/// Random fixed-size array (convenience for keys and nonces).
template <std::size_t N>
[[nodiscard]] std::array<std::uint8_t, N> random_array() {
  const util::Bytes b = random_bytes(N);
  std::array<std::uint8_t, N> out{};
  for (std::size_t i = 0; i < N; ++i) out[i] = b[i];
  return out;
}

/// Uniform random uint64 from the CSPRNG (used for check numbers, nonces).
[[nodiscard]] std::uint64_t random_u64();

/// Deterministic, seedable generator for *workloads only* (never keys).
/// SplitMix64: tiny, fast, good distribution for test data.
class DeterministicRng {
 public:
  explicit DeterministicRng(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound).  Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Pseudo-random bytes (workload payloads, object names).
  util::Bytes next_bytes(std::size_t n);

 private:
  std::uint64_t state_;
};

}  // namespace rproxy::crypto
