// SHA-256 message digest (OpenSSL EVP).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace rproxy::crypto {

/// Size of a SHA-256 digest in octets.
inline constexpr std::size_t kDigestSize = 32;

/// A SHA-256 digest value.
using Digest = std::array<std::uint8_t, kDigestSize>;

/// One-shot SHA-256.
[[nodiscard]] Digest sha256(util::BytesView data);

/// Digest as an owning buffer (handy for wire encoding).
[[nodiscard]] util::Bytes sha256_bytes(util::BytesView data);

}  // namespace rproxy::crypto
