// AES-256-GCM authenticated encryption.
//
// Used wherever the paper encrypts: sealing a ticket under the key shared by
// the end-server and the KDC, protecting a proxy key in transit ("{Kproxy}
// Ksession", Fig 3), and sealing certificates under session keys (§6.2).
// GCM gives integrity too, which the 1993 design obtained from separate
// checksums.
#pragma once

#include "crypto/keys.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace rproxy::crypto {

/// GCM nonce size in octets.
inline constexpr std::size_t kNonceSize = 12;
/// GCM tag size in octets.
inline constexpr std::size_t kTagSize = 16;

/// Encrypts `plaintext` under `key`, binding optional associated data.
/// Output layout: nonce || ciphertext || tag  (self-contained box).
[[nodiscard]] util::Bytes aead_seal(const SymmetricKey& key,
                                    util::BytesView plaintext,
                                    util::BytesView associated_data = {});

/// Reverses aead_seal.  Fails with kBadSignature if the key is wrong, the
/// box was tampered with, or the associated data does not match.
[[nodiscard]] util::Result<util::Bytes> aead_open(
    const SymmetricKey& key, util::BytesView box,
    util::BytesView associated_data = {});

}  // namespace rproxy::crypto
