#include "crypto/digest.hpp"

#include <openssl/evp.h>

#include <stdexcept>

namespace rproxy::crypto {

Digest sha256(util::BytesView data) {
  Digest out{};
  unsigned int len = 0;
  if (EVP_Digest(data.data(), data.size(), out.data(), &len, EVP_sha256(),
                 nullptr) != 1 ||
      len != kDigestSize) {
    throw std::runtime_error("EVP_Digest(sha256) failed");
  }
  return out;
}

util::Bytes sha256_bytes(util::BytesView data) {
  const Digest d = sha256(data);
  return util::Bytes(d.begin(), d.end());
}

}  // namespace rproxy::crypto
