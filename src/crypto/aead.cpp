#include "crypto/aead.hpp"

#include <openssl/evp.h>

#include <memory>
#include <stdexcept>

#include "crypto/random.hpp"

namespace rproxy::crypto {

namespace {
struct CtxFree {
  void operator()(EVP_CIPHER_CTX* ctx) const { EVP_CIPHER_CTX_free(ctx); }
};
using CtxPtr = std::unique_ptr<EVP_CIPHER_CTX, CtxFree>;

CtxPtr new_ctx() {
  CtxPtr ctx(EVP_CIPHER_CTX_new());
  if (!ctx) throw std::runtime_error("EVP_CIPHER_CTX_new failed");
  return ctx;
}
}  // namespace

util::Bytes aead_seal(const SymmetricKey& key, util::BytesView plaintext,
                      util::BytesView associated_data) {
  const util::Bytes nonce = random_bytes(kNonceSize);
  CtxPtr ctx = new_ctx();
  if (EVP_EncryptInit_ex(ctx.get(), EVP_aes_256_gcm(), nullptr,
                         key.view().data(), nonce.data()) != 1) {
    throw std::runtime_error("EVP_EncryptInit_ex failed");
  }
  int len = 0;
  if (!associated_data.empty() &&
      EVP_EncryptUpdate(ctx.get(), nullptr, &len, associated_data.data(),
                        static_cast<int>(associated_data.size())) != 1) {
    throw std::runtime_error("EVP_EncryptUpdate(aad) failed");
  }
  util::Bytes out;
  out.reserve(kNonceSize + plaintext.size() + kTagSize);
  out.insert(out.end(), nonce.begin(), nonce.end());
  out.resize(kNonceSize + plaintext.size());
  if (!plaintext.empty() &&
      EVP_EncryptUpdate(ctx.get(), out.data() + kNonceSize, &len,
                        plaintext.data(),
                        static_cast<int>(plaintext.size())) != 1) {
    throw std::runtime_error("EVP_EncryptUpdate failed");
  }
  int final_len = 0;
  if (EVP_EncryptFinal_ex(ctx.get(), out.data() + out.size(), &final_len) !=
      1) {
    throw std::runtime_error("EVP_EncryptFinal_ex failed");
  }
  util::Bytes tag(kTagSize);
  if (EVP_CIPHER_CTX_ctrl(ctx.get(), EVP_CTRL_GCM_GET_TAG,
                          static_cast<int>(kTagSize), tag.data()) != 1) {
    throw std::runtime_error("EVP_CTRL_GCM_GET_TAG failed");
  }
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

util::Result<util::Bytes> aead_open(const SymmetricKey& key,
                                    util::BytesView box,
                                    util::BytesView associated_data) {
  using util::ErrorCode;
  if (box.size() < kNonceSize + kTagSize) {
    return util::fail(ErrorCode::kParseError, "AEAD box too short");
  }
  const util::BytesView nonce = box.subspan(0, kNonceSize);
  const util::BytesView ciphertext =
      box.subspan(kNonceSize, box.size() - kNonceSize - kTagSize);
  const util::BytesView tag = box.subspan(box.size() - kTagSize, kTagSize);

  CtxPtr ctx = new_ctx();
  if (EVP_DecryptInit_ex(ctx.get(), EVP_aes_256_gcm(), nullptr,
                         key.view().data(), nonce.data()) != 1) {
    throw std::runtime_error("EVP_DecryptInit_ex failed");
  }
  int len = 0;
  if (!associated_data.empty() &&
      EVP_DecryptUpdate(ctx.get(), nullptr, &len, associated_data.data(),
                        static_cast<int>(associated_data.size())) != 1) {
    throw std::runtime_error("EVP_DecryptUpdate(aad) failed");
  }
  util::Bytes out(ciphertext.size());
  if (!ciphertext.empty() &&
      EVP_DecryptUpdate(ctx.get(), out.data(), &len, ciphertext.data(),
                        static_cast<int>(ciphertext.size())) != 1) {
    return util::fail(ErrorCode::kBadSignature, "AEAD decrypt failed");
  }
  util::Bytes tag_copy(tag.begin(), tag.end());
  if (EVP_CIPHER_CTX_ctrl(ctx.get(), EVP_CTRL_GCM_SET_TAG,
                          static_cast<int>(kTagSize), tag_copy.data()) != 1) {
    throw std::runtime_error("EVP_CTRL_GCM_SET_TAG failed");
  }
  int final_len = 0;
  if (EVP_DecryptFinal_ex(ctx.get(), out.data() + out.size(), &final_len) !=
      1) {
    return util::fail(ErrorCode::kBadSignature,
                      "AEAD tag mismatch (wrong key or tampered box)");
  }
  return out;
}

}  // namespace rproxy::crypto
