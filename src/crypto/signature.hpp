// Ed25519 digital signatures.
//
// The public-key realization of restricted proxies (Fig 6): the certificate
// is signed with the grantor's private key; the embedded proxy key is the
// public half of a fresh pair whose private half goes to the grantee.
#pragma once

#include "crypto/keys.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace rproxy::crypto {

/// Size of an Ed25519 signature in octets.
inline constexpr std::size_t kSignatureSize = 64;

/// Signs `data` with the pair's private key.  Precondition: pair.valid().
[[nodiscard]] util::Bytes sign(const SigningKeyPair& pair,
                               util::BytesView data);

/// Verifies an Ed25519 signature.
[[nodiscard]] bool verify(const VerifyKey& key, util::BytesView data,
                          util::BytesView signature);

/// verify() packaged as a Status for use in verification pipelines.
[[nodiscard]] util::Status verify_status(const VerifyKey& key,
                                         util::BytesView data,
                                         util::BytesView signature,
                                         std::string_view what);

}  // namespace rproxy::crypto
