// Ed25519 digital signatures.
//
// The public-key realization of restricted proxies (Fig 6): the certificate
// is signed with the grantor's private key; the embedded proxy key is the
// public half of a fresh pair whose private half goes to the grantee.
#pragma once

#include "crypto/keys.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace rproxy::crypto {

/// Size of an Ed25519 signature in octets.
inline constexpr std::size_t kSignatureSize = 64;

/// Signs `data` with the pair's private key.  Precondition: pair.valid().
[[nodiscard]] util::Bytes sign(const SigningKeyPair& pair,
                               util::BytesView data);

/// Verifies an Ed25519 signature.
[[nodiscard]] bool verify(const VerifyKey& key, util::BytesView data,
                          util::BytesView signature);

/// verify() packaged as a Status for use in verification pipelines.
[[nodiscard]] util::Status verify_status(const VerifyKey& key,
                                         util::BytesView data,
                                         util::BytesView signature,
                                         std::string_view what);

/// Counters for the process-wide EVP key-object caches.  sign() and
/// verify() memoize EVP_PKEY construction keyed by the raw key octets, so
/// repeated operations under the same key (a busy server's signing key, a
/// popular grantor's verify key) stop paying EVP_PKEY_new_raw_*_key per
/// call.
struct KeyCacheStats {
  std::uint64_t verify_hits = 0;
  std::uint64_t verify_misses = 0;
  std::uint64_t sign_hits = 0;
  std::uint64_t sign_misses = 0;
};
[[nodiscard]] KeyCacheStats key_cache_stats();

}  // namespace rproxy::crypto
