#include "crypto/keys.hpp"

#include <openssl/evp.h>

#include <cassert>
#include <stdexcept>

#include "crypto/digest.hpp"
#include "crypto/random.hpp"

namespace rproxy::crypto {

SymmetricKey SymmetricKey::from_bytes(util::BytesView raw) {
  assert(raw.size() == kSymmetricKeySize && "symmetric key must be 32 bytes");
  SymmetricKey k;
  for (std::size_t i = 0; i < kSymmetricKeySize; ++i) k.material_[i] = raw[i];
  return k;
}

SymmetricKey SymmetricKey::generate() {
  return from_bytes(random_bytes(kSymmetricKeySize));
}

SymmetricKey SymmetricKey::derive_from_password(std::string_view password,
                                                std::string_view salt) {
  const util::Bytes input =
      util::concat({util::to_bytes(salt), util::to_bytes(password)});
  const Digest d = sha256(input);
  return from_bytes(util::BytesView(d.data(), d.size()));
}

SymmetricKey SymmetricKey::derive_subkey(std::string_view purpose) const {
  const util::Bytes input =
      util::concat({view(), util::to_bytes(purpose)});
  const Digest d = sha256(input);
  return from_bytes(util::BytesView(d.data(), d.size()));
}

bool SymmetricKey::operator==(const SymmetricKey& other) const {
  return util::constant_time_equal(view(), other.view());
}

std::string SymmetricKey::fingerprint() const {
  const Digest d = sha256(view());
  return util::to_hex(util::BytesView(d.data(), 4));
}

VerifyKey VerifyKey::from_bytes(util::BytesView raw) {
  assert(raw.size() == 32 && "Ed25519 public key must be 32 bytes");
  VerifyKey k;
  for (std::size_t i = 0; i < 32; ++i) k.material_[i] = raw[i];
  return k;
}

std::string VerifyKey::fingerprint() const {
  const Digest d = sha256(view());
  return util::to_hex(util::BytesView(d.data(), 4));
}

namespace {
// Extracts the raw public key from an OpenSSL Ed25519 EVP_PKEY.
VerifyKey public_from_pkey(EVP_PKEY* pkey) {
  std::array<std::uint8_t, 32> pub{};
  std::size_t len = pub.size();
  if (EVP_PKEY_get_raw_public_key(pkey, pub.data(), &len) != 1 || len != 32) {
    throw std::runtime_error("EVP_PKEY_get_raw_public_key failed");
  }
  return VerifyKey::from_bytes(pub);
}
}  // namespace

SigningKeyPair SigningKeyPair::generate() {
  return from_private_bytes(random_bytes(32));
}

SigningKeyPair SigningKeyPair::from_private_bytes(util::BytesView seed) {
  assert(seed.size() == 32 && "Ed25519 private seed must be 32 bytes");
  SigningKeyPair pair;
  for (std::size_t i = 0; i < 32; ++i) pair.private_[i] = seed[i];

  EVP_PKEY* pkey = EVP_PKEY_new_raw_private_key(
      EVP_PKEY_ED25519, nullptr, pair.private_.data(), pair.private_.size());
  if (pkey == nullptr) {
    throw std::runtime_error("EVP_PKEY_new_raw_private_key failed");
  }
  pair.public_ = public_from_pkey(pkey);
  EVP_PKEY_free(pkey);
  pair.valid_ = true;
  return pair;
}

}  // namespace rproxy::crypto
