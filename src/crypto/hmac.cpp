#include "crypto/hmac.hpp"

#include <openssl/hmac.h>

#include <stdexcept>

namespace rproxy::crypto {

util::Bytes hmac_sha256(const SymmetricKey& key, util::BytesView data) {
  util::Bytes out(kMacSize);
  unsigned int len = 0;
  if (HMAC(EVP_sha256(), key.view().data(),
           static_cast<int>(key.view().size()), data.data(), data.size(),
           out.data(), &len) == nullptr ||
      len != kMacSize) {
    throw std::runtime_error("HMAC-SHA256 failed");
  }
  return out;
}

bool hmac_verify(const SymmetricKey& key, util::BytesView data,
                 util::BytesView mac) {
  if (mac.size() != kMacSize) return false;
  const util::Bytes expected = hmac_sha256(key, data);
  return util::constant_time_equal(expected, mac);
}

}  // namespace rproxy::crypto
