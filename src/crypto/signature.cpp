#include "crypto/signature.hpp"

#include <openssl/evp.h>

#include <array>
#include <cassert>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace rproxy::crypto {

namespace {
struct PkeyFree {
  void operator()(EVP_PKEY* p) const { EVP_PKEY_free(p); }
};
using PkeyPtr = std::unique_ptr<EVP_PKEY, PkeyFree>;

struct MdCtxFree {
  void operator()(EVP_MD_CTX* c) const { EVP_MD_CTX_free(c); }
};
using MdCtxPtr = std::unique_ptr<EVP_MD_CTX, MdCtxFree>;

/// Bounded LRU of EVP_PKEY objects keyed by the raw 32-octet key material.
/// Cached keys are used read-only (EVP_DigestSign/Verify never mutate the
/// pkey), which OpenSSL supports concurrently; each get() hands back its
/// own reference so an eviction never frees a key mid-use.
class PkeyCache {
 public:
  static constexpr std::size_t kCapacity = 256;
  using RawKey = std::array<std::uint8_t, 32>;

  explicit PkeyCache(bool is_private) : is_private_(is_private) {}

  [[nodiscard]] PkeyPtr get(util::BytesView raw) {
    if (raw.size() != 32) return make_(raw);  // uncacheable shape
    RawKey key{};
    std::memcpy(key.data(), raw.data(), key.size());
    {
      std::lock_guard lock(mutex_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        hits_ += 1;
        EVP_PKEY_up_ref(it->second.pkey.get());
        return PkeyPtr(it->second.pkey.get());
      }
      misses_ += 1;
    }
    PkeyPtr fresh = make_(raw);  // EVP construction outside the lock
    if (!fresh) return fresh;
    std::lock_guard lock(mutex_);
    auto [it, inserted] = map_.try_emplace(key);
    if (inserted) {
      lru_.push_front(key);
      it->second.lru = lru_.begin();
      EVP_PKEY_up_ref(fresh.get());
      it->second.pkey = PkeyPtr(fresh.get());
      while (map_.size() > kCapacity) {
        map_.erase(lru_.back());
        lru_.pop_back();
      }
    }
    return fresh;
  }

  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard lock(mutex_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::lock_guard lock(mutex_);
    return misses_;
  }

 private:
  [[nodiscard]] PkeyPtr make_(util::BytesView raw) const {
    return PkeyPtr(
        is_private_
            ? EVP_PKEY_new_raw_private_key(EVP_PKEY_ED25519, nullptr,
                                           raw.data(), raw.size())
            : EVP_PKEY_new_raw_public_key(EVP_PKEY_ED25519, nullptr,
                                          raw.data(), raw.size()));
  }

  struct Entry {
    PkeyPtr pkey;
    std::list<RawKey>::iterator lru;
  };
  struct RawKeyHash {
    std::size_t operator()(const RawKey& k) const {
      // Key material is uniformly distributed (Ed25519 points / CSPRNG
      // seeds); the first eight octets are a sufficient hash.
      std::size_t h;
      std::memcpy(&h, k.data(), sizeof(h));
      return h;
    }
  };

  const bool is_private_;
  mutable std::mutex mutex_;
  std::list<RawKey> lru_;
  std::unordered_map<RawKey, Entry, RawKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

PkeyCache& verify_key_cache() {
  static PkeyCache cache(/*is_private=*/false);
  return cache;
}

PkeyCache& sign_key_cache() {
  static PkeyCache cache(/*is_private=*/true);
  return cache;
}
}  // namespace

util::Bytes sign(const SigningKeyPair& pair, util::BytesView data) {
  assert(pair.valid() && "cannot sign with an empty key pair");
  const util::Bytes seed = pair.private_bytes();
  PkeyPtr pkey = sign_key_cache().get(seed);
  if (!pkey) throw std::runtime_error("EVP_PKEY_new_raw_private_key failed");

  MdCtxPtr ctx(EVP_MD_CTX_new());
  if (!ctx) throw std::runtime_error("EVP_MD_CTX_new failed");
  if (EVP_DigestSignInit(ctx.get(), nullptr, nullptr, nullptr, pkey.get()) !=
      1) {
    throw std::runtime_error("EVP_DigestSignInit failed");
  }
  util::Bytes sig(kSignatureSize);
  std::size_t sig_len = sig.size();
  if (EVP_DigestSign(ctx.get(), sig.data(), &sig_len, data.data(),
                     data.size()) != 1 ||
      sig_len != kSignatureSize) {
    throw std::runtime_error("EVP_DigestSign failed");
  }
  return sig;
}

bool verify(const VerifyKey& key, util::BytesView data,
            util::BytesView signature) {
  if (signature.size() != kSignatureSize) return false;
  PkeyPtr pkey = verify_key_cache().get(key.view());
  if (!pkey) return false;

  MdCtxPtr ctx(EVP_MD_CTX_new());
  if (!ctx) throw std::runtime_error("EVP_MD_CTX_new failed");
  if (EVP_DigestVerifyInit(ctx.get(), nullptr, nullptr, nullptr,
                           pkey.get()) != 1) {
    return false;
  }
  return EVP_DigestVerify(ctx.get(), signature.data(), signature.size(),
                          data.data(), data.size()) == 1;
}

util::Status verify_status(const VerifyKey& key, util::BytesView data,
                           util::BytesView signature, std::string_view what) {
  if (verify(key, data, signature)) return util::Status::ok();
  return util::fail(util::ErrorCode::kBadSignature,
                    "signature check failed on " + std::string(what));
}

KeyCacheStats key_cache_stats() {
  KeyCacheStats s;
  s.verify_hits = verify_key_cache().hits();
  s.verify_misses = verify_key_cache().misses();
  s.sign_hits = sign_key_cache().hits();
  s.sign_misses = sign_key_cache().misses();
  return s;
}

}  // namespace rproxy::crypto
