#include "crypto/signature.hpp"

#include <openssl/evp.h>

#include <cassert>
#include <memory>
#include <stdexcept>
#include <string>

namespace rproxy::crypto {

namespace {
struct PkeyFree {
  void operator()(EVP_PKEY* p) const { EVP_PKEY_free(p); }
};
using PkeyPtr = std::unique_ptr<EVP_PKEY, PkeyFree>;

struct MdCtxFree {
  void operator()(EVP_MD_CTX* c) const { EVP_MD_CTX_free(c); }
};
using MdCtxPtr = std::unique_ptr<EVP_MD_CTX, MdCtxFree>;
}  // namespace

util::Bytes sign(const SigningKeyPair& pair, util::BytesView data) {
  assert(pair.valid() && "cannot sign with an empty key pair");
  const util::Bytes seed = pair.private_bytes();
  PkeyPtr pkey(EVP_PKEY_new_raw_private_key(EVP_PKEY_ED25519, nullptr,
                                            seed.data(), seed.size()));
  if (!pkey) throw std::runtime_error("EVP_PKEY_new_raw_private_key failed");

  MdCtxPtr ctx(EVP_MD_CTX_new());
  if (!ctx) throw std::runtime_error("EVP_MD_CTX_new failed");
  if (EVP_DigestSignInit(ctx.get(), nullptr, nullptr, nullptr, pkey.get()) !=
      1) {
    throw std::runtime_error("EVP_DigestSignInit failed");
  }
  util::Bytes sig(kSignatureSize);
  std::size_t sig_len = sig.size();
  if (EVP_DigestSign(ctx.get(), sig.data(), &sig_len, data.data(),
                     data.size()) != 1 ||
      sig_len != kSignatureSize) {
    throw std::runtime_error("EVP_DigestSign failed");
  }
  return sig;
}

bool verify(const VerifyKey& key, util::BytesView data,
            util::BytesView signature) {
  if (signature.size() != kSignatureSize) return false;
  PkeyPtr pkey(EVP_PKEY_new_raw_public_key(
      EVP_PKEY_ED25519, nullptr, key.view().data(), key.view().size()));
  if (!pkey) return false;

  MdCtxPtr ctx(EVP_MD_CTX_new());
  if (!ctx) throw std::runtime_error("EVP_MD_CTX_new failed");
  if (EVP_DigestVerifyInit(ctx.get(), nullptr, nullptr, nullptr,
                           pkey.get()) != 1) {
    return false;
  }
  return EVP_DigestVerify(ctx.get(), signature.data(), signature.size(),
                          data.data(), data.size()) == 1;
}

util::Status verify_status(const VerifyKey& key, util::BytesView data,
                           util::BytesView signature, std::string_view what) {
  if (verify(key, data, signature)) return util::Status::ok();
  return util::fail(util::ErrorCode::kBadSignature,
                    "signature check failed on " + std::string(what));
}

}  // namespace rproxy::crypto
