// Key types.
//
// The paper's proxies work with either conventional or public-key
// cryptography (§2, §6).  We provide both: SymmetricKey (AES-256 /
// HMAC-SHA-256 material, the "conventional" realization, §6.2) and
// SigningKeyPair / VerifyKey (Ed25519, the "public-key" realization, §6.1).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace rproxy::crypto {

/// Size of symmetric key material in octets (shared by AEAD and HMAC use).
inline constexpr std::size_t kSymmetricKeySize = 32;

/// A 256-bit symmetric key.  Used both as an AEAD key and as an HMAC key
/// (contexts are separated by purpose strings at the call sites).
class SymmetricKey {
 public:
  /// Zero key; only meaningful as a placeholder before assignment.
  SymmetricKey() = default;

  /// Wraps existing key material.  Precondition: raw.size() == 32.
  static SymmetricKey from_bytes(util::BytesView raw);

  /// Fresh random key from the CSPRNG.
  static SymmetricKey generate();

  /// Deterministic key derived from a password/string via SHA-256.  Used by
  /// the KDC principal database (Kerberos derives keys from passwords).
  static SymmetricKey derive_from_password(std::string_view password,
                                           std::string_view salt);

  /// Derives a distinct subkey for a named purpose: HKDF-like
  /// SHA-256(key || purpose).  Keeps one logical key per principal while
  /// separating encryption and MAC contexts.
  [[nodiscard]] SymmetricKey derive_subkey(std::string_view purpose) const;

  [[nodiscard]] util::BytesView view() const { return material_; }
  [[nodiscard]] util::Bytes bytes() const {
    return util::Bytes(material_.begin(), material_.end());
  }

  /// Constant-time comparison.
  [[nodiscard]] bool operator==(const SymmetricKey& other) const;

  /// First 4 bytes of SHA-256(key) in hex — a safe identifier for logs and
  /// key-selection hints (never reveals the key).
  [[nodiscard]] std::string fingerprint() const;

 private:
  std::array<std::uint8_t, kSymmetricKeySize> material_{};
};

/// Ed25519 public verification key (32 octets).
class VerifyKey {
 public:
  VerifyKey() = default;

  /// Wraps raw public key material.  Precondition: raw.size() == 32.
  static VerifyKey from_bytes(util::BytesView raw);

  [[nodiscard]] util::BytesView view() const { return material_; }
  [[nodiscard]] util::Bytes bytes() const {
    return util::Bytes(material_.begin(), material_.end());
  }

  [[nodiscard]] bool operator==(const VerifyKey& other) const {
    return material_ == other.material_;
  }

  /// Hex fingerprint for logs / name-server lookups.
  [[nodiscard]] std::string fingerprint() const;

 private:
  std::array<std::uint8_t, 32> material_{};
};

/// Ed25519 key pair.  The private half never leaves this object except via
/// private_bytes() (needed to hand a proxy key pair to a grantee, Fig 6).
class SigningKeyPair {
 public:
  SigningKeyPair() = default;

  /// Fresh Ed25519 key pair.
  static SigningKeyPair generate();

  /// Reconstructs a pair from a stored private seed (32 octets).
  static SigningKeyPair from_private_bytes(util::BytesView seed);

  [[nodiscard]] const VerifyKey& public_key() const { return public_; }

  /// Raw 32-octet private seed.  Handle with care: transferring this IS
  /// transferring the proxy key (the paper: "care must be taken to protect
  /// the proxy key from disclosure", §2).
  [[nodiscard]] util::Bytes private_bytes() const {
    return util::Bytes(private_.begin(), private_.end());
  }

  [[nodiscard]] bool valid() const { return valid_; }

 private:
  std::array<std::uint8_t, 32> private_{};
  VerifyKey public_;
  bool valid_ = false;

  friend class Signer;
};

}  // namespace rproxy::crypto
