// HMAC-SHA-256.
//
// In the conventional-cryptography realization (§6.2) a proxy certificate is
// "signed" by computing a MAC under a key: either a key shared with the
// end-server (Kerberos mode) or the previous proxy key in a cascade (Fig 4:
// [restrictions2, Kproxy2]Kproxy1).
#pragma once

#include "crypto/digest.hpp"
#include "crypto/keys.hpp"
#include "util/bytes.hpp"

namespace rproxy::crypto {

/// Size of an HMAC-SHA-256 tag in octets.
inline constexpr std::size_t kMacSize = 32;

/// Computes HMAC-SHA-256(key, data).
[[nodiscard]] util::Bytes hmac_sha256(const SymmetricKey& key,
                                      util::BytesView data);

/// Verifies a MAC in constant time.
[[nodiscard]] bool hmac_verify(const SymmetricKey& key, util::BytesView data,
                               util::BytesView mac);

}  // namespace rproxy::crypto
