#include "core/verifier.hpp"

#include <algorithm>

#include "core/revocation_id.hpp"
#include "core/verify_cache.hpp"

namespace rproxy::core {

using util::ErrorCode;

util::Result<crypto::VerifyKey> MapKeyResolver::resolve(
    const PrincipalName& name) const {
  auto it = keys_.find(name);
  if (it == keys_.end()) {
    return util::fail(ErrorCode::kNotFound,
                      "no identity key known for '" + name + "'");
  }
  return it->second;
}

ProxyVerifier::ProxyVerifier(Config config) : config_(std::move(config)) {
  if (config_.verify_cache_capacity > 0) {
    cache_ = std::make_unique<ChainVerifyCache>(config_.verify_cache_capacity,
                                                config_.verify_cache_ttl,
                                                config_.revocation);
  }
}

ProxyVerifier::~ProxyVerifier() = default;
ProxyVerifier::ProxyVerifier(ProxyVerifier&&) noexcept = default;
ProxyVerifier& ProxyVerifier::operator=(ProxyVerifier&&) noexcept = default;

ChainCacheStats ProxyVerifier::cache_stats() const {
  return cache_ ? cache_->stats() : ChainCacheStats{};
}

void ProxyVerifier::clear_cache() {
  if (cache_) cache_->clear();
}

util::Result<VerifiedProxy> ProxyVerifier::verify_chain(
    const ProxyChain& chain, util::TimePoint now) const {
  if (!cache_) return verify_chain_uncached_(chain, now);
  const crypto::Digest key = ChainVerifyCache::key_of(chain);
  if (std::optional<VerifiedProxy> hit =
          cache_->lookup(key, now, config_.max_skew)) {
    return std::move(*hit);
  }
  util::Result<VerifiedProxy> verified = verify_chain_uncached_(chain, now);
  // Only successful verifications are remembered: a rejection stays as
  // cheap or expensive as it was, and no attacker-chosen garbage occupies
  // cache slots.
  if (verified.is_ok()) cache_->insert(key, chain, verified.value(), now);
  return verified;
}

util::Result<VerifiedProxy> ProxyVerifier::verify_chain_uncached_(
    const ProxyChain& chain, util::TimePoint now) const {
  switch (chain.mode) {
    case ProxyMode::kSymmetric:
      return verify_sym_chain_(chain, now);
    case ProxyMode::kPublicKey:
      return verify_pk_chain_(chain, now);
  }
  return util::fail(ErrorCode::kParseError, "unknown proxy mode");
}

util::Result<VerifiedProxy> ProxyVerifier::verify_sym_chain_(
    const ProxyChain& chain, util::TimePoint now) const {
  if (!config_.server_key.has_value()) {
    return util::fail(ErrorCode::kProtocolError,
                      "this server accepts no symmetric proxies");
  }
  if (!chain.krb_root.has_value()) {
    return util::fail(ErrorCode::kParseError,
                      "symmetric chain lacks its Kerberos root");
  }

  // Root: the ticket+authenticator pair IS the proxy certificate (§6.2).
  // Unlike a personal AP exchange, the authenticator here is not fresh —
  // the proxy may have been granted long ago — so freshness and replay
  // protection come from the challenge-response presentation instead.
  RPROXY_ASSIGN_OR_RETURN(
      kdc::TicketBody ticket,
      kdc::open_ticket(chain.krb_root->ticket, *config_.server_key));
  if (ticket.expires_at < now) {
    return util::fail(ErrorCode::kExpired, "proxy ticket expired");
  }
  RPROXY_ASSIGN_OR_RETURN(
      kdc::AuthenticatorBody auth,
      kdc::open_authenticator(chain.krb_root->sealed_authenticator,
                              ticket.session_key));
  if (auth.client != ticket.client) {
    return util::fail(ErrorCode::kProtocolError,
                      "proxy authenticator/ticket client mismatch");
  }
  if (auth.timestamp < ticket.auth_time - config_.max_skew ||
      auth.timestamp > ticket.expires_at) {
    return util::fail(ErrorCode::kExpired,
                      "proxy authenticator outside ticket validity");
  }
  if (auth.subkey.size() != crypto::kSymmetricKeySize) {
    return util::fail(ErrorCode::kProtocolError,
                      "proxy authenticator carries no proxy key (subkey)");
  }

  // Revocation: the authenticator timestamp is the grant's mint instant
  // (the ticket may long outlive the grant).  This check cannot be elided —
  // after the grantor's KDC key rotates, the ticket still opens fine under
  // OUR key, so no cryptographic step above would fail.
  const RevocationRegistry* revocation = config_.revocation;
  const bool want_ids =
      revocation != nullptr && revocation->has_cert_revocations();
  if (revocation != nullptr) {
    RPROXY_RETURN_IF_ERROR(revocation->check_link(
        ticket.client, auth.timestamp,
        want_ids ? std::optional<RevocationId>(
                       revocation_id_of(*chain.krb_root))
                 : std::nullopt));
  }

  VerifiedProxy out;
  out.mode = ProxyMode::kSymmetric;
  out.grantor = ticket.client;
  out.expires_at = ticket.expires_at;
  out.chain_length = 1;

  RPROXY_ASSIGN_OR_RETURN(
      RestrictionSet ticket_rs,
      RestrictionSet::from_blobs(ticket.authorization_data));
  RPROXY_ASSIGN_OR_RETURN(
      RestrictionSet auth_rs,
      RestrictionSet::from_blobs(auth.authorization_data));
  out.effective_restrictions = ticket_rs.merged(auth_rs);

  crypto::SymmetricKey link_key =
      crypto::SymmetricKey::from_bytes(auth.subkey);

  // Cascade links (Fig 4): each is MACed under the previous proxy key and
  // seals the next proxy key inside.
  for (const ProxyCertificate& cert : chain.certs) {
    if (cert.mode != ProxyMode::kSymmetric ||
        cert.signer != SignerKind::kParentProxyKey) {
      return util::fail(ErrorCode::kProtocolError,
                        "symmetric cascade link has foreign mode/signer");
    }
    if (cert.expires_at < now) {
      return util::fail(ErrorCode::kExpired, "cascade link expired");
    }
    if (!crypto::hmac_verify(link_key.derive_subkey(kCascadeMacPurpose),
                             cert.signed_bytes(), cert.signature)) {
      return util::fail(ErrorCode::kBadSignature,
                        "cascade link MAC does not verify");
    }
    if (revocation != nullptr) {
      // Cascade links are anonymous (keyed by the parent proxy key, no
      // grantor name), so only the certificate list applies here.
      RPROXY_RETURN_IF_ERROR(revocation->check_link(
          PrincipalName{}, cert.issued_at,
          want_ids ? std::optional<RevocationId>(revocation_id_of(cert))
                   : std::nullopt));
    }
    RPROXY_ASSIGN_OR_RETURN(
        util::Bytes next_key,
        crypto::aead_open(link_key.derive_subkey(kCascadeSealPurpose),
                          cert.proxy_key_material));
    if (next_key.size() != crypto::kSymmetricKeySize) {
      return util::fail(ErrorCode::kParseError,
                        "cascade link seals a malformed proxy key");
    }
    link_key = crypto::SymmetricKey::from_bytes(next_key);
    out.effective_restrictions =
        out.effective_restrictions.merged(cert.restrictions);
    out.expires_at = std::min(out.expires_at, cert.expires_at);
    out.chain_length += 1;
  }

  out.sym_proxy_key = link_key;
  return out;
}

util::Result<VerifiedProxy> ProxyVerifier::verify_pk_chain_(
    const ProxyChain& chain, util::TimePoint now) const {
  if (config_.resolver == nullptr) {
    return util::fail(ErrorCode::kProtocolError,
                      "this server accepts no public-key proxies");
  }
  if (chain.certs.empty()) {
    return util::fail(ErrorCode::kParseError, "public-key chain is empty");
  }
  if (chain.krb_root.has_value()) {
    return util::fail(ErrorCode::kParseError,
                      "public-key chain must not carry a Kerberos root");
  }

  VerifiedProxy out;
  out.mode = ProxyMode::kPublicKey;

  const RevocationRegistry* revocation = config_.revocation;
  const bool want_ids =
      revocation != nullptr && revocation->has_cert_revocations();

  crypto::VerifyKey link_key;  // proxy key of the link verified so far
  for (std::size_t i = 0; i < chain.certs.size(); ++i) {
    const ProxyCertificate& cert = chain.certs[i];
    if (cert.mode != ProxyMode::kPublicKey) {
      return util::fail(ErrorCode::kProtocolError,
                        "public-key chain contains a symmetric link");
    }
    if (cert.expires_at < now) {
      return util::fail(ErrorCode::kExpired,
                        i == 0 ? "proxy certificate expired"
                               : "cascade link expired");
    }
    if (cert.issued_at > now + config_.max_skew) {
      return util::fail(ErrorCode::kExpired,
                        "certificate issued in the future");
    }

    switch (cert.signer) {
      case SignerKind::kGrantorIdentity: {
        if (i != 0) {
          return util::fail(ErrorCode::kProtocolError,
                            "grantor-signed certificate not at chain root");
        }
        RPROXY_ASSIGN_OR_RETURN(crypto::VerifyKey grantor_key,
                                config_.resolver->resolve(cert.grantor));
        RPROXY_RETURN_IF_ERROR(crypto::verify_status(
            grantor_key, cert.signed_bytes(), cert.signature,
            "root proxy certificate"));
        out.grantor = cert.grantor;
        break;
      }
      case SignerKind::kParentProxyKey: {
        if (i == 0) {
          return util::fail(ErrorCode::kProtocolError,
                            "chain root cannot be signed by a parent key");
        }
        RPROXY_RETURN_IF_ERROR(crypto::verify_status(
            link_key, cert.signed_bytes(), cert.signature,
            "bearer cascade link"));
        break;
      }
      case SignerKind::kIntermediateIdentity: {
        if (i == 0) {
          return util::fail(ErrorCode::kProtocolError,
                            "chain root cannot be an intermediate link");
        }
        // "Because the intermediate server is explicitly named in the
        // original proxy, it also grants the subordinate a new proxy" —
        // the signer must be a named grantee of the chain so far.
        bool named = false;
        for (const Restriction& r :
             out.effective_restrictions.items()) {
          if (const auto* g = r.get_if<GranteeRestriction>()) {
            named = named || std::find(g->delegates.begin(),
                                       g->delegates.end(), cert.grantor) !=
                                 g->delegates.end();
          }
        }
        if (!named) {
          return util::fail(
              ErrorCode::kNotGrantee,
              "intermediate '" + cert.grantor +
                  "' is not a named grantee of the chain it extends");
        }
        RPROXY_ASSIGN_OR_RETURN(crypto::VerifyKey intermediate_key,
                                config_.resolver->resolve(cert.grantor));
        RPROXY_RETURN_IF_ERROR(crypto::verify_status(
            intermediate_key, cert.signed_bytes(), cert.signature,
            "delegate cascade link"));
        out.audit_trail.push_back(cert.grantor);
        break;
      }
      default:
        return util::fail(ErrorCode::kParseError, "unknown signer kind");
    }

    if (revocation != nullptr) {
      // Walk order gives cascaded kill for free: rejecting at the first
      // revoked link kills every chain that CONTAINS it, while shorter
      // chains (prefixes) never reach it and survive.  Bearer links carry
      // no grantor name; only the certificate list applies to them.
      static const PrincipalName kAnonymous;
      const PrincipalName& link_grantor =
          cert.signer == SignerKind::kParentProxyKey ? kAnonymous
                                                     : cert.grantor;
      RPROXY_RETURN_IF_ERROR(revocation->check_link(
          link_grantor, cert.issued_at,
          want_ids ? std::optional<RevocationId>(revocation_id_of(cert))
                   : std::nullopt));
    }

    if (cert.proxy_key_material.size() != 32) {
      return util::fail(ErrorCode::kParseError,
                        "malformed embedded proxy key");
    }
    link_key = crypto::VerifyKey::from_bytes(cert.proxy_key_material);
    out.effective_restrictions =
        out.effective_restrictions.merged(cert.restrictions);
    out.expires_at = out.expires_at == 0
                         ? cert.expires_at
                         : std::min(out.expires_at, cert.expires_at);
    out.chain_length += 1;
  }

  out.pk_proxy_key = link_key;
  return out;
}

util::Result<std::vector<PrincipalName>> ProxyVerifier::verify_identity(
    const PossessionProof& proof, util::BytesView challenge,
    util::BytesView request_digest, util::TimePoint now) const {
  if (proof.kind != PossessionProof::Kind::kDelegateKrb &&
      proof.kind != PossessionProof::Kind::kDelegatePk) {
    return util::fail(ErrorCode::kProtocolError,
                      "identity proof must be a personal authentication");
  }
  return verify_possession(VerifiedProxy{}, proof, challenge, request_digest,
                           now);
}

util::Result<std::vector<PrincipalName>> ProxyVerifier::verify_possession(
    const VerifiedProxy& verified, const PossessionProof& proof,
    util::BytesView challenge, util::BytesView request_digest,
    util::TimePoint now) const {
  const util::Duration skew = proof.timestamp > now ? proof.timestamp - now
                                                    : now - proof.timestamp;
  if (skew > config_.max_skew) {
    return util::fail(ErrorCode::kExpired, "possession proof not fresh");
  }
  const util::Bytes transcript =
      presentation_transcript(challenge, config_.server_name,
                              proof.timestamp, proof.nonce, request_digest);

  switch (proof.kind) {
    case PossessionProof::Kind::kBearerMac: {
      if (verified.mode != ProxyMode::kSymmetric) {
        return util::fail(ErrorCode::kProtocolError,
                          "MAC proof for a public-key proxy");
      }
      if (!crypto::hmac_verify(
              verified.sym_proxy_key.derive_subkey(kPresentPurpose),
              transcript, proof.blob)) {
        return util::fail(ErrorCode::kBadSignature,
                          "possession MAC does not verify");
      }
      return std::vector<PrincipalName>{};
    }
    case PossessionProof::Kind::kBearerSig: {
      if (verified.mode != ProxyMode::kPublicKey) {
        return util::fail(ErrorCode::kProtocolError,
                          "signature proof for a symmetric proxy");
      }
      RPROXY_RETURN_IF_ERROR(
          crypto::verify_status(verified.pk_proxy_key, transcript,
                                proof.blob, "possession signature"));
      return std::vector<PrincipalName>{};
    }
    case PossessionProof::Kind::kDelegateKrb: {
      if (!config_.server_key.has_value()) {
        return util::fail(ErrorCode::kProtocolError,
                          "server cannot verify Kerberos identities");
      }
      RPROXY_ASSIGN_OR_RETURN(
          KrbDelegateProofBlob blob,
          wire::decode_from_bytes<KrbDelegateProofBlob>(proof.blob));
      kdc::ApVerifyOptions options;
      options.max_skew = config_.max_skew;
      options.replay_cache = config_.replay_cache;
      RPROXY_ASSIGN_OR_RETURN(
          kdc::ApVerified ap,
          kdc::verify_ap_request(blob.ap, *config_.server_key, now, options));
      if (!crypto::hmac_verify(
              ap.ticket.session_key.derive_subkey(kPresentPurpose),
              transcript, blob.transcript_mac)) {
        return util::fail(ErrorCode::kBadSignature,
                          "delegate transcript MAC does not verify");
      }
      return std::vector<PrincipalName>{ap.ticket.client};
    }
    case PossessionProof::Kind::kDelegatePk: {
      if (!config_.pk_root.has_value()) {
        return util::fail(ErrorCode::kProtocolError,
                          "server cannot verify pk identities");
      }
      RPROXY_ASSIGN_OR_RETURN(
          pki::PkAuthProof pk_proof,
          wire::decode_from_bytes<pki::PkAuthProof>(proof.blob));
      RPROXY_ASSIGN_OR_RETURN(
          PrincipalName who,
          pki::verify_pk_auth(pk_proof, *config_.pk_root, transcript,
                              config_.server_name, now, config_.max_skew));
      return std::vector<PrincipalName>{who};
    }
  }
  return util::fail(ErrorCode::kParseError, "unknown proof kind");
}

}  // namespace rproxy::core
