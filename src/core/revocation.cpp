#include "core/revocation.hpp"

#include <algorithm>

namespace rproxy::core {

void RevocationRegistry::Event::encode(wire::Encoder& enc) const {
  enc.str(grantor);
  enc.u64(epoch);
  enc.i64(cut_before);
  enc.boolean(cert.has_value());
  if (cert.has_value()) enc.raw(util::BytesView(cert->data(), cert->size()));
}

RevocationRegistry::Event RevocationRegistry::Event::decode(
    wire::Decoder& dec) {
  Event e;
  e.grantor = dec.str();
  e.epoch = dec.u64();
  e.cut_before = dec.i64();
  if (dec.boolean()) {
    const util::Bytes raw = dec.raw(crypto::kDigestSize);
    if (raw.size() == crypto::kDigestSize) {
      RevocationId id;
      std::copy(raw.begin(), raw.end(), id.begin());
      e.cert = id;
    }
  }
  return e;
}

void RevocationRegistry::mutate_(const PrincipalName& grantor,
                                 const std::function<void(Record&)>& fn,
                                 const std::optional<RevocationId>& cert) {
  Event event;
  std::vector<std::function<void(const Event&)>> listeners;
  {
    std::lock_guard lock(mutex_);
    Record& record = records_[grantor];
    fn(record);
    record.epoch += 1;
    epoch_bumps_ += 1;
    event.grantor = grantor;
    event.epoch = record.epoch;
    event.cut_before = record.cut_before;
    event.cert = cert;
    // Publish AFTER the map mutation: a reader seeing the new version is
    // guaranteed to observe the new record under the lock.
    version_.fetch_add(1, std::memory_order_release);
    for (const auto& [token, listener] : listeners_) {
      listeners.push_back(listener);
    }
  }
  // Outside the lock: a listener may do arbitrary work (journal appends)
  // and must not be able to deadlock against concurrent registry readers.
  for (const auto& listener : listeners) listener(event);
}

std::uint64_t RevocationRegistry::bump(const PrincipalName& grantor) {
  std::uint64_t out = 0;
  mutate_(grantor, [&](Record& r) { out = r.epoch + 1; }, std::nullopt);
  return out;
}

void RevocationRegistry::revoke_grants_before(const PrincipalName& grantor,
                                              util::TimePoint cutoff) {
  mutate_(
      grantor,
      [&](Record& r) {
        r.cut_before = std::max(r.cut_before, cutoff);
        grantor_cuts_ += 1;
      },
      std::nullopt);
}

void RevocationRegistry::revoke_cert(const PrincipalName& grantor,
                                     const RevocationId& id) {
  mutate_(
      grantor,
      [&](Record& r) {
        if (r.certs.insert(id).second) {
          revoked_certs_.insert(id);
          cert_revocations_ += 1;
          listed_certs_.store(revoked_certs_.size(),
                              std::memory_order_release);
        }
      },
      id);
}

std::uint64_t RevocationRegistry::epoch_of(
    const PrincipalName& grantor) const {
  std::lock_guard lock(mutex_);
  auto it = records_.find(grantor);
  return it == records_.end() ? 0 : it->second.epoch;
}

std::uint64_t RevocationRegistry::snapshot_epochs(
    const std::vector<PrincipalName>& grantors,
    std::vector<std::pair<PrincipalName, std::uint64_t>>& out) const {
  out.clear();
  out.reserve(grantors.size());
  std::lock_guard lock(mutex_);
  for (const PrincipalName& g : grantors) {
    auto it = records_.find(g);
    out.emplace_back(g, it == records_.end() ? 0 : it->second.epoch);
  }
  // Read under the same lock hold as the epochs: mutations bump the
  // version while holding the lock, so this pairing is consistent.
  return version_.load(std::memory_order_acquire);
}

bool RevocationRegistry::epochs_current(
    const std::vector<std::pair<PrincipalName, std::uint64_t>>& recorded)
    const {
  std::lock_guard lock(mutex_);
  for (const auto& [grantor, epoch] : recorded) {
    auto it = records_.find(grantor);
    const std::uint64_t current =
        it == records_.end() ? 0 : it->second.epoch;
    if (current != epoch) return false;
  }
  return true;
}

util::Status RevocationRegistry::check_link(
    const PrincipalName& grantor, util::TimePoint granted_at,
    const std::optional<RevocationId>& id) const {
  link_checks_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  if (id.has_value() && revoked_certs_.count(*id) > 0) {
    link_rejections_.fetch_add(1, std::memory_order_relaxed);
    return util::fail(util::ErrorCode::kRevoked,
                      "certificate revoked by its grantor");
  }
  if (!grantor.empty()) {
    auto it = records_.find(grantor);
    if (it != records_.end() && granted_at < it->second.cut_before) {
      link_rejections_.fetch_add(1, std::memory_order_relaxed);
      return util::fail(util::ErrorCode::kRevoked,
                        "grant from '" + grantor +
                            "' revoked (issued before the grantor's "
                            "revocation cutoff)");
    }
  }
  return util::Status::ok();
}

void RevocationRegistry::encode_state(wire::Encoder& enc) const {
  std::lock_guard lock(mutex_);
  enc.u32(static_cast<std::uint32_t>(records_.size()));
  for (const auto& [grantor, record] : records_) {
    enc.str(grantor);
    enc.u64(record.epoch);
    enc.i64(record.cut_before);
    enc.u32(static_cast<std::uint32_t>(record.certs.size()));
    for (const RevocationId& id : record.certs) {
      enc.raw(util::BytesView(id.data(), id.size()));
    }
  }
}

util::Status RevocationRegistry::merge_state(wire::Decoder& dec) {
  std::lock_guard lock(mutex_);
  const std::uint32_t count = dec.u32();
  bool changed = false;
  for (std::uint32_t i = 0; i < count && dec.ok(); ++i) {
    const PrincipalName grantor = dec.str();
    const std::uint64_t epoch = dec.u64();
    const util::TimePoint cut_before = dec.i64();
    const std::uint32_t cert_count = dec.u32();
    Record& record = records_[grantor];
    if (epoch > record.epoch) {
      record.epoch = epoch;
      changed = true;
    }
    if (cut_before > record.cut_before) {
      record.cut_before = cut_before;
      changed = true;
    }
    for (std::uint32_t c = 0; c < cert_count && dec.ok(); ++c) {
      const util::Bytes raw = dec.raw(crypto::kDigestSize);
      if (raw.size() != crypto::kDigestSize) {
        return util::fail(util::ErrorCode::kParseError,
                          "revocation id is not a SHA-256 digest");
      }
      RevocationId id;
      std::copy(raw.begin(), raw.end(), id.begin());
      if (record.certs.insert(id).second) {
        revoked_certs_.insert(id);
        changed = true;
      }
    }
  }
  if (!dec.ok()) {
    return util::fail(util::ErrorCode::kParseError,
                      "truncated revocation state");
  }
  if (changed) {
    listed_certs_.store(revoked_certs_.size(), std::memory_order_release);
    version_.fetch_add(1, std::memory_order_release);
  }
  return util::Status::ok();
}

void RevocationRegistry::apply(const Event& event) {
  std::lock_guard lock(mutex_);
  Record& record = records_[event.grantor];
  bool changed = false;
  if (event.epoch > record.epoch) {
    record.epoch = event.epoch;
    changed = true;
  }
  if (event.cut_before > record.cut_before) {
    record.cut_before = event.cut_before;
    changed = true;
  }
  if (event.cert.has_value() && record.certs.insert(*event.cert).second) {
    revoked_certs_.insert(*event.cert);
    listed_certs_.store(revoked_certs_.size(), std::memory_order_release);
    changed = true;
  }
  if (changed) version_.fetch_add(1, std::memory_order_release);
}

std::uint64_t RevocationRegistry::add_listener(
    std::function<void(const Event&)> listener) {
  std::lock_guard lock(mutex_);
  const std::uint64_t token = next_listener_token_++;
  listeners_[token] = std::move(listener);
  return token;
}

void RevocationRegistry::remove_listener(std::uint64_t token) {
  std::lock_guard lock(mutex_);
  listeners_.erase(token);
}

RevocationStats RevocationRegistry::stats() const {
  std::lock_guard lock(mutex_);
  RevocationStats s;
  s.epoch_bumps = epoch_bumps_;
  s.grantor_cuts = grantor_cuts_;
  s.cert_revocations = cert_revocations_;
  s.link_checks = link_checks_.load(std::memory_order_relaxed);
  s.link_rejections = link_rejections_.load(std::memory_order_relaxed);
  s.tracked_grantors = records_.size();
  s.listed_certs = revoked_certs_.size();
  return s;
}

}  // namespace rproxy::core
