#include "core/restriction_set.hpp"

#include <algorithm>

namespace rproxy::core {

namespace {

using util::ErrorCode;

util::Status eval_grantee(const GranteeRestriction& r,
                          const RequestContext& ctx) {
  std::uint32_t matched = 0;
  for (const PrincipalName& delegate : r.delegates) {
    if (std::find(ctx.effective_identities.begin(),
                  ctx.effective_identities.end(),
                  delegate) != ctx.effective_identities.end()) {
      ++matched;
    }
  }
  if (matched < std::max<std::uint32_t>(r.required, 1)) {
    return util::fail(ErrorCode::kNotGrantee,
                      "grantee restriction: " + std::to_string(matched) +
                          " of required " + std::to_string(r.required) +
                          " delegates authenticated");
  }
  return util::Status::ok();
}

util::Status eval_for_use_by_group(const ForUseByGroupRestriction& r,
                                   const RequestContext& ctx) {
  std::uint32_t matched = 0;
  for (const GroupName& g : r.groups) {
    if (std::find(ctx.asserted_groups.begin(), ctx.asserted_groups.end(),
                  g) != ctx.asserted_groups.end()) {
      ++matched;
    }
  }
  if (matched < std::max<std::uint32_t>(r.required, 1)) {
    return util::fail(ErrorCode::kRestrictionViolated,
                      "for-use-by-group: " + std::to_string(matched) +
                          " of required " + std::to_string(r.required) +
                          " group memberships asserted");
  }
  return util::Status::ok();
}

util::Status eval_issued_for(const IssuedForRestriction& r,
                             const RequestContext& ctx) {
  if (std::find(r.servers.begin(), r.servers.end(), ctx.end_server) ==
      r.servers.end()) {
    return util::fail(ErrorCode::kRestrictionViolated,
                      "issued-for: proxy not issued for server '" +
                          ctx.end_server + "'");
  }
  return util::Status::ok();
}

util::Status eval_quota(const QuotaRestriction& r, const RequestContext& ctx) {
  auto it = ctx.amounts.find(r.currency);
  const std::uint64_t requested = it == ctx.amounts.end() ? 0 : it->second;
  if (requested > r.limit) {
    return util::fail(ErrorCode::kRestrictionViolated,
                      "quota: request consumes " + std::to_string(requested) +
                          " " + r.currency + ", limit " +
                          std::to_string(r.limit));
  }
  return util::Status::ok();
}

util::Status eval_authorized(const AuthorizedRestriction& r,
                             const RequestContext& ctx) {
  for (const ObjectRights& rights : r.rights) {
    if (rights.object != ctx.object && rights.object != "*") continue;
    if (rights.operations.empty() ||
        std::find(rights.operations.begin(), rights.operations.end(),
                  ctx.operation) != rights.operations.end()) {
      return util::Status::ok();
    }
  }
  return util::fail(ErrorCode::kRestrictionViolated,
                    "authorized: operation '" + ctx.operation +
                        "' on object '" + ctx.object + "' not in list");
}

util::Status eval_group_membership(const GroupMembershipRestriction& r,
                                   const RequestContext& ctx) {
  if (!ctx.asserting_group.has_value()) {
    // Not being used to assert membership; the restriction binds nothing
    // about this request.
    return util::Status::ok();
  }
  if (std::find(r.groups.begin(), r.groups.end(), *ctx.asserting_group) ==
      r.groups.end()) {
    return util::fail(ErrorCode::kRestrictionViolated,
                      "group-membership: proxy does not assert membership "
                      "in '" +
                          ctx.asserting_group->to_string() + "'");
  }
  return util::Status::ok();
}

util::Status eval_accept_once(const AcceptOnceRestriction& r,
                              RequestContext& ctx) {
  if (ctx.accept_once == nullptr) {
    return util::fail(ErrorCode::kRestrictionViolated,
                      "accept-once: server cannot track identifiers");
  }
  return ctx.accept_once->check_and_insert(ctx.grantor, r.identifier,
                                           ctx.credential_expiry, ctx.now);
}

util::Status eval_limit(const LimitRestriction& r, RequestContext& ctx) {
  if (std::find(r.servers.begin(), r.servers.end(), ctx.end_server) ==
      r.servers.end()) {
    // "...enforced by the named servers and ignored by others." (§7.8)
    return util::Status::ok();
  }
  for (const Restriction& inner : r.inner) {
    RPROXY_RETURN_IF_ERROR(evaluate_restriction(inner, ctx));
  }
  return util::Status::ok();
}

}  // namespace

util::Status evaluate_restriction(const Restriction& r, RequestContext& ctx) {
  return std::visit(
      [&ctx](const auto& v) -> util::Status {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, GranteeRestriction>) {
          return eval_grantee(v, ctx);
        } else if constexpr (std::is_same_v<T, ForUseByGroupRestriction>) {
          return eval_for_use_by_group(v, ctx);
        } else if constexpr (std::is_same_v<T, IssuedForRestriction>) {
          return eval_issued_for(v, ctx);
        } else if constexpr (std::is_same_v<T, QuotaRestriction>) {
          return eval_quota(v, ctx);
        } else if constexpr (std::is_same_v<T, AuthorizedRestriction>) {
          return eval_authorized(v, ctx);
        } else if constexpr (std::is_same_v<T, GroupMembershipRestriction>) {
          return eval_group_membership(v, ctx);
        } else if constexpr (std::is_same_v<T, AcceptOnceRestriction>) {
          return eval_accept_once(v, ctx);
        } else {
          static_assert(std::is_same_v<T, LimitRestriction>);
          return eval_limit(v, ctx);
        }
      },
      r.value());
}

RestrictionSet RestrictionSet::merged(const RestrictionSet& other) const {
  RestrictionSet out = *this;
  out.restrictions_.insert(out.restrictions_.end(),
                           other.restrictions_.begin(),
                           other.restrictions_.end());
  return out;
}

util::Status RestrictionSet::evaluate(RequestContext& ctx) const {
  for (const Restriction& r : restrictions_) {
    RPROXY_RETURN_IF_ERROR(evaluate_restriction(r, ctx));
  }
  return util::Status::ok();
}

bool RestrictionSet::is_delegate() const {
  return find<GranteeRestriction>() != nullptr;
}

void RestrictionSet::encode(wire::Encoder& enc) const {
  enc.seq(restrictions_,
          [](wire::Encoder& e, const Restriction& r) { r.encode(e); });
}

RestrictionSet RestrictionSet::decode(wire::Decoder& dec) {
  RestrictionSet set;
  set.restrictions_ = dec.seq<Restriction>(
      [](wire::Decoder& d) { return Restriction::decode(d); });
  return set;
}

std::vector<util::Bytes> RestrictionSet::to_blobs() const {
  std::vector<util::Bytes> blobs;
  blobs.reserve(restrictions_.size());
  for (const Restriction& r : restrictions_) {
    blobs.push_back(wire::encode_to_bytes(r));
  }
  return blobs;
}

util::Result<RestrictionSet> RestrictionSet::from_blobs(
    const std::vector<util::Bytes>& blobs) {
  RestrictionSet set;
  for (const util::Bytes& blob : blobs) {
    RPROXY_ASSIGN_OR_RETURN(Restriction r,
                            wire::decode_from_bytes<Restriction>(blob));
    set.add(std::move(r));
  }
  return set;
}

}  // namespace rproxy::core
