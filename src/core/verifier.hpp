// End-server verification engine.
//
// Given a presented chain, the verifier (a) validates every signature/MAC
// link-by-link, recovering the final proxy key, (b) accumulates the
// restriction sets of every certificate (additivity: the effective set is
// the union), and (c) checks the possession proof against the recovered
// key or the grantee's personal authentication.  All of this is OFFLINE —
// no message to any third party — which is the efficiency the paper claims
// over Sollins' cascaded authentication (§3.4).
#pragma once

#include <memory>

#include "core/presentation.hpp"

namespace rproxy::core {

class ChainVerifyCache;
class RevocationRegistry;

/// Counters of the verified-chain cache (zeros when the cache is disabled).
struct ChainCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Entries dropped on lookup because the chain expired or the reuse TTL
  /// lapsed — both fall through to full re-verification.
  std::uint64_t expired_drops = 0;
  /// Entries dropped on lookup because a grantor on the chain was revoked
  /// against (its revocation epoch moved past the one recorded at insert);
  /// the caller falls through to full re-verification.
  std::uint64_t revocation_stale_drops = 0;
  std::size_t size = 0;
};

/// Resolves principal names to identity verification keys (public-key
/// realization).  Typically backed by pki::NameServer::key_of or a cache of
/// name-server certificates.
class KeyResolver {
 public:
  virtual ~KeyResolver() = default;
  [[nodiscard]] virtual util::Result<crypto::VerifyKey> resolve(
      const PrincipalName& name) const = 0;
};

/// KeyResolver over a fixed in-memory map (tests, simple servers).
class MapKeyResolver final : public KeyResolver {
 public:
  void add(const PrincipalName& name, const crypto::VerifyKey& key) {
    keys_[name] = key;
  }
  [[nodiscard]] util::Result<crypto::VerifyKey> resolve(
      const PrincipalName& name) const override;

 private:
  std::map<PrincipalName, crypto::VerifyKey> keys_;
};

/// Outcome of a successful chain verification.
struct VerifiedProxy {
  /// Root grantor — the principal whose rights (as limited by the
  /// restrictions) become available.
  PrincipalName grantor;
  /// Union of every certificate's restrictions: the effective set.
  RestrictionSet effective_restrictions;
  /// Earliest expiry along the chain.
  util::TimePoint expires_at = 0;
  ProxyMode mode = ProxyMode::kPublicKey;
  /// Final proxy verification material (what a possession proof is checked
  /// against).
  crypto::VerifyKey pk_proxy_key;       ///< pk mode
  crypto::SymmetricKey sym_proxy_key;   ///< sym mode (unwrapped by us)
  /// Intermediates that identity-signed cascade links, in chain order — the
  /// audit trail of delegate-style cascading (§3.4).  These principals have
  /// vouched for the chain and count as satisfied grantees.
  std::vector<PrincipalName> audit_trail;
  /// Chain length (delegation hops).
  std::size_t chain_length = 0;
};

class ProxyVerifier {
 public:
  struct Config {
    /// This server's principal name.
    PrincipalName server_name;
    /// Long-term Kerberos key (required to accept symmetric chains).
    std::optional<crypto::SymmetricKey> server_key;
    /// Identity key resolver (required to accept public-key chains).
    const KeyResolver* resolver = nullptr;
    /// Name-server root key for verifying pk delegate identity certs.
    std::optional<crypto::VerifyKey> pk_root;
    /// Replay cache for delegate Kerberos authenticators; nullptr disables.
    kdc::ReplayCache* replay_cache = nullptr;
    /// Freshness window for possession proofs and authenticators.
    util::Duration max_skew = 2 * util::kMinute;
    /// Verified-chain cache: byte-identical chains skip signature, MAC and
    /// ticket re-verification.  Time validity, possession proofs, replay
    /// and accept-once checks, and restriction evaluation always re-run
    /// per presentation.  0 disables the cache (A/B in tests and benches).
    std::size_t verify_cache_capacity = 1024;
    /// Bounded reuse window for cached verifications.  With a
    /// RevocationRegistry attached this is defence in depth only —
    /// revocations invalidate warm entries immediately; the TTL caps reuse
    /// against events no registry ever hears about.
    util::Duration verify_cache_ttl = 5 * util::kMinute;
    /// Shared revocation registry (§3.1: grants are "revocable via the
    /// grantor's rights").  When set, (a) full verification rejects links
    /// whose grant has been revoked (kRevoked) and (b) warm cache entries
    /// for revoked-against grantors fall through to full verification on
    /// the very next presentation.  nullptr disables revocation checks.
    const RevocationRegistry* revocation = nullptr;
  };

  explicit ProxyVerifier(Config config);
  ~ProxyVerifier();
  ProxyVerifier(ProxyVerifier&&) noexcept;
  ProxyVerifier& operator=(ProxyVerifier&&) noexcept;

  /// Validates the chain and recovers the final proxy key.  Does NOT
  /// evaluate restrictions against a request (the caller does that with
  /// the returned effective set) and does NOT check possession.
  [[nodiscard]] util::Result<VerifiedProxy> verify_chain(
      const ProxyChain& chain, util::TimePoint now) const;

  /// Checks a possession proof against a verified chain.  On success
  /// returns the identities the presenter proved: empty for bearer proofs,
  /// the authenticated principal for delegate proofs.  The caller feeds
  /// these (plus the audit trail) into RequestContext::effective_identities.
  [[nodiscard]] util::Result<std::vector<PrincipalName>> verify_possession(
      const VerifiedProxy& verified, const PossessionProof& proof,
      util::BytesView challenge, util::BytesView request_digest,
      util::TimePoint now) const;

  /// Checks a standalone personal-authentication proof (no proxy involved —
  /// "local users might appear directly in the access-control-list",
  /// §3.5).  Only delegate-kind proofs qualify.  Returns the authenticated
  /// identities.
  [[nodiscard]] util::Result<std::vector<PrincipalName>> verify_identity(
      const PossessionProof& proof, util::BytesView challenge,
      util::BytesView request_digest, util::TimePoint now) const;

  [[nodiscard]] const Config& config() const { return config_; }

  /// Counters of the verified-chain cache; all-zero when disabled.
  [[nodiscard]] ChainCacheStats cache_stats() const;

  /// Drops every cached verification.  A blunt instrument kept for tests
  /// and operational resets; revocation no longer needs it — a registry
  /// event invalidates exactly the affected entries on their next lookup.
  void clear_cache();

 private:
  [[nodiscard]] util::Result<VerifiedProxy> verify_chain_uncached_(
      const ProxyChain& chain, util::TimePoint now) const;
  [[nodiscard]] util::Result<VerifiedProxy> verify_sym_chain_(
      const ProxyChain& chain, util::TimePoint now) const;
  [[nodiscard]] util::Result<VerifiedProxy> verify_pk_chain_(
      const ProxyChain& chain, util::TimePoint now) const;

  Config config_;
  /// Internally synchronized; mutable because a cache probe does not change
  /// the observable verification outcome.
  mutable std::unique_ptr<ChainVerifyCache> cache_;
};

}  // namespace rproxy::core
