// A set of restrictions and its evaluation semantics.
//
// Additivity is the core invariant: restrictions accumulate as credentials
// are derived, and evaluation is a conjunction — EVERY restriction in the
// set must pass.  Merging two sets therefore yields a set at most as
// permissive as either input; there is no API to remove a restriction.
#pragma once

#include <string>

#include "core/request.hpp"
#include "core/restriction.hpp"
#include "util/status.hpp"

namespace rproxy::core {

class RestrictionSet {
 public:
  RestrictionSet() = default;
  RestrictionSet(std::initializer_list<Restriction> rs)
      : restrictions_(rs) {}

  /// Adds one restriction.  Restrictions can only be added, never removed.
  void add(Restriction r) { restrictions_.push_back(std::move(r)); }

  /// A new set containing this set's restrictions followed by `other`'s.
  [[nodiscard]] RestrictionSet merged(const RestrictionSet& other) const;

  [[nodiscard]] const std::vector<Restriction>& items() const {
    return restrictions_;
  }
  [[nodiscard]] bool empty() const { return restrictions_.empty(); }
  [[nodiscard]] std::size_t size() const { return restrictions_.size(); }

  /// Conjunction: OK iff every restriction permits the request.  The first
  /// failing restriction's diagnosis is returned.
  [[nodiscard]] util::Status evaluate(RequestContext& ctx) const;

  /// True if the set contains a grantee restriction — i.e. this credential
  /// is a delegate proxy; absent means bearer proxy (§7.1).
  [[nodiscard]] bool is_delegate() const;

  /// The first restriction of type T, or nullptr.
  template <typename T>
  [[nodiscard]] const T* find() const {
    for (const Restriction& r : restrictions_) {
      if (const T* v = r.get_if<T>()) return v;
    }
    return nullptr;
  }

  void encode(wire::Encoder& enc) const;
  static RestrictionSet decode(wire::Decoder& dec);

  /// Maps to/from Kerberos authorization-data subfields: one opaque blob
  /// per restriction (§6.2).  Decoding fails closed on any malformed blob.
  [[nodiscard]] std::vector<util::Bytes> to_blobs() const;
  [[nodiscard]] static util::Result<RestrictionSet> from_blobs(
      const std::vector<util::Bytes>& blobs);

  friend bool operator==(const RestrictionSet&,
                         const RestrictionSet&) = default;

 private:
  std::vector<Restriction> restrictions_;
};

/// Evaluates a single restriction against a context.  Exposed for tests and
/// for the authorization server's template handling.
[[nodiscard]] util::Status evaluate_restriction(const Restriction& r,
                                                RequestContext& ctx);

}  // namespace rproxy::core
