#include "core/proxy_certificate.hpp"

namespace rproxy::core {

namespace {
void encode_signed_fields(wire::Encoder& enc, const ProxyCertificate& cert) {
  enc.str(cert.grantor);
  enc.u64(cert.serial);
  enc.i64(cert.issued_at);
  enc.i64(cert.expires_at);
  cert.restrictions.encode(enc);
  enc.u8(static_cast<std::uint8_t>(cert.mode));
  enc.bytes(cert.proxy_key_material);
  enc.u8(static_cast<std::uint8_t>(cert.signer));
}
}  // namespace

void ProxyCertificate::encode(wire::Encoder& enc) const {
  encode_signed_fields(enc, *this);
  enc.bytes(signature);
}

ProxyCertificate ProxyCertificate::decode(wire::Decoder& dec) {
  ProxyCertificate cert;
  cert.grantor = dec.str();
  cert.serial = dec.u64();
  cert.issued_at = dec.i64();
  cert.expires_at = dec.i64();
  cert.restrictions = RestrictionSet::decode(dec);
  cert.mode = static_cast<ProxyMode>(dec.u8());
  cert.proxy_key_material = dec.bytes();
  cert.signer = static_cast<SignerKind>(dec.u8());
  cert.signature = dec.bytes();
  return cert;
}

util::Bytes ProxyCertificate::signed_bytes() const {
  wire::Encoder enc;
  encode_signed_fields(enc, *this);
  return enc.take();
}

void ProxyChain::encode(wire::Encoder& enc) const {
  enc.u8(static_cast<std::uint8_t>(mode));
  enc.boolean(krb_root.has_value());
  if (krb_root.has_value()) krb_root->encode(enc);
  enc.seq(certs, [](wire::Encoder& e, const ProxyCertificate& c) {
    c.encode(e);
  });
}

ProxyChain ProxyChain::decode(wire::Decoder& dec) {
  ProxyChain chain;
  chain.mode = static_cast<ProxyMode>(dec.u8());
  if (dec.boolean()) {
    chain.krb_root = kdc::ApRequest::decode(dec);
  }
  chain.certs = dec.seq<ProxyCertificate>(
      [](wire::Decoder& d) { return ProxyCertificate::decode(d); });
  return chain;
}

std::size_t ProxyChain::length() const {
  return certs.size() + (krb_root.has_value() ? 1 : 0);
}

}  // namespace rproxy::core
