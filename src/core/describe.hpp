// Human-readable rendering of credentials.
//
// Restrictions are the policy language of this system; operators debugging
// an authorization failure need to SEE what a chain carries.  These
// renderers are used by the examples, the audit tooling, and tests.
#pragma once

#include <string>

#include "core/proxy_certificate.hpp"

namespace rproxy::core {

/// "grantee{alice,bob;2}", "quota{usd<=100}", ...
[[nodiscard]] std::string describe(const Restriction& restriction);

/// "[grantee{...}, quota{...}]"
[[nodiscard]] std::string describe(const RestrictionSet& set);

/// One line: grantor, serial, validity, signer kind, restriction summary.
[[nodiscard]] std::string describe(const ProxyCertificate& cert);

/// Multi-line chain rendering, root first.
[[nodiscard]] std::string describe(const ProxyChain& chain);

}  // namespace rproxy::core
