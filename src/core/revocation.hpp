// Revocation registry: making §3.1's "revocable via the grantor's rights"
// actually take effect on the NEXT presentation, not the next cache TTL.
//
// Three revocation events exist in the system — ACL principal removal,
// name-server unregistration, and KDC key rotation — and each changes
// ground truth that a warm ChainVerifyCache entry has already baked in.
// The registry closes that loop with two mechanisms:
//
//  * Per-grantor EPOCHS.  Every revocation event bumps a monotonic counter
//    for the affected principal.  Cache entries record the epoch of every
//    grantor on their chain (root grantor + named intermediates) at insert
//    time; a lookup whose recorded epochs are stale falls through to full
//    verification, which re-derives ground truth (targeted invalidation —
//    other grantors' warm entries are untouched).  A process-wide version
//    counter makes the no-revocation warm path a single atomic load.
//
//  * Per-grantor REVOCATION RECORDS, consulted by full verification:
//     - a cutoff instant ("all grants this grantor issued before T are
//       dead") — what KDC key rotation needs, because a symmetric proxy
//       ticket still opens fine under the server's key after the grantor's
//       KDC key rotates, so no cryptographic check would otherwise fail;
//     - a certificate revocation list (by certificate digest) for killing
//       one delegation without killing everything the grantor ever issued.
//
// Cascaded kill falls out of chain-walk order: verification rejects at the
// first revoked link, so revoking link i kills every presentation whose
// chain CONTAINS link i (all deeper derivations), while prefix chains
// (links < i) never mention it and survive.
//
// The registry is shared by every party that observes revocation events
// (name server, KDC principal database, ACL holders, proxy issuers) and
// every verifier.  Thread-safe; mutations are serialized, the fast path is
// lock-free.  State is monotonic (epochs only grow, cutoffs only advance,
// the list only accumulates), so merging states — snapshot restore, journal
// replay — is idempotent and order-insensitive.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_set>

#include "crypto/digest.hpp"
#include "util/clock.hpp"
#include "util/names.hpp"
#include "util/status.hpp"
#include "wire/decoder.hpp"
#include "wire/encoder.hpp"

namespace rproxy::core {

/// Identifies one certificate (or Kerberos proxy root) for targeted
/// revocation: the SHA-256 of its full wire encoding, signature included.
using RevocationId = crypto::Digest;

/// Counters for observability and the T10 bench.
struct RevocationStats {
  std::uint64_t epoch_bumps = 0;      ///< epoch increments (all causes)
  std::uint64_t grantor_cuts = 0;     ///< revoke_grants_before calls
  std::uint64_t cert_revocations = 0; ///< certificates added to the list
  std::uint64_t link_checks = 0;      ///< per-link checks by full verifies
  std::uint64_t link_rejections = 0;  ///< checks that returned kRevoked
  std::size_t tracked_grantors = 0;   ///< grantors with any record
  std::size_t listed_certs = 0;       ///< certificates on the list
};

class RevocationRegistry {
 public:
  /// One state change, as observed by listeners and carried in the
  /// persistence format.  Values are ABSOLUTE (the grantor's epoch and
  /// cutoff after the event), so applying events is idempotent and
  /// replay-safe.
  struct Event {
    PrincipalName grantor;
    std::uint64_t epoch = 0;
    util::TimePoint cut_before = 0;
    std::optional<RevocationId> cert;

    void encode(wire::Encoder& enc) const;
    static Event decode(wire::Decoder& dec);
  };

  RevocationRegistry() = default;
  RevocationRegistry(const RevocationRegistry&) = delete;
  RevocationRegistry& operator=(const RevocationRegistry&) = delete;

  // ---- Revocation events (writers) ----------------------------------

  /// Records that ground truth about `grantor` changed (key replaced,
  /// unregistered, ACL entry dropped): warm cache entries involving the
  /// grantor must fall through to full verification.  Returns the new
  /// epoch.
  std::uint64_t bump(const PrincipalName& grantor);

  /// Kills every grant `grantor` issued before `cutoff` (typically now):
  /// full verification rejects any chain link granted by `grantor` whose
  /// issuance instant precedes the cutoff, with kRevoked.  Grants issued
  /// after the cutoff (e.g. under a rotated key) are unaffected.  Implies
  /// a bump.
  void revoke_grants_before(const PrincipalName& grantor,
                            util::TimePoint cutoff);

  /// Revokes one certificate issued by `grantor` (identified by root
  /// grantor so the right warm entries go stale; the certificate itself
  /// may be any link of a chain rooted at that grantor).  Implies a bump.
  void revoke_cert(const PrincipalName& grantor, const RevocationId& id);

  // ---- Verification-side checks (readers) ---------------------------

  /// Process-wide mutation counter.  A cache entry whose recorded version
  /// equals version() cannot be stale — the single-atomic-load fast path.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// The grantor's current epoch (0 when no event ever touched it).
  [[nodiscard]] std::uint64_t epoch_of(const PrincipalName& grantor) const;

  /// Atomically snapshots {version, epoch-per-grantor} for a cache entry.
  [[nodiscard]] std::uint64_t snapshot_epochs(
      const std::vector<PrincipalName>& grantors,
      std::vector<std::pair<PrincipalName, std::uint64_t>>& out) const;

  /// True when every recorded (grantor, epoch) pair is still current.
  /// One lock acquisition for the whole vector.
  [[nodiscard]] bool epochs_current(
      const std::vector<std::pair<PrincipalName, std::uint64_t>>& recorded)
      const;

  /// True when at least one certificate is on the revocation list — lets
  /// verifiers skip computing RevocationIds entirely in the common case.
  [[nodiscard]] bool has_cert_revocations() const {
    return listed_certs_.load(std::memory_order_acquire) > 0;
  }

  /// Per-link check run by full chain verification.  `grantor` may be
  /// empty (anonymous bearer cascade links — only the list applies);
  /// `granted_at` is the link's issuance instant; `id` is the link's
  /// RevocationId when the caller computed one (i.e. when
  /// has_cert_revocations()).  kRevoked when the link is dead.
  [[nodiscard]] util::Status check_link(
      const PrincipalName& grantor, util::TimePoint granted_at,
      const std::optional<RevocationId>& id) const;

  // ---- Persistence ---------------------------------------------------

  /// Serializes the full registry state (epochs, cutoffs, list).
  void encode_state(wire::Encoder& enc) const;

  /// Merges a serialized state into this registry: epochs and cutoffs
  /// take the max, list entries accumulate.  Idempotent.
  [[nodiscard]] util::Status merge_state(wire::Decoder& dec);

  /// Applies one event (journal replay).  Idempotent.
  void apply(const Event& event);

  /// Registers a mutation observer (e.g. a server journaling revocations
  /// for crash durability).  Invoked outside the registry lock, after the
  /// mutation is visible.  Returns a token for remove_listener.
  std::uint64_t add_listener(std::function<void(const Event&)> listener);
  void remove_listener(std::uint64_t token);

  [[nodiscard]] RevocationStats stats() const;

 private:
  struct Record {
    std::uint64_t epoch = 0;
    /// Grants issued strictly before this instant are dead.
    util::TimePoint cut_before = 0;
    /// This grantor's revoked certificates (mirrored in revoked_certs_).
    std::set<RevocationId> certs;
  };
  struct IdHash {
    std::size_t operator()(const RevocationId& d) const {
      // SHA-256 output is uniform; the first eight octets are a fine hash.
      std::size_t h = 0;
      for (int i = 0; i < 8; ++i) h = (h << 8) | d[static_cast<size_t>(i)];
      return h;
    }
  };

  /// Applies a mutation under the lock, publishes the version bump, then
  /// notifies listeners outside the lock.
  void mutate_(const PrincipalName& grantor,
               const std::function<void(Record&)>& fn,
               const std::optional<RevocationId>& cert);

  mutable std::mutex mutex_;
  std::map<PrincipalName, Record> records_;
  /// Flat membership set so a link check is one O(1) probe regardless of
  /// which grantor listed the certificate.
  std::unordered_set<RevocationId, IdHash> revoked_certs_;
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> listed_certs_{0};
  std::uint64_t epoch_bumps_ = 0;
  std::uint64_t grantor_cuts_ = 0;
  std::uint64_t cert_revocations_ = 0;
  mutable std::atomic<std::uint64_t> link_checks_{0};
  mutable std::atomic<std::uint64_t> link_rejections_{0};
  std::map<std::uint64_t, std::function<void(const Event&)>> listeners_;
  std::uint64_t next_listener_token_ = 1;
};

}  // namespace rproxy::core
