#include "core/challenge_registry.hpp"

#include "crypto/random.hpp"

namespace rproxy::core {

void ChallengeRegistry::purge_locked_(util::TimePoint now) {
  // Amortized cleanup, same idiom as ReplayCache: a full sweep at most
  // once per second keeps abandoned challenges from accumulating without
  // making every call O(outstanding) under the lock — a per-call sweep
  // turns the hot challenge path quadratic when most challenges go
  // unconsumed (e.g. scanners, retries, load tests).  Run from both
  // issue() and take(): a server that stops issuing (quiet period, or a
  // client population that only ever retries presentations) must still
  // shed its abandoned challenges.
  if (now - last_purge_ < util::kSecond) return;
  for (auto it = challenges_.begin(); it != challenges_.end();) {
    it = it->second.second < now ? challenges_.erase(it) : std::next(it);
  }
  last_purge_ = now;
}

ChallengeRegistry::Challenge ChallengeRegistry::issue(util::TimePoint now) {
  std::lock_guard lock(mutex_);
  purge_locked_(now);
  Challenge c;
  c.id = crypto::random_u64();
  c.nonce = crypto::random_bytes(32);
  challenges_[c.id] = {c.nonce, now + ttl_};
  return c;
}

util::Result<util::Bytes> ChallengeRegistry::take(std::uint64_t id,
                                                  util::TimePoint now) {
  std::lock_guard lock(mutex_);
  // Look up BEFORE sweeping so an expired-but-not-yet-purged challenge
  // still reports kExpired rather than "unknown".
  auto it = challenges_.find(id);
  if (it == challenges_.end()) {
    purge_locked_(now);
    return util::fail(util::ErrorCode::kProtocolError,
                      "unknown or already-used challenge");
  }
  if (it->second.second < now) {
    challenges_.erase(it);
    purge_locked_(now);
    return util::fail(util::ErrorCode::kExpired, "challenge expired");
  }
  util::Bytes nonce = std::move(it->second.first);
  challenges_.erase(it);
  purge_locked_(now);
  return nonce;
}

std::size_t ChallengeRegistry::outstanding() const {
  std::lock_guard lock(mutex_);
  return challenges_.size();
}

}  // namespace rproxy::core
