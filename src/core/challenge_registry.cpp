#include "core/challenge_registry.hpp"

#include "crypto/random.hpp"

namespace rproxy::core {

ChallengeRegistry::Challenge ChallengeRegistry::issue(util::TimePoint now) {
  std::lock_guard lock(mutex_);
  // Amortized cleanup, same idiom as ReplayCache: a full sweep at most
  // once per second keeps abandoned challenges from accumulating without
  // making every issue() O(outstanding) under the lock — a per-call sweep
  // turns the hot challenge path quadratic when most challenges go
  // unconsumed (e.g. scanners, retries, load tests).
  if (now - last_purge_ >= util::kSecond) {
    for (auto it = challenges_.begin(); it != challenges_.end();) {
      it = it->second.second < now ? challenges_.erase(it) : std::next(it);
    }
    last_purge_ = now;
  }
  Challenge c;
  c.id = crypto::random_u64();
  c.nonce = crypto::random_bytes(32);
  challenges_[c.id] = {c.nonce, now + ttl_};
  return c;
}

util::Result<util::Bytes> ChallengeRegistry::take(std::uint64_t id,
                                                  util::TimePoint now) {
  std::lock_guard lock(mutex_);
  auto it = challenges_.find(id);
  if (it == challenges_.end()) {
    return util::fail(util::ErrorCode::kProtocolError,
                      "unknown or already-used challenge");
  }
  if (it->second.second < now) {
    challenges_.erase(it);
    return util::fail(util::ErrorCode::kExpired, "challenge expired");
  }
  util::Bytes nonce = std::move(it->second.first);
  challenges_.erase(it);
  return nonce;
}

std::size_t ChallengeRegistry::outstanding() const {
  std::lock_guard lock(mutex_);
  return challenges_.size();
}

}  // namespace rproxy::core
