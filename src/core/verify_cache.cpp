#include "core/verify_cache.hpp"

#include <algorithm>

#include "crypto/digest.hpp"

namespace rproxy::core {

ChainVerifyCache::ChainVerifyCache(std::size_t capacity, util::Duration ttl,
                                   const RevocationRegistry* revocation)
    : capacity_(capacity), ttl_(ttl), revocation_(revocation) {}

crypto::Digest ChainVerifyCache::key_of(const ProxyChain& chain) {
  wire::Encoder enc;
  chain.encode(enc);
  return crypto::sha256(enc.view());
}

std::optional<VerifiedProxy> ChainVerifyCache::lookup(
    const crypto::Digest& key, util::TimePoint now, util::Duration max_skew) {
  std::lock_guard lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses_ += 1;
    return std::nullopt;
  }
  Entry& entry = it->second;
  if (now > entry.value.expires_at || now >= entry.cached_until) {
    // Past the chain's own expiry (full verification will reproduce the
    // exact kExpired diagnosis) or past the reuse TTL (re-derive so a
    // revoked grantor key stops being honoured).  Either way the entry is
    // dead for all future `now`s.
    lru_.erase(entry.lru);
    map_.erase(it);
    expired_drops_ += 1;
    misses_ += 1;
    return std::nullopt;
  }
  if (entry.value.mode == ProxyMode::kPublicKey &&
      entry.max_issued_at > now + max_skew) {
    // The uncached path rejects future-dated links; keep the entry (it
    // becomes valid once the clock catches up) but do not serve it.
    misses_ += 1;
    return std::nullopt;
  }
  if (revocation_ != nullptr) {
    // One atomic load in the common case: nothing anywhere has been
    // revoked since this entry's epochs were last confirmed.
    const std::uint64_t version = revocation_->version();
    if (version != entry.revocation_version) {
      if (!revocation_->epochs_current(entry.grantor_epochs)) {
        // A grantor on THIS chain was revoked against: drop the entry and
        // fall through to full verification, which re-derives ground
        // truth.  Entries for untouched grantors keep their warmth.
        lru_.erase(entry.lru);
        map_.erase(it);
        revocation_stale_drops_ += 1;
        misses_ += 1;
        return std::nullopt;
      }
      // Revocations elsewhere don't concern this chain; remember that so
      // the next lookup is back to the single atomic load.
      entry.revocation_version = version;
    }
  }
  lru_.splice(lru_.begin(), lru_, entry.lru);
  hits_ += 1;
  return entry.value;
}

void ChainVerifyCache::insert(const crypto::Digest& key,
                              const ProxyChain& chain,
                              const VerifiedProxy& verified,
                              util::TimePoint now) {
  if (capacity_ == 0) return;
  util::TimePoint max_issued_at = 0;
  for (const ProxyCertificate& cert : chain.certs) {
    max_issued_at = std::max(max_issued_at, cert.issued_at);
  }

  std::lock_guard lock(mutex_);
  auto [it, inserted] = map_.try_emplace(key);
  if (inserted) {
    lru_.push_front(key);
    it->second.lru = lru_.begin();
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  it->second.value = verified;
  it->second.max_issued_at = max_issued_at;
  it->second.cached_until = now + ttl_;
  if (revocation_ != nullptr) {
    // Every NAMED principal whose standing the verification relied on: the
    // root grantor plus intermediate identities.  Anonymous bearer links
    // have no name to track; revoking one goes through the root grantor's
    // certificate list, which bumps the root's epoch.
    std::vector<PrincipalName> grantors;
    grantors.push_back(verified.grantor);
    for (const PrincipalName& name : verified.audit_trail) {
      if (name != verified.grantor) grantors.push_back(name);
    }
    it->second.revocation_version =
        revocation_->snapshot_epochs(grantors, it->second.grantor_epochs);
  }
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    evictions_ += 1;
  }
}

void ChainVerifyCache::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  lru_.clear();
}

ChainCacheStats ChainVerifyCache::stats() const {
  std::lock_guard lock(mutex_);
  ChainCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.expired_drops = expired_drops_;
  s.revocation_stale_drops = revocation_stale_drops_;
  s.size = map_.size();
  return s;
}

}  // namespace rproxy::core
