#include "core/accept_once_cache.hpp"

#include "wire/encoder.hpp"

namespace rproxy::core {

util::Bytes AcceptOnceCache::key_(const PrincipalName& grantor,
                                  std::uint64_t identifier) {
  wire::Encoder enc;
  enc.str(grantor);
  enc.u64(identifier);
  return enc.take();
}

util::Status AcceptOnceCache::check_and_insert(const PrincipalName& grantor,
                                               std::uint64_t identifier,
                                               util::TimePoint expires_at,
                                               util::TimePoint now) {
  util::Status st =
      cache_.check_and_insert(key_(grantor, identifier), expires_at, now);
  if (st.is_ok()) {
    std::lock_guard lock(seen_mutex_);
    seen_[{grantor, identifier}] = expires_at;
  }
  return st;
}

bool AcceptOnceCache::seen(const PrincipalName& grantor,
                           std::uint64_t identifier,
                           util::TimePoint now) const {
  std::lock_guard lock(seen_mutex_);
  auto it = seen_.find({grantor, identifier});
  return it != seen_.end() && it->second >= now;
}

}  // namespace rproxy::core
