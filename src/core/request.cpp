#include "core/request.hpp"

#include "crypto/digest.hpp"
#include "wire/encoder.hpp"

namespace rproxy::core {

util::Bytes request_digest(
    const Operation& operation, const ObjectName& object,
    const std::map<std::string, std::uint64_t>& amounts) {
  wire::Encoder enc;
  enc.str("request-digest-v1");
  enc.str(operation);
  enc.str(object);
  enc.u32(static_cast<std::uint32_t>(amounts.size()));
  for (const auto& [currency, amount] : amounts) {  // map: sorted, stable
    enc.str(currency);
    enc.u64(amount);
  }
  return crypto::sha256_bytes(enc.view());
}

}  // namespace rproxy::core
