// Verified-chain cache: the check-once/reuse-many fast path.
//
// Chain verification is a pure function of the presented octets and the
// verifier's long-term configuration: signatures, cascade MACs, ticket
// decryption and the structural rules depend on nothing else.  Re-verifying
// a byte-identical chain therefore re-derives a value already in hand.
//
// What the cache may elide is exactly that pure work, nothing else.  All
// per-presentation checks stay OUTSIDE and run on every request: possession
// proofs, challenge single-use, replay caches, accept-once identifiers, and
// restriction evaluation against the live request.
//
// Entries stay honest about expiry and revocation:
//  * a hit past the chain's own earliest expiry is dropped, and the caller
//    falls through to full verification, which reports the same kExpired
//    diagnosis the uncached path always gave;
//  * a bounded reuse TTL caps how long any outcome may be served even if
//    no revocation signal ever arrives (defence in depth, not the primary
//    revocation mechanism);
//  * when a RevocationRegistry is attached, every entry records the
//    revocation epoch of each grantor on its chain at insert time.  A
//    lookup first compares the registry's process-wide version against the
//    version recorded on the entry — one atomic load when nothing has been
//    revoked anywhere since — and re-checks the per-grantor epochs when it
//    differs.  A stale entry is dropped (counted in
//    revocation_stale_drops) and the caller falls through to full
//    verification, so a revocation takes effect on the very NEXT
//    presentation, not the next TTL boundary; entries for untouched
//    grantors stay warm.
#pragma once

#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/revocation.hpp"
#include "core/verifier.hpp"

namespace rproxy::core {

class ChainVerifyCache {
 public:
  /// `capacity` bounds the number of cached chains (LRU eviction);
  /// `ttl` bounds how long one verification outcome may be reused;
  /// `revocation` (optional) makes warm entries observe revocation events
  /// immediately instead of waiting out the TTL.
  ChainVerifyCache(std::size_t capacity, util::Duration ttl,
                   const RevocationRegistry* revocation = nullptr);

  /// Cache key: SHA-256 over the chain's deterministic wire encoding —
  /// mode, the Kerberos root (ticket + sealed authenticator) when present,
  /// and every link including its signature.  One flipped byte anywhere in
  /// the presented chain yields a different key.
  [[nodiscard]] static crypto::Digest key_of(const ProxyChain& chain);

  /// Returns the cached verification outcome, or nullopt when the caller
  /// must verify in full: unknown key, entry past the chain expiry or the
  /// reuse TTL (dropped), or a pk link dated further in the future than
  /// `max_skew` allows at `now` (kept; it may become valid later).
  [[nodiscard]] std::optional<VerifiedProxy> lookup(const crypto::Digest& key,
                                                    util::TimePoint now,
                                                    util::Duration max_skew);

  /// Remembers a successful verification of `chain`.
  void insert(const crypto::Digest& key, const ProxyChain& chain,
              const VerifiedProxy& verified, util::TimePoint now);

  void clear();

  [[nodiscard]] ChainCacheStats stats() const;

 private:
  struct DigestHash {
    std::size_t operator()(const crypto::Digest& d) const {
      // SHA-256 output is uniform; the first eight octets are a fine hash.
      std::size_t h = 0;
      for (int i = 0; i < 8; ++i) h = (h << 8) | d[static_cast<size_t>(i)];
      return h;
    }
  };
  struct Entry {
    VerifiedProxy value;
    /// Latest issuance instant along the chain — re-checked against
    /// now + max_skew on every pk-mode hit, mirroring the uncached
    /// issued-in-the-future rejection.
    util::TimePoint max_issued_at = 0;
    /// Insertion time + ttl; the chain's own expiry is checked separately
    /// against VerifiedProxy::expires_at so the boundary matches the
    /// uncached path exactly.
    util::TimePoint cached_until = 0;
    /// Revocation epoch of every grantor on the chain (root grantor plus
    /// named intermediates) as of insert time, and the registry version
    /// current when they were last confirmed.  A lookup whose version
    /// matches the registry skips the epoch walk entirely.
    std::vector<std::pair<PrincipalName, std::uint64_t>> grantor_epochs;
    std::uint64_t revocation_version = 0;
    std::list<crypto::Digest>::iterator lru;
  };

  std::size_t capacity_;
  util::Duration ttl_;
  const RevocationRegistry* revocation_;
  mutable std::mutex mutex_;
  std::list<crypto::Digest> lru_;  ///< front = most recently used
  std::unordered_map<crypto::Digest, Entry, DigestHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expired_drops_ = 0;
  std::uint64_t revocation_stale_drops_ = 0;
};

}  // namespace rproxy::core
