#include "core/cascade.hpp"

#include <algorithm>

#include "crypto/random.hpp"

namespace rproxy::core {

namespace {

/// Clamp a requested lifetime into the parent's remaining validity.
util::TimePoint clamped_expiry(const Proxy& parent, util::TimePoint now,
                               util::Duration lifetime) {
  const util::TimePoint requested = now + std::max<util::Duration>(lifetime, 0);
  return parent.expires_at > 0 ? std::min(requested, parent.expires_at)
                               : requested;
}

ProxyCertificate base_link(const Proxy& parent, RestrictionSet additional,
                           util::TimePoint now, util::Duration lifetime) {
  ProxyCertificate cert;
  cert.serial = crypto::random_u64();
  cert.issued_at = now;
  cert.expires_at = clamped_expiry(parent, now, lifetime);
  cert.restrictions = std::move(additional);
  cert.mode = parent.chain.mode;
  return cert;
}

}  // namespace

util::Result<Proxy> extend_bearer(const Proxy& parent,
                                  RestrictionSet additional,
                                  util::TimePoint now,
                                  util::Duration lifetime) {
  if (parent.secret.empty()) {
    return util::fail(util::ErrorCode::kInternal,
                      "parent proxy carries no proxy key");
  }

  ProxyCertificate cert = base_link(parent, std::move(additional), now,
                                    lifetime);
  cert.signer = SignerKind::kParentProxyKey;

  Proxy child;
  child.chain = parent.chain;
  child.grantor = parent.grantor;
  child.expires_at = cert.expires_at;

  if (parent.chain.mode == ProxyMode::kPublicKey) {
    const crypto::SigningKeyPair new_key = crypto::SigningKeyPair::generate();
    cert.proxy_key_material = new_key.public_key().bytes();
    const crypto::SigningKeyPair parent_key =
        crypto::SigningKeyPair::from_private_bytes(parent.secret);
    cert.signature = crypto::sign(parent_key, cert.signed_bytes());
    child.secret = new_key.private_bytes();
  } else {
    if (parent.secret.size() != crypto::kSymmetricKeySize) {
      return util::fail(util::ErrorCode::kInternal,
                        "symmetric parent proxy key has wrong size");
    }
    const crypto::SymmetricKey parent_key =
        crypto::SymmetricKey::from_bytes(parent.secret);
    const crypto::SymmetricKey new_key = crypto::SymmetricKey::generate();
    // Seal the next proxy key under the previous one so the end-server can
    // unwrap the chain; then MAC the whole link with the previous key.
    cert.proxy_key_material = crypto::aead_seal(
        parent_key.derive_subkey(kCascadeSealPurpose), new_key.view());
    cert.signature = crypto::hmac_sha256(
        parent_key.derive_subkey(kCascadeMacPurpose), cert.signed_bytes());
    child.secret = new_key.bytes();
  }

  child.claimed_restrictions =
      parent.claimed_restrictions.merged(cert.restrictions);
  child.chain.certs.push_back(std::move(cert));
  return child;
}

util::Result<Proxy> extend_delegate(const Proxy& parent,
                                    const PrincipalName& intermediate,
                                    const crypto::SigningKeyPair& intermediate_key,
                                    RestrictionSet additional,
                                    util::TimePoint now,
                                    util::Duration lifetime) {
  if (parent.chain.mode != ProxyMode::kPublicKey) {
    return util::fail(
        util::ErrorCode::kProtocolError,
        "delegate-style cascading requires the public-key realization; "
        "symmetric chains cascade bearer-style (§6.3 discusses the "
        "conventional-crypto limitation)");
  }

  ProxyCertificate cert = base_link(parent, std::move(additional), now,
                                    lifetime);
  cert.grantor = intermediate;
  cert.signer = SignerKind::kIntermediateIdentity;

  const crypto::SigningKeyPair new_key = crypto::SigningKeyPair::generate();
  cert.proxy_key_material = new_key.public_key().bytes();
  cert.signature = crypto::sign(intermediate_key, cert.signed_bytes());

  Proxy child;
  child.chain = parent.chain;
  child.grantor = parent.grantor;
  child.expires_at = cert.expires_at;
  child.secret = new_key.private_bytes();
  child.claimed_restrictions =
      parent.claimed_restrictions.merged(cert.restrictions);
  child.chain.certs.push_back(std::move(cert));
  return child;
}

}  // namespace rproxy::core
