// RevocationId derivation for the two chain-link shapes.
//
// Kept separate from revocation.hpp so the registry itself stays free of
// proxy-structure dependencies (it is linked below the kdc/pki layers,
// which observe revocation events but never touch chains).
#pragma once

#include "core/proxy_certificate.hpp"
#include "core/revocation.hpp"

namespace rproxy::core {

/// Identifies one certificate link: SHA-256 over its full wire encoding
/// (signature included, so a re-signed certificate is a different grant).
[[nodiscard]] inline RevocationId revocation_id_of(
    const ProxyCertificate& cert) {
  wire::Encoder enc;
  cert.encode(enc);
  return crypto::sha256(enc.view());
}

/// Identifies a symmetric chain's Kerberos root (ticket + sealed
/// authenticator — the root "certificate" of §6.2).
[[nodiscard]] inline RevocationId revocation_id_of(
    const kdc::ApRequest& krb_root) {
  wire::Encoder enc;
  krb_root.encode(enc);
  return crypto::sha256(enc.view());
}

/// The id of a chain's ROOT grant — what an issuer records at mint time so
/// it can later revoke that specific grant.
[[nodiscard]] inline std::optional<RevocationId> revocation_id_of_root(
    const ProxyChain& chain) {
  if (chain.krb_root.has_value()) return revocation_id_of(*chain.krb_root);
  if (!chain.certs.empty()) return revocation_id_of(chain.certs.front());
  return std::nullopt;
}

}  // namespace rproxy::core
