#include "core/proxy.hpp"

#include "crypto/random.hpp"

namespace rproxy::core {

Proxy grant_pk_proxy(const PrincipalName& grantor,
                     const crypto::SigningKeyPair& grantor_key,
                     RestrictionSet restrictions, util::TimePoint now,
                     util::Duration lifetime) {
  const crypto::SigningKeyPair proxy_key = crypto::SigningKeyPair::generate();

  ProxyCertificate cert;
  cert.grantor = grantor;
  cert.serial = crypto::random_u64();
  cert.issued_at = now;
  cert.expires_at = now + lifetime;
  cert.restrictions = std::move(restrictions);
  cert.mode = ProxyMode::kPublicKey;
  cert.proxy_key_material = proxy_key.public_key().bytes();
  cert.signer = SignerKind::kGrantorIdentity;
  cert.signature = crypto::sign(grantor_key, cert.signed_bytes());

  Proxy proxy;
  proxy.chain.mode = ProxyMode::kPublicKey;
  proxy.chain.certs.push_back(cert);
  proxy.secret = proxy_key.private_bytes();
  proxy.grantor = grantor;
  proxy.claimed_restrictions = cert.restrictions;
  proxy.expires_at = cert.expires_at;
  return proxy;
}

Proxy grant_krb_proxy(const kdc::KdcClient& grantor_client,
                      const kdc::Credentials& creds,
                      RestrictionSet restrictions, util::TimePoint now) {
  (void)now;  // the authenticator timestamp comes from the client's clock
  const crypto::SymmetricKey proxy_key = crypto::SymmetricKey::generate();

  kdc::ApRequest ap = grantor_client.make_ap_request(
      creds, proxy_key.bytes(), restrictions.to_blobs());

  Proxy proxy;
  proxy.chain.mode = ProxyMode::kSymmetric;
  proxy.chain.krb_root = std::move(ap);
  proxy.secret = proxy_key.bytes();
  proxy.grantor = grantor_client.self();
  proxy.claimed_restrictions = std::move(restrictions);
  proxy.expires_at = creds.expires_at;
  return proxy;
}

}  // namespace rproxy::core
