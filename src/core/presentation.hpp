// Presentation protocol (§2): proving proper possession of a proxy.
//
// "To present a bearer proxy to an end-server, the grantee sends the
// certificate to the server and uses the proxy key to partake in an
// authentication exchange ... usually this exchange involves sending a
// signed or encrypted timestamp or server challenge."
//
// "To present a delegate proxy, the grantee sends the certificate to the
// end-server and then authenticates itself to the end-server under its own
// identity."
//
// The proof also binds a digest of the application request, so a proof
// captured in flight cannot be replayed for a different operation.
#pragma once

#include "core/proxy.hpp"
#include "pki/pk_auth.hpp"

namespace rproxy::core {

/// The possession proof accompanying a presented chain.
struct PossessionProof {
  enum class Kind : std::uint8_t {
    kBearerMac = 1,    ///< HMAC under the symmetric proxy key
    kBearerSig = 2,    ///< Ed25519 signature under the private proxy key
    kDelegateKrb = 3,  ///< personal authentication: Kerberos AP exchange
    kDelegatePk = 4,   ///< personal authentication: pk identity signature
  };

  Kind kind = Kind::kBearerMac;
  util::TimePoint timestamp = 0;
  /// Randomizer making every proof unique (timestamp-mode presentations
  /// key their replay cache on the proof, so two otherwise-identical
  /// proofs in the same instant must still differ).
  std::uint64_t nonce = 0;
  /// kBearerMac: the MAC.  kBearerSig: the signature.  kDelegateKrb: an
  /// encoded {ApRequest, transcript-MAC under the AP session key}.
  /// kDelegatePk: an encoded pki::PkAuthProof over the transcript.
  util::Bytes blob;

  void encode(wire::Encoder& enc) const;
  static PossessionProof decode(wire::Decoder& dec);
};

/// Deterministic transcript every proof covers: server challenge, server
/// name, proof timestamp + nonce, and the digest of the application
/// request.
[[nodiscard]] util::Bytes presentation_transcript(
    util::BytesView challenge, const PrincipalName& server,
    util::TimePoint timestamp, std::uint64_t nonce,
    util::BytesView request_digest);

/// Bearer proof with the proxy's own key (MAC or signature per mode).
[[nodiscard]] PossessionProof prove_bearer(const Proxy& proxy,
                                           util::BytesView challenge,
                                           const PrincipalName& server,
                                           util::TimePoint now,
                                           util::BytesView request_digest);

/// Delegate proof, Kerberos flavor: a fresh AP request for the end-server
/// under the grantee's own identity, plus a transcript MAC under the AP
/// session key (binding the authentication to this challenge and request).
/// `own_creds` are the grantee's credentials FOR THE END-SERVER.
[[nodiscard]] PossessionProof prove_delegate_krb(
    const kdc::KdcClient& grantee_client, const kdc::Credentials& own_creds,
    util::BytesView challenge, const PrincipalName& server,
    util::TimePoint now, util::BytesView request_digest);

/// Delegate proof, public-key flavor: identity signature over the
/// transcript accompanied by the grantee's identity certificate.
[[nodiscard]] PossessionProof prove_delegate_pk(
    const pki::IdentityCert& identity,
    const crypto::SigningKeyPair& identity_key, util::BytesView challenge,
    const PrincipalName& server, util::TimePoint now,
    util::BytesView request_digest);

/// A chain plus the proof of possession for it — the unit a client attaches
/// to a request ("the bearer presents it to the file server in place of, or
/// in addition to, the bearer's own credentials", §3.1).
struct PresentedCredential {
  ProxyChain chain;
  PossessionProof proof;

  void encode(wire::Encoder& enc) const;
  static PresentedCredential decode(wire::Decoder& dec);
};

/// Payload of the kDelegateKrb blob (exposed for the verifier).
struct KrbDelegateProofBlob {
  kdc::ApRequest ap;
  util::Bytes transcript_mac;

  void encode(wire::Encoder& enc) const;
  static KrbDelegateProofBlob decode(wire::Decoder& dec);
};

}  // namespace rproxy::core
