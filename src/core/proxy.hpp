// Granting restricted proxies (§2, §6).
#pragma once

#include "core/proxy_certificate.hpp"
#include "kdc/kdc_client.hpp"

namespace rproxy::core {

/// Grants a public-key restricted proxy (Fig 6): generates a fresh Ed25519
/// proxy key pair, embeds the public half in a certificate signed with the
/// grantor's identity key, and returns the private half as the proxy key.
///
/// Without an issued-for restriction a public-key proxy is "verifiable by
/// and exercisable on all servers" (§7.3) — include one unless that is
/// intended.
[[nodiscard]] Proxy grant_pk_proxy(const PrincipalName& grantor,
                                   const crypto::SigningKeyPair& grantor_key,
                                   RestrictionSet restrictions,
                                   util::TimePoint now,
                                   util::Duration lifetime);

/// Grants a conventional-crypto proxy from Kerberos credentials (§6.2):
/// "a client generates an authenticator specifying a proxy key in the
/// subkey field and specifying additional restrictions in the
/// authorization-data field.  The ticket and authenticator are treated as
/// the new proxy and provided with the new proxy key to the grantee."
///
/// The proxy is usable only at the server the credentials name (§6.3); a
/// proxy minted from TGS credentials lets the grantee obtain equally-
/// restricted tickets for further servers.
[[nodiscard]] Proxy grant_krb_proxy(const kdc::KdcClient& grantor_client,
                                    const kdc::Credentials& creds,
                                    RestrictionSet restrictions,
                                    util::TimePoint now);

}  // namespace rproxy::core
