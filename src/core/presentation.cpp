#include "core/presentation.hpp"

#include "crypto/random.hpp"

namespace rproxy::core {

void PossessionProof::encode(wire::Encoder& enc) const {
  enc.u8(static_cast<std::uint8_t>(kind));
  enc.i64(timestamp);
  enc.u64(nonce);
  enc.bytes(blob);
}

PossessionProof PossessionProof::decode(wire::Decoder& dec) {
  PossessionProof proof;
  proof.kind = static_cast<Kind>(dec.u8());
  proof.timestamp = dec.i64();
  proof.nonce = dec.u64();
  proof.blob = dec.bytes();
  return proof;
}

util::Bytes presentation_transcript(util::BytesView challenge,
                                    const PrincipalName& server,
                                    util::TimePoint timestamp,
                                    std::uint64_t nonce,
                                    util::BytesView request_digest) {
  wire::Encoder enc;
  enc.str("proxy-present-v1");
  enc.bytes(challenge);
  enc.str(server);
  enc.i64(timestamp);
  enc.u64(nonce);
  enc.bytes(request_digest);
  return enc.take();
}

PossessionProof prove_bearer(const Proxy& proxy, util::BytesView challenge,
                             const PrincipalName& server, util::TimePoint now,
                             util::BytesView request_digest) {
  PossessionProof proof;
  proof.timestamp = now;
  proof.nonce = crypto::random_u64();
  const util::Bytes transcript = presentation_transcript(
      challenge, server, now, proof.nonce, request_digest);
  if (proxy.chain.mode == ProxyMode::kPublicKey) {
    proof.kind = PossessionProof::Kind::kBearerSig;
    const crypto::SigningKeyPair key =
        crypto::SigningKeyPair::from_private_bytes(proxy.secret);
    proof.blob = crypto::sign(key, transcript);
  } else {
    proof.kind = PossessionProof::Kind::kBearerMac;
    const crypto::SymmetricKey key =
        crypto::SymmetricKey::from_bytes(proxy.secret);
    proof.blob =
        crypto::hmac_sha256(key.derive_subkey(kPresentPurpose), transcript);
  }
  return proof;
}

void PresentedCredential::encode(wire::Encoder& enc) const {
  chain.encode(enc);
  proof.encode(enc);
}

PresentedCredential PresentedCredential::decode(wire::Decoder& dec) {
  PresentedCredential cred;
  cred.chain = ProxyChain::decode(dec);
  cred.proof = PossessionProof::decode(dec);
  return cred;
}

void KrbDelegateProofBlob::encode(wire::Encoder& enc) const {
  ap.encode(enc);
  enc.bytes(transcript_mac);
}

KrbDelegateProofBlob KrbDelegateProofBlob::decode(wire::Decoder& dec) {
  KrbDelegateProofBlob blob;
  blob.ap = kdc::ApRequest::decode(dec);
  blob.transcript_mac = dec.bytes();
  return blob;
}

PossessionProof prove_delegate_krb(const kdc::KdcClient& grantee_client,
                                   const kdc::Credentials& own_creds,
                                   util::BytesView challenge,
                                   const PrincipalName& server,
                                   util::TimePoint now,
                                   util::BytesView request_digest) {
  PossessionProof proof;
  proof.kind = PossessionProof::Kind::kDelegateKrb;
  proof.timestamp = now;
  proof.nonce = crypto::random_u64();

  KrbDelegateProofBlob blob;
  blob.ap = grantee_client.make_ap_request(own_creds);
  const util::Bytes transcript = presentation_transcript(
      challenge, server, now, proof.nonce, request_digest);
  blob.transcript_mac = crypto::hmac_sha256(
      own_creds.session_key.derive_subkey(kPresentPurpose), transcript);
  proof.blob = wire::encode_to_bytes(blob);
  return proof;
}

PossessionProof prove_delegate_pk(const pki::IdentityCert& identity,
                                  const crypto::SigningKeyPair& identity_key,
                                  util::BytesView challenge,
                                  const PrincipalName& server,
                                  util::TimePoint now,
                                  util::BytesView request_digest) {
  PossessionProof proof;
  proof.kind = PossessionProof::Kind::kDelegatePk;
  proof.timestamp = now;
  proof.nonce = crypto::random_u64();
  const util::Bytes transcript = presentation_transcript(
      challenge, server, now, proof.nonce, request_digest);
  const pki::PkAuthProof pk_proof =
      pki::pk_authenticate(identity, identity_key, transcript, server, now);
  proof.blob = wire::encode_to_bytes(pk_proof);
  return proof;
}

}  // namespace rproxy::core
