// Accept-once enforcement (§7.7).
//
// "Any subsequent proxy from the same grantor bearing the same identifier
// and received by the end-server within the expiration time of the first
// proxy is rejected."  Identifiers are scoped per grantor — two different
// grantors may both use check number 7.  Thread-safe.
#pragma once

#include <mutex>

#include "kdc/replay_cache.hpp"
#include "util/names.hpp"

namespace rproxy::core {

class AcceptOnceCache {
 public:
  /// Rejects with kReplay if (grantor, identifier) was accepted before and
  /// has not yet expired; otherwise remembers it until `expires_at`.
  [[nodiscard]] util::Status check_and_insert(const PrincipalName& grantor,
                                              std::uint64_t identifier,
                                              util::TimePoint expires_at,
                                              util::TimePoint now);

  /// Peek without inserting (used by accounting servers to pre-validate).
  [[nodiscard]] bool seen(const PrincipalName& grantor,
                          std::uint64_t identifier,
                          util::TimePoint now) const;

  [[nodiscard]] std::size_t size() const { return cache_.size(); }

 private:
  static util::Bytes key_(const PrincipalName& grantor,
                          std::uint64_t identifier);

  kdc::ReplayCache cache_;
  // Shadow set for the const `seen` query (ReplayCache only exposes
  // check-and-insert); kept in lockstep under its own lock.
  mutable std::mutex seen_mutex_;
  std::map<std::pair<PrincipalName, std::uint64_t>, util::TimePoint> seen_;
};

}  // namespace rproxy::core
