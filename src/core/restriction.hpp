// Restriction types (§7).
//
// "The restrictions field of a proxy should be interpreted as a collection
// of typed subfields, each type corresponding to a different restriction."
// Each subfield only ever *removes* rights: a verifier grants an operation
// only if every restriction in every certificate of the chain passes, so
// adding a subfield can never add a privilege (§6.2: "restrictions must be
// additive").
//
// Unknown restriction types fail decoding (fail-closed): a verifier that
// cannot interpret a restriction must not ignore it.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/names.hpp"
#include "wire/decoder.hpp"
#include "wire/encoder.hpp"

namespace rproxy::core {

class Restriction;

/// §7.1 — list of principals authorized to use the proxy "and the number of
/// principals from the list needed to exercise the proxy (usually one)".
/// Presence of this restriction makes the proxy a delegate proxy; absence
/// makes it a bearer proxy.
struct GranteeRestriction {
  std::vector<PrincipalName> delegates;
  std::uint32_t required = 1;

  friend bool operator==(const GranteeRestriction&,
                         const GranteeRestriction&) = default;
};

/// §7.2 — groups authorized to use the proxy and how many memberships must
/// be asserted.  "One way to implement separation of privilege is to
/// require assertion of membership in multiple groups with disjoint
/// members."
struct ForUseByGroupRestriction {
  std::vector<GroupName> groups;
  std::uint32_t required = 1;

  friend bool operator==(const ForUseByGroupRestriction&,
                         const ForUseByGroupRestriction&) = default;
};

/// §7.3 — servers authorized to accept the proxy.  "Important for public-
/// key proxies which are otherwise verifiable by and exercisable on all
/// servers."
struct IssuedForRestriction {
  std::vector<PrincipalName> servers;

  friend bool operator==(const IssuedForRestriction&,
                         const IssuedForRestriction&) = default;
};

/// §7.4 — a currency and a limit on how much of it one use may consume.
struct QuotaRestriction {
  std::string currency;
  std::uint64_t limit = 0;

  friend bool operator==(const QuotaRestriction&,
                         const QuotaRestriction&) = default;
};

/// One object and the operations permitted on it (empty = all operations).
/// "There are no constraints on the form of the object names or the list of
/// operations other than that the grantor and the end-server must agree."
/// (§7.5)  The object name "*" is the conventional wildcard.
struct ObjectRights {
  ObjectName object;
  std::vector<Operation> operations;

  friend bool operator==(const ObjectRights&, const ObjectRights&) = default;
};

/// §7.5 — the complete list of objects accessible through the proxy.
/// "Usually appears in proxies used as capabilities" and in proxies
/// returned by an authorization server.
struct AuthorizedRestriction {
  std::vector<ObjectRights> rights;

  friend bool operator==(const AuthorizedRestriction&,
                         const AuthorizedRestriction&) = default;
};

/// §7.6 — the grantee is a member of only the listed groups; placed by a
/// group server so a group proxy does not assert every group it maintains.
struct GroupMembershipRestriction {
  std::vector<GroupName> groups;

  friend bool operator==(const GroupMembershipRestriction&,
                         const GroupMembershipRestriction&) = default;
};

/// §7.7 — the end-server accepts the proxy at most once per identifier
/// within the credential lifetime.  "A real life example of such an
/// identifier is a check number."
struct AcceptOnceRestriction {
  std::uint64_t identifier = 0;

  friend bool operator==(const AcceptOnceRestriction&,
                         const AcceptOnceRestriction&) = default;
};

/// §7.8 — scopes inner restrictions to particular end-servers: "the
/// restrictions embedded within this restriction will be enforced by the
/// named servers and ignored by others."
struct LimitRestriction {
  std::vector<PrincipalName> servers;
  std::vector<Restriction> inner;

  friend bool operator==(const LimitRestriction&,
                         const LimitRestriction&);
};

/// A typed restriction subfield.
class Restriction {
 public:
  using Value =
      std::variant<GranteeRestriction, ForUseByGroupRestriction,
                   IssuedForRestriction, QuotaRestriction,
                   AuthorizedRestriction, GroupMembershipRestriction,
                   AcceptOnceRestriction, LimitRestriction>;

  /// Wire tags; stable across releases (they are signed into certificates).
  enum class Tag : std::uint16_t {
    kGrantee = 1,
    kForUseByGroup = 2,
    kIssuedFor = 3,
    kQuota = 4,
    kAuthorized = 5,
    kGroupMembership = 6,
    kAcceptOnce = 7,
    kLimitRestriction = 8,
  };

  Restriction() : value_(AuthorizedRestriction{}) {}
  /// Implicit from any alternative so call sites read naturally:
  ///   set.add(QuotaRestriction{"pages", 10});
  template <typename T,
            typename = std::enable_if_t<
                std::is_constructible_v<Value, T&&> &&
                !std::is_same_v<std::decay_t<T>, Restriction>>>
  Restriction(T&& v) : value_(std::forward<T>(v)) {}  // NOLINT

  [[nodiscard]] Tag tag() const;
  [[nodiscard]] std::string_view type_name() const;

  [[nodiscard]] const Value& value() const { return value_; }

  /// Typed accessor; nullptr when the restriction holds another type.
  template <typename T>
  [[nodiscard]] const T* get_if() const {
    return std::get_if<T>(&value_);
  }

  void encode(wire::Encoder& enc) const;
  static Restriction decode(wire::Decoder& dec);

  friend bool operator==(const Restriction&, const Restriction&);

 private:
  Value value_;
};

}  // namespace rproxy::core
